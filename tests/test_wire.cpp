// Tests for the binary codec and every message wire format: canonical
// round-trips, untrusted-input robustness (truncation at every prefix
// length, trailing garbage, hostile length prefixes, invalid group
// encodings), and end-to-end protocol runs through serialized bytes.
#include <gtest/gtest.h>

#include "blocklist/generator.h"
#include "chain/shielded.h"
#include "commit/crs.h"
#include "common/rng.h"
#include "ec/codec.h"
#include "hash/sha256.h"
#include "oprf/client.h"
#include "oprf/server.h"
#include "oprf/wire.h"
#include "store/journal.h"
#include "store/snapshot.h"
#include "tlog/persist.h"
#include "tlog/tlog.h"
#include "voting/shareholder.h"
#include "voting/wire.h"

namespace cbl {
namespace {

using cbl::ChaChaRng;

class WireTest : public ::testing::Test {
 protected:
  ChaChaRng rng_ = ChaChaRng::from_string_seed("wire-tests");
};

// ------------------------------------------------------------------ codec

TEST_F(WireTest, WriterReaderRoundTrip) {
  const auto p = ec::RistrettoPoint::base() * ec::Scalar::random(rng_);
  const auto s = ec::Scalar::random(rng_);

  ec::WireWriter w;
  w.u8(7).u32(0xdeadbeef).u64(0x0102030405060708ULL);
  w.var_bytes(to_bytes("payload"));
  w.point(p).scalar(s);
  const Bytes data = w.take();

  ec::WireReader r(data);
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0102030405060708ULL);
  EXPECT_EQ(to_string(r.var_bytes(100)), "payload");
  EXPECT_TRUE(r.point() == p);
  EXPECT_EQ(r.scalar(), s);
  EXPECT_TRUE(r.finish());
}

TEST_F(WireTest, ReaderIsTotalOnTruncation) {
  ec::WireWriter w;
  w.u32(1234);
  const Bytes data = w.take();
  ec::WireReader r(ByteView(data.data(), 3));
  EXPECT_EQ(r.u32(), 0u);  // truncated read latches failure, returns zero
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.finish());
}

TEST_F(WireTest, FailureIsStickyAcrossSubsequentReads) {
  ec::WireWriter w;
  w.u8(5);
  const Bytes data = w.take();
  ec::WireReader r(data);
  EXPECT_EQ(r.u64(), 0u);  // out of bounds: fails
  EXPECT_EQ(r.u8(), 0u);   // in-bounds byte, but the reader stays failed
  EXPECT_FALSE(r.finish());
}

TEST_F(WireTest, ReaderRejectsHostileLengthPrefix) {
  ec::WireWriter w;
  w.u32(0xffffffffu);  // claims a 4 GiB payload
  const Bytes data = w.take();
  ec::WireReader r(data);
  EXPECT_TRUE(r.var_bytes(1024).empty());
  EXPECT_FALSE(r.finish());
}

TEST_F(WireTest, ReaderRejectsTrailingBytes) {
  ec::WireWriter w;
  w.u8(1).u8(2);
  const Bytes data = w.take();
  ec::WireReader r(data);
  (void)r.u8();
  EXPECT_TRUE(r.ok());       // every read was in bounds...
  EXPECT_FALSE(r.finish());  // ...but one byte was never consumed
}

TEST_F(WireTest, ReaderRejectsInvalidPoint) {
  Bytes data(32, 0xff);
  ec::WireReader r(data);
  EXPECT_TRUE(r.point() == ec::RistrettoPoint::identity());
  EXPECT_FALSE(r.finish());
}

TEST_F(WireTest, ReaderRejectsNonCanonicalScalar) {
  Bytes data(32, 0xff);  // way above l
  ec::WireReader r(data);
  EXPECT_EQ(r.scalar(), ec::Scalar::zero());
  EXPECT_FALSE(r.finish());
}

// ------------------------------------------------------------ OPRF wire

TEST_F(WireTest, QueryRequestRoundTrip) {
  oprf::QueryRequest req;
  req.prefix = 0x2a;
  req.masked_query =
      (ec::RistrettoPoint::base() * ec::Scalar::random(rng_)).encode();
  req.cached_epoch = 3;
  req.api_key = "alice-key";

  const auto parsed = oprf::parse_query_request(oprf::serialize(req));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->prefix, req.prefix);
  EXPECT_EQ(parsed->masked_query, req.masked_query);
  EXPECT_EQ(parsed->cached_epoch, req.cached_epoch);
  EXPECT_EQ(parsed->api_key, req.api_key);
}

TEST_F(WireTest, QueryResponseRoundTrip) {
  oprf::QueryResponse resp;
  resp.evaluated =
      (ec::RistrettoPoint::base() * ec::Scalar::random(rng_)).encode();
  resp.epoch = 9;
  resp.bucket_omitted = false;
  for (int i = 0; i < 5; ++i) {
    resp.bucket.push_back(
        (ec::RistrettoPoint::base() * ec::Scalar::random(rng_)).encode());
    resp.metadata.push_back(rng_.bytes(20));
  }
  const auto parsed = oprf::parse_query_response(oprf::serialize(resp));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->evaluated, resp.evaluated);
  EXPECT_EQ(parsed->epoch, resp.epoch);
  EXPECT_EQ(parsed->bucket, resp.bucket);
  EXPECT_EQ(parsed->metadata, resp.metadata);
}

TEST_F(WireTest, QueryMessagesRejectEveryTruncation) {
  oprf::QueryRequest req;
  req.masked_query =
      (ec::RistrettoPoint::base() * ec::Scalar::random(rng_)).encode();
  req.api_key = "k";
  const Bytes data = oprf::serialize(req);
  for (std::size_t len = 0; len < data.size(); ++len) {
    EXPECT_FALSE(
        oprf::parse_query_request(ByteView(data.data(), len)).has_value())
        << "len=" << len;
  }
  // Trailing garbage also rejected.
  Bytes extended = data;
  extended.push_back(0);
  EXPECT_FALSE(oprf::parse_query_request(extended).has_value());
}

TEST_F(WireTest, PrefixListRoundTripAndCanonicalOrder) {
  const std::vector<std::uint32_t> prefixes = {1, 5, 9, 200};
  const auto parsed =
      oprf::parse_prefix_list(oprf::serialize_prefix_list(prefixes));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, prefixes);

  // Unsorted lists are non-canonical.
  const auto bad = oprf::serialize_prefix_list({5, 1});
  EXPECT_FALSE(oprf::parse_prefix_list(bad).has_value());
}

TEST_F(WireTest, OprfProtocolOverSerializedBytes) {
  // Full protocol run where every message crosses a byte boundary.
  auto server_rng = ChaChaRng::from_string_seed("wire-server");
  auto client_rng = ChaChaRng::from_string_seed("wire-client");
  auto corpus_rng = ChaChaRng::from_string_seed("wire-corpus");
  const auto corpus =
      blocklist::generate_corpus(100, corpus_rng).addresses();

  oprf::OprfServer server(oprf::Oracle::fast(), 3, server_rng);
  server.setup(corpus);
  oprf::OprfClient client(oprf::Oracle::fast(), 3, client_rng);

  const auto prepared = client.prepare(corpus[11]);
  const Bytes req_bytes = oprf::serialize(prepared.request);
  const auto req = oprf::parse_query_request(req_bytes);
  ASSERT_TRUE(req.has_value());

  const Bytes resp_bytes = oprf::serialize(server.handle(*req));
  const auto resp = oprf::parse_query_response(resp_bytes);
  ASSERT_TRUE(resp.has_value());
  EXPECT_TRUE(client.finish(prepared.pending, *resp).listed);
}

// ----------------------------------------------------------- voting wire

class VotingWireTest : public WireTest {
 protected:
  const commit::Crs& crs_ = commit::Crs::default_crs();
  voting::Shareholder sh_{crs_, rng_, 1, 100};
};

TEST_F(VotingWireTest, Round1RoundTripPreservesVerifiability) {
  const auto sub = sh_.build_round1(rng_);
  const Bytes data = voting::serialize(sub);
  EXPECT_EQ(data.size(), voting::Round1Submission::wire_size());

  const auto parsed = voting::parse_round1(data);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->comm_secret == sub.comm_secret);
  EXPECT_TRUE(parsed->comm_vote == sub.comm_vote);
  // The parsed proofs still verify against the parsed statement.
  EXPECT_TRUE(parsed->proof_a.verify(
      crs_, {parsed->comm_secret, parsed->c1, parsed->c2}));
  EXPECT_TRUE(parsed->vote_proof.verify(crs_, parsed->comm_vote));
  EXPECT_EQ(voting::serialize(*parsed), data);  // canonical re-encode
}

TEST_F(VotingWireTest, Round1RejectsEveryTruncation) {
  const Bytes data = voting::serialize(sh_.build_round1(rng_));
  for (std::size_t len = 0; len < data.size(); len += 13) {
    EXPECT_FALSE(voting::parse_round1(ByteView(data.data(), len)).has_value());
  }
  Bytes extended = data;
  extended.push_back(0);
  EXPECT_FALSE(voting::parse_round1(extended).has_value());
}

TEST_F(VotingWireTest, Round1RejectsCorruptedPoints) {
  Bytes data = voting::serialize(sh_.build_round1(rng_));
  // Corrupt the first point encoding to a guaranteed-invalid value.
  std::fill(data.begin(), data.begin() + 32, 0xff);
  EXPECT_FALSE(voting::parse_round1(data).has_value());
}

TEST_F(VotingWireTest, VrfRevealRoundTrip) {
  const Bytes challenge = to_bytes("nu");
  const auto reveal = sh_.build_vrf_reveal(challenge, rng_);
  const auto parsed = voting::parse_vrf_reveal(voting::serialize(reveal));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(vrf::verify(sh_.vrf_pk(), challenge, parsed->proof));
  EXPECT_EQ(vrf::output(parsed->proof), vrf::output(reveal.proof));
}

TEST_F(VotingWireTest, Round2RoundTripPreservesVerifiability) {
  std::vector<ec::RistrettoPoint> committee = {
      crs_.g * sh_.secret(), crs_.g * ec::Scalar::random(rng_),
      crs_.g * ec::Scalar::random(rng_)};
  const auto sub = sh_.build_round2(committee, 0, rng_);
  const Bytes data = voting::serialize(sub);
  EXPECT_EQ(data.size(), voting::Round2Submission::wire_size());

  const auto parsed = voting::parse_round2(data);
  ASSERT_TRUE(parsed.has_value());
  const ec::RistrettoPoint y = voting::compute_y(committee, 0);
  nizk::StatementB st;
  st.c0 = committee[0];
  st.big_c = crs_.g * ec::Scalar::from_u64(sh_.vote()) + crs_.h * sh_.secret();
  st.psi = parsed->psi;
  st.y = y;
  EXPECT_TRUE(parsed->proof_b.verify(crs_, st));
}

// ------------------------------------------------------- format stability
//
// The refactor onto cbl::ByteReader/WireReader must not move a single
// wire byte: the Fig. 9 storage-gas numbers are metered off these exact
// encodings. The digests below were captured from the seed serializers
// (commit 66c1cf4) over deterministically built messages; if one of
// these fails, the wire format changed and Fig. 9 is invalid.

TEST(WireGoldenTest, SerializersAreByteIdenticalToSeedFormat) {
  auto rng = ChaChaRng::from_string_seed("wire-golden");
  const auto& crs = commit::Crs::default_crs();
  voting::Shareholder sh(crs, rng, 1, 100);
  const auto sha_hex = [](const Bytes& data) {
    const auto digest = hash::Sha256::digest(data);
    return to_hex(ByteView(digest.data(), digest.size()));
  };

  const auto r1 = voting::serialize(sh.build_round1(rng));
  EXPECT_EQ(r1.size(), 708u);
  EXPECT_EQ(sha_hex(r1),
            "11f485860eb4c7004025006e6fefe76aa1b59d5d106d27c47810dd4edbb8528e");

  const auto reveal =
      voting::serialize(sh.build_vrf_reveal(to_bytes("nu-golden"), rng));
  EXPECT_EQ(reveal.size(), 128u);
  EXPECT_EQ(sha_hex(reveal),
            "4ae180a3513be6b6c51dd12bb549d54e1a7b33fbd0a1c1454f08c1ec42d53822");

  std::vector<ec::RistrettoPoint> committee = {
      crs.g * sh.secret(), crs.g * ec::Scalar::random(rng),
      crs.g * ec::Scalar::random(rng)};
  const auto r2 = voting::serialize(sh.build_round2(committee, 0, rng));
  EXPECT_EQ(r2.size(), 320u);
  EXPECT_EQ(sha_hex(r2),
            "db75d485bf6907991e70c9830def1fb7f7409a52725569479d77f5af91da0d32");

  oprf::QueryRequest req;
  req.prefix = 0x2a;
  req.masked_query =
      (ec::RistrettoPoint::base() * ec::Scalar::random(rng)).encode();
  req.cached_epoch = 3;
  req.api_key = "golden-key";
  req.want_evaluation_proof = true;
  const auto req_bytes = oprf::serialize(req);
  EXPECT_EQ(req_bytes.size(), 59u);
  EXPECT_EQ(sha_hex(req_bytes),
            "2d102e6c423416a4251362054131e252aacdb3179dd149d201fb4dc304adfbbb");

  oprf::QueryResponse resp;
  resp.evaluated =
      (ec::RistrettoPoint::base() * ec::Scalar::random(rng)).encode();
  resp.epoch = 9;
  resp.bucket_omitted = false;
  for (int i = 0; i < 5; ++i) {
    resp.bucket.push_back(
        (ec::RistrettoPoint::base() * ec::Scalar::random(rng)).encode());
    resp.metadata.push_back(rng.bytes(20));
  }
  const auto resp_bytes = oprf::serialize(resp);
  EXPECT_EQ(resp_bytes.size(), 330u);
  EXPECT_EQ(sha_hex(resp_bytes),
            "cdc041059f89135373dffba34d5391da6e644bfc8fe7b25c75acabb9f8e888aa");

  const auto prefixes = oprf::serialize_prefix_list({1, 5, 9, 200, 70000});
  EXPECT_EQ(prefixes.size(), 24u);
  EXPECT_EQ(sha_hex(prefixes),
            "60623abfb91d0ea473a6450b291f0fea53eb7a94209ffd6638721f661dddec34");
}

// Same byte-stability contract for the transparency-log formats: a
// client folds deltas it fetched in one release with state cached by
// another, and the golden corpora under fuzz/corpora/fuzz_tlog_* are
// regenerated from these exact serializers — so no byte may move.
// Digests captured from the serializers that shipped the subsystem.
TEST(WireGoldenTest, TlogSerializersAreByteStable) {
  auto rng = ChaChaRng::from_string_seed("tlog-wire-golden");
  const auto key = nizk::SigningKey::generate(rng);
  const auto sha_hex = [](const Bytes& data) {
    const auto digest = hash::Sha256::digest(data);
    return to_hex(ByteView(digest.data(), digest.size()));
  };
  const auto rand_enc = [&rng] {
    return (ec::RistrettoPoint::base() * ec::Scalar::random(rng)).encode();
  };
  const auto sorted = [](std::vector<ec::RistrettoPoint::Encoding> v) {
    std::sort(v.begin(), v.end());
    return v;
  };

  tlog::BucketMap base;
  base[3] = sorted({rand_enc(), rand_enc()});
  base[9] = {rand_enc()};
  const auto base_bytes = tlog::encode_bucket_map(base);
  EXPECT_EQ(base_bytes.size(), 116u);
  EXPECT_EQ(sha_hex(base_bytes),
            "5b158f0986c0c1630606fe9ceb18e0bb5851b8c9fb28e15ec31aeabb4627c447");

  tlog::BucketMap post = base;
  post[3].push_back(rand_enc());
  post[3] = sorted(post[3]);
  post[17] = {rand_enc()};
  post.erase(9);
  auto delta = tlog::diff_buckets(base, post);
  delta.from_epoch = 4;
  delta.to_epoch = 5;
  delta.base_bucket_root = tlog::BucketTree(base).root();
  delta.post_bucket_root = tlog::BucketTree(post).root();
  delta = tlog::sign_delta(key, std::move(delta), rng);
  const auto delta_bytes = delta.to_bytes();
  EXPECT_EQ(delta_bytes.size(), 281u);
  EXPECT_EQ(sha_hex(delta_bytes),
            "b56dbe5d48cb95128f9a50467ae09dd12c9fb742556d33320b7a398e73c3a125");

  const auto checkpoint = tlog::sign_checkpoint(
      key, 2, chain::MerkleTree::hash_leaf(to_bytes("tlog-golden-root")), 5,
      rng);
  const auto cp_bytes = checkpoint.to_bytes();
  EXPECT_EQ(cp_bytes.size(), tlog::Checkpoint::kWireSize);
  EXPECT_EQ(sha_hex(cp_bytes),
            "58391b92c42e983dff95303532481c06a35acd5b4ca63d1557e9251f00f4c376");

  tlog::TransparencyLog log;
  for (std::uint64_t epoch = 1; epoch <= 5; ++epoch) {
    tlog::EpochRecord record;
    record.epoch = epoch;
    record.bucket_root =
        chain::MerkleTree::hash_leaf(to_bytes("bucket-" + std::to_string(epoch)));
    record.delta_digest =
        chain::MerkleTree::hash_leaf(to_bytes("delta-" + std::to_string(epoch)));
    log.append(record);
  }
  const auto inclusion = log.prove_record(4);
  const auto incl_bytes = tlog::encode_inclusion_proof(inclusion);
  EXPECT_EQ(incl_bytes.size(), 53u);
  EXPECT_EQ(sha_hex(incl_bytes),
            "8d12209163569cfc6e0457a047aa9ce81bdd9cecc6a7837f3404fa91e740a2fc");

  tlog::ConsistencyProofMsg consistency;
  consistency.old_size = 3;
  consistency.new_size = 5;
  consistency.nodes = log.prove_consistency(3);
  const auto cons_bytes = tlog::encode_consistency_proof(consistency);
  EXPECT_EQ(cons_bytes.size(), 148u);
  EXPECT_EQ(sha_hex(cons_bytes),
            "3239af06036dfb53d34ff3ce2d57701cc259a643b8332a10172ff32c9abbe93a");

  tlog::AuditPath path;
  path.epoch = 5;
  path.bucket_root = tlog::BucketTree(post).root();
  path.delta_digest = delta.digest();
  path.bucket_proof = tlog::BucketTree(post).prove(0);
  path.log_proof = inclusion;
  const auto path_bytes = tlog::encode_audit_path(path);
  EXPECT_EQ(path_bytes.size(), 178u);
  EXPECT_EQ(sha_hex(path_bytes),
            "9b519003a5e8ae21bb0d23c550eb1c48e0d176262c2c6affe99a55960d12b64d");

  // Each format parses back to the same canonical bytes.
  EXPECT_EQ(tlog::encode_bucket_map(*tlog::parse_bucket_map(base_bytes)),
            base_bytes);
  EXPECT_EQ(tlog::EpochDelta::from_bytes(delta_bytes)->to_bytes(),
            delta_bytes);
  EXPECT_EQ(tlog::Checkpoint::from_bytes(cp_bytes)->to_bytes(), cp_bytes);
  EXPECT_EQ(tlog::encode_inclusion_proof(
                *tlog::parse_inclusion_proof(incl_bytes)),
            incl_bytes);
  EXPECT_EQ(tlog::encode_consistency_proof(
                *tlog::parse_consistency_proof(cons_bytes)),
            cons_bytes);
  EXPECT_EQ(tlog::encode_audit_path(*tlog::parse_audit_path(path_bytes)),
            path_bytes);
}

// Same contract for the durable-state formats: a journal or snapshot
// written by one release must recover under the next, and the corpora
// under fuzz/corpora/fuzz_store_* and fuzz_tlog_persist are regenerated
// from these exact serializers — so no byte may move. Digests captured
// from the serializers that shipped the store subsystem.
TEST(WireGoldenTest, StoreAndPersistFormatsAreByteStable) {
  auto rng = ChaChaRng::from_string_seed("store-wire-golden");
  const auto sha_hex = [](const Bytes& data) {
    const auto digest = hash::Sha256::digest(data);
    return to_hex(ByteView(digest.data(), digest.size()));
  };

  const Bytes frame =
      store::encode_journal_record(to_bytes("golden-journal-record"));
  EXPECT_EQ(frame.size(), 4u + store::kJournalChecksumSize + 21u);
  EXPECT_EQ(sha_hex(frame), "2d82c792b0f0dada44749f7c0d918aa4d6477702eee931feaf3da6fbc4695c9f");
  EXPECT_EQ(store::encode_journal_record(*store::parse_journal_record(frame)),
            frame);

  Bytes journal = to_bytes(store::kJournalMagic);
  append(journal, frame);
  append(journal, store::encode_journal_record(rng.bytes(33)));
  EXPECT_EQ(journal.size(), 86u);
  EXPECT_EQ(sha_hex(journal), "bc1ff5106ca0b5d3b0e7ed43687efa68ade6bcda309b5e6fd17f0f4fa30064e1");
  const auto recovered = store::scan_journal(journal);
  EXPECT_EQ(recovered.status, store::RecoverStatus::kOk);
  EXPECT_EQ(recovered.records.size(), 2u);
  EXPECT_EQ(recovered.valid_bytes, journal.size());

  const Bytes snap = store::encode_snapshot(to_bytes("golden-snapshot"));
  EXPECT_EQ(snap.size(), store::kSnapshotMagic.size() + 1 + 4 +
                             store::kSnapshotChecksumSize + 15);
  EXPECT_EQ(sha_hex(snap), "3013b1bb862731119e70e52cf79e84a8f8c9cd66c149601271634141d7d2b994");
  EXPECT_EQ(store::encode_snapshot(*store::parse_snapshot(snap)), snap);

  const auto key = nizk::SigningKey::generate(rng);
  const auto cp1 = tlog::sign_checkpoint(
      key, 3, chain::MerkleTree::hash_leaf(to_bytes("persist-golden-1")), 1,
      rng);
  const auto cp2 = tlog::sign_checkpoint(
      key, 5, chain::MerkleTree::hash_leaf(to_bytes("persist-golden-2")), 2,
      rng);

  tlog::EquivocationEvidence evidence;
  evidence.first = cp1;
  evidence.second = cp2;
  const Bytes evidence_bytes = evidence.to_bytes();
  EXPECT_EQ(evidence_bytes.size(), tlog::EquivocationEvidence::kWireSize);
  EXPECT_EQ(sha_hex(evidence_bytes), "ac950ff74a45851b13b181135e4064f5898ea1d443956fb1d55ff7f653df63aa");

  tlog::AuditorSnapshot auditor;
  auditor.latest = cp2;
  auditor.seen = {cp1, cp2};
  auditor.has_mirror = true;
  auditor.mirror_epoch = 2;
  auditor.buckets[3] = {(ec::RistrettoPoint::base() * ec::Scalar::random(rng))
                            .encode()};
  auditor.evidence = evidence;
  const Bytes auditor_bytes = auditor.to_bytes();
  EXPECT_EQ(auditor_bytes.size(), 628u);
  EXPECT_EQ(sha_hex(auditor_bytes), "a1c5d87445b905db3bf35b1a783951352c014c85718085f5e6cb59ed3f3194e8");

  tlog::AuditorRecord record;
  record.kind = tlog::AuditorRecord::Kind::kDistrust;
  record.distrust_reason = 4;
  record.evidence = evidence;
  const Bytes record_bytes = record.to_bytes();
  EXPECT_EQ(record_bytes.size(),
            3 + tlog::EquivocationEvidence::kWireSize);
  EXPECT_EQ(sha_hex(record_bytes), "1634b7c568fb4dd79ad831d35b7a896bddb648cc59d19f5b3b9c2d71b27adfaf");

  // Each format parses back to the same canonical bytes.
  EXPECT_EQ(tlog::EquivocationEvidence::from_bytes(evidence_bytes)->to_bytes(),
            evidence_bytes);
  EXPECT_EQ(tlog::AuditorSnapshot::from_bytes(auditor_bytes)->to_bytes(),
            auditor_bytes);
  EXPECT_EQ(tlog::AuditorRecord::from_bytes(record_bytes)->to_bytes(),
            record_bytes);
}

TEST_F(VotingWireTest, RandomBytesNeverParse) {
  // Fuzz-lite: random blobs of the right length must not parse into valid
  // submissions (the first 32 bytes are a point encoding; a random string
  // decodes with probability ~2^-5 per component and the full message has
  // many, so valid parses are astronomically unlikely).
  auto fuzz_rng = ChaChaRng::from_string_seed("fuzz");
  int parsed_count = 0;
  for (int i = 0; i < 50; ++i) {
    const Bytes blob = fuzz_rng.bytes(voting::Round1Submission::wire_size());
    if (voting::parse_round1(blob).has_value()) ++parsed_count;
  }
  EXPECT_EQ(parsed_count, 0);
}

}  // namespace
}  // namespace cbl
