// Grand integration scenario: the whole system in one arc.
//   1. Two providers publish blocklists; one silently degrades.
//   2. Both apply to the on-chain registry; coordinator-run evaluations
//      list the honest one and dismiss the degraded one.
//   3. A user reaches the listed provider over the lossy network with a
//      pinned verifiable-OPRF commitment and checks payment addresses
//      across all four supported chains.
//   4. A watchdog challenge forces a re-evaluation after the listed
//      provider degrades too; it gets delisted and slashed.
//   5. A third party replays the public evaluation record and verifies a
//      receipt against the sealed block's Merkle root.
#include <gtest/gtest.h>

#include "blocklist/generator.h"
#include "cbl.h"
#include "common/rng.h"

namespace cbl {
namespace {

TEST(GrandScenario, EndToEnd) {
  auto rng = ChaChaRng::from_string_seed("grand");
  chain::Blockchain chain;

  // ---- 1. providers ------------------------------------------------------
  core::ProviderConfig pcfg;
  pcfg.lambda = 8;
  core::BlocklistProvider honest("honest", pcfg, rng);
  core::BlocklistProvider shady("shady", pcfg, rng);

  blocklist::FeedConfig fcfg;
  fcfg.count = 400;
  const auto feed = blocklist::generate_feed(fcfg, rng);
  honest.ingest(feed);
  shady.ingest(feed);
  // Shady silently serves only a third of what it publishes.
  auto published = shady.published_entries();
  std::vector<std::string> third(published.begin(),
                                 published.begin() +
                                     static_cast<long>(published.size() / 3));
  shady.server().setup(third);

  // ---- 2. registry + evaluations -----------------------------------------
  voting::RegistryConfig rcfg;
  rcfg.min_stake = 100;
  rcfg.listing_period = 1'000;
  voting::RegistryContract registry(chain, rcfg);

  voting::EvaluationConfig vcfg;
  vcfg.thresh = 5;
  vcfg.committee_size = 3;
  vcfg.deposit = 20;
  vcfg.provider_deposit = 10;
  core::EvaluationCoordinator coordinator(chain, vcfg, 1'000, rng);
  coordinator.attach_registry(registry);

  const auto honest_acct = chain.ledger().create_account("honest-acct");
  const auto shady_acct = chain.ledger().create_account("shady-acct");
  chain.ledger().mint(honest_acct, 500);
  chain.ledger().mint(shady_acct, 500);
  registry.apply(honest_acct, "honest", 100);
  registry.apply(shady_acct, "shady", 100);

  EXPECT_TRUE(coordinator.evaluate(honest, 15).approved);
  EXPECT_FALSE(coordinator.evaluate(shady, 25).approved);
  EXPECT_TRUE(registry.is_listed("honest"));
  EXPECT_FALSE(registry.is_listed("shady"));
  EXPECT_EQ(chain.ledger().balance(shady_acct), 500);  // dismissed, refunded

  // ---- 3. a user queries the listed provider over the network ------------
  net::TransportConfig tcfg;
  tcfg.latency_ms_min = 5;
  tcfg.latency_ms_max = 30;
  tcfg.drop_rate = 0.1;
  net::Transport transport(tcfg, rng);
  net::BlocklistServiceNode node(transport, "honest.example", honest.server(),
                                 honest.oracle());
  net::RemoteClientConfig ccfg;
  ccfg.max_retries = 8;
  net::RemoteBlocklistClient remote(transport, "honest.example", rng, ccfg);
  ASSERT_TRUE(remote.sync_prefix_list());

  // Listed entries across whatever chains the feed produced...
  int listed_found = 0;
  for (std::size_t i = 0; i < feed.size(); i += 61) {
    const auto outcome = remote.query(feed[i].address);
    if (outcome.kind == net::RemoteBlocklistClient::QueryOutcome::Kind::kOk &&
        outcome.listed) {
      ++listed_found;
    }
  }
  EXPECT_GE(listed_found, 5);

  // ...and clean addresses of every supported format stay clean.
  for (const auto chain_kind :
       {blocklist::Chain::kBitcoin, blocklist::Chain::kEthereum,
        blocklist::Chain::kRipple, blocklist::Chain::kBitcoinSegwit}) {
    const auto addr = blocklist::random_address(chain_kind, rng);
    const auto outcome = remote.query(addr);
    ASSERT_EQ(outcome.kind, net::RemoteBlocklistClient::QueryOutcome::Kind::kOk)
        << addr;
    EXPECT_FALSE(outcome.listed) << addr;
  }

  // Verifiable OPRF directly against the server (pinned commitment).
  {
    auto vrng = ChaChaRng::from_string_seed("grand-voprf");
    oprf::OprfClient pinned(honest.oracle(), honest.lambda(), vrng);
    pinned.pin_key_commitment(honest.server().key_commitment());
    const auto prepared = pinned.prepare(feed[0].address);
    const auto response = honest.server().handle(prepared.request);
    EXPECT_TRUE(pinned.finish(prepared.pending, response).listed);
  }

  // ---- 4. the listed provider degrades; challenge delists it -------------
  auto honest_published = honest.published_entries();
  std::vector<std::string> half(
      honest_published.begin(),
      honest_published.begin() + static_cast<long>(honest_published.size() / 2));
  honest.server().setup(half);

  const auto watchdog = chain.ledger().create_account("watchdog");
  chain.ledger().mint(watchdog, 200);
  registry.open_challenge(watchdog, "honest", 100);
  EXPECT_FALSE(coordinator.evaluate(honest, 25).approved);
  EXPECT_FALSE(registry.is_listed("honest"));
  EXPECT_EQ(registry.lookup("honest")->status,
            voting::RegistryContract::ListingStatus::kDelisted);
  EXPECT_GT(chain.ledger().balance(watchdog), 100);  // won the slash share

  // ---- 5. public verification of the chain's history ---------------------
  chain.seal_block();
  ASSERT_FALSE(chain.headers().empty());
  ASSERT_FALSE(chain.receipts().empty());
  const auto proof = chain.receipt_inclusion_proof(0, 0);
  EXPECT_TRUE(chain::Blockchain::verify_receipt_inclusion(
      chain.headers()[0], chain.receipts()[0], proof));

  // A fresh ceremony with an exported record replays cleanly.
  voting::Ceremony audit_ceremony(chain, vcfg,
                                  std::vector<unsigned>{1, 1, 0, 1, 0}, rng);
  audit_ceremony.fund_and_shield();
  audit_ceremony.register_all();
  audit_ceremony.reveal_all();
  audit_ceremony.finalize_committee();
  audit_ceremony.vote_all();
  const auto exported = audit_ceremony.contract().export_record();
  voting::ProposalRecord record;
  record.config = vcfg;
  record.challenge = exported.challenge;
  record.round1 = exported.round1;
  record.vrf_reveals = exported.vrf_reveals;
  record.committee = exported.committee;
  record.round2 = exported.round2;
  record.claimed_outcome = exported.outcome;
  auto audit_rng = ChaChaRng::from_string_seed("grand-audit");
  const auto report = voting::replay_proposal(chain.crs(), record, audit_rng);
  EXPECT_TRUE(report.valid) << (report.violations.empty()
                                    ? ""
                                    : report.violations.front());

  // Token conservation across the whole story.
  EXPECT_GT(chain.ledger().total_supply(), 0);
}

}  // namespace
}  // namespace cbl
