// Cross-validation of the optimized limb arithmetic (fe25519 5x51-bit,
// scalar 4x64-bit Montgomery) against an independent, obviously-correct
// reference: a byte-level bignum with shift-subtract modular reduction.
// Random sweeps plus adversarial edge values around the moduli hunt for
// carry/borrow bugs the RFC vectors might miss.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "ec/fe25519.h"
#include "ec/scalar.h"

namespace cbl::ec {
namespace {

using cbl::ChaChaRng;

// ----------------------------------------------------------------- RefInt
// Arbitrary-size unsigned integer, little-endian 32-bit words. Slow and
// simple on purpose.
class RefInt {
 public:
  RefInt() = default;

  static RefInt from_le_bytes(ByteView bytes) {
    RefInt r;
    for (std::size_t i = 0; i < bytes.size(); i += 4) {
      std::uint32_t word = 0;
      for (std::size_t j = 0; j < 4 && i + j < bytes.size(); ++j) {
        word |= static_cast<std::uint32_t>(bytes[i + j]) << (8 * j);
      }
      r.words_.push_back(word);
    }
    r.trim();
    return r;
  }

  static RefInt from_u64(std::uint64_t v) {
    RefInt r;
    r.words_ = {static_cast<std::uint32_t>(v),
                static_cast<std::uint32_t>(v >> 32)};
    r.trim();
    return r;
  }

  std::array<std::uint8_t, 32> to_le_bytes32() const {
    std::array<std::uint8_t, 32> out{};
    for (std::size_t i = 0; i < words_.size() && i < 8; ++i) {
      for (int j = 0; j < 4; ++j) {
        out[4 * i + static_cast<std::size_t>(j)] =
            static_cast<std::uint8_t>(words_[i] >> (8 * j));
      }
    }
    return out;
  }

  int compare(const RefInt& o) const {
    if (words_.size() != o.words_.size()) {
      return words_.size() < o.words_.size() ? -1 : 1;
    }
    for (std::size_t i = words_.size(); i-- > 0;) {
      if (words_[i] != o.words_[i]) return words_[i] < o.words_[i] ? -1 : 1;
    }
    return 0;
  }
  bool operator==(const RefInt& o) const { return compare(o) == 0; }

  RefInt add(const RefInt& o) const {
    RefInt r;
    std::uint64_t carry = 0;
    const std::size_t n = std::max(words_.size(), o.words_.size());
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t sum = carry + word(i) + o.word(i);
      r.words_.push_back(static_cast<std::uint32_t>(sum));
      carry = sum >> 32;
    }
    if (carry) r.words_.push_back(static_cast<std::uint32_t>(carry));
    r.trim();
    return r;
  }

  /// this - o; requires this >= o.
  RefInt sub(const RefInt& o) const {
    RefInt r;
    std::int64_t borrow = 0;
    for (std::size_t i = 0; i < words_.size(); ++i) {
      std::int64_t diff = static_cast<std::int64_t>(word(i)) -
                          static_cast<std::int64_t>(o.word(i)) - borrow;
      borrow = 0;
      if (diff < 0) {
        diff += std::int64_t{1} << 32;
        borrow = 1;
      }
      r.words_.push_back(static_cast<std::uint32_t>(diff));
    }
    EXPECT_EQ(borrow, 0) << "RefInt::sub underflow";
    r.trim();
    return r;
  }

  RefInt mul(const RefInt& o) const {
    RefInt r;
    r.words_.assign(words_.size() + o.words_.size(), 0);
    for (std::size_t i = 0; i < words_.size(); ++i) {
      std::uint64_t carry = 0;
      for (std::size_t j = 0; j < o.words_.size(); ++j) {
        const std::uint64_t t =
            static_cast<std::uint64_t>(words_[i]) * o.words_[j] +
            r.words_[i + j] + carry;
        r.words_[i + j] = static_cast<std::uint32_t>(t);
        carry = t >> 32;
      }
      r.words_[i + o.words_.size()] += static_cast<std::uint32_t>(carry);
    }
    r.trim();
    return r;
  }

  RefInt shifted_left_bits(std::size_t bits) const {
    RefInt r = *this;
    for (std::size_t b = 0; b < bits; ++b) r = r.add(r);
    return r;
  }

  /// this mod m, via binary shift-subtract long division.
  RefInt mod(const RefInt& m) const {
    EXPECT_FALSE(m.words_.empty()) << "mod by zero";
    RefInt r;  // remainder accumulates bit by bit, msb first
    for (std::size_t i = words_.size(); i-- > 0;) {
      for (int bit = 31; bit >= 0; --bit) {
        r = r.add(r);
        if ((words_[i] >> bit) & 1) r = r.add(RefInt::from_u64(1));
        if (r.compare(m) >= 0) r = r.sub(m);
      }
    }
    return r;
  }

 private:
  std::uint32_t word(std::size_t i) const {
    return i < words_.size() ? words_[i] : 0;
  }
  void trim() {
    while (!words_.empty() && words_.back() == 0) words_.pop_back();
  }

  std::vector<std::uint32_t> words_;  // little endian, trimmed
};

RefInt ref_p() {
  // 2^255 - 19.
  return RefInt::from_u64(1).shifted_left_bits(255).sub(RefInt::from_u64(19));
}

RefInt ref_l() {
  // 2^252 + 27742317777372353535851937790883648493.
  const auto c = RefInt::from_le_bytes(
      from_hex("edd3f55c1a631258d69cf7a2def9de14").value());
  return RefInt::from_u64(1).shifted_left_bits(252).add(c);
}

// Edge-value byte patterns around the moduli and word boundaries.
std::vector<std::array<std::uint8_t, 32>> edge_values() {
  std::vector<std::array<std::uint8_t, 32>> out;
  auto push_hex = [&](const char* hex) {
    const auto bytes = from_hex(hex).value();
    std::array<std::uint8_t, 32> a{};
    std::copy(bytes.begin(), bytes.end(), a.begin());
    out.push_back(a);
  };
  push_hex("0000000000000000000000000000000000000000000000000000000000000000");
  push_hex("0100000000000000000000000000000000000000000000000000000000000000");
  push_hex("ecffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff7f");  // p-1
  push_hex("edffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff7f");  // p
  push_hex("eeffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff7f");  // p+1
  push_hex("ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff7f");  // 2^255-1
  push_hex("ecd3f55c1a631258d69cf7a2def9de1400000000000000000000000000000010");  // l-1
  push_hex("edd3f55c1a631258d69cf7a2def9de1400000000000000000000000000000010");  // l
  push_hex("eed3f55c1a631258d69cf7a2def9de1400000000000000000000000000000010");  // l+1
  push_hex("ffffffff000000000000000000000000ffffffff000000000000000000000000");
  push_hex("0000000000000000ffffffffffffffff0000000000000000ffffffffffffffff");
  return out;
}

// ----------------------------------------------------------------- fe25519

class FeReferenceTest : public ::testing::Test {
 protected:
  ChaChaRng rng_ = ChaChaRng::from_string_seed("fe-ref");

  static Fe25519 fe_from(const std::array<std::uint8_t, 32>& bytes) {
    auto masked = bytes;
    masked[31] &= 0x7f;
    return Fe25519::from_bytes(masked);
  }

  static RefInt ref_from(const std::array<std::uint8_t, 32>& bytes) {
    auto masked = bytes;
    masked[31] &= 0x7f;
    return RefInt::from_le_bytes(masked).mod(ref_p());
  }
};

TEST_F(FeReferenceTest, MulMatchesReferenceOnRandoms) {
  for (int i = 0; i < 60; ++i) {
    std::array<std::uint8_t, 32> a_bytes, b_bytes;
    rng_.fill(a_bytes.data(), 32);
    rng_.fill(b_bytes.data(), 32);
    const auto expected =
        ref_from(a_bytes).mul(ref_from(b_bytes)).mod(ref_p()).to_le_bytes32();
    EXPECT_EQ((fe_from(a_bytes) * fe_from(b_bytes)).to_bytes(), expected)
        << "a=" << to_hex(ByteView(a_bytes)) << " b=" << to_hex(ByteView(b_bytes));
  }
}

TEST_F(FeReferenceTest, AddSubMatchReferenceOnEdges) {
  const auto edges = edge_values();
  const auto p = ref_p();
  for (const auto& a : edges) {
    for (const auto& b : edges) {
      const RefInt ra = ref_from(a), rb = ref_from(b);
      EXPECT_EQ((fe_from(a) + fe_from(b)).to_bytes(),
                ra.add(rb).mod(p).to_le_bytes32());
      // a - b mod p == a + (p - b) mod p.
      EXPECT_EQ((fe_from(a) - fe_from(b)).to_bytes(),
                ra.add(p.sub(rb)).mod(p).to_le_bytes32());
    }
  }
}

TEST_F(FeReferenceTest, MulMatchesReferenceOnEdgePairs) {
  const auto edges = edge_values();
  const auto p = ref_p();
  for (const auto& a : edges) {
    for (const auto& b : edges) {
      EXPECT_EQ((fe_from(a) * fe_from(b)).to_bytes(),
                ref_from(a).mul(ref_from(b)).mod(p).to_le_bytes32());
    }
  }
}

TEST_F(FeReferenceTest, CanonicalEncodingIsBelowP) {
  const auto p = ref_p();
  for (int i = 0; i < 20; ++i) {
    std::array<std::uint8_t, 32> bytes;
    rng_.fill(bytes.data(), 32);
    const auto canonical = fe_from(bytes).to_bytes();
    EXPECT_LT(RefInt::from_le_bytes(canonical).compare(p), 0);
  }
}

// ------------------------------------------------------------------ Scalar

class ScalarReferenceTest : public ::testing::Test {
 protected:
  ChaChaRng rng_ = ChaChaRng::from_string_seed("sc-ref");
};

TEST_F(ScalarReferenceTest, MulMatchesReferenceOnRandoms) {
  const auto l = ref_l();
  for (int i = 0; i < 60; ++i) {
    std::array<std::uint8_t, 32> a_bytes, b_bytes;
    rng_.fill(a_bytes.data(), 32);
    rng_.fill(b_bytes.data(), 32);
    const Scalar a = Scalar::from_bytes_mod_order(a_bytes);
    const Scalar b = Scalar::from_bytes_mod_order(b_bytes);
    const auto expected = RefInt::from_le_bytes(a_bytes)
                              .mod(l)
                              .mul(RefInt::from_le_bytes(b_bytes).mod(l))
                              .mod(l)
                              .to_le_bytes32();
    EXPECT_EQ((a * b).to_bytes(), expected);
  }
}

TEST_F(ScalarReferenceTest, AddSubMatchReferenceOnEdges) {
  const auto l = ref_l();
  for (const auto& a_bytes : edge_values()) {
    for (const auto& b_bytes : edge_values()) {
      const Scalar a = Scalar::from_bytes_mod_order(a_bytes);
      const Scalar b = Scalar::from_bytes_mod_order(b_bytes);
      const RefInt ra = RefInt::from_le_bytes(a_bytes).mod(l);
      const RefInt rb = RefInt::from_le_bytes(b_bytes).mod(l);
      EXPECT_EQ((a + b).to_bytes(), ra.add(rb).mod(l).to_le_bytes32());
      EXPECT_EQ((a - b).to_bytes(),
                ra.add(l.sub(rb)).mod(l).to_le_bytes32());
    }
  }
}

TEST_F(ScalarReferenceTest, WideReductionMatchesReference) {
  const auto l = ref_l();
  for (int i = 0; i < 40; ++i) {
    std::array<std::uint8_t, 64> wide;
    rng_.fill(wide.data(), 64);
    const auto expected =
        RefInt::from_le_bytes(wide).mod(l).to_le_bytes32();
    EXPECT_EQ(Scalar::from_bytes_wide(wide).to_bytes(), expected);
  }
  // All-ones wide input (the largest possible).
  std::array<std::uint8_t, 64> ones;
  ones.fill(0xff);
  EXPECT_EQ(Scalar::from_bytes_wide(ones).to_bytes(),
            RefInt::from_le_bytes(ones).mod(l).to_le_bytes32());
}

TEST_F(ScalarReferenceTest, MontgomeryRoundTripIdentities) {
  // (a*b)*c == a*(b*c) and a*1 == a on adversarial values.
  for (const auto& bytes : edge_values()) {
    const Scalar a = Scalar::from_bytes_mod_order(bytes);
    const Scalar b = Scalar::from_u64(0xffffffffffffffffULL);
    const Scalar c = Scalar::from_u64(2);
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * Scalar::one(), a);
    EXPECT_EQ(a * Scalar::zero(), Scalar::zero());
  }
}

}  // namespace
}  // namespace cbl::ec
