// Tests for the Merkle tree and block-header chaining: inclusion proofs
// at every index and size (path-only and index-bound), RFC-6962
// consistency proofs over an exhaustive size sweep, tamper detection,
// header chaining, and light-client receipt verification.
#include <gtest/gtest.h>

#include "chain/blockchain.h"
#include "chain/merkle.h"
#include "common/rng.h"
#include "voting/ceremony.h"

namespace cbl::chain {
namespace {

using cbl::ChaChaRng;

std::vector<Bytes> make_leaves(std::size_t n) {
  std::vector<Bytes> leaves;
  for (std::size_t i = 0; i < n; ++i) {
    leaves.push_back(to_bytes("leaf-" + std::to_string(i)));
  }
  return leaves;
}

TEST(Merkle, EmptyTreeHasZeroRoot) {
  MerkleTree tree({});
  EXPECT_EQ(tree.root(), MerkleTree::Digest{});
  EXPECT_EQ(tree.leaf_count(), 0u);
}

TEST(Merkle, SingleLeaf) {
  const auto leaves = make_leaves(1);
  MerkleTree tree(leaves);
  EXPECT_EQ(tree.root(), MerkleTree::hash_leaf(leaves[0]));
  const auto proof = tree.prove(0);
  EXPECT_TRUE(proof.empty());
  EXPECT_TRUE(MerkleTree::verify(tree.root(), leaves[0], proof));
}

class MerkleSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MerkleSizeSweep, EveryIndexProvesAndTamperFails) {
  const auto leaves = make_leaves(GetParam());
  MerkleTree tree(leaves);
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    const auto proof = tree.prove(i);
    EXPECT_TRUE(MerkleTree::verify(tree.root(), leaves[i], proof)) << i;
    // Wrong payload fails.
    EXPECT_FALSE(MerkleTree::verify(tree.root(), to_bytes("evil"), proof));
    // Wrong index (proof/leaf mismatch) fails for non-trivial trees.
    if (leaves.size() > 1) {
      EXPECT_FALSE(MerkleTree::verify(tree.root(),
                                      leaves[(i + 1) % leaves.size()], proof))
          << i;
    }
    // Tampered sibling fails.
    if (!proof.empty()) {
      auto bad = proof;
      bad[0].sibling[0] ^= 1;
      EXPECT_FALSE(MerkleTree::verify(tree.root(), leaves[i], bad));
    }
  }
  EXPECT_THROW((void)tree.prove(leaves.size()), std::out_of_range);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MerkleSizeSweep,
                         ::testing::Values(2u, 3u, 4u, 5u, 7u, 8u, 9u, 16u,
                                           17u));

TEST(Merkle, IndexBoundVerifyAcceptsEveryIndex) {
  for (std::size_t n : {1u, 2u, 3u, 5u, 8u, 13u, 16u, 17u}) {
    const auto leaves = make_leaves(n);
    MerkleTree tree(leaves);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(MerkleTree::verify(tree.root(), i, n, leaves[i],
                                     tree.prove(i)))
          << n << ":" << i;
    }
  }
}

TEST(Merkle, IndexBoundVerifyRejectsReplayAtOtherIndex) {
  // The unbound overload only checks the path shape, so leaf i's proof
  // could place that payload at any same-shape slot; the index-bound
  // overload derives the directions from (index, leaf_count) and must
  // reject every (proof_i, index_j != i) pairing.
  for (std::size_t n : {2u, 3u, 4u, 7u, 8u, 9u, 16u}) {
    const auto leaves = make_leaves(n);
    MerkleTree tree(leaves);
    for (std::size_t i = 0; i < n; ++i) {
      const auto proof = tree.prove(i);
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        EXPECT_FALSE(MerkleTree::verify(tree.root(), j, n, leaves[i], proof))
            << n << ":" << i << "->" << j;
      }
      // Out-of-range index is rejected outright. (An inclusion proof
      // does not authenticate the tree size — the signed checkpoint
      // does — but a claimed size too large for the proof's length can
      // never fold down to the root.)
      EXPECT_FALSE(MerkleTree::verify(tree.root(), n, n, leaves[i], proof));
      EXPECT_FALSE(
          MerkleTree::verify(tree.root(), i, 2 * n + 2, leaves[i], proof));
      // A proof that is too long for its slot is rejected, not folded.
      auto padded = proof;
      padded.push_back(MerkleTree::ProofStep{{}, true});
      EXPECT_FALSE(MerkleTree::verify(tree.root(), i, n, leaves[i], padded));
      if (!proof.empty()) {
        auto short_proof = proof;
        short_proof.pop_back();
        EXPECT_FALSE(
            MerkleTree::verify(tree.root(), i, n, leaves[i], short_proof));
      }
    }
  }
}

TEST(Merkle, ConsistencySweepAllPairs) {
  // Exhaustive m <= n sweep: every old size of every tree up to 20
  // leaves proves consistent with the grown tree, covering empty -> n,
  // n -> n, and both power-of-two boundaries (m or n a power of two).
  constexpr std::size_t kMax = 20;
  const auto leaves = make_leaves(kMax);
  std::vector<MerkleTree::Digest> roots(kMax + 1);
  std::vector<MerkleTree> trees;
  for (std::size_t n = 0; n <= kMax; ++n) {
    trees.emplace_back(
        std::vector<Bytes>(leaves.begin(), leaves.begin() + n));
    roots[n] = trees.back().root();
  }
  for (std::size_t n = 0; n <= kMax; ++n) {
    for (std::size_t m = 0; m <= n; ++m) {
      const auto proof = trees[n].prove_consistency(m);
      EXPECT_TRUE(MerkleTree::verify_consistency(roots[m], m, roots[n], n,
                                                 proof))
          << m << "->" << n;
      if (m == 0 || m == n) EXPECT_TRUE(proof.empty()) << m << "->" << n;
      // A different old root (a fork) must not verify.
      if (m >= 1 && m < n) {
        auto forged = roots[m];
        forged[0] ^= 1;
        EXPECT_FALSE(
            MerkleTree::verify_consistency(forged, m, roots[n], n, proof))
            << m << "->" << n;
      }
      // Tampering with any proof node must fail.
      if (!proof.empty()) {
        auto bad = proof;
        bad[bad.size() / 2][0] ^= 1;
        EXPECT_FALSE(
            MerkleTree::verify_consistency(roots[m], m, roots[n], n, bad))
            << m << "->" << n;
      }
    }
    EXPECT_THROW((void)trees[n].prove_consistency(n + 1), std::out_of_range);
  }
}

TEST(Merkle, ConsistencyRejectsMismatchedSizes) {
  const auto leaves = make_leaves(9);
  MerkleTree small(std::vector<Bytes>(leaves.begin(), leaves.begin() + 4));
  MerkleTree big(leaves);
  const auto proof = big.prove_consistency(4);
  // Shrinking logs never verify.
  EXPECT_FALSE(MerkleTree::verify_consistency(big.root(), 9, small.root(), 4,
                                              proof));
  // Equal sizes demand equal roots and an empty proof.
  EXPECT_TRUE(
      MerkleTree::verify_consistency(big.root(), 9, big.root(), 9, {}));
  EXPECT_FALSE(
      MerkleTree::verify_consistency(small.root(), 9, big.root(), 9, {}));
  EXPECT_FALSE(MerkleTree::verify_consistency(big.root(), 9, big.root(), 9,
                                              proof));
  // Claiming the wrong old size with a valid proof fails.
  EXPECT_FALSE(MerkleTree::verify_consistency(small.root(), 5, big.root(), 9,
                                              proof));
}

TEST(Merkle, RootDependsOnOrderAndContent) {
  auto leaves = make_leaves(4);
  const auto root1 = MerkleTree(leaves).root();
  std::swap(leaves[0], leaves[3]);
  EXPECT_NE(MerkleTree(leaves).root(), root1);
  std::swap(leaves[0], leaves[3]);
  leaves[2].push_back(0);
  EXPECT_NE(MerkleTree(leaves).root(), root1);
}

TEST(Blocks, HeadersChain) {
  Blockchain chain;
  const auto alice = chain.ledger().create_account("alice");
  chain.execute(alice, "m1", 10, [] {});
  chain.seal_block();
  chain.execute(alice, "m2", 10, [] {});
  chain.execute(alice, "m3", 10, [] {});
  chain.seal_block();

  const auto& headers = chain.headers();
  ASSERT_EQ(headers.size(), 2u);
  EXPECT_EQ(headers[0].height, 0u);
  EXPECT_EQ(headers[0].tx_count, 1u);
  EXPECT_EQ(headers[1].tx_count, 2u);
  EXPECT_EQ(headers[1].prev_hash, headers[0].hash());
  EXPECT_EQ(headers[0].prev_hash, hash::Sha256::Digest{});  // genesis
}

TEST(Blocks, ReceiptInclusionProofs) {
  Blockchain chain;
  const auto alice = chain.ledger().create_account("alice");
  for (int i = 0; i < 5; ++i) {
    chain.execute(alice, "method-" + std::to_string(i),
                  static_cast<std::size_t>(10 * i), [] {});
  }
  chain.seal_block();

  for (std::size_t i = 0; i < 5; ++i) {
    const auto proof = chain.receipt_inclusion_proof(0, i);
    EXPECT_TRUE(Blockchain::verify_receipt_inclusion(
        chain.headers()[0], chain.receipts()[i], proof))
        << i;
  }
  // A receipt does not verify under the wrong proof slot.
  const auto proof0 = chain.receipt_inclusion_proof(0, 0);
  EXPECT_FALSE(Blockchain::verify_receipt_inclusion(
      chain.headers()[0], chain.receipts()[3], proof0));
  // Unsealed block throws.
  chain.execute(alice, "late", 1, [] {});
  EXPECT_THROW((void)chain.receipt_inclusion_proof(1, 0), ChainError);
}

TEST(Blocks, TamperedReceiptFailsInclusion) {
  Blockchain chain;
  const auto alice = chain.ledger().create_account("alice");
  chain.execute(alice, "transfer", 64, [] {});
  chain.seal_block();
  const auto proof = chain.receipt_inclusion_proof(0, 0);

  TxReceipt forged = chain.receipts()[0];
  forged.gas_used += 1;  // a light client must notice a doctored receipt
  EXPECT_FALSE(Blockchain::verify_receipt_inclusion(chain.headers()[0],
                                                    forged, proof));
  forged = chain.receipts()[0];
  forged.method = "mint";
  EXPECT_FALSE(Blockchain::verify_receipt_inclusion(chain.headers()[0],
                                                    forged, proof));
}

TEST(Blocks, CeremonyHistoryIsLightClientVerifiable) {
  // Seal a ceremony's transactions and verify a VoteCommit receipt as a
  // light client would.
  auto rng = ChaChaRng::from_string_seed("merkle-ceremony");
  Blockchain chain;
  voting::EvaluationConfig cfg;
  cfg.thresh = cfg.committee_size = 3;
  cfg.deposit = 10;
  cfg.provider_deposit = 10;
  voting::Ceremony ceremony(chain, cfg, {1, 1, 0}, rng);
  ceremony.run();
  chain.seal_block();

  // Find a VoteCommit receipt and prove it.
  for (std::size_t i = 0; i < chain.receipts().size(); ++i) {
    if (chain.receipts()[i].method == "VoteCommit") {
      const auto proof = chain.receipt_inclusion_proof(0, i);
      EXPECT_TRUE(Blockchain::verify_receipt_inclusion(
          chain.headers()[0], chain.receipts()[i], proof));
      return;
    }
  }
  FAIL() << "no VoteCommit receipt found";
}

}  // namespace
}  // namespace cbl::chain
