// Compile-and-smoke test for the umbrella header: one include must give
// a working end-to-end slice of the whole public API.
#include "cbl.h"

#include <gtest/gtest.h>

namespace {

TEST(Umbrella, OneIncludeEndToEnd) {
  auto rng = cbl::ChaChaRng::from_string_seed("umbrella");

  // Query side.
  cbl::core::ProviderConfig pcfg;
  pcfg.lambda = 6;
  cbl::core::BlocklistProvider provider("smoke", pcfg, rng);
  cbl::blocklist::FeedConfig fcfg;
  fcfg.count = 50;
  const auto feed = cbl::blocklist::generate_feed(fcfg, rng);
  provider.ingest(feed);
  cbl::core::BlocklistUser user(provider, rng);
  EXPECT_TRUE(user.query(feed.front().address).listed);

  // Evaluation side.
  cbl::chain::Blockchain chain;
  cbl::voting::EvaluationConfig vcfg;
  vcfg.thresh = vcfg.committee_size = 3;
  vcfg.deposit = 10;
  vcfg.provider_deposit = 10;
  cbl::voting::Ceremony ceremony(chain, vcfg, {1, 1, 0}, rng);
  EXPECT_TRUE(ceremony.run().outcome.approved);

  // Analysis side.
  EXPECT_GT(cbl::game::effective_k_star(20, 5, 0.9), 5u);
  EXPECT_GT(cbl::oprf::analyze_buckets({4, 4, 4}).min_entropy_bits, 1.9);
}

}  // namespace
