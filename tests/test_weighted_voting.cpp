// Tests for the weighted-voting extension (the tau_i of Eq. 1, which the
// paper defines but omits from its presented procedures): weighted
// binary-vote proofs, weighted tallies/majorities, stake scaling,
// weighted payoffs, and rejection of weight cheating.
#include <gtest/gtest.h>

#include "chain/blockchain.h"
#include "common/rng.h"
#include "voting/ceremony.h"
#include "voting/contract.h"
#include "voting/wire.h"

namespace cbl::voting {
namespace {

using cbl::ChaChaRng;
using chain::Blockchain;
using ec::RistrettoPoint;
using ec::Scalar;

class WeightedVotingTest : public ::testing::Test {
 protected:
  ChaChaRng rng_ = ChaChaRng::from_string_seed("weighted-tests");
  const commit::Crs& crs_ = commit::Crs::default_crs();

  EvaluationConfig config(std::size_t thresh, std::size_t n) {
    EvaluationConfig cfg;
    cfg.thresh = thresh;
    cfg.committee_size = n;
    cfg.deposit = 10;
    cfg.reward = 1;
    cfg.penalty = 1;
    cfg.max_weight = 16;
    cfg.provider_deposit = 200;
    return cfg;
  }
};

// ------------------------------------------------- weighted vote OR proof

TEST_F(WeightedVotingTest, WeightedProofCompleteness) {
  for (const std::uint64_t tau : {1ull, 3ull, 7ull, 16ull}) {
    for (unsigned v : {0u, 1u}) {
      const Scalar x = Scalar::random(rng_);
      const RistrettoPoint c =
          crs_.g * Scalar::from_u64(tau * v) + crs_.h * x;
      const auto proof = nizk::BinaryVoteProof::prove(crs_, c, v, x, rng_, tau);
      EXPECT_TRUE(proof.verify(crs_, c, tau)) << "tau=" << tau << " v=" << v;
    }
  }
}

TEST_F(WeightedVotingTest, ProofDoesNotTransferAcrossWeights) {
  // A proof for weight 3 must not verify as weight 5 (or the voter could
  // claim a different tally contribution than it staked for).
  const Scalar x = Scalar::random(rng_);
  const RistrettoPoint c = crs_.g * Scalar::from_u64(3) + crs_.h * x;
  const auto proof = nizk::BinaryVoteProof::prove(crs_, c, 1, x, rng_, 3);
  EXPECT_TRUE(proof.verify(crs_, c, 3));
  EXPECT_FALSE(proof.verify(crs_, c, 5));
  EXPECT_FALSE(proof.verify(crs_, c, 1));
}

TEST_F(WeightedVotingTest, ProverRefusesMismatchedWeight) {
  const Scalar x = Scalar::random(rng_);
  const RistrettoPoint c = crs_.g * Scalar::from_u64(5) + crs_.h * x;
  // Commitment encodes 5 = tau*v only for (tau=5, v=1); any other claim
  // is a false statement.
  EXPECT_NO_THROW(nizk::BinaryVoteProof::prove(crs_, c, 1, x, rng_, 5));
  EXPECT_THROW(nizk::BinaryVoteProof::prove(crs_, c, 1, x, rng_, 3),
               std::invalid_argument);
  EXPECT_THROW(nizk::BinaryVoteProof::prove(crs_, c, 1, x, rng_, 0),
               std::invalid_argument);
}

// ----------------------------------------------------------- weighted tally

TEST_F(WeightedVotingTest, WeightedTallySumsWeights) {
  // votes (1,1,0) with weights (5,2,4): tally = 7 of 11 -> approved.
  Blockchain chain;
  Ceremony ceremony(chain, config(3, 3), {1, 1, 0}, {5, 2, 4}, rng_);
  const auto result = ceremony.run();
  EXPECT_EQ(result.outcome.tally, 7u);
  EXPECT_EQ(result.outcome.total_weight, 11u);
  EXPECT_TRUE(result.outcome.approved);
}

TEST_F(WeightedVotingTest, MinorityHeadcountMajorityStakeWins) {
  // One whale (weight 10) votes yes against four headcount voters
  // (weight 1 each) voting no: stake majority carries Eq. (1).
  Blockchain chain;
  Ceremony ceremony(chain, config(5, 5), {1, 0, 0, 0, 0}, {10, 1, 1, 1, 1},
                    rng_);
  const auto result = ceremony.run();
  EXPECT_EQ(result.outcome.tally, 10u);
  EXPECT_EQ(result.outcome.total_weight, 14u);
  EXPECT_TRUE(result.outcome.approved);
}

TEST_F(WeightedVotingTest, WeightedTieIsRejection) {
  // 5 yes vs 5 no by stake: Eq. (1) requires a strict majority.
  Blockchain chain;
  Ceremony ceremony(chain, config(2, 2), {1, 0}, {5, 5}, rng_);
  const auto result = ceremony.run();
  EXPECT_EQ(result.outcome.tally, 5u);
  EXPECT_FALSE(result.outcome.approved);
}

// Parameterized sweep over weighted patterns with exact expectations.
struct WeightedCase {
  std::vector<unsigned> votes;
  std::vector<std::uint32_t> weights;
};

class WeightedSweep : public ::testing::TestWithParam<int> {};

TEST_P(WeightedSweep, TallyMatchesWeightedSum) {
  static const WeightedCase cases[] = {
      {{0, 0, 0}, {2, 3, 4}},
      {{1, 1, 1}, {2, 3, 4}},
      {{1, 0, 1}, {1, 16, 1}},
      {{0, 1, 0}, {7, 7, 7}},
      {{1, 1, 0, 0}, {4, 3, 2, 1}},
  };
  const auto& c = cases[GetParam()];
  auto rng = ChaChaRng::from_string_seed("wsweep-" +
                                         std::to_string(GetParam()));
  Blockchain chain;
  EvaluationConfig cfg;
  cfg.thresh = cfg.committee_size = c.votes.size();
  cfg.deposit = 10;
  cfg.provider_deposit = 300;
  Ceremony ceremony(chain, cfg, c.votes, c.weights, rng);
  const auto result = ceremony.run();

  std::uint64_t expected = 0, total = 0;
  for (std::size_t i = 0; i < c.votes.size(); ++i) {
    expected += c.votes[i] * c.weights[i];
    total += c.weights[i];
  }
  EXPECT_EQ(result.outcome.tally, expected);
  EXPECT_EQ(result.outcome.total_weight, total);
  EXPECT_EQ(result.outcome.approved, expected * 2 > total);
}

INSTANTIATE_TEST_SUITE_P(Patterns, WeightedSweep, ::testing::Range(0, 5));

// --------------------------------------------------------- weighted payoff

TEST_F(WeightedVotingTest, PayoutsScaleWithWeight) {
  Blockchain chain;
  const auto cfg = config(3, 3);
  // weights (5,2,4), votes (1,1,0) -> approved; winners earn
  // reward * weight on top of stake, loser pays penalty * weight.
  Ceremony ceremony(chain, cfg, {1, 1, 0}, {5, 2, 4}, rng_);
  const auto result = ceremony.run();
  ASSERT_TRUE(result.outcome.approved);
  ASSERT_EQ(result.payouts.size(), 3u);
  EXPECT_EQ(result.payouts[0], 5 * cfg.deposit + 5 * cfg.reward);
  EXPECT_EQ(result.payouts[1], 2 * cfg.deposit + 2 * cfg.reward);
  EXPECT_EQ(result.payouts[2], 4 * cfg.deposit - 4 * cfg.penalty);
}

TEST_F(WeightedVotingTest, WeightedPayoffConservesSupply) {
  Blockchain chain;
  chain::Amount before = 0;
  {
    Ceremony ceremony(chain, config(4, 4), {1, 0, 1, 1}, {3, 8, 2, 2}, rng_);
    before = chain.ledger().total_supply();
    ceremony.run();
  }
  EXPECT_EQ(chain.ledger().total_supply(), before);
}

// -------------------------------------------------------- weight cheating

struct Harness {
  Blockchain chain;
  EvaluationConfig cfg;
  chain::AccountId provider;
  std::unique_ptr<EvaluationContract> contract;

  explicit Harness(EvaluationConfig config) : cfg(config) {
    provider = chain.ledger().create_account("provider");
    chain.ledger().mint(provider, cfg.provider_deposit + 100);
    contract = std::make_unique<EvaluationContract>(chain, cfg, provider);
  }

  Shareholder funded(unsigned vote, std::uint32_t weight, Rng& rng) {
    Shareholder sh(chain.crs(), rng, vote, cfg.deposit, weight);
    const auto acct = chain.ledger().create_account("sh");
    chain.ledger().mint(acct, sh.total_stake());
    chain.shielded_pool().shield(acct, sh.total_stake(), sh.deposit_note(),
                                 sh.make_shield_proof(rng));
    return sh;
  }
};

TEST_F(WeightedVotingTest, DeclaredWeightMustMatchStake) {
  Harness h(config(3, 3));
  // The shareholder staked for weight 2 but declares weight 5 in the
  // submission: the deposit proof no longer matches g^(5*D).
  auto sh = h.funded(1, 2, rng_);
  auto sub = sh.build_round1(rng_);
  sub.weight = 5;
  EXPECT_THROW(h.contract->register_shareholder(0, sub), ChainError);
}

TEST_F(WeightedVotingTest, WeightAboveCapRejected) {
  auto cfg = config(3, 3);
  cfg.max_weight = 4;
  Harness h(cfg);
  auto sh = h.funded(1, 8, rng_);  // stake consistent, but above the cap
  EXPECT_THROW(h.contract->register_shareholder(0, sh.build_round1(rng_)),
               ChainError);
}

TEST_F(WeightedVotingTest, ZeroWeightRejectedEverywhere) {
  EXPECT_THROW(Shareholder(crs_, rng_, 1, 10, 0), std::invalid_argument);
  Harness h(config(3, 3));
  auto sh = h.funded(1, 1, rng_);
  auto sub = sh.build_round1(rng_);
  sub.weight = 0;
  EXPECT_THROW(h.contract->register_shareholder(0, sub), ChainError);
}

TEST_F(WeightedVotingTest, WeightedRound1WireRoundTrip) {
  Shareholder sh(crs_, rng_, 1, 10, 7);
  const auto sub = sh.build_round1(rng_);
  const auto parsed = parse_round1(serialize(sub));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->weight, 7u);
  EXPECT_TRUE(parsed->vote_proof.verify(crs_, parsed->comm_vote, 7));
  EXPECT_FALSE(parsed->vote_proof.verify(crs_, parsed->comm_vote, 1));
}

}  // namespace
}  // namespace cbl::voting
