// Regression tests for the locking contracts hardened by the
// thread-safety annotation sweep (src/common/thread_safety.h; DESIGN.md
// "Concurrency & locking policy"). Each test pins a behavior that an
// off-lock access could silently break and that clang's capability
// analysis now rejects at compile time:
//
//   * WorkerPool shutdown ordering — shutdown() (what the destructor
//     runs) racing submitters, the 0-thread inline mode, and concurrent
//     double-shutdown idempotence under join_mutex_;
//   * the distrust latch — N threads feeding one Auditor the same
//     equivocation evidence converge on exactly ONE kEquivocation
//     transition, and N threads driving ResilientClient::sync() against
//     an equivocating provider bump the distrusted counter exactly once;
//   * OprfServer read accessors (key_commitment / epoch / serves /
//     entry_count) and limiter maintenance, which used to touch guarded
//     state without the lock, stay coherent under concurrent rotation
//     and maintenance.
//
// Designed to run under the TSan CI stage (scripts/ci.sh, stage 6).
#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "blocklist/generator.h"
#include "common/rng.h"
#include "exec/worker_pool.h"
#include "net/resilient_client.h"
#include "net/service_node.h"
#include "obs/clock.h"
#include "oprf/client.h"
#include "oprf/server.h"
#include "tlog/tlog.h"

namespace cbl {
namespace {

using net::Freshness;
using net::ResilienceConfig;
using net::ResilientClient;

double counter_value(const char* name, obs::Labels labels) {
  return obs::MetricsRegistry::global()
      .counter(name, std::move(labels))
      .value();
}

// ------------------------------------------------- WorkerPool shutdown

TEST(WorkerPoolShutdown, ShutdownRacesSubmitters) {
  exec::WorkerPool pool({.threads = 3, .name = "ts-race"});

  constexpr int kSubmitters = 4;
  constexpr int kPerThread = 300;
  std::atomic<int> accepted{0};
  std::atomic<int> executed{0};
  std::atomic<bool> go{false};

  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&] {
      while (!go.load()) {
      }
      for (int i = 0; i < kPerThread; ++i) {
        if (pool.try_submit([&] { executed.fetch_add(1); })) {
          accepted.fetch_add(1);
        }
      }
    });
  }

  go.store(true);
  // Stop the pool mid-storm: this is the destructor's body racing the
  // enqueue path. Late submits must fail cleanly, accepted work must
  // still run to completion before shutdown returns.
  pool.shutdown();
  for (auto& th : submitters) th.join();
  // Any task accepted after shutdown() returned would be lost work, and
  // shutdown() already joined the workers — so by here the two counters
  // must reconcile exactly. Stragglers that raced the flag flip got
  // `false` back and are in neither count.
  pool.shutdown();  // idempotent: second call must be a no-op
  EXPECT_EQ(executed.load(), accepted.load());
  EXPECT_FALSE(pool.submit([] {}));
}

TEST(WorkerPoolShutdown, ZeroThreadPoolRunsInline) {
  exec::WorkerPool pool;  // Options defaults: threads = 0
  EXPECT_EQ(pool.threads(), 0u);

  int ran = 0;
  EXPECT_TRUE(pool.submit([&] { ++ran; }));
  EXPECT_EQ(ran, 1);  // ran on the caller, synchronously
  EXPECT_EQ(pool.queue_depth(), 0u);
  EXPECT_TRUE(pool.try_submit([&] { ++ran; }));
  EXPECT_EQ(ran, 2);
  pool.drain();  // nothing queued: returns immediately

  pool.shutdown();
  EXPECT_FALSE(pool.submit([&] { ++ran; }));
  EXPECT_FALSE(pool.try_submit([&] { ++ran; }));
  EXPECT_EQ(ran, 2);  // refused work never runs
}

TEST(WorkerPoolShutdown, ConcurrentShutdownIsIdempotent) {
  std::optional<exec::WorkerPool> pool;
  pool.emplace(exec::WorkerPool::Options{.threads = 2, .name = "ts-dshut"});

  std::atomic<int> executed{0};
  int queued = 0;
  for (int i = 0; i < 64; ++i) {
    if (pool->try_submit([&] { executed.fetch_add(1); })) ++queued;
  }

  // Several threads race the full shutdown path (flag flip under
  // mutex_, join loop under join_mutex_). Exactly one join per worker
  // may happen; every queued task still runs.
  std::vector<std::thread> stoppers;
  for (int t = 0; t < 4; ++t) {
    stoppers.emplace_back([&] { pool->shutdown(); });
  }
  for (auto& th : stoppers) th.join();
  EXPECT_EQ(executed.load(), queued);
  EXPECT_FALSE(pool->submit([] {}));
  pool.reset();  // destructor runs shutdown() one more time: still a no-op
}

// ---------------------------------------------------- distrust latch

TEST(DistrustLatch, AuditorConvergesOnOneEquivocation) {
  using tlog::Auditor;
  const std::string endpoint = "ts-auditor-latch";
  auto rng = ChaChaRng::from_string_seed("ts-auditor-latch");
  const auto key = nizk::SigningKey::generate(rng);
  Auditor auditor(key.pk, endpoint);

  tlog::Digest root{};
  root[0] = 0x5a;
  const auto honest = tlog::sign_checkpoint(key, 5, root, 1, rng);
  ASSERT_EQ(auditor.observe_checkpoint(honest, nullptr), Auditor::Status::kOk);

  auto other_root = root;
  other_root[7] ^= 0x20;  // same tree size, different signed root
  const auto forged = tlog::sign_checkpoint(key, 5, other_root, 1, rng);

  const auto equiv_before = counter_value("cbl_tlog_equivocations_total",
                                          {{"endpoint", endpoint}});
  const auto audit_equiv_before = counter_value(
      "cbl_tlog_audit_total",
      {{"endpoint", endpoint}, {"result", "equivocation"}});
  const auto audit_distrusted_before = counter_value(
      "cbl_tlog_audit_total",
      {{"endpoint", endpoint}, {"result", "distrusted"}});

  constexpr int kThreads = 8;
  std::vector<Auditor::Status> statuses(kThreads);
  std::atomic<bool> go{false};
  std::vector<std::thread> observers;
  for (int t = 0; t < kThreads; ++t) {
    observers.emplace_back([&, t] {
      while (!go.load()) {
      }
      statuses[static_cast<std::size_t>(t)] =
          auditor.observe_checkpoint(forged, nullptr);
    });
  }
  go.store(true);
  for (auto& th : observers) th.join();

  // Exactly one thread witnesses the equivocation transition; everyone
  // who arrives after the latch gets the sticky kDistrusted refusal.
  int equivocations = 0;
  int distrusted = 0;
  for (const auto status : statuses) {
    if (status == Auditor::Status::kEquivocation) ++equivocations;
    if (status == Auditor::Status::kDistrusted) ++distrusted;
  }
  EXPECT_EQ(equivocations, 1);
  EXPECT_EQ(distrusted, kThreads - 1);
  EXPECT_FALSE(auditor.trusted());

  // The counters reconcile with the transition count, not the caller
  // count: one equivocation, N-1 distrusted refusals.
  EXPECT_EQ(counter_value("cbl_tlog_equivocations_total",
                          {{"endpoint", endpoint}}) -
                equiv_before,
            1.0);
  EXPECT_EQ(counter_value("cbl_tlog_audit_total", {{"endpoint", endpoint},
                                                   {"result", "equivocation"}}) -
                audit_equiv_before,
            1.0);
  EXPECT_EQ(counter_value("cbl_tlog_audit_total", {{"endpoint", endpoint},
                                                   {"result", "distrusted"}}) -
                audit_distrusted_before,
            static_cast<double>(kThreads - 1));
}

TEST(DistrustLatch, ResilientClientCountsOneDistrustUnderConcurrentSyncs) {
  const std::string endpoint = "ts-client-latch";
  obs::ManualClock clock;
  obs::MetricsRegistry::global().set_clock(&clock);

  auto corpus_rng = ChaChaRng::from_string_seed("ts-latch-corpus");
  auto server_rng = ChaChaRng::from_string_seed("ts-latch-server");
  auto key_rng = ChaChaRng::from_string_seed("ts-latch-key");
  auto pub_rng = ChaChaRng::from_string_seed("ts-latch-pub");
  auto transport_rng = ChaChaRng::from_string_seed("ts-latch-trans");
  auto client_rng = ChaChaRng::from_string_seed("ts-latch-client");

  const auto corpus = blocklist::generate_corpus(40, corpus_rng).addresses();
  oprf::OprfServer server(oprf::Oracle::fast(), 4, server_rng);
  server.setup(corpus);
  const auto key = nizk::SigningKey::generate(key_rng);
  tlog::EpochPublisher publisher(key, pub_rng);
  net::Transport transport(net::TransportConfig{.latency_ms_min = 0.5,
                                                .latency_ms_max = 1.0,
                                                .drop_rate = 0.0},
                           transport_rng);
  auto node = std::make_optional<net::BlocklistServiceNode>(
      transport, endpoint, server, oprf::Oracle::fast(), net::NodeLimits(),
      nullptr, &publisher);

  ResilienceConfig config;
  config.hedge_after_ms = 0.0;  // single provider
  ResilientClient client(transport, {endpoint}, client_rng, config, &clock);
  client.pin_tlog_key(endpoint, key.pk);

  const auto distrusted_before =
      counter_value("cbl_tlog_providers_distrusted_total", {});

  // One honest verified sync establishes the checkpoint to equivocate
  // against.
  ASSERT_EQ(client.sync(), 1u);
  ASSERT_FALSE(client.distrusted(endpoint));
  const tlog::Auditor* auditor = client.tlog_auditor(endpoint);
  ASSERT_NE(auditor, nullptr);
  const auto latest = auditor->latest_checkpoint();
  ASSERT_TRUE(latest.has_value());

  // The provider turns equivocator: same tree size, different signed
  // root, served to every checkpoint fetch.
  auto other_root = latest->root;
  other_root[7] ^= 0x20;
  const auto forged = tlog::sign_checkpoint(key, latest->tree_size,
                                            other_root, latest->epoch,
                                            pub_rng);
  node.reset();
  transport.register_endpoint(
      endpoint, [&forged](ByteView frame) -> std::optional<Bytes> {
        const auto request = net::parse_request_frame(frame);
        if (request && request->method == net::Method::kTlogCheckpoint) {
          return net::encode_response_frame(net::Status::kOk,
                                            forged.to_bytes());
        }
        return net::encode_response_frame(net::Status::kBadRequest);
      });

  // N threads observe the same evidence through sync(); the per-provider
  // latch must admit exactly one kDistrusted transition.
  constexpr int kThreads = 8;
  std::atomic<bool> go{false};
  std::vector<std::thread> syncers;
  for (int t = 0; t < kThreads; ++t) {
    syncers.emplace_back([&] {
      while (!go.load()) {
      }
      for (int i = 0; i < 3; ++i) (void)client.sync();
    });
  }
  go.store(true);
  for (auto& th : syncers) th.join();

  EXPECT_TRUE(client.distrusted(endpoint));
  EXPECT_EQ(counter_value("cbl_tlog_providers_distrusted_total", {}) -
                distrusted_before,
            1.0);
  // Condemned means off the wire entirely.
  EXPECT_EQ(client.sync(), 0u);
  const auto out = client.query(corpus[0]);
  EXPECT_NE(out.freshness, Freshness::kFresh);

  obs::MetricsRegistry::global().set_clock(&obs::SteadyClock::instance());
}

// ----------------------------------------- OprfServer off-lock fixes

TEST(OprfServerLocking, AccessorsStayCoherentUnderRotation) {
  auto corpus_rng = ChaChaRng::from_string_seed("ts-rot-corpus");
  const auto corpus = blocklist::generate_corpus(60, corpus_rng).addresses();
  auto server_rng = ChaChaRng::from_string_seed("ts-rot-server");
  oprf::OprfServer server(oprf::Oracle::fast(), 4, server_rng);
  server.setup(corpus);

  // The rotator is the only writer, so the set of commitments ever
  // published is exactly what it records; a torn or off-lock read in
  // key_commitment() would surface as a value outside this set.
  constexpr int kRotations = 8;
  std::set<ec::RistrettoPoint::Encoding> published;
  published.insert(server.key_commitment().encode());

  std::atomic<bool> stop{false};
  std::atomic<int> bad_commitments{0};
  std::atomic<int> bad_reads{0};
  std::vector<std::vector<ec::RistrettoPoint::Encoding>> seen(4);
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      std::uint64_t last_epoch = 0;
      while (!stop.load()) {
        seen[static_cast<std::size_t>(t)].push_back(
            server.key_commitment().encode());
        const auto epoch = server.epoch();
        if (epoch < last_epoch) ++bad_reads;  // epochs only move forward
        last_epoch = epoch;
        if (!server.serves(corpus[static_cast<std::size_t>(t)])) ++bad_reads;
        if (server.entry_count() != corpus.size()) ++bad_reads;
      }
    });
  }
  for (int i = 0; i < kRotations; ++i) {
    server.rotate_key();
    published.insert(server.key_commitment().encode());
    // Exercise the now-locked metadata-provider setter against the
    // same reader storm (it takes the exclusive data lock).
    server.set_metadata_provider(
        i % 2 == 0 ? oprf::MetadataProvider(nullptr)
                   : oprf::MetadataProvider(
                         [](const std::string&) { return Bytes{0x01}; }));
  }
  stop.store(true);
  for (auto& th : readers) th.join();

  for (const auto& observed : seen) {
    for (const auto& encoding : observed) {
      if (!published.contains(encoding)) ++bad_commitments;
    }
  }
  EXPECT_EQ(bad_commitments.load(), 0);
  EXPECT_EQ(bad_reads.load(), 0);
  EXPECT_EQ(published.size(), kRotations + 1u);
}

TEST(OprfServerLocking, LimiterMaintenanceRacesQueries) {
  auto corpus_rng = ChaChaRng::from_string_seed("ts-lim-corpus");
  const auto corpus = blocklist::generate_corpus(50, corpus_rng).addresses();
  auto server_rng = ChaChaRng::from_string_seed("ts-lim-server");
  oprf::OprfServer server(oprf::Oracle::fast(), 4, server_rng);
  server.setup(corpus);

  const std::string api_key = "wallet-key";
  std::atomic<bool> stop{false};
  std::atomic<int> wrong{0};
  std::atomic<int> served{0};

  // Maintenance thread exercises every limiter entry point that used to
  // mutate limiter state off-lock: the on-switch, authorization churn,
  // and window turnover.
  std::thread maintenance([&] {
    for (int round = 0; round < 40; ++round) {
      server.enable_rate_limiting(1u << 20);
      server.authorize_key(api_key);
      server.advance_window();
      server.revoke_key(api_key);
      server.authorize_key(api_key);
    }
    stop.store(true);
  });

  std::vector<std::thread> clients;
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&, t] {
      auto rng =
          ChaChaRng::from_string_seed("ts-lim-client-" + std::to_string(t));
      oprf::OprfClient client(oprf::Oracle::fast(), 4, rng);
      int q = 0;
      while (!stop.load() || q < 20) {
        const auto& target = corpus[static_cast<std::size_t>(
            (t * 17 + q) % static_cast<int>(corpus.size()))];
        auto prepared = client.prepare(target);
        prepared.request.api_key = api_key;
        try {
          const auto response = server.handle(prepared.request);
          if (!client.finish(prepared.pending, response).listed) ++wrong;
          ++served;
        } catch (const ProtocolError&) {
          // Raced a revoke window: an honest refusal, never a wrong
          // verdict.
        }
        ++q;
        if (q > 400) break;  // safety bound
      }
    });
  }
  maintenance.join();
  for (auto& th : clients) th.join();
  EXPECT_EQ(wrong.load(), 0);

  // Post-churn determinism: the key ended authorized, so a query must
  // be served, and a revoked key must be refused.
  auto rng = ChaChaRng::from_string_seed("ts-lim-final");
  oprf::OprfClient client(oprf::Oracle::fast(), 4, rng);
  auto prepared = client.prepare(corpus[0]);
  prepared.request.api_key = api_key;
  EXPECT_TRUE(client.finish(prepared.pending, server.handle(prepared.request))
                  .listed);
  server.revoke_key(api_key);
  auto refused = client.prepare(corpus[0]);
  refused.request.api_key = api_key;
  EXPECT_THROW((void)server.handle(refused.request), ProtocolError);
}

}  // namespace
}  // namespace cbl
