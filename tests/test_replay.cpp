// Tests for public replay verification: a genuine proposal replays
// clean, and every class of tampering with the public record — forged
// proofs, a swapped committee, a doctored tally, malformed bytes — is
// caught with a specific violation.
#include <gtest/gtest.h>

#include "chain/blockchain.h"
#include "common/rng.h"
#include "voting/ceremony.h"
#include "voting/replay.h"

namespace cbl::voting {
namespace {

using cbl::ChaChaRng;
using chain::Blockchain;

class ReplayTest : public ::testing::Test {
 protected:
  ProposalRecord make_record(const std::vector<unsigned>& votes,
                             std::size_t committee_size,
                             const std::string& seed) {
    auto rng = ChaChaRng::from_string_seed(seed);
    Blockchain chain;
    EvaluationConfig cfg;
    cfg.thresh = votes.size();
    cfg.committee_size = committee_size;
    cfg.deposit = 10;
    cfg.provider_deposit = static_cast<chain::Amount>(2 * committee_size);
    Ceremony ceremony(chain, cfg, votes, rng);
    ceremony.fund_and_shield();
    ceremony.register_all();
    ceremony.reveal_all();
    ceremony.finalize_committee();
    ceremony.vote_all();

    const auto exported = ceremony.contract().export_record();
    ProposalRecord record;
    record.config = cfg;
    record.challenge = exported.challenge;
    record.round1 = exported.round1;
    record.vrf_reveals = exported.vrf_reveals;
    record.committee = exported.committee;
    record.round2 = exported.round2;
    record.claimed_outcome = exported.outcome;
    return record;
  }

  bool has_violation(const ReplayReport& report, std::string_view needle) {
    for (const auto& v : report.violations) {
      if (v.find(needle) != std::string::npos) return true;
    }
    return false;
  }

  const commit::Crs& crs_ = commit::Crs::default_crs();
  ChaChaRng rng_ = ChaChaRng::from_string_seed("replay-tests");
};

TEST_F(ReplayTest, GenuineProposalReplaysClean) {
  const auto record = make_record({1, 1, 0, 1, 0}, 5, "clean");
  const auto report = replay_proposal(crs_, record, rng_);
  EXPECT_TRUE(report.valid) << (report.violations.empty()
                                    ? ""
                                    : report.violations.front());
  // 5 binary proofs + 5 pi_A + 5 VRF + 5 pi_B.
  EXPECT_EQ(report.proofs_checked, 20u);
}

TEST_F(ReplayTest, SortitionSubsetReplaysClean) {
  // thresh > N: the replay recomputes the VRF ranking and agrees.
  const auto record = make_record(std::vector<unsigned>(8, 1), 3, "subset");
  const auto report = replay_proposal(crs_, record, rng_);
  EXPECT_TRUE(report.valid);
}

TEST_F(ReplayTest, DoctoredTallyCaught) {
  auto record = make_record({1, 1, 0}, 3, "tally");
  record.claimed_outcome.tally += 1;
  const auto report = replay_proposal(crs_, record, rng_);
  EXPECT_FALSE(report.valid);
  EXPECT_TRUE(has_violation(report, "claimed tally"));
}

TEST_F(ReplayTest, DoctoredOutcomeBitCaught) {
  auto record = make_record({1, 1, 0}, 3, "outcome");
  record.claimed_outcome.approved = !record.claimed_outcome.approved;
  const auto report = replay_proposal(crs_, record, rng_);
  EXPECT_FALSE(report.valid);
  EXPECT_TRUE(has_violation(report, "Eq. (1)"));
}

TEST_F(ReplayTest, SwappedCommitteeCaught) {
  // Claim a committee that ignores the VRF ranking.
  auto record = make_record(std::vector<unsigned>(6, 1), 3, "committee");
  // Replace the committee with the complement set (same size, also valid
  // registrations, but not what the VRF chose) — and give them round-2
  // bytes copied from the real committee so sizes line up.
  std::vector<std::size_t> complement;
  for (std::size_t i = 0; i < 6; ++i) {
    if (std::find(record.committee.begin(), record.committee.end(), i) ==
        record.committee.end()) {
      complement.push_back(i);
    }
  }
  record.committee = complement;
  const auto report = replay_proposal(crs_, record, rng_);
  EXPECT_FALSE(report.valid);
  EXPECT_TRUE(has_violation(report, "committee"));
}

TEST_F(ReplayTest, TamperedRound1BytesCaught) {
  auto record = make_record({1, 0, 1}, 3, "r1-bytes");
  record.round1[1][100] ^= 0x01;
  const auto report = replay_proposal(crs_, record, rng_);
  EXPECT_FALSE(report.valid);
}

TEST_F(ReplayTest, TamperedRound2BytesCaught) {
  auto record = make_record({1, 0, 1}, 3, "r2-bytes");
  record.round2[0][40] ^= 0x01;
  const auto report = replay_proposal(crs_, record, rng_);
  EXPECT_FALSE(report.valid);
}

TEST_F(ReplayTest, ForgedVrfRevealCaught) {
  auto record = make_record({1, 1, 1, 0}, 2, "vrf");
  // Swap two reveals: each fails against the other's registered key.
  std::swap(record.vrf_reveals[0], record.vrf_reveals[1]);
  const auto report = replay_proposal(crs_, record, rng_);
  EXPECT_FALSE(report.valid);
  EXPECT_TRUE(has_violation(report, "vrf reveal"));
}

TEST_F(ReplayTest, MissingRound2Caught) {
  auto record = make_record({1, 1, 0}, 3, "missing");
  record.round2.pop_back();
  const auto report = replay_proposal(crs_, record, rng_);
  EXPECT_FALSE(report.valid);
  EXPECT_TRUE(has_violation(report, "round-2 count"));
}

TEST_F(ReplayTest, WeightOverCapCaught) {
  auto record = make_record({1, 0}, 2, "weight");
  record.config.max_weight = 0;  // auditor applies stricter rules
  const auto report = replay_proposal(crs_, record, rng_);
  EXPECT_FALSE(report.valid);
  EXPECT_TRUE(has_violation(report, "weight"));
}

}  // namespace
}  // namespace cbl::voting
