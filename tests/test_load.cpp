// Deterministic unit tests for the macro-load building blocks: the
// Zipf sampler (shape vs the closed-form pmf, seed replay), the
// open-loop Poisson arrival schedule (mean/variance of gaps,
// monotonicity), SLO accounting (histogram quantiles vs brute-force
// sort), and the workload model (universe layout, ground truth,
// resolution-flag ratios).
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "load/arrivals.h"
#include "load/workload.h"
#include "load/zipf.h"
#include "obs/metrics.h"

namespace {

using cbl::ChaChaRng;
using cbl::load::PoissonArrivals;
using cbl::load::poisson_schedule_ns;
using cbl::load::uniform_unit;
using cbl::load::Workload;
using cbl::load::WorkloadConfig;
using cbl::load::ZipfSampler;
using cbl::obs::Histogram;

TEST(Zipf, RejectsDegenerateParameters) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, -0.5), std::invalid_argument);
}

TEST(Zipf, PmfMatchesClosedForm) {
  const std::size_t n = 64;
  const double s = 1.1;
  ZipfSampler zipf(n, s);
  // pmf(k) = (k+1)^-s / H_{n,s} by definition; check normalization and
  // the closed-form ratio between ranks.
  double sum = 0.0;
  for (std::size_t k = 0; k < n; ++k) sum += zipf.pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_NEAR(zipf.pmf(0) / zipf.pmf(1), std::pow(2.0, s), 1e-12);
  EXPECT_NEAR(zipf.pmf(3) / zipf.pmf(7), std::pow(2.0, s), 1e-12);
}

TEST(Zipf, EmpiricalShapeMatchesPmf) {
  const std::size_t n = 16;
  ZipfSampler zipf(n, 1.0);
  auto rng = ChaChaRng::from_string_seed("test/zipf/shape");
  const std::size_t draws = 100'000;
  std::vector<std::uint64_t> counts(n, 0);
  for (std::size_t i = 0; i < draws; ++i) ++counts[zipf.sample(rng)];
  for (std::size_t k = 0; k < n; ++k) {
    const double freq =
        static_cast<double>(counts[k]) / static_cast<double>(draws);
    EXPECT_NEAR(freq, zipf.pmf(k), 0.01) << "rank " << k;
  }
  // Skewed: the head rank dominates the tail rank decisively.
  EXPECT_GT(counts[0], 10 * counts[n - 1]);
}

TEST(Zipf, SeedReplayIsExact) {
  ZipfSampler zipf(1024, 1.1);
  auto a = ChaChaRng::from_string_seed("test/zipf/replay");
  auto b = ChaChaRng::from_string_seed("test/zipf/replay");
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(zipf.sample(a), zipf.sample(b)) << "draw " << i;
  }
}

TEST(Zipf, ZeroSkewIsUniform) {
  const std::size_t n = 8;
  ZipfSampler zipf(n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_DOUBLE_EQ(zipf.pmf(k), 1.0 / static_cast<double>(n));
  }
}

TEST(Arrivals, RejectsNonPositiveRate) {
  EXPECT_THROW(PoissonArrivals(0.0), std::invalid_argument);
  EXPECT_THROW(PoissonArrivals(-10.0), std::invalid_argument);
}

TEST(Arrivals, ScheduleIsMonotoneFromStart) {
  auto rng = ChaChaRng::from_string_seed("test/arrivals/monotone");
  const std::uint64_t start_ns = 5'000'000'000;
  PoissonArrivals arrivals(250.0, start_ns);
  std::uint64_t prev = start_ns;
  for (int i = 0; i < 10'000; ++i) {
    const std::uint64_t t = arrivals.next_ns(rng);
    ASSERT_GE(t, prev);
    prev = t;
  }
}

TEST(Arrivals, GapsAreExponentialAtTheConfiguredRate) {
  auto rng = ChaChaRng::from_string_seed("test/arrivals/exponential");
  const double rate_qps = 1000.0;  // mean gap 1 ms
  const std::size_t draws = 50'000;
  const auto schedule = poisson_schedule_ns(rate_qps, draws, rng);
  ASSERT_EQ(schedule.size(), draws);
  std::vector<double> gaps_ms;
  gaps_ms.reserve(draws);
  std::uint64_t prev = 0;
  for (const std::uint64_t t : schedule) {
    gaps_ms.push_back(static_cast<double>(t - prev) / 1e6);
    prev = t;
  }
  double mean = 0.0;
  for (const double g : gaps_ms) mean += g;
  mean /= static_cast<double>(draws);
  EXPECT_NEAR(mean, 1.0, 0.03);
  // Exponential gaps have CV = 1: the variance equals the squared mean.
  double var = 0.0;
  for (const double g : gaps_ms) var += (g - mean) * (g - mean);
  var /= static_cast<double>(draws);
  EXPECT_NEAR(var / (mean * mean), 1.0, 0.1);
}

TEST(Arrivals, SeedReplayIsExact) {
  auto a = ChaChaRng::from_string_seed("test/arrivals/replay");
  auto b = ChaChaRng::from_string_seed("test/arrivals/replay");
  EXPECT_EQ(poisson_schedule_ns(777.0, 2000, a),
            poisson_schedule_ns(777.0, 2000, b));
}

TEST(Arrivals, UniformUnitIsInHalfOpenUnitInterval) {
  auto rng = ChaChaRng::from_string_seed("test/arrivals/unit");
  for (int i = 0; i < 10'000; ++i) {
    const double u = uniform_unit(rng);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

// SLO accounting: the log-bucket histogram the harness reports from
// must agree with a brute-force sort at p50/p99/p999 to within one
// bucket's resolution (the estimator interpolates inside the bucket
// that crosses the rank, so the exact order statistic lies within a
// step factor of the estimate).
TEST(SloAccounting, QuantilesAgreeWithBruteForceSort) {
  Histogram* hist = nullptr;
  cbl::obs::MetricsRegistry local;
  hist = &local.histogram("test_slo_latency_ms",
                          Histogram::default_latency_ms_buckets());
  std::vector<double> values;
  std::uint64_t state = 99;
  const std::size_t n = 5000;
  values.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const double u =
        static_cast<double>(state >> 11) * 0x1.0p-53;  // [0, 1)
    const double v = 0.1 * std::exp(5.0 * u);  // log-uniform 0.1..~15 ms
    values.push_back(v);
    hist->observe(v);
  }
  std::sort(values.begin(), values.end());
  const double step = std::pow(10.0, 1.0 / 5.0);  // per-decade = 5
  for (const double q : {0.50, 0.99, 0.999}) {
    const std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(n)));
    const double exact = values[std::min(rank, n) - 1];
    const double est = hist->quantile(q);
    EXPECT_GE(est, exact / step) << "q=" << q;
    EXPECT_LE(est, exact * step) << "q=" << q;
  }
  EXPECT_LE(hist->p50(), hist->p99());
  EXPECT_LE(hist->p99(), hist->p999());
}

TEST(Workload, RejectsBadUniverses) {
  auto rng = ChaChaRng::from_string_seed("test/workload/bad");
  WorkloadConfig config;
  config.unique_addresses = 1000;  // not a power of two
  config.listed_addresses = 100;
  EXPECT_THROW(Workload(config, rng), std::invalid_argument);
  config.unique_addresses = 1024;
  config.listed_addresses = 0;
  EXPECT_THROW(Workload(config, rng), std::invalid_argument);
  config.listed_addresses = 1024;  // must be strictly below the universe
  EXPECT_THROW(Workload(config, rng), std::invalid_argument);
}

TEST(Workload, UniverseLayoutAndGroundTruth) {
  auto rng = ChaChaRng::from_string_seed("test/workload/layout");
  WorkloadConfig config;
  config.unique_addresses = 256;
  config.listed_addresses = 64;
  Workload workload(config, rng);
  ASSERT_EQ(workload.addresses().size(), 256u);
  ASSERT_EQ(workload.listed().size(), 64u);
  const std::set<std::string> unique(workload.addresses().begin(),
                                     workload.addresses().end());
  EXPECT_EQ(unique.size(), 256u) << "addresses must be distinct";

  auto traffic = ChaChaRng::from_string_seed("test/workload/traffic");
  std::set<const std::string*> seen;
  std::uint64_t cache_hits = 0;
  const std::size_t draws = 50'000;
  for (std::size_t i = 0; i < draws; ++i) {
    const Workload::Query query = workload.sample(traffic);
    ASSERT_NE(query.address, nullptr);
    const auto idx = static_cast<std::size_t>(
        query.address - workload.addresses().data());
    ASSERT_LT(idx, workload.addresses().size());
    // Ground truth is positional: the listed subset is the universe
    // prefix handed to OprfServer::setup.
    EXPECT_EQ(query.listed, idx < workload.listed_count());
    // Modeled resolutions are exclusive, and prefix-local answers are
    // only modeled for clean addresses (a listed address always has its
    // prefix in the list, so it can never resolve as definitely-clean).
    if (query.cache_hit) EXPECT_FALSE(query.prefix_local);
    if (query.prefix_local) EXPECT_FALSE(query.listed);
    if (query.cache_hit) ++cache_hits;
    seen.insert(query.address);
  }
  // The multiplicative-hash rank permutation is a bijection, so heavy
  // sampling reaches the whole universe.
  EXPECT_EQ(seen.size(), workload.addresses().size());
  const double hit_rate =
      static_cast<double>(cache_hits) / static_cast<double>(draws);
  EXPECT_NEAR(hit_rate, config.cache_hit_ratio, 0.02);
}

TEST(Workload, SampleStreamReplaysExactly) {
  auto corpus = ChaChaRng::from_string_seed("test/workload/replay-corpus");
  WorkloadConfig config;
  config.unique_addresses = 128;
  config.listed_addresses = 32;
  Workload workload(config, corpus);
  auto a = ChaChaRng::from_string_seed("test/workload/replay");
  auto b = ChaChaRng::from_string_seed("test/workload/replay");
  for (int i = 0; i < 2000; ++i) {
    const auto qa = workload.sample(a);
    const auto qb = workload.sample(b);
    ASSERT_EQ(qa.address, qb.address);
    ASSERT_EQ(qa.listed, qb.listed);
    ASSERT_EQ(qa.cache_hit, qb.cache_hit);
    ASSERT_EQ(qa.prefix_local, qb.prefix_local);
  }
}

}  // namespace
