// Tests for the decentralized evaluation protocol (Fig. 4): the Y
// aggregation identity, DLP recovery, exhaustive tally correctness, the
// full ceremony with payoffs, and a battery of failure injections
// (forged proofs, non-binary votes, double voting, stalling, replay).
#include <gtest/gtest.h>

#include "chain/blockchain.h"
#include "common/rng.h"
#include "voting/audit.h"
#include "voting/ceremony.h"
#include "voting/contract.h"
#include "voting/dlp.h"
#include "voting/shareholder.h"
#include "blocklist/address.h"

namespace cbl::voting {
namespace {

using cbl::ChaChaRng;
using chain::Blockchain;
using cbl::ChainError;
using ec::RistrettoPoint;
using ec::Scalar;

class VotingTest : public ::testing::Test {
 protected:
  ChaChaRng rng_ = ChaChaRng::from_string_seed("voting-tests");
};

// -------------------------------------------------------------- compute_y

TEST_F(VotingTest, YAggregationCancels) {
  // The HRZ identity: sum_i x_i * Y_i = 0, hence prod psi_i = g^{sum v}.
  const auto& crs = commit::Crs::default_crs();
  for (std::size_t n : {2u, 3u, 5u, 8u}) {
    std::vector<Scalar> secrets;
    std::vector<RistrettoPoint> c0s;
    for (std::size_t i = 0; i < n; ++i) {
      secrets.push_back(Scalar::random(rng_));
      c0s.push_back(crs.g * secrets.back());
    }
    RistrettoPoint sum = RistrettoPoint::identity();
    for (std::size_t p = 0; p < n; ++p) {
      sum = sum + compute_y(c0s, p) * secrets[p];
    }
    EXPECT_TRUE(sum == RistrettoPoint::identity()) << "n=" << n;
  }
}

TEST_F(VotingTest, YPositionOutOfRangeThrows) {
  EXPECT_THROW(compute_y({RistrettoPoint::base()}, 1), std::invalid_argument);
}

// --------------------------------------------------------------------- DLP

TEST_F(VotingTest, DlpBruteforceAndBsgsAgree) {
  const auto g = RistrettoPoint::base();
  for (std::uint64_t t : {0u, 1u, 7u, 25u, 63u}) {
    const RistrettoPoint v = g * Scalar::from_u64(t);
    EXPECT_EQ(solve_dlp_bruteforce(g, v, 63), t);
    EXPECT_EQ(solve_dlp_bsgs(g, v, 63), t);
  }
}

TEST_F(VotingTest, DlpOutOfRangeReturnsNullopt) {
  const auto g = RistrettoPoint::base();
  const RistrettoPoint v = g * Scalar::from_u64(100);
  EXPECT_FALSE(solve_dlp_bruteforce(g, v, 50).has_value());
  EXPECT_FALSE(solve_dlp_bsgs(g, v, 50).has_value());
}

// ------------------------------------------------------- tally correctness

EvaluationConfig small_config(std::size_t thresh, std::size_t n) {
  EvaluationConfig cfg;
  cfg.thresh = thresh;
  cfg.committee_size = n;
  cfg.deposit = 100;
  cfg.reward = 1;
  cfg.penalty = 1;
  cfg.provider_deposit = static_cast<chain::Amount>(n) * 2;
  return cfg;
}

// Exhaustive sweep over every vote pattern for a 3-member committee where
// everyone registers and is selected (thresh == N).
class TallySweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(TallySweep, TallyEqualsSumOfVotes) {
  const unsigned pattern = GetParam();
  std::vector<unsigned> votes;
  unsigned expected = 0;
  for (unsigned i = 0; i < 3; ++i) {
    votes.push_back((pattern >> i) & 1);
    expected += votes.back();
  }
  auto rng = ChaChaRng::from_string_seed("tally-" + std::to_string(pattern));
  Blockchain chain;
  Ceremony ceremony(chain, small_config(3, 3), votes, rng);
  const auto result = ceremony.run();
  EXPECT_EQ(result.outcome.tally, expected);
  EXPECT_EQ(result.outcome.approved, expected * 2 > 3);
}

INSTANTIATE_TEST_SUITE_P(AllPatterns, TallySweep,
                         ::testing::Range(0u, 8u));

TEST_F(VotingTest, FiveMemberCommitteeMajority) {
  Blockchain chain;
  Ceremony ceremony(chain, small_config(5, 5), {1, 1, 1, 0, 0}, rng_);
  const auto result = ceremony.run();
  EXPECT_EQ(result.outcome.tally, 3u);
  EXPECT_TRUE(result.outcome.approved);
}

TEST_F(VotingTest, TieIsRejection) {
  // Eq. (1): sum <= half means Q-hat = 0; with N = 4 and 2 yes votes the
  // service is NOT approved.
  Blockchain chain;
  Ceremony ceremony(chain, small_config(4, 4), {1, 1, 0, 0}, rng_);
  const auto result = ceremony.run();
  EXPECT_EQ(result.outcome.tally, 2u);
  EXPECT_FALSE(result.outcome.approved);
}

// ------------------------------------------------------------ VRF sortition

TEST_F(VotingTest, SortitionSelectsExactlyN) {
  Blockchain chain;
  Ceremony ceremony(chain, small_config(10, 4), std::vector<unsigned>(10, 1),
                    rng_);
  ceremony.fund_and_shield();
  ceremony.register_all();
  ceremony.reveal_all();
  ceremony.finalize_committee();

  std::size_t selected = 0;
  for (const auto& p : ceremony.participants()) {
    if (ceremony.contract().is_selected(p.index)) ++selected;
  }
  EXPECT_EQ(selected, 4u);
  EXPECT_EQ(ceremony.contract().committee_secrets().size(), 4u);

  // Unselected candidates get their stake mobility back immediately.
  for (const auto& p : ceremony.participants()) {
    const bool locked = chain.shielded_pool().note_locked(
        p.shareholder->deposit_note());
    EXPECT_EQ(locked, ceremony.contract().is_selected(p.index));
  }
}

TEST_F(VotingTest, SortitionOutcomeDependsOnChallenge) {
  // Two chains with different event histories produce different beacons,
  // hence (almost surely) different committees for the same candidates.
  auto run_committee = [&](bool extra_event, std::string_view seed) {
    auto rng = ChaChaRng::from_string_seed(std::string(seed));
    Blockchain chain;
    if (extra_event) chain.emit_event("history-divergence");
    Ceremony ceremony(chain, small_config(12, 3),
                      std::vector<unsigned>(12, 1), rng);
    ceremony.fund_and_shield();
    ceremony.register_all();
    ceremony.reveal_all();
    ceremony.finalize_committee();
    std::vector<std::size_t> committee;
    for (const auto& p : ceremony.participants()) {
      if (ceremony.contract().is_selected(p.index)) committee.push_back(p.index);
    }
    return committee;
  };
  // Same RNG seed => identical candidates; only the challenge differs.
  const auto c1 = run_committee(false, "sortition");
  const auto c2 = run_committee(true, "sortition");
  EXPECT_NE(c1, c2);
}

// ------------------------------------------------------------------ payoffs

TEST_F(VotingTest, WinnersGainLosersLose) {
  Blockchain chain;
  const auto cfg = small_config(5, 5);
  std::vector<unsigned> votes = {1, 1, 1, 0, 0};
  Ceremony ceremony(chain, cfg, votes, rng_);
  const auto result = ceremony.run();
  ASSERT_TRUE(result.outcome.approved);

  // Payouts align with committee_indices == participant indices here.
  ASSERT_EQ(result.payouts.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    const chain::Amount expected =
        votes[i] == 1 ? cfg.deposit + cfg.reward : cfg.deposit - cfg.penalty;
    EXPECT_EQ(result.payouts[i], expected) << "participant " << i;
  }
}

TEST_F(VotingTest, PayoffConservesTotalSupply) {
  Blockchain chain;
  chain::Amount before = 0;
  {
    Ceremony ceremony(chain, small_config(4, 4), {1, 0, 1, 1}, rng_);
    before = chain.ledger().total_supply();
    ceremony.run();
  }
  EXPECT_EQ(chain.ledger().total_supply(), before);
}

TEST_F(VotingTest, WithdrawnAccountsAreFresh) {
  // Anonymity plumbing: payout lands on accounts that never appeared in
  // registration transactions.
  Blockchain chain;
  Ceremony ceremony(chain, small_config(3, 3), {1, 1, 0}, rng_);
  ceremony.run();
  for (const auto& p : ceremony.participants()) {
    for (const auto& r : chain.receipts()) {
      if (r.payer == p.payout_account) {
        EXPECT_EQ(r.method, "withdraw");
      }
    }
  }
}

TEST_F(VotingTest, LoserCannotClaimWinnerAmount) {
  Blockchain chain;
  const auto cfg = small_config(3, 3);
  Ceremony ceremony(chain, cfg, {1, 1, 0}, rng_);
  ceremony.fund_and_shield();
  ceremony.register_all();
  ceremony.reveal_all();
  ceremony.finalize_committee();
  ceremony.vote_all();
  ceremony.contract().run_payoff(ceremony.provider_account());

  // Participant 2 voted 0, outcome approved: their updated note is worth
  // deposit - penalty. Claiming deposit + reward must fail.
  auto& loser = ceremony.participants()[2];
  const auto updated = ceremony.contract().updated_note(loser.index);
  EXPECT_THROW(
      chain.shielded_pool().unshield(
          updated, cfg.deposit + cfg.reward,
          loser.shareholder->make_withdraw_proof(true, cfg.reward, cfg.penalty,
                                                 rng_),
          loser.payout_account),
      ChainError);
  // The honest claim works.
  chain.shielded_pool().unshield(
      updated, cfg.deposit - cfg.penalty,
      loser.shareholder->make_withdraw_proof(true, cfg.reward, cfg.penalty,
                                             rng_),
      loser.payout_account);
  EXPECT_EQ(chain.ledger().balance(loser.payout_account),
            cfg.deposit - cfg.penalty);
}

// ---------------------------------------------------------- failure paths

struct ContractHarness {
  Blockchain chain;
  EvaluationConfig cfg;
  chain::AccountId provider;
  std::unique_ptr<EvaluationContract> contract;

  explicit ContractHarness(EvaluationConfig config) : cfg(config) {
    provider = chain.ledger().create_account("provider");
    chain.ledger().mint(provider, cfg.provider_deposit + 100);
    contract = std::make_unique<EvaluationContract>(chain, cfg, provider);
  }

  Shareholder make_funded_shareholder(unsigned vote, Rng& rng) {
    Shareholder sh(chain.crs(), rng, vote, cfg.deposit);
    const auto acct = chain.ledger().create_account("sh");
    chain.ledger().mint(acct, cfg.deposit);
    chain.shielded_pool().shield(acct, cfg.deposit, sh.deposit_note(),
                                 sh.make_shield_proof(rng));
    return sh;
  }
};

TEST_F(VotingTest, RegistrationRejectsForgedProofA) {
  ContractHarness h(small_config(3, 3));
  auto sh = h.make_funded_shareholder(1, rng_);
  auto sub = sh.build_round1(rng_);
  sub.proof_a.omega = sub.proof_a.omega + Scalar::one();
  EXPECT_THROW(h.contract->register_shareholder(0, sub), ChainError);
  EXPECT_EQ(h.contract->registered_count(), 0u);
}

TEST_F(VotingTest, RegistrationRejectsForgedVoteProof) {
  ContractHarness h(small_config(3, 3));
  auto sh = h.make_funded_shareholder(0, rng_);
  auto sub = sh.build_round1(rng_);
  sub.vote_proof.z0 = sub.vote_proof.z0 + Scalar::one();
  EXPECT_THROW(h.contract->register_shareholder(0, sub), ChainError);
}

TEST_F(VotingTest, RegistrationRejectsNonBinaryVoteCommitment) {
  // A hand-crafted submission committing to v = 5 with internally
  // consistent pi_A but an unprovable binary-vote statement.
  ContractHarness h(small_config(3, 3));
  auto sh = h.make_funded_shareholder(1, rng_);
  auto sub = sh.build_round1(rng_);
  // Replace comm_vote by g^5 h^x; the OR proof cannot cover it, keep the
  // old proof -> must be rejected.
  sub.comm_vote =
      h.chain.crs().g * Scalar::from_u64(5) + h.chain.crs().h * sh.secret();
  EXPECT_THROW(h.contract->register_shareholder(0, sub), ChainError);
}

TEST_F(VotingTest, RegistrationRejectsUnshieldedDeposit) {
  ContractHarness h(small_config(3, 3));
  // Shareholder never shields the note.
  Shareholder sh(h.chain.crs(), rng_, 1, h.cfg.deposit);
  EXPECT_THROW(h.contract->register_shareholder(0, sh.build_round1(rng_)),
               ChainError);
}

TEST_F(VotingTest, RegistrationRejectsReplayedSubmission) {
  ContractHarness h(small_config(3, 3));
  auto sh = h.make_funded_shareholder(1, rng_);
  const auto sub = sh.build_round1(rng_);
  h.contract->register_shareholder(0, sub);
  // Same material again: duplicate VRF key / commitments / locked note.
  EXPECT_THROW(h.contract->register_shareholder(0, sub), ChainError);
}

TEST_F(VotingTest, RegistrationClosesAtThresh) {
  ContractHarness h(small_config(2, 2));
  auto s1 = h.make_funded_shareholder(1, rng_);
  auto s2 = h.make_funded_shareholder(1, rng_);
  auto s3 = h.make_funded_shareholder(1, rng_);
  h.contract->register_shareholder(0, s1.build_round1(rng_));
  EXPECT_THROW((void)h.contract->challenge(), ChainError);
  h.contract->register_shareholder(0, s2.build_round1(rng_));
  EXPECT_EQ(h.contract->phase(), EvaluationContract::Phase::kVrfReveal);
  EXPECT_FALSE(h.contract->challenge().empty());
  EXPECT_THROW(h.contract->register_shareholder(0, s3.build_round1(rng_)),
               ChainError);
}

TEST_F(VotingTest, VrfRevealRejectsWrongProof) {
  ContractHarness h(small_config(2, 2));
  auto s1 = h.make_funded_shareholder(1, rng_);
  auto s2 = h.make_funded_shareholder(1, rng_);
  const auto i1 = h.contract->register_shareholder(0, s1.build_round1(rng_));
  h.contract->register_shareholder(0, s2.build_round1(rng_));

  // s2's reveal under s1's index: VRF pk mismatch.
  EXPECT_THROW(
      h.contract->reveal_vrf(
          i1, s2.build_vrf_reveal(h.contract->challenge(), rng_), 0),
      ChainError);
  // Correct reveal passes, duplicate is rejected.
  h.contract->reveal_vrf(i1, s1.build_vrf_reveal(h.contract->challenge(), rng_),
                         0);
  EXPECT_THROW(
      h.contract->reveal_vrf(
          i1, s1.build_vrf_reveal(h.contract->challenge(), rng_), 0),
      ChainError);
}

TEST_F(VotingTest, Round2RejectsForgedPsi) {
  Blockchain chain;
  Ceremony ceremony(chain, small_config(3, 3), {1, 1, 1}, rng_);
  ceremony.fund_and_shield();
  ceremony.register_all();
  ceremony.reveal_all();
  ceremony.finalize_committee();

  auto& p = ceremony.participants()[0];
  const auto secrets = ceremony.contract().committee_secrets();
  auto sub = p.shareholder->build_round2(secrets, 0, rng_);
  sub.psi = sub.psi + RistrettoPoint::base();  // flip the vote to 2
  EXPECT_THROW(
      ceremony.contract().submit_round2(p.index, sub, p.funding_account),
      ChainError);
}

TEST_F(VotingTest, Round2RejectsDoubleVoteAndOutsiders) {
  Blockchain chain;
  Ceremony ceremony(chain, small_config(4, 2), {1, 1, 1, 1}, rng_);
  ceremony.fund_and_shield();
  ceremony.register_all();
  ceremony.reveal_all();
  ceremony.finalize_committee();

  const auto secrets = ceremony.contract().committee_secrets();
  bool tested_outsider = false, tested_double = false;
  for (auto& p : ceremony.participants()) {
    const auto pos = ceremony.contract().committee_position(p.index);
    if (!pos && !tested_outsider) {
      // Not selected: any submission is rejected.
      auto forged = p.shareholder->build_round2(secrets, 0, rng_);
      EXPECT_THROW(
          ceremony.contract().submit_round2(p.index, forged, p.funding_account),
          ChainError);
      tested_outsider = true;
    } else if (pos && !tested_double) {
      const auto sub = p.shareholder->build_round2(secrets, *pos, rng_);
      ceremony.contract().submit_round2(p.index, sub, p.funding_account);
      EXPECT_THROW(
          ceremony.contract().submit_round2(p.index, sub, p.funding_account),
          ChainError);
      tested_double = true;
    }
  }
  EXPECT_TRUE(tested_outsider);
  EXPECT_TRUE(tested_double);
}

TEST_F(VotingTest, AbortStalledRedistributesAndReleases) {
  Blockchain chain;
  const auto cfg = small_config(3, 3);
  Ceremony ceremony(chain, cfg, {1, 1, 0}, rng_);
  ceremony.fund_and_shield();
  ceremony.register_all();
  ceremony.reveal_all();
  ceremony.finalize_committee();

  // Only participants 0 and 1 vote; 2 stalls.
  const auto secrets = ceremony.contract().committee_secrets();
  for (std::size_t i = 0; i < 2; ++i) {
    auto& p = ceremony.participants()[i];
    const auto pos = ceremony.contract().committee_position(p.index);
    ceremony.contract().submit_round2(
        p.index, p.shareholder->build_round2(secrets, *pos, rng_),
        p.funding_account);
  }
  const auto treasury_before =
      chain.ledger().balance(chain.ledger().treasury());
  ceremony.contract().abort_stalled(ceremony.provider_account());
  EXPECT_EQ(ceremony.contract().phase(), EvaluationContract::Phase::kAborted);

  // Responders' notes unlocked; staller's value redistributed.
  EXPECT_FALSE(chain.shielded_pool().note_locked(
      ceremony.participants()[0].shareholder->deposit_note()));
  EXPECT_TRUE(chain.shielded_pool().note_locked(
      ceremony.participants()[2].shareholder->deposit_note()));
  EXPECT_EQ(chain.ledger().balance(chain.ledger().treasury()),
            treasury_before + cfg.deposit);
}

TEST_F(VotingTest, AbortRequiresActualStall) {
  Blockchain chain;
  Ceremony ceremony(chain, small_config(2, 2), {1, 0}, rng_);
  ceremony.fund_and_shield();
  ceremony.register_all();
  ceremony.reveal_all();
  ceremony.finalize_committee();
  ceremony.vote_all();  // completes -> kTallied
  EXPECT_THROW(ceremony.contract().abort_stalled(ceremony.provider_account()),
               ChainError);
}

TEST_F(VotingTest, OutcomeUnavailableBeforeTally) {
  ContractHarness h(small_config(2, 2));
  EXPECT_THROW((void)h.contract->outcome(), ChainError);
}

TEST_F(VotingTest, ConfigValidation) {
  Blockchain chain;
  const auto provider = chain.ledger().create_account("p");
  chain.ledger().mint(provider, 1'000);
  EvaluationConfig bad;
  bad.committee_size = 5;
  bad.thresh = 3;  // N > thresh
  EXPECT_THROW(EvaluationContract(chain, bad, provider), ChainError);
  bad = EvaluationConfig{};
  bad.provider_deposit = 0;  // cannot cover rewards
  EXPECT_THROW(EvaluationContract(chain, bad, provider), ChainError);
}

TEST_F(VotingTest, StoredProofBytesAccounting) {
  Blockchain chain;
  const auto cfg = small_config(4, 3);
  Ceremony ceremony(chain, cfg, {1, 1, 0, 1}, rng_);
  ceremony.run();
  const std::size_t expected = 4 * Round1Submission::wire_size() +
                               4 * VrfReveal::wire_size() +
                               3 * Round2Submission::wire_size();
  EXPECT_EQ(ceremony.contract().stored_proof_bytes(), expected);
}

// -------------------------------------------------------------------- audit

TEST_F(VotingTest, AuditPassesForHonestProvider) {
  auto server_rng = ChaChaRng::from_string_seed("audit-server");
  auto client_rng = ChaChaRng::from_string_seed("audit-client");
  std::vector<std::string> corpus;
  for (int i = 0; i < 50; ++i) {
    corpus.push_back(blocklist::random_address(blocklist::Chain::kBitcoin,
                                               server_rng));
  }
  oprf::OprfServer server(oprf::Oracle::fast(), 3, server_rng);
  server.setup(corpus);
  oprf::OprfClient client(oprf::Oracle::fast(), 3, client_rng);

  const auto report = audit_provider(server, client, corpus, 25, rng_);
  EXPECT_EQ(report.samples, 25u);
  EXPECT_TRUE(report.passed());
}

TEST_F(VotingTest, AuditCatchesMissingEntries) {
  // The provider publishes 50 entries but only serves 25 of them.
  auto server_rng = ChaChaRng::from_string_seed("audit2-server");
  auto client_rng = ChaChaRng::from_string_seed("audit2-client");
  std::vector<std::string> published;
  for (int i = 0; i < 50; ++i) {
    published.push_back(blocklist::random_address(blocklist::Chain::kEthereum,
                                                  server_rng));
  }
  std::vector<std::string> served(published.begin(), published.begin() + 25);
  oprf::OprfServer server(oprf::Oracle::fast(), 2, server_rng);
  server.setup(served);
  oprf::OprfClient client(oprf::Oracle::fast(), 2, client_rng);

  const auto report = audit_provider(server, client, published, 40, rng_);
  EXPECT_FALSE(report.passed());
  EXPECT_GT(report.membership_failures, 5u);
}

}  // namespace
}  // namespace cbl::voting
