// Tests for batch verification: equivalence with sequential
// verification, detection of a single bad proof anywhere in the batch,
// statement-shuffling detection, and edge cases.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "nizk/batch.h"

namespace cbl::nizk {
namespace {

using cbl::ChaChaRng;
using commit::Crs;
using ec::RistrettoPoint;
using ec::Scalar;

class BatchTest : public ::testing::Test {
 protected:
  const Crs& crs_ = Crs::default_crs();
  ChaChaRng rng_ = ChaChaRng::from_string_seed("batch-tests");

  std::pair<std::vector<StatementA>, std::vector<ProofA>> make_a_batch(
      std::size_t n) {
    std::vector<StatementA> statements;
    std::vector<ProofA> proofs;
    for (std::size_t i = 0; i < n; ++i) {
      const Scalar x = Scalar::random(rng_);
      statements.push_back({crs_.g * x, crs_.h1 * x, crs_.h2 * x});
      proofs.push_back(ProofA::prove(crs_, statements.back(), x, rng_));
    }
    return {statements, proofs};
  }

  std::pair<std::vector<StatementB>, std::vector<ProofB>> make_b_batch(
      std::size_t n) {
    std::vector<StatementB> statements;
    std::vector<ProofB> proofs;
    for (std::size_t i = 0; i < n; ++i) {
      const Scalar x = Scalar::random(rng_);
      const Scalar v = Scalar::from_u64(rng_.uniform(2));
      const RistrettoPoint y = crs_.g * Scalar::random(rng_);
      StatementB st;
      st.c0 = crs_.g * x;
      st.big_c = crs_.g * v + crs_.h * x;
      st.psi = crs_.g * v + y * x;
      st.y = y;
      statements.push_back(st);
      proofs.push_back(ProofB::prove(crs_, st, x, v, rng_));
    }
    return {statements, proofs};
  }
};

TEST_F(BatchTest, ProofABatchAccepts) {
  auto [statements, proofs] = make_a_batch(10);
  EXPECT_TRUE(batch_verify_proof_a(crs_, statements, proofs, rng_));
}

TEST_F(BatchTest, ProofAEmptyBatchAccepts) {
  EXPECT_TRUE(batch_verify_proof_a(crs_, {}, {}, rng_));
}

TEST_F(BatchTest, ProofASingleBadProofDetectedAnywhere) {
  for (std::size_t bad_pos : {0u, 4u, 9u}) {
    auto [statements, proofs] = make_a_batch(10);
    proofs[bad_pos].omega = proofs[bad_pos].omega + Scalar::one();
    EXPECT_FALSE(batch_verify_proof_a(crs_, statements, proofs, rng_))
        << "bad at " << bad_pos;
  }
}

TEST_F(BatchTest, ProofAWrongStatementDetected) {
  auto [statements, proofs] = make_a_batch(6);
  std::swap(statements[1], statements[4]);  // proofs no longer match
  EXPECT_FALSE(batch_verify_proof_a(crs_, statements, proofs, rng_));
}

TEST_F(BatchTest, ProofASizeMismatchThrows) {
  auto [statements, proofs] = make_a_batch(3);
  proofs.pop_back();
  EXPECT_THROW(
      (void)batch_verify_proof_a(crs_, statements, proofs, rng_),
      std::invalid_argument);
}

TEST_F(BatchTest, ProofBBatchAccepts) {
  auto [statements, proofs] = make_b_batch(8);
  EXPECT_TRUE(batch_verify_proof_b(crs_, statements, proofs, rng_));
}

TEST_F(BatchTest, ProofBBadProofDetected) {
  auto [statements, proofs] = make_b_batch(8);
  proofs[3].omega_v = proofs[3].omega_v + Scalar::one();
  EXPECT_FALSE(batch_verify_proof_b(crs_, statements, proofs, rng_));
}

TEST_F(BatchTest, ProofBForgedPsiDetected) {
  auto [statements, proofs] = make_b_batch(5);
  statements[2].psi = statements[2].psi + RistrettoPoint::base();
  EXPECT_FALSE(batch_verify_proof_b(crs_, statements, proofs, rng_));
}

TEST_F(BatchTest, ProofBMatchesSequentialOnMixedBatch) {
  // Cross-check: batch result equals AND of individual verifications,
  // for both all-good and one-bad batches.
  auto [statements, proofs] = make_b_batch(6);
  auto sequential = [&] {
    for (std::size_t i = 0; i < proofs.size(); ++i) {
      if (!proofs[i].verify(crs_, statements[i])) return false;
    }
    return true;
  };
  EXPECT_EQ(batch_verify_proof_b(crs_, statements, proofs, rng_),
            sequential());
  proofs[5].a = proofs[5].a + Scalar::one();
  EXPECT_EQ(batch_verify_proof_b(crs_, statements, proofs, rng_),
            sequential());
}

TEST_F(BatchTest, SignatureBatchAcceptsAndDetects) {
  std::vector<SignedMessage> items;
  std::vector<SigningKey> keys;
  for (int i = 0; i < 12; ++i) {
    keys.push_back(SigningKey::generate(rng_));
    SignedMessage item;
    item.pk = keys.back().pk;
    item.message = to_bytes("message-" + std::to_string(i));
    item.signature = sign(keys.back(), item.message, "batch-test", rng_);
    items.push_back(item);
  }
  EXPECT_TRUE(batch_verify_signatures(items, "batch-test", rng_));

  // Wrong domain fails wholesale.
  EXPECT_FALSE(batch_verify_signatures(items, "other-domain", rng_));

  // One swapped message fails the batch.
  std::swap(items[2].message, items[7].message);
  EXPECT_FALSE(batch_verify_signatures(items, "batch-test", rng_));
  std::swap(items[2].message, items[7].message);

  // One forged signature fails the batch.
  items[9].signature.response = items[9].signature.response + Scalar::one();
  EXPECT_FALSE(batch_verify_signatures(items, "batch-test", rng_));
}

TEST_F(BatchTest, SignatureEmptyBatchAccepts) {
  EXPECT_TRUE(batch_verify_signatures({}, "batch-test", rng_));
}

}  // namespace
}  // namespace cbl::nizk
