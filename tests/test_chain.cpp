// Tests for the blockchain substrate: ledger/deposits, gas metering and
// USD conversion, events/beacon, and the shielded pool (shield / split /
// unshield, locking, conservation invariants).
#include <gtest/gtest.h>

#include "chain/blockchain.h"
#include "common/rng.h"

namespace cbl::chain {
namespace {

using cbl::ChaChaRng;
using commit::Commitment;
using commit::Crs;
using commit::Opening;
using ec::Scalar;

class ChainTest : public ::testing::Test {
 protected:
  Blockchain chain_;
  ChaChaRng rng_ = ChaChaRng::from_string_seed("chain-tests");

  AccountId funded_account(const std::string& label, Amount amount) {
    const auto id = chain_.ledger().create_account(label);
    chain_.ledger().mint(id, amount);
    return id;
  }

  struct NoteWithOpening {
    Commitment note;
    Opening opening;
  };

  NoteWithOpening make_note(Amount value) {
    const auto& crs = chain_.crs();
    Opening opening{Scalar::from_u64(static_cast<std::uint64_t>(value)),
                    Scalar::random(rng_)};
    return {Commitment::commit(crs.g, crs.h, opening), opening};
  }

  nizk::SchnorrProof residue_proof(const NoteWithOpening& n, Amount claimed) {
    const auto& crs = chain_.crs();
    const ec::RistrettoPoint residue =
        n.note.point() -
        crs.g * Scalar::from_u64(static_cast<std::uint64_t>(claimed));
    return nizk::SchnorrProof::prove(crs.h, residue,
                                     n.opening.randomness.expose_secret(),
                                     ShieldedPool::kSpendDomain, rng_);
  }
};

// -------------------------------------------------------------------- Ledger

TEST_F(ChainTest, LedgerTransfers) {
  const auto alice = funded_account("alice", 100);
  const auto bob = funded_account("bob", 0);
  chain_.ledger().transfer(alice, bob, 40);
  EXPECT_EQ(chain_.ledger().balance(alice), 60);
  EXPECT_EQ(chain_.ledger().balance(bob), 40);
  EXPECT_THROW(chain_.ledger().transfer(alice, bob, 61), ChainError);
  EXPECT_THROW(chain_.ledger().transfer(alice, bob, -1), ChainError);
  EXPECT_THROW(chain_.ledger().transfer(alice, 999, 1), ChainError);
}

TEST_F(ChainTest, DepositLifecycle) {
  const auto alice = funded_account("alice", 100);
  const auto dep = chain_.ledger().lock_deposit(alice, 80);
  EXPECT_EQ(chain_.ledger().balance(alice), 20);
  EXPECT_EQ(chain_.ledger().deposit_amount(dep), 80);

  chain_.ledger().slash_deposit(dep, 30);
  EXPECT_EQ(chain_.ledger().deposit_amount(dep), 50);
  EXPECT_EQ(chain_.ledger().balance(chain_.ledger().treasury()), 30);

  chain_.ledger().release_deposit(dep);
  EXPECT_EQ(chain_.ledger().balance(alice), 70);
  EXPECT_THROW(chain_.ledger().release_deposit(dep), ChainError);
  EXPECT_THROW(chain_.ledger().slash_deposit(dep, 1), ChainError);
}

TEST_F(ChainTest, DepositValidation) {
  const auto alice = funded_account("alice", 10);
  EXPECT_THROW(chain_.ledger().lock_deposit(alice, 11), ChainError);
  EXPECT_THROW(chain_.ledger().lock_deposit(alice, 0), ChainError);
  const auto dep = chain_.ledger().lock_deposit(alice, 10);
  EXPECT_THROW(chain_.ledger().slash_deposit(dep, 11), ChainError);
}

TEST_F(ChainTest, TotalSupplyConserved) {
  const auto alice = funded_account("alice", 100);
  const auto bob = funded_account("bob", 50);
  const Amount before = chain_.ledger().total_supply();
  chain_.ledger().transfer(alice, bob, 30);
  const auto dep = chain_.ledger().lock_deposit(bob, 25);
  chain_.ledger().slash_deposit(dep, 10);
  chain_.ledger().release_deposit(dep);
  EXPECT_EQ(chain_.ledger().total_supply(), before);
}

// ----------------------------------------------------------------------- Gas

TEST_F(ChainTest, GasScheduleConversions) {
  GasSchedule g;
  EXPECT_EQ(g.storage_gas(32), 32u * 625u);
  EXPECT_EQ(g.compute_gas(100.0), 1000u);  // 100 us at 10 gas/us
  // 1e9 gas at 11.8 gwei = 11.8 ETH.
  EXPECT_NEAR(g.gas_to_eth(1'000'000'000), 11.8, 1e-9);
  EXPECT_NEAR(g.gas_to_usd(1'000'000'000), 11.8 * g.usd_per_eth, 1e-6);
}

TEST_F(ChainTest, ExecuteMetersStorageAndCompute) {
  const auto alice = funded_account("alice", 10);
  const auto receipt = chain_.execute(alice, "test-method", 1000, [] {
    volatile int x = 0;
    for (int i = 0; i < 100000; ++i) x = x + i;
  });
  EXPECT_EQ(receipt.method, "test-method");
  EXPECT_EQ(receipt.storage_gas, 625'000u);
  EXPECT_GT(receipt.cpu_micros, 0.0);
  EXPECT_EQ(receipt.gas_used,
            21'000 + receipt.storage_gas + receipt.compute_gas);
  EXPECT_GT(receipt.usd_cost, 0.0);
  EXPECT_EQ(chain_.gas_paid_by(alice), receipt.gas_used);
  EXPECT_EQ(chain_.bytes_stored_by(alice), 1000u);
}

TEST_F(ChainTest, RevertedTransactionLeavesNoReceipt) {
  const auto alice = funded_account("alice", 10);
  EXPECT_THROW(chain_.execute(alice, "boom", 10,
                              [] { throw ChainError("nope"); }),
               ChainError);
  EXPECT_TRUE(chain_.receipts().empty());
  EXPECT_EQ(chain_.total_gas(), 0u);
}

// -------------------------------------------------------- Events and beacon

TEST_F(ChainTest, EventsAndBlocks) {
  chain_.emit_event("topic-a", "data");
  chain_.seal_block();
  chain_.emit_event("topic-b");
  ASSERT_EQ(chain_.events().size(), 2u);
  EXPECT_EQ(chain_.events()[0].block, 0u);
  EXPECT_EQ(chain_.events()[1].block, 1u);
  EXPECT_EQ(chain_.height(), 1u);
}

TEST_F(ChainTest, BeaconEvolvesWithState) {
  const auto b1 = chain_.randomness_beacon();
  chain_.emit_event("something happened");
  const auto b2 = chain_.randomness_beacon();
  EXPECT_NE(b1, b2);
  EXPECT_EQ(chain_.randomness_beacon(), b2);  // deterministic snapshot
}

// ------------------------------------------------------------- Shielded pool

TEST_F(ChainTest, ShieldUnshieldRoundTrip) {
  const auto alice = funded_account("alice", 100);
  const auto bob = funded_account("bob", 0);
  const auto n = make_note(60);

  chain_.shielded_pool().shield(alice, 60, n.note, residue_proof(n, 60));
  EXPECT_EQ(chain_.ledger().balance(alice), 40);
  EXPECT_EQ(chain_.shielded_pool().escrow_balance(), 60);
  EXPECT_TRUE(chain_.shielded_pool().note_exists(n.note));

  chain_.shielded_pool().unshield(n.note, 60, residue_proof(n, 60), bob);
  EXPECT_EQ(chain_.ledger().balance(bob), 60);
  EXPECT_TRUE(chain_.shielded_pool().note_spent(n.note));
  EXPECT_EQ(chain_.shielded_pool().escrow_balance(), 0);
}

TEST_F(ChainTest, ShieldRejectsWrongAmountCommitment) {
  const auto alice = funded_account("alice", 100);
  const auto n = make_note(60);
  // Claim to deposit 50 while the note commits 60: residue is not h^r.
  EXPECT_THROW(
      chain_.shielded_pool().shield(alice, 50, n.note, residue_proof(n, 60)),
      ChainError);
}

TEST_F(ChainTest, UnshieldRejectsOverClaim) {
  const auto alice = funded_account("alice", 100);
  const auto bob = funded_account("bob", 0);
  const auto n = make_note(60);
  chain_.shielded_pool().shield(alice, 60, n.note, residue_proof(n, 60));
  // Claiming 61: the residue proof cannot verify.
  EXPECT_THROW(
      chain_.shielded_pool().unshield(n.note, 61, residue_proof(n, 60), bob),
      ChainError);
  // And a proof computed "for" 61 is a proof of a false statement.
  EXPECT_THROW(
      chain_.shielded_pool().unshield(n.note, 61, residue_proof(n, 61), bob),
      ChainError);
}

TEST_F(ChainTest, DoubleSpendRejected) {
  const auto alice = funded_account("alice", 100);
  const auto bob = funded_account("bob", 0);
  const auto n = make_note(30);
  chain_.shielded_pool().shield(alice, 30, n.note, residue_proof(n, 30));
  chain_.shielded_pool().unshield(n.note, 30, residue_proof(n, 30), bob);
  EXPECT_THROW(
      chain_.shielded_pool().unshield(n.note, 30, residue_proof(n, 30), bob),
      ChainError);
}

TEST_F(ChainTest, SplitConservesValueHomomorphically) {
  const auto& crs = chain_.crs();
  const auto alice = funded_account("alice", 100);
  const auto n = make_note(50);
  chain_.shielded_pool().shield(alice, 50, n.note, residue_proof(n, 50));

  // 50 -> 20 + 30 with randomness splitting.
  Opening o1{Scalar::from_u64(20), Scalar::random(rng_)};
  Opening o2{Scalar::from_u64(30), n.opening.randomness - o1.randomness};
  const auto out1 = Commitment::commit(crs.g, crs.h, o1);
  const auto out2 = Commitment::commit(crs.g, crs.h, o2);
  const auto auth = nizk::RepresentationProof::prove(
      crs.g, crs.h, n.note.point(), n.opening.value.expose_secret(),
      n.opening.randomness.expose_secret(), ShieldedPool::kSpendDomain, rng_);
  chain_.shielded_pool().split(n.note, auth, out1, out2);

  EXPECT_TRUE(chain_.shielded_pool().note_spent(n.note));
  EXPECT_EQ(chain_.shielded_pool().live_notes(), 2u);

  // Both outputs can be withdrawn for their exact committed values.
  const auto bob = funded_account("bob", 0);
  const ec::RistrettoPoint residue1 = out1.point() - crs.g * o1.value;
  chain_.shielded_pool().unshield(
      out1, 20,
      nizk::SchnorrProof::prove(crs.h, residue1, o1.randomness.expose_secret(),
                                ShieldedPool::kSpendDomain, rng_),
      bob);
  EXPECT_EQ(chain_.ledger().balance(bob), 20);
}

TEST_F(ChainTest, SplitRejectsValueInflation) {
  const auto& crs = chain_.crs();
  const auto alice = funded_account("alice", 100);
  const auto n = make_note(50);
  chain_.shielded_pool().shield(alice, 50, n.note, residue_proof(n, 50));

  // 50 -> 30 + 30 does not satisfy input = out1 * out2.
  Opening o1{Scalar::from_u64(30), Scalar::random(rng_)};
  Opening o2{Scalar::from_u64(30), n.opening.randomness - o1.randomness};
  const auto auth = nizk::RepresentationProof::prove(
      crs.g, crs.h, n.note.point(), n.opening.value.expose_secret(),
      n.opening.randomness.expose_secret(), ShieldedPool::kSpendDomain, rng_);
  EXPECT_THROW(
      chain_.shielded_pool().split(n.note, auth,
                                   Commitment::commit(crs.g, crs.h, o1),
                                   Commitment::commit(crs.g, crs.h, o2)),
      ChainError);
}

TEST_F(ChainTest, SplitRejectsForeignSpendAuth) {
  const auto& crs = chain_.crs();
  const auto alice = funded_account("alice", 100);
  const auto n = make_note(50);
  chain_.shielded_pool().shield(alice, 50, n.note, residue_proof(n, 50));

  Opening o1{Scalar::from_u64(20), Scalar::random(rng_)};
  Opening o2{Scalar::from_u64(30), n.opening.randomness - o1.randomness};
  // Proof for a DIFFERENT note does not authorize this spend.
  const auto other = make_note(50);
  const auto bad_auth = nizk::RepresentationProof::prove(
      crs.g, crs.h, other.note.point(), other.opening.value.expose_secret(),
      other.opening.randomness.expose_secret(), ShieldedPool::kSpendDomain,
      rng_);
  EXPECT_THROW(
      chain_.shielded_pool().split(n.note, bad_auth,
                                   Commitment::commit(crs.g, crs.h, o1),
                                   Commitment::commit(crs.g, crs.h, o2)),
      ChainError);
}

TEST_F(ChainTest, LockedNoteCannotBeSpent) {
  const auto alice = funded_account("alice", 100);
  const auto bob = funded_account("bob", 0);
  const auto n = make_note(40);
  chain_.shielded_pool().shield(alice, 40, n.note, residue_proof(n, 40));
  chain_.shielded_pool().lock_note(n.note);
  EXPECT_TRUE(chain_.shielded_pool().note_locked(n.note));
  EXPECT_THROW(
      chain_.shielded_pool().unshield(n.note, 40, residue_proof(n, 40), bob),
      ChainError);
  EXPECT_THROW(chain_.shielded_pool().lock_note(n.note), ChainError);
  chain_.shielded_pool().unlock_note(n.note);
  chain_.shielded_pool().unshield(n.note, 40, residue_proof(n, 40), bob);
  EXPECT_EQ(chain_.ledger().balance(bob), 40);
}

TEST_F(ChainTest, ReplaceNoteConsumesOldCreatesNew) {
  const auto alice = funded_account("alice", 100);
  const auto n = make_note(40);
  chain_.shielded_pool().shield(alice, 40, n.note, residue_proof(n, 40));
  const auto updated = make_note(41);
  chain_.shielded_pool().replace_note(n.note, updated.note);
  EXPECT_TRUE(chain_.shielded_pool().note_spent(n.note));
  EXPECT_TRUE(chain_.shielded_pool().note_exists(updated.note));
  EXPECT_THROW(chain_.shielded_pool().replace_note(n.note, make_note(5).note),
               ChainError);
}

TEST_F(ChainTest, DuplicateNoteRejected) {
  const auto alice = funded_account("alice", 200);
  const auto n = make_note(40);
  chain_.shielded_pool().shield(alice, 40, n.note, residue_proof(n, 40));
  EXPECT_THROW(
      chain_.shielded_pool().shield(alice, 40, n.note, residue_proof(n, 40)),
      ChainError);
}

}  // namespace
}  // namespace cbl::chain
