// Parameterized end-to-end sweeps and fuzz-style property tests:
// randomized ceremonies across committee sizes, ristretto decode fuzz,
// Elligator edge inputs, and the coordinator/on-chain-registry glue.
#include <gtest/gtest.h>

#include "blocklist/generator.h"
#include "common/rng.h"
#include "core/service.h"
#include "ec/ristretto.h"
#include "voting/ceremony.h"
#include "voting/registry.h"

namespace cbl {
namespace {

using cbl::ChaChaRng;

// ---------------------------------------------------- ceremony size sweep

class CeremonySizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CeremonySizeSweep, RandomVotesTallyExactly) {
  const std::size_t n = GetParam();
  auto rng = ChaChaRng::from_string_seed("sweep-" + std::to_string(n));

  // Random votes and weights for an everyone-selected committee.
  std::vector<unsigned> votes(n);
  std::vector<std::uint32_t> weights(n);
  std::uint64_t expected = 0, total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    votes[i] = static_cast<unsigned>(rng.uniform(2));
    weights[i] = static_cast<std::uint32_t>(1 + rng.uniform(4));
    expected += votes[i] * weights[i];
    total += weights[i];
  }

  chain::Blockchain chain;
  voting::EvaluationConfig cfg;
  cfg.thresh = cfg.committee_size = n;
  cfg.deposit = 10;
  cfg.provider_deposit = static_cast<chain::Amount>(2 * n);
  voting::Ceremony ceremony(chain, cfg, votes, weights, rng);
  const auto result = ceremony.run();

  EXPECT_EQ(result.outcome.tally, expected);
  EXPECT_EQ(result.outcome.total_weight, total);
  EXPECT_EQ(result.outcome.approved, expected * 2 > total);
  // Conservation through the whole weighted ceremony.
  EXPECT_EQ(result.payouts.size(), n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CeremonySizeSweep,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u, 8u));

// -------------------------------------------------------- ristretto fuzz

TEST(RistrettoFuzz, RandomBytesDecodeOrRejectConsistently) {
  auto rng = ChaChaRng::from_string_seed("ristretto-fuzz");
  int accepted = 0;
  for (int i = 0; i < 500; ++i) {
    ec::RistrettoPoint::Encoding bytes;
    rng.fill(bytes.data(), bytes.size());
    const auto decoded = ec::RistrettoPoint::decode(bytes);
    if (decoded) {
      ++accepted;
      // Round-trip invariant: accepted encodings are canonical.
      EXPECT_EQ(decoded->encode(), bytes);
    }
  }
  // Roughly 1/8 of random strings are valid encodings (top bit clear ~1/2,
  // non-negative ~1/2, square ~1/2); allow a generous band.
  EXPECT_GT(accepted, 20);
  EXPECT_LT(accepted, 200);
}

TEST(RistrettoFuzz, ElligatorEdgeInputs) {
  // Degenerate one-way-map inputs must still land on valid encodable
  // points (zero, max, low-order-ish patterns).
  std::vector<std::array<std::uint8_t, 64>> inputs;
  inputs.emplace_back();  // all zero
  std::array<std::uint8_t, 64> ones;
  ones.fill(0xff);
  inputs.push_back(ones);
  std::array<std::uint8_t, 64> half{};
  for (int i = 0; i < 32; ++i) half[static_cast<std::size_t>(i)] = 0xff;
  inputs.push_back(half);

  for (const auto& input : inputs) {
    const auto p = ec::RistrettoPoint::from_uniform_bytes(input);
    const auto decoded = ec::RistrettoPoint::decode(p.encode());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, p);
    // Scalar multiplication on the mapped point behaves.
    const auto q = p * ec::Scalar::from_u64(3);
    EXPECT_EQ(q, p + p + p);
  }
}

TEST(RistrettoFuzz, ScalarMulMatchesRepeatedAddition) {
  auto rng = ChaChaRng::from_string_seed("smul-fuzz");
  const auto p = ec::RistrettoPoint::base() * ec::Scalar::random(rng);
  ec::RistrettoPoint acc = ec::RistrettoPoint::identity();
  for (std::uint64_t k = 0; k <= 17; ++k) {
    EXPECT_EQ(p * ec::Scalar::from_u64(k), acc) << "k=" << k;
    acc = acc + p;
  }
}

// -------------------------------------------- coordinator + registry glue

TEST(CoordinatorRegistryGlue, EvaluationsFlowOntoTheChainRegistry) {
  auto rng = ChaChaRng::from_string_seed("glue");
  chain::Blockchain chain;

  voting::RegistryConfig rcfg;
  rcfg.min_stake = 50;
  rcfg.listing_period = 100;
  voting::RegistryContract registry(chain, rcfg);

  voting::EvaluationConfig vcfg;
  vcfg.thresh = 4;
  vcfg.committee_size = 3;
  vcfg.deposit = 10;
  vcfg.provider_deposit = 10;
  core::EvaluationCoordinator coordinator(chain, vcfg, 100, rng);
  coordinator.attach_registry(registry);

  core::ProviderConfig pcfg;
  pcfg.lambda = 6;
  core::BlocklistProvider provider("acme", pcfg, rng);
  auto feed_rng = ChaChaRng::from_string_seed("glue-feed");
  blocklist::FeedConfig fcfg;
  fcfg.count = 80;
  provider.ingest(blocklist::generate_feed(fcfg, feed_rng));

  // Apply on chain, then let the coordinator's evaluation settle it.
  const auto provider_acct = chain.ledger().create_account("acme-acct");
  chain.ledger().mint(provider_acct, 200);
  registry.apply(provider_acct, "acme", 50);
  EXPECT_FALSE(registry.is_listed("acme"));

  const auto entry = coordinator.evaluate(provider, 10);
  EXPECT_TRUE(entry.approved);
  EXPECT_TRUE(registry.is_listed("acme"));  // settled on chain too

  // A challenge on chain is resolved by the next coordinator evaluation.
  const auto watchdog = chain.ledger().create_account("watchdog");
  chain.ledger().mint(watchdog, 200);
  registry.open_challenge(watchdog, "acme", 50);
  // The provider silently halves its served list before re-evaluation.
  auto published = provider.published_entries();
  std::vector<std::string> half(published.begin(),
                                published.begin() +
                                    static_cast<long>(published.size() / 2));
  provider.server().setup(half);
  const auto entry2 = coordinator.evaluate(provider, 20);
  EXPECT_FALSE(entry2.approved);
  EXPECT_FALSE(registry.is_listed("acme"));
  EXPECT_EQ(registry.lookup("acme")->status,
            voting::RegistryContract::ListingStatus::kDelisted);
}

}  // namespace
}  // namespace cbl
