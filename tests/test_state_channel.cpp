// Tests for Schnorr signatures and the off-chain round-2 state channel:
// happy-path settlement equals the on-chain tally, the chain rejects
// partial/forged/mismatched settlements, the channel itself verifies
// members, and the fallback to on-chain voting keeps working.
#include <gtest/gtest.h>

#include "chain/blockchain.h"
#include "common/rng.h"
#include "nizk/signature.h"
#include "voting/ceremony.h"
#include "voting/state_channel.h"

namespace cbl::voting {
namespace {

using cbl::ChaChaRng;
using chain::Blockchain;

class SignatureTest : public ::testing::Test {
 protected:
  ChaChaRng rng_ = ChaChaRng::from_string_seed("sig-tests");
};

TEST_F(SignatureTest, SignVerifyRoundTrip) {
  const auto key = nizk::SigningKey::generate(rng_);
  const Bytes msg = to_bytes("settle V");
  const auto sig = nizk::sign(key, msg, "test", rng_);
  EXPECT_TRUE(nizk::verify_signature(key.pk, msg, "test", sig));
}

TEST_F(SignatureTest, RejectsWrongMessageKeyAndDomain) {
  const auto key = nizk::SigningKey::generate(rng_);
  const auto other = nizk::SigningKey::generate(rng_);
  const Bytes msg = to_bytes("settle V");
  const auto sig = nizk::sign(key, msg, "test", rng_);
  EXPECT_FALSE(nizk::verify_signature(key.pk, to_bytes("settle W"), "test", sig));
  EXPECT_FALSE(nizk::verify_signature(other.pk, msg, "test", sig));
  EXPECT_FALSE(nizk::verify_signature(key.pk, msg, "other-domain", sig));
}

TEST_F(SignatureTest, RejectsTampering) {
  const auto key = nizk::SigningKey::generate(rng_);
  const Bytes msg = to_bytes("m");
  auto sig = nizk::sign(key, msg, "test", rng_);
  sig.response = sig.response + ec::Scalar::one();
  EXPECT_FALSE(nizk::verify_signature(key.pk, msg, "test", sig));
}

TEST_F(SignatureTest, WireRoundTrip) {
  const auto key = nizk::SigningKey::generate(rng_);
  const Bytes msg = to_bytes("m");
  const auto sig = nizk::sign(key, msg, "test", rng_);
  const auto bytes = sig.to_bytes();
  EXPECT_EQ(bytes.size(), nizk::Signature::kWireSize);
  const auto parsed = nizk::Signature::from_bytes(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(nizk::verify_signature(key.pk, msg, "test", *parsed));
  EXPECT_FALSE(
      nizk::Signature::from_bytes(ByteView(bytes.data(), 63)).has_value());
}

// ---------------------------------------------------------- state channel

struct ChannelFixture {
  Blockchain chain;
  EvaluationConfig cfg;
  std::unique_ptr<Ceremony> ceremony;

  ChannelFixture(const std::vector<unsigned>& votes, ChaChaRng& rng,
                 const std::vector<std::uint32_t>& weights = {}) {
    cfg.thresh = votes.size();
    cfg.committee_size = votes.size();
    cfg.deposit = 10;
    cfg.provider_deposit = 100;
    if (weights.empty()) {
      ceremony = std::make_unique<Ceremony>(chain, cfg, votes, rng);
    } else {
      ceremony = std::make_unique<Ceremony>(chain, cfg, votes, weights, rng);
    }
    ceremony->fund_and_shield();
    ceremony->register_all();
    ceremony->reveal_all();
    ceremony->finalize_committee();
  }

  Round2Channel make_channel() {
    std::vector<ec::RistrettoPoint> secrets, vote_comms;
    std::vector<std::uint32_t> member_weights;
    for (auto& p : ceremony->participants()) {
      // thresh == N: everyone is a committee member, in index order.
      secrets.push_back(chain.crs().g * p.shareholder->secret());
      const auto v = ec::Scalar::from_u64(
          static_cast<std::uint64_t>(p.shareholder->vote()) *
          p.shareholder->weight());
      vote_comms.push_back(chain.crs().g * v +
                           chain.crs().h * p.shareholder->secret());
      member_weights.push_back(p.shareholder->weight());
    }
    return Round2Channel(chain.crs(), secrets, vote_comms, member_weights,
                         ceremony->contract().challenge());
  }

  OffchainSettlement run_channel(ChaChaRng& rng) {
    auto channel = make_channel();
    const auto secrets = ceremony->contract().committee_secrets();
    for (auto& p : ceremony->participants()) {
      const auto pos = ceremony->contract().committee_position(p.index);
      EXPECT_TRUE(channel.submit(
          *pos, p.shareholder->build_round2(secrets, *pos, rng)));
    }
    EXPECT_TRUE(channel.complete());

    OffchainSettlement settlement;
    settlement.aggregate = channel.aggregate();
    const Bytes message = channel.settlement_message();
    for (auto& p : ceremony->participants()) {
      settlement.signatures.push_back(
          p.shareholder->sign_settlement(message, rng));
    }
    return settlement;
  }
};

class StateChannelTest : public ::testing::Test {
 protected:
  ChaChaRng rng_ = ChaChaRng::from_string_seed("channel-tests");
};

TEST_F(StateChannelTest, SettlementMatchesOnChainTally) {
  ChannelFixture fx({1, 1, 0, 1, 0}, rng_);
  const auto settlement = fx.run_channel(rng_);
  fx.ceremony->contract().settle_round2_offchain(settlement, 1);

  const auto& outcome = fx.ceremony->contract().outcome();
  EXPECT_EQ(outcome.tally, 3u);
  EXPECT_TRUE(outcome.approved);
  EXPECT_EQ(fx.ceremony->contract().phase(),
            EvaluationContract::Phase::kTallied);
}

TEST_F(StateChannelTest, PayoffWorksAfterChannelSettlement) {
  ChannelFixture fx({1, 1, 0}, rng_);
  const auto settlement = fx.run_channel(rng_);
  fx.ceremony->contract().settle_round2_offchain(settlement, 1);
  fx.ceremony->payoff_and_withdraw();
  // Winners got deposit + reward, loser deposit - penalty.
  auto& participants = fx.ceremony->participants();
  EXPECT_EQ(fx.chain.ledger().balance(participants[0].payout_account), 11);
  EXPECT_EQ(fx.chain.ledger().balance(participants[2].payout_account), 9);
}

TEST_F(StateChannelTest, WeightedChannelSettlement) {
  ChannelFixture fx({1, 0, 0}, rng_, {7, 2, 2});
  const auto settlement = fx.run_channel(rng_);
  fx.ceremony->contract().settle_round2_offchain(settlement, 1);
  EXPECT_EQ(fx.ceremony->contract().outcome().tally, 7u);
  EXPECT_TRUE(fx.ceremony->contract().outcome().approved);
}

TEST_F(StateChannelTest, ChannelByteSavingsAreReal) {
  // The settlement costs 32 + 64N bytes versus 320N for on-chain votes.
  ChannelFixture fx({1, 1, 0, 1, 0}, rng_);
  const auto settlement = fx.run_channel(rng_);
  const std::size_t channel_bytes = settlement.wire_size();
  const std::size_t onchain_bytes = 5 * Round2Submission::wire_size();
  EXPECT_LT(channel_bytes * 4, onchain_bytes);
}

TEST_F(StateChannelTest, RejectsMissingSignature) {
  ChannelFixture fx({1, 0, 1}, rng_);
  auto settlement = fx.run_channel(rng_);
  settlement.signatures.pop_back();
  EXPECT_THROW(fx.ceremony->contract().settle_round2_offchain(settlement, 1),
               ChainError);
}

TEST_F(StateChannelTest, RejectsForgedSignature) {
  ChannelFixture fx({1, 0, 1}, rng_);
  auto settlement = fx.run_channel(rng_);
  // Replace one signature by one from a key not registered on chain.
  const auto mallory = nizk::SigningKey::generate(rng_);
  settlement.signatures[1] =
      nizk::sign(mallory, to_bytes("whatever"), Round2Channel::kSettleDomain,
                 rng_);
  EXPECT_THROW(fx.ceremony->contract().settle_round2_offchain(settlement, 1),
               ChainError);
}

TEST_F(StateChannelTest, RejectsTamperedAggregate) {
  // Signatures cover the honest V; swapping the aggregate breaks them.
  ChannelFixture fx({1, 0, 1}, rng_);
  auto settlement = fx.run_channel(rng_);
  settlement.aggregate = settlement.aggregate + ec::RistrettoPoint::base();
  EXPECT_THROW(fx.ceremony->contract().settle_round2_offchain(settlement, 1),
               ChainError);
}

TEST_F(StateChannelTest, CollusionCannotExceedWeightBound) {
  // Even with all N keys colluding, a settlement over g^(total_weight+2)
  // fails the DLP bound at tally time.
  ChannelFixture fx({1, 1, 1}, rng_);
  auto channel = fx.make_channel();
  OffchainSettlement settlement;
  settlement.aggregate =
      ec::RistrettoPoint::base() * ec::Scalar::from_u64(5);  // > 3
  const Bytes message = fx.ceremony->contract().expected_settlement_message(
      settlement.aggregate);
  for (auto& p : fx.ceremony->participants()) {
    settlement.signatures.push_back(
        p.shareholder->sign_settlement(message, rng_));
  }
  EXPECT_THROW(fx.ceremony->contract().settle_round2_offchain(settlement, 1),
               ChainError);
}

TEST_F(StateChannelTest, MixingWithOnChainVotesRejected) {
  ChannelFixture fx({1, 0, 1}, rng_);
  // One member votes on chain first...
  auto& p0 = fx.ceremony->participants()[0];
  const auto secrets = fx.ceremony->contract().committee_secrets();
  const auto pos = fx.ceremony->contract().committee_position(p0.index);
  fx.ceremony->contract().submit_round2(
      p0.index, p0.shareholder->build_round2(secrets, *pos, rng_),
      p0.funding_account);
  // ...so channel settlement is no longer allowed.
  const auto settlement = fx.run_channel(rng_);
  EXPECT_THROW(fx.ceremony->contract().settle_round2_offchain(settlement, 1),
               ChainError);
}

TEST_F(StateChannelTest, ChannelRejectsBadSubmissions) {
  ChannelFixture fx({1, 0, 1}, rng_);
  auto channel = fx.make_channel();
  const auto secrets = fx.ceremony->contract().committee_secrets();
  auto& p0 = fx.ceremony->participants()[0];
  auto sub = p0.shareholder->build_round2(secrets, 0, rng_);

  auto forged = sub;
  forged.psi = forged.psi + ec::RistrettoPoint::base();
  EXPECT_FALSE(channel.submit(0, forged));   // invalid proof
  EXPECT_FALSE(channel.submit(9, sub));      // bad position
  EXPECT_TRUE(channel.submit(0, sub));
  EXPECT_FALSE(channel.submit(0, sub));      // duplicate
  EXPECT_EQ(channel.pending(), 2u);
  EXPECT_THROW((void)channel.aggregate(), std::logic_error);
}

TEST_F(StateChannelTest, FallbackToOnChainAfterChannelFailure) {
  // A member refuses to sign: the committee just votes on chain, and the
  // protocol completes normally.
  ChannelFixture fx({1, 1, 0}, rng_);
  auto channel = fx.make_channel();
  const auto secrets = fx.ceremony->contract().committee_secrets();
  // Two members submit off-chain, the third stalls the channel...
  for (std::size_t i = 0; i < 2; ++i) {
    auto& p = fx.ceremony->participants()[i];
    const auto pos = fx.ceremony->contract().committee_position(p.index);
    EXPECT_TRUE(channel.submit(
        *pos, p.shareholder->build_round2(secrets, *pos, rng_)));
  }
  EXPECT_FALSE(channel.complete());
  // ...so everyone falls back to the on-chain Vote path.
  fx.ceremony->vote_all();
  EXPECT_EQ(fx.ceremony->contract().outcome().tally, 2u);
}

}  // namespace
}  // namespace cbl::voting
