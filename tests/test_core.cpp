// Integration tests through the top-level facade: provider lifecycle
// (ingest / expire / rotate), user queries with the fast path, the
// evaluation coordinator's registry, periodic re-evaluation, and the
// challenge flow.
#include <gtest/gtest.h>

#include "blocklist/generator.h"
#include "core/service.h"
#include "obs/metrics.h"

namespace cbl::core {
namespace {

using cbl::ChaChaRng;

class CoreTest : public ::testing::Test {
 protected:
  ChaChaRng rng_ = ChaChaRng::from_string_seed("core-tests");

  ProviderConfig quick_config() {
    ProviderConfig cfg;
    cfg.lambda = 6;
    return cfg;
  }

  std::vector<blocklist::Entry> feed(std::size_t n, std::string_view seed) {
    auto rng = ChaChaRng::from_string_seed(std::string(seed));
    blocklist::FeedConfig cfg;
    cfg.count = n;
    cfg.duplicate_rate = 0;
    return blocklist::generate_feed(cfg, rng);
  }
};

TEST_F(CoreTest, ProviderIngestAndUserQuery) {
  BlocklistProvider provider("acme", quick_config(), rng_);
  const auto entries = feed(120, "f1");
  EXPECT_EQ(provider.ingest(entries), 120u);

  BlocklistUser user(provider, rng_);
  const auto hit = user.query(entries[7].address);
  EXPECT_TRUE(hit.listed);
  ASSERT_TRUE(hit.metadata.has_value());
  EXPECT_NE(to_string(*hit.metadata).find("category="), std::string::npos);

  auto clean_rng = ChaChaRng::from_string_seed("clean");
  const auto miss = user.query(
      blocklist::random_address(blocklist::Chain::kBitcoin, clean_rng));
  EXPECT_FALSE(miss.listed);
}

TEST_F(CoreTest, PrefixListFastPathSkipsInteraction) {
  ProviderConfig cfg;
  cfg.lambda = 16;  // sparse prefixes: negatives resolve locally
  BlocklistProvider provider("acme", cfg, rng_);
  provider.ingest(feed(50, "f2"));

  BlocklistUser user(provider, rng_);
  auto clean_rng = ChaChaRng::from_string_seed("clean2");
  int interactions = 0;
  for (int i = 0; i < 50; ++i) {
    const auto r = user.query(
        blocklist::random_address(blocklist::Chain::kEthereum, clean_rng));
    EXPECT_FALSE(r.listed);
    if (r.required_interaction) ++interactions;
  }
  EXPECT_LE(interactions, 2);
}

TEST_F(CoreTest, BatchQueriesAmortizeBucketTransfers) {
  ProviderConfig cfg;
  cfg.lambda = 2;  // 4 buckets: heavy prefix sharing
  BlocklistProvider provider("acme", cfg, rng_);
  const auto f = feed(80, "batch");
  provider.ingest(f);
  BlocklistUser user(provider, rng_);

  std::vector<std::string> targets;
  for (std::size_t i = 0; i < 40; ++i) targets.push_back(f[i].address);
  const auto batch = user.query_many(targets);
  ASSERT_EQ(batch.results.size(), 40u);
  for (const auto& r : batch.results) EXPECT_TRUE(r.listed);
  // 40 online queries but at most 4 bucket transfers (one per prefix).
  EXPECT_EQ(batch.online_round_trips, 40u);
  EXPECT_LE(batch.buckets_transferred, 4u);
  EXPECT_GE(batch.buckets_transferred, 1u);
}

TEST_F(CoreTest, BatchMixesLocalAndOnlineResolution) {
  ProviderConfig cfg;
  cfg.lambda = 16;  // sparse: most negatives resolve locally
  BlocklistProvider provider("acme", cfg, rng_);
  const auto f = feed(30, "batch2");
  provider.ingest(f);
  BlocklistUser user(provider, rng_);

  auto clean_rng = ChaChaRng::from_string_seed("batch-clean");
  std::vector<std::string> targets = {f[0].address, f[1].address};
  for (int i = 0; i < 20; ++i) {
    targets.push_back(
        blocklist::random_address(blocklist::Chain::kBitcoinSegwit, clean_rng));
  }
  const auto batch = user.query_many(targets);
  EXPECT_TRUE(batch.results[0].listed);
  EXPECT_TRUE(batch.results[1].listed);
  EXPECT_GE(batch.resolved_locally, 18u);
  EXPECT_LE(batch.online_round_trips, 4u);
}

TEST_F(CoreTest, IngestDedupsAcrossFeeds) {
  BlocklistProvider provider("acme", quick_config(), rng_);
  const auto f = feed(80, "f3");
  EXPECT_EQ(provider.ingest(f), 80u);
  EXPECT_EQ(provider.ingest(f), 0u);  // all duplicates
  EXPECT_EQ(provider.store().size(), 80u);
}

TEST_F(CoreTest, ExpireRemovesStaleEntries) {
  BlocklistProvider provider("acme", quick_config(), rng_);
  auto f = feed(40, "f4");
  for (std::size_t i = 0; i < f.size(); ++i) {
    f[i].first_reported = i < 10 ? 100 : 10'000;
  }
  provider.ingest(f);
  EXPECT_EQ(provider.expire_entries(5'000), 10u);
  EXPECT_EQ(provider.store().size(), 30u);

  // Expired entries are no longer served.
  BlocklistUser user(provider, rng_);
  EXPECT_FALSE(user.query(f[0].address).listed);
  EXPECT_TRUE(user.query(f[20].address).listed);
}

TEST_F(CoreTest, KeyRotationKeepsServiceCorrect) {
  BlocklistProvider provider("acme", quick_config(), rng_);
  const auto f = feed(60, "f5");
  provider.ingest(f);
  BlocklistUser user(provider, rng_);
  EXPECT_TRUE(user.query(f[3].address).listed);
  provider.rotate_key();
  user.sync_prefix_list();
  EXPECT_TRUE(user.query(f[3].address).listed);
}

TEST_F(CoreTest, CoordinatorApprovesHonestProvider) {
  chain::Blockchain chain;
  voting::EvaluationConfig vcfg;
  vcfg.thresh = 4;
  vcfg.committee_size = 3;
  vcfg.deposit = 50;
  vcfg.provider_deposit = 10;
  EvaluationCoordinator coordinator(chain, vcfg, 100, rng_);

  BlocklistProvider provider("honest", quick_config(), rng_);
  provider.ingest(feed(100, "f6"));

  const auto entry = coordinator.evaluate(provider, 10);
  EXPECT_TRUE(entry.approved);
  EXPECT_EQ(entry.last_outcome.tally, 3u);
  ASSERT_TRUE(coordinator.registry_lookup("honest").has_value());
  EXPECT_FALSE(coordinator.due_for_reevaluation("honest"));
}

TEST_F(CoreTest, CoordinatorRejectsDishonestProvider) {
  chain::Blockchain chain;
  voting::EvaluationConfig vcfg;
  vcfg.thresh = 4;
  vcfg.committee_size = 3;
  vcfg.deposit = 50;
  vcfg.provider_deposit = 10;
  EvaluationCoordinator coordinator(chain, vcfg, 100, rng_);

  // The provider publishes 100 entries but silently serves only half —
  // exactly the "fails to sort out valid blocklist entries" failure the
  // evaluation is designed to catch.
  BlocklistProvider provider("shady", quick_config(), rng_);
  const auto f = feed(100, "f7");
  provider.ingest(f);
  auto published = provider.published_entries();
  std::vector<std::string> served(published.begin(),
                                  published.begin() + 50);
  provider.server().setup(served);

  // Audit against the full published list.
  std::vector<unsigned> votes;
  for (std::size_t i = 0; i < vcfg.thresh; ++i) {
    oprf::OprfClient auditor(provider.oracle(), provider.lambda(), rng_);
    votes.push_back(voting::audit_provider(provider.server(), auditor,
                                           published, 20, rng_)
                            .passed()
                        ? 1u
                        : 0u);
  }
  voting::Ceremony ceremony(chain, vcfg, votes, rng_);
  const auto result = ceremony.run();
  EXPECT_FALSE(result.outcome.approved);
  EXPECT_EQ(result.outcome.tally, 0u);
}

TEST_F(CoreTest, ReevaluationBecomesDueAfterPeriod) {
  chain::Blockchain chain;
  voting::EvaluationConfig vcfg;
  vcfg.thresh = 3;
  vcfg.committee_size = 3;
  vcfg.deposit = 50;
  vcfg.provider_deposit = 10;
  EvaluationCoordinator coordinator(chain, vcfg, 5, rng_);

  BlocklistProvider provider("acme", quick_config(), rng_);
  provider.ingest(feed(60, "f8"));
  EXPECT_TRUE(coordinator.due_for_reevaluation("acme"));  // never evaluated
  coordinator.evaluate(provider, 8);
  EXPECT_FALSE(coordinator.due_for_reevaluation("acme"));
  for (int i = 0; i < 5; ++i) chain.seal_block();
  EXPECT_TRUE(coordinator.due_for_reevaluation("acme"));
}

TEST_F(CoreTest, ChallengeRequiresMatchingDeposit) {
  chain::Blockchain chain;
  voting::EvaluationConfig vcfg;
  vcfg.thresh = 3;
  vcfg.committee_size = 3;
  vcfg.deposit = 50;
  vcfg.provider_deposit = 40;
  EvaluationCoordinator coordinator(chain, vcfg, 100, rng_);

  BlocklistProvider provider("acme", quick_config(), rng_);
  provider.ingest(feed(60, "f9"));

  const auto challenger = chain.ledger().create_account("challenger");
  chain.ledger().mint(challenger, 100);
  EXPECT_THROW(coordinator.challenge(provider, challenger, 39, 8), ChainError);

  const auto balance_before = chain.ledger().balance(challenger);
  const auto entry = coordinator.challenge(provider, challenger, 40, 8);
  EXPECT_TRUE(entry.approved);
  // Stake returned after the forced re-evaluation.
  EXPECT_EQ(chain.ledger().balance(challenger), balance_before);
}

namespace {

double counter_value(const std::vector<obs::MetricSnapshot>& samples,
                     const std::string& name, const obs::Labels& labels) {
  for (const auto& s : samples) {
    if (s.name == name && s.labels == labels) return s.value;
  }
  return 0.0;
}

}  // namespace

TEST_F(CoreTest, QueryManyMetricsMatchBatchAccounting) {
  // Sparse prefix space (2^12 buckets, 400 entries) so random negatives
  // mostly resolve via the local prefix list.
  ProviderConfig cfg;
  cfg.lambda = 12;
  BlocklistProvider provider("acme", cfg, rng_);
  const auto entries = feed(400, "f-obs");
  provider.ingest(entries);
  BlocklistUser user(provider, rng_);

  // A wallet batch mixing listed addresses (always online), repeated
  // prefixes (cache hits) and random negatives (mostly local).
  std::vector<std::string> batch;
  for (int i = 0; i < 25; ++i) {
    batch.push_back(entries[static_cast<std::size_t>(i) * 7].address);
  }
  const std::vector<std::string> repeats(batch.begin(), batch.begin() + 10);
  batch.insert(batch.end(), repeats.begin(), repeats.end());
  auto neg_rng = ChaChaRng::from_string_seed("obs-negatives");
  for (int i = 0; i < 40; ++i) {
    batch.push_back(
        blocklist::random_address(blocklist::Chain::kEthereum, neg_rng));
  }

  const auto before = obs::MetricsRegistry::global().snapshot();
  const auto result = user.query_many(batch);
  const auto after = obs::MetricsRegistry::global().snapshot();

  ASSERT_EQ(result.results.size(), batch.size());
  EXPECT_EQ(result.resolved_locally + result.online_round_trips, batch.size());
  EXPECT_LE(result.buckets_transferred, result.online_round_trips);

  const auto delta = [&](const std::string& name, const obs::Labels& labels) {
    return counter_value(after, name, labels) -
           counter_value(before, name, labels);
  };

  // The facade's path counters must agree with the batch accounting...
  EXPECT_EQ(delta("cbl_core_user_queries_total", {{"path", "local"}}),
            static_cast<double>(result.resolved_locally));
  EXPECT_EQ(delta("cbl_core_user_queries_total", {{"path", "online"}}),
            static_cast<double>(result.online_round_trips));
  // ...and so must the OPRF client's own fast-path counters.
  EXPECT_EQ(delta("cbl_oprf_client_fastpath_total", {{"result", "local"}}),
            static_cast<double>(result.resolved_locally));
  EXPECT_EQ(delta("cbl_oprf_client_fastpath_total", {{"result", "online"}}),
            static_cast<double>(result.online_round_trips));
  // Every transferred bucket is a client cache miss; omitted ones are hits.
  EXPECT_EQ(delta("cbl_oprf_client_cache_total", {{"result", "miss"}}),
            static_cast<double>(result.buckets_transferred));
  EXPECT_EQ(delta("cbl_oprf_client_cache_total", {{"result", "hit"}}),
            static_cast<double>(result.online_round_trips -
                                result.buckets_transferred));
  // The server saw exactly the online round trips, all successful.
  EXPECT_EQ(delta("cbl_oprf_queries_total", {{"result", "ok"}}),
            static_cast<double>(result.online_round_trips));

  // The batch exercised every path at least once.
  EXPECT_GT(result.resolved_locally, 0u);
  EXPECT_GT(result.online_round_trips, 0u);
  EXPECT_GT(result.buckets_transferred, 0u);
  EXPECT_GT(result.online_round_trips, result.buckets_transferred);
}

}  // namespace
}  // namespace cbl::core
