// Tests for concurrent query serving (many client threads against one
// OprfServer while a maintenance thread mutates the blocklist) and the
// transaction-authorization gateway (signatures, nonces, replay).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "blocklist/generator.h"
#include "chain/tx_auth.h"
#include "common/rng.h"
#include "exec/worker_pool.h"
#include "net/query_pipeline.h"
#include "oprf/client.h"
#include "oprf/server.h"
#include "oprf/wire.h"

namespace cbl {
namespace {

using cbl::ChaChaRng;

TEST(Concurrency, ParallelQueriesStayCorrect) {
  auto corpus_rng = ChaChaRng::from_string_seed("conc-corpus");
  const auto corpus =
      blocklist::generate_corpus(200, corpus_rng).addresses();
  auto server_rng = ChaChaRng::from_string_seed("conc-server");
  oprf::OprfServer server(oprf::Oracle::fast(), 4, server_rng);
  server.setup(corpus);

  constexpr int kThreads = 4;
  constexpr int kQueriesPerThread = 40;
  std::atomic<int> wrong{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto rng = ChaChaRng::from_string_seed("conc-client-" +
                                             std::to_string(t));
      oprf::OprfClient client(oprf::Oracle::fast(), 4, rng);
      for (int q = 0; q < kQueriesPerThread; ++q) {
        // Alternate listed and clean addresses.
        const bool expect_listed = q % 2 == 0;
        const std::string target =
            expect_listed
                ? corpus[static_cast<std::size_t>((t * 37 + q) %
                                                  static_cast<int>(
                                                      corpus.size()))]
                : blocklist::random_address(blocklist::Chain::kBitcoin, rng);
        try {
          const auto prepared = client.prepare(target);
          const auto response = server.handle(prepared.request);
          const bool listed =
              client.finish(prepared.pending, response).listed;
          if (listed != expect_listed) ++wrong;
        } catch (const ProtocolError&) {
          ++wrong;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(wrong.load(), 0);
}

TEST(Concurrency, QueriesRideThroughMaintenance) {
  auto corpus_rng = ChaChaRng::from_string_seed("conc2-corpus");
  auto all = blocklist::generate_corpus(300, corpus_rng).addresses();
  const std::vector<std::string> stable(all.begin(), all.begin() + 150);
  const std::vector<std::string> churn(all.begin() + 150, all.end());

  auto server_rng = ChaChaRng::from_string_seed("conc2-server");
  oprf::OprfServer server(oprf::Oracle::fast(), 4, server_rng);
  server.setup(stable);

  std::atomic<bool> stop{false};
  std::atomic<int> wrong{0};

  // Maintenance thread: repeatedly add and remove the churn set.
  std::thread maintenance([&] {
    for (int round = 0; round < 10; ++round) {
      server.add_entries(churn);
      server.remove_entries(churn);
    }
    stop = true;
  });

  // Query threads: stable entries must ALWAYS be listed regardless of
  // the concurrent churn.
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      auto rng = ChaChaRng::from_string_seed("conc2-client-" +
                                             std::to_string(t));
      oprf::OprfClient client(oprf::Oracle::fast(), 4, rng);
      int q = 0;
      while (!stop.load() || q < 20) {
        const auto& target = stable[static_cast<std::size_t>(
            (t * 53 + q) % static_cast<int>(stable.size()))];
        try {
          const auto prepared = client.prepare(target);
          const auto response = server.handle(prepared.request);
          if (!client.finish(prepared.pending, response).listed) ++wrong;
        } catch (const ProtocolError&) {
          ++wrong;
        }
        ++q;
        if (q > 500) break;  // safety bound
      }
    });
  }
  maintenance.join();
  for (auto& th : readers) th.join();
  EXPECT_EQ(wrong.load(), 0);
  // Churn ended with a removal round: only the stable set remains.
  EXPECT_EQ(server.entry_count(), stable.size());
}

// The batched serving path under the same adversarial schedule, designed
// to run under TSan: many client threads funnel through
// QueryPipeline::serve (group-commit coalescing, WorkerPool sub-batch
// split) while a maintenance thread rotates the key and churns entries.
// Every non-shed answer must be a correct verdict; shed answers must be
// kRateLimited and must never have occupied a batch slot.
TEST(Concurrency, PipelineServesCorrectlyUnderChurnAndRotation) {
  auto corpus_rng = ChaChaRng::from_string_seed("conc3-corpus");
  auto all = blocklist::generate_corpus(240, corpus_rng).addresses();
  const std::vector<std::string> stable(all.begin(), all.begin() + 120);
  const std::vector<std::string> churn(all.begin() + 120, all.end());

  auto server_rng = ChaChaRng::from_string_seed("conc3-server");
  oprf::OprfServer server(oprf::Oracle::fast(), 4, server_rng);
  server.setup(stable);

  exec::WorkerPool pool({.threads = 2, .name = "conc3"});
  net::PipelineOptions options;
  options.shards = 2;
  options.max_batch = 8;
  options.max_queue = 2;  // small enough that bursts shed
  options.pool = &pool;
  net::QueryPipeline pipeline(server, options);

  std::atomic<bool> stop{false};
  std::atomic<int> wrong{0};
  std::atomic<int> ok_served{0};
  std::atomic<int> shed{0};

  std::thread maintenance([&] {
    for (int round = 0; round < 6; ++round) {
      server.add_entries(churn);
      server.remove_entries(churn);
      server.rotate_key();
    }
    stop = true;
  });

  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      auto rng =
          ChaChaRng::from_string_seed("conc3-client-" + std::to_string(t));
      oprf::OprfClient client(oprf::Oracle::fast(), 4, rng);
      int q = 0;
      while (!stop.load() || q < 30) {
        const auto& target = stable[static_cast<std::size_t>(
            (t * 31 + q) % static_cast<int>(stable.size()))];
        const auto prepared = client.prepare(target);
        const Bytes body = oprf::serialize(prepared.request);
        const auto result = pipeline.serve(body);
        if (result.status == net::Status::kRateLimited) {
          // Pipeline shed: refused before enqueue, so it carries the
          // pipeline's own retry hint and no body.
          EXPECT_EQ(result.retry_after_ms, options.shed_retry_after_ms);
          EXPECT_TRUE(result.body.empty());
          ++shed;
        } else if (result.status == net::Status::kOk) {
          try {
            const auto response = oprf::parse_query_response(result.body);
            if (!response ||
                !client.finish(prepared.pending, *response).listed) {
              ++wrong;
            }
          } catch (const ProtocolError&) {
            ++wrong;
          }
          ++ok_served;
        } else {
          ++wrong;  // a well-formed query must never be kBadRequest
        }
        client.clear_cache();  // epochs churn; keep every query cold
        ++q;
        if (q > 400) break;  // safety bound
      }
    });
  }
  maintenance.join();
  for (auto& th : clients) th.join();

  EXPECT_EQ(wrong.load(), 0);
  EXPECT_GE(ok_served.load(), 4 * 30 - shed.load());
  EXPECT_GT(ok_served.load(), 0);
}

// ------------------------------------------------------------ tx gateway

class TxAuthTest : public ::testing::Test {
 protected:
  ChaChaRng rng_ = ChaChaRng::from_string_seed("tx-auth");
  chain::Blockchain chain_;
  chain::AuthorizedGateway gateway_{chain_};

  std::pair<chain::AccountId, nizk::SigningKey> make_account(
      const std::string& label) {
    const auto id = chain_.ledger().create_account(label);
    chain_.ledger().mint(id, 100);
    const auto key = nizk::SigningKey::generate(rng_);
    gateway_.bind_key(id, key.pk);
    return {id, key};
  }
};

TEST_F(TxAuthTest, SignedSubmissionExecutes) {
  const auto [alice, key] = make_account("alice");
  const Bytes payload = to_bytes("transfer 10 to bob");
  const auto sig = chain::AuthorizedGateway::sign_submission(
      key, alice, "transfer", payload, 0, rng_);

  int executed = 0;
  const auto receipt =
      gateway_.submit(alice, "transfer", payload, 0, sig, [&] { ++executed; });
  EXPECT_EQ(executed, 1);
  EXPECT_EQ(receipt.payer, alice);
  EXPECT_EQ(gateway_.next_nonce(alice), 1u);
}

TEST_F(TxAuthTest, ReplayRejected) {
  const auto [alice, key] = make_account("alice");
  const Bytes payload = to_bytes("tx");
  const auto sig = chain::AuthorizedGateway::sign_submission(
      key, alice, "m", payload, 0, rng_);
  gateway_.submit(alice, "m", payload, 0, sig, [] {});
  // Same signed submission again: nonce already burned.
  EXPECT_THROW(gateway_.submit(alice, "m", payload, 0, sig, [] {}),
               ChainError);
}

TEST_F(TxAuthTest, ForgedAndForeignSignaturesRejected) {
  const auto [alice, alice_key] = make_account("alice");
  const auto [bob, bob_key] = make_account("bob");
  const Bytes payload = to_bytes("tx");

  // Bob's key cannot authorize alice's tx.
  const auto foreign = chain::AuthorizedGateway::sign_submission(
      bob_key, alice, "m", payload, 0, rng_);
  EXPECT_THROW(gateway_.submit(alice, "m", payload, 0, foreign, [] {}),
               ChainError);

  // A signature over different payload/method/nonce is rejected.
  auto sig = chain::AuthorizedGateway::sign_submission(alice_key, alice, "m",
                                                       payload, 0, rng_);
  EXPECT_THROW(
      gateway_.submit(alice, "m", to_bytes("other payload"), 0, sig, [] {}),
      ChainError);
  EXPECT_THROW(gateway_.submit(alice, "other-method", payload, 0, sig, [] {}),
               ChainError);
  EXPECT_THROW(gateway_.submit(alice, "m", payload, 1, sig, [] {}),
               ChainError);

  // Unbound account.
  const auto stranger = chain_.ledger().create_account("stranger");
  EXPECT_THROW(gateway_.submit(stranger, "m", payload, 0, sig, [] {}),
               ChainError);
}

TEST_F(TxAuthTest, RevertedTxDoesNotBurnNonce) {
  const auto [alice, key] = make_account("alice");
  const Bytes payload = to_bytes("tx");
  const auto sig = chain::AuthorizedGateway::sign_submission(
      key, alice, "m", payload, 0, rng_);
  EXPECT_THROW(gateway_.submit(alice, "m", payload, 0, sig,
                               [] { throw ChainError("contract revert"); }),
               ChainError);
  EXPECT_EQ(gateway_.next_nonce(alice), 0u);
  // The same signed submission succeeds on retry.
  int executed = 0;
  gateway_.submit(alice, "m", payload, 0, sig, [&] { ++executed; });
  EXPECT_EQ(executed, 1);
}

TEST_F(TxAuthTest, KeyRotation) {
  const auto [alice, old_key] = make_account("alice");
  const auto new_key = nizk::SigningKey::generate(rng_);
  gateway_.bind_key(alice, new_key.pk);

  const Bytes payload = to_bytes("tx");
  const auto stale = chain::AuthorizedGateway::sign_submission(
      old_key, alice, "m", payload, 0, rng_);
  EXPECT_THROW(gateway_.submit(alice, "m", payload, 0, stale, [] {}),
               ChainError);
  const auto fresh = chain::AuthorizedGateway::sign_submission(
      new_key, alice, "m", payload, 0, rng_);
  EXPECT_NO_THROW(gateway_.submit(alice, "m", payload, 0, fresh, [] {}));
}

}  // namespace
}  // namespace cbl
