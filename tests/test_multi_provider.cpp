// Tests for the multi-provider aggregator: policy semantics over
// overlapping blocklists, independence of blinding across providers, and
// empty-subscription behaviour.
#include <gtest/gtest.h>

#include "blocklist/generator.h"
#include "core/multi_provider.h"

namespace cbl::core {
namespace {

using cbl::ChaChaRng;

class MultiProviderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Three providers with overlapping corpora:
    //   shared: on all three; pair: on two; solo: on one.
    auto rng = ChaChaRng::from_string_seed("mp-corpus");
    shared_ = blocklist::random_address(blocklist::Chain::kBitcoin, rng);
    pair_ = blocklist::random_address(blocklist::Chain::kEthereum, rng);
    solo_ = blocklist::random_address(blocklist::Chain::kRipple, rng);
    clean_ = blocklist::random_address(blocklist::Chain::kBitcoin, rng);

    blocklist::FeedConfig fcfg;
    fcfg.count = 40;
    fcfg.duplicate_rate = 0;
    ProviderConfig pcfg;
    pcfg.lambda = 6;
    const char* names[] = {"alpha", "beta", "gamma"};
    for (int i = 0; i < 3; ++i) {
      providers_.push_back(
          std::make_unique<BlocklistProvider>(names[i], pcfg, rng_));
      auto feed = blocklist::generate_feed(fcfg, rng);
      blocklist::Entry e;
      e.address = shared_;
      feed.push_back(e);
      if (i < 2) {
        e.address = pair_;
        feed.push_back(e);
      }
      if (i == 0) {
        e.address = solo_;
        feed.push_back(e);
      }
      providers_[static_cast<std::size_t>(i)]->ingest(feed);
    }
  }

  MultiProviderUser make_user(AggregationPolicy policy) {
    MultiProviderUser user(policy, rng_);
    for (auto& p : providers_) user.subscribe(*p);
    return user;
  }

  ChaChaRng rng_ = ChaChaRng::from_string_seed("mp-tests");
  std::vector<std::unique_ptr<BlocklistProvider>> providers_;
  std::string shared_, pair_, solo_, clean_;
};

TEST_F(MultiProviderTest, AnyPolicy) {
  auto user = make_user(AggregationPolicy::kAny);
  EXPECT_TRUE(user.query(shared_).listed);
  EXPECT_TRUE(user.query(pair_).listed);
  EXPECT_TRUE(user.query(solo_).listed);
  EXPECT_FALSE(user.query(clean_).listed);
}

TEST_F(MultiProviderTest, MajorityPolicy) {
  auto user = make_user(AggregationPolicy::kMajority);
  EXPECT_TRUE(user.query(shared_).listed);   // 3/3
  EXPECT_TRUE(user.query(pair_).listed);     // 2/3
  EXPECT_FALSE(user.query(solo_).listed);    // 1/3
  EXPECT_FALSE(user.query(clean_).listed);   // 0/3
}

TEST_F(MultiProviderTest, AllPolicy) {
  auto user = make_user(AggregationPolicy::kAll);
  EXPECT_TRUE(user.query(shared_).listed);
  EXPECT_FALSE(user.query(pair_).listed);
  EXPECT_FALSE(user.query(solo_).listed);
}

TEST_F(MultiProviderTest, VerdictBreakdownIsPerProvider) {
  auto user = make_user(AggregationPolicy::kAny);
  const auto result = user.query(solo_);
  ASSERT_EQ(result.verdicts.size(), 3u);
  EXPECT_EQ(result.listing_count, 1u);
  EXPECT_EQ(result.verdicts[0].provider, "alpha");
  EXPECT_TRUE(result.verdicts[0].listed);
  EXPECT_FALSE(result.verdicts[1].listed);
  EXPECT_FALSE(result.verdicts[2].listed);
}

TEST_F(MultiProviderTest, PolicyCanBeSwitched) {
  auto user = make_user(AggregationPolicy::kAll);
  EXPECT_FALSE(user.query(pair_).listed);
  user.set_policy(AggregationPolicy::kAny);
  EXPECT_TRUE(user.query(pair_).listed);
}

TEST_F(MultiProviderTest, EmptySubscriptionListsNothing) {
  MultiProviderUser user(AggregationPolicy::kAll, rng_);
  const auto result = user.query(shared_);
  EXPECT_FALSE(result.listed);
  EXPECT_TRUE(result.verdicts.empty());
}

}  // namespace
}  // namespace cbl::core
