// A full evaluation driven entirely through the byte-level contract
// entry points — the exact path a deployed chain executes — plus
// malformed-byte rejection at each stage.
#include <gtest/gtest.h>

#include "chain/blockchain.h"
#include "common/rng.h"
#include "voting/contract.h"
#include "voting/shareholder.h"
#include "voting/wire.h"

namespace cbl::voting {
namespace {

using cbl::ChaChaRng;
using chain::Blockchain;

class ContractBytesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cfg_.thresh = cfg_.committee_size = 3;
    cfg_.deposit = 10;
    cfg_.provider_deposit = 10;
    provider_ = chain_.ledger().create_account("provider");
    chain_.ledger().mint(provider_, 100);
    contract_ = std::make_unique<EvaluationContract>(chain_, cfg_, provider_);
    for (unsigned vote : {1u, 1u, 0u}) {
      shareholders_.push_back(
          std::make_unique<Shareholder>(chain_.crs(), rng_, vote,
                                        cfg_.deposit));
      const auto acct = chain_.ledger().create_account("sh");
      chain_.ledger().mint(acct, cfg_.deposit);
      chain_.shielded_pool().shield(acct, cfg_.deposit,
                                    shareholders_.back()->deposit_note(),
                                    shareholders_.back()->make_shield_proof(rng_));
    }
  }

  ChaChaRng rng_ = ChaChaRng::from_string_seed("contract-bytes");
  Blockchain chain_;
  EvaluationConfig cfg_;
  chain::AccountId provider_ = 0;
  std::unique_ptr<EvaluationContract> contract_;
  std::vector<std::unique_ptr<Shareholder>> shareholders_;
};

TEST_F(ContractBytesTest, FullCeremonyThroughBytes) {
  // Registration: serialize -> bytes -> contract.
  for (std::size_t i = 0; i < 3; ++i) {
    const Bytes bytes = serialize(shareholders_[i]->build_round1(rng_));
    EXPECT_EQ(contract_->register_shareholder_bytes(0, bytes), i);
  }
  ASSERT_EQ(contract_->phase(), EvaluationContract::Phase::kVrfReveal);

  for (std::size_t i = 0; i < 3; ++i) {
    const Bytes bytes = serialize(
        shareholders_[i]->build_vrf_reveal(contract_->challenge(), rng_));
    contract_->reveal_vrf_bytes(i, bytes, 0);
  }
  contract_->finalize_committee(0);

  const auto secrets = contract_->committee_secrets();
  for (std::size_t i = 0; i < 3; ++i) {
    const auto pos = contract_->committee_position(i);
    ASSERT_TRUE(pos.has_value());
    const Bytes bytes =
        serialize(shareholders_[i]->build_round2(secrets, *pos, rng_));
    contract_->submit_round2_bytes(i, bytes, 0);
  }
  EXPECT_EQ(contract_->outcome().tally, 2u);
  EXPECT_TRUE(contract_->outcome().approved);
}

TEST_F(ContractBytesTest, MalformedBytesRevertWithoutStateChange) {
  const std::size_t receipts_before = chain_.receipts().size();
  const Bytes garbage(Round1Submission::wire_size(), 0xab);
  EXPECT_THROW(contract_->register_shareholder_bytes(0, garbage), ChainError);
  EXPECT_EQ(contract_->registered_count(), 0u);
  // Reverted: no new receipt beyond the setup transactions.
  EXPECT_EQ(chain_.receipts().size(), receipts_before);

  const Bytes short_bytes(10, 0x01);
  EXPECT_THROW(contract_->register_shareholder_bytes(0, short_bytes),
               ChainError);

  // Advance to reveal phase honestly; malformed reveals revert too.
  for (std::size_t i = 0; i < 3; ++i) {
    contract_->register_shareholder_bytes(
        0, serialize(shareholders_[i]->build_round1(rng_)));
  }
  EXPECT_THROW(contract_->reveal_vrf_bytes(0, Bytes(5, 0), 0), ChainError);
  EXPECT_THROW(
      contract_->reveal_vrf_bytes(0, Bytes(VrfReveal::wire_size(), 0xff), 0),
      ChainError);

  for (std::size_t i = 0; i < 3; ++i) {
    contract_->reveal_vrf_bytes(
        i,
        serialize(shareholders_[i]->build_vrf_reveal(contract_->challenge(),
                                                     rng_)),
        0);
  }
  contract_->finalize_committee(0);
  EXPECT_THROW(
      contract_->submit_round2_bytes(0, Bytes(7, 0x02), 0), ChainError);
  EXPECT_THROW(contract_->submit_round2_bytes(
                   0, Bytes(Round2Submission::wire_size(), 0xff), 0),
               ChainError);
}

TEST_F(ContractBytesTest, BitFlippedProofBytesRejected) {
  // A single flipped bit anywhere in an otherwise honest submission must
  // be rejected: either the point/scalar decode fails, or the parsed
  // proof no longer verifies.
  const Bytes honest = serialize(shareholders_[0]->build_round1(rng_));
  auto flip_rng = ChaChaRng::from_string_seed("flip");
  for (int trial = 0; trial < 24; ++trial) {
    Bytes mutated = honest;
    const std::size_t bit = flip_rng.uniform(mutated.size() * 8);
    mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_THROW(contract_->register_shareholder_bytes(0, mutated),
                 ChainError)
        << "flipped bit " << bit;
  }
  // The honest bytes still register fine afterwards.
  EXPECT_EQ(contract_->register_shareholder_bytes(0, honest), 0u);
}

}  // namespace
}  // namespace cbl::voting
