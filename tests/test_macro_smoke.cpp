// End-to-end macro-harness smoke test (<= 5k queries): runs the full
// open-loop trajectory through the real serving stack and checks the
// report's hard guarantees — zero wrong verdicts, a genuinely
// exercised shed path when offered load exceeds NodeLimits, a complete
// and self-consistent BENCH_macro.json, and bit-exact model replay.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "load/macro.h"

namespace {

using cbl::load::LevelResult;
using cbl::load::MacroConfig;
using cbl::load::MacroReport;
using cbl::load::run_macro;

MacroConfig smoke_config() {
  MacroConfig config;
  config.seed = 4242;
  config.workload.unique_addresses = std::size_t{1} << 10;
  config.workload.listed_addresses = std::size_t{1} << 7;
  // One level comfortably under the 50 QPS effective server capacity,
  // one far over it: the knee must appear between them.
  config.offered_qps = {100.0, 1600.0};
  config.queries_per_level = 500;  // 1000 queries total, well under 5k
  config.burst_threads = 2;
  config.burst_queries = 64;
  return config;
}

/// The model section of the JSON (everything before "cpu"), which is
/// the bit-reproducible part a regression gate may compare.
std::string model_slice(const std::string& json) {
  const auto pos = json.find("\"cpu\"");
  return json.substr(0, pos == std::string::npos ? json.size() : pos);
}

TEST(MacroSmoke, TrajectoryIsCorrectShedsUnderOverloadAndReplays) {
  const MacroConfig config = smoke_config();
  const MacroReport report = run_macro(config);

  // Hard correctness: the degradation ladder never invents a verdict,
  // so ground truth is matched on every usable answer at every level.
  EXPECT_EQ(report.wrong_verdicts, 0u);

  ASSERT_EQ(report.levels.size(), 2u);
  const LevelResult& calm = report.levels[0];
  const LevelResult& storm = report.levels[1];

  // Under-capacity level: the SLO holds and nothing is shed.
  EXPECT_TRUE(calm.slo_ok);
  EXPECT_EQ(calm.shed, 0u);

  // Overload level: offered load exceeds NodeLimits capacity, so the
  // admission model genuinely sheds and the SLO breaks.
  EXPECT_GT(storm.shed, 0u);
  EXPECT_GT(storm.shed_rate, 0.0);
  EXPECT_FALSE(storm.slo_ok);
  EXPECT_GT(storm.p99_ms, calm.p99_ms);

  EXPECT_DOUBLE_EQ(report.sustained_qps_at_slo, 100.0);
  EXPECT_DOUBLE_EQ(report.p99_ms, calm.p99_ms);

  // Per-level self-consistency.
  for (const LevelResult& level : report.levels) {
    EXPECT_EQ(level.queries, config.queries_per_level);
    EXPECT_EQ(level.cache_hits + level.prefix_local + level.wire_queries,
              level.queries);
    // Every wire query lands in exactly one freshness class.
    EXPECT_EQ(level.fresh + level.stale_cache + level.prefix_only +
                  level.unavailable,
              level.wire_queries);
    EXPECT_GE(level.wire_attempts, level.wire_queries);
    EXPECT_GE(level.shed_rate, 0.0);
    EXPECT_LE(level.shed_rate, 1.0);
    EXPECT_LE(level.p50_ms, level.p99_ms);
    EXPECT_LE(level.p99_ms, level.p999_ms);
    EXPECT_GT(level.achieved_qps, 0.0);
  }

  // Report totals are the column sums of the levels.
  std::uint64_t cache_hits = 0, prefix_local = 0, fresh = 0, stale = 0,
                prefix_only = 0, unavailable = 0;
  for (const LevelResult& level : report.levels) {
    cache_hits += level.cache_hits;
    prefix_local += level.prefix_local;
    fresh += level.fresh;
    stale += level.stale_cache;
    prefix_only += level.prefix_only;
    unavailable += level.unavailable;
  }
  EXPECT_EQ(report.cache_hits, cache_hits);
  EXPECT_EQ(report.prefix_local, prefix_local);
  EXPECT_EQ(report.fresh, fresh);
  EXPECT_EQ(report.stale_cache, stale);
  EXPECT_EQ(report.prefix_only, prefix_only);
  EXPECT_EQ(report.unavailable, unavailable);

  // The burst phase ran (2 threads x 64 queries) and measured something.
  EXPECT_GT(report.burst_qps, 0.0);

  // Every canonical JSON field is present.
  const std::string json = report.to_json();
  for (const char* key :
       {"\"bench\":\"macro\"", "\"schema\":1", "\"seed\":4242", "\"config\":",
        "\"simulated_clients\":", "\"unique_addresses\":",
        "\"listed_addresses\":", "\"zipf_s\":", "\"cache_hit_ratio\":",
        "\"prefix_local_ratio\":", "\"offered_qps\":",
        "\"queries_per_level\":", "\"service_ms\":", "\"max_inflight\":",
        "\"transport_latency_ms\":", "\"lambda\":", "\"use_pipeline\":",
        "\"chaos\":", "\"slo\":", "\"p99_ms\":", "\"max_shed_rate\":",
        "\"max_unavailable_rate\":", "\"model\":",
        "\"sustained_qps_at_slo\":", "\"p50_ms\":", "\"p999_ms\":",
        "\"shed_rate\":", "\"wrong_verdicts\":", "\"freshness\":",
        "\"cache_hit\":", "\"prefix_local\":", "\"fresh\":",
        "\"stale_cache\":", "\"prefix_only\":", "\"unavailable\":",
        "\"levels\":", "\"offered_qps\":", "\"achieved_qps\":",
        "\"queries\":", "\"wire_queries\":", "\"wire_attempts\":",
        "\"shed\":", "\"wrong\":", "\"slo_ok\":", "\"cpu\":",
        "\"per_stage_ns\":", "\"parse\":", "\"crypto\":", "\"seal\":",
        "\"pipeline_crypto\":", "\"burst_qps\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }

  // Real CPU was measured for the serving stages during the run.
  EXPECT_GT(report.parse_ns + report.crypto_ns + report.seal_ns, 0u);

  // Bit-exact replay: a second run from the same (seed, config) must
  // reproduce the model section of the JSON verbatim. (The cpu section
  // measures the machine and may differ.)
  const MacroReport replay = run_macro(config);
  EXPECT_EQ(model_slice(json), model_slice(replay.to_json()));
}

TEST(MacroSmoke, RejectsEmptyLevelList) {
  MacroConfig config = smoke_config();
  config.offered_qps.clear();
  EXPECT_THROW(run_macro(config), std::invalid_argument);
}

}  // namespace
