// Unit tests for the hash substrate: FIPS 180-4 (SHA-256/512), RFC 2104
// (HMAC), RFC 5869 (HKDF), RFC 7693 (BLAKE2b), RFC 9106 (Argon2id).
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "hash/argon2.h"
#include "hash/blake2b.h"
#include "hash/sha256.h"
#include "hash/sha512.h"

namespace cbl::hash {
namespace {

std::string digest_hex(const Sha256::Digest& d) {
  return to_hex(ByteView(d.data(), d.size()));
}
std::string digest_hex(const Sha512::Digest& d) {
  return to_hex(ByteView(d.data(), d.size()));
}

TEST(Sha256, EmptyString) {
  EXPECT_EQ(digest_hex(Sha256::digest("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(digest_hex(Sha256::digest("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(digest_hex(Sha256::digest(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionA) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(digest_hex(h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingMatchesOneShot) {
  const std::string msg = "the quick brown fox jumps over the lazy dog";
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.update(msg.substr(0, split));
    h.update(msg.substr(split));
    EXPECT_EQ(h.finalize(), Sha256::digest(msg)) << "split=" << split;
  }
}

TEST(Sha256, ResetReusesObject) {
  Sha256 h;
  h.update("garbage");
  (void)h.finalize();
  h.reset();
  h.update("abc");
  EXPECT_EQ(digest_hex(h.finalize()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha512, EmptyString) {
  EXPECT_EQ(digest_hex(Sha512::digest("")),
            "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce"
            "47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e");
}

TEST(Sha512, Abc) {
  EXPECT_EQ(digest_hex(Sha512::digest("abc")),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
            "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f");
}

TEST(Sha512, TwoBlockMessage) {
  EXPECT_EQ(
      digest_hex(Sha512::digest(
          "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno"
          "ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu")),
      "8e959b75dae313da8cf4f72814fc143f8f7779c6eb9f7fa17299aeadb6889018"
      "501d289e4900f7e4331b99dec4b5433ac7d329eeb6dd26545e96e55b874be909");
}

TEST(Sha512, StreamingMatchesOneShot) {
  std::string msg;
  for (int i = 0; i < 300; ++i) msg.push_back(static_cast<char>('a' + i % 26));
  Sha512 h;
  h.update(msg.substr(0, 129));
  h.update(msg.substr(129));
  EXPECT_EQ(h.finalize(), Sha512::digest(msg));
}

TEST(HmacSha256, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const auto mac = hmac_sha256(key, to_bytes("Hi There"));
  EXPECT_EQ(to_hex(ByteView(mac.data(), mac.size())),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  const auto mac =
      hmac_sha256(to_bytes("Jefe"), to_bytes("what do ya want for nothing?"));
  EXPECT_EQ(to_hex(ByteView(mac.data(), mac.size())),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, LongKeyIsHashedFirst) {
  // RFC 4231 case 6: 131-byte key of 0xaa.
  const Bytes key(131, 0xaa);
  const auto mac = hmac_sha256(
      key, to_bytes("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(to_hex(ByteView(mac.data(), mac.size())),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HkdfSha256, Rfc5869Case1) {
  const Bytes ikm(22, 0x0b);
  const auto salt = from_hex("000102030405060708090a0b0c").value();
  const auto info = from_hex("f0f1f2f3f4f5f6f7f8f9").value();
  const auto okm = hkdf_sha256(ikm, salt, info, 42);
  EXPECT_EQ(to_hex(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(HkdfSha256, MultiBlockExpansion) {
  const auto okm = hkdf_sha256(to_bytes("ikm"), to_bytes("salt"),
                               to_bytes("info"), 100);
  EXPECT_EQ(okm.size(), 100u);
  // Prefix property: shorter output is a prefix of longer output.
  const auto okm2 = hkdf_sha256(to_bytes("ikm"), to_bytes("salt"),
                                to_bytes("info"), 64);
  EXPECT_TRUE(std::equal(okm2.begin(), okm2.end(), okm.begin()));
}

TEST(Blake2b, Rfc7693Abc) {
  EXPECT_EQ(to_hex(Blake2b::digest(to_bytes("abc"))),
            "ba80a53f981c4d0d6a2797b69f12f6e94c212f14685ac4b74b12bb6fdbffa2d1"
            "7d87c5392aab792dc252d5de4533cc9518d38aa8dbf1925ab92386edd4009923");
}

TEST(Blake2b, EmptyInput) {
  EXPECT_EQ(to_hex(Blake2b::digest({})),
            "786a02f742015903c6c6fd852552d272912f4740e15847618a86e217f71f5419"
            "d25e1031afee585313896444934eb04b903a685b1448b755d56f701afe9be2ce");
}

TEST(Blake2b, VariableDigestLengthsDiffer) {
  const auto d32 = Blake2b::digest(to_bytes("x"), 32);
  const auto d64 = Blake2b::digest(to_bytes("x"), 64);
  EXPECT_EQ(d32.size(), 32u);
  EXPECT_EQ(d64.size(), 64u);
  // Truncation is NOT how blake2 shortens output; parameter block differs.
  EXPECT_FALSE(std::equal(d32.begin(), d32.end(), d64.begin()));
}

TEST(Blake2b, KeyedDiffersFromUnkeyed) {
  const Bytes key = {1, 2, 3};
  EXPECT_NE(Blake2b::digest(to_bytes("msg"), 64, key),
            Blake2b::digest(to_bytes("msg"), 64));
}

TEST(Blake2b, StreamingBoundaries) {
  // Exercise exact multiples of the 128-byte block: the last block must be
  // flagged correctly even when the input fills it exactly.
  for (std::size_t len : {0u, 1u, 127u, 128u, 129u, 255u, 256u, 257u, 1024u}) {
    Bytes msg(len, 0x5a);
    Blake2b one_shot;
    one_shot.update(msg);
    Blake2b chunked;
    for (std::size_t i = 0; i < len; i += 7) {
      const std::size_t take = std::min<std::size_t>(7, len - i);
      chunked.update(ByteView(msg.data() + i, take));
    }
    EXPECT_EQ(one_shot.finalize(), chunked.finalize()) << "len=" << len;
  }
}

TEST(Blake2b, RejectsBadParameters) {
  EXPECT_THROW(Blake2b(0), std::invalid_argument);
  EXPECT_THROW(Blake2b(65), std::invalid_argument);
  EXPECT_THROW(Blake2b(64, Bytes(65, 0)), std::invalid_argument);
}

TEST(Argon2, HprimeShortOutput) {
  // H'(x) for tag <= 64 is a length-prefixed blake2b; cross-check.
  const Bytes input = to_bytes("input");
  Bytes prefixed = {32, 0, 0, 0};
  append(prefixed, input);
  EXPECT_EQ(argon2_hprime(input, 32), Blake2b::digest(prefixed, 32));
}

TEST(Argon2, HprimeLongOutputLength) {
  EXPECT_EQ(argon2_hprime(to_bytes("seed"), 1024).size(), 1024u);
}

TEST(Argon2, Rfc9106Argon2idVector) {
  // RFC 9106 section 5.3 (Argon2id): m=32, t=3, p=4, 32-byte tag.
  const Bytes password(32, 0x01);
  const Bytes salt(16, 0x02);
  const Bytes secret(8, 0x03);
  const Bytes ad(12, 0x04);
  Argon2Params params;
  params.time_cost = 3;
  params.memory_kib = 32;
  params.parallelism = 4;
  params.tag_length = 32;
  const auto tag = argon2id(password, salt, params, secret, ad);
  EXPECT_EQ(to_hex(tag),
            "0d640df58d78766c08c037a34a8b53c9d01ef0452d75b65eb52520e96b01e659");
}

TEST(Argon2, Deterministic) {
  Argon2Params params;
  params.memory_kib = 16;
  params.parallelism = 1;
  params.time_cost = 2;
  const auto a = argon2id(to_bytes("pw"), to_bytes("somesalt"), params);
  const auto b = argon2id(to_bytes("pw"), to_bytes("somesalt"), params);
  EXPECT_EQ(a, b);
}

TEST(Argon2, DistinctInputsDistinctTags) {
  Argon2Params params;
  params.memory_kib = 16;
  params.parallelism = 1;
  params.time_cost = 1;
  const auto a = argon2id(to_bytes("pw1"), to_bytes("somesalt"), params);
  const auto b = argon2id(to_bytes("pw2"), to_bytes("somesalt"), params);
  const auto c = argon2id(to_bytes("pw1"), to_bytes("othersalt"), params);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
}

TEST(Argon2, ParameterValidation) {
  Argon2Params params;
  params.parallelism = 0;
  EXPECT_THROW(argon2id(to_bytes("p"), to_bytes("saltsalt"), params),
               std::invalid_argument);
  params.parallelism = 4;
  params.memory_kib = 8;  // < 8 * parallelism
  EXPECT_THROW(argon2id(to_bytes("p"), to_bytes("saltsalt"), params),
               std::invalid_argument);
  params.memory_kib = 64;
  params.time_cost = 0;
  EXPECT_THROW(argon2id(to_bytes("p"), to_bytes("saltsalt"), params),
               std::invalid_argument);
}

TEST(Argon2, TimeCostChangesOutput) {
  Argon2Params p1, p2;
  p1.memory_kib = p2.memory_kib = 16;
  p1.parallelism = p2.parallelism = 1;
  p1.time_cost = 1;
  p2.time_cost = 2;
  EXPECT_NE(argon2id(to_bytes("pw"), to_bytes("somesalt"), p1),
            argon2id(to_bytes("pw"), to_bytes("somesalt"), p2));
}

}  // namespace
}  // namespace cbl::hash
