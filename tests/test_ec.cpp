// Tests for the from-scratch Ristretto255 stack: field arithmetic,
// scalar arithmetic mod l, group laws, and the official
// draft-irtf-cfrg-ristretto255 test vectors (small multiples of the base
// point and hash-to-group).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "ec/fe25519.h"
#include "ec/ristretto.h"
#include "ec/scalar.h"
#include "hash/sha512.h"

namespace cbl::ec {
namespace {

using cbl::ChaChaRng;

std::array<std::uint8_t, 32> arr32(const Bytes& b) {
  std::array<std::uint8_t, 32> out{};
  std::copy(b.begin(), b.end(), out.begin());
  return out;
}

Fe25519 random_fe(Rng& rng) {
  std::array<std::uint8_t, 32> b;
  rng.fill(b.data(), b.size());
  b[31] &= 0x7f;
  return Fe25519::from_bytes(b);
}

// ---------------------------------------------------------------- Fe25519

TEST(Fe25519, ZeroAndOneEncodings) {
  EXPECT_EQ(to_hex(ByteView(Fe25519::zero().to_bytes())),
            "0000000000000000000000000000000000000000000000000000000000000000");
  EXPECT_EQ(to_hex(ByteView(Fe25519::one().to_bytes())),
            "0100000000000000000000000000000000000000000000000000000000000000");
}

TEST(Fe25519, PReducesToZero) {
  // p = 2^255 - 19 encodes as ed ff .. ff 7f and is congruent to 0.
  auto p_bytes = arr32(from_hex(
      "edffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff7f")
      .value());
  EXPECT_TRUE(Fe25519::from_bytes(p_bytes).is_zero());
}

TEST(Fe25519, FromBytesIgnoresTopBit) {
  auto a = arr32(from_hex(
      "0100000000000000000000000000000000000000000000000000000000000080")
      .value());
  EXPECT_EQ(Fe25519::from_bytes(a), Fe25519::one());
}

TEST(Fe25519, RoundTrip) {
  auto rng = ChaChaRng::from_string_seed("fe-roundtrip");
  for (int i = 0; i < 50; ++i) {
    const Fe25519 x = random_fe(rng);
    EXPECT_EQ(Fe25519::from_bytes(x.to_bytes()), x);
  }
}

TEST(Fe25519, FieldAxioms) {
  auto rng = ChaChaRng::from_string_seed("fe-axioms");
  for (int i = 0; i < 25; ++i) {
    const Fe25519 a = random_fe(rng), b = random_fe(rng), c = random_fe(rng);
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a - a, Fe25519::zero());
    EXPECT_EQ(a + (-a), Fe25519::zero());
    EXPECT_EQ(a * Fe25519::one(), a);
  }
}

TEST(Fe25519, SquareMatchesMul) {
  auto rng = ChaChaRng::from_string_seed("fe-square");
  for (int i = 0; i < 25; ++i) {
    const Fe25519 a = random_fe(rng);
    EXPECT_EQ(a.square(), a * a);
  }
}

TEST(Fe25519, InvertIsInverse) {
  auto rng = ChaChaRng::from_string_seed("fe-invert");
  for (int i = 0; i < 10; ++i) {
    const Fe25519 a = random_fe(rng);
    if (a.is_zero()) continue;
    EXPECT_EQ(a * a.invert(), Fe25519::one());
  }
  EXPECT_TRUE(Fe25519::zero().invert().is_zero());
}

TEST(Fe25519, SqrtM1IsARootOfMinusOne) {
  EXPECT_EQ(Fe25519::sqrt_m1().square(), -Fe25519::one());
  EXPECT_FALSE(Fe25519::sqrt_m1().is_negative());
}

TEST(Fe25519, EdwardsDValue) {
  // d = -121665/121666, a well-known constant.
  EXPECT_EQ(to_hex(ByteView(Fe25519::edwards_d().to_bytes())),
            "a3785913ca4deb75abd841414d0a700098e879777940c78c73fe6f2bee6c0352");
}

TEST(Fe25519, SqrtRatioOfSquares) {
  auto rng = ChaChaRng::from_string_seed("fe-sqrt");
  for (int i = 0; i < 20; ++i) {
    const Fe25519 x = random_fe(rng);
    if (x.is_zero()) continue;
    const Fe25519 u = x.square();
    const auto r = sqrt_ratio_m1(u, Fe25519::one());
    EXPECT_TRUE(r.was_square);
    EXPECT_EQ(r.root.square(), u);
    EXPECT_FALSE(r.root.is_negative());
  }
}

TEST(Fe25519, SqrtRatioOfNonSquare) {
  // -1 is a QR mod p (p = 1 mod 4), but a quadratic non-residue times a
  // square is a non-square; use sqrt_m1 * x^2 * some non-square. 2 is a
  // non-square mod 2^255-19.
  const Fe25519 two = Fe25519::from_u64(2);
  const auto r = sqrt_ratio_m1(two, Fe25519::one());
  EXPECT_FALSE(r.was_square);
  // The returned root is sqrt(sqrt(-1) * 2).
  EXPECT_EQ(r.root.square(), Fe25519::sqrt_m1() * two);
}

TEST(Fe25519, AbsIsNonNegative) {
  auto rng = ChaChaRng::from_string_seed("fe-abs");
  for (int i = 0; i < 20; ++i) {
    const Fe25519 x = random_fe(rng);
    EXPECT_FALSE(x.abs().is_negative());
    if (!x.is_zero()) {
      EXPECT_TRUE(x.abs() == x || x.abs() == -x);
    }
  }
}

// ------------------------------------------------------------------ Scalar

TEST(Scalar, GroupOrderReducesToZero) {
  // l = 2^252 + 27742317777372353535851937790883648493.
  auto l_bytes = arr32(from_hex(
      "edd3f55c1a631258d69cf7a2def9de1400000000000000000000000000000010")
      .value());
  EXPECT_TRUE(Scalar::from_bytes_mod_order(l_bytes).is_zero());
  EXPECT_FALSE(Scalar::from_canonical_bytes(l_bytes).has_value());
}

TEST(Scalar, CanonicalAcceptsLMinusOne) {
  auto lm1 = arr32(from_hex(
      "ecd3f55c1a631258d69cf7a2def9de1400000000000000000000000000000010")
      .value());
  const auto s = Scalar::from_canonical_bytes(lm1);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(*s + Scalar::one(), Scalar::zero());
}

TEST(Scalar, FieldAxioms) {
  auto rng = ChaChaRng::from_string_seed("sc-axioms");
  for (int i = 0; i < 25; ++i) {
    const Scalar a = Scalar::random(rng), b = Scalar::random(rng),
                 c = Scalar::random(rng);
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a - a, Scalar::zero());
    EXPECT_EQ(a + (-a), Scalar::zero());
    EXPECT_EQ(a * Scalar::one(), a);
  }
}

TEST(Scalar, SmallValueArithmetic) {
  EXPECT_EQ(Scalar::from_u64(3) * Scalar::from_u64(5), Scalar::from_u64(15));
  EXPECT_EQ(Scalar::from_u64(100) - Scalar::from_u64(58),
            Scalar::from_u64(42));
  EXPECT_EQ(Scalar::from_u64(1) - Scalar::from_u64(2) + Scalar::from_u64(1),
            Scalar::zero());
}

TEST(Scalar, InvertIsInverse) {
  auto rng = ChaChaRng::from_string_seed("sc-invert");
  for (int i = 0; i < 10; ++i) {
    const Scalar a = Scalar::random(rng);
    if (a.is_zero()) continue;
    EXPECT_EQ(a * a.invert(), Scalar::one());
  }
}

TEST(Scalar, WideReductionMatchesModOrder) {
  // For 32-byte inputs the two entry points must agree.
  auto rng = ChaChaRng::from_string_seed("sc-wide");
  for (int i = 0; i < 10; ++i) {
    std::array<std::uint8_t, 32> narrow;
    rng.fill(narrow.data(), narrow.size());
    std::array<std::uint8_t, 64> wide{};
    std::copy(narrow.begin(), narrow.end(), wide.begin());
    EXPECT_EQ(Scalar::from_bytes_wide(wide),
              Scalar::from_bytes_mod_order(narrow));
  }
}

TEST(Scalar, WideReductionHighHalf) {
  // 2^256 mod l: wide input with a single bit at position 256.
  std::array<std::uint8_t, 64> wide{};
  wide[32] = 1;
  const Scalar two_256 = Scalar::from_bytes_wide(wide);
  // Must equal (2^128)^2 computed by multiplication.
  std::array<std::uint8_t, 32> b{};
  b[16] = 1;  // 2^128
  const Scalar two_128 = Scalar::from_bytes_mod_order(b);
  EXPECT_EQ(two_256, two_128 * two_128);
}

TEST(Scalar, ToBytesRoundTrip) {
  auto rng = ChaChaRng::from_string_seed("sc-bytes");
  for (int i = 0; i < 10; ++i) {
    const Scalar a = Scalar::random(rng);
    const auto back = Scalar::from_canonical_bytes(a.to_bytes());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, a);
  }
}

// ------------------------------------------------------------- Ristretto

// Small multiples of the base point, from the ristretto255 spec.
const char* kSmallMultiples[] = {
    "0000000000000000000000000000000000000000000000000000000000000000",
    "e2f2ae0a6abc4e71a884a961c500515f58e30b6aa582dd8db6a65945e08d2d76",
    "6a493210f7499cd17fecb510ae0cea23a110e8d5b901f8acadd3095c73a3b919",
    "94741f5d5d52755ece4f23f044ee27d5d1ea1e2bd196b462166b16152a9d0259",
    "da80862773358b466ffadfe0b3293ab3d9fd53c5ea6c955358f568322daf6a57",
    "e882b131016b52c1d3337080187cf768423efccbb517bb495ab812c4160ff44e",
    "f64746d3c92b13050ed8d80236a7f0007c3b3f962f5ba793d19a601ebb1df403",
    "44f53520926ec81fbd5a387845beb7df85a96a24ece18738bdcfa6a7822a176d",
    "903293d8f2287ebe10e2374dc1a53e0bc887e592699f02d077d5263cdd55601c",
    "02622ace8f7303a31cafc63f8fc48fdc16e1c8c8d234b2f0d6685282a9076031",
    "20706fd788b2720a1ed2a5dad4952b01f413bcf0e7564de8cdc816689e2db95f",
    "bce83f8ba5dd2fa572864c24ba1810f9522bc6004afe95877ac73241cafdab42",
    "e4549ee16b9aa03099ca208c67adafcafa4c3f3e4e5303de6026e3ca8ff84460",
    "aa52e000df2e16f55fb1032fc33bc42742dad6bd5a8fc0be0167436c5948501f",
    "46376b80f409b29dc2b5f6f0c52591990896e5716f41477cd30085ab7f10301e",
    "e0c418f7c8d9c4cdd7395b93ea124f3ad99021bb681dfc3302a9d99a2e53e64e",
};

TEST(Ristretto, SpecSmallMultiplesByAddition) {
  RistrettoPoint p = RistrettoPoint::identity();
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(to_hex(ByteView(p.encode())), kSmallMultiples[i]) << "i=" << i;
    p = p + RistrettoPoint::base();
  }
}

TEST(Ristretto, SpecSmallMultiplesByScalarMul) {
  for (int i = 0; i < 16; ++i) {
    const RistrettoPoint p =
        RistrettoPoint::base() * Scalar::from_u64(static_cast<std::uint64_t>(i));
    EXPECT_EQ(to_hex(ByteView(p.encode())), kSmallMultiples[i]) << "i=" << i;
  }
}

TEST(Ristretto, DecodeSmallMultiples) {
  RistrettoPoint p = RistrettoPoint::identity();
  for (int i = 0; i < 16; ++i) {
    const auto enc = arr32(from_hex(kSmallMultiples[i]).value());
    const auto decoded = RistrettoPoint::decode(enc);
    ASSERT_TRUE(decoded.has_value()) << "i=" << i;
    EXPECT_EQ(*decoded, p);
    p = p + RistrettoPoint::base();
  }
}

TEST(Ristretto, SpecHashToGroupEspresso) {
  // From the ristretto255 spec: SHA-512 of the label as uniform bytes.
  const auto uniform = hash::Sha512::digest(
      "Ristretto is traditionally a short shot of espresso coffee");
  const auto p = RistrettoPoint::from_uniform_bytes(uniform);
  EXPECT_EQ(to_hex(ByteView(p.encode())),
            "3066f82a1a747d45120d1740f14358531a8f04bbffe6a819f86dfe50f44a0a46");
}

TEST(Ristretto, FromUniformBytesIsDeterministicAndValid) {
  auto rng = ChaChaRng::from_string_seed("ristretto-uniform");
  for (int i = 0; i < 10; ++i) {
    std::array<std::uint8_t, 64> uniform;
    rng.fill(uniform.data(), uniform.size());
    const auto p = RistrettoPoint::from_uniform_bytes(uniform);
    const auto q = RistrettoPoint::from_uniform_bytes(uniform);
    EXPECT_EQ(p.encode(), q.encode());
    // The output must be a canonically decodable group element.
    const auto decoded = RistrettoPoint::decode(p.encode());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, p);
  }
}

TEST(Ristretto, DecodeRejectsNonCanonical) {
  // s >= p is non-canonical.
  auto bad = arr32(from_hex(
      "edffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff7f")
      .value());
  EXPECT_FALSE(RistrettoPoint::decode(bad).has_value());
  // Top bit set: from_bytes drops it, so re-encoding differs.
  bad = arr32(from_hex(
      "0000000000000000000000000000000000000000000000000000000000000080")
      .value());
  EXPECT_FALSE(RistrettoPoint::decode(bad).has_value());
  // All ff: both non-canonical and negative.
  bad.fill(0xff);
  EXPECT_FALSE(RistrettoPoint::decode(bad).has_value());
}

TEST(Ristretto, DecodeRejectsYZero) {
  // s = 1 yields y = 0, which the spec rejects.
  auto bad = arr32(from_hex(
      "0100000000000000000000000000000000000000000000000000000000000000")
      .value());
  EXPECT_FALSE(RistrettoPoint::decode(bad).has_value());
}

TEST(Ristretto, EncodeDecodeRoundTrip) {
  auto rng = ChaChaRng::from_string_seed("ristretto-roundtrip");
  for (int i = 0; i < 20; ++i) {
    const RistrettoPoint p = RistrettoPoint::base() * Scalar::random(rng);
    const auto decoded = RistrettoPoint::decode(p.encode());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, p);
    EXPECT_EQ(decoded->encode(), p.encode());
  }
}

TEST(Ristretto, GroupLaws) {
  auto rng = ChaChaRng::from_string_seed("ristretto-laws");
  const RistrettoPoint p = RistrettoPoint::base() * Scalar::random(rng);
  const RistrettoPoint q = RistrettoPoint::base() * Scalar::random(rng);
  const RistrettoPoint r = RistrettoPoint::base() * Scalar::random(rng);
  EXPECT_EQ(p + q, q + p);
  EXPECT_EQ((p + q) + r, p + (q + r));
  EXPECT_EQ(p + RistrettoPoint::identity(), p);
  EXPECT_EQ(p - p, RistrettoPoint::identity());
  EXPECT_EQ(p + (-p), RistrettoPoint::identity());
}

TEST(Ristretto, ScalarMulHomomorphism) {
  auto rng = ChaChaRng::from_string_seed("ristretto-homo");
  for (int i = 0; i < 5; ++i) {
    const Scalar a = Scalar::random(rng), b = Scalar::random(rng);
    const RistrettoPoint base = RistrettoPoint::base();
    EXPECT_EQ(base * (a + b), base * a + base * b);
    EXPECT_EQ((base * a) * b, base * (a * b));
  }
}

TEST(Ristretto, OrderAnnihilatesBase) {
  // (l - 1) * B + B = identity.
  const Scalar l_minus_1 = Scalar::zero() - Scalar::one();
  EXPECT_EQ(RistrettoPoint::base() * l_minus_1 + RistrettoPoint::base(),
            RistrettoPoint::identity());
}

TEST(Ristretto, HashToGroupDomainSeparation) {
  const Bytes msg = to_bytes("some address");
  const auto p1 = RistrettoPoint::hash_to_group(msg, "ds1");
  const auto p2 = RistrettoPoint::hash_to_group(msg, "ds2");
  EXPECT_FALSE(p1 == p2);
}

TEST(Ristretto, MultiscalarMatchesNaive) {
  auto rng = ChaChaRng::from_string_seed("ristretto-msm");
  std::vector<Scalar> scalars;
  std::vector<RistrettoPoint> points;
  RistrettoPoint expected = RistrettoPoint::identity();
  for (int i = 0; i < 6; ++i) {
    scalars.push_back(Scalar::random(rng));
    points.push_back(RistrettoPoint::base() * Scalar::random(rng));
    expected = expected + points.back() * scalars.back();
  }
  EXPECT_EQ(RistrettoPoint::multiscalar_mul(scalars, points), expected);
}

TEST(Ristretto, MultiscalarSizeMismatchThrows) {
  EXPECT_THROW(RistrettoPoint::multiscalar_mul({Scalar::one()}, {}),
               std::invalid_argument);
}

TEST(Ristretto, OprfBlindUnblindCycle) {
  // The algebra underpinning Fig. 2: H(u)^(r*R) unblinded by 1/r equals
  // H(u)^R.
  auto rng = ChaChaRng::from_string_seed("oprf-cycle");
  const RistrettoPoint h = RistrettoPoint::hash_to_group(to_bytes("addr"), "H");
  const Scalar big_r = Scalar::random(rng);
  const Scalar r = Scalar::random(rng);
  const RistrettoPoint masked = h * r;
  const RistrettoPoint evaluated = masked * big_r;
  const RistrettoPoint unblinded = evaluated * r.invert();
  EXPECT_EQ(unblinded, h * big_r);
}

}  // namespace
}  // namespace cbl::ec
