// Tests for Keccak-256, address formats (Base58Check, EIP-55, Ripple),
// the synthetic feed generator, and the deduplicating store.
#include <gtest/gtest.h>

#include "blocklist/address.h"
#include "blocklist/generator.h"
#include "blocklist/store.h"
#include "common/rng.h"
#include "hash/keccak.h"

namespace cbl::blocklist {
namespace {

using cbl::ChaChaRng;

TEST(Keccak256, EmptyString) {
  const auto d = hash::Keccak256::digest("");
  EXPECT_EQ(to_hex(ByteView(d.data(), d.size())),
            "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470");
}

TEST(Keccak256, Abc) {
  const auto d = hash::Keccak256::digest("abc");
  EXPECT_EQ(to_hex(ByteView(d.data(), d.size())),
            "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45");
}

TEST(Keccak256, MultiBlockStreaming) {
  std::string msg(500, 'q');
  hash::Keccak256 h;
  h.update(msg.substr(0, 137));
  h.update(msg.substr(137));
  EXPECT_EQ(h.finalize(), hash::Keccak256::digest(msg));
}

TEST(Base58, KnownEncoding) {
  // "Hello World!" is a classic base58 vector: 2NEpo7TZRRrLZSi2U.
  EXPECT_EQ(base58_encode(to_bytes("Hello World!"), kBitcoinAlphabet),
            "2NEpo7TZRRrLZSi2U");
}

TEST(Base58, LeadingZeros) {
  const Bytes data = {0x00, 0x00, 0x01};
  const auto encoded = base58_encode(data, kBitcoinAlphabet);
  EXPECT_EQ(encoded.substr(0, 2), "11");  // zero byte -> '1'
  const auto decoded = base58_decode(encoded, kBitcoinAlphabet);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, data);
}

TEST(Base58, RoundTrip) {
  auto rng = ChaChaRng::from_string_seed("base58");
  for (int i = 0; i < 20; ++i) {
    const Bytes data = rng.bytes(1 + rng.uniform(40));
    for (const auto alphabet : {kBitcoinAlphabet, kRippleAlphabet}) {
      const auto decoded = base58_decode(base58_encode(data, alphabet), alphabet);
      ASSERT_TRUE(decoded.has_value());
      EXPECT_EQ(*decoded, data);
    }
  }
}

TEST(Base58, RejectsInvalidCharacters) {
  EXPECT_FALSE(base58_decode("0OIl", kBitcoinAlphabet).has_value());
}

TEST(Address, BitcoinGenesisStyleKnownVector) {
  // All-zero payload with version 0 gives the well-known burn address.
  std::array<std::uint8_t, 20> payload{};
  EXPECT_EQ(make_bitcoin_address(payload),
            "1111111111111111111114oLvT2");
  EXPECT_TRUE(validate_bitcoin_address("1111111111111111111114oLvT2"));
}

TEST(Address, BitcoinChecksumCatchesTypos) {
  auto rng = ChaChaRng::from_string_seed("btc");
  std::string addr = random_address(Chain::kBitcoin, rng);
  EXPECT_TRUE(validate_bitcoin_address(addr));
  // Swap a middle character for another alphabet character.
  const std::size_t i = addr.size() / 2;
  addr[i] = addr[i] == 'a' ? 'b' : 'a';
  EXPECT_FALSE(validate_bitcoin_address(addr));
}

TEST(Address, Eip55KnownVector) {
  // From the EIP-55 specification examples.
  std::array<std::uint8_t, 20> payload{};
  const auto hex = from_hex("5aaeb6053f3e94c9b9a09f33669435e7ef1beaed").value();
  std::copy(hex.begin(), hex.end(), payload.begin());
  EXPECT_EQ(make_ethereum_address(payload),
            "0x5aAeb6053F3E94C9b9A09f33669435E7Ef1BeAed");
}

TEST(Address, Eip55ValidationRejectsWrongCase) {
  EXPECT_TRUE(
      validate_ethereum_address("0x5aAeb6053F3E94C9b9A09f33669435E7Ef1BeAed"));
  EXPECT_FALSE(
      validate_ethereum_address("0x5aaeb6053f3e94c9b9a09f33669435e7ef1beaed"));
  EXPECT_FALSE(validate_ethereum_address("0x5aAeb6053F3E94C9b9A09f3366"));
  EXPECT_FALSE(
      validate_ethereum_address("5aAeb6053F3E94C9b9A09f33669435E7Ef1BeAed00"));
}

TEST(Address, RippleRoundTrip) {
  auto rng = ChaChaRng::from_string_seed("xrp");
  for (int i = 0; i < 5; ++i) {
    const auto addr = random_address(Chain::kRipple, rng);
    EXPECT_TRUE(validate_ripple_address(addr));
    EXPECT_EQ(addr[0], 'r');  // ripple classic addresses start with 'r'
  }
}

TEST(Bech32, Bip173KnownVector) {
  // The canonical BIP-173 P2WPKH example: hash160 of the test pubkey.
  std::array<std::uint8_t, 20> payload{};
  const auto hex = from_hex("751e76e8199196d454941c45d1b3a323f1433bd6").value();
  std::copy(hex.begin(), hex.end(), payload.begin());
  EXPECT_EQ(make_segwit_address(payload),
            "bc1qw508d6qejxtdg4y5r3zarvary0c5xw7kv8f3t4");
  EXPECT_TRUE(
      validate_segwit_address("bc1qw508d6qejxtdg4y5r3zarvary0c5xw7kv8f3t4"));
  // Uppercase form is also valid bech32 (single-case).
  EXPECT_TRUE(
      validate_segwit_address("BC1QW508D6QEJXTDG4Y5R3ZARVARY0C5XW7KV8F3T4"));
}

TEST(Bech32, RejectsCorruption) {
  std::string good = "bc1qw508d6qejxtdg4y5r3zarvary0c5xw7kv8f3t4";
  // Flip one data character.
  std::string bad = good;
  bad[10] = bad[10] == 'q' ? 'p' : 'q';
  EXPECT_FALSE(validate_segwit_address(bad));
  // Mixed case is invalid per BIP-173.
  bad = good;
  bad[3] = 'Q';
  EXPECT_FALSE(validate_segwit_address(bad));
  // Wrong HRP.
  EXPECT_FALSE(validate_segwit_address("tb1qw508d6qejxtdg4y5r3zarvary0c5xw7kxpjzsx"));
  EXPECT_FALSE(validate_segwit_address("not bech32"));
}

TEST(Bech32, EncodeDecodeRoundTrip) {
  auto rng = ChaChaRng::from_string_seed("bech32");
  for (int i = 0; i < 10; ++i) {
    const auto addr = random_address(Chain::kBitcoinSegwit, rng);
    EXPECT_TRUE(validate_segwit_address(addr)) << addr;
    EXPECT_EQ(addr.substr(0, 4), "bc1q");
    const auto decoded = bech32_decode(addr);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->first, "bc");
    EXPECT_EQ(bech32_encode(decoded->first, decoded->second), addr);
  }
}

TEST(Address, DetectChain) {
  auto rng = ChaChaRng::from_string_seed("detect");
  EXPECT_EQ(detect_chain(random_address(Chain::kBitcoin, rng)),
            Chain::kBitcoin);
  EXPECT_EQ(detect_chain(random_address(Chain::kEthereum, rng)),
            Chain::kEthereum);
  EXPECT_EQ(detect_chain(random_address(Chain::kRipple, rng)),
            Chain::kRipple);
  EXPECT_EQ(detect_chain(random_address(Chain::kBitcoinSegwit, rng)),
            Chain::kBitcoinSegwit);
  EXPECT_FALSE(detect_chain("not an address").has_value());
}

TEST(Generator, FeedHasRequestedSize) {
  auto rng = ChaChaRng::from_string_seed("feed");
  FeedConfig cfg;
  cfg.count = 500;
  const auto feed = generate_feed(cfg, rng);
  EXPECT_EQ(feed.size(), 500u);
}

TEST(Generator, FeedAddressesAreFormatValid) {
  auto rng = ChaChaRng::from_string_seed("feed-valid");
  FeedConfig cfg;
  cfg.count = 100;
  for (const auto& e : generate_feed(cfg, rng)) {
    EXPECT_TRUE(detect_chain(e.address).has_value()) << e.address;
    EXPECT_EQ(detect_chain(e.address), e.chain);
  }
}

TEST(Generator, DuplicateRateRoughlyRespected) {
  auto rng = ChaChaRng::from_string_seed("feed-dup");
  FeedConfig cfg;
  cfg.count = 2000;
  cfg.duplicate_rate = 0.2;
  const auto feed = generate_feed(cfg, rng);
  Store store;
  const std::size_t unique = store.merge(feed);
  const double dup_fraction =
      1.0 - static_cast<double>(unique) / static_cast<double>(feed.size());
  EXPECT_GT(dup_fraction, 0.12);
  EXPECT_LT(dup_fraction, 0.28);
}

TEST(Generator, CorpusHitsExactUniqueCount) {
  auto rng = ChaChaRng::from_string_seed("corpus");
  const auto store = generate_corpus(1234, rng);
  EXPECT_EQ(store.size(), 1234u);
}

TEST(Generator, DeterministicUnderSeed) {
  auto rng1 = ChaChaRng::from_string_seed("det");
  auto rng2 = ChaChaRng::from_string_seed("det");
  FeedConfig cfg;
  cfg.count = 50;
  const auto f1 = generate_feed(cfg, rng1);
  const auto f2 = generate_feed(cfg, rng2);
  ASSERT_EQ(f1.size(), f2.size());
  for (std::size_t i = 0; i < f1.size(); ++i) {
    EXPECT_EQ(f1[i].address, f2[i].address);
  }
}

TEST(Store, DedupBumpsReportCount) {
  Store store;
  Entry e;
  e.address = "addr1";
  e.first_reported = 100;
  EXPECT_TRUE(store.add(e));
  e.first_reported = 50;
  EXPECT_FALSE(store.add(e));
  const auto looked = store.lookup("addr1");
  ASSERT_TRUE(looked.has_value());
  EXPECT_EQ(looked->report_count, 2u);
  EXPECT_EQ(looked->first_reported, 50u);  // earliest wins
}

TEST(Store, ContainsAndSize) {
  Store store;
  Entry e;
  e.address = "a";
  store.add(e);
  e.address = "b";
  store.add(e);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_TRUE(store.contains("a"));
  EXPECT_FALSE(store.contains("c"));
}

TEST(Store, ExpireOldEntries) {
  Store store;
  Entry e;
  e.address = "old";
  e.first_reported = 10;
  store.add(e);
  e.address = "new";
  e.first_reported = 100;
  store.add(e);
  EXPECT_EQ(store.expire_older_than(50), 1u);
  EXPECT_FALSE(store.contains("old"));
  EXPECT_TRUE(store.contains("new"));
  // addresses() must not resurrect expired entries.
  EXPECT_EQ(store.addresses().size(), 1u);
}

TEST(Store, BreakdownCoversAllEntries) {
  auto rng = ChaChaRng::from_string_seed("breakdown");
  FeedConfig cfg;
  cfg.count = 300;
  cfg.duplicate_rate = 0;
  Store store;
  store.merge(generate_feed(cfg, rng));
  std::size_t total = 0;
  for (const auto& b : store.breakdown()) total += b.count;
  EXPECT_EQ(total, store.size());
}

}  // namespace
}  // namespace cbl::blocklist
