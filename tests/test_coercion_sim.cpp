// Tests for the coercion simulator: degenerate cases, agreement with the
// hypergeometric model, and the end-to-end ceremony cross-check.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "voting/coercion_sim.h"
#include "vrf/vrf.h"

namespace cbl::voting {
namespace {

using cbl::ChaChaRng;

class CoercionSimTest : public ::testing::Test {
 protected:
  ChaChaRng rng_ = ChaChaRng::from_string_seed("coercion-sim");
};

TEST_F(CoercionSimTest, VrfEvaluateMatchesProvedOutput) {
  const auto keys = vrf::KeyPair::generate(rng_);
  const Bytes input = to_bytes("nu");
  EXPECT_EQ(vrf::evaluate(keys, input),
            vrf::output(vrf::prove(keys, input, rng_)));
}

TEST_F(CoercionSimTest, NoControlNeverCaptures) {
  CoercionSimConfig cfg;
  cfg.pool_size = 10;
  cfg.committee_size = 5;
  cfg.controlled = 0;
  cfg.trials = 30;
  const auto r = simulate_sortition_capture(cfg, rng_);
  EXPECT_EQ(r.captures, 0u);
  EXPECT_DOUBLE_EQ(r.analytical_capture_rate, 0.0);
}

TEST_F(CoercionSimTest, FullControlAlwaysCaptures) {
  CoercionSimConfig cfg;
  cfg.pool_size = 10;
  cfg.committee_size = 5;
  cfg.controlled = 10;
  cfg.trials = 30;
  const auto r = simulate_sortition_capture(cfg, rng_);
  EXPECT_EQ(r.captures, r.trials);
  EXPECT_DOUBLE_EQ(r.analytical_capture_rate, 1.0);
}

TEST_F(CoercionSimTest, BelowMinorityThresholdNeverCaptures) {
  // 2 controlled of pool 6, 5 seats: even if both are seated, 2 < 3.
  CoercionSimConfig cfg;
  cfg.pool_size = 6;
  cfg.committee_size = 5;
  cfg.controlled = 2;
  cfg.trials = 30;
  const auto r = simulate_sortition_capture(cfg, rng_);
  EXPECT_EQ(r.captures, 0u);
}

TEST_F(CoercionSimTest, EmpiricalTracksHypergeometric) {
  CoercionSimConfig cfg;
  cfg.pool_size = 12;
  cfg.committee_size = 5;
  cfg.controlled = 6;
  cfg.trials = 400;
  const auto r = simulate_sortition_capture(cfg, rng_);
  // Binomial(400, p) has stddev < 0.025 around p ~ 0.3..0.4; allow 4
  // sigma.
  EXPECT_NEAR(r.empirical_capture_rate, r.analytical_capture_rate, 0.10);
  EXPECT_GT(r.empirical_capture_rate, 0.05);
  EXPECT_LT(r.empirical_capture_rate, 0.95);
}

TEST_F(CoercionSimTest, DilutionLowersCaptureRate) {
  // Same absolute coercion budget (4 candidates) against a growing pool.
  double prev = 1.1;
  for (const std::size_t pool : {6u, 12u, 24u}) {
    CoercionSimConfig cfg;
    cfg.pool_size = pool;
    cfg.committee_size = 5;
    cfg.controlled = 4;
    cfg.trials = 200;
    const auto r = simulate_sortition_capture(cfg, rng_);
    EXPECT_LT(r.analytical_capture_rate, prev) << "pool=" << pool;
    EXPECT_LE(r.empirical_capture_rate, prev + 0.1) << "pool=" << pool;
    prev = r.analytical_capture_rate;
  }
}

TEST_F(CoercionSimTest, FullCeremonyDegenerateCases) {
  // Deterministic ends of the full protocol: nobody coerced -> never
  // approved; everybody coerced -> always approved.
  CoercionSimConfig cfg;
  cfg.pool_size = 4;
  cfg.committee_size = 3;
  cfg.trials = 3;

  cfg.controlled = 0;
  EXPECT_EQ(simulate_full_ceremony_capture(cfg, rng_).captures, 0u);
  cfg.controlled = 4;
  EXPECT_EQ(simulate_full_ceremony_capture(cfg, rng_).captures, 3u);
}

}  // namespace
}  // namespace cbl::voting
