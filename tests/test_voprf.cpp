// Tests for the verifiable-OPRF upgrade: honest servers prove their
// evaluations, cheating evaluations are caught, proofs survive the wire,
// and key rotation requires re-pinning.
#include <gtest/gtest.h>

#include "blocklist/generator.h"
#include "common/rng.h"
#include "oprf/client.h"
#include "oprf/server.h"
#include "oprf/wire.h"

namespace cbl::oprf {
namespace {

using cbl::ChaChaRng;

class VoprfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto corpus_rng = ChaChaRng::from_string_seed("voprf-corpus");
    corpus_ = blocklist::generate_corpus(80, corpus_rng).addresses();
    server_.emplace(Oracle::fast(), 4, server_rng_);
    server_->setup(corpus_);
    client_.emplace(Oracle::fast(), 4, client_rng_);
    client_->pin_key_commitment(server_->key_commitment());
  }

  ChaChaRng server_rng_ = ChaChaRng::from_string_seed("voprf-server");
  ChaChaRng client_rng_ = ChaChaRng::from_string_seed("voprf-client");
  std::vector<std::string> corpus_;
  std::optional<OprfServer> server_;
  std::optional<OprfClient> client_;
};

TEST_F(VoprfTest, HonestEvaluationVerifies) {
  const auto prepared = client_->prepare(corpus_[0]);
  EXPECT_TRUE(prepared.request.want_evaluation_proof);
  const auto response = server_->handle(prepared.request);
  ASSERT_TRUE(response.evaluation_proof.has_value());
  EXPECT_TRUE(client_->finish(prepared.pending, response).listed);
}

TEST_F(VoprfTest, MissingProofRejected) {
  const auto prepared = client_->prepare(corpus_[0]);
  auto response = server_->handle(prepared.request);
  response.evaluation_proof.reset();
  EXPECT_THROW((void)client_->finish(prepared.pending, response),
               ProtocolError);
}

TEST_F(VoprfTest, CheatingEvaluationRejected) {
  // A malicious server answers with psi under a DIFFERENT key R' — the
  // attack this upgrade catches: without the proof the client would
  // simply compute a wrong (false-negative) verdict.
  const auto prepared = client_->prepare(corpus_[0]);
  auto response = server_->handle(prepared.request);

  auto evil_rng = ChaChaRng::from_string_seed("evil");
  const ec::Scalar evil_key = ec::Scalar::random(evil_rng);
  const auto masked = ec::RistrettoPoint::decode(prepared.request.masked_query);
  response.evaluated = (*masked * evil_key).encode();
  // Forged proof under the evil key does not match the pinned g^R.
  response.evaluation_proof = nizk::DleqProof::prove(
      ec::RistrettoPoint::base(), ec::RistrettoPoint::base() * evil_key,
      *masked, *ec::RistrettoPoint::decode(response.evaluated), evil_key,
      OprfServer::kEvalProofDomain, evil_rng);
  EXPECT_THROW((void)client_->finish(prepared.pending, response),
               ProtocolError);
}

TEST_F(VoprfTest, ProofSurvivesTheWire) {
  const auto prepared = client_->prepare(corpus_[5]);
  const auto parsed_req =
      parse_query_request(serialize(prepared.request));
  ASSERT_TRUE(parsed_req.has_value());
  EXPECT_TRUE(parsed_req->want_evaluation_proof);

  const auto response = server_->handle(*parsed_req);
  const auto parsed_resp = parse_query_response(serialize(response));
  ASSERT_TRUE(parsed_resp.has_value());
  ASSERT_TRUE(parsed_resp->evaluation_proof.has_value());
  EXPECT_TRUE(client_->finish(prepared.pending, *parsed_resp).listed);
}

TEST_F(VoprfTest, KeyRotationRequiresRePinning) {
  server_->rotate_key();
  const auto prepared = client_->prepare(corpus_[0]);
  const auto response = server_->handle(prepared.request);
  // Proof is honest but against the NEW commitment; the stale pin fails.
  EXPECT_THROW((void)client_->finish(prepared.pending, response),
               ProtocolError);
  // Re-pin and everything works again.
  client_->pin_key_commitment(server_->key_commitment());
  const auto prepared2 = client_->prepare(corpus_[0]);
  EXPECT_TRUE(
      client_->finish(prepared2.pending, server_->handle(prepared2.request))
          .listed);
}

TEST_F(VoprfTest, UnpinnedClientsSkipTheProofPath) {
  client_->clear_key_commitment();
  const auto prepared = client_->prepare(corpus_[0]);
  EXPECT_FALSE(prepared.request.want_evaluation_proof);
  const auto response = server_->handle(prepared.request);
  EXPECT_FALSE(response.evaluation_proof.has_value());
  EXPECT_TRUE(client_->finish(prepared.pending, response).listed);
}

TEST_F(VoprfTest, CommitmentIsStablePerEpoch) {
  const auto c1 = server_->key_commitment();
  const auto prepared = client_->prepare(corpus_[1]);
  (void)server_->handle(prepared.request);
  EXPECT_TRUE(server_->key_commitment() == c1);
  server_->rotate_key();
  EXPECT_FALSE(server_->key_commitment() == c1);
}

}  // namespace
}  // namespace cbl::oprf
