// dudect-style statistical timing test for ct_equal (Reparaz/Balasch/
// Verbauwhede "dude, is my code constant time?"): measure the runtime of
// the primitive on two input classes — equal buffers vs buffers that
// differ in the first byte — and apply Welch's t-test. A short-circuiting
// comparison exits after one byte for class B and lights the statistic up;
// a constant-time one keeps |t| small.
//
// Timing measurements are inherently noisy under CI load, so this test is
// SLOW-gated: it runs only when CBL_RUN_SLOW is set in the environment and
// skips (not passes) otherwise, keeping it out of the tier-1 signal.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/ct.h"
#include "common/rng.h"

namespace cbl {
namespace {

constexpr std::size_t kBufLen = 256;
constexpr std::size_t kSamplesPerClass = 20000;
constexpr int kInnerReps = 32;  // amortize clock granularity

volatile std::uint8_t g_sink;

double now_ns() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Measures one sample: kInnerReps back-to-back calls, wall time in ns.
template <typename F>
double sample(F&& op) {
  const double t0 = now_ns();
  for (int r = 0; r < kInnerReps; ++r) op();
  return now_ns() - t0;
}

struct Welch {
  double t = 0.0;
  std::size_t n = 0;
};

// Welch's t statistic over the two sample sets, after discarding the
// slowest decile of each class (interrupt/migration outliers — the
// standard dudect pre-processing).
Welch welch_t(std::vector<double> a, std::vector<double> b) {
  auto trim = [](std::vector<double>& v) {
    std::sort(v.begin(), v.end());
    v.resize(v.size() - v.size() / 10);
  };
  trim(a);
  trim(b);

  auto mean_var = [](const std::vector<double>& v, double& mean, double& var) {
    mean = 0.0;
    for (double x : v) mean += x;
    mean /= static_cast<double>(v.size());
    var = 0.0;
    for (double x : v) var += (x - mean) * (x - mean);
    var /= static_cast<double>(v.size() - 1);
  };

  double ma, va, mb, vb;
  mean_var(a, ma, va);
  mean_var(b, mb, vb);
  const double denom = std::sqrt(va / static_cast<double>(a.size()) +
                                 vb / static_cast<double>(b.size()));
  Welch w;
  w.n = a.size() + b.size();
  w.t = denom > 0.0 ? (ma - mb) / denom : 0.0;
  return w;
}

// Runs the two-class experiment for an arbitrary comparison function.
// Classes are interleaved in random order so slow drift (thermal, freq
// scaling) hits both equally.
template <typename Cmp>
Welch measure(Cmp&& cmp) {
  auto rng = ChaChaRng::from_string_seed("test_ct_timing");
  std::uint8_t base[kBufLen];
  rng.fill(base, sizeof base);

  std::uint8_t equal_buf[kBufLen];
  std::uint8_t diff_buf[kBufLen];
  std::memcpy(equal_buf, base, kBufLen);
  std::memcpy(diff_buf, base, kBufLen);
  diff_buf[0] ^= 1;  // worst case for an early-exit compare

  std::vector<double> class_a, class_b;
  class_a.reserve(kSamplesPerClass);
  class_b.reserve(kSamplesPerClass);

  // Warmup.
  for (int i = 0; i < 1000; ++i) {
    g_sink = g_sink ^ static_cast<std::uint8_t>(cmp(base, equal_buf, kBufLen));
  }

  while (class_a.size() < kSamplesPerClass ||
         class_b.size() < kSamplesPerClass) {
    const bool pick_a = (rng.next_u64() & 1) != 0;
    const std::uint8_t* other = pick_a ? equal_buf : diff_buf;
    const double ns = sample([&] {
      g_sink = g_sink ^ static_cast<std::uint8_t>(cmp(base, other, kBufLen));
    });
    auto& bucket = pick_a ? class_a : class_b;
    if (bucket.size() < kSamplesPerClass) bucket.push_back(ns);
  }
  return welch_t(std::move(class_a), std::move(class_b));
}

TEST(CtTiming, CtEqualShowsNoClassDistinction) {
  if (std::getenv("CBL_RUN_SLOW") == nullptr) {
    GTEST_SKIP() << "timing test is slow/noisy; set CBL_RUN_SLOW=1 to run";
  }

  const Welch ct = measure([](const std::uint8_t* a, const std::uint8_t* b,
                              std::size_t n) { return ct_equal(a, b, n); });
  // Positive control, reported but not asserted (its magnitude depends on
  // how aggressively libc vectorizes): memcmp exits on the first byte for
  // class B, so |t| should dwarf the ct_equal statistic.
  const Welch leaky = measure([](const std::uint8_t* a, const std::uint8_t* b,
                                 std::size_t n) {
    return std::memcmp(a, b, n) == 0;  // ct:ok — deliberate leak (control)
  });
  std::printf("ct_equal |t| = %.2f over %zu samples; memcmp control |t| = %.2f\n",
              std::fabs(ct.t), ct.n, std::fabs(leaky.t));

  // dudect's decision threshold is |t| > 4.5; allow generous headroom for
  // shared-runner noise while still catching an early-exit implementation,
  // which lands in the hundreds for 256-byte buffers.
  EXPECT_LT(std::fabs(ct.t), 20.0);
}

}  // namespace
}  // namespace cbl
