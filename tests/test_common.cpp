// Unit tests for byte utilities and the ChaCha20-based DRBG.
#include <gtest/gtest.h>

#include <set>

#include "common/bytes.h"
#include "common/rng.h"

namespace cbl {
namespace {

TEST(Bytes, HexRoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff, 0x7f};
  EXPECT_EQ(to_hex(data), "0001abff7f");
  const auto back = from_hex("0001abff7f");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, data);
}

TEST(Bytes, HexAcceptsUppercase) {
  const auto v = from_hex("DEADBEEF");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(to_hex(*v), "deadbeef");
}

TEST(Bytes, HexRejectsOddLength) {
  EXPECT_FALSE(from_hex("abc").has_value());
}

TEST(Bytes, HexRejectsNonHex) {
  EXPECT_FALSE(from_hex("zz").has_value());
  EXPECT_FALSE(from_hex("0g").has_value());
}

TEST(Bytes, EmptyHex) {
  EXPECT_EQ(to_hex({}), "");
  const auto v = from_hex("");
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(v->empty());
}

TEST(Bytes, ConstantTimeEq) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 3};
  const Bytes c = {1, 2, 4};
  const Bytes d = {1, 2};
  EXPECT_TRUE(constant_time_eq(a, b));
  EXPECT_FALSE(constant_time_eq(a, c));
  EXPECT_FALSE(constant_time_eq(a, d));
}

TEST(Bytes, StringRoundTrip) {
  const std::string s = "hello";
  EXPECT_EQ(to_string(to_bytes(s)), s);
}

TEST(Bytes, EndianHelpers) {
  std::uint8_t buf[8];
  store_le64(buf, 0x0102030405060708ULL);
  EXPECT_EQ(buf[0], 0x08);
  EXPECT_EQ(load_le64(buf), 0x0102030405060708ULL);
  store_be64(buf, 0x0102030405060708ULL);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(load_be64(buf), 0x0102030405060708ULL);
  store_le32(buf, 0xdeadbeef);
  EXPECT_EQ(load_le32(buf), 0xdeadbeefu);
  store_be32(buf, 0xdeadbeef);
  EXPECT_EQ(load_be32(buf), 0xdeadbeefu);
}

TEST(ChaCha20, Rfc8439BlockVector) {
  // RFC 8439 section 2.3.2 test vector.
  std::array<std::uint8_t, 32> key;
  for (int i = 0; i < 32; ++i) key[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  std::array<std::uint8_t, 12> nonce = {0x00, 0x00, 0x00, 0x09, 0x00, 0x00,
                                        0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  std::uint8_t out[64];
  chacha20_block(key, 1, nonce, out);
  const auto expected = from_hex(
      "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
      "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
  ASSERT_TRUE(expected.has_value());
  EXPECT_EQ(Bytes(out, out + 64), *expected);
}

TEST(ChaChaRng, DeterministicUnderSeed) {
  auto rng1 = ChaChaRng::from_string_seed("seed");
  auto rng2 = ChaChaRng::from_string_seed("seed");
  EXPECT_EQ(rng1.bytes(100), rng2.bytes(100));
}

TEST(ChaChaRng, DifferentSeedsDiffer) {
  auto rng1 = ChaChaRng::from_string_seed("seed-a");
  auto rng2 = ChaChaRng::from_string_seed("seed-b");
  EXPECT_NE(rng1.bytes(32), rng2.bytes(32));
}

TEST(ChaChaRng, UnalignedReadsMatchStream) {
  auto rng1 = ChaChaRng::from_string_seed("stream");
  auto rng2 = ChaChaRng::from_string_seed("stream");
  Bytes a = rng1.bytes(130);
  Bytes b = rng2.bytes(7);
  Bytes b2 = rng2.bytes(123);
  b.insert(b.end(), b2.begin(), b2.end());
  EXPECT_EQ(a, b);
}

TEST(ChaChaRng, UniformStaysInBound) {
  auto rng = ChaChaRng::from_string_seed("uniform");
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform(17);
    EXPECT_LT(v, 17u);
    seen.insert(v);
  }
  // With 1000 draws all 17 residues should appear.
  EXPECT_EQ(seen.size(), 17u);
}

}  // namespace
}  // namespace cbl
