// Tests for the capacity model and discrete-event simulator behind
// Fig. 6: closed-form sanity, agreement between model and simulation,
// and the CPU-bound vs bandwidth-bound crossover.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include "common/rng.h"
#include "netsim/capacity.h"
#include "netsim/desim.h"

namespace cbl::netsim {
namespace {

using cbl::ChaChaRng;

TEST(Capacity, ClosedFormHandChecked) {
  ServerProfile server;
  server.cpu_cores = 8;
  server.bandwidth_bits_per_sec = 1e9;
  WorkloadProfile w;
  w.online_fraction = 0.01;
  w.queries_per_client_per_sec = 1.0;
  w.cpu_us_per_online_query = 100.0;  // 1e-4 core-sec
  w.response_bytes = 1000;
  w.request_bytes = 0;

  const auto est = estimate_capacity(server, w);
  // CPU: 8 / (0.01 * 1e-4) = 8e6 clients.
  EXPECT_NEAR(est.cpu_bound_clients, 8e6, 1);
  // BW: 1e9 / (0.01 * 8000) = 1.25e7 clients.
  EXPECT_NEAR(est.bandwidth_bound_clients, 1.25e7, 1);
  EXPECT_TRUE(est.cpu_limited);
  EXPECT_NEAR(est.max_concurrent_clients, 8e6, 1);
}

TEST(Capacity, MonotoneInOnlineFraction) {
  ServerProfile server;
  WorkloadProfile w;
  double prev = std::numeric_limits<double>::infinity();
  for (double f : {0.0025, 0.005, 0.01, 0.02, 0.04}) {
    w.online_fraction = f;
    const double cap = estimate_capacity(server, w).max_concurrent_clients;
    EXPECT_LT(cap, prev) << "f=" << f;
    prev = cap;
  }
}

TEST(Capacity, ZeroOnlineFractionIsUnbounded) {
  ServerProfile server;
  WorkloadProfile w;
  w.online_fraction = 0;
  EXPECT_TRUE(std::isinf(estimate_capacity(server, w).max_concurrent_clients));
}

TEST(Capacity, LargeResponsesAreBandwidthBound) {
  // The paper's stronger-privacy setting: response grows ~16x, flipping
  // the binding resource from CPU to bandwidth.
  ServerProfile server;
  server.cpu_cores = 8;
  server.bandwidth_bits_per_sec = 1e9;
  WorkloadProfile small, large;
  small.cpu_us_per_online_query = large.cpu_us_per_online_query = 150;
  small.response_bytes = 130;     // k ~ 4 entries
  large.response_bytes = 31'000;  // k ~ 977 entries

  EXPECT_TRUE(estimate_capacity(server, small).cpu_limited);
  EXPECT_FALSE(estimate_capacity(server, large).cpu_limited);
  EXPECT_GT(estimate_capacity(server, small).max_concurrent_clients,
            estimate_capacity(server, large).max_concurrent_clients);
}

TEST(Desim, StableWellBelowCapacity) {
  auto rng = ChaChaRng::from_string_seed("desim-stable");
  ServerProfile server;
  server.cpu_cores = 2;
  server.bandwidth_bits_per_sec = 1e8;
  WorkloadProfile w;
  w.online_fraction = 0.01;
  w.cpu_us_per_online_query = 200;
  w.response_bytes = 2000;
  SimConfig cfg;
  cfg.duration_sec = 10;

  const auto est = estimate_capacity(server, w);
  const auto result = simulate(
      server, w, static_cast<std::uint64_t>(est.max_concurrent_clients / 4),
      cfg, rng);
  EXPECT_TRUE(result.stable);
  EXPECT_LT(result.cpu_utilization, 0.6);
  EXPECT_GT(result.online_queries, 0u);
  EXPECT_GT(result.local_queries, result.online_queries);
}

TEST(Desim, UnstableWellAboveCapacity) {
  auto rng = ChaChaRng::from_string_seed("desim-unstable");
  ServerProfile server;
  server.cpu_cores = 2;
  server.bandwidth_bits_per_sec = 1e8;
  WorkloadProfile w;
  w.online_fraction = 0.01;
  w.cpu_us_per_online_query = 200;
  w.response_bytes = 2000;
  SimConfig cfg;
  cfg.duration_sec = 10;

  const auto est = estimate_capacity(server, w);
  const auto result = simulate(
      server, w, static_cast<std::uint64_t>(est.max_concurrent_clients * 4),
      cfg, rng);
  EXPECT_FALSE(result.stable);
}

TEST(Desim, BinarySearchAgreesWithClosedForm) {
  auto rng = ChaChaRng::from_string_seed("desim-knee");
  ServerProfile server;
  server.cpu_cores = 1;
  server.bandwidth_bits_per_sec = 1e8;
  WorkloadProfile w;
  w.online_fraction = 0.02;
  w.cpu_us_per_online_query = 500;
  w.response_bytes = 4000;
  SimConfig cfg;
  cfg.duration_sec = 8;

  const auto est = estimate_capacity(server, w);
  const auto knee = find_max_stable_clients(server, w, cfg, rng);
  // The simulated knee should be within ~35% of the closed form (the sim
  // tolerates transient backlog, so it can sit slightly above).
  EXPECT_GT(static_cast<double>(knee), est.max_concurrent_clients * 0.65);
  EXPECT_LT(static_cast<double>(knee), est.max_concurrent_clients * 1.35);
}

}  // namespace
}  // namespace cbl::netsim
