// Tests for the simulated transport and the remote service node/client:
// end-to-end queries over serialized frames, parameter discovery,
// retries under loss, rate-limit surfacing, and hostile-node behaviour.
#include <gtest/gtest.h>

#include "blocklist/generator.h"
#include "common/rng.h"
#include "net/service_node.h"

namespace cbl::net {
namespace {

using cbl::ChaChaRng;

class NetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    corpus_ = blocklist::generate_corpus(150, corpus_rng_).addresses();
    server_.emplace(oprf::Oracle::fast(), 5, server_rng_);
    server_->setup(corpus_);
  }

  Transport make_transport(double drop_rate = 0.0) {
    TransportConfig cfg;
    cfg.latency_ms_min = 1;
    cfg.latency_ms_max = 10;
    cfg.drop_rate = drop_rate;
    return Transport(cfg, transport_rng_);
  }

  ChaChaRng corpus_rng_ = ChaChaRng::from_string_seed("net-corpus");
  ChaChaRng server_rng_ = ChaChaRng::from_string_seed("net-server");
  ChaChaRng client_rng_ = ChaChaRng::from_string_seed("net-client");
  ChaChaRng transport_rng_ = ChaChaRng::from_string_seed("net-transport");
  std::vector<std::string> corpus_;
  std::optional<oprf::OprfServer> server_;
};

TEST_F(NetTest, EndToEndQueryOverTheWire) {
  auto transport = make_transport();
  BlocklistServiceNode node(transport, "scamdb", *server_,
                            oprf::Oracle::fast());
  RemoteBlocklistClient client(transport, "scamdb", client_rng_);

  EXPECT_EQ(client.info().lambda, 5u);
  EXPECT_EQ(client.info().entry_count, corpus_.size());

  auto outcome = client.query(corpus_[3]);
  EXPECT_EQ(outcome.kind, RemoteBlocklistClient::QueryOutcome::Kind::kOk);
  EXPECT_TRUE(outcome.listed);
  EXPECT_GT(outcome.rtt_ms, 0);

  auto clean = ChaChaRng::from_string_seed("net-clean");
  outcome = client.query(
      blocklist::random_address(blocklist::Chain::kBitcoin, clean));
  EXPECT_EQ(outcome.kind, RemoteBlocklistClient::QueryOutcome::Kind::kOk);
  EXPECT_FALSE(outcome.listed);
}

TEST_F(NetTest, PrefixListSyncEnablesLocalResolution) {
  auto transport = make_transport();
  oprf::OprfServer sparse(oprf::Oracle::fast(), 18, server_rng_);
  std::vector<std::string> small(corpus_.begin(), corpus_.begin() + 30);
  sparse.setup(small);
  BlocklistServiceNode node(transport, "scamdb", sparse, oprf::Oracle::fast());
  RemoteBlocklistClient client(transport, "scamdb", client_rng_);
  ASSERT_TRUE(client.sync_prefix_list());

  auto clean = ChaChaRng::from_string_seed("net-clean2");
  int local = 0;
  for (int i = 0; i < 30; ++i) {
    const auto outcome = client.query(
        blocklist::random_address(blocklist::Chain::kEthereum, clean));
    EXPECT_FALSE(outcome.listed);
    if (outcome.resolved_locally) ++local;
  }
  EXPECT_GE(local, 28);  // nearly all negatives never touch the wire
}

TEST_F(NetTest, RetriesRideOutPacketLoss) {
  auto transport = make_transport(/*drop_rate=*/0.4);
  BlocklistServiceNode node(transport, "scamdb", *server_,
                            oprf::Oracle::fast());
  RemoteClientConfig cfg;
  cfg.max_retries = 10;
  RemoteBlocklistClient client(transport, "scamdb", client_rng_, cfg);

  int ok = 0;
  for (int i = 0; i < 20; ++i) {
    const auto outcome = client.query(corpus_[static_cast<std::size_t>(i)]);
    if (outcome.kind == RemoteBlocklistClient::QueryOutcome::Kind::kOk) {
      EXPECT_TRUE(outcome.listed);
      ++ok;
    }
  }
  // With 10 retries at 40% loss, effectively everything gets through.
  EXPECT_GE(ok, 19);
  EXPECT_GT(transport.stats().drops, 0u);
}

TEST_F(NetTest, UnreachableEndpointFailsConstruction) {
  auto transport = make_transport();
  EXPECT_THROW(RemoteBlocklistClient(transport, "nope", client_rng_),
               ProtocolError);
}

TEST_F(NetTest, ZeroRetriesSurfacesUnreachable) {
  auto transport = make_transport(/*drop_rate=*/1.0);
  BlocklistServiceNode node(transport, "scamdb", *server_,
                            oprf::Oracle::fast());
  RemoteClientConfig cfg;
  cfg.max_retries = 2;
  EXPECT_THROW(RemoteBlocklistClient(transport, "scamdb", client_rng_, cfg),
               ProtocolError);
}

TEST_F(NetTest, RateLimitSurfacesDistinctly) {
  auto transport = make_transport();
  server_->enable_rate_limiting(1);
  server_->authorize_key("k");
  BlocklistServiceNode node(transport, "scamdb", *server_,
                            oprf::Oracle::fast());
  RemoteBlocklistClient client(transport, "scamdb", client_rng_);
  client.set_api_key("k");

  auto first = client.query(corpus_[0]);
  EXPECT_EQ(first.kind, RemoteBlocklistClient::QueryOutcome::Kind::kOk);
  auto second = client.query(corpus_[1]);
  EXPECT_EQ(second.kind,
            RemoteBlocklistClient::QueryOutcome::Kind::kRateLimited);
}

TEST_F(NetTest, HostileNodeGarbageIsMalformedNotCrash) {
  auto transport = make_transport();
  transport.register_endpoint(
      "evil", [](ByteView frame) -> std::optional<Bytes> {
        if (!frame.empty() &&
            frame[0] == static_cast<std::uint8_t>(Method::kInfo)) {
          // A plausible hand-built info frame (lambda=4, fast oracle,
          // epoch=1, 10 entries) so the client constructs...
          Bytes out = {0};                              // kOk
          const Bytes info = {4, 0, 0, 0,               // lambda
                              0,                        // oracle kind
                              0, 0, 0, 0, 0, 0, 0, 0,   // argon2 params
                              1, 0, 0, 0, 0, 0, 0, 0,   // epoch
                              10, 0, 0, 0, 0, 0, 0, 0}; // entries
          append(out, info);
          return out;
        }
        // ...then answers queries with garbage.
        return Bytes{0, 0xde, 0xad, 0xbe, 0xef};
      });
  RemoteBlocklistClient client(transport, "evil", client_rng_);
  const auto outcome = client.query(corpus_[0]);
  EXPECT_EQ(outcome.kind, RemoteBlocklistClient::QueryOutcome::Kind::kMalformed);
}

TEST_F(NetTest, MalformedFramesRejectedByNode) {
  auto transport = make_transport();
  BlocklistServiceNode node(transport, "scamdb", *server_,
                            oprf::Oracle::fast());
  // Empty frame.
  auto result = transport.call("scamdb", {});
  ASSERT_TRUE(result.delivered);
  ASSERT_FALSE(result.response.empty());
  EXPECT_EQ(result.response[0], static_cast<std::uint8_t>(Status::kBadRequest));
  // Unknown method tag.
  const Bytes bogus = {0x77, 1, 2, 3};
  result = transport.call("scamdb", bogus);
  ASSERT_TRUE(result.delivered);
  EXPECT_EQ(result.response[0], static_cast<std::uint8_t>(Status::kBadRequest));
  // Query tag with truncated body.
  const Bytes truncated = {static_cast<std::uint8_t>(Method::kQuery), 1, 2};
  result = transport.call("scamdb", truncated);
  ASSERT_TRUE(result.delivered);
  EXPECT_EQ(result.response[0], static_cast<std::uint8_t>(Status::kBadRequest));
}

// Regression: the node used to accept bodyless methods with trailing
// garbage. parse_request_frame now requires the frame to map onto the
// protocol exactly, so a kPrefixList frame with extra bytes is rejected.
TEST_F(NetTest, PrefixListRejectsTrailingBody) {
  auto transport = make_transport();
  BlocklistServiceNode node(transport, "scamdb", *server_,
                            oprf::Oracle::fast());
  const Bytes exact = {static_cast<std::uint8_t>(Method::kPrefixList)};
  auto result = transport.call("scamdb", exact);
  ASSERT_TRUE(result.delivered);
  EXPECT_EQ(result.response[0], static_cast<std::uint8_t>(Status::kOk));

  const Bytes trailing = {static_cast<std::uint8_t>(Method::kPrefixList),
                          0xde, 0xad};
  result = transport.call("scamdb", trailing);
  ASSERT_TRUE(result.delivered);
  EXPECT_EQ(result.response[0],
            static_cast<std::uint8_t>(Status::kBadRequest));
}

// Regression: same trailing-byte acceptance existed for kInfo frames.
TEST_F(NetTest, InfoRejectsTrailingBody) {
  auto transport = make_transport();
  BlocklistServiceNode node(transport, "scamdb", *server_,
                            oprf::Oracle::fast());
  const Bytes exact = {static_cast<std::uint8_t>(Method::kInfo)};
  auto result = transport.call("scamdb", exact);
  ASSERT_TRUE(result.delivered);
  EXPECT_EQ(result.response[0], static_cast<std::uint8_t>(Status::kOk));

  const Bytes trailing = {static_cast<std::uint8_t>(Method::kInfo), 0x00};
  result = transport.call("scamdb", trailing);
  ASSERT_TRUE(result.delivered);
  EXPECT_EQ(result.response[0],
            static_cast<std::uint8_t>(Status::kBadRequest));
}

TEST_F(NetTest, FrameParsersAreTotalOnHostileInput) {
  // Empty frames carry no tag at all.
  EXPECT_FALSE(parse_request_frame({}).has_value());
  EXPECT_FALSE(parse_response_frame({}).has_value());
  // Unknown method / status tags.
  const Bytes bad_method = {0x77, 1, 2};
  EXPECT_FALSE(parse_request_frame(bad_method).has_value());
  const Bytes bad_status = {0x77, 1, 2};
  EXPECT_FALSE(parse_response_frame(bad_status).has_value());
  // A query frame's body aliases the input without the tag byte.
  const Bytes query = {static_cast<std::uint8_t>(Method::kQuery), 9, 8, 7};
  const auto parsed = parse_request_frame(query);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->method, Method::kQuery);
  ASSERT_EQ(parsed->body.size(), 3u);
  EXPECT_EQ(parsed->body[0], 9);
  // Status-only responses (empty body) are well-formed.
  const Bytes rate_limited = {static_cast<std::uint8_t>(Status::kRateLimited)};
  const auto response = parse_response_frame(rate_limited);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, Status::kRateLimited);
  EXPECT_TRUE(response->body.empty());
}

// A server under the attacker's control answers the info handshake
// honestly, then serves the configured hostile payload for everything
// else — the client must classify it, never crash or propagate.
class HostileServer {
 public:
  HostileServer(Transport& transport, std::string endpoint) {
    transport.register_endpoint(
        std::move(endpoint), [this](ByteView frame) -> std::optional<Bytes> {
          const auto request = parse_request_frame(frame);
          if (request && request->method == Method::kInfo) {
            ServiceInfo info;
            info.lambda = 5;
            info.entry_count = 10;
            Bytes out = {static_cast<std::uint8_t>(Status::kOk)};
            append(out, encode_info(info));
            return out;
          }
          return payload_;
        });
  }

  void set_payload(Bytes payload) { payload_ = std::move(payload); }

 private:
  Bytes payload_;
};

TEST_F(NetTest, ClientClassifiesTruncatedResponseFrameAsMalformed) {
  auto transport = make_transport();
  HostileServer hostile(transport, "evil");
  RemoteBlocklistClient client(transport, "evil", client_rng_);

  // Entirely empty response frame — not even a status byte.
  hostile.set_payload({});
  auto outcome = client.query(corpus_[0]);
  EXPECT_EQ(outcome.kind,
            RemoteBlocklistClient::QueryOutcome::Kind::kMalformed);

  // Status kOk but a truncated QueryResponse body.
  hostile.set_payload({static_cast<std::uint8_t>(Status::kOk), 1, 2, 3});
  outcome = client.query(corpus_[0]);
  EXPECT_EQ(outcome.kind,
            RemoteBlocklistClient::QueryOutcome::Kind::kMalformed);
}

TEST_F(NetTest, ClientClassifiesUnknownStatusByteAsMalformed) {
  auto transport = make_transport();
  HostileServer hostile(transport, "evil");
  RemoteBlocklistClient client(transport, "evil", client_rng_);
  hostile.set_payload({0x77, 0xaa, 0xbb});
  const auto outcome = client.query(corpus_[0]);
  EXPECT_EQ(outcome.kind,
            RemoteBlocklistClient::QueryOutcome::Kind::kMalformed);
}

TEST_F(NetTest, ClientRejectsOversizedLengthFieldsWithoutAllocating) {
  auto transport = make_transport();
  HostileServer hostile(transport, "evil");
  RemoteBlocklistClient client(transport, "evil", client_rng_);

  // A QueryResponse whose bucket-count field claims 2^32-1 entries with
  // no bytes behind it: the parser must refuse before reserving.
  Bytes bomb = {static_cast<std::uint8_t>(Status::kOk)};
  bomb.insert(bomb.end(), 32, 0x00);              // "evaluated" encoding
  bomb.insert(bomb.end(), 8, 0x00);               // epoch
  bomb.push_back(0);                              // bucket_omitted = false
  bomb.insert(bomb.end(), {0xff, 0xff, 0xff, 0xff});  // bucket count
  hostile.set_payload(bomb);
  const auto outcome = client.query(corpus_[0]);
  EXPECT_EQ(outcome.kind,
            RemoteBlocklistClient::QueryOutcome::Kind::kMalformed);

  // Same attack against the prefix-list download path.
  Bytes list_bomb = {static_cast<std::uint8_t>(Status::kOk)};
  list_bomb.insert(list_bomb.end(), {0xff, 0xff, 0xff, 0x0f});
  hostile.set_payload(list_bomb);
  EXPECT_FALSE(client.sync_prefix_list());
}

TEST_F(NetTest, SyncPrefixListRejectsTrailingJunk) {
  auto transport = make_transport();
  HostileServer hostile(transport, "evil");
  RemoteBlocklistClient client(transport, "evil", client_rng_);
  // A well-formed (empty) prefix list followed by trailing junk must be
  // rejected whole — parsers accept no trailing bytes.
  Bytes payload = {static_cast<std::uint8_t>(Status::kOk), 0, 0, 0, 0, 0xcc};
  hostile.set_payload(std::move(payload));
  EXPECT_FALSE(client.sync_prefix_list());
}

TEST_F(NetTest, TransportAccountsBytes) {
  auto transport = make_transport();
  BlocklistServiceNode node(transport, "scamdb", *server_,
                            oprf::Oracle::fast());
  RemoteBlocklistClient client(transport, "scamdb", client_rng_);
  (void)client.query(corpus_[0]);
  EXPECT_GT(transport.stats().bytes_sent, 0u);
  EXPECT_GT(transport.stats().bytes_received, transport.stats().bytes_sent);
  EXPECT_GE(transport.stats().calls, 2u);  // info + query
}

TEST_F(NetTest, TransportBreaksStatsDownPerEndpoint) {
  auto transport = make_transport();
  BlocklistServiceNode node_a(transport, "provider-a", *server_,
                              oprf::Oracle::fast());
  BlocklistServiceNode node_b(transport, "provider-b", *server_,
                              oprf::Oracle::fast());
  RemoteBlocklistClient client_a(transport, "provider-a", client_rng_);
  RemoteBlocklistClient client_b(transport, "provider-b", client_rng_);
  (void)client_a.query(corpus_[0]);
  (void)client_a.query(corpus_[1]);
  (void)client_b.query(corpus_[2]);

  const auto a = transport.endpoint_stats("provider-a");
  const auto b = transport.endpoint_stats("provider-b");
  EXPECT_GT(a.calls, b.calls);  // two queries vs one, plus discovery each
  EXPECT_GT(a.bytes_sent, 0u);
  EXPECT_GT(b.bytes_sent, 0u);
  // Per-endpoint stats partition the global aggregate exactly.
  EXPECT_EQ(a.calls + b.calls, transport.stats().calls);
  EXPECT_EQ(a.bytes_sent + b.bytes_sent, transport.stats().bytes_sent);
  EXPECT_EQ(a.bytes_received + b.bytes_received,
            transport.stats().bytes_received);
  EXPECT_EQ(transport.stats_by_endpoint().size(), 2u);
  // Unknown endpoints report zero (and are attributed if actually called).
  EXPECT_EQ(transport.endpoint_stats("nowhere").calls, 0u);
  (void)transport.call("nowhere", Bytes{1});
  EXPECT_EQ(transport.endpoint_stats("nowhere").calls, 1u);
  EXPECT_EQ(transport.endpoint_stats("nowhere").drops, 1u);
}

TEST_F(NetTest, TransportResetStatsZeroesAllAccounting) {
  auto transport = make_transport();
  BlocklistServiceNode node(transport, "scamdb", *server_,
                            oprf::Oracle::fast());
  RemoteBlocklistClient client(transport, "scamdb", client_rng_);
  (void)client.query(corpus_[0]);
  ASSERT_GT(transport.stats().calls, 0u);
  transport.reset_stats();
  EXPECT_EQ(transport.stats().calls, 0u);
  EXPECT_EQ(transport.stats().bytes_sent, 0u);
  EXPECT_EQ(transport.endpoint_stats("scamdb").calls, 0u);
  // Accounting resumes cleanly after the reset.
  (void)client.query(corpus_[1]);
  EXPECT_EQ(transport.endpoint_stats("scamdb").calls,
            transport.stats().calls);
}

TEST_F(NetTest, SlowOracleParametersPropagate) {
  hash::Argon2Params params;
  params.memory_kib = 64;
  params.time_cost = 1;
  const auto oracle = oprf::Oracle::slow(params);
  oprf::OprfServer slow_server(oracle, 3, server_rng_);
  std::vector<std::string> small(corpus_.begin(), corpus_.begin() + 20);
  slow_server.setup(small);

  auto transport = make_transport();
  BlocklistServiceNode node(transport, "slowdb", slow_server, oracle);
  RemoteBlocklistClient client(transport, "slowdb", client_rng_);
  EXPECT_EQ(client.info().oracle_kind, 1);
  EXPECT_EQ(client.info().argon2_memory_kib, 64u);
  // The client mirrored the slow oracle, so membership works end to end.
  const auto outcome = client.query(small[7]);
  EXPECT_EQ(outcome.kind, RemoteBlocklistClient::QueryOutcome::Kind::kOk);
  EXPECT_TRUE(outcome.listed);
}

}  // namespace
}  // namespace cbl::net
