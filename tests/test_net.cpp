// Tests for the simulated transport and the remote service node/client:
// end-to-end queries over serialized frames, parameter discovery,
// retries under loss, rate-limit surfacing, and hostile-node behaviour.
#include <gtest/gtest.h>

#include "blocklist/generator.h"
#include "common/rng.h"
#include "net/resilient_client.h"
#include "net/service_node.h"
#include "obs/clock.h"

namespace cbl::net {
namespace {

using cbl::ChaChaRng;

class NetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    corpus_ = blocklist::generate_corpus(150, corpus_rng_).addresses();
    server_.emplace(oprf::Oracle::fast(), 5, server_rng_);
    server_->setup(corpus_);
  }

  Transport make_transport(double drop_rate = 0.0) {
    TransportConfig cfg;
    cfg.latency_ms_min = 1;
    cfg.latency_ms_max = 10;
    cfg.drop_rate = drop_rate;
    return Transport(cfg, transport_rng_);
  }

  ChaChaRng corpus_rng_ = ChaChaRng::from_string_seed("net-corpus");
  ChaChaRng server_rng_ = ChaChaRng::from_string_seed("net-server");
  ChaChaRng client_rng_ = ChaChaRng::from_string_seed("net-client");
  ChaChaRng transport_rng_ = ChaChaRng::from_string_seed("net-transport");
  std::vector<std::string> corpus_;
  std::optional<oprf::OprfServer> server_;
};

TEST_F(NetTest, EndToEndQueryOverTheWire) {
  auto transport = make_transport();
  BlocklistServiceNode node(transport, "scamdb", *server_,
                            oprf::Oracle::fast());
  RemoteBlocklistClient client(transport, "scamdb", client_rng_);

  EXPECT_EQ(client.info().lambda, 5u);
  EXPECT_EQ(client.info().entry_count, corpus_.size());

  auto outcome = client.query(corpus_[3]);
  EXPECT_EQ(outcome.kind, RemoteBlocklistClient::QueryOutcome::Kind::kOk);
  EXPECT_TRUE(outcome.listed);
  EXPECT_GT(outcome.rtt_ms, 0);

  auto clean = ChaChaRng::from_string_seed("net-clean");
  outcome = client.query(
      blocklist::random_address(blocklist::Chain::kBitcoin, clean));
  EXPECT_EQ(outcome.kind, RemoteBlocklistClient::QueryOutcome::Kind::kOk);
  EXPECT_FALSE(outcome.listed);
}

TEST_F(NetTest, PrefixListSyncEnablesLocalResolution) {
  auto transport = make_transport();
  oprf::OprfServer sparse(oprf::Oracle::fast(), 18, server_rng_);
  std::vector<std::string> small(corpus_.begin(), corpus_.begin() + 30);
  sparse.setup(small);
  BlocklistServiceNode node(transport, "scamdb", sparse, oprf::Oracle::fast());
  RemoteBlocklistClient client(transport, "scamdb", client_rng_);
  ASSERT_TRUE(client.sync_prefix_list());

  auto clean = ChaChaRng::from_string_seed("net-clean2");
  int local = 0;
  for (int i = 0; i < 30; ++i) {
    const auto outcome = client.query(
        blocklist::random_address(blocklist::Chain::kEthereum, clean));
    EXPECT_FALSE(outcome.listed);
    if (outcome.resolved_locally) ++local;
  }
  EXPECT_GE(local, 28);  // nearly all negatives never touch the wire
}

TEST_F(NetTest, RetriesRideOutPacketLoss) {
  auto transport = make_transport(/*drop_rate=*/0.4);
  BlocklistServiceNode node(transport, "scamdb", *server_,
                            oprf::Oracle::fast());
  RemoteClientConfig cfg;
  cfg.max_retries = 10;
  RemoteBlocklistClient client(transport, "scamdb", client_rng_, cfg);

  int ok = 0;
  for (int i = 0; i < 20; ++i) {
    const auto outcome = client.query(corpus_[static_cast<std::size_t>(i)]);
    if (outcome.kind == RemoteBlocklistClient::QueryOutcome::Kind::kOk) {
      EXPECT_TRUE(outcome.listed);
      ++ok;
    }
  }
  // With 10 retries at 40% loss, effectively everything gets through.
  EXPECT_GE(ok, 19);
  EXPECT_GT(transport.stats().drops, 0u);
}

TEST_F(NetTest, UnreachableEndpointFailsConstruction) {
  auto transport = make_transport();
  EXPECT_THROW(RemoteBlocklistClient(transport, "nope", client_rng_),
               ProtocolError);
}

TEST_F(NetTest, ZeroRetriesSurfacesUnreachable) {
  auto transport = make_transport(/*drop_rate=*/1.0);
  BlocklistServiceNode node(transport, "scamdb", *server_,
                            oprf::Oracle::fast());
  RemoteClientConfig cfg;
  cfg.max_retries = 2;
  EXPECT_THROW(RemoteBlocklistClient(transport, "scamdb", client_rng_, cfg),
               ProtocolError);
}

TEST_F(NetTest, RateLimitSurfacesDistinctly) {
  auto transport = make_transport();
  server_->enable_rate_limiting(1);
  server_->authorize_key("k");
  BlocklistServiceNode node(transport, "scamdb", *server_,
                            oprf::Oracle::fast());
  RemoteBlocklistClient client(transport, "scamdb", client_rng_);
  client.set_api_key("k");

  auto first = client.query(corpus_[0]);
  EXPECT_EQ(first.kind, RemoteBlocklistClient::QueryOutcome::Kind::kOk);
  auto second = client.query(corpus_[1]);
  EXPECT_EQ(second.kind,
            RemoteBlocklistClient::QueryOutcome::Kind::kRateLimited);
}

TEST_F(NetTest, HostileNodeGarbageIsMalformedNotCrash) {
  auto transport = make_transport();
  transport.register_endpoint(
      "evil", [](ByteView frame) -> std::optional<Bytes> {
        if (!frame.empty() &&
            frame[0] == static_cast<std::uint8_t>(Method::kInfo)) {
          // A plausible hand-built info frame (lambda=4, fast oracle,
          // epoch=1, 10 entries), properly sealed so the client
          // constructs...
          const Bytes info = {4, 0, 0, 0,               // lambda
                              0,                        // oracle kind
                              0, 0, 0, 0, 0, 0, 0, 0,   // argon2 params
                              1, 0, 0, 0, 0, 0, 0, 0,   // epoch
                              10, 0, 0, 0, 0, 0, 0, 0}; // entries
          return encode_response_frame(Status::kOk, info);
        }
        // ...then answers queries with unsealed garbage: it fails the
        // frame checksum before any body parser runs.
        return Bytes{0, 0xde, 0xad, 0xbe, 0xef};
      });
  RemoteBlocklistClient client(transport, "evil", client_rng_);
  const auto outcome = client.query(corpus_[0]);
  EXPECT_EQ(outcome.kind, RemoteBlocklistClient::QueryOutcome::Kind::kMalformed);
}

TEST_F(NetTest, MalformedFramesRejectedByNode) {
  auto transport = make_transport();
  BlocklistServiceNode node(transport, "scamdb", *server_,
                            oprf::Oracle::fast());
  // Empty frame.
  auto result = transport.call("scamdb", {});
  ASSERT_TRUE(result.delivered);
  ASSERT_FALSE(result.response.empty());
  EXPECT_EQ(result.response[0], static_cast<std::uint8_t>(Status::kBadRequest));
  // Unknown method tag.
  const Bytes bogus = {0x77, 1, 2, 3};
  result = transport.call("scamdb", bogus);
  ASSERT_TRUE(result.delivered);
  EXPECT_EQ(result.response[0], static_cast<std::uint8_t>(Status::kBadRequest));
  // Query tag with truncated body.
  const Bytes truncated = {static_cast<std::uint8_t>(Method::kQuery), 1, 2};
  result = transport.call("scamdb", truncated);
  ASSERT_TRUE(result.delivered);
  EXPECT_EQ(result.response[0], static_cast<std::uint8_t>(Status::kBadRequest));
}

// Regression: the node used to accept bodyless methods with trailing
// garbage. parse_request_frame now requires the frame to map onto the
// protocol exactly, so a kPrefixList frame with extra bytes is rejected.
TEST_F(NetTest, PrefixListRejectsTrailingBody) {
  auto transport = make_transport();
  BlocklistServiceNode node(transport, "scamdb", *server_,
                            oprf::Oracle::fast());
  const Bytes exact = {static_cast<std::uint8_t>(Method::kPrefixList)};
  auto result = transport.call("scamdb", exact);
  ASSERT_TRUE(result.delivered);
  EXPECT_EQ(result.response[0], static_cast<std::uint8_t>(Status::kOk));

  const Bytes trailing = {static_cast<std::uint8_t>(Method::kPrefixList),
                          0xde, 0xad};
  result = transport.call("scamdb", trailing);
  ASSERT_TRUE(result.delivered);
  EXPECT_EQ(result.response[0],
            static_cast<std::uint8_t>(Status::kBadRequest));
}

// Regression: same trailing-byte acceptance existed for kInfo frames.
TEST_F(NetTest, InfoRejectsTrailingBody) {
  auto transport = make_transport();
  BlocklistServiceNode node(transport, "scamdb", *server_,
                            oprf::Oracle::fast());
  const Bytes exact = {static_cast<std::uint8_t>(Method::kInfo)};
  auto result = transport.call("scamdb", exact);
  ASSERT_TRUE(result.delivered);
  EXPECT_EQ(result.response[0], static_cast<std::uint8_t>(Status::kOk));

  const Bytes trailing = {static_cast<std::uint8_t>(Method::kInfo), 0x00};
  result = transport.call("scamdb", trailing);
  ASSERT_TRUE(result.delivered);
  EXPECT_EQ(result.response[0],
            static_cast<std::uint8_t>(Status::kBadRequest));
}

TEST_F(NetTest, FrameParsersAreTotalOnHostileInput) {
  // Empty frames carry no tag at all.
  EXPECT_FALSE(parse_request_frame({}).has_value());
  EXPECT_FALSE(parse_response_frame({}).has_value());
  // Unknown method tags; unsealed response bytes fail the checksum gate.
  const Bytes bad_method = {0x77, 1, 2};
  EXPECT_FALSE(parse_request_frame(bad_method).has_value());
  const Bytes bad_status = {0x77, 1, 2};
  EXPECT_FALSE(parse_response_frame(bad_status).has_value());
  // Even a correctly sealed frame is rejected when its status tag is
  // unknown — the checksum authenticates bytes, not protocol validity.
  const Bytes sealed_bad_status =
      encode_response_frame(static_cast<Status>(0x77), Bytes{1, 2});
  EXPECT_FALSE(parse_response_frame(sealed_bad_status).has_value());
  // A query frame's body aliases the input without the tag byte.
  const Bytes query = {static_cast<std::uint8_t>(Method::kQuery), 9, 8, 7};
  const auto parsed = parse_request_frame(query);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->method, Method::kQuery);
  ASSERT_EQ(parsed->body.size(), 3u);
  EXPECT_EQ(parsed->body[0], 9);
  // Sealed status-only responses (empty body) are well-formed.
  const Bytes rate_limited = encode_response_frame(Status::kRateLimited);
  const auto response = parse_response_frame(rate_limited);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, Status::kRateLimited);
  EXPECT_TRUE(response->body.empty());
  // A single flipped bit anywhere in a sealed frame voids the whole
  // frame — this is what turns channel corruption into kMalformed.
  Bytes flipped = encode_response_frame(Status::kOk, Bytes{9, 8, 7});
  flipped[2] ^= 0x10;
  EXPECT_FALSE(parse_response_frame(flipped).has_value());
  // So does truncation, even by a single trailing byte.
  Bytes cut = encode_response_frame(Status::kOk, Bytes{9, 8, 7});
  cut.pop_back();
  EXPECT_FALSE(parse_response_frame(cut).has_value());
}

// A server under the attacker's control answers the info handshake
// honestly, then serves the configured hostile payload for everything
// else — the client must classify it, never crash or propagate.
class HostileServer {
 public:
  HostileServer(Transport& transport, std::string endpoint) {
    transport.register_endpoint(
        std::move(endpoint), [this](ByteView frame) -> std::optional<Bytes> {
          const auto request = parse_request_frame(frame);
          if (request && request->method == Method::kInfo) {
            ServiceInfo info;
            info.lambda = 5;
            info.entry_count = 10;
            return encode_response_frame(Status::kOk, encode_info(info));
          }
          return payload_;
        });
  }

  void set_payload(Bytes payload) { payload_ = std::move(payload); }

 private:
  Bytes payload_;
};

TEST_F(NetTest, ClientClassifiesTruncatedResponseFrameAsMalformed) {
  auto transport = make_transport();
  HostileServer hostile(transport, "evil");
  RemoteBlocklistClient client(transport, "evil", client_rng_);

  // Entirely empty response frame — not even a status byte.
  hostile.set_payload({});
  auto outcome = client.query(corpus_[0]);
  EXPECT_EQ(outcome.kind,
            RemoteBlocklistClient::QueryOutcome::Kind::kMalformed);

  // Correctly sealed, status kOk, but a truncated QueryResponse body —
  // passes the checksum gate and must die in the body parser instead.
  hostile.set_payload(encode_response_frame(Status::kOk, Bytes{1, 2, 3}));
  outcome = client.query(corpus_[0]);
  EXPECT_EQ(outcome.kind,
            RemoteBlocklistClient::QueryOutcome::Kind::kMalformed);
}

TEST_F(NetTest, ClientClassifiesUnknownStatusByteAsMalformed) {
  auto transport = make_transport();
  HostileServer hostile(transport, "evil");
  RemoteBlocklistClient client(transport, "evil", client_rng_);
  // Sealed so the checksum passes: rejection must come from the status
  // tag itself being unknown.
  hostile.set_payload(
      encode_response_frame(static_cast<Status>(0x77), Bytes{0xaa, 0xbb}));
  const auto outcome = client.query(corpus_[0]);
  EXPECT_EQ(outcome.kind,
            RemoteBlocklistClient::QueryOutcome::Kind::kMalformed);
}

TEST_F(NetTest, ClientRejectsOversizedLengthFieldsWithoutAllocating) {
  auto transport = make_transport();
  HostileServer hostile(transport, "evil");
  RemoteBlocklistClient client(transport, "evil", client_rng_);

  // A QueryResponse whose bucket-count field claims 2^32-1 entries with
  // no bytes behind it: the parser must refuse before reserving. Sealed,
  // so the length bomb actually reaches the body parser.
  Bytes bomb;
  bomb.insert(bomb.end(), 32, 0x00);              // "evaluated" encoding
  bomb.insert(bomb.end(), 8, 0x00);               // epoch
  bomb.push_back(0);                              // bucket_omitted = false
  bomb.insert(bomb.end(), {0xff, 0xff, 0xff, 0xff});  // bucket count
  hostile.set_payload(encode_response_frame(Status::kOk, bomb));
  const auto outcome = client.query(corpus_[0]);
  EXPECT_EQ(outcome.kind,
            RemoteBlocklistClient::QueryOutcome::Kind::kMalformed);

  // Same attack against the prefix-list download path.
  const Bytes list_bomb = {0xff, 0xff, 0xff, 0x0f};
  hostile.set_payload(encode_response_frame(Status::kOk, list_bomb));
  EXPECT_FALSE(client.sync_prefix_list());
}

TEST_F(NetTest, SyncPrefixListRejectsTrailingJunk) {
  auto transport = make_transport();
  HostileServer hostile(transport, "evil");
  RemoteBlocklistClient client(transport, "evil", client_rng_);
  // A well-formed (empty) prefix list followed by trailing junk must be
  // rejected whole — parsers accept no trailing bytes. Sealed, so the
  // rejection is the body parser's, not the checksum's.
  const Bytes body = {0, 0, 0, 0, 0xcc};
  hostile.set_payload(encode_response_frame(Status::kOk, body));
  EXPECT_FALSE(client.sync_prefix_list());
}

TEST_F(NetTest, TransportAccountsBytes) {
  auto transport = make_transport();
  BlocklistServiceNode node(transport, "scamdb", *server_,
                            oprf::Oracle::fast());
  RemoteBlocklistClient client(transport, "scamdb", client_rng_);
  (void)client.query(corpus_[0]);
  EXPECT_GT(transport.stats().bytes_sent, 0u);
  EXPECT_GT(transport.stats().bytes_received, transport.stats().bytes_sent);
  EXPECT_GE(transport.stats().calls, 2u);  // info + query
}

TEST_F(NetTest, TransportBreaksStatsDownPerEndpoint) {
  auto transport = make_transport();
  BlocklistServiceNode node_a(transport, "provider-a", *server_,
                              oprf::Oracle::fast());
  BlocklistServiceNode node_b(transport, "provider-b", *server_,
                              oprf::Oracle::fast());
  RemoteBlocklistClient client_a(transport, "provider-a", client_rng_);
  RemoteBlocklistClient client_b(transport, "provider-b", client_rng_);
  (void)client_a.query(corpus_[0]);
  (void)client_a.query(corpus_[1]);
  (void)client_b.query(corpus_[2]);

  const auto a = transport.endpoint_stats("provider-a");
  const auto b = transport.endpoint_stats("provider-b");
  EXPECT_GT(a.calls, b.calls);  // two queries vs one, plus discovery each
  EXPECT_GT(a.bytes_sent, 0u);
  EXPECT_GT(b.bytes_sent, 0u);
  // Per-endpoint stats partition the global aggregate exactly.
  EXPECT_EQ(a.calls + b.calls, transport.stats().calls);
  EXPECT_EQ(a.bytes_sent + b.bytes_sent, transport.stats().bytes_sent);
  EXPECT_EQ(a.bytes_received + b.bytes_received,
            transport.stats().bytes_received);
  EXPECT_EQ(transport.stats_by_endpoint().size(), 2u);
  // Unknown endpoints report zero (and are attributed if actually called).
  EXPECT_EQ(transport.endpoint_stats("nowhere").calls, 0u);
  (void)transport.call("nowhere", Bytes{1});
  EXPECT_EQ(transport.endpoint_stats("nowhere").calls, 1u);
  EXPECT_EQ(transport.endpoint_stats("nowhere").drops, 1u);
}

TEST_F(NetTest, TransportResetStatsZeroesAllAccounting) {
  auto transport = make_transport();
  BlocklistServiceNode node(transport, "scamdb", *server_,
                            oprf::Oracle::fast());
  RemoteBlocklistClient client(transport, "scamdb", client_rng_);
  (void)client.query(corpus_[0]);
  ASSERT_GT(transport.stats().calls, 0u);
  transport.reset_stats();
  EXPECT_EQ(transport.stats().calls, 0u);
  EXPECT_EQ(transport.stats().bytes_sent, 0u);
  EXPECT_EQ(transport.endpoint_stats("scamdb").calls, 0u);
  // Accounting resumes cleanly after the reset.
  (void)client.query(corpus_[1]);
  EXPECT_EQ(transport.endpoint_stats("scamdb").calls,
            transport.stats().calls);
}

// The two legs of a lossy call are sampled independently, so the stats
// split request-leg losses (server never saw the frame) from
// response-leg losses (server worked, reply lost) — and request bytes
// count as sent whenever the request leg survived.
TEST_F(NetTest, TransportSplitsDropLegsAndKeepsAggregateLoss) {
  auto transport = make_transport(/*drop_rate=*/0.5);
  transport.register_endpoint("echo",
                              [](ByteView request) -> std::optional<Bytes> {
                                return Bytes(request.begin(), request.end());
                              });
  const Bytes request = {1, 2, 3};
  for (int i = 0; i < 400; ++i) (void)transport.call("echo", request);

  const auto stats = transport.endpoint_stats("echo");
  EXPECT_EQ(stats.calls, 400u);
  EXPECT_GT(stats.drops_request, 0u);
  EXPECT_GT(stats.drops_response, 0u);
  EXPECT_EQ(stats.drops, stats.drops_request + stats.drops_response);
  // Aggregate loss stays ~drop_rate (200 of 400; generous 3-sigma+ band).
  EXPECT_GT(stats.drops, 150u);
  EXPECT_LT(stats.drops, 250u);
  // Bytes hit the wire on every call that survived the request leg,
  // including the ones whose response was then lost.
  EXPECT_EQ(stats.bytes_sent,
            (stats.calls - stats.drops_request) * request.size());
  EXPECT_EQ(stats.bytes_received,
            (stats.calls - stats.drops) * request.size());
  // The split is mirrored onto the obs registry.
  auto& registry = obs::MetricsRegistry::global();
  EXPECT_GE(registry
                .counter("cbl_net_drops_request_total",
                         {{"endpoint", "echo"}})
                .value(),
            stats.drops_request);
  EXPECT_GE(registry
                .counter("cbl_net_drops_response_total",
                         {{"endpoint", "echo"}})
                .value(),
            stats.drops_response);
}

// Regression: a handler returning nullopt used to be indistinguishable
// from a successful empty response. It is now a delivered error with its
// own accounting.
TEST_F(NetTest, HandlerRejectionIsADeliveredErrorAndCounted) {
  auto& rejected_total = obs::MetricsRegistry::global().counter(
      "cbl_net_rejected_total", {{"endpoint", "picky"}});
  const auto before = rejected_total.value();

  auto transport = make_transport();
  transport.register_endpoint(
      "picky", [](ByteView) -> std::optional<Bytes> { return std::nullopt; });
  const auto result = transport.call("picky", Bytes{1});
  EXPECT_TRUE(result.delivered);
  EXPECT_TRUE(result.rejected);
  EXPECT_TRUE(result.response.empty());
  EXPECT_EQ(transport.endpoint_stats("picky").rejected, 1u);
  EXPECT_EQ(transport.stats().drops, 0u);  // not a drop: the server spoke
  EXPECT_EQ(rejected_total.value(), before + 1);
}

// kRateLimited round-trips through the wire with its retry-after hint,
// and the client outcome counters keep rate-limited, unreachable and ok
// distinguishable on a dashboard.
TEST_F(NetTest, RateLimitedRoundTripCarriesRetryAfterHint) {
  using Kind = RemoteBlocklistClient::QueryOutcome::Kind;
  auto& registry = obs::MetricsRegistry::global();
  const auto kind_counter = [&](const char* kind) {
    return &registry.counter("cbl_net_client_outcomes_total",
                             {{"endpoint", "scamdb"}, {"kind", kind}});
  };
  const auto ok_before = kind_counter("ok")->value();
  const auto limited_before = kind_counter("rate_limited")->value();
  const auto unreachable_before = kind_counter("unreachable")->value();

  auto transport = make_transport();
  server_->enable_rate_limiting(1);
  server_->authorize_key("k");
  NodeLimits limits;
  limits.retry_after_hint_ms = 750;
  auto node = std::make_optional<BlocklistServiceNode>(
      transport, "scamdb", *server_, oprf::Oracle::fast(), limits);
  RemoteClientConfig cfg;
  cfg.max_retries = 0;
  RemoteBlocklistClient client(transport, "scamdb", client_rng_, cfg);
  client.set_api_key("k");

  const auto first = client.query(corpus_[0]);
  EXPECT_EQ(first.kind, Kind::kOk);
  EXPECT_EQ(first.retry_after_ms, 0u);

  const auto second = client.query(corpus_[1]);
  EXPECT_EQ(second.kind, Kind::kRateLimited);
  EXPECT_EQ(second.retry_after_ms, 750u);

  node.reset();  // crash: endpoint gone, queries become unreachable
  const auto third = client.query(corpus_[2]);
  EXPECT_EQ(third.kind, Kind::kUnreachable);

  EXPECT_EQ(kind_counter("ok")->value(), ok_before + 1);
  EXPECT_EQ(kind_counter("rate_limited")->value(), limited_before + 1);
  EXPECT_EQ(kind_counter("unreachable")->value(), unreachable_before + 1);
}

// The bounded in-flight budget sheds excess queries with kRateLimited
// instead of queuing unboundedly, and admits again once the virtual-time
// backlog drains.
TEST_F(NetTest, OverloadSheddingBoundsTheQueueThenRecovers) {
  using Kind = RemoteBlocklistClient::QueryOutcome::Kind;
  obs::ManualClock clock;
  auto& registry = obs::MetricsRegistry::global();
  registry.set_clock(&clock);

  auto transport = make_transport();
  NodeLimits limits;
  limits.service_ms = 10.0;
  limits.max_inflight = 2;
  BlocklistServiceNode node(transport, "scamdb", *server_,
                            oprf::Oracle::fast(), limits);
  RemoteClientConfig cfg;
  cfg.max_retries = 0;
  RemoteBlocklistClient client(transport, "scamdb", client_rng_, cfg);
  const auto shed_before =
      registry.counter("cbl_net_shed_total", {{"endpoint", "scamdb"}})
          .value();

  // No virtual time passes between arrivals, so the 10ms-per-query
  // budget admits exactly max_inflight before the queue is full.
  const auto q1 = client.query(corpus_[0]);
  const auto q2 = client.query(corpus_[1]);
  const auto q3 = client.query(corpus_[2]);
  EXPECT_EQ(q1.kind, Kind::kOk);
  EXPECT_EQ(q2.kind, Kind::kOk);
  EXPECT_EQ(q3.kind, Kind::kRateLimited);
  EXPECT_GT(q3.retry_after_ms, 0u);   // how long until a slot frees
  EXPECT_LE(q3.retry_after_ms, 11u);  // one service slot, rounded up
  EXPECT_EQ(registry.counter("cbl_net_shed_total", {{"endpoint", "scamdb"}})
                .value(),
            shed_before + 1);

  // Shedding spent no crypto: the backlog is unchanged, and once it
  // drains the node admits again.
  clock.advance_ms(50);
  const auto q4 = client.query(corpus_[3]);
  EXPECT_EQ(q4.kind, Kind::kOk);

  registry.set_clock(&obs::SteadyClock::instance());
}

// The resilient client honors kRateLimited: it backs off (at least the
// server's hint) instead of hammering, never trips the breaker over it,
// and serves the deadline-exceeded query honestly from cache.
TEST_F(NetTest, ResilientClientBacksOffOnRateLimited) {
  obs::ManualClock clock;
  auto& registry = obs::MetricsRegistry::global();
  auto& backoff_total =
      registry.counter("cbl_net_resilient_backoff_ms_total", {});
  auto& stale_total = registry.counter("cbl_net_resilient_answers_total",
                                       {{"freshness", "stale_cache"}});

  auto transport = make_transport();
  server_->enable_rate_limiting(1);
  server_->authorize_key("k");
  NodeLimits limits;
  limits.retry_after_hint_ms = 400;
  BlocklistServiceNode node(transport, "scamdb", *server_,
                            oprf::Oracle::fast(), limits);

  ResilienceConfig config;
  config.max_attempts = 3;
  config.attempt_timeout_ms = 1e6;  // irrelevant here
  config.call_deadline_ms = 1e6;
  config.hedge_after_ms = 0.0;  // single provider
  ResilientClient client(transport, {"scamdb"}, client_rng_, config, &clock);
  client.set_api_key("k");

  const auto fresh = client.query(corpus_[0]);
  EXPECT_EQ(fresh.verdict, ResilientClient::Outcome::Verdict::kListed);
  EXPECT_EQ(fresh.freshness, Freshness::kFresh);

  const auto backoff_before = backoff_total.value();
  const auto stale_before = stale_total.value();
  const double t0 = client.now_ms();
  const auto limited = client.query(corpus_[0]);  // window exhausted
  // Degraded — but the verdict is still right, served from cache and
  // labelled as such.
  EXPECT_EQ(limited.verdict, ResilientClient::Outcome::Verdict::kListed);
  EXPECT_EQ(limited.freshness, Freshness::kStaleCache);
  EXPECT_EQ(limited.last_error,
            RemoteBlocklistClient::QueryOutcome::Kind::kRateLimited);
  EXPECT_EQ(limited.attempts, 3u);
  // Every retry waited at least the server's 400ms hint (> the jitter
  // cap would ever produce on its own here), in virtual time.
  EXPECT_GE(client.now_ms() - t0, 3 * 400.0);
  EXPECT_GE(backoff_total.value() - backoff_before, 3 * 400u);
  EXPECT_EQ(stale_total.value() - stale_before, 1u);
  // Rate limiting is liveness, not failure: the breaker stayed closed.
  EXPECT_EQ(client.breaker_state("scamdb"), CircuitBreaker::State::kClosed);

  // A fresh window serves normally again.
  server_->advance_window();
  const auto after = client.query(corpus_[1]);
  EXPECT_EQ(after.freshness, Freshness::kFresh);
}

// Breaker lifecycle against a crashing provider: consecutive failures
// trip it open (no further traffic), a cooled-off probe half-opens it,
// and a successful probe closes it again.
TEST_F(NetTest, ResilientClientBreakerOpensAndRecovers) {
  obs::ManualClock clock;
  auto transport = make_transport();
  auto node = std::make_optional<BlocklistServiceNode>(
      transport, "scamdb", *server_, oprf::Oracle::fast());

  ResilienceConfig config;
  config.max_attempts = 2;
  config.attempt_timeout_ms = 1e6;
  config.call_deadline_ms = 1e6;
  config.hedge_after_ms = 0.0;
  config.breaker.failure_threshold = 3;
  config.breaker.open_ms = 500.0;
  ResilientClient client(transport, {"scamdb"}, client_rng_, config, &clock);

  ASSERT_EQ(client.query(corpus_[0]).freshness, Freshness::kFresh);
  node.reset();  // crash

  // Two failing queries = 4 consecutive failures >= threshold 3: open.
  (void)client.query(corpus_[0]);
  const auto degraded = client.query(corpus_[0]);
  EXPECT_EQ(degraded.freshness, Freshness::kStaleCache);
  EXPECT_EQ(degraded.verdict, ResilientClient::Outcome::Verdict::kListed);
  EXPECT_EQ(client.breaker_state("scamdb"), CircuitBreaker::State::kOpen);

  // Open means *no traffic*: the transport sees nothing, the caller
  // still gets an honest degraded answer.
  const auto calls_before = transport.stats().calls;
  const auto shed = client.query(corpus_[0]);
  EXPECT_EQ(transport.stats().calls, calls_before);
  EXPECT_EQ(shed.freshness, Freshness::kStaleCache);
  EXPECT_EQ(shed.attempts, 0u);

  // Service restored + cool-off elapsed: the half-open probe succeeds
  // and closes the breaker.
  node.emplace(transport, "scamdb", *server_, oprf::Oracle::fast());
  clock.advance_ms(600);
  const auto recovered = client.query(corpus_[0]);
  EXPECT_EQ(recovered.freshness, Freshness::kFresh);
  EXPECT_EQ(client.breaker_state("scamdb"),
            CircuitBreaker::State::kClosed);
}

TEST_F(NetTest, SlowOracleParametersPropagate) {
  hash::Argon2Params params;
  params.memory_kib = 64;
  params.time_cost = 1;
  const auto oracle = oprf::Oracle::slow(params);
  oprf::OprfServer slow_server(oracle, 3, server_rng_);
  std::vector<std::string> small(corpus_.begin(), corpus_.begin() + 20);
  slow_server.setup(small);

  auto transport = make_transport();
  BlocklistServiceNode node(transport, "slowdb", slow_server, oracle);
  RemoteBlocklistClient client(transport, "slowdb", client_rng_);
  EXPECT_EQ(client.info().oracle_kind, 1);
  EXPECT_EQ(client.info().argon2_memory_kib, 64u);
  // The client mirrored the slow oracle, so membership works end to end.
  const auto outcome = client.query(small[7]);
  EXPECT_EQ(outcome.kind, RemoteBlocklistClient::QueryOutcome::Kind::kOk);
  EXPECT_TRUE(outcome.listed);
}

}  // namespace
}  // namespace cbl::net
