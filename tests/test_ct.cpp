// Unit tests for the constant-time layer: the branch-free primitives in
// common/ct.h, the secret-taint API in ct/ct.h, the trace recorder in
// ct/trace.h, and the wipe() hooks on key-holding types.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "commit/pedersen.h"
#include "common/bytes.h"
#include "common/ct.h"
#include "common/rng.h"
#include "ct/ct.h"
#include "ct/trace.h"
#include "ec/fe25519.h"
#include "ec/scalar.h"

namespace cbl {
namespace {

// --- Masks and scalar selects ---------------------------------------------

TEST(CtPrimitives, MaskU64) {
  EXPECT_EQ(ct_mask_u64(true), ~std::uint64_t{0});
  EXPECT_EQ(ct_mask_u64(false), std::uint64_t{0});
}

TEST(CtPrimitives, MaskU8) {
  EXPECT_EQ(ct_mask_u8(true), std::uint8_t{0xff});
  EXPECT_EQ(ct_mask_u8(false), std::uint8_t{0});
}

TEST(CtPrimitives, SelectScalar) {
  EXPECT_EQ(ct_select_u64(true, 7, 9), 7u);
  EXPECT_EQ(ct_select_u64(false, 7, 9), 9u);
  EXPECT_EQ(ct_select_u8(true, 0xaa, 0x55), 0xaa);
  EXPECT_EQ(ct_select_u8(false, 0xaa, 0x55), 0x55);
}

// --- ct_equal --------------------------------------------------------------

TEST(CtEqual, EqualAndUnequal) {
  auto rng = ChaChaRng::from_string_seed("test_ct/ct_equal");
  const Bytes a = rng.bytes(64);
  Bytes b = a;
  EXPECT_TRUE(ct_equal(a, b));

  b[0] ^= 1;  // first byte
  EXPECT_FALSE(ct_equal(a, b));
  b[0] ^= 1;
  b[63] ^= 0x80;  // last byte, high bit
  EXPECT_FALSE(ct_equal(a, b));
}

TEST(CtEqual, LengthMismatchIsUnequal) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 3, 0};
  EXPECT_FALSE(ct_equal(a, b));
}

TEST(CtEqual, EmptyViewsAreEqual) {
  EXPECT_TRUE(ct_equal(Bytes{}, Bytes{}));
}

TEST(CtEqual, ArrayOverload) {
  std::array<std::uint8_t, 32> a{};
  std::array<std::uint8_t, 32> b{};
  a.fill(0x5c);
  b.fill(0x5c);
  EXPECT_TRUE(ct_equal(a, b));
  b[17] = 0x5d;
  EXPECT_FALSE(ct_equal(a, b));
}

TEST(CtEqual, LegacyNameStillWorks) {
  const Bytes a = {9, 9, 9};
  EXPECT_TRUE(constant_time_eq(a, a));
}

// --- Byte-buffer select / swap --------------------------------------------

TEST(CtSelect, Bytes) {
  const std::uint8_t a[4] = {1, 2, 3, 4};
  const std::uint8_t b[4] = {5, 6, 7, 8};
  std::uint8_t out[4];

  ct_select(true, out, a, b, 4);
  EXPECT_EQ(0, std::memcmp(out, a, 4));
  ct_select(false, out, a, b, 4);
  EXPECT_EQ(0, std::memcmp(out, b, 4));
}

TEST(CtSelect, OutMayAliasInput) {
  std::uint8_t a[4] = {1, 2, 3, 4};
  const std::uint8_t b[4] = {5, 6, 7, 8};
  ct_select(false, a, a, b, 4);
  EXPECT_EQ(0, std::memcmp(a, b, 4));
}

TEST(CtSwap, Bytes) {
  std::uint8_t a[3] = {1, 2, 3};
  std::uint8_t b[3] = {7, 8, 9};

  ct_swap(false, a, b, 3);
  EXPECT_EQ(a[0], 1);
  EXPECT_EQ(b[0], 7);

  ct_swap(true, a, b, 3);
  EXPECT_EQ(a[0], 7);
  EXPECT_EQ(a[2], 9);
  EXPECT_EQ(b[0], 1);
  EXPECT_EQ(b[2], 3);
}

TEST(CtSwap, LimbVariants) {
  std::uint64_t a[2] = {10, 20};
  std::uint64_t b[2] = {30, 40};
  std::uint64_t out[2];

  ct_select_u64(ct_mask_u64(true), out, a, b, 2);
  EXPECT_EQ(out[0], 10u);
  ct_select_u64(ct_mask_u64(false), out, a, b, 2);
  EXPECT_EQ(out[1], 40u);

  ct_swap_u64(ct_mask_u64(true), a, b, 2);
  EXPECT_EQ(a[0], 30u);
  EXPECT_EQ(b[1], 20u);
  ct_swap_u64(ct_mask_u64(false), a, b, 2);
  EXPECT_EQ(a[0], 30u);  // unchanged
}

// --- secure_wipe -----------------------------------------------------------

TEST(SecureWipe, ZeroizesBuffer) {
  std::uint8_t buf[32];
  std::memset(buf, 0xee, sizeof buf);
  secure_wipe(buf, sizeof buf);
  for (std::uint8_t v : buf) EXPECT_EQ(v, 0);
}

TEST(SecureWipe, ArrayOverload) {
  std::array<std::uint8_t, 16> a;
  a.fill(0x42);
  secure_wipe(a);
  for (std::uint8_t v : a) EXPECT_EQ(v, 0);
}

// --- Taint registry --------------------------------------------------------

class TaintTest : public ::testing::Test {
 protected:
  void SetUp() override { ct::reset_for_testing(); }
  void TearDown() override { ct::reset_for_testing(); }
};

TEST_F(TaintTest, PoisonUnpoisonRoundTrip) {
  std::uint8_t buf[64];
  EXPECT_FALSE(ct::is_poisoned(buf, sizeof buf));

  ct::poison(buf, sizeof buf);
  EXPECT_TRUE(ct::is_poisoned(buf, sizeof buf));
  EXPECT_TRUE(ct::is_poisoned(buf + 10, 1));  // subrange overlaps
  EXPECT_EQ(ct::poisoned_bytes(), sizeof buf);

  ct::unpoison(buf, sizeof buf);
  EXPECT_FALSE(ct::is_poisoned(buf, sizeof buf));
  EXPECT_EQ(ct::poisoned_bytes(), 0u);
}

TEST_F(TaintTest, PartialUnpoisonTrimsRange) {
  std::uint8_t buf[64];
  ct::poison(buf, sizeof buf);
  ct::unpoison(buf + 16, 32);  // carve a hole in the middle

  EXPECT_TRUE(ct::is_poisoned(buf, 16));
  EXPECT_FALSE(ct::is_poisoned(buf + 16, 32));
  EXPECT_TRUE(ct::is_poisoned(buf + 48, 16));
  EXPECT_EQ(ct::poisoned_bytes(), 32u);
}

TEST_F(TaintTest, NullAndZeroLengthAreNoOps) {
  ct::poison(nullptr, 16);
  std::uint8_t b;
  ct::poison(&b, 0);
  EXPECT_EQ(ct::poisoned_bytes(), 0u);
  EXPECT_FALSE(ct::is_poisoned(&b, 0));
}

TEST_F(TaintTest, DeclassifyUnpoisonsAndCounts) {
  std::uint8_t buf[8];
  ct::poison(buf, sizeof buf);
  const std::uint64_t before = ct::declassified_events();
  ct::declassify(buf, sizeof buf);
  EXPECT_FALSE(ct::is_poisoned(buf, sizeof buf));
  EXPECT_EQ(ct::declassified_events(), before + 1);
}

TEST_F(TaintTest, SecretScopePoisonsForItsLifetime) {
  std::uint8_t buf[16];
  std::memset(buf, 0x77, sizeof buf);
  {
    ct::SecretScope scope(buf, sizeof buf);
    EXPECT_TRUE(ct::is_poisoned(buf, sizeof buf));
  }
  EXPECT_FALSE(ct::is_poisoned(buf, sizeof buf));
  EXPECT_EQ(buf[0], 0x77);  // default exit policy does not wipe
}

TEST_F(TaintTest, SecretScopeCanWipeOnExit) {
  std::uint8_t buf[16];
  std::memset(buf, 0x77, sizeof buf);
  {
    ct::SecretScope scope(buf, sizeof buf,
                          ct::SecretScope::OnExit::kUnpoisonAndWipe);
  }
  EXPECT_FALSE(ct::is_poisoned(buf, sizeof buf));
  for (std::uint8_t v : buf) EXPECT_EQ(v, 0);
}

TEST_F(TaintTest, BackendIsReported) {
  EXPECT_NE(ct::backend_name(), nullptr);
  // Compiled-in client requests answer honestly either way; this test
  // only requires the call not to crash outside valgrind.
  (void)ct::running_on_valgrind();
}

// --- Trace recorder --------------------------------------------------------

TEST(Trace, UninstrumentedBuildRecordsNoEdges) {
  // This test binary is built WITHOUT -fsanitize-coverage=trace-pc, so the
  // recorder must see no edges and report itself as uninstrumented.
  ct::trace_begin();
  const ct::TraceStats stats = ct::trace_end();
  EXPECT_EQ(stats.edges, 0u);
  EXPECT_FALSE(ct::trace_instrumented());
}

TEST(Trace, StatsEquality) {
  const ct::TraceStats a{1, 2};
  const ct::TraceStats b{1, 2};
  const ct::TraceStats c{1, 3};
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

// --- wipe() hooks on key-holding types -------------------------------------

TEST(KeyHygiene, ScalarWipe) {
  auto rng = ChaChaRng::from_string_seed("test_ct/scalar_wipe");
  ec::Scalar s = ec::Scalar::random(rng);
  ASSERT_FALSE(s == ec::Scalar::zero());
  s.wipe();
  EXPECT_TRUE(s == ec::Scalar::zero());
}

TEST(KeyHygiene, Fe25519Wipe) {
  ec::Fe25519 f = ec::Fe25519::from_u64(12345);
  ASSERT_FALSE(f.is_zero());
  f.wipe();
  EXPECT_TRUE(f.is_zero());
}

TEST(KeyHygiene, OpeningDestructorCompilesWithBraceInit) {
  auto rng = ChaChaRng::from_string_seed("test_ct/opening");
  const ec::Scalar v = ec::Scalar::random(rng);
  const ec::Scalar r = ec::Scalar::random(rng);
  commit::Opening o{v, r};
  EXPECT_TRUE(o.value.expose_secret() == v);
  EXPECT_TRUE(o.randomness.expose_secret() == r);
}

}  // namespace
}  // namespace cbl
