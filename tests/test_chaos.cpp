// The seeded chaos harness: randomized fault schedules swept over
// thousands of membership queries, asserting the system-level
// invariants the resilience stack exists for:
//
//   * no crash, no exception escaping the client;
//   * NO WRONG MEMBERSHIP ANSWER, EVER — corruption surfaces as
//     kMalformed or an honestly-tagged degraded answer, never a false
//     verdict;
//   * every injected fault is accounted for in cbl::obs;
//   * the circuit breaker sheds during a blackout and walks
//     open -> half-open -> closed afterwards;
//   * a crashed-and-restarted node recovers deterministically, with an
//     epoch floor that keeps stale client caches from going wrong.
//
// Every run is deterministic: plan seed -> injector ChaCha stream, and
// all time is a shared ManualClock that the resilient client drives.
// Failures print the plan description; replay any plan with e.g.
//   CBL_CHAOS_SEED=<seed> ./tests/test_chaos
// CBL_CHAOS_QUERIES=<n> scales the per-plan query count (default 400).
#include <gtest/gtest.h>

#include <cstdlib>
#include <deque>
#include <iostream>
#include <map>
#include <span>
#include <unordered_set>

#include "blocklist/generator.h"
#include "chaos/chaos.h"
#include "chaos/fault_fs.h"
#include "common/rng.h"
#include "net/query_pipeline.h"
#include "net/resilient_client.h"
#include "net/service_node.h"
#include "obs/clock.h"
#include "store/state_store.h"
#include "tlog/tlog.h"

namespace cbl::chaos {
namespace {

using net::CircuitBreaker;
using net::Freshness;
using net::ResilienceConfig;
using net::ResilientClient;

std::uint64_t chaos_seed(std::uint64_t fallback) {
  if (const char* env = std::getenv("CBL_CHAOS_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return fallback;
}

int chaos_queries(int fallback = 400) {
  if (const char* env = std::getenv("CBL_CHAOS_QUERIES")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return fallback;
}

/// One self-contained universe per plan: a seeded transport, an OPRF
/// server + service node per endpoint, the fault injector in front of
/// it all, and a resilient client driving the shared virtual clock.
class ChaosWorld {
 public:
  ChaosWorld(FaultPlan plan, std::vector<std::string> endpoints,
             ResilienceConfig config = ResilienceConfig(),
             net::NodeLimits limits = net::NodeLimits(),
             bool use_pipeline = false)
      : plan_(std::move(plan)),
        endpoints_(std::move(endpoints)),
        limits_(limits),
        use_pipeline_(use_pipeline),
        query_rng_(ChaChaRng::from_string_seed(
            plan_.name + "/traffic/" + std::to_string(plan_.seed))),
        transport_(net::TransportConfig{.latency_ms_min = 1.0,
                                        .latency_ms_max = 10.0,
                                        .drop_rate = 0.0},
                   transport_rng_),
        injector_(transport_, plan_, &clock_) {
    obs::MetricsRegistry::global().set_clock(&clock_);
    std::cout << "[chaos] " << plan_.describe() << "\n";

    listed_ = blocklist::generate_corpus(150, corpus_rng_).addresses();
    listed_set_.insert(listed_.begin(), listed_.end());
    while (clean_.size() < 200) {
      auto address =
          blocklist::random_address(blocklist::Chain::kBitcoin, corpus_rng_);
      if (!listed_set_.contains(address)) clean_.push_back(std::move(address));
    }

    fs_.resize(endpoints_.size());
    epoch_logs_.resize(endpoints_.size());
    servers_.resize(endpoints_.size());
    pipelines_.resize(endpoints_.size());
    nodes_.resize(endpoints_.size());
    for (std::size_t i = 0; i < endpoints_.size(); ++i) {
      start_node(i);
      injector_.set_restart_hook(endpoints_[i], [this, i] {
        // Power loss, not graceful shutdown: the node's MemFs reverts
        // to its durable view and the rebuilt process recovers from
        // that — no in-memory state crosses the crash.
        fs_[i].crash();
        start_node(i);
      });
    }
    snapshot_fault_counters();
    client_.emplace(injector_, endpoints_, client_rng_, config, &clock_);
  }

  ~ChaosWorld() {
    obs::MetricsRegistry::global().set_clock(&obs::SteadyClock::instance());
  }

  struct RunSummary {
    int queries = 0;
    int wrong = 0;
    int fresh = 0;
    int stale = 0;
    int prefix_only = 0;
    int unavailable = 0;
  };

  /// The invariant loop. Each iteration asks about a random address
  /// (half listed, half clean) and checks any non-Unknown verdict
  /// against ground truth; `inter_arrival_ms` of virtual time passes
  /// between queries on top of whatever the client itself consumed.
  RunSummary run(int queries, double inter_arrival_ms = 2.0) {
    SCOPED_TRACE(plan_.describe() + "  (replay: CBL_CHAOS_SEED=" +
                 std::to_string(plan_.seed) + ")");
    RunSummary s;
    for (int i = 0; i < queries; ++i) {
      const bool expect_listed = query_rng_.uniform(2) == 0;
      const std::string& address =
          expect_listed
              ? listed_[query_rng_.uniform(listed_.size())]
              : clean_[query_rng_.uniform(clean_.size())];

      const auto out = client_->query(address);
      ++s.queries;
      switch (out.freshness) {
        case Freshness::kFresh: ++s.fresh; break;
        case Freshness::kStaleCache: ++s.stale; break;
        case Freshness::kPrefixOnly: ++s.prefix_only; break;
        case Freshness::kUnavailable: ++s.unavailable; break;
      }
      if (out.verdict == ResilientClient::Outcome::Verdict::kUnknown) {
        // Unknown is only legal as an explicit, honestly-tagged failure.
        EXPECT_EQ(out.freshness, Freshness::kUnavailable);
      } else {
        const bool answered_listed =
            out.verdict == ResilientClient::Outcome::Verdict::kListed;
        if (answered_listed != expect_listed) {
          ++s.wrong;
          ADD_FAILURE() << "WRONG MEMBERSHIP ANSWER at query #" << i
                        << " address=" << address
                        << " truth=" << (expect_listed ? "listed" : "clean")
                        << " answered="
                        << (answered_listed ? "listed" : "clean")
                        << " freshness=" << net::to_string(out.freshness);
        }
      }
      clock_.advance_ms(static_cast<std::uint64_t>(inter_arrival_ms));
    }
    return s;
  }

  /// Every transport round trip is accounted for: calls the injector
  /// swallowed (blackouts, request drops) never reached the inner
  /// transport, and duplicates reached it twice.
  void expect_calls_accounted() const {
    const ChaosStats& cs = injector_.stats();
    EXPECT_EQ(transport_.stats().calls,
              cs.calls - cs.blackout_drops - cs.dropped_requests +
                  cs.duplicated)
        << plan_.describe();
  }

  /// The cbl_chaos_faults_total{kind} counters mirror the local stats
  /// exactly (deltas since this world was built).
  void expect_faults_mirrored() const {
    const ChaosStats& cs = injector_.stats();
    EXPECT_EQ(fault_delta("blackout"), cs.blackout_drops);
    EXPECT_EQ(fault_delta("drop_request"), cs.dropped_requests);
    EXPECT_EQ(fault_delta("drop_response"), cs.dropped_responses);
    EXPECT_EQ(fault_delta("corrupt"), cs.corrupted);
    EXPECT_EQ(fault_delta("truncate"), cs.truncated);
    EXPECT_EQ(fault_delta("duplicate"), cs.duplicated);
    EXPECT_EQ(fault_delta("delay"), cs.delayed);
    EXPECT_EQ(fault_delta("crash"), cs.crashes);
    EXPECT_EQ(fault_delta("restart"), cs.restarts);
  }

  ResilientClient& client() { return *client_; }
  FaultInjector& injector() { return injector_; }
  net::Transport& transport() { return transport_; }
  obs::ManualClock& clock() { return clock_; }
  std::uint64_t server_epoch(std::size_t i) const {
    return servers_[i]->epoch();
  }

 private:
  void start_node(std::size_t i) {
    nodes_[i].reset();  // tear the old handler down first
    // lambda=16: sparse buckets, so the prefix list actually decides
    // most clean addresses (with lambda=5 every bucket is occupied and
    // the prefix-only degradation rung could never fire).
    // The old server (whose epoch listener points at the old EpochLog)
    // is destroyed before the log is re-created over the same file.
    servers_[i].emplace(oprf::Oracle::fast(), 16u, server_rng_);
    epoch_logs_[i].emplace(fs_[i], "epoch.jrnl");
    // Crash recovery: brand-new process state, except the epoch floor
    // recovered from the durable store. Without it the rebuilt server
    // would re-number epochs from scratch and could re-serve an epoch
    // number clients already cached buckets for — under a different
    // mask, turning their caches into silently wrong answers.
    const std::uint64_t floor = epoch_logs_[i]->recover();
    if (floor > 0) servers_[i]->restore_epoch(floor);
    servers_[i]->set_epoch_listener(
        [log = &*epoch_logs_[i]](std::uint64_t epoch) { log->note(epoch); });
    servers_[i]->setup(listed_);
    net::QueryPipeline* pipeline = nullptr;
    if (use_pipeline_) {
      pipelines_[i].emplace(*servers_[i], net::PipelineOptions{});
      pipeline = &*pipelines_[i];
    }
    nodes_[i].emplace(transport_, endpoints_[i], *servers_[i],
                      oprf::Oracle::fast(), limits_, pipeline);
  }

  static std::uint64_t fault_counter(const char* kind) {
    return obs::MetricsRegistry::global()
        .counter("cbl_chaos_faults_total", {{"kind", kind}})
        .value();
  }
  void snapshot_fault_counters() {
    for (const char* kind :
         {"blackout", "drop_request", "drop_response", "corrupt", "truncate",
          "duplicate", "delay", "crash", "restart"}) {
      fault_before_[kind] = fault_counter(kind);
    }
  }
  std::uint64_t fault_delta(const char* kind) const {
    return fault_counter(kind) - fault_before_.at(kind);
  }

  FaultPlan plan_;
  std::vector<std::string> endpoints_;
  net::NodeLimits limits_;
  bool use_pipeline_ = false;
  obs::ManualClock clock_;
  ChaChaRng corpus_rng_ = ChaChaRng::from_string_seed("chaos-corpus");
  ChaChaRng server_rng_ = ChaChaRng::from_string_seed("chaos-server");
  ChaChaRng client_rng_ = ChaChaRng::from_string_seed("chaos-client");
  ChaChaRng transport_rng_ = ChaChaRng::from_string_seed("chaos-transport");
  ChaChaRng query_rng_;
  std::vector<std::string> listed_;
  std::unordered_set<std::string> listed_set_;
  std::vector<std::string> clean_;
  net::Transport transport_;
  // Per-endpoint durable "disk" plus the epoch floor log on it. Declared
  // before servers_ so each server (whose epoch listener points into its
  // log) is destroyed first.
  std::deque<store::MemFs> fs_;
  std::deque<std::optional<store::EpochLog>> epoch_logs_;
  std::deque<std::optional<oprf::OprfServer>> servers_;
  // Declared before nodes_ so each node (which may hold a pipeline
  // pointer) is destroyed before the pipeline it points at.
  std::deque<std::optional<net::QueryPipeline>> pipelines_;
  std::deque<std::optional<net::BlocklistServiceNode>> nodes_;
  FaultInjector injector_;
  std::optional<ResilientClient> client_;
  std::map<std::string, std::uint64_t> fault_before_;
};

// ---------------------------------------------------------------- plans

TEST(ChaosTest, FlakyLinksNeverProduceWrongAnswers) {
  FaultPlan plan;
  plan.name = "flaky-links";
  plan.seed = chaos_seed(101);
  plan.all.drop_request = 0.15;
  plan.all.drop_response = 0.15;
  ChaosWorld world(plan, {"alpha", "beta"});

  const auto s = world.run(chaos_queries());
  EXPECT_EQ(s.wrong, 0);
  // Retries + two providers ride out 30% call loss almost completely.
  EXPECT_GE(s.fresh, (s.queries * 9) / 10);
  EXPECT_GT(world.injector().stats().dropped_requests, 0u);
  EXPECT_GT(world.injector().stats().dropped_responses, 0u);
  world.expect_calls_accounted();
  world.expect_faults_mirrored();
}

TEST(ChaosTest, HeavyTailsAndDuplicatesHedgeAndStayCorrect) {
  auto& hedges =
      obs::MetricsRegistry::global().counter("cbl_net_resilient_hedges_total");
  const auto hedges_before = hedges.value();

  FaultPlan plan;
  plan.name = "heavy-tail-duplicates";
  plan.seed = chaos_seed(202);
  plan.all.latency.spike_prob = 0.15;
  plan.all.latency.spike_ms = 300.0;  // > hedge_after_ms: triggers hedging
  plan.all.latency.tail_prob = 0.05;
  plan.all.latency.tail_scale_ms = 200.0;
  plan.all.latency.tail_alpha = 1.3;
  plan.all.duplicate_prob = 0.10;
  ChaosWorld world(plan, {"alpha", "beta"});

  const auto s = world.run(chaos_queries());
  EXPECT_EQ(s.wrong, 0);
  EXPECT_GE(s.fresh, (s.queries * 9) / 10);
  // Slow primaries were hedged; duplicates hit the server but never the
  // verdict.
  EXPECT_GT(hedges.value(), hedges_before);
  EXPECT_GT(world.injector().stats().duplicated, 0u);
  EXPECT_GT(world.injector().stats().delayed, 0u);
  world.expect_calls_accounted();
  world.expect_faults_mirrored();
}

TEST(ChaosTest, CorruptionStormIsMalformedNeverAFalseVerdict) {
  FaultPlan plan;
  plan.name = "corruption-storm";
  plan.seed = chaos_seed(303);
  plan.all.corrupt_prob = 0.35;
  plan.all.truncate_prob = 0.15;
  ChaosWorld world(plan, {"alpha", "beta"});

  const auto s = world.run(chaos_queries());
  // The load-bearing invariant of the frame checksum: roughly half of
  // all responses were damaged in flight and not one produced a wrong
  // membership answer.
  EXPECT_EQ(s.wrong, 0);
  EXPECT_GT(world.injector().stats().corrupted, 100u);
  EXPECT_GT(world.injector().stats().truncated, 0u);
  // Retries still get most queries through; the rest degrade honestly.
  EXPECT_GE(s.fresh + s.stale + s.prefix_only, s.queries / 2);
  world.expect_calls_accounted();
  world.expect_faults_mirrored();
}

TEST(ChaosTest, BlackoutTripsBreakerThenWalksHalfOpenToClosed) {
  const auto transition = [](const char* to) {
    return obs::MetricsRegistry::global()
        .counter("cbl_net_breaker_transitions_total",
                 {{"endpoint", "alpha"}, {"to", to}})
        .value();
  };
  const auto open_before = transition("open");
  const auto half_before = transition("half_open");
  const auto closed_before = transition("closed");

  FaultPlan plan;
  plan.name = "blackout";
  plan.seed = chaos_seed(404);
  plan.per_endpoint["alpha"].blackouts = {{1000.0, 4000.0}};
  ChaosWorld world(plan, {"alpha"});  // single provider: nowhere to hedge

  const auto s = world.run(chaos_queries(), /*inter_arrival_ms=*/25.0);
  EXPECT_EQ(s.wrong, 0);
  EXPECT_GT(world.injector().stats().blackout_drops, 0u);
  // The full breaker cycle: tripped open during the blackout (probably
  // several times — each cooled-off probe fails while the window
  // lasts), half-opened on probes, and closed again after it.
  EXPECT_GT(transition("open"), open_before);
  EXPECT_GT(transition("half_open"), half_before);
  EXPECT_GT(transition("closed"), closed_before);
  EXPECT_EQ(world.client().breaker_state("alpha"),
            CircuitBreaker::State::kClosed);
  // The degradation ladder was exercised while the provider was dark:
  // cached repeats and prefix-list negatives, all honestly tagged.
  EXPECT_GT(s.stale, 0);
  EXPECT_GT(s.prefix_only, 0);
  EXPECT_GT(s.fresh, 0);
  world.expect_calls_accounted();
  world.expect_faults_mirrored();
}

TEST(ChaosTest, CrashRestartRecoversWithAFreshEpoch) {
  FaultPlan plan;
  plan.name = "crash-restart";
  plan.seed = chaos_seed(505);
  plan.all.drop_request = 0.05;
  plan.all.drop_response = 0.05;
  plan.per_endpoint["alpha"].crash_at_ms = 800.0;
  plan.per_endpoint["alpha"].restart_at_ms = 2000.0;
  ChaosWorld world(plan, {"alpha", "beta"});
  const std::uint64_t epoch_before = world.server_epoch(0);

  const auto s = world.run(chaos_queries(), /*inter_arrival_ms=*/10.0);
  EXPECT_EQ(s.wrong, 0);
  EXPECT_EQ(world.injector().stats().crashes, 1u);
  EXPECT_EQ(world.injector().stats().restarts, 1u);
  // The rebuilt server came back ABOVE the epoch it crashed at — the
  // floor that keeps pre-crash client caches from matching a new mask.
  EXPECT_GT(world.server_epoch(0), epoch_before);
  // The second provider (plus hedging) carried the outage; the
  // restarted one was probed back into service.
  EXPECT_GE(s.fresh, (s.queries * 8) / 10);
  EXPECT_EQ(world.client().breaker_state("alpha"),
            CircuitBreaker::State::kClosed);
  world.expect_calls_accounted();
  world.expect_faults_mirrored();
}

TEST(ChaosTest, KitchenSinkWithOverloadSheddingStaysAccountable) {
  auto& shed = obs::MetricsRegistry::global().counter(
      "cbl_net_shed_total", {{"endpoint", "alpha"}});
  const auto shed_before = shed.value();

  FaultPlan plan;
  plan.name = "kitchen-sink";
  plan.seed = chaos_seed(606);
  plan.all.drop_request = 0.05;
  plan.all.drop_response = 0.05;
  plan.all.corrupt_prob = 0.05;
  plan.all.truncate_prob = 0.03;
  plan.all.duplicate_prob = 0.08;
  plan.all.latency.spike_prob = 0.05;
  plan.all.latency.spike_ms = 200.0;
  // A slow node with a bounded queue: ~30ms of work per query arriving
  // every ~12ms of virtual time means the backlog fills and sheds.
  net::NodeLimits limits;
  limits.service_ms = 30.0;
  limits.max_inflight = 2;
  ChaosWorld world(plan, {"alpha", "beta"}, ResilienceConfig(), limits);

  const auto s = world.run(chaos_queries(), /*inter_arrival_ms=*/1.0);
  EXPECT_EQ(s.wrong, 0);
  // Overload shedding fired (kRateLimited + retry-after, not a hung
  // queue) and the client still converted most queries into answers.
  EXPECT_GT(shed.value(), shed_before);
  EXPECT_GE(s.fresh, s.queries / 2);
  world.expect_calls_accounted();
  world.expect_faults_mirrored();
}

TEST(ChaosTest, BatchedPipelineShedsBeforeBatchingAndStaysCorrect) {
  auto& reg = obs::MetricsRegistry::global();
  auto& enqueued = reg.counter("cbl_net_pipeline_enqueued_total");
  auto& pipeline_shed = reg.counter("cbl_net_pipeline_shed_total");
  auto& batch_size = reg.histogram("cbl_net_pipeline_batch_size",
                                   obs::Histogram::log_buckets(1.0, 4096.0, 4));
  auto& query_requests =
      reg.counter("cbl_net_requests_total", {{"method", "query"}});
  auto& shed_alpha =
      reg.counter("cbl_net_shed_total", {{"endpoint", "alpha"}});
  auto& shed_beta = reg.counter("cbl_net_shed_total", {{"endpoint", "beta"}});
  const auto enqueued_before = enqueued.value();
  const auto pipeline_shed_before = pipeline_shed.value();
  const auto batches_before = batch_size.count();
  const auto batch_sum_before = batch_size.sum();
  const auto queries_before = query_requests.value();
  const auto node_shed_before = shed_alpha.value() + shed_beta.value();

  FaultPlan plan;
  plan.name = "pipeline-drops-blackout";
  plan.seed = chaos_seed(707);
  plan.all.drop_request = 0.08;
  plan.all.drop_response = 0.08;
  plan.per_endpoint["alpha"].blackouts = {{1500.0, 3000.0}};
  // An overloaded node in front of the batched path: node-level
  // admission sheds BEFORE the pipeline, so refused queries must never
  // occupy a batch slot.
  net::NodeLimits limits;
  limits.service_ms = 30.0;
  limits.max_inflight = 2;
  ChaosWorld world(plan, {"alpha", "beta"}, ResilienceConfig(), limits,
                   /*use_pipeline=*/true);

  const auto s = world.run(chaos_queries(), /*inter_arrival_ms=*/1.0);
  // The batched serving path changes throughput, never answers: no
  // wrong verdict under drops + a blackout + overload shedding.
  EXPECT_EQ(s.wrong, 0);
  EXPECT_GE(s.fresh, s.queries / 2);
  EXPECT_GT(world.injector().stats().dropped_requests, 0u);
  EXPECT_GT(world.injector().stats().blackout_drops, 0u);

  const auto node_shed =
      (shed_alpha.value() + shed_beta.value()) - node_shed_before;
  EXPECT_GT(node_shed, 0u);
  // Shed accounting: every query frame the nodes admitted was enqueued
  // into a pipeline batch, and every shed one never reached it —
  // admitted == arrived - shed, exactly.
  EXPECT_EQ(enqueued.value() - enqueued_before,
            (query_requests.value() - queries_before) - node_shed);
  // The single-threaded harness never fills a shard queue, so the
  // pipeline's own shedding stayed quiet...
  EXPECT_EQ(pipeline_shed.value(), pipeline_shed_before);
  // ...and every enqueued query is accounted for by exactly one batch
  // slot (histogram sum = total coalesced queries).
  EXPECT_EQ(static_cast<std::uint64_t>(batch_size.sum() - batch_sum_before),
            enqueued.value() - enqueued_before);
  EXPECT_GT(batch_size.count(), batches_before);
  world.expect_calls_accounted();
  world.expect_faults_mirrored();
}

// ------------------------------------------- transparency sync under chaos

/// Points the metrics registry at a ManualClock for the test's lifetime
/// (the self-contained tlog worlds below don't go through ChaosWorld).
struct ClockGuard {
  explicit ClockGuard(obs::ManualClock& clock) {
    obs::MetricsRegistry::global().set_clock(&clock);
  }
  ~ClockGuard() {
    obs::MetricsRegistry::global().set_clock(&obs::SteadyClock::instance());
  }
};

double counter_value(const char* name, obs::Labels labels) {
  return obs::MetricsRegistry::global()
      .counter(name, std::move(labels))
      .value();
}

TEST(ChaosTest, TlogSyncUnderCorruptionNeverAppliesUnverifiedState) {
  FaultPlan plan;
  plan.name = "tlog-corruption";
  plan.seed = chaos_seed(808);
  plan.all.corrupt_prob = 0.20;
  plan.all.truncate_prob = 0.08;

  obs::ManualClock clock;
  ClockGuard clock_guard(clock);
  ChaChaRng transport_rng = ChaChaRng::from_string_seed("tlog-chaos-trans");
  net::Transport transport(net::TransportConfig{.latency_ms_min = 1.0,
                                                .latency_ms_max = 5.0,
                                                .drop_rate = 0.0},
                           transport_rng);
  FaultInjector injector(transport, plan, &clock);
  std::cout << "[chaos] " << plan.describe() << "\n";
  SCOPED_TRACE(plan.describe() + "  (replay: CBL_CHAOS_SEED=" +
               std::to_string(plan.seed) + ")");

  ChaChaRng corpus_rng = ChaChaRng::from_string_seed("tlog-chaos-corpus");
  ChaChaRng server_rng = ChaChaRng::from_string_seed("tlog-chaos-server");
  ChaChaRng key_rng = ChaChaRng::from_string_seed("tlog-chaos-key");
  ChaChaRng pub_rng = ChaChaRng::from_string_seed("tlog-chaos-pub");
  ChaChaRng client_rng = ChaChaRng::from_string_seed("tlog-chaos-client");
  const auto corpus = blocklist::generate_corpus(120, corpus_rng).addresses();
  oprf::OprfServer server(oprf::Oracle::fast(), 6, server_rng);
  server.setup(std::span<const std::string>(corpus).first(60));
  const auto key = nizk::SigningKey::generate(key_rng);
  tlog::EpochPublisher publisher(key, pub_rng);
  net::BlocklistServiceNode node(transport, "tlog-chaos", server,
                                 oprf::Oracle::fast(), net::NodeLimits(),
                                 nullptr, &publisher);

  // The client's info handshake rides the same damaged channel; a
  // corrupted handshake throws ProtocolError, which is an honest
  // failure — construction just retries like any transport loss.
  std::optional<net::RemoteBlocklistClient> client;
  for (int attempt = 0; !client && attempt < 20; ++attempt) {
    try {
      client.emplace(injector, "tlog-chaos", client_rng);
    } catch (const ProtocolError&) {
    }
  }
  ASSERT_TRUE(client.has_value());
  tlog::Auditor auditor(key.pk, "tlog-chaos");

  const auto sync_count = [](const char* result) {
    return counter_value("cbl_tlog_sync_total", {{"endpoint", "tlog-chaos"},
                                                 {"result", result}});
  };
  const auto ok_before = sync_count("ok");
  const auto transport_before = sync_count("transport");
  const auto audit_before = sync_count("audit");
  const auto applied_before = counter_value("cbl_tlog_deltas_applied_total",
                                            {{"endpoint", "tlog-chaos"}});
  const auto equiv_before = counter_value("cbl_tlog_equivocations_total",
                                          {{"endpoint", "tlog-chaos"}});
  const auto corrupt_before =
      counter_value("cbl_chaos_faults_total", {{"kind", "corrupt"}});
  const auto truncate_before =
      counter_value("cbl_chaos_faults_total", {{"kind", "truncate"}});

  // Every bucket state the provider has ever committed to, keyed by
  // epoch. The auditor's mirror must ALWAYS be one of these — a sync
  // interrupted by corruption at any wire step must leave the mirror on
  // a published state, never a half-applied one.
  std::map<std::uint64_t, tlog::BucketMap> published;
  published[server.epoch()] = server.bucket_snapshot();

  int ok_syncs = 0;
  int transport_syncs = 0;
  unsigned deltas_applied = 0;
  std::size_t next_fresh = 60;
  for (int i = 0; i < 48; ++i) {
    if (i % 4 == 3 && next_fresh + 2 <= corpus.size()) {
      server.add_entries(
          std::span<const std::string>(corpus).subspan(next_fresh, 2));
      next_fresh += 2;
      published[server.epoch()] = server.bucket_snapshot();
    }
    const auto report = client->verified_sync(auditor);
    // Channel damage against an honest provider must NEVER read as
    // dishonesty: no audit classification, no distrust latch.
    ASSERT_NE(report.failure,
              net::RemoteBlocklistClient::SyncReport::Failure::kAudit)
        << "corruption misclassified as audit evidence at sync #" << i;
    ASSERT_TRUE(auditor.trusted());
    // A sync can verify-and-fold deltas and THEN lose a later wire step:
    // those deltas were individually verified before folding, so they
    // stand (the mirror just stops short of the checkpointed epoch).
    deltas_applied += report.deltas_applied;
    if (report.ok) {
      ++ok_syncs;
      EXPECT_EQ(auditor.mirror_epoch(), server.epoch());
    } else {
      ++transport_syncs;
    }
    if (auditor.has_state()) {
      const auto it = published.find(auditor.mirror_epoch());
      ASSERT_NE(it, published.end());
      ASSERT_EQ(auditor.buckets(), it->second)
          << "mirror left on an unpublished state at sync #" << i;
    }
    clock.advance_ms(5);
  }

  // Both outcomes actually happened under this plan, and the damage was
  // heavy enough to mean something.
  EXPECT_GT(ok_syncs, 0);
  EXPECT_GT(transport_syncs, 0);
  const ChaosStats& cs = injector.stats();
  EXPECT_GT(cs.corrupted, 0u);
  EXPECT_GT(cs.truncated, 0u);

  // Counter reconciliation, exact: every sync outcome and every injected
  // fault is accounted for in cbl::obs.
  EXPECT_EQ(sync_count("ok") - ok_before, ok_syncs);
  EXPECT_EQ(sync_count("transport") - transport_before, transport_syncs);
  EXPECT_EQ(sync_count("audit") - audit_before, 0.0);
  EXPECT_EQ(counter_value("cbl_tlog_deltas_applied_total",
                          {{"endpoint", "tlog-chaos"}}) -
                applied_before,
            deltas_applied);
  EXPECT_EQ(counter_value("cbl_tlog_equivocations_total",
                          {{"endpoint", "tlog-chaos"}}) -
                equiv_before,
            0.0);
  EXPECT_EQ(counter_value("cbl_chaos_faults_total", {{"kind", "corrupt"}}) -
                corrupt_before,
            cs.corrupted);
  EXPECT_EQ(counter_value("cbl_chaos_faults_total", {{"kind", "truncate"}}) -
                truncate_before,
            cs.truncated);

  // The channel heals nothing by itself, but retried syncs converge: run
  // until one lands and check the mirror is the server's current state.
  bool converged = false;
  for (int i = 0; i < 200 && !converged; ++i) {
    converged = client->verified_sync(auditor).ok;
    clock.advance_ms(5);
  }
  ASSERT_TRUE(converged);
  EXPECT_EQ(auditor.buckets(), server.bucket_snapshot());
  EXPECT_TRUE(auditor.trusted());
}

TEST(ChaosTest, CorruptedTlogSyncDegradesHonestlyThenEquivocatorIsCondemned) {
  FaultPlan plan;
  plan.name = "tlog-corruption-ladder";
  plan.seed = chaos_seed(909);
  plan.all.corrupt_prob = 0.25;
  plan.all.truncate_prob = 0.10;

  obs::ManualClock clock;
  ClockGuard clock_guard(clock);
  ChaChaRng transport_rng = ChaChaRng::from_string_seed("tlog-ladder-trans");
  net::Transport transport(net::TransportConfig{.latency_ms_min = 1.0,
                                                .latency_ms_max = 5.0,
                                                .drop_rate = 0.0},
                           transport_rng);
  FaultInjector injector(transport, plan, &clock);
  std::cout << "[chaos] " << plan.describe() << "\n";
  SCOPED_TRACE(plan.describe() + "  (replay: CBL_CHAOS_SEED=" +
               std::to_string(plan.seed) + ")");

  ChaChaRng corpus_rng = ChaChaRng::from_string_seed("tlog-ladder-corpus");
  ChaChaRng server_rng = ChaChaRng::from_string_seed("tlog-ladder-server");
  ChaChaRng key_rng = ChaChaRng::from_string_seed("tlog-ladder-key");
  ChaChaRng pub_rng = ChaChaRng::from_string_seed("tlog-ladder-pub");
  ChaChaRng client_rng = ChaChaRng::from_string_seed("tlog-ladder-client");
  const auto corpus = blocklist::generate_corpus(80, corpus_rng).addresses();
  oprf::OprfServer server(oprf::Oracle::fast(), 6, server_rng);
  server.setup(std::span<const std::string>(corpus).first(60));
  const auto key = nizk::SigningKey::generate(key_rng);
  tlog::EpochPublisher publisher(key, pub_rng);
  auto node = std::make_optional<net::BlocklistServiceNode>(
      transport, "tlog-ladder", server, oprf::Oracle::fast(),
      net::NodeLimits(), nullptr, &publisher);

  net::ResilienceConfig config;
  config.hedge_after_ms = 0.0;  // single provider: nothing to hedge to
  ResilientClient client(injector, {"tlog-ladder"}, client_rng, config,
                         &clock);
  client.pin_tlog_key("tlog-ladder", key.pk);
  const auto distrusted_before =
      counter_value("cbl_tlog_providers_distrusted_total", {});

  // Phase 1: heavy corruption against an HONEST provider. Syncs fail
  // transport-style and queries degrade down the ladder, but the
  // distrust latch never fires and no answer is ever wrong.
  std::size_t next_fresh = 60;
  int answered = 0;
  for (int round = 0; round < 30; ++round) {
    if (round % 5 == 4 && next_fresh + 2 <= corpus.size()) {
      server.add_entries(
          std::span<const std::string>(corpus).subspan(next_fresh, 2));
      next_fresh += 2;
    }
    (void)client.sync();
    ASSERT_FALSE(client.distrusted("tlog-ladder"));
    const tlog::Auditor* auditor = client.tlog_auditor("tlog-ladder");
    if (auditor != nullptr) {
      ASSERT_TRUE(auditor->trusted());
    }

    const auto out = client.query(corpus[round % 60]);
    if (out.verdict != ResilientClient::Outcome::Verdict::kUnknown) {
      ++answered;
      // Every address queried is on the list; any definite answer must
      // say so regardless of which ladder rung produced it.
      EXPECT_EQ(out.verdict, ResilientClient::Outcome::Verdict::kListed)
          << "wrong verdict under corruption at round #" << round;
    } else {
      EXPECT_EQ(out.freshness, Freshness::kUnavailable);
    }
    clock.advance_ms(10);
  }
  EXPECT_GT(answered, 0);
  EXPECT_GT(injector.stats().corrupted, 0u);
  EXPECT_EQ(counter_value("cbl_tlog_providers_distrusted_total", {}),
            distrusted_before);

  // Phase 2: the provider turns equivocator — same tree size, different
  // signed root. Corruption may delay the evidence (damaged copies are
  // transport noise), but the first clean delivery condemns it.
  const tlog::Auditor* auditor = client.tlog_auditor("tlog-ladder");
  ASSERT_NE(auditor, nullptr);
  ASSERT_TRUE(auditor->latest_checkpoint().has_value());
  const auto honest = *auditor->latest_checkpoint();
  auto other_root = honest.root;
  other_root[7] ^= 0x20;
  const auto forged = tlog::sign_checkpoint(key, honest.tree_size, other_root,
                                            honest.epoch, pub_rng);
  node.reset();
  transport.register_endpoint(
      "tlog-ladder", [&forged](ByteView frame) -> std::optional<Bytes> {
        const auto request = net::parse_request_frame(frame);
        if (request && request->method == net::Method::kTlogCheckpoint) {
          return net::encode_response_frame(net::Status::kOk,
                                            forged.to_bytes());
        }
        return net::encode_response_frame(net::Status::kBadRequest);
      });

  for (int round = 0; round < 50 && !client.distrusted("tlog-ladder");
       ++round) {
    (void)client.sync();
    clock.advance_ms(10);
  }
  EXPECT_TRUE(client.distrusted("tlog-ladder"));
  EXPECT_EQ(counter_value("cbl_tlog_providers_distrusted_total", {}),
            distrusted_before + 1);

  // Condemned means condemned: answers come from the ladder, never
  // fresh, and sync() refuses to put the endpoint on the wire at all.
  const auto degraded = client.query(corpus[0]);
  EXPECT_NE(degraded.freshness, Freshness::kFresh);
  if (degraded.verdict != ResilientClient::Outcome::Verdict::kUnknown) {
    EXPECT_EQ(degraded.verdict, ResilientClient::Outcome::Verdict::kListed);
  }
  const auto calls_before = injector.stats().calls;
  EXPECT_EQ(client.sync(), 0u);
  EXPECT_EQ(injector.stats().calls, calls_before);
}

// ----------------------------------------- durable state crash sweeps

/// One step of a provider's published history: the signed checkpoint,
/// the consistency proof from the previous step, the signed delta out
/// of the previous epoch, and the full bucket state it commits to.
struct TimelineStep {
  tlog::Checkpoint checkpoint;
  tlog::ConsistencyProofMsg consistency;   // meaningful when delta is set
  std::optional<tlog::EpochDelta> delta;   // bridges from the previous step
  tlog::BucketMap buckets;
  std::uint64_t epoch = 0;
};

/// Ground truth for the store sweeps, precomputed once: everything an
/// honest provider signed over a short run of epochs, plus one forged
/// equivocating checkpoint for the final tree size.
struct TlogTimeline {
  ec::RistrettoPoint pk;
  std::vector<TimelineStep> steps;
  tlog::Checkpoint forged;
  std::map<std::uint64_t, tlog::BucketMap> published;
};

TlogTimeline build_timeline() {
  ChaChaRng corpus_rng = ChaChaRng::from_string_seed("store-sweep-corpus");
  ChaChaRng server_rng = ChaChaRng::from_string_seed("store-sweep-server");
  ChaChaRng key_rng = ChaChaRng::from_string_seed("store-sweep-key");
  ChaChaRng pub_rng = ChaChaRng::from_string_seed("store-sweep-pub");
  const auto corpus = blocklist::generate_corpus(40, corpus_rng).addresses();
  oprf::OprfServer server(oprf::Oracle::fast(), 6, server_rng);
  server.setup(std::span<const std::string>(corpus).first(28));
  const auto key = nizk::SigningKey::generate(key_rng);
  tlog::EpochPublisher publisher(key, pub_rng);

  TlogTimeline t;
  t.pk = key.pk;
  std::uint64_t prev_epoch = 0;
  std::uint64_t prev_size = 0;
  std::size_t next_fresh = 28;
  for (int i = 0; i < 5; ++i) {
    if (i > 0) {
      server.add_entries(
          std::span<const std::string>(corpus).subspan(next_fresh, 2));
      next_fresh += 2;
    }
    TimelineStep step;
    step.checkpoint = publisher.publish_epoch(server);
    step.epoch = server.epoch();
    step.buckets = server.bucket_snapshot();
    if (i > 0) {
      step.consistency = publisher.consistency(prev_size);
      step.delta = publisher.delta_from(prev_epoch);
      EXPECT_TRUE(step.delta.has_value());
    }
    prev_epoch = step.epoch;
    prev_size = step.checkpoint.tree_size;
    t.published[step.epoch] = step.buckets;
    t.steps.push_back(std::move(step));
  }
  auto other_root = t.steps.back().checkpoint.root;
  other_root[5] ^= 0x40;
  t.forged = tlog::sign_checkpoint(key, t.steps.back().checkpoint.tree_size,
                                   other_root, t.steps.back().epoch, pub_rng);
  return t;
}

/// What the pre-crash run established as durable ground truth.
struct SweepOutcome {
  std::uint64_t last_durable_epoch = 0;  // last note() that reported true
  bool distrust_durable = false;
  bool crashed = false;
};

/// Drives one provider-audit scenario against the (possibly faulty) fs:
/// a durable Auditor and an EpochLog consume the published timeline,
/// then the provider equivocates. The in-memory objects keep going when
/// the disk dies mid-run — only durable claims made BEFORE the crash
/// point are recorded in the outcome.
SweepOutcome drive_scenario(const TlogTimeline& t, FaultFs& ffs) {
  SweepOutcome out;
  store::StateStore store(ffs, "aud");
  tlog::Auditor auditor(t.pk, "crash-sweep", &store);
  store::EpochLog elog(ffs, "srv-epoch.jrnl");
  (void)elog.recover();
  for (const auto& step : t.steps) {
    if (elog.note(step.epoch) && !ffs.crashed()) {
      out.last_durable_epoch = step.epoch;
    }
    (void)auditor.observe_checkpoint(step.checkpoint,
                                     step.delta ? &step.consistency : nullptr);
    if (step.delta) {
      (void)auditor.apply_delta(*step.delta);
    } else {
      (void)auditor.adopt_snapshot(step.buckets);
    }
  }
  EXPECT_EQ(auditor.observe_checkpoint(t.forged, nullptr),
            tlog::Auditor::Status::kEquivocation);
  EXPECT_FALSE(auditor.trusted());
  out.crashed = ffs.crashed();
  out.distrust_durable =
      !auditor.trusted() && auditor.persist_failures() == 0 && !out.crashed;
  return out;
}

/// Rebuilds every durable owner from the post-crash disk and checks the
/// recovery invariant: recovered state is always prefix-consistent with
/// the published history — no unpublished mirror, no rolled-back epoch
/// floor, no lost distrust. With `strict_durability` false (fsync-lie /
/// torn-write plans, where success reports may have been lies) only the
/// fail-safe half is asserted.
void assert_recovered(const TlogTimeline& t, store::MemFs& mem,
                      const SweepOutcome& out, bool strict_durability,
                      const std::string& trace) {
  SCOPED_TRACE(trace);
  store::StateStore store(mem, "aud");
  tlog::Auditor rec(t.pk, "crash-sweep-rec", &store);
  store::EpochLog elog(mem, "srv-epoch.jrnl");
  const std::uint64_t floor = elog.recover();
  EXPECT_LE(floor, t.steps.back().epoch);
  if (strict_durability) {
    EXPECT_GE(floor, out.last_durable_epoch) << "epoch floor rolled back";
  }
  if (rec.has_state()) {
    const auto it = t.published.find(rec.mirror_epoch());
    ASSERT_NE(it, t.published.end()) << "mirror at an unpublished epoch";
    EXPECT_EQ(rec.buckets(), it->second) << "mirror not a published state";
  }
  if (const auto latest = rec.latest_checkpoint()) {
    bool known = false;
    for (const auto& step : t.steps) {
      known |= step.checkpoint.tree_size == latest->tree_size &&
               step.checkpoint.root == latest->root;
    }
    EXPECT_TRUE(known) << "recovered checkpoint the provider never signed";
  }
  if (strict_durability && out.distrust_durable) {
    EXPECT_FALSE(rec.trusted()) << "durable distrust was lost";
    ASSERT_TRUE(rec.equivocation_evidence().has_value());
    EXPECT_TRUE(rec.equivocation_evidence()->proves_equivocation(t.pk));
  }
  // A recovered trusted mirror resumes DELTA sync from where it stands:
  // the published artifacts bridging out of its epoch fold cleanly.
  if (rec.trusted() && rec.has_state()) {
    for (const auto& step : t.steps) {
      if (!step.delta || step.delta->from_epoch != rec.mirror_epoch()) {
        continue;
      }
      const auto* consistency =
          rec.latest_checkpoint()->tree_size < step.checkpoint.tree_size
              ? &step.consistency
              : nullptr;
      EXPECT_EQ(rec.observe_checkpoint(step.checkpoint, consistency),
                tlog::Auditor::Status::kOk);
      EXPECT_EQ(rec.apply_delta(*step.delta), tlog::Auditor::Status::kOk);
      EXPECT_EQ(rec.buckets(), step.buckets);
    }
  }
}

// The tentpole acceptance sweep: a fault-free probe run counts every
// mutating fs operation the scenario performs, then the scenario is
// re-run with a crash injected at EVERY operation boundary; after each
// power cut the durable owners are rebuilt from disk and the recovery
// invariant is asserted. Replayable from the printed seed.
TEST(ChaosTest, CrashSweepAtEveryFsOpBoundaryRecoversConsistently) {
  const TlogTimeline t = build_timeline();

  FsFaultPlan probe;
  probe.name = "store-crash-probe";
  probe.seed = chaos_seed(1010);
  std::uint64_t total_ops = 0;
  {
    store::MemFs mem;
    FaultFs ffs(mem, probe);
    const auto out = drive_scenario(t, ffs);
    EXPECT_FALSE(out.crashed);
    EXPECT_TRUE(out.distrust_durable);
    total_ops = ffs.stats().ops;
    mem.crash();  // even the clean run must survive a power cut
    assert_recovered(t, mem, out, /*strict_durability=*/true,
                     "fault-free baseline");
  }
  ASSERT_GT(total_ops, 20u);
  std::cout << "[chaos] store crash sweep: " << total_ops
            << " op boundaries (replay: CBL_CHAOS_SEED=" << probe.seed
            << ")\n";

  for (std::uint64_t k = 0; k < total_ops; ++k) {
    FsFaultPlan plan;
    plan.name = "store-crash-sweep";
    plan.seed = chaos_seed(1010);
    plan.crash_at_op = static_cast<std::int64_t>(k);
    store::MemFs mem;
    FaultFs ffs(mem, plan);
    const auto out = drive_scenario(t, ffs);
    EXPECT_TRUE(ffs.crashed());
    EXPECT_EQ(ffs.stats().crashes, 1u);
    mem.crash();
    assert_recovered(t, mem, out, /*strict_durability=*/true,
                     plan.describe() + "  (replay: CBL_CHAOS_SEED=" +
                         std::to_string(plan.seed) + ")");
  }
}

// Probabilistic fs gremlins — short writes, torn writes, bit flips,
// fsync lies, rename failures — over many seeded rounds. Durability
// REPORTS can be lies here, so only the fail-safe half of the invariant
// is asserted: whatever recovery yields is prefix-consistent with
// published history, and damaged state is dropped, never served.
TEST(ChaosTest, StoreGremlinsNeverYieldUnpublishedRecoveredState) {
  const TlogTimeline t = build_timeline();
  const std::uint64_t base_seed = chaos_seed(1111);
  FsFaultStats totals;
  const auto fs_fault_before = [](const char* kind) {
    return counter_value("cbl_chaos_fs_faults_total", {{"kind", kind}});
  };
  const double short_before = fs_fault_before("short_write");
  const double torn_before = fs_fault_before("torn_write");
  const double flip_before = fs_fault_before("bit_flip");
  const double lie_before = fs_fault_before("fsync_lie");
  const double rename_before = fs_fault_before("rename_fail");

  for (std::uint64_t round = 0; round < 24; ++round) {
    FsFaultPlan plan;
    plan.name = "store-gremlins";
    plan.seed = base_seed + round;
    plan.short_write_prob = 0.06;
    plan.torn_write_prob = 0.06;
    plan.bit_flip_prob = 0.04;
    plan.fsync_lie_prob = 0.06;
    plan.rename_fail_prob = 0.06;
    store::MemFs mem;
    FaultFs ffs(mem, plan);
    const auto out = drive_scenario(t, ffs);
    mem.crash();
    assert_recovered(t, mem, out, /*strict_durability=*/false,
                     plan.describe() + "  (replay: CBL_CHAOS_SEED=" +
                         std::to_string(plan.seed) + ")");
    const auto st = ffs.stats();
    totals.ops += st.ops;
    totals.short_writes += st.short_writes;
    totals.torn_writes += st.torn_writes;
    totals.bit_flips += st.bit_flips;
    totals.fsync_lies += st.fsync_lies;
    totals.rename_fails += st.rename_fails;
  }
  // Every fault class actually fired across the rounds, and the obs
  // counters mirror the local stats exactly.
  EXPECT_GT(totals.short_writes, 0u);
  EXPECT_GT(totals.torn_writes, 0u);
  EXPECT_GT(totals.bit_flips, 0u);
  EXPECT_GT(totals.fsync_lies, 0u);
  EXPECT_GT(totals.rename_fails, 0u);
  EXPECT_EQ(fs_fault_before("short_write") - short_before,
            totals.short_writes);
  EXPECT_EQ(fs_fault_before("torn_write") - torn_before, totals.torn_writes);
  EXPECT_EQ(fs_fault_before("bit_flip") - flip_before, totals.bit_flips);
  EXPECT_EQ(fs_fault_before("fsync_lie") - lie_before, totals.fsync_lies);
  EXPECT_EQ(fs_fault_before("rename_fail") - rename_before,
            totals.rename_fails);
}

}  // namespace
}  // namespace cbl::chaos
