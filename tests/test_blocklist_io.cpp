// Tests for blocklist import/export: round-trip stability, malformed-
// line tolerance, merge semantics, and canonical output ordering.
#include <gtest/gtest.h>

#include "blocklist/generator.h"
#include "blocklist/io.h"
#include "common/rng.h"

namespace cbl::blocklist {
namespace {

using cbl::ChaChaRng;

TEST(BlocklistIo, EntryLineRoundTrip) {
  Entry e;
  e.address = "0x5aAeb6053F3E94C9b9A09f33669435E7Ef1BeAed";
  e.chain = Chain::kEthereum;
  e.category = Category::kPonzi;
  e.first_reported = 1'650'000'000;
  e.report_count = 7;

  const auto line = format_entry(e);
  const auto parsed = parse_entry_line(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->address, e.address);
  EXPECT_EQ(parsed->chain, e.chain);
  EXPECT_EQ(parsed->category, e.category);
  EXPECT_EQ(parsed->first_reported, e.first_reported);
  EXPECT_EQ(parsed->report_count, e.report_count);
}

TEST(BlocklistIo, MalformedLinesRejected) {
  EXPECT_FALSE(parse_entry_line("").has_value());
  EXPECT_FALSE(parse_entry_line("too\tfew\tfields").has_value());
  EXPECT_FALSE(
      parse_entry_line("addr\tbitcoin\tphishing\t123\t4\textra").has_value());
  EXPECT_FALSE(parse_entry_line("addr\tdogecoin\tphishing\t123\t4").has_value());
  EXPECT_FALSE(parse_entry_line("addr\tbitcoin\tbadcat\t123\t4").has_value());
  EXPECT_FALSE(parse_entry_line("addr\tbitcoin\tphishing\tnotanum\t4").has_value());
  EXPECT_FALSE(parse_entry_line("addr\tbitcoin\tphishing\t123\t0").has_value());
  EXPECT_FALSE(parse_entry_line("\tbitcoin\tphishing\t123\t4").has_value());
  EXPECT_FALSE(parse_entry_line("addr\tbitcoin\tphishing\t-5\t4").has_value());
}

TEST(BlocklistIo, StoreRoundTripIsByteStable) {
  auto rng = ChaChaRng::from_string_seed("io-corpus");
  const auto store = generate_corpus(200, rng);

  const std::string exported = export_store_to_string(store);
  Store reimported;
  const auto stats = import_string_into_store(exported, reimported);
  EXPECT_EQ(stats.entries_imported, store.size());
  EXPECT_EQ(stats.lines_rejected, 0u);
  EXPECT_EQ(reimported.size(), store.size());

  // Canonical form: export(import(export(s))) == export(s).
  EXPECT_EQ(export_store_to_string(reimported), exported);
}

TEST(BlocklistIo, ImportMergesDuplicates) {
  Store store;
  const std::string feed =
      "addr1\tbitcoin\tphishing\t100\t2\n"
      "addr1\tbitcoin\tphishing\t50\t3\n"
      "addr2\tbitcoin\tponzi\t200\t1\n";
  const auto stats = import_string_into_store(feed, store);
  EXPECT_EQ(stats.entries_imported, 2u);
  EXPECT_EQ(stats.entries_merged, 1u);
  const auto merged = store.lookup("addr1");
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(merged->report_count, 5u);
  EXPECT_EQ(merged->first_reported, 50u);  // earliest wins
}

TEST(BlocklistIo, CommentsAndBlanksSkippedBadLinesCounted) {
  Store store;
  const std::string feed =
      "# header comment\n"
      "\n"
      "addr1\tbitcoin\tphishing\t100\t1\n"
      "garbage line without tabs\n"
      "addr2\tethereum\transomware\t200\t2\n";
  const auto stats = import_string_into_store(feed, store);
  EXPECT_EQ(stats.lines_total, 3u);  // comments/blanks not counted
  EXPECT_EQ(stats.entries_imported, 2u);
  EXPECT_EQ(stats.lines_rejected, 1u);
  EXPECT_EQ(store.size(), 2u);
}

TEST(BlocklistIo, ExportedFeedServesCorrectly) {
  // The interchange format is good enough to move a blocklist between
  // two independent provider processes.
  auto rng = ChaChaRng::from_string_seed("io-serve");
  const auto original = generate_corpus(60, rng);
  Store received;
  import_string_into_store(export_store_to_string(original), received);

  for (const auto& addr : original.addresses()) {
    EXPECT_TRUE(received.contains(addr));
  }
}

}  // namespace
}  // namespace cbl::blocklist
