// Tests for cbl::store, the crash-safe durability layer: the MemFs
// power-loss model, journal recovery (torn tails vs corruption, swept
// at every byte boundary), atomic snapshot commits, StateStore
// checkpointing, the EpochLog floor, FaultFs determinism — and the
// restart-survival regressions for the durable tlog Auditor (distrust
// latch, equivocation evidence, delta-resume on the persisted mirror).
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "blocklist/generator.h"
#include "chaos/fault_fs.h"
#include "common/rng.h"
#include "net/resilient_client.h"
#include "net/service_node.h"
#include "oprf/server.h"
#include "store/fs.h"
#include "store/journal.h"
#include "store/snapshot.h"
#include "store/state_store.h"
#include "tlog/tlog.h"

namespace cbl {
namespace {

using chaos::FaultFs;
using chaos::FsFaultPlan;
using store::MemFs;
using store::RecoverStatus;

double counter_value(const char* name, obs::Labels labels) {
  return obs::MetricsRegistry::global()
      .counter(name, std::move(labels))
      .value();
}

// ------------------------------------------------------------------ MemFs

TEST(MemFsTest, CrashRevertsToTheDurableView) {
  MemFs fs;
  ASSERT_TRUE(fs.write("a", to_bytes("v1")));
  ASSERT_TRUE(fs.sync("a"));
  ASSERT_TRUE(fs.write("a", to_bytes("v2-unsynced")));
  ASSERT_TRUE(fs.write("b", to_bytes("never-synced")));
  ASSERT_TRUE(fs.append("a", to_bytes("!")));

  fs.crash();
  EXPECT_EQ(fs.read("a"), to_bytes("v1"));
  EXPECT_FALSE(fs.exists("b"));

  // Appends after a sync are volatile until the next sync.
  ASSERT_TRUE(fs.append("a", to_bytes("+tail")));
  fs.crash();
  EXPECT_EQ(fs.read("a"), to_bytes("v1"));
  ASSERT_TRUE(fs.append("a", to_bytes("+tail")));
  ASSERT_TRUE(fs.sync("a"));
  fs.crash();
  EXPECT_EQ(fs.read("a"), to_bytes("v1+tail"));
}

TEST(MemFsTest, RenameIsDurableOnlyAfterDirSync) {
  MemFs fs;
  ASSERT_TRUE(fs.write("final", to_bytes("old")));
  ASSERT_TRUE(fs.sync("final"));
  ASSERT_TRUE(fs.write("tmp", to_bytes("new")));
  ASSERT_TRUE(fs.sync("tmp"));
  ASSERT_TRUE(fs.rename("tmp", "final"));
  EXPECT_EQ(fs.read("final"), to_bytes("new"));  // live view switched

  fs.crash();  // ...but the namespace change was never made durable
  EXPECT_EQ(fs.read("final"), to_bytes("old"));
  EXPECT_EQ(fs.read("tmp"), to_bytes("new"));

  ASSERT_TRUE(fs.rename("tmp", "final"));
  ASSERT_TRUE(fs.sync_dir());
  fs.crash();
  EXPECT_EQ(fs.read("final"), to_bytes("new"));
  EXPECT_FALSE(fs.exists("tmp"));

  // Post-crash images are independent copies: mutating the live file
  // must not bleed into what the NEXT crash restores.
  ASSERT_TRUE(fs.append("final", to_bytes("-dirty")));
  fs.crash();
  EXPECT_EQ(fs.read("final"), to_bytes("new"));

  ASSERT_TRUE(fs.remove("final"));
  EXPECT_FALSE(fs.exists("final"));
  fs.crash();  // unlink not dir-synced: the file comes back
  EXPECT_TRUE(fs.exists("final"));
  ASSERT_TRUE(fs.remove("final"));
  ASSERT_TRUE(fs.sync_dir());
  fs.crash();
  EXPECT_FALSE(fs.exists("final"));
}

// ---------------------------------------------------------------- journal

TEST(JournalTest, RecordParserIsExactAboutFraming) {
  const Bytes payload = to_bytes("hello journal");
  const Bytes frame = store::encode_journal_record(payload);
  ASSERT_EQ(frame.size(), 4 + store::kJournalChecksumSize + payload.size());

  const auto parsed = store::parse_journal_record(frame);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, payload);

  // Truncation at every prefix, trailing garbage, flipped checksum.
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    EXPECT_FALSE(
        store::parse_journal_record(ByteView(frame.data(), cut)).has_value())
        << "cut=" << cut;
  }
  Bytes trailing = frame;
  trailing.push_back(0x00);
  EXPECT_FALSE(store::parse_journal_record(trailing).has_value());
  Bytes flipped = frame;
  flipped[5] ^= 0x01;  // inside the checksum
  EXPECT_FALSE(store::parse_journal_record(flipped).has_value());
}

TEST(JournalTest, SyncedAppendsSurviveACrash) {
  MemFs fs;
  store::Journal journal(fs, "j");
  const auto fresh = journal.recover();
  EXPECT_EQ(fresh.status, RecoverStatus::kOk);
  EXPECT_TRUE(fresh.records.empty());

  std::vector<Bytes> payloads;
  for (int i = 0; i < 5; ++i) {
    payloads.push_back(to_bytes("record-" + std::to_string(i)));
    ASSERT_TRUE(journal.append(payloads.back()));
  }
  EXPECT_EQ(journal.record_count(), 5u);

  fs.crash();
  store::Journal reborn(fs, "j");
  const auto recovered = reborn.recover();
  EXPECT_EQ(recovered.status, RecoverStatus::kOk);
  EXPECT_EQ(recovered.records, payloads);
  EXPECT_EQ(recovered.dropped_bytes, 0u);
}

/// Builds a well-formed journal file image with `n` records.
std::vector<Bytes> journal_image(int n, Bytes* image) {
  *image = to_bytes(store::kJournalMagic);
  std::vector<Bytes> payloads;
  for (int i = 0; i < n; ++i) {
    payloads.push_back(to_bytes("payload-" + std::to_string(i) + "-x"));
    append(*image, store::encode_journal_record(payloads.back()));
  }
  return payloads;
}

// The record-boundary sweep, byte-granular: truncating the file at
// EVERY offset must classify as a torn tail (or a clean file when the
// cut lands exactly on a frame boundary), keep exactly the verified
// prefix, and never fabricate or alter a record.
TEST(JournalTest, TruncationAtEveryByteKeepsExactlyTheVerifiedPrefix) {
  Bytes image;
  const auto payloads = journal_image(4, &image);

  std::vector<std::size_t> boundaries;  // file sizes that are clean
  std::size_t at = to_bytes(store::kJournalMagic).size();
  boundaries.push_back(at);
  for (const auto& p : payloads) {
    at += 4 + store::kJournalChecksumSize + p.size();
    boundaries.push_back(at);
  }
  ASSERT_EQ(at, image.size());

  MemFs fs;
  for (std::size_t cut = 0; cut <= image.size(); ++cut) {
    SCOPED_TRACE("cut=" + std::to_string(cut));
    const auto scanned = store::scan_journal(ByteView(image.data(), cut));
    std::size_t complete = 0;
    while (complete < boundaries.size() && boundaries[complete] <= cut) {
      ++complete;
    }
    const std::size_t expect_records = complete == 0 ? 0 : complete - 1;
    ASSERT_EQ(scanned.records.size(), expect_records);
    for (std::size_t i = 0; i < scanned.records.size(); ++i) {
      EXPECT_EQ(scanned.records[i], payloads[i]);
    }
    const bool on_boundary =
        complete > 0 && boundaries[complete - 1] == cut;
    EXPECT_EQ(scanned.status,
              cut == 0 ? RecoverStatus::kOk
                       : (on_boundary ? RecoverStatus::kOk
                                      : RecoverStatus::kTornTail));
    EXPECT_NE(scanned.status, RecoverStatus::kCorrupt);

    // Journal::recover normalizes the torn file on disk and the journal
    // accepts appends again.
    ASSERT_TRUE(fs.write("t", ByteView(image.data(), cut)));
    ASSERT_TRUE(fs.sync("t"));
    store::Journal journal(fs, "t");
    const auto recovered = journal.recover();
    EXPECT_EQ(recovered.records.size(), expect_records);
    ASSERT_TRUE(journal.append(to_bytes("post-recovery")));
    store::Journal again(fs, "t");
    const auto reread = again.recover();
    EXPECT_EQ(reread.status, RecoverStatus::kOk);
    ASSERT_EQ(reread.records.size(), expect_records + 1);
    EXPECT_EQ(reread.records.back(), to_bytes("post-recovery"));
  }
}

// Bit rot: flipping one bit at every byte offset of a complete file
// must never yield an unverified or altered record — the scan returns a
// strict prefix of the original records and never reports kOk.
TEST(JournalTest, BitFlipAtEveryByteNeverYieldsAnUnverifiedRecord) {
  Bytes image;
  const auto payloads = journal_image(3, &image);
  for (std::size_t i = 0; i < image.size(); ++i) {
    SCOPED_TRACE("flip at byte " + std::to_string(i));
    Bytes damaged = image;
    damaged[i] ^= static_cast<std::uint8_t>(1u << (i % 8));
    const auto scanned = store::scan_journal(damaged);
    EXPECT_NE(scanned.status, RecoverStatus::kOk);
    ASSERT_LT(scanned.records.size(), payloads.size());
    for (std::size_t r = 0; r < scanned.records.size(); ++r) {
      EXPECT_EQ(scanned.records[r], payloads[r]);
    }
  }
}

// --------------------------------------------------------------- snapshot

TEST(SnapshotTest, ParserIsTotalOverDamage) {
  const Bytes payload = to_bytes("snapshot payload bytes");
  const Bytes image = store::encode_snapshot(payload);

  const auto parsed = store::parse_snapshot(image);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, payload);

  for (std::size_t cut = 0; cut < image.size(); ++cut) {
    EXPECT_FALSE(store::parse_snapshot(ByteView(image.data(), cut)))
        << "cut=" << cut;
  }
  for (std::size_t i = 0; i < image.size(); ++i) {
    Bytes damaged = image;
    damaged[i] ^= static_cast<std::uint8_t>(1u << (i % 8));
    EXPECT_FALSE(store::parse_snapshot(damaged)) << "flip at " << i;
  }
  Bytes trailing = image;
  trailing.push_back(0x00);
  EXPECT_FALSE(store::parse_snapshot(trailing));
}

// The commit sequence is write tmp / sync tmp / rename / sync dir — a
// crash injected at every one of those four boundaries must leave the
// OLD snapshot as the durable one, and only a complete commit switches.
TEST(SnapshotTest, CommitIsAtomicAtEveryOperationBoundary) {
  for (std::int64_t crash_at = 0; crash_at <= 4; ++crash_at) {
    SCOPED_TRACE("crash_at_op=" + std::to_string(crash_at));
    MemFs mem;
    ASSERT_TRUE(store::write_snapshot(mem, "s", to_bytes("v1")));
    mem.crash();
    ASSERT_EQ(store::load_snapshot(mem, "s"), to_bytes("v1"));

    FsFaultPlan plan;
    plan.name = "snap-commit";
    plan.crash_at_op = crash_at;
    FaultFs ffs(mem, plan);
    const bool ok = store::write_snapshot(ffs, "s", to_bytes("v2"));
    mem.crash();
    const auto after = store::load_snapshot(mem, "s");
    ASSERT_TRUE(after.has_value());
    if (crash_at < 4) {
      EXPECT_FALSE(ok);
      EXPECT_EQ(*after, to_bytes("v1")) << "commit tore";
    } else {
      EXPECT_TRUE(ok);  // all four ops ran before the crash point
      EXPECT_EQ(*after, to_bytes("v2"));
    }
  }

  // A refused rename fails the commit and leaves the old image durable
  // AND live.
  MemFs mem;
  ASSERT_TRUE(store::write_snapshot(mem, "s", to_bytes("v1")));
  FsFaultPlan plan;
  plan.name = "snap-rename-fail";
  plan.rename_fail_prob = 1.0;
  FaultFs ffs(mem, plan);
  EXPECT_FALSE(store::write_snapshot(ffs, "s", to_bytes("v2")));
  EXPECT_EQ(store::load_snapshot(mem, "s"), to_bytes("v1"));
}

// ------------------------------------------------------------- StateStore

TEST(StateStoreTest, CheckpointPlusJournalReplayAcrossCrash) {
  MemFs fs;
  {
    store::StateStore store(fs, "st");
    const auto fresh = store.load();
    EXPECT_FALSE(fresh.snapshot.has_value());
    EXPECT_TRUE(fresh.records.empty());
    EXPECT_FALSE(fresh.corrupt);

    ASSERT_TRUE(store.append(to_bytes("r1")));
    ASSERT_TRUE(store.append(to_bytes("r2")));
    ASSERT_TRUE(store.checkpoint(to_bytes("S1")));
    EXPECT_EQ(store.journal_records(), 0u);
    ASSERT_TRUE(store.append(to_bytes("r3")));
  }
  fs.crash();
  {
    store::StateStore store(fs, "st");
    const auto loaded = store.load();
    ASSERT_TRUE(loaded.snapshot.has_value());
    EXPECT_EQ(*loaded.snapshot, to_bytes("S1"));
    EXPECT_EQ(loaded.records, std::vector<Bytes>{to_bytes("r3")});
    EXPECT_FALSE(loaded.corrupt);
  }

  // At-rest damage to the snapshot is CORRUPTION, not a torn tail: the
  // load says so and owners must fail safe to a full resync.
  auto snap = fs.read("st.snap");
  ASSERT_TRUE(snap.has_value());
  (*snap)[snap->size() / 2] ^= 0x10;
  ASSERT_TRUE(fs.write("st.snap", *snap));
  ASSERT_TRUE(fs.sync("st.snap"));
  store::StateStore store(fs, "st");
  const auto damaged = store.load();
  EXPECT_FALSE(damaged.snapshot.has_value());
  EXPECT_TRUE(damaged.snapshot_present_but_damaged);
  EXPECT_TRUE(damaged.corrupt);
  EXPECT_EQ(damaged.records, std::vector<Bytes>{to_bytes("r3")});
}

// checkpoint() = snapshot commit (4 fs ops) then journal reset (2 fs
// ops). A crash at every boundary leaves either old snapshot + old
// journal, or new snapshot + old journal (the documented replay-over-
// newer-snapshot window) — never a torn or empty intermediate.
TEST(StateStoreTest, CrashBetweenSnapshotCommitAndJournalReset) {
  const std::vector<Bytes> old_records = {to_bytes("a"), to_bytes("b")};
  for (std::int64_t crash_at = 0; crash_at <= 6; ++crash_at) {
    SCOPED_TRACE("crash_at_op=" + std::to_string(crash_at));
    MemFs mem;
    {
      store::StateStore setup(mem, "st");
      (void)setup.load();
      ASSERT_TRUE(setup.checkpoint(to_bytes("OLD")));
      for (const auto& r : old_records) ASSERT_TRUE(setup.append(r));
    }
    FsFaultPlan plan;
    plan.name = "ckpt-sweep";
    plan.crash_at_op = crash_at;
    FaultFs ffs(mem, plan);
    {
      store::StateStore store(ffs, "st");
      (void)store.load();
      const bool ok = store.checkpoint(to_bytes("NEW"));
      EXPECT_EQ(ok, crash_at >= 6);  // any earlier crash fails a step
    }
    mem.crash();
    store::StateStore reborn(mem, "st");
    const auto loaded = reborn.load();
    EXPECT_FALSE(loaded.corrupt);
    ASSERT_TRUE(loaded.snapshot.has_value());
    if (crash_at < 4) {
      EXPECT_EQ(*loaded.snapshot, to_bytes("OLD"));
      EXPECT_EQ(loaded.records, old_records);
    } else {
      EXPECT_EQ(*loaded.snapshot, to_bytes("NEW"));
      // Journal reset was cut short: the OLD records are still there
      // (their replay must be harmless — the owners' monotonicity
      // contract) or already durably gone.
      if (!loaded.records.empty()) {
        EXPECT_EQ(loaded.records, old_records);
      }
    }
  }
}

// --------------------------------------------------------------- EpochLog

TEST(EpochLogTest, FloorIsMonotoneDurableAndCompacts) {
  MemFs fs;
  {
    store::EpochLog log(fs, "e.jrnl");
    EXPECT_EQ(log.recover(), 0u);
    EXPECT_TRUE(log.note(1));
    EXPECT_TRUE(log.note(2));
    EXPECT_TRUE(log.note(3));
    EXPECT_TRUE(log.note(2));  // at/below the floor: durable no-op
    EXPECT_EQ(log.floor(), 3u);
  }
  fs.crash();

  const std::size_t full_size = fs.read("e.jrnl")->size();
  store::EpochLog reborn(fs, "e.jrnl");
  EXPECT_EQ(reborn.recover(), 3u);
  // Recovery compacted three records down to one.
  EXPECT_LT(fs.read("e.jrnl")->size(), full_size);
  EXPECT_TRUE(reborn.note(5));
  fs.crash();

  // A torn tail (half-appended note) is truncated, not fatal.
  ASSERT_TRUE(fs.append("e.jrnl", Bytes{0x09, 0x00}));
  ASSERT_TRUE(fs.sync("e.jrnl"));
  store::EpochLog torn(fs, "e.jrnl");
  EXPECT_EQ(torn.recover(), 5u);
}

// ---------------------------------------------------------------- FaultFs

TEST(FaultFsTest, SameSeedSameFaultsAndCountersMirrorStats) {
  const auto drive = [](FaultFs& fs) {
    for (int i = 0; i < 60; ++i) {
      const std::string path = "f" + std::to_string(i % 4);
      (void)fs.write(path, to_bytes("content-" + std::to_string(i)));
      (void)fs.append(path, to_bytes("+t"));
      (void)fs.sync(path);
      if (i % 7 == 0) (void)fs.rename(path, path + ".r");
      if (i % 11 == 0) (void)fs.sync_dir();
    }
  };
  FsFaultPlan plan;
  plan.name = "determinism";
  plan.seed = 424242;
  plan.short_write_prob = 0.1;
  plan.torn_write_prob = 0.1;
  plan.bit_flip_prob = 0.1;
  plan.fsync_lie_prob = 0.1;
  plan.rename_fail_prob = 0.1;

  const double short_before =
      counter_value("cbl_chaos_fs_faults_total", {{"kind", "short_write"}});

  MemFs mem_a;
  FaultFs fs_a(mem_a, plan);
  drive(fs_a);
  MemFs mem_b;
  FaultFs fs_b(mem_b, plan);
  drive(fs_b);

  const auto sa = fs_a.stats();
  const auto sb = fs_b.stats();
  EXPECT_EQ(sa.ops, sb.ops);
  EXPECT_EQ(sa.short_writes, sb.short_writes);
  EXPECT_EQ(sa.torn_writes, sb.torn_writes);
  EXPECT_EQ(sa.bit_flips, sb.bit_flips);
  EXPECT_EQ(sa.fsync_lies, sb.fsync_lies);
  EXPECT_EQ(sa.rename_fails, sb.rename_fails);
  EXPECT_GT(sa.short_writes + sa.torn_writes + sa.bit_flips + sa.fsync_lies +
                sa.rename_fails,
            0u);

  // Identical fault schedules leave bit-identical durable worlds.
  mem_a.crash();
  mem_b.crash();
  for (int i = 0; i < 4; ++i) {
    const std::string path = "f" + std::to_string(i);
    EXPECT_EQ(mem_a.read(path), mem_b.read(path)) << path;
    EXPECT_EQ(mem_a.read(path + ".r"), mem_b.read(path + ".r")) << path;
  }

  EXPECT_EQ(counter_value("cbl_chaos_fs_faults_total",
                          {{"kind", "short_write"}}) -
                short_before,
            static_cast<double>(sa.short_writes + sb.short_writes));
}

TEST(FaultFsTest, CrashPointAppliesAPrefixThenRefusesEverything) {
  MemFs mem;
  FsFaultPlan plan;
  plan.name = "crash-point";
  plan.seed = 7;
  plan.crash_at_op = 2;
  FaultFs fs(mem, plan);

  EXPECT_TRUE(fs.write("a", to_bytes("first")));   // op 0
  EXPECT_TRUE(fs.sync("a"));                       // op 1
  EXPECT_FALSE(fs.crashed());
  EXPECT_FALSE(fs.write("b", to_bytes("second"))); // op 2: the crash
  EXPECT_TRUE(fs.crashed());
  EXPECT_FALSE(fs.sync("b"));
  EXPECT_FALSE(fs.write("c", to_bytes("third")));
  EXPECT_FALSE(fs.rename("a", "z"));
  EXPECT_FALSE(fs.sync_dir());
  // Reads still pass through (the harness inspects the dead disk).
  EXPECT_EQ(fs.read("a"), to_bytes("first"));

  const auto stats = fs.stats();
  EXPECT_EQ(stats.crashes, 1u);
  EXPECT_GE(stats.post_crash_fails, 4u);

  mem.crash();
  EXPECT_EQ(mem.read("a"), to_bytes("first"));
  // The crash op applied at most a prefix of "second".
  const auto b = mem.read("b");
  if (b.has_value()) {
    EXPECT_LE(b->size(), to_bytes("second").size());
  }
}

// ------------------------------------------- OPRF epoch floor durability

TEST(StoreTest, EpochListenerDrivesADurableFloorAcrossRestart) {
  ChaChaRng corpus_rng = ChaChaRng::from_string_seed("floor-corpus");
  ChaChaRng server_rng = ChaChaRng::from_string_seed("floor-server");
  const auto corpus = blocklist::generate_corpus(20, corpus_rng).addresses();

  MemFs fs;
  std::vector<std::uint64_t> fired;
  {
    oprf::OprfServer server(oprf::Oracle::fast(), 6, server_rng);
    server.setup(std::span<const std::string>(corpus).first(10));
    store::EpochLog log(fs, "epoch.jrnl");
    EXPECT_EQ(log.recover(), 0u);
    server.set_epoch_listener([&fired, &log](std::uint64_t epoch) {
      fired.push_back(epoch);
      (void)log.note(epoch);
    });
    // Installing on a live server fires immediately with the current
    // epoch, so no served epoch predates the listener.
    ASSERT_EQ(fired.size(), 1u);
    EXPECT_EQ(fired[0], server.epoch());

    server.add_entries(std::span<const std::string>(corpus).subspan(10, 2));
    server.add_entries(std::span<const std::string>(corpus).subspan(12, 2));
    ASSERT_EQ(fired.size(), 3u);
    EXPECT_EQ(fired.back(), server.epoch());
    EXPECT_EQ(log.floor(), server.epoch());
  }

  fs.crash();
  store::EpochLog log(fs, "epoch.jrnl");
  const std::uint64_t floor = log.recover();
  EXPECT_EQ(floor, fired.back());

  // The rebuilt server restores the floor and its next epoch strictly
  // exceeds everything ever served — no epoch number is recycled.
  oprf::OprfServer reborn(oprf::Oracle::fast(), 6, server_rng);
  reborn.restore_epoch(floor);
  reborn.set_epoch_listener([&log](std::uint64_t epoch) {
    (void)log.note(epoch);
  });
  reborn.setup(std::span<const std::string>(corpus).first(10));
  EXPECT_GT(reborn.epoch(), floor);
  EXPECT_EQ(log.floor(), reborn.epoch());
}

// --------------------------------------- durable auditor restart survival

// The headline regression: a client whose auditor persisted its mirror
// resumes DELTA sync after a crash-restart — wire bytes a small
// fraction of the full re-download a memoryless client would pay — and
// the recovered mirror keeps verifying against live provider state.
TEST(StoreTest, AuditorStateSurvivesRestartAndResumesDeltaSync) {
  ChaChaRng corpus_rng = ChaChaRng::from_string_seed("durable-corpus");
  ChaChaRng server_rng = ChaChaRng::from_string_seed("durable-server");
  ChaChaRng key_rng = ChaChaRng::from_string_seed("durable-key");
  ChaChaRng pub_rng = ChaChaRng::from_string_seed("durable-pub");
  ChaChaRng client_rng = ChaChaRng::from_string_seed("durable-client");
  ChaChaRng transport_rng = ChaChaRng::from_string_seed("durable-trans");

  const auto corpus = blocklist::generate_corpus(220, corpus_rng).addresses();
  oprf::OprfServer server(oprf::Oracle::fast(), 6, server_rng);
  server.setup(std::span<const std::string>(corpus).first(200));
  const auto key = nizk::SigningKey::generate(key_rng);
  tlog::EpochPublisher publisher(key, pub_rng);
  net::Transport transport(net::TransportConfig(), transport_rng);
  net::BlocklistServiceNode node(transport, "durable", server,
                                 oprf::Oracle::fast(), net::NodeLimits(),
                                 nullptr, &publisher);
  net::RemoteBlocklistClient client(transport, "durable", client_rng);

  MemFs fs;
  std::uint64_t full_bytes_first = 0;
  std::uint64_t synced_epoch = 0;
  {
    store::StateStore store(fs, "aud");
    tlog::Auditor auditor(key.pk, "durable", &store);
    auto report = client.verified_sync(auditor);
    ASSERT_TRUE(report.ok);
    EXPECT_GT(report.full_bytes, 0u);  // first contact: full download
    full_bytes_first = report.full_bytes;

    std::size_t next_fresh = 200;
    for (int round = 0; round < 3; ++round) {
      server.add_entries(
          std::span<const std::string>(corpus).subspan(next_fresh, 2));
      next_fresh += 2;
      report = client.verified_sync(auditor);
      ASSERT_TRUE(report.ok);
      EXPECT_GT(report.deltas_applied, 0u);
      EXPECT_EQ(report.full_bytes, 0u);
    }
    synced_epoch = auditor.mirror_epoch();
    EXPECT_EQ(auditor.persist_failures(), 0u);
  }

  fs.crash();
  // The provider moves on while the client is down.
  server.add_entries(std::span<const std::string>(corpus).subspan(206, 2));

  store::StateStore store(fs, "aud");
  tlog::Auditor recovered(key.pk, "durable", &store);
  ASSERT_TRUE(recovered.trusted());
  ASSERT_TRUE(recovered.has_state());
  EXPECT_EQ(recovered.mirror_epoch(), synced_epoch);

  const auto report = client.verified_sync(recovered);
  ASSERT_TRUE(report.ok);
  EXPECT_EQ(report.full_bytes, 0u) << "restart forgot the mirror";
  EXPECT_GT(report.deltas_applied, 0u);
  EXPECT_GT(report.delta_bytes, 0u);
  // Wire cost of resuming ≪ the full re-download a memoryless client
  // would pay (the whole point of persisting the mirror).
  EXPECT_LT(report.delta_bytes * 4, full_bytes_first);
  EXPECT_EQ(recovered.mirror_epoch(), server.epoch());
  EXPECT_EQ(recovered.buckets(), server.bucket_snapshot());
}

TEST(StoreTest, DistrustAndEvidenceSurviveRestartEvenWithDamagedFiles) {
  ChaChaRng key_rng = ChaChaRng::from_string_seed("distrust-key");
  ChaChaRng rng = ChaChaRng::from_string_seed("distrust-rng");
  const auto key = nizk::SigningKey::generate(key_rng);
  const auto root = chain::MerkleTree::hash_leaf(to_bytes("honest-root"));
  auto other = root;
  other[3] ^= 0x08;
  const auto honest = tlog::sign_checkpoint(key, 7, root, 3, rng);
  const auto forged = tlog::sign_checkpoint(key, 7, other, 3, rng);

  MemFs fs;
  {
    store::StateStore store(fs, "aud");
    tlog::Auditor auditor(key.pk, "distrust-origin", &store);
    EXPECT_EQ(auditor.observe_checkpoint(honest, nullptr),
              tlog::Auditor::Status::kOk);
    EXPECT_EQ(auditor.observe_checkpoint(forged, nullptr),
              tlog::Auditor::Status::kEquivocation);
    ASSERT_TRUE(auditor.equivocation_evidence().has_value());
    EXPECT_TRUE(auditor.equivocation_evidence()->proves_equivocation(key.pk));
    EXPECT_EQ(auditor.persist_failures(), 0u);
  }
  fs.crash();
  const Bytes snap = *fs.read("aud.snap");
  const Bytes jrnl = *fs.read("aud.jrnl");

  // The latch lives redundantly in both files: damaging EITHER one (or
  // neither) still recovers a condemned provider with usable evidence.
  const auto check_recovered = [&](Bytes snap_bytes, Bytes jrnl_bytes,
                                   const char* label) {
    SCOPED_TRACE(label);
    MemFs world;
    ASSERT_TRUE(world.write("aud.snap", snap_bytes));
    ASSERT_TRUE(world.sync("aud.snap"));
    ASSERT_TRUE(world.write("aud.jrnl", jrnl_bytes));
    ASSERT_TRUE(world.sync("aud.jrnl"));
    store::StateStore store(world, "aud");
    tlog::Auditor recovered(key.pk, label, &store);
    EXPECT_FALSE(recovered.trusted()) << "distrust was lost";
    ASSERT_TRUE(recovered.equivocation_evidence().has_value());
    EXPECT_TRUE(
        recovered.equivocation_evidence()->proves_equivocation(key.pk));
    // Condemned means condemned: even the honest checkpoint is refused.
    EXPECT_EQ(recovered.observe_checkpoint(honest, nullptr),
              tlog::Auditor::Status::kDistrusted);
  };

  check_recovered(snap, jrnl, "both-files-intact");
  Bytes bad_snap = snap;
  bad_snap[bad_snap.size() / 2] ^= 0x20;
  check_recovered(bad_snap, jrnl, "snapshot-rotted");
  Bytes bad_jrnl = jrnl;
  bad_jrnl[bad_jrnl.size() - 3] ^= 0x20;
  check_recovered(snap, bad_jrnl, "journal-rotted");
  check_recovered(Bytes(), jrnl, "snapshot-gone");
  check_recovered(snap, Bytes(), "journal-gone");
}

TEST(StoreTest, ResilientClientRestoresDistrustFromStoreWithoutRecounting) {
  ChaChaRng key_rng = ChaChaRng::from_string_seed("rc-distrust-key");
  ChaChaRng rng = ChaChaRng::from_string_seed("rc-distrust-rng");
  ChaChaRng client_rng = ChaChaRng::from_string_seed("rc-distrust-client");
  ChaChaRng transport_rng = ChaChaRng::from_string_seed("rc-distrust-trans");
  const auto key = nizk::SigningKey::generate(key_rng);
  const auto root = chain::MerkleTree::hash_leaf(to_bytes("rc-root"));
  auto other = root;
  other[0] ^= 0x01;

  MemFs fs;
  {
    store::StateStore store(fs, "aud");
    tlog::Auditor auditor(key.pk, "rc-distrust", &store);
    (void)auditor.observe_checkpoint(tlog::sign_checkpoint(key, 4, root, 2, rng),
                                     nullptr);
    EXPECT_EQ(auditor.observe_checkpoint(
                  tlog::sign_checkpoint(key, 4, other, 2, rng), nullptr),
              tlog::Auditor::Status::kEquivocation);
  }
  fs.crash();

  net::Transport transport(net::TransportConfig(), transport_rng);
  store::StateStore store(fs, "aud");  // outlives the client below
  net::ResilientClient client(transport, {"rc-distrust"}, client_rng);
  const auto distrusted_before =
      counter_value("cbl_tlog_providers_distrusted_total", {});
  client.pin_tlog_key("rc-distrust", key.pk, &store);

  // The condemnation is restored, the endpoint is skipped on the wire,
  // and the restart does NOT count as a fresh distrust transition.
  EXPECT_TRUE(client.distrusted("rc-distrust"));
  const auto* auditor = client.tlog_auditor("rc-distrust");
  ASSERT_NE(auditor, nullptr);
  EXPECT_FALSE(auditor->trusted());
  ASSERT_TRUE(auditor->equivocation_evidence().has_value());
  EXPECT_EQ(client.sync(), 0u);
  EXPECT_EQ(counter_value("cbl_tlog_providers_distrusted_total", {}),
            distrusted_before);
}

// ----------------------------------------------------------------- RealFs

TEST(RealFsTest, JournalAndSnapshotRoundTripOnThePosixBackend) {
  const std::string root = "realfs-store-test";
  std::filesystem::remove_all(root);
  {
    store::RealFs fs(root);
    EXPECT_FALSE(fs.exists("j"));

    store::Journal journal(fs, "j");
    EXPECT_EQ(journal.recover().status, RecoverStatus::kOk);
    ASSERT_TRUE(journal.append(to_bytes("one")));
    ASSERT_TRUE(journal.append(to_bytes("two")));

    store::Journal reread(fs, "j");
    const auto recovered = reread.recover();
    EXPECT_EQ(recovered.status, RecoverStatus::kOk);
    EXPECT_EQ(recovered.records,
              (std::vector<Bytes>{to_bytes("one"), to_bytes("two")}));

    ASSERT_TRUE(store::write_snapshot(fs, "s", to_bytes("real-payload")));
    EXPECT_EQ(store::load_snapshot(fs, "s"), to_bytes("real-payload"));
    EXPECT_FALSE(fs.exists("s.tmp"));  // renamed over the final name

    // A torn tail planted directly in the file is recovered over.
    ASSERT_TRUE(fs.append("j", Bytes{0x40, 0x00, 0x00}));
    store::Journal torn(fs, "j");
    const auto after = torn.recover();
    EXPECT_EQ(after.status, RecoverStatus::kTornTail);
    EXPECT_EQ(after.records.size(), 2u);

    EXPECT_TRUE(fs.remove("s"));
    EXPECT_TRUE(fs.sync_dir());
    EXPECT_FALSE(fs.exists("s"));
  }
  std::filesystem::remove_all(root);
}

}  // namespace
}  // namespace cbl
