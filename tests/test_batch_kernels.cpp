// Differential lockdown of the batched crypto kernels (the throughput
// layer's foundation): every batch kernel must be bit-identical to the
// scalar path it amortizes, on random inputs and on the edge cases —
// empty batch, size-1, identity points, zero field elements — plus the
// OPRF batch APIs (evaluate_batch / blind_batch) byte-for-byte against
// their per-element counterparts, and the rebuild(num_threads)
// determinism sweep. See DESIGN.md "Throughput architecture".
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "common/rng.h"
#include "ec/fe25519.h"
#include "ec/ristretto.h"
#include "ec/scalar.h"
#include "exec/worker_pool.h"
#include "obs/metrics.h"
#include "oprf/client.h"
#include "oprf/oracle.h"
#include "oprf/server.h"
#include "oprf/wire.h"

namespace {

using cbl::Bytes;
using cbl::ChaChaRng;
using cbl::ec::Fe25519;
using cbl::ec::RistrettoPoint;
using cbl::ec::Scalar;

Fe25519 random_fe(cbl::Rng& rng) {
  std::array<std::uint8_t, 32> b{};
  rng.fill(b.data(), b.size());
  return Fe25519::from_bytes(b);
}

RistrettoPoint random_point(cbl::Rng& rng) {
  return RistrettoPoint::base() * Scalar::random(rng);
}

// ---------------------------------------------------------------------------
// Fe25519::batch_invert
// ---------------------------------------------------------------------------

TEST(BatchInvert, MatchesScalarInvertOnRandomInputs) {
  auto rng = ChaChaRng::from_string_seed("batch-invert-random");
  for (const std::size_t n : {1u, 2u, 3u, 17u, 64u, 257u}) {
    std::vector<Fe25519> batch(n);
    std::vector<Fe25519> expected(n);
    for (std::size_t i = 0; i < n; ++i) {
      batch[i] = random_fe(rng);
      expected[i] = batch[i].invert();
    }
    Fe25519::batch_invert(batch);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(batch[i].to_bytes(), expected[i].to_bytes())
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(BatchInvert, EmptyBatchIsANoOp) {
  std::vector<Fe25519> empty;
  Fe25519::batch_invert(empty);  // must not crash
  EXPECT_TRUE(empty.empty());
}

TEST(BatchInvert, ZeroElementsMapToZeroWithoutPoisoningNeighbors) {
  auto rng = ChaChaRng::from_string_seed("batch-invert-zeros");
  // Zeros sprinkled through the batch: each must come back zero (matching
  // invert()'s 0 -> 0) while every neighbor still gets its true inverse.
  std::vector<Fe25519> batch(9);
  std::vector<Fe25519> expected(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    batch[i] = (i % 3 == 1) ? Fe25519::zero() : random_fe(rng);
    expected[i] = batch[i].invert();
  }
  Fe25519::batch_invert(batch);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch[i].to_bytes(), expected[i].to_bytes()) << "i=" << i;
    if (i % 3 == 1) {
      EXPECT_TRUE(batch[i].is_zero());
    }
  }
}

TEST(BatchInvert, AllZeroBatch) {
  std::vector<Fe25519> batch(5, Fe25519::zero());
  Fe25519::batch_invert(batch);
  for (const auto& v : batch) EXPECT_TRUE(v.is_zero());
}

TEST(BatchInvert, SingleElementEdgeValues) {
  for (std::uint64_t v : {std::uint64_t{0}, std::uint64_t{1},
                          std::uint64_t{2}, std::uint64_t{121666}}) {
    std::vector<Fe25519> batch{Fe25519::from_u64(v)};
    Fe25519::batch_invert(batch);
    EXPECT_EQ(batch[0].to_bytes(), Fe25519::from_u64(v).invert().to_bytes());
  }
}

TEST(BatchInvert, ProductWithInputIsOne) {
  auto rng = ChaChaRng::from_string_seed("batch-invert-product");
  std::vector<Fe25519> batch(32);
  std::vector<Fe25519> original(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    batch[i] = random_fe(rng);
    original[i] = batch[i];
  }
  Fe25519::batch_invert(batch);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ((batch[i] * original[i]).to_bytes(), Fe25519::one().to_bytes());
  }
}

// ---------------------------------------------------------------------------
// RistrettoPoint::double_and_encode_batch
// ---------------------------------------------------------------------------

TEST(DoubleAndEncodeBatch, MatchesScalarDoubleEncode) {
  auto rng = ChaChaRng::from_string_seed("batch-encode-random");
  for (const std::size_t n : {1u, 2u, 7u, 64u, 129u}) {
    std::vector<RistrettoPoint> halves(n);
    std::vector<RistrettoPoint::Encoding> expected(n);
    for (std::size_t i = 0; i < n; ++i) {
      halves[i] = random_point(rng);
      expected[i] = (halves[i] + halves[i]).encode();
    }
    const auto got = RistrettoPoint::double_and_encode_batch(halves);
    ASSERT_EQ(got.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(got[i], expected[i]) << "n=" << n << " i=" << i;
    }
  }
}

TEST(DoubleAndEncodeBatch, EmptyBatch) {
  EXPECT_TRUE(RistrettoPoint::double_and_encode_batch({}).empty());
}

TEST(DoubleAndEncodeBatch, IdentityPointsEncodeAsIdentity) {
  auto rng = ChaChaRng::from_string_seed("batch-encode-identity");
  // Identity halves hit the W = 0 branch of the closed form (the batch
  // inversion's 0 -> 0); they must still produce the canonical all-zero
  // encoding, and must not disturb the non-identity neighbors.
  std::vector<RistrettoPoint> halves = {
      RistrettoPoint::identity(), random_point(rng),
      RistrettoPoint::identity(), random_point(rng)};
  const auto got = RistrettoPoint::double_and_encode_batch(halves);
  const RistrettoPoint::Encoding zero{};
  EXPECT_EQ(got[0], zero);
  EXPECT_EQ(got[2], zero);
  EXPECT_EQ(got[1], (halves[1] + halves[1]).encode());
  EXPECT_EQ(got[3], (halves[3] + halves[3]).encode());
}

TEST(DoubleAndEncodeBatch, FoldsHalvedExponent) {
  // The intended use: encodings of P^s obtained by batch-doubling
  // P^(s/2). Must agree with the direct scalar multiplication.
  auto rng = ChaChaRng::from_string_seed("batch-encode-fold");
  const Scalar inv_two = Scalar::from_u64(2).invert();
  std::vector<RistrettoPoint> halves;
  std::vector<RistrettoPoint::Encoding> expected;
  for (int i = 0; i < 16; ++i) {
    const RistrettoPoint p = random_point(rng);
    const Scalar s = Scalar::random(rng);
    halves.push_back(p * (s * inv_two));
    expected.push_back((p * s).encode());
  }
  const auto got = RistrettoPoint::double_and_encode_batch(halves);
  for (std::size_t i = 0; i < halves.size(); ++i) {
    EXPECT_EQ(got[i], expected[i]) << "i=" << i;
  }
}

TEST(DoubleAndEncodeBatch, HashToGroupInputsSurviveRoundTrip) {
  // Batch-encoded outputs must decode back to the doubled group element.
  auto rng = ChaChaRng::from_string_seed("batch-encode-roundtrip");
  std::vector<RistrettoPoint> halves;
  for (int i = 0; i < 8; ++i) {
    halves.push_back(RistrettoPoint::hash_to_group(
        rng.bytes(20), "cbl/test/batch-roundtrip"));
  }
  const auto got = RistrettoPoint::double_and_encode_batch(halves);
  for (std::size_t i = 0; i < halves.size(); ++i) {
    const auto decoded = RistrettoPoint::decode(got[i]);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_TRUE(*decoded == halves[i] + halves[i]);
  }
}

// ---------------------------------------------------------------------------
// RistrettoPoint::batch_hash_to_group
// ---------------------------------------------------------------------------

TEST(BatchHashToGroup, MatchesScalarHashToGroup) {
  auto rng = ChaChaRng::from_string_seed("batch-hash");
  constexpr std::string_view kDomain = "cbl/test/batch-hash/v1";
  std::vector<Bytes> inputs;
  for (int i = 0; i < 33; ++i) inputs.push_back(rng.bytes(1 + i % 40));
  const auto got = RistrettoPoint::batch_hash_to_group(inputs, kDomain);
  ASSERT_EQ(got.size(), inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    EXPECT_EQ(got[i].encode(),
              RistrettoPoint::hash_to_group(inputs[i], kDomain).encode());
  }
}

TEST(BatchHashToGroup, EmptyBatch) {
  EXPECT_TRUE(
      RistrettoPoint::batch_hash_to_group({}, "cbl/test/batch-hash/v1")
          .empty());
}

// ---------------------------------------------------------------------------
// Oracle::map_to_group_batch
// ---------------------------------------------------------------------------

TEST(OracleBatch, FastOracleBatchMatchesScalar) {
  const auto oracle = cbl::oprf::Oracle::fast();
  std::vector<Bytes> entries;
  for (int i = 0; i < 9; ++i) {
    entries.push_back(cbl::to_bytes("addr-" + std::to_string(i)));
  }
  const auto got = oracle.map_to_group_batch(entries);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(got[i].encode(), oracle.map_to_group(entries[i]).encode());
  }
}

// ---------------------------------------------------------------------------
// OprfServer::evaluate_batch vs handle(), byte-for-byte
// ---------------------------------------------------------------------------

class EvaluateBatchTest : public ::testing::Test {
 protected:
  EvaluateBatchTest()
      : rng_(ChaChaRng::from_string_seed("evaluate-batch")),
        server_(cbl::oprf::Oracle::fast(), /*lambda=*/4, rng_),
        client_(cbl::oprf::Oracle::fast(), /*lambda=*/4, rng_) {
    std::vector<std::string> corpus;
    for (int i = 0; i < 200; ++i) {
      corpus.push_back("entry-" + std::to_string(i));
    }
    server_.setup(corpus);
  }

  ChaChaRng rng_;
  cbl::oprf::OprfServer server_;
  cbl::oprf::OprfClient client_;
};

TEST_F(EvaluateBatchTest, ResponsesMatchHandleByteForByte) {
  using Status = cbl::oprf::OprfServer::BatchOutcome::Status;
  std::vector<cbl::oprf::QueryRequest> requests;
  std::vector<cbl::oprf::PendingQuery> pending;
  for (int i = 0; i < 40; ++i) {
    // Mix listed and unlisted entries, and exercise the cached-epoch path
    // on every third request.
    auto p = client_.prepare(i % 2 == 0 ? "entry-" + std::to_string(i)
                                        : "unlisted-" + std::to_string(i));
    if (i % 3 == 0) p.request.cached_epoch = server_.epoch();
    requests.push_back(p.request);
    pending.push_back(p.pending);
  }
  // A malformed masked query and an out-of-range prefix ride in the same
  // batch; they must fail alone without aborting their neighbors.
  cbl::oprf::QueryRequest malformed = requests[0];
  malformed.masked_query.fill(0xff);
  requests.push_back(malformed);
  cbl::oprf::QueryRequest bad_prefix = requests[1];
  bad_prefix.prefix = 1u << 10;  // lambda = 4
  requests.push_back(bad_prefix);

  const auto outcomes = server_.evaluate_batch(requests);
  ASSERT_EQ(outcomes.size(), requests.size());

  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (i < 40) {
      ASSERT_EQ(outcomes[i].status, Status::kOk) << "i=" << i;
      const auto scalar_response = server_.handle(requests[i]);
      EXPECT_EQ(cbl::oprf::serialize(outcomes[i].response),
                cbl::oprf::serialize(scalar_response))
          << "i=" << i;
    } else {
      EXPECT_EQ(outcomes[i].status, Status::kBadRequest) << "i=" << i;
      EXPECT_THROW(server_.handle(requests[i]), cbl::ProtocolError);
      EXPECT_FALSE(outcomes[i].error.empty());
    }
  }

  // The batch path must feed finish() exactly like the scalar path. The
  // forced cache-hint requests (i % 3 == 0) have no matching client-side
  // cache entry, so only the full-bucket responses finish here; the
  // omission path is already covered by the byte comparison above.
  for (std::size_t i = 0; i < 40; ++i) {
    if (i % 3 == 0) continue;
    const auto result = client_.finish(pending[i], outcomes[i].response);
    EXPECT_EQ(result.listed, i % 2 == 0) << "i=" << i;
  }
}

TEST_F(EvaluateBatchTest, EmptyBatch) {
  EXPECT_TRUE(server_.evaluate_batch({}).empty());
}

TEST_F(EvaluateBatchTest, RateLimitedRequestsFailWithoutCryptoWork) {
  using Status = cbl::oprf::OprfServer::BatchOutcome::Status;
  server_.enable_rate_limiting(2);
  server_.authorize_key("alice");

  std::vector<cbl::oprf::QueryRequest> requests;
  for (int i = 0; i < 4; ++i) {
    auto p = client_.prepare("entry-" + std::to_string(i));
    p.request.api_key = i == 3 ? "mallory" : "alice";
    requests.push_back(p.request);
  }
  const auto outcomes = server_.evaluate_batch(requests);
  EXPECT_EQ(outcomes[0].status, Status::kOk);
  EXPECT_EQ(outcomes[1].status, Status::kOk);
  EXPECT_EQ(outcomes[2].status, Status::kRateLimited);  // over the window
  EXPECT_EQ(outcomes[3].status, Status::kRateLimited);  // unauthorized
}

TEST_F(EvaluateBatchTest, EvaluationProofsVerify) {
  client_.pin_key_commitment(server_.key_commitment());
  auto p = client_.prepare("entry-1");
  const auto outcomes =
      server_.evaluate_batch(std::vector<cbl::oprf::QueryRequest>{p.request});
  ASSERT_EQ(outcomes[0].status,
            cbl::oprf::OprfServer::BatchOutcome::Status::kOk);
  ASSERT_TRUE(outcomes[0].response.evaluation_proof.has_value());
  // finish() verifies the DLEQ against the pinned commitment and throws
  // on failure.
  const auto result = client_.finish(p.pending, outcomes[0].response);
  EXPECT_TRUE(result.listed);
}

// ---------------------------------------------------------------------------
// OprfClient::blind_batch vs prepare(), byte-for-byte
// ---------------------------------------------------------------------------

TEST(BlindBatch, MatchesSequentialPrepare) {
  // Twin-seeded rngs: blind_batch draws one blinding factor per entry in
  // entry order, so the sequential client must produce identical requests.
  auto rng_a = ChaChaRng::from_string_seed("blind-batch-twin");
  auto rng_b = ChaChaRng::from_string_seed("blind-batch-twin");
  cbl::oprf::OprfClient sequential(cbl::oprf::Oracle::fast(), 6, rng_a);
  cbl::oprf::OprfClient batched(cbl::oprf::Oracle::fast(), 6, rng_b);
  sequential.set_api_key("key");
  batched.set_api_key("key");

  std::vector<std::string> entries;
  for (int i = 0; i < 25; ++i) entries.push_back("q-" + std::to_string(i));

  std::vector<cbl::oprf::OprfClient::Prepared> expected;
  for (const auto& e : entries) expected.push_back(sequential.prepare(e));
  const auto got = batched.blind_batch(entries);

  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(cbl::oprf::serialize(got[i].request),
              cbl::oprf::serialize(expected[i].request))
        << "i=" << i;
    EXPECT_EQ(got[i].pending.blinding.expose_secret().to_bytes(),
              expected[i].pending.blinding.expose_secret().to_bytes());
    EXPECT_TRUE(got[i].pending.hashed == expected[i].pending.hashed);
    EXPECT_EQ(got[i].pending.prefix, expected[i].pending.prefix);
  }
}

TEST(BlindBatch, RoundTripsThroughEvaluateBatch) {
  auto rng = ChaChaRng::from_string_seed("blind-batch-roundtrip");
  cbl::oprf::OprfServer server(cbl::oprf::Oracle::fast(), 4, rng);
  cbl::oprf::OprfClient client(cbl::oprf::Oracle::fast(), 4, rng);
  std::vector<std::string> corpus;
  for (int i = 0; i < 64; ++i) corpus.push_back("c-" + std::to_string(i));
  server.setup(corpus);

  std::vector<std::string> queries = {"c-0", "nope", "c-63", "also-nope"};
  const auto prepared = client.blind_batch(queries);
  std::vector<cbl::oprf::QueryRequest> requests;
  for (const auto& p : prepared) requests.push_back(p.request);
  const auto outcomes = server.evaluate_batch(requests);
  const bool expected[] = {true, false, true, false};
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(outcomes[i].status,
              cbl::oprf::OprfServer::BatchOutcome::Status::kOk);
    EXPECT_EQ(client.finish(prepared[i].pending, outcomes[i].response).listed,
              expected[i])
        << "i=" << i;
  }
}

// ---------------------------------------------------------------------------
// Rebuild determinism across thread counts
// ---------------------------------------------------------------------------

TEST(RebuildDeterminism, ThreadSweepYieldsIdenticalState) {
  // Identically seeded servers rebuilt with 1, 2, 7, and hardware threads
  // must agree on every observable: epoch, key commitment, prefix list,
  // bucket contents, and sealed metadata. The chunk boundaries depend
  // only on (n, threads) and every output is index-addressed, so thread
  // scheduling cannot reorder anything.
  std::vector<std::string> corpus;
  for (int i = 0; i < 301; ++i) corpus.push_back("det-" + std::to_string(i));

  const unsigned hw = cbl::exec::WorkerPool::hardware_threads();
  const std::vector<unsigned> sweep = {1, 2, 7, hw};

  struct Snapshot {
    std::uint64_t epoch;
    RistrettoPoint::Encoding commitment;
    std::vector<std::uint32_t> prefixes;
    std::vector<Bytes> responses;  // serialized, one per prefix
  };
  std::vector<Snapshot> snaps;

  for (const unsigned threads : sweep) {
    auto rng = ChaChaRng::from_string_seed("rebuild-determinism");
    cbl::oprf::OprfServer server(cbl::oprf::Oracle::fast(), 5, rng);
    server.set_metadata_provider(
        [](const std::string& entry) { return cbl::to_bytes("m:" + entry); });
    server.setup(corpus, threads);

    auto client_rng = ChaChaRng::from_string_seed("rebuild-determinism-c");
    cbl::oprf::OprfClient client(cbl::oprf::Oracle::fast(), 5, client_rng);

    Snapshot s;
    s.epoch = server.epoch();
    s.commitment = server.key_commitment().encode();
    s.prefixes = server.prefix_list();
    // Pull every bucket (including sealed metadata) through the public
    // query surface so the comparison covers the full served bytes.
    for (std::size_t i = 0; i < corpus.size(); i += 17) {
      auto p = client.prepare(corpus[i]);
      s.responses.push_back(cbl::oprf::serialize(server.handle(p.request)));
    }
    snaps.push_back(std::move(s));
  }

  for (std::size_t i = 1; i < snaps.size(); ++i) {
    EXPECT_EQ(snaps[i].epoch, snaps[0].epoch) << "threads=" << sweep[i];
    EXPECT_EQ(snaps[i].commitment, snaps[0].commitment)
        << "threads=" << sweep[i];
    EXPECT_EQ(snaps[i].prefixes, snaps[0].prefixes) << "threads=" << sweep[i];
    ASSERT_EQ(snaps[i].responses.size(), snaps[0].responses.size());
    for (std::size_t j = 0; j < snaps[0].responses.size(); ++j) {
      EXPECT_EQ(snaps[i].responses[j], snaps[0].responses[j])
          << "threads=" << sweep[i] << " response=" << j;
    }
  }
}

// ---------------------------------------------------------------------------
// cbl::exec::WorkerPool
// ---------------------------------------------------------------------------

TEST(WorkerPool, InlineModeRunsOnCaller) {
  cbl::exec::WorkerPool pool;  // threads = 0
  EXPECT_EQ(pool.threads(), 0u);
  int runs = 0;
  EXPECT_TRUE(pool.submit([&] { ++runs; }));
  EXPECT_TRUE(pool.try_submit([&] { ++runs; }));
  EXPECT_EQ(runs, 2);  // synchronous: done before submit returns
  pool.drain();        // trivially idle
}

TEST(WorkerPool, ExecutesAllSubmittedTasks) {
  cbl::exec::WorkerPool::Options opts;
  opts.threads = 4;
  opts.queue_capacity = 8;
  opts.name = "test-exec";
  cbl::exec::WorkerPool pool(opts);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.submit([&] { count.fetch_add(1); }));
  }
  pool.drain();
  EXPECT_EQ(count.load(), 100);
  pool.shutdown();
  EXPECT_FALSE(pool.submit([&] { count.fetch_add(1); }));
  EXPECT_EQ(count.load(), 100);
}

TEST(WorkerPool, TrySubmitShedsWhenFull) {
  cbl::exec::WorkerPool::Options opts;
  opts.threads = 1;
  opts.queue_capacity = 1;
  opts.name = "test-shed";
  cbl::exec::WorkerPool pool(opts);
  std::mutex gate;
  gate.lock();  // wedge the worker on the first task
  ASSERT_TRUE(pool.submit([&] {
    gate.lock();
    gate.unlock();
  }));
  // Wait for the worker to pick up the wedged task, fill the single queue
  // slot, then shedding must kick in.
  while (pool.queue_depth() != 0) std::this_thread::yield();
  EXPECT_TRUE(pool.try_submit([] {}));
  EXPECT_FALSE(pool.try_submit([] {}));
  gate.unlock();
  pool.drain();
}

TEST(WorkerPool, ParallelForChunksCoversRangeExactlyOnce) {
  for (unsigned threads : {0u, 2u, 5u}) {
    cbl::exec::WorkerPool::Options opts;
    opts.threads = threads;
    opts.name = "test-pfc";
    cbl::exec::WorkerPool pool(opts);
    constexpr std::size_t kN = 997;
    std::vector<std::atomic<int>> hits(kN);
    cbl::exec::parallel_for_chunks(
        &pool, kN, 7, [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
        });
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "threads=" << threads << " i=" << i;
    }
  }
}

}  // namespace
