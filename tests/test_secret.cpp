// Tests for the cbl::Secret<T> taint wrapper (src/common/secret.h): the
// ownership/wiping semantics, the reveal_for -> ct::declassify interop,
// and a fixed-seed OPRF end-to-end golden proving the Secret<> sweep of
// the crypto holders (masks, blinding factors, VRF sk, RNG key) did not
// change a single protocol byte.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/secret.h"
#include "ct/ct.h"
#include "ec/scalar.h"
#include "oprf/client.h"
#include "oprf/oracle.h"
#include "oprf/server.h"

namespace cbl {
namespace {

using Bytes32 = std::array<std::uint8_t, 32>;

Bytes32 pattern_bytes() {
  Bytes32 b{};
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = static_cast<std::uint8_t>(0xA0 + i);
  }
  return b;
}

template <std::size_t N>
std::string to_hex(const std::array<std::uint8_t, N>& bytes) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(2 * N);
  for (std::uint8_t b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0x0F]);
  }
  return out;
}

TEST(Secret, CopyKeepsBothCopiesIntact) {
  const Secret<Bytes32> original(pattern_bytes());
  Secret<Bytes32> copy(original);
  EXPECT_EQ(original.expose_secret(), pattern_bytes());
  EXPECT_EQ(copy.expose_secret(), pattern_bytes());
  EXPECT_TRUE(copy == original);

  Secret<Bytes32> assigned;
  assigned = original;
  EXPECT_EQ(assigned.expose_secret(), pattern_bytes());
}

TEST(Secret, MoveWipesTheSource) {
  Secret<Bytes32> source(pattern_bytes());
  Secret<Bytes32> dest(std::move(source));
  EXPECT_EQ(dest.expose_secret(), pattern_bytes());
  EXPECT_EQ(source.expose_secret(), Bytes32{});  // NOLINT(bugprone-use-after-move)

  Secret<Bytes32> source2(pattern_bytes());
  Secret<Bytes32> dest2;
  dest2 = std::move(source2);
  EXPECT_EQ(dest2.expose_secret(), pattern_bytes());
  EXPECT_EQ(source2.expose_secret(), Bytes32{});  // NOLINT(bugprone-use-after-move)

  // Self-move must not wipe the value.
  Secret<Bytes32>* alias = &dest;
  dest = std::move(*alias);
  EXPECT_EQ(dest.expose_secret(), pattern_bytes());
}

TEST(Secret, DestructorZeroesTheUnderlyingBytes) {
  alignas(Secret<Bytes32>) std::array<unsigned char,
                                      sizeof(Secret<Bytes32>)> storage{};
  auto* secret = ::new (storage.data()) Secret<Bytes32>(pattern_bytes());
  ASSERT_EQ(secret->expose_secret(), pattern_bytes());
  secret->~Secret();
  // Inspect the raw storage the object lived in: the wiping destructor
  // (secure_wipe behind a compiler barrier) must have zeroed it. Read
  // through a volatile pointer so the check survives the object's
  // lifetime having formally ended.
  const volatile unsigned char* raw = storage.data();
  Bytes32 leftover{};
  for (std::size_t i = 0; i < leftover.size(); ++i) {
    leftover[i] = raw[i];
  }
  EXPECT_EQ(leftover, Bytes32{});
}

TEST(Secret, ExplicitWipeZeroes) {
  Secret<Bytes32> s(pattern_bytes());
  s.wipe();
  EXPECT_EQ(s.expose_secret(), Bytes32{});
}

TEST(Secret, RevealForRoutesThroughCtDeclassify) {
  ct::reset_for_testing();
  const Secret<Bytes32> s(pattern_bytes());
  const std::uint64_t before = ct::declassified_events();
  const Bytes32 revealed = s.reveal_for("test-fixture-reveal");
  EXPECT_EQ(revealed, pattern_bytes());
  EXPECT_EQ(ct::declassified_events(), before + 1);
  // The wrapped value is untouched by declassifying a copy.
  EXPECT_EQ(s.expose_secret(), pattern_bytes());
}

TEST(Secret, ScalarArithmeticMatchesUnwrapped) {
  const ec::Scalar a = ec::Scalar::from_u64(1234567);
  const ec::Scalar b = ec::Scalar::from_u64(7654321);
  const Secret<ec::Scalar> sa(a);
  const Secret<ec::Scalar> sb(b);

  EXPECT_TRUE((sa * sb).expose_secret() == a * b);
  EXPECT_TRUE((sa * b).expose_secret() == a * b);
  EXPECT_TRUE((sa + sb).expose_secret() == a + b);
  EXPECT_TRUE((sa - sb).expose_secret() == a - b);
  EXPECT_TRUE(sa.invert().expose_secret() == a.invert());
  EXPECT_TRUE((sa * sa.invert()).expose_secret() == ec::Scalar::one());
}

// Fixed-seed end-to-end golden. These hex strings were captured from the
// tree BEFORE the Secret<T> sweep (raw-Scalar holders) and verified
// bit-identical afterwards: the taint wrapper is a type-level change
// only, every protocol byte — key commitment, blinded queries, OPRF
// evaluations, membership verdicts — is unchanged.
TEST(SecretSweep, OprfEndToEndBytesAreUnchanged) {
  constexpr const char* kCommitment =
      "dce0b45b83d90db608e4b257e40e35e118eba8149027f8b80b9097b0fe52821c";
  constexpr const char* kMasked1 =
      "7cef4dab41912b0f707de4a794eec12f4cd963c43e0b03113152041ec63df117";
  constexpr const char* kEval1 =
      "b4857b52077bfb76e6c3085a92537882bcd8b9dc837e5eb53674c49cca30276a";
  constexpr const char* kMasked2 =
      "9274af7cc0c1b5776daadc25e6cdd6ebcdda5f3dddb78adfcb48e5cf519e951e";
  constexpr const char* kEval2 =
      "d01defcb620c656a4c3623c4f5cc73675354e86995610153ddb9b45778460868";

  oprf::Oracle oracle = oprf::Oracle::fast();
  ChaChaRng server_rng = ChaChaRng::from_string_seed("secret-sweep/server");
  ChaChaRng client_rng = ChaChaRng::from_string_seed("secret-sweep/client");

  oprf::OprfServer server(oracle, /*lambda=*/8, server_rng);
  const std::vector<std::string> entries = {
      "addr-listed-1", "addr-listed-2", "addr-listed-3", "addr-other"};
  server.setup(entries);
  oprf::OprfClient client(oracle, /*lambda=*/8, client_rng);

  EXPECT_EQ(to_hex(server.key_commitment().encode()), kCommitment);

  auto p1 = client.prepare("addr-listed-2");
  EXPECT_EQ(to_hex(p1.request.masked_query), kMasked1);
  auto r1 = server.handle(p1.request);
  EXPECT_EQ(to_hex(r1.evaluated), kEval1);
  auto v1 = client.finish(p1.pending, r1);
  EXPECT_TRUE(v1.listed);
  EXPECT_EQ(r1.bucket.size(), 1u);

  auto p2 = client.prepare("definitely-not-listed");
  EXPECT_EQ(to_hex(p2.request.masked_query), kMasked2);
  auto r2 = server.handle(p2.request);
  EXPECT_EQ(to_hex(r2.evaluated), kEval2);
  auto v2 = client.finish(p2.pending, r2);
  EXPECT_FALSE(v2.listed);
}

}  // namespace
}  // namespace cbl
