// Tests for the Section V-E game: utility shapes, the two-undominated-
// strategies claim, the deterrence condition, Stackelberg selection, and
// the hypergeometric pool-dilution math.
#include <gtest/gtest.h>

#include "game/game.h"
#include "game/dos_economics.h"
#include "game/sortition_math.h"

namespace cbl::game {
namespace {

GameParams default_params() {
  GameParams p;
  p.society_value_fair = 100;
  p.society_loss_if_biased = 60;
  p.coercer_value_favoured = 40;
  p.coercer_loss_otherwise = 40;
  p.max_coercible = 20;
  return p;
}

TEST(Game, OracleFairBelowKStar) {
  ProtectionMethod psi{"base", 0, 1.0, 5};
  EXPECT_TRUE(oracle_fair(psi, 0));
  EXPECT_TRUE(oracle_fair(psi, 4));
  EXPECT_FALSE(oracle_fair(psi, 5));
  EXPECT_FALSE(oracle_fair(psi, 10));
}

TEST(Game, UtilityValues) {
  const auto params = default_params();
  ProtectionMethod psi{"base", 3.0, 2.0, 5};
  // Fair outcome: society gets c_M - C_M.
  EXPECT_DOUBLE_EQ(society_utility(params, psi, 0), 100 - 3);
  // Biased: c_M - eps_M - C_M.
  EXPECT_DOUBLE_EQ(society_utility(params, psi, 5), 100 - 60 - 3);
  // Coercer not coercing: favoured value minus loss.
  EXPECT_DOUBLE_EQ(coercer_utility(params, psi, 0), 40 - 40);
  // Coercer at k*: full value minus coercion spend.
  EXPECT_DOUBLE_EQ(coercer_utility(params, psi, 5), 40 - 5 * 2.0);
}

TEST(Game, OnlyZeroAndKStarAreUndominated) {
  // Sweep: the best response is always 0 or exactly k*.
  const auto params = default_params();
  for (double cost : {0.5, 2.0, 7.9, 8.1, 20.0}) {
    for (std::uint64_t k_star : {1u, 3u, 5u, 9u}) {
      ProtectionMethod psi{"x", 0, cost, k_star};
      const auto n = coercer_best_response(params, psi);
      EXPECT_TRUE(n == 0 || n == k_star)
          << "cost=" << cost << " k*=" << k_star << " got n=" << n;
    }
  }
}

TEST(Game, DeterrenceCondition) {
  const auto params = default_params();  // eps_A = 40
  // C_A * k* >= eps_A deters.
  EXPECT_TRUE(coercion_deterred(params, {"strong", 0, 10.0, 5}));   // 50 >= 40
  EXPECT_FALSE(coercion_deterred(params, {"weak", 0, 5.0, 5}));     // 25 < 40
  EXPECT_TRUE(coercion_deterred(params, {"edge", 0, 8.0, 5}));      // 40 >= 40
}

TEST(Game, DeterredCoercerStaysHome) {
  const auto params = default_params();
  ProtectionMethod deterring{"strong", 0, 10.0, 5};
  EXPECT_EQ(coercer_best_response(params, deterring), 0u);
  ProtectionMethod weak{"weak", 0, 1.0, 5};
  EXPECT_EQ(coercer_best_response(params, weak), 5u);
}

TEST(Game, StackelbergPrefersCheapEffectiveProtection) {
  const auto params = default_params();
  const std::vector<ProtectionMethod> methods = {
      {"psi0: nothing", 0.0, 0.5, 3},          // A coerces -> biased
      {"psi1: anonymize", 2.0, 9.0, 5},        // 45 >= 40: deters, cheap
      {"psi2: heavy mixnets", 30.0, 50.0, 9},  // deters, expensive
  };
  const auto sol = solve_stackelberg(params, methods);
  EXPECT_EQ(sol.method_index, 1u);
  EXPECT_EQ(sol.coercer_response, 0u);
  EXPECT_DOUBLE_EQ(sol.society_utility, 100 - 2);
}

TEST(Game, StackelbergFallsBackWhenNothingDeters) {
  // If every method fails to deter, M still picks the cheapest loss.
  const auto params = default_params();
  const std::vector<ProtectionMethod> methods = {
      {"a", 5.0, 0.1, 2},
      {"b", 1.0, 0.1, 2},
  };
  const auto sol = solve_stackelberg(params, methods);
  EXPECT_EQ(sol.method_index, 1u);
  EXPECT_EQ(sol.coercer_response, 2u);
}

TEST(Game, EmptyMethodListThrows) {
  EXPECT_THROW(solve_stackelberg(default_params(), {}),
               std::invalid_argument);
}

// ------------------------------------------------------- sortition math

TEST(SortitionMath, PmfSumsToOne) {
  double total = 0;
  for (std::uint64_t k = 0; k <= 5; ++k) {
    total += hypergeometric_pmf(20, 8, 5, k);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(SortitionMath, HandComputedPmf) {
  // Hypergeom(10, 4, 3): P(X=0) = C(6,3)/C(10,3) = 20/120.
  EXPECT_NEAR(hypergeometric_pmf(10, 4, 3, 0), 20.0 / 120.0, 1e-12);
  // P(X=3) = C(4,3)/C(10,3) = 4/120.
  EXPECT_NEAR(hypergeometric_pmf(10, 4, 3, 3), 4.0 / 120.0, 1e-12);
}

TEST(SortitionMath, DegenerateCases) {
  // Controlling the whole pool captures everything.
  EXPECT_NEAR(majority_capture_probability(10, 10, 5), 1.0, 1e-12);
  // Controlling nobody captures nothing.
  EXPECT_NEAR(majority_capture_probability(10, 0, 5), 0.0, 1e-12);
  // Out-of-range support is zero probability.
  EXPECT_EQ(hypergeometric_pmf(10, 3, 3, 4), 0.0);
}

TEST(SortitionMath, CaptureProbabilityMonotoneInControl) {
  double prev = -1;
  for (std::uint64_t c = 0; c <= 30; c += 5) {
    const double p = majority_capture_probability(30, c, 7);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(SortitionMath, PoolDilutionRaisesKStar) {
  // Fixing a 5-seat committee: the bigger the candidate pool, the more
  // candidates A must control for a 90% majority capture — the paper's
  // core argument for blending shareholders into a larger pool.
  const std::uint64_t seats = 5;
  std::uint64_t prev = 0;
  for (std::uint64_t pool : {5u, 10u, 20u, 40u, 80u}) {
    const auto k = effective_k_star(pool, seats, 0.9);
    EXPECT_GE(k, prev) << "pool=" << pool;
    prev = k;
  }
  // Without dilution (pool == seats), k* is just the majority.
  EXPECT_EQ(effective_k_star(seats, seats, 0.9), seats / 2 + 1);
  // With 16x dilution it is much larger.
  EXPECT_GT(effective_k_star(80, seats, 0.9), 3 * (seats / 2 + 1));
}

TEST(SortitionMath, UnreachableTargetReturnsSentinel) {
  // 2 seats, majority needs 2; controlling 1 of 10 can never reach 90%.
  EXPECT_EQ(min_controlled_for_capture(10, 2, 1.1), 11u);
}

// ------------------------------------------------------- DoS economics

TEST(DosEconomics, HandComputedAsymmetry) {
  DosParams p;
  p.attacker_us_per_query = 6'000;  // Argon2id(4MiB,t=3) measured
  p.server_us_per_query = 100;      // one exponentiation
  p.attacker_cores = 100;
  p.server_cores = 8;
  const auto r = analyze_dos(p);
  EXPECT_DOUBLE_EQ(r.cost_asymmetry, 60.0);
  // attacker: 100 cores / 6ms = ~16,667 q/s; server: 8 / 100us = 80,000 q/s.
  EXPECT_NEAR(r.attacker_flood_rate, 16'666.7, 1.0);
  EXPECT_NEAR(r.server_capacity, 80'000.0, 1.0);
  EXPECT_NEAR(r.cores_to_saturate, 480.0, 1e-9);
  EXPECT_TRUE(r.defence_holds);
}

TEST(DosEconomics, FastOracleLosesToBotnets) {
  // Without the slow oracle the attacker mints queries as cheaply as the
  // server answers them: any fleet larger than the server wins.
  DosParams p;
  p.attacker_us_per_query = 120;  // fast oracle + blinding
  p.server_us_per_query = 100;
  p.attacker_cores = 100;
  p.server_cores = 8;
  const auto r = analyze_dos(p);
  EXPECT_FALSE(r.defence_holds);
  EXPECT_LT(r.cores_to_saturate, 10.0);
}

TEST(DosEconomics, RequiredSlowdownScalesWithFleet) {
  // 1000-core botnet vs 8-core server with ~equal fast costs: the oracle
  // must cost the attacker ~125x the server's work.
  const double s = required_slowdown(100, 100, 1'000, 8);
  EXPECT_NEAR(s, 125.0, 1e-9);
  // Applying exactly that slowdown lands at the break-even point.
  DosParams p;
  p.attacker_us_per_query = 100 * s * 1.01;  // a hair above break-even
  p.server_us_per_query = 100;
  p.attacker_cores = 1'000;
  p.server_cores = 8;
  EXPECT_TRUE(analyze_dos(p).defence_holds);
  p.attacker_us_per_query = 100 * s * 0.99;
  EXPECT_FALSE(analyze_dos(p).defence_holds);
}

}  // namespace
}  // namespace cbl::game
