// Unit tests for the observability subsystem: bucket boundaries and
// percentile math against a reference computation, merge associativity,
// manual-clock span timing, and exposition-format goldens.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "obs/obs.h"

namespace obs = cbl::obs;

namespace {

// Reference quantile: the same fixed-bucket estimator, computed the slow
// way from raw observations bucketed independently of the Histogram.
double reference_quantile(const std::vector<double>& bounds,
                          const std::vector<double>& observations, double q) {
  std::vector<std::uint64_t> counts(bounds.size() + 1, 0);
  for (const double v : observations) {
    const auto it = std::lower_bound(bounds.begin(), bounds.end(), v);
    ++counts[static_cast<std::size_t>(it - bounds.begin())];
  }
  return obs::quantile_from_buckets(bounds, counts, q);
}

}  // namespace

TEST(ObsHistogram, LogBucketsAreGeometric) {
  const auto bounds = obs::Histogram::log_buckets(1.0, 1000.0, 1);
  ASSERT_EQ(bounds.size(), 4u);  // 1, 10, 100, 1000
  // Decade bounds are bit-exact, not merely close: the generator computes
  // each bound independently instead of by repeated multiplication.
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[1], 10.0);
  EXPECT_DOUBLE_EQ(bounds[2], 100.0);
  EXPECT_DOUBLE_EQ(bounds[3], 1000.0);
  EXPECT_THROW(obs::Histogram::log_buckets(0.0, 10.0, 5),
               std::invalid_argument);
  EXPECT_THROW(obs::Histogram::log_buckets(10.0, 1.0, 5),
               std::invalid_argument);
}

TEST(ObsHistogram, DefaultLatencyDecadeBoundsAreExact) {
  // Regression pin for the log-bucket drift bug: the old generator
  // multiplied the running bound by 10^(1/per_decade) each step, and by
  // the top of the 1us..100s grid the accumulated ulp error had pushed
  // every decade bound high (10.0 printed as 10.00000000000002). An
  // observation of exactly 10.0 still bucketed correctly under "le"
  // semantics, but one at the true boundary successor flipped buckets,
  // and quantiles interpolated against the drifted edges. Pin the grid.
  const auto& bounds = obs::Histogram::default_latency_ms_buckets();
  ASSERT_EQ(bounds.size(), 41u);  // 1e-3 .. 1e5, 5 per decade
  for (std::size_t i = 0; i < bounds.size(); i += 5) {
    const double decade = std::pow(10.0, static_cast<double>(i / 5) - 3.0);
    EXPECT_DOUBLE_EQ(bounds[i], decade) << "i=" << i;
  }
  EXPECT_DOUBLE_EQ(bounds[3 * 5], 1.0);     // 1 ms
  EXPECT_DOUBLE_EQ(bounds[6 * 5], 1000.0);  // 1 s
  EXPECT_DOUBLE_EQ(bounds.back(), 1e5);     // 100 s
}

TEST(ObsHistogram, SparseTailP999Golden) {
  // p999 on a sparse tail: 997 fast observations, 2 in a mid bucket, 1
  // in the last finite bucket. The estimator must land the 999th rank
  // inside the tail bucket, not interpolate below it, and must clamp
  // overflow-rank quantiles to the largest finite bound.
  obs::MetricsRegistry registry;
  auto& h = registry.histogram("h", {1.0, 2.0, 4.0, 8.0});
  for (int i = 0; i < 997; ++i) h.observe(0.5);
  h.observe(6.0);
  h.observe(6.0);
  h.observe(9.0);  // overflow bucket

  // rank(0.5) = 500 of 997 in [0,1): exact linear interpolation.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 500.0 / 997.0);
  // rank(0.999) = 999 = the second 6.0: tops out the (4, 8] bucket.
  EXPECT_DOUBLE_EQ(h.p999(), 8.0);
  // rank(0.9995) = 999.5 crosses into overflow: clamps to 8.0.
  EXPECT_DOUBLE_EQ(h.quantile(0.9995), 8.0);
  // rank(0.998) = 998 crosses in the (4, 8] bucket holding both 6.0s.
  EXPECT_DOUBLE_EQ(h.quantile(0.998), 4.0 + 4.0 * (998.0 - 997.0) / 2.0);
  EXPECT_LE(h.p99(), h.p999());
}

TEST(ObsHistogram, P999AgreesWithBruteForceSort) {
  const auto bounds = obs::Histogram::log_buckets(0.01, 1e3, 5);
  obs::MetricsRegistry registry;
  auto& h = registry.histogram("h", bounds);
  std::vector<double> observations;
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;  // deterministic LCG-ish mix
  for (int i = 0; i < 2000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const double u =
        static_cast<double>(state >> 11) / 9007199254740992.0;  // [0,1)
    const double v = 0.05 * std::exp(6.0 * u);  // log-uniform 0.05..~20
    observations.push_back(v);
    h.observe(v);
  }
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    // Bucket estimator vs the same estimator fed independently bucketed
    // raw data (exact agreement) ...
    EXPECT_DOUBLE_EQ(h.quantile(q),
                     reference_quantile(bounds, observations, q))
        << "q=" << q;
    // ... and vs a brute-force sort, within one bucket's width. The
    // estimator targets 1-based rank ceil(q*n); that order statistic
    // lies inside the interpolated bucket, so the estimate is within a
    // factor of the bucket ratio of the exact value.
    std::vector<double> sorted = observations;
    std::sort(sorted.begin(), sorted.end());
    const auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(sorted.size())));
    const double exact = sorted[std::min(rank, sorted.size()) - 1];
    const double step = std::pow(10.0, 1.0 / 5.0);
    EXPECT_GE(h.quantile(q), exact / step) << "q=" << q;
    EXPECT_LE(h.quantile(q), exact * step) << "q=" << q;
  }
}

TEST(ObsHistogram, BucketBoundariesUseLessOrEqualSemantics) {
  obs::MetricsRegistry registry;
  auto& h = registry.histogram("h", {1.0, 10.0, 100.0});
  h.observe(0.5);    // first bucket
  h.observe(1.0);    // exactly on a bound -> that bucket (le semantics)
  h.observe(1.0001); // second bucket
  h.observe(10.0);   // second bucket
  h.observe(100.0);  // third bucket
  h.observe(250.0);  // overflow
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_NEAR(h.sum(), 0.5 + 1.0 + 1.0001 + 10.0 + 100.0 + 250.0, 1e-9);
}

TEST(ObsHistogram, QuantilesMatchReferenceComputation) {
  const auto bounds = obs::Histogram::log_buckets(0.1, 1e4, 5);
  obs::MetricsRegistry registry;
  auto& h = registry.histogram("h", bounds);

  std::vector<double> observations;
  // A bimodal latency distribution: a fast mode around 1 and a slow tail.
  for (int i = 1; i <= 900; ++i) {
    observations.push_back(0.5 + 0.001 * i);
  }
  for (int i = 1; i <= 100; ++i) {
    observations.push_back(50.0 + i);
  }
  for (const double v : observations) h.observe(v);

  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.quantile(q),
                     reference_quantile(bounds, observations, q))
        << "q=" << q;
  }
  // Sanity: the p50 sits in the fast mode, the p99 in the slow tail.
  EXPECT_LT(h.p50(), 2.0);
  EXPECT_GT(h.p99(), 50.0);
  // Monotone in q.
  EXPECT_LE(h.p50(), h.p90());
  EXPECT_LE(h.p90(), h.p99());
}

TEST(ObsHistogram, QuantileEdgeCases) {
  obs::MetricsRegistry registry;
  auto& h = registry.histogram("h", {1.0, 2.0});
  EXPECT_EQ(h.quantile(0.5), 0.0);  // empty histogram
  h.observe(1e9);                   // overflow bucket only
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);  // clamps to the largest bound
}

TEST(ObsHistogram, MergeIsAssociativeAndCommutative) {
  const auto bounds = obs::Histogram::log_buckets(1.0, 1e3, 3);
  obs::MetricsRegistry registry;
  auto make = [&](const char* name, int seed) -> obs::Histogram& {
    auto& h = registry.histogram(name, bounds);
    for (int i = 0; i < 50; ++i) {
      h.observe(static_cast<double>((seed * 37 + i * 13) % 1200));
    }
    return h;
  };
  auto& a = make("a", 1);
  auto& b = make("b", 2);
  auto& c = make("c", 3);

  // (a + b) + c
  auto& left = registry.histogram("left", bounds);
  left.merge_from(a);
  left.merge_from(b);
  left.merge_from(c);
  // a + (b + c), folded in the other order
  auto& bc = registry.histogram("bc", bounds);
  bc.merge_from(c);
  bc.merge_from(b);
  auto& right = registry.histogram("right", bounds);
  right.merge_from(bc);
  right.merge_from(a);

  EXPECT_EQ(left.bucket_counts(), right.bucket_counts());
  EXPECT_EQ(left.count(), right.count());
  EXPECT_NEAR(left.sum(), right.sum(), 1e-9);
  EXPECT_DOUBLE_EQ(left.p90(), right.p90());

  auto& mismatched = registry.histogram("mismatched", {1.0, 2.0});
  EXPECT_THROW(left.merge_from(mismatched), std::invalid_argument);
}

TEST(ObsRegistry, CountersAndGaugesRoundTrip) {
  obs::MetricsRegistry registry;
  auto& c = registry.counter("cbl_test_total", {{"k", "v"}});
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  // Same (name, labels) -> same handle; different labels -> different.
  EXPECT_EQ(&registry.counter("cbl_test_total", {{"k", "v"}}), &c);
  EXPECT_NE(&registry.counter("cbl_test_total", {{"k", "w"}}), &c);

  auto& g = registry.gauge("cbl_test_gauge");
  g.set(2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
}

TEST(ObsRegistry, DisabledRegistryDropsUpdatesButKeepsHandles) {
  obs::MetricsRegistry registry;
  auto& c = registry.counter("c");
  auto& h = registry.histogram("h", {1.0, 2.0});
  registry.set_enabled(false);
  c.inc();
  h.observe(1.5);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  registry.set_enabled(true);
  c.inc();
  h.observe(1.5);
  EXPECT_EQ(c.value(), 1u);
  EXPECT_EQ(h.count(), 1u);
}

TEST(ObsRegistry, ResetZeroesInPlace) {
  obs::MetricsRegistry registry;
  auto& c = registry.counter("c");
  auto& h = registry.histogram("h", {1.0});
  c.inc(7);
  h.observe(0.5);
  registry.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  c.inc();  // handle still live
  EXPECT_EQ(c.value(), 1u);
}

TEST(ObsRegistry, MergeFromFoldsShards) {
  obs::MetricsRegistry shard1, shard2, total;
  shard1.counter("cbl_q_total").inc(10);
  shard2.counter("cbl_q_total").inc(5);
  shard1.gauge("cbl_epoch").set(3);
  shard2.gauge("cbl_epoch").set(4);
  shard1.histogram("cbl_lat_ms", {1.0, 10.0}).observe(0.5);
  shard2.histogram("cbl_lat_ms", {1.0, 10.0}).observe(5.0);

  total.merge_from(shard1);
  total.merge_from(shard2);
  EXPECT_EQ(total.counter("cbl_q_total").value(), 15u);
  EXPECT_DOUBLE_EQ(total.gauge("cbl_epoch").value(), 4.0);
  auto& merged = total.histogram("cbl_lat_ms", {1.0, 10.0});
  EXPECT_EQ(merged.count(), 2u);
  EXPECT_EQ(merged.bucket_counts(), (std::vector<std::uint64_t>{1, 1, 0}));
}

TEST(ObsTrace, ManualClockSpansAreDeterministic) {
  obs::MetricsRegistry registry;
  obs::ManualClock clock;
  registry.set_clock(&clock);

  {
    obs::ScopedSpan span("unit.work", registry);
    clock.advance_ms(25);
  }
  {
    obs::ScopedSpan span("unit.work", registry);
    clock.advance_ms(75);
  }

  auto& h = registry.histogram(obs::kSpanHistogramName,
                               obs::Histogram::default_latency_ms_buckets(),
                               {{"span", "unit.work"}});
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.sum(), 100.0);
  registry.set_clock(nullptr);  // restore default steady clock
}

TEST(ObsTrace, SpanOnDisabledRegistryRecordsNothing) {
  obs::MetricsRegistry registry;
  obs::ManualClock clock;
  registry.set_clock(&clock);
  registry.set_enabled(false);
  {
    obs::ScopedSpan span("dark.work", registry);
    clock.advance_ms(10);
  }
  registry.set_enabled(true);
  auto& h = registry.histogram(obs::kSpanHistogramName,
                               obs::Histogram::default_latency_ms_buckets(),
                               {{"span", "dark.work"}});
  EXPECT_EQ(h.count(), 0u);
}

TEST(ObsTrace, RingBufferKeepsNewestEvents) {
  obs::MetricsRegistry registry;
  obs::ManualClock clock;
  registry.set_clock(&clock);
  obs::TraceLog log(3);
  obs::set_trace_log(&log);
  for (int i = 0; i < 5; ++i) {
    obs::ScopedSpan span("ring.work", registry);
    clock.advance_ns(static_cast<std::uint64_t>(i + 1));
  }
  obs::set_trace_log(nullptr);
  EXPECT_EQ(log.recorded(), 5u);
  const auto events = log.snapshot();
  ASSERT_EQ(events.size(), 3u);
  // Oldest-first order, holding the last three spans (durations 3, 4, 5).
  EXPECT_EQ(events[0].duration_ns, 3u);
  EXPECT_EQ(events[1].duration_ns, 4u);
  EXPECT_EQ(events[2].duration_ns, 5u);
}

TEST(ObsExport, PrometheusGolden) {
  obs::MetricsRegistry registry;
  registry.counter("cbl_demo_total", {{"result", "ok"}}, "Demo counter")
      .inc(3);
  registry.gauge("cbl_demo_gauge", {}, "Demo gauge").set(1.5);
  auto& h = registry.histogram("cbl_demo_ms", {1.0, 10.0}, {}, "Demo hist");
  h.observe(0.5);
  h.observe(0.7);
  h.observe(5.0);
  h.observe(50.0);

  const std::string expected =
      "# HELP cbl_demo_gauge Demo gauge\n"
      "# TYPE cbl_demo_gauge gauge\n"
      "cbl_demo_gauge 1.5\n"
      "# HELP cbl_demo_ms Demo hist\n"
      "# TYPE cbl_demo_ms histogram\n"
      "cbl_demo_ms_bucket{le=\"1\"} 2\n"
      "cbl_demo_ms_bucket{le=\"10\"} 3\n"
      "cbl_demo_ms_bucket{le=\"+Inf\"} 4\n"
      "cbl_demo_ms_sum 56.2\n"
      "cbl_demo_ms_count 4\n"
      "# HELP cbl_demo_total Demo counter\n"
      "# TYPE cbl_demo_total counter\n"
      "cbl_demo_total{result=\"ok\"} 3\n";
  EXPECT_EQ(obs::to_prometheus(registry), expected);
}

TEST(ObsExport, JsonGolden) {
  obs::MetricsRegistry registry;
  registry.counter("cbl_demo_total", {{"result", "ok"}}).inc(3);
  auto& h = registry.histogram("cbl_demo_ms", {1.0, 10.0});
  h.observe(0.5);
  h.observe(5.0);

  const std::string expected =
      "{\"counters\":[{\"name\":\"cbl_demo_total\",\"labels\":"
      "{\"result\":\"ok\"},\"value\":3}],\"gauges\":[],\"histograms\":["
      "{\"name\":\"cbl_demo_ms\",\"labels\":{},\"count\":2,\"sum\":5.5,"
      "\"p50\":1,\"p90\":8.2,\"p99\":9.82,\"buckets\":["
      "{\"le\":1,\"count\":1},{\"le\":10,\"count\":1}]}]}";
  EXPECT_EQ(obs::to_json(registry), expected);
}

TEST(ObsExport, EscapesLabelValues) {
  obs::MetricsRegistry registry;
  registry.counter("cbl_esc_total", {{"path", "a\"b\\c"}}).inc();
  const std::string text = obs::to_prometheus(registry);
  EXPECT_NE(text.find("path=\"a\\\"b\\\\c\""), std::string::npos);
}

TEST(ObsExport, FindMetricAndSnapshotQuantile) {
  obs::MetricsRegistry registry;
  registry.counter("cbl_x_total", {{"k", "v"}}).inc(7);
  auto& h = registry.histogram("cbl_x_ms", {1.0, 10.0});
  h.observe(0.5);
  h.observe(5.0);
  const auto samples = registry.snapshot();

  const auto* c = obs::find_metric(samples, "cbl_x_total", {{"k", "v"}});
  ASSERT_NE(c, nullptr);
  EXPECT_DOUBLE_EQ(c->value, 7.0);
  EXPECT_EQ(obs::find_metric(samples, "cbl_x_total"), nullptr);  // labels
  EXPECT_EQ(obs::find_metric(samples, "cbl_missing"), nullptr);

  const auto* hist = obs::find_metric(samples, "cbl_x_ms");
  ASSERT_NE(hist, nullptr);
  // Snapshot quantiles reproduce the live histogram's exactly.
  EXPECT_DOUBLE_EQ(obs::snapshot_quantile(*hist, 0.5), h.quantile(0.5));
  EXPECT_DOUBLE_EQ(obs::snapshot_quantile(*hist, 0.999), h.p999());
  EXPECT_DOUBLE_EQ(obs::snapshot_quantile(*c, 0.5), 0.0);  // non-histogram
}

TEST(ObsExport, TraceJson) {
  std::vector<obs::TraceEvent> events = {{"x", 10, 5}};
  EXPECT_EQ(obs::trace_to_json(events),
            "[{\"span\":\"x\",\"start_ns\":10,\"duration_ns\":5}]");
}

TEST(ObsRegistry, ConcurrentIncrementsDoNotRace) {
  obs::MetricsRegistry registry;
  auto& c = registry.counter("cbl_mt_total");
  auto& h = registry.histogram("cbl_mt_ms", obs::Histogram::log_buckets(
                                                0.1, 100.0, 3));
  std::vector<std::thread> threads;
  constexpr int kThreads = 8, kIters = 5'000;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        c.inc();
        h.observe(0.1 * ((t + i) % 100 + 1));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kIters);
}
