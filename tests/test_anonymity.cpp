// Tests for the anonymity metrics: hand-computed distributions, uniform
// vs skewed comparisons, degenerate inputs, and consistency with a live
// server's bucket structure.
#include <gtest/gtest.h>

#include <cmath>

#include "blocklist/generator.h"
#include "common/rng.h"
#include "oprf/anonymity.h"
#include "oprf/server.h"

namespace cbl::oprf {
namespace {

using cbl::ChaChaRng;

TEST(Anonymity, UniformBucketsHandComputed) {
  // Four buckets of 8: every metric collapses to 8 / log2(8) = 3 bits.
  const auto r = analyze_buckets({8, 8, 8, 8});
  EXPECT_EQ(r.k_min, 8u);
  EXPECT_EQ(r.k_max, 8u);
  EXPECT_EQ(r.total_entries, 32u);
  EXPECT_EQ(r.nonempty_buckets, 4u);
  EXPECT_DOUBLE_EQ(r.expected_anonymity_set, 8.0);
  EXPECT_DOUBLE_EQ(r.shannon_entropy_bits, 3.0);
  EXPECT_DOUBLE_EQ(r.min_entropy_bits, 3.0);
}

TEST(Anonymity, SkewPenalizesWorstCaseFirst) {
  // Same total entries, one tiny bucket: the WORST-CASE metric
  // (min-entropy) collapses to zero. The size-biased averages can even
  // rise — a random listed query lands in the big bucket more often —
  // which is exactly why the worst-case metric is the one the formal
  // k-anonymity guarantee quotes.
  const auto uniform = analyze_buckets({8, 8, 8, 8});
  const auto skewed = analyze_buckets({1, 8, 8, 15});
  EXPECT_EQ(skewed.total_entries, uniform.total_entries);
  EXPECT_EQ(skewed.k_min, 1u);
  EXPECT_DOUBLE_EQ(skewed.min_entropy_bits, 0.0);
  EXPECT_LT(skewed.min_entropy_bits, uniform.min_entropy_bits);
  EXPECT_GT(skewed.shannon_entropy_bits, uniform.shannon_entropy_bits);
  // Size-biased expectation: (1 + 64 + 64 + 225) / 32.
  EXPECT_NEAR(skewed.expected_anonymity_set, 354.0 / 32.0, 1e-12);
}

TEST(Anonymity, SingletonBucketHasZeroEntropy) {
  const auto r = analyze_buckets({1});
  EXPECT_DOUBLE_EQ(r.shannon_entropy_bits, 0.0);
  EXPECT_DOUBLE_EQ(r.min_entropy_bits, 0.0);
  EXPECT_DOUBLE_EQ(r.expected_anonymity_set, 1.0);
}

TEST(Anonymity, EmptyAndZeroBucketsHandled) {
  const auto empty = analyze_buckets({});
  EXPECT_EQ(empty.total_entries, 0u);
  EXPECT_EQ(empty.k_min, 0u);
  const auto zeros = analyze_buckets({0, 5, 0, 3});
  EXPECT_EQ(zeros.nonempty_buckets, 2u);
  EXPECT_EQ(zeros.k_min, 3u);
  EXPECT_EQ(zeros.total_entries, 8u);
}

TEST(Anonymity, SizeBiasedMeanAtLeastPlainMean) {
  // Jensen: E[X^2]/E[X] >= E[X] for bucket sizes X.
  auto rng = ChaChaRng::from_string_seed("anon-jensen");
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::size_t> sizes;
    std::size_t total = 0;
    const std::size_t n = 3 + rng.uniform(20);
    for (std::size_t i = 0; i < n; ++i) {
      sizes.push_back(1 + rng.uniform(50));
      total += sizes.back();
    }
    const auto r = analyze_buckets(sizes);
    const double plain_mean =
        static_cast<double>(total) / static_cast<double>(n);
    EXPECT_GE(r.expected_anonymity_set + 1e-9, plain_mean);
    // And entropy is bounded by log2 of the largest bucket.
    EXPECT_LE(r.shannon_entropy_bits,
              std::log2(static_cast<double>(r.k_max)) + 1e-9);
    EXPECT_GE(r.shannon_entropy_bits, r.min_entropy_bits - 1e-9);
  }
}

TEST(Anonymity, LiveServerBucketsMatchEntryCount) {
  auto rng = ChaChaRng::from_string_seed("anon-live");
  const auto corpus = blocklist::generate_corpus(500, rng).addresses();
  auto server_rng = ChaChaRng::from_string_seed("anon-server");
  OprfServer server(Oracle::fast(), 5, server_rng);
  server.setup(corpus);

  const auto report = analyze_buckets(server.bucket_sizes());
  EXPECT_EQ(report.total_entries, corpus.size());
  EXPECT_EQ(report.nonempty_buckets, server.prefix_list().size());
  EXPECT_EQ(report.k_min, server.stats().k_anonymity);
  // 500 entries in 32 buckets: entropy close to log2(500/32).
  EXPECT_NEAR(report.shannon_entropy_bits, std::log2(500.0 / 32.0), 0.3);
}

TEST(Anonymity, MoreBitsMonotonicallyLowerEntropy) {
  auto rng = ChaChaRng::from_string_seed("anon-mono");
  const auto corpus = blocklist::generate_corpus(2'000, rng).addresses();
  double prev = 1e9;
  for (const unsigned lambda : {2u, 4u, 6u, 8u}) {
    auto server_rng = ChaChaRng::from_string_seed("anon-mono-server");
    OprfServer server(Oracle::fast(), lambda, server_rng);
    server.setup(corpus);
    const auto report = analyze_buckets(server.bucket_sizes());
    EXPECT_LT(report.shannon_entropy_bits, prev) << lambda;
    prev = report.shannon_entropy_bits;
  }
}

}  // namespace
}  // namespace cbl::oprf
