// Tests for the token-curated registry contract: apply -> evaluate ->
// list, dismissal, the full challenge lifecycle with slashing in both
// directions, expiry, and state-machine error paths.
#include <gtest/gtest.h>

#include "chain/blockchain.h"
#include "common/rng.h"
#include "voting/ceremony.h"
#include "voting/registry.h"

namespace cbl::voting {
namespace {

using cbl::ChaChaRng;
using chain::Blockchain;

class RegistryTest : public ::testing::Test {
 protected:
  RegistryTest() : registry_(chain_, config()) {
    provider_ = chain_.ledger().create_account("provider");
    challenger_ = chain_.ledger().create_account("challenger");
    chain_.ledger().mint(provider_, 1'000);
    chain_.ledger().mint(challenger_, 1'000);
  }

  static RegistryConfig config() {
    RegistryConfig cfg;
    cfg.min_stake = 100;
    cfg.listing_period = 10;
    cfg.winner_share_percent = 50;
    return cfg;
  }

  /// Runs a real evaluation ceremony whose committee votes `approve`.
  EvaluationContract& run_evaluation(bool approve) {
    EvaluationConfig cfg;
    cfg.thresh = cfg.committee_size = 3;
    cfg.deposit = 10;
    cfg.provider_deposit = 10;
    const std::vector<unsigned> votes(3, approve ? 1u : 0u);
    ceremonies_.push_back(
        std::make_unique<Ceremony>(chain_, cfg, votes, rng_));
    ceremonies_.back()->run();
    return ceremonies_.back()->contract();
  }

  ChaChaRng rng_ = ChaChaRng::from_string_seed("registry-tests");
  Blockchain chain_;
  RegistryContract registry_;
  chain::AccountId provider_ = 0, challenger_ = 0;
  std::vector<std::unique_ptr<Ceremony>> ceremonies_;
};

TEST_F(RegistryTest, ApplyEvaluateList) {
  registry_.apply(provider_, "acme", 100);
  EXPECT_FALSE(registry_.is_listed("acme"));
  EXPECT_EQ(chain_.ledger().balance(provider_), 900);

  registry_.record_evaluation("acme", run_evaluation(true));
  EXPECT_TRUE(registry_.is_listed("acme"));
  const auto listing = registry_.lookup("acme");
  ASSERT_TRUE(listing.has_value());
  EXPECT_EQ(listing->status, RegistryContract::ListingStatus::kListed);
  EXPECT_EQ(listing->expires_at_block, chain_.height() + 10);
}

TEST_F(RegistryTest, RejectedApplicationIsDismissedWithRefund) {
  registry_.apply(provider_, "shady", 150);
  registry_.record_evaluation("shady", run_evaluation(false));
  EXPECT_FALSE(registry_.is_listed("shady"));
  EXPECT_FALSE(registry_.lookup("shady").has_value());
  EXPECT_EQ(chain_.ledger().balance(provider_), 1'000);  // stake returned
}

TEST_F(RegistryTest, ApplicationValidation) {
  EXPECT_THROW(registry_.apply(provider_, "a", 99), ChainError);  // below min
  registry_.apply(provider_, "a", 100);
  EXPECT_THROW(registry_.apply(challenger_, "a", 100), ChainError);  // dup
  EXPECT_THROW(registry_.record_evaluation("nope", run_evaluation(true)),
               ChainError);
}

TEST_F(RegistryTest, CannotRecordIncompleteEvaluation) {
  registry_.apply(provider_, "acme", 100);
  EvaluationConfig cfg;
  cfg.thresh = cfg.committee_size = 3;
  cfg.deposit = 10;
  cfg.provider_deposit = 10;
  Ceremony ceremony(chain_, cfg, {1, 1, 1}, rng_);
  // Evaluation never runs -> still in registration phase.
  EXPECT_THROW(registry_.record_evaluation("acme", ceremony.contract()),
               ChainError);
}

TEST_F(RegistryTest, FailedChallengeSlashesChallenger) {
  registry_.apply(provider_, "acme", 100);
  registry_.record_evaluation("acme", run_evaluation(true));

  registry_.open_challenge(challenger_, "acme", 100);
  EXPECT_TRUE(registry_.is_listed("acme"));  // still listed while challenged
  EXPECT_EQ(chain_.ledger().balance(challenger_), 900);

  // Re-evaluation vindicates the provider.
  registry_.resolve_challenge("acme", run_evaluation(true));
  EXPECT_TRUE(registry_.is_listed("acme"));
  // Challenger lost its 100 stake; provider pocketed 50%.
  EXPECT_EQ(chain_.ledger().balance(challenger_), 900);
  EXPECT_EQ(chain_.ledger().balance(provider_), 950);
  const auto listing = registry_.lookup("acme");
  EXPECT_EQ(listing->status, RegistryContract::ListingStatus::kListed);
  EXPECT_FALSE(listing->challenger.has_value());
}

TEST_F(RegistryTest, SuccessfulChallengeDelistsAndSlashesProvider) {
  registry_.apply(provider_, "acme", 100);
  registry_.record_evaluation("acme", run_evaluation(true));
  registry_.open_challenge(challenger_, "acme", 120);

  // Re-evaluation exposes the provider.
  registry_.resolve_challenge("acme", run_evaluation(false));
  EXPECT_FALSE(registry_.is_listed("acme"));
  const auto listing = registry_.lookup("acme");
  EXPECT_EQ(listing->status, RegistryContract::ListingStatus::kDelisted);
  // Challenger stake returned in full plus 50% of the provider's 100.
  EXPECT_EQ(chain_.ledger().balance(challenger_), 1'050);
  // Provider lost the stake entirely.
  EXPECT_EQ(chain_.ledger().balance(provider_), 900);
}

TEST_F(RegistryTest, ChallengeValidation) {
  registry_.apply(provider_, "acme", 100);
  // Cannot challenge a pending application.
  EXPECT_THROW(registry_.open_challenge(challenger_, "acme", 100), ChainError);
  registry_.record_evaluation("acme", run_evaluation(true));
  // Stake must match the provider's.
  EXPECT_THROW(registry_.open_challenge(challenger_, "acme", 99), ChainError);
  registry_.open_challenge(challenger_, "acme", 100);
  // Resolution requires an open challenge... which exists; but a second
  // challenge cannot stack.
  EXPECT_THROW(registry_.open_challenge(challenger_, "acme", 100), ChainError);
  // Resolving a listing with no challenge:
  registry_.resolve_challenge("acme", run_evaluation(true));
  EXPECT_THROW(registry_.resolve_challenge("acme", run_evaluation(true)),
               ChainError);
}

TEST_F(RegistryTest, ExpiryForcesReEvaluation) {
  registry_.apply(provider_, "acme", 100);
  registry_.record_evaluation("acme", run_evaluation(true));
  // Too early to flag.
  EXPECT_THROW(registry_.flag_expired("acme"), ChainError);
  for (int i = 0; i < 10; ++i) chain_.seal_block();
  registry_.flag_expired("acme");
  EXPECT_FALSE(registry_.is_listed("acme"));
  EXPECT_EQ(registry_.lookup("acme")->status,
            RegistryContract::ListingStatus::kPendingEvaluation);
  // A fresh approval relists.
  registry_.record_evaluation("acme", run_evaluation(true));
  EXPECT_TRUE(registry_.is_listed("acme"));
}

TEST_F(RegistryTest, SupplyConservedThroughChallengeCycle) {
  registry_.apply(provider_, "acme", 100);
  registry_.record_evaluation("acme", run_evaluation(true));
  registry_.open_challenge(challenger_, "acme", 100);
  registry_.resolve_challenge("acme", run_evaluation(false));
  // Of the 2000 minted to the two parties, the provider lost its 100
  // stake: 50 went to the challenger (winner share), 50 to the treasury.
  EXPECT_EQ(chain_.ledger().balance(provider_), 900);
  EXPECT_EQ(chain_.ledger().balance(challenger_), 1'050);
  EXPECT_EQ(chain_.ledger().deposit_amount(registry_.lookup("acme")->stake),
            0);
  // The 50-token remainder of the slash sits in the treasury (the
  // redistribution pool), so the registry itself created or destroyed
  // nothing.
  EXPECT_GE(chain_.ledger().balance(chain_.ledger().treasury()), 50);
}

}  // namespace
}  // namespace cbl::voting
