// Tests for incremental blocklist maintenance: add/remove entries under
// the current OPRF mask, cache-epoch semantics, metadata alignment, and
// equivalence with a full rebuild.
#include <gtest/gtest.h>

#include "blocklist/generator.h"
#include "common/rng.h"
#include "oprf/client.h"
#include "oprf/server.h"

namespace cbl::oprf {
namespace {

using cbl::ChaChaRng;

class IncrementalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto corpus_rng = ChaChaRng::from_string_seed("inc-corpus");
    corpus_ = blocklist::generate_corpus(120, corpus_rng).addresses();
    initial_.assign(corpus_.begin(), corpus_.begin() + 80);
    extra_.assign(corpus_.begin() + 80, corpus_.end());
    server_.emplace(Oracle::fast(), 4, server_rng_);
    server_->setup(initial_);
    client_.emplace(Oracle::fast(), 4, client_rng_);
  }

  bool query(const std::string& entry) {
    const auto prepared = client_->prepare(entry);
    const auto response = server_->handle(prepared.request);
    return client_->finish(prepared.pending, response).listed;
  }

  ChaChaRng server_rng_ = ChaChaRng::from_string_seed("inc-server");
  ChaChaRng client_rng_ = ChaChaRng::from_string_seed("inc-client");
  std::vector<std::string> corpus_, initial_, extra_;
  std::optional<OprfServer> server_;
  std::optional<OprfClient> client_;
};

TEST_F(IncrementalTest, AddedEntriesBecomeQueryable) {
  EXPECT_FALSE(query(extra_[0]));
  EXPECT_EQ(server_->add_entries(extra_), extra_.size());
  for (const auto& e : extra_) EXPECT_TRUE(query(e)) << e;
  EXPECT_EQ(server_->entry_count(), corpus_.size());
}

TEST_F(IncrementalTest, RemovedEntriesStopMatching) {
  const std::vector<std::string> victims(initial_.begin(),
                                         initial_.begin() + 10);
  EXPECT_EQ(server_->remove_entries(victims), victims.size());
  for (const auto& e : victims) EXPECT_FALSE(query(e)) << e;
  // Untouched entries still match.
  EXPECT_TRUE(query(initial_[50]));
  EXPECT_EQ(server_->entry_count(), initial_.size() - victims.size());
}

TEST_F(IncrementalTest, DuplicatesAndAbsenteesAreSkipped) {
  EXPECT_EQ(server_->add_entries(initial_), 0u);       // all already present
  EXPECT_EQ(server_->remove_entries(extra_), 0u);      // none present
  const auto epoch = server_->epoch();
  EXPECT_EQ(server_->add_entries(initial_), 0u);
  EXPECT_EQ(server_->epoch(), epoch);  // no-op calls do not churn caches
}

TEST_F(IncrementalTest, UpdateBumpsEpochAndInvalidatesCache) {
  // Warm the cache for some prefix.
  (void)query(initial_[0]);
  const auto epoch_before = server_->epoch();

  const std::vector<std::string> one = {extra_[0]};
  ASSERT_EQ(server_->add_entries(one), 1u);
  EXPECT_EQ(server_->epoch(), epoch_before + 1);

  // The client's cached epoch no longer matches, so the server resends
  // the (updated) bucket and the new entry is visible even when it landed
  // in a previously cached bucket.
  EXPECT_TRUE(query(extra_[0]));
  EXPECT_TRUE(query(initial_[0]));
}

TEST_F(IncrementalTest, MatchesFullRebuild) {
  // Same RNG stream -> same mask R in both servers; incremental adds must
  // produce byte-identical buckets to a from-scratch setup.
  auto rng_a = ChaChaRng::from_string_seed("same-mask");
  auto rng_b = ChaChaRng::from_string_seed("same-mask");
  OprfServer incremental(Oracle::fast(), 4, rng_a);
  incremental.setup(initial_);
  incremental.add_entries(extra_);

  OprfServer fresh(Oracle::fast(), 4, rng_b);
  fresh.setup(corpus_);

  EXPECT_EQ(incremental.prefix_list(), fresh.prefix_list());
  auto probe_rng = ChaChaRng::from_string_seed("probe");
  OprfClient probe(Oracle::fast(), 4, probe_rng);
  for (int i = 0; i < 5; ++i) {
    const auto prepared = probe.prepare(corpus_[static_cast<std::size_t>(i) * 20]);
    EXPECT_EQ(incremental.handle(prepared.request).bucket,
              fresh.handle(prepared.request).bucket);
  }
}

TEST_F(IncrementalTest, MetadataStaysAligned) {
  auto rng = ChaChaRng::from_string_seed("md-inc");
  OprfServer server(Oracle::fast(), 3, rng);
  server.set_metadata_provider([](const std::string& entry) {
    return to_bytes("meta:" + entry);
  });
  server.setup(initial_);
  server.add_entries(extra_);
  const std::vector<std::string> victims = {initial_[3], initial_[7]};
  server.remove_entries(victims);

  auto crng = ChaChaRng::from_string_seed("md-inc-client");
  OprfClient client(Oracle::fast(), 3, crng);
  for (const auto& e : {extra_[2], initial_[20]}) {
    const auto prepared = client.prepare(e);
    const auto result =
        client.finish(prepared.pending, server.handle(prepared.request));
    ASSERT_TRUE(result.listed) << e;
    ASSERT_TRUE(result.metadata.has_value()) << e;
    EXPECT_EQ(to_string(*result.metadata), "meta:" + e);
  }
}

TEST_F(IncrementalTest, ServesReflectsMembership) {
  EXPECT_TRUE(server_->serves(initial_[0]));
  EXPECT_FALSE(server_->serves(extra_[0]));
  const std::vector<std::string> one = {extra_[0]};
  server_->add_entries(one);
  EXPECT_TRUE(server_->serves(extra_[0]));
  server_->remove_entries(one);
  EXPECT_FALSE(server_->serves(extra_[0]));
}

}  // namespace
}  // namespace cbl::oprf
