// Seeded NEGATIVE case for the secret-flow CI stage (scripts/ci.sh):
// a Secret<Scalar> fed straight into a CBL_VARTIME callee. The stage
// copies this TU into a scratch tree and REQUIRES
// scripts/secret_flow_lint.py to flag it with rule S1 — proving the
// analyzer is actually armed, not silently passing everything. The TU
// itself is valid C++ (the stage also compiles it with -fsyntax-only);
// the bug is a policy violation, not a type error. Not part of any
// CMake target.
//
// Keep this file minimal and obviously wrong: it is the fixture the
// whole stage's negative self-test hangs on.
#include <vector>

#include "common/secret.h"
#include "ec/ristretto.h"
#include "ec/scalar.h"

namespace cbl::selftest {

// vartime: public-inputs-only — verification-only combiner (the fixture
// mirrors RistrettoPoint::multiscalar_mul's contract).
CBL_VARTIME inline ec::RistrettoPoint vartime_combine(
    const std::vector<ec::Scalar>& scalars,
    const std::vector<ec::RistrettoPoint>& points) {
  return ec::RistrettoPoint::multiscalar_mul(scalars, points);
}

// BUG (deliberate): borrows the long-lived secret and hands it to the
// variable-time combiner. expose_secret() preserves taint, so the lint
// must report S1 here.
inline ec::RistrettoPoint leak_secret_into_vartime(
    const Secret<ec::Scalar>& sk) {
  ec::Scalar leaked = sk.expose_secret();
  return vartime_combine({leaked}, {ec::RistrettoPoint::base()});
}

}  // namespace cbl::selftest
