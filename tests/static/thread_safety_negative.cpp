// Seeded NEGATIVE case for the thread-safety CI stage (scripts/ci.sh):
// a textbook off-lock mutation of a guarded member. The stage compiles
// this TU with clang -fsyntax-only -Wthread-safety
// -Werror=thread-safety-analysis and REQUIRES the compile to fail —
// proving the analysis is actually armed, not silently passing
// everything. Not part of any CMake target.
//
// Keep this file minimal and obviously wrong: it is the fixture the
// whole stage's negative self-test hangs on.
#include "common/thread_safety.h"

namespace cbl::selftest {

class Counter {
 public:
  void increment_locked() CBL_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    ++value_;
  }

  // BUG (deliberate): mutates value_ without holding mu_. The capability
  // analysis must reject this TU with -Werror=thread-safety-analysis.
  void increment_racy() CBL_EXCLUDES(mu_) { ++value_; }

 private:
  cbl::Mutex mu_;  // lock: value_
  long value_ CBL_GUARDED_BY(mu_) = 0;
};

}  // namespace cbl::selftest
