// POSITIVE twin of secret_flow_negative.cpp: the same shape with the
// secret declassified through reveal_for("reason") before it reaches
// the CBL_VARTIME callee. scripts/secret_flow_lint.py must pass this TU
// clean — together the pair proves the secret-flow stage distinguishes
// a leak from an audited declassification. Not part of any CMake target.
#include <vector>

#include "common/secret.h"
#include "ec/ristretto.h"
#include "ec/scalar.h"

namespace cbl::selftest {

// vartime: public-inputs-only — verification-only combiner (the fixture
// mirrors RistrettoPoint::multiscalar_mul's contract).
CBL_VARTIME inline ec::RistrettoPoint vartime_combine(
    const std::vector<ec::Scalar>& scalars,
    const std::vector<ec::RistrettoPoint>& points) {
  return ec::RistrettoPoint::multiscalar_mul(scalars, points);
}

// OK: the scalar is declassified with an audited reason first, so the
// value entering the variable-time path is public by decision, not by
// accident.
inline ec::RistrettoPoint combine_declassified(
    const Secret<ec::Scalar>& sk) {
  const ec::Scalar pub = sk.reveal_for("selftest-public-exponent");
  return vartime_combine({pub}, {ec::RistrettoPoint::base()});
}

}  // namespace cbl::selftest
