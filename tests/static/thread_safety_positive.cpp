// Seeded POSITIVE twin of thread_safety_negative.cpp: the same class
// with the race fixed. The thread-safety CI stage compiles this TU with
// the same clang -fsyntax-only -Wthread-safety
// -Werror=thread-safety-analysis flags and requires it to SUCCEED —
// ruling out the degenerate "stage fails on everything" reading of the
// negative test. Not part of any CMake target.
#include "common/thread_safety.h"

namespace cbl::selftest {

class Counter {
 public:
  void increment_locked() CBL_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    ++value_;
  }

  long value() const CBL_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return value_;
  }

 private:
  mutable cbl::Mutex mu_;  // lock: value_
  long value_ CBL_GUARDED_BY(mu_) = 0;
};

}  // namespace cbl::selftest
