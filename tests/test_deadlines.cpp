// Tests for phase deadlines: premature aborts are rejected when a
// deadline is configured, expired phases unwind cleanly in every state,
// and the no-deadline default keeps aborts permissionless.
#include <gtest/gtest.h>

#include "chain/blockchain.h"
#include "common/rng.h"
#include "voting/ceremony.h"
#include "voting/contract.h"

namespace cbl::voting {
namespace {

using cbl::ChaChaRng;
using chain::Blockchain;

class DeadlineTest : public ::testing::Test {
 protected:
  ChaChaRng rng_ = ChaChaRng::from_string_seed("deadline-tests");

  EvaluationConfig config_with_deadlines() {
    EvaluationConfig cfg;
    cfg.thresh = 3;
    cfg.committee_size = 2;
    cfg.deposit = 10;
    cfg.provider_deposit = 10;
    cfg.registration_deadline_blocks = 5;
    cfg.reveal_deadline_blocks = 5;
    cfg.round2_deadline_blocks = 5;
    return cfg;
  }

  struct Harness {
    Blockchain chain;
    chain::AccountId provider;
    std::unique_ptr<EvaluationContract> contract;
    std::vector<std::unique_ptr<Shareholder>> shareholders;

    Harness(const EvaluationConfig& cfg, ChaChaRng& rng) {
      provider = chain.ledger().create_account("provider");
      chain.ledger().mint(provider, cfg.provider_deposit + 100);
      contract = std::make_unique<EvaluationContract>(chain, cfg, provider);
      for (std::size_t i = 0; i < cfg.thresh; ++i) {
        shareholders.push_back(
            std::make_unique<Shareholder>(chain.crs(), rng, 1u, cfg.deposit));
        const auto acct = chain.ledger().create_account("sh");
        chain.ledger().mint(acct, cfg.deposit);
        chain.shielded_pool().shield(acct, cfg.deposit,
                                     shareholders.back()->deposit_note(),
                                     shareholders.back()->make_shield_proof(rng));
      }
    }

    void register_first(std::size_t n, ChaChaRng& rng) {
      for (std::size_t i = 0; i < n; ++i) {
        contract->register_shareholder(0, shareholders[i]->build_round1(rng));
      }
    }
  };
};

TEST_F(DeadlineTest, RegistrationAbortRejectedBeforeDeadline) {
  Harness h(config_with_deadlines(), rng_);
  h.register_first(1, rng_);
  EXPECT_THROW(h.contract->abort_registration(0), ChainError);
}

TEST_F(DeadlineTest, RegistrationAbortUnwindsAfterDeadline) {
  Harness h(config_with_deadlines(), rng_);
  h.register_first(2, rng_);  // never reaches thresh = 3
  for (int i = 0; i < 5; ++i) h.chain.seal_block();
  h.contract->abort_registration(0);
  EXPECT_EQ(h.contract->phase(), EvaluationContract::Phase::kAborted);
  // Registered stakes unlocked; provider deposit returned.
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_FALSE(h.chain.shielded_pool().note_locked(
        h.shareholders[i]->deposit_note()));
  }
  EXPECT_EQ(h.chain.ledger().balance(h.provider), 110);
}

TEST_F(DeadlineTest, RevealAbortOnlyWhenCommitteeImpossible) {
  Harness h(config_with_deadlines(), rng_);
  h.register_first(3, rng_);  // closes registration
  ASSERT_EQ(h.contract->phase(), EvaluationContract::Phase::kVrfReveal);

  // One reveal only (< committee_size = 2), deadline not yet passed.
  h.contract->reveal_vrf(
      0, h.shareholders[0]->build_vrf_reveal(h.contract->challenge(), rng_),
      0);
  EXPECT_THROW(h.contract->abort_reveal(0), ChainError);  // too early
  for (int i = 0; i < 5; ++i) h.chain.seal_block();
  h.contract->abort_reveal(0);
  EXPECT_EQ(h.contract->phase(), EvaluationContract::Phase::kAborted);
}

TEST_F(DeadlineTest, RevealAbortRefusedWhenEnoughRevealsExist) {
  Harness h(config_with_deadlines(), rng_);
  h.register_first(3, rng_);
  for (std::size_t i = 0; i < 2; ++i) {
    h.contract->reveal_vrf(
        i, h.shareholders[i]->build_vrf_reveal(h.contract->challenge(), rng_),
        0);
  }
  for (int i = 0; i < 5; ++i) h.chain.seal_block();
  // 2 reveals >= committee_size: the right move is finalize, not abort.
  EXPECT_THROW(h.contract->abort_reveal(0), ChainError);
  h.contract->finalize_committee(0);
  EXPECT_EQ(h.contract->phase(), EvaluationContract::Phase::kRound2);
}

TEST_F(DeadlineTest, Round2AbortGatedByDeadline) {
  Harness h(config_with_deadlines(), rng_);
  h.register_first(3, rng_);
  for (std::size_t i = 0; i < 3; ++i) {
    h.contract->reveal_vrf(
        i, h.shareholders[i]->build_vrf_reveal(h.contract->challenge(), rng_),
        0);
  }
  h.contract->finalize_committee(0);
  ASSERT_EQ(h.contract->phase(), EvaluationContract::Phase::kRound2);

  // Nobody voted; abort is premature until the deadline passes.
  EXPECT_THROW(h.contract->abort_stalled(0), ChainError);
  for (int i = 0; i < 5; ++i) h.chain.seal_block();
  h.contract->abort_stalled(0);
  EXPECT_EQ(h.contract->phase(), EvaluationContract::Phase::kAborted);
}

TEST_F(DeadlineTest, NoDeadlineKeepsAbortsPermissionless) {
  // Default config (no deadlines): the original semantics hold and a
  // stalled round 2 can be aborted immediately.
  Blockchain chain;
  EvaluationConfig cfg;
  cfg.thresh = cfg.committee_size = 2;
  cfg.deposit = 10;
  cfg.provider_deposit = 10;
  Ceremony ceremony(chain, cfg, {1, 0}, rng_);
  ceremony.fund_and_shield();
  ceremony.register_all();
  ceremony.reveal_all();
  ceremony.finalize_committee();
  ceremony.contract().abort_stalled(ceremony.provider_account());
  EXPECT_EQ(ceremony.contract().phase(), EvaluationContract::Phase::kAborted);
}

TEST_F(DeadlineTest, CurrentDeadlineReflectsPhase) {
  Harness h(config_with_deadlines(), rng_);
  EXPECT_EQ(h.contract->current_deadline(), 5u);  // registration from block 0
  h.chain.seal_block();
  h.chain.seal_block();
  h.register_first(3, rng_);  // closes at height 2
  EXPECT_EQ(h.contract->current_deadline(), 7u);  // reveal window restarts
}

}  // namespace
}  // namespace cbl::voting
