// Tests for the private blocklist query protocol (Fig. 2): completeness,
// soundness (no false positives), k-anonymity bucketization, prefix-list
// fast path, caching, rate limiting, the slow oracle, and the metadata
// extension.
#include <gtest/gtest.h>

#include "blocklist/generator.h"
#include "common/rng.h"
#include "oprf/client.h"
#include "oprf/oracle.h"
#include "oprf/server.h"

namespace cbl::oprf {
namespace {

using cbl::ChaChaRng;

std::vector<std::string> test_corpus(std::size_t n, std::string_view seed) {
  auto rng = ChaChaRng::from_string_seed(seed);
  return blocklist::generate_corpus(n, rng).addresses();
}

class OprfProtocol : public ::testing::Test {
 protected:
  void SetUp() override {
    corpus_ = test_corpus(200, "oprf-corpus");
    server_.emplace(Oracle::fast(), /*lambda=*/3, server_rng_);
    server_->setup(corpus_);
    client_.emplace(Oracle::fast(), /*lambda=*/3, client_rng_);
  }

  bool query(const std::string& entry) {
    const auto prepared = client_->prepare(entry);
    const auto response = server_->handle(prepared.request);
    return client_->finish(prepared.pending, response).listed;
  }

  ChaChaRng server_rng_ = ChaChaRng::from_string_seed("server");
  ChaChaRng client_rng_ = ChaChaRng::from_string_seed("client");
  std::vector<std::string> corpus_;
  std::optional<OprfServer> server_;
  std::optional<OprfClient> client_;
};

TEST_F(OprfProtocol, ListedEntriesFound) {
  for (std::size_t i = 0; i < corpus_.size(); i += 17) {
    EXPECT_TRUE(query(corpus_[i])) << corpus_[i];
  }
}

TEST_F(OprfProtocol, UnlistedEntriesNotFound) {
  auto rng = ChaChaRng::from_string_seed("clean-addresses");
  for (int i = 0; i < 30; ++i) {
    const auto addr =
        blocklist::random_address(blocklist::Chain::kBitcoin, rng);
    EXPECT_FALSE(query(addr)) << addr;
  }
}

TEST_F(OprfProtocol, ServerSeesOnlyPrefixAndBlindedPoint) {
  // Two different queries with the same prefix are indistinguishable to
  // the server: the masked points are unrelated random-looking group
  // elements, and the prefix is identical by construction.
  const auto p1 = client_->prepare(corpus_[0]);
  const auto p2 = client_->prepare(corpus_[0]);  // same entry twice
  // Fresh blinding per query: even the same entry never repeats on the wire.
  EXPECT_NE(p1.request.masked_query, p2.request.masked_query);
  EXPECT_EQ(p1.request.prefix, p2.request.prefix);
}

TEST_F(OprfProtocol, KeyRotationInvalidatesCacheGracefully) {
  EXPECT_TRUE(query(corpus_[0]));
  const auto epoch_before = server_->epoch();
  server_->rotate_key();
  EXPECT_GT(server_->epoch(), epoch_before);
  // Clients keep working across rotation (cache miss path).
  EXPECT_TRUE(query(corpus_[0]));
  EXPECT_FALSE(query("1BoatSLRHtKNngkdXEeobR76b53LETtpyT"));
}

TEST_F(OprfProtocol, BucketCacheOmitsRetransmission) {
  // First query for a prefix transfers the bucket...
  const auto p1 = client_->prepare(corpus_[0]);
  EXPECT_EQ(p1.request.cached_epoch, kNoEpoch);
  const auto r1 = server_->handle(p1.request);
  EXPECT_FALSE(r1.bucket_omitted);
  (void)client_->finish(p1.pending, r1);

  // ...a second query with the same prefix does not.
  const auto p2 = client_->prepare(corpus_[0]);
  EXPECT_EQ(p2.request.cached_epoch, server_->epoch());
  const auto r2 = server_->handle(p2.request);
  EXPECT_TRUE(r2.bucket_omitted);
  EXPECT_TRUE(r2.bucket.empty());
  EXPECT_TRUE(client_->finish(p2.pending, r2).listed);
}

TEST_F(OprfProtocol, OmittedBucketWithoutCacheIsProtocolError) {
  const auto p = client_->prepare(corpus_[0]);
  QueryResponse forged;
  forged.evaluated = server_->handle(p.request).evaluated;
  forged.epoch = 999;  // an epoch the client has never seen
  forged.bucket_omitted = true;
  OprfClient fresh(Oracle::fast(), 3, client_rng_);
  EXPECT_THROW((void)fresh.finish(p.pending, forged), ProtocolError);
}

TEST_F(OprfProtocol, MalformedServerResponseRejected) {
  const auto p = client_->prepare(corpus_[0]);
  auto response = server_->handle(p.request);
  response.evaluated.fill(0xff);  // not a valid encoding
  EXPECT_THROW((void)client_->finish(p.pending, response), ProtocolError);
}

TEST_F(OprfProtocol, MalformedClientQueryRejected) {
  QueryRequest bad;
  bad.prefix = 0;
  bad.masked_query.fill(0xff);
  EXPECT_THROW((void)server_->handle(bad), ProtocolError);
}

TEST_F(OprfProtocol, OutOfRangePrefixRejected) {
  auto p = client_->prepare(corpus_[0]);
  p.request.prefix = 1u << 3;  // lambda = 3 allows [0, 8)
  EXPECT_THROW((void)server_->handle(p.request), ProtocolError);
}

TEST_F(OprfProtocol, UnsortedBucketRejected) {
  const auto p = client_->prepare(corpus_[0]);
  auto response = server_->handle(p.request);
  ASSERT_GE(response.bucket.size(), 2u);
  std::swap(response.bucket.front(), response.bucket.back());
  OprfClient fresh(Oracle::fast(), 3, client_rng_);
  EXPECT_THROW((void)fresh.finish(p.pending, response), ProtocolError);
}

TEST_F(OprfProtocol, PrefixListResolvesNegativesLocally) {
  client_->set_prefix_list(server_->prefix_list());
  // All listed entries must pass the filter.
  for (std::size_t i = 0; i < corpus_.size(); i += 11) {
    EXPECT_TRUE(client_->may_be_listed(corpus_[i]));
  }
  // With 200 entries in 8 buckets every prefix is occupied, so negatives
  // still require interaction at lambda=3; at higher lambda the filter
  // becomes selective (tested below).
}

TEST(OprfPrefixList, SelectiveAtHighLambda) {
  auto server_rng = ChaChaRng::from_string_seed("pl-server");
  auto client_rng = ChaChaRng::from_string_seed("pl-client");
  const auto corpus = test_corpus(50, "pl-corpus");
  OprfServer server(Oracle::fast(), 16, server_rng);
  server.setup(corpus);
  OprfClient client(Oracle::fast(), 16, client_rng);
  client.set_prefix_list(server.prefix_list());

  // All positives pass.
  for (const auto& addr : corpus) EXPECT_TRUE(client.may_be_listed(addr));

  // Almost all random negatives are filtered locally: 50 of 65536
  // prefixes occupied -> collision odds ~0.08%.
  auto rng = ChaChaRng::from_string_seed("pl-clean");
  int needs_online = 0;
  for (int i = 0; i < 200; ++i) {
    if (client.may_be_listed(
            blocklist::random_address(blocklist::Chain::kEthereum, rng))) {
      ++needs_online;
    }
  }
  EXPECT_LE(needs_online, 3);
}

TEST_F(OprfProtocol, BucketStatsReportKAnonymity) {
  const auto stats = server_->stats();
  EXPECT_EQ(stats.buckets_total, 8u);
  EXPECT_EQ(stats.buckets_nonempty, 8u);  // 200 entries, 8 buckets
  EXPECT_GE(stats.k_anonymity, 1u);
  EXPECT_LE(stats.min_size, stats.max_size);
  EXPECT_NEAR(stats.avg_size, 200.0 / 8.0, 1e-9);
}

TEST_F(OprfProtocol, RateLimiterBlocksFloods) {
  server_->enable_rate_limiting(3);
  server_->authorize_key("alice");
  client_->set_api_key("alice");

  for (int i = 0; i < 3; ++i) {
    const auto p = client_->prepare(corpus_[static_cast<std::size_t>(i)]);
    EXPECT_NO_THROW((void)server_->handle(p.request));
  }
  const auto p = client_->prepare(corpus_[3]);
  EXPECT_THROW((void)server_->handle(p.request), ProtocolError);

  // A new window resets the budget.
  server_->advance_window();
  EXPECT_NO_THROW((void)server_->handle(p.request));
}

TEST_F(OprfProtocol, UnauthorizedKeyRejected) {
  server_->enable_rate_limiting(100);
  server_->authorize_key("alice");
  server_->revoke_key("alice");
  client_->set_api_key("alice");
  const auto p = client_->prepare(corpus_[0]);
  EXPECT_THROW((void)server_->handle(p.request), ProtocolError);

  client_->set_api_key("mallory");
  const auto p2 = client_->prepare(corpus_[0]);
  EXPECT_THROW((void)server_->handle(p2.request), ProtocolError);
}

TEST(OprfSlowOracle, EndToEndWithArgon2) {
  auto server_rng = ChaChaRng::from_string_seed("slow-server");
  auto client_rng = ChaChaRng::from_string_seed("slow-client");
  hash::Argon2Params cheap;
  cheap.memory_kib = 64;  // keep the test fast; the bench uses 4 MiB
  cheap.time_cost = 1;
  const Oracle oracle = Oracle::slow(cheap);

  const auto corpus = test_corpus(20, "slow-corpus");
  OprfServer server(oracle, 2, server_rng);
  server.setup(corpus);
  OprfClient client(oracle, 2, client_rng);

  const auto prepared = client.prepare(corpus[5]);
  const auto response = server.handle(prepared.request);
  EXPECT_TRUE(client.finish(prepared.pending, response).listed);

  const auto neg = client.prepare("0x0000000000000000000000000000000000000000");
  EXPECT_FALSE(client.finish(neg.pending, server.handle(neg.request)).listed);
}

TEST(OprfSlowOracle, FastAndSlowOraclesDisagree) {
  // The two oracles define different PRFs; mixing them breaks membership,
  // which is why lambda/oracle sync between client and server matters.
  auto server_rng = ChaChaRng::from_string_seed("mix-server");
  auto client_rng = ChaChaRng::from_string_seed("mix-client");
  hash::Argon2Params cheap;
  cheap.memory_kib = 16;
  cheap.time_cost = 1;

  const auto corpus = test_corpus(10, "mix-corpus");
  OprfServer server(Oracle::slow(cheap), 2, server_rng);
  server.setup(corpus);
  OprfClient client(Oracle::fast(), 2, client_rng);  // wrong oracle
  const auto prepared = client.prepare(corpus[0]);
  const auto response = server.handle(prepared.request);
  EXPECT_FALSE(client.finish(prepared.pending, response).listed);
}

TEST(OprfMetadata, RoundTripsForListedEntries) {
  auto server_rng = ChaChaRng::from_string_seed("md-server");
  auto client_rng = ChaChaRng::from_string_seed("md-client");
  const auto corpus = test_corpus(30, "md-corpus");

  OprfServer server(Oracle::fast(), 2, server_rng);
  server.set_metadata_provider([](const std::string& entry) {
    return to_bytes("category=phishing;addr=" + entry);
  });
  server.setup(corpus);
  OprfClient client(Oracle::fast(), 2, client_rng);

  const auto prepared = client.prepare(corpus[7]);
  const auto result =
      client.finish(prepared.pending, server.handle(prepared.request));
  ASSERT_TRUE(result.listed);
  ASSERT_TRUE(result.metadata.has_value());
  EXPECT_EQ(to_string(*result.metadata), "category=phishing;addr=" + corpus[7]);
}

TEST(OprfMetadata, SealOpenRejectsTampering) {
  std::array<std::uint8_t, 32> key{};
  key[0] = 7;
  const Bytes plain = to_bytes("secret metadata");
  Bytes sealed = OprfServer::seal_metadata(key, plain);
  const auto opened = OprfServer::open_metadata(key, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, plain);

  sealed[20] ^= 1;
  EXPECT_FALSE(OprfServer::open_metadata(key, sealed).has_value());

  std::array<std::uint8_t, 32> wrong_key{};
  wrong_key[0] = 8;
  sealed[20] ^= 1;
  EXPECT_FALSE(OprfServer::open_metadata(wrong_key, sealed).has_value());
  EXPECT_FALSE(OprfServer::open_metadata(key, Bytes(5, 0)).has_value());
}

TEST(OprfSetup, ParallelMatchesSequential) {
  auto rng1 = ChaChaRng::from_string_seed("par");
  auto rng2 = ChaChaRng::from_string_seed("par");
  const auto corpus = test_corpus(64, "par-corpus");

  OprfServer seq(Oracle::fast(), 3, rng1);
  seq.setup(corpus, 1);
  OprfServer par(Oracle::fast(), 3, rng2);
  par.setup(corpus, 4);

  // Same RNG seed -> same mask R -> identical buckets.
  EXPECT_EQ(seq.prefix_list(), par.prefix_list());
  auto crng = ChaChaRng::from_string_seed("par-client");
  OprfClient client(Oracle::fast(), 3, crng);
  const auto p = client.prepare(corpus[0]);
  const auto r_seq = seq.handle(p.request);
  const auto r_par = par.handle(p.request);
  EXPECT_EQ(r_seq.bucket, r_par.bucket);
  EXPECT_EQ(r_seq.evaluated, r_par.evaluated);
}

TEST(OprfConfig, InvalidLambdaRejected) {
  auto rng = ChaChaRng::from_string_seed("cfg");
  EXPECT_THROW(OprfServer(Oracle::fast(), 0, rng), std::invalid_argument);
  EXPECT_THROW(OprfServer(Oracle::fast(), 33, rng), std::invalid_argument);
  EXPECT_THROW(OprfClient(Oracle::fast(), 0, rng), std::invalid_argument);
  EXPECT_THROW(Oracle::prefix(to_bytes("x"), 0), std::invalid_argument);
}

// Parameterized sweep: protocol completeness/soundness across lambda.
class OprfLambdaSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(OprfLambdaSweep, CompletenessAndSoundness) {
  const unsigned lambda = GetParam();
  auto server_rng = ChaChaRng::from_string_seed("sweep-server");
  auto client_rng = ChaChaRng::from_string_seed("sweep-client");
  const auto corpus = test_corpus(60, "sweep-corpus");

  OprfServer server(Oracle::fast(), lambda, server_rng);
  server.setup(corpus);
  OprfClient client(Oracle::fast(), lambda, client_rng);

  for (std::size_t i = 0; i < corpus.size(); i += 7) {
    const auto p = client.prepare(corpus[i]);
    EXPECT_TRUE(client.finish(p.pending, server.handle(p.request)).listed);
  }
  auto rng = ChaChaRng::from_string_seed("sweep-clean");
  for (int i = 0; i < 10; ++i) {
    const auto addr = blocklist::random_address(blocklist::Chain::kBitcoin, rng);
    const auto p = client.prepare(addr);
    EXPECT_FALSE(client.finish(p.pending, server.handle(p.request)).listed);
  }
}

INSTANTIATE_TEST_SUITE_P(Lambdas, OprfLambdaSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u, 12u));

}  // namespace
}  // namespace cbl::oprf
