// Tests for the Private Keyword Search primitive: held keywords resolve
// to their values, absent keywords resolve to nothing, decryption only
// succeeds with the genuine OPRF output, and rebuild re-keys everything.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "oprf/keyword_store.h"

namespace cbl::oprf {
namespace {

using cbl::ChaChaRng;

class KeywordStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_.emplace(Oracle::fast(), 3, server_rng_);
    std::vector<std::pair<std::string, Bytes>> records;
    for (int i = 0; i < 40; ++i) {
      records.emplace_back("keyword-" + std::to_string(i),
                           to_bytes("value-" + std::to_string(i)));
    }
    store_->build(records);
  }

  ChaChaRng server_rng_ = ChaChaRng::from_string_seed("kws-server");
  ChaChaRng client_rng_ = ChaChaRng::from_string_seed("kws-client");
  std::optional<KeywordStore> store_;
};

TEST_F(KeywordStoreTest, HeldKeywordsResolve) {
  for (int i = 0; i < 40; i += 7) {
    const auto value =
        store_->client_lookup("keyword-" + std::to_string(i), client_rng_);
    ASSERT_TRUE(value.has_value()) << i;
    EXPECT_EQ(to_string(*value), "value-" + std::to_string(i));
  }
}

TEST_F(KeywordStoreTest, AbsentKeywordsResolveToNothing) {
  EXPECT_FALSE(store_->client_lookup("keyword-99", client_rng_).has_value());
  EXPECT_FALSE(store_->client_lookup("", client_rng_).has_value());
  EXPECT_FALSE(
      store_->client_lookup("Keyword-1", client_rng_).has_value());  // case
}

TEST_F(KeywordStoreTest, ServerSeesOnlyBlindedPoints) {
  const auto [req1, p1] =
      KeywordStore::prepare(Oracle::fast(), 3, "keyword-1", client_rng_);
  const auto [req2, p2] =
      KeywordStore::prepare(Oracle::fast(), 3, "keyword-1", client_rng_);
  // Fresh blinding each time: identical keywords are unlinkable on the wire.
  EXPECT_NE(req1.blinded_keyword, req2.blinded_keyword);
  EXPECT_EQ(req1.prefix, req2.prefix);  // only the lambda-bit prefix leaks
}

TEST_F(KeywordStoreTest, BucketCiphertextsAreUselessWithoutTheKeyword) {
  // A nosy client receives the whole bucket but can only decrypt the
  // record whose keyword it actually holds: other ciphertexts fail
  // authentication under its derived key.
  const auto [request, pending] =
      KeywordStore::prepare(Oracle::fast(), 3, "keyword-2", client_rng_);
  const auto response = store_->lookup(request);
  ASSERT_GE(response.bucket.size(), 2u);

  const auto evaluated = ec::RistrettoPoint::decode(response.evaluated);
  const auto my_tag = (*evaluated * pending.blinding.invert()).encode();
  int decrypted = 0;
  for (const auto& record : response.bucket) {
    if (OprfServer::open_metadata(OprfServer::metadata_key(my_tag),
                                  record.ciphertext)) {
      ++decrypted;
    }
  }
  EXPECT_EQ(decrypted, 1);
}

TEST_F(KeywordStoreTest, MalformedInputsRejected) {
  KeywordStore::LookupRequest bad;
  bad.prefix = 1u << 3;
  EXPECT_THROW((void)store_->lookup(bad), ProtocolError);
  bad.prefix = 0;
  bad.blinded_keyword.fill(0xff);
  EXPECT_THROW((void)store_->lookup(bad), ProtocolError);

  // Malformed server evaluation rejected by the client.
  const auto [request, pending] =
      KeywordStore::prepare(Oracle::fast(), 3, "keyword-0", client_rng_);
  KeywordStore::LookupResponse forged;
  forged.evaluated.fill(0xff);
  EXPECT_THROW((void)KeywordStore::finish(pending, forged), ProtocolError);
}

TEST_F(KeywordStoreTest, RebuildReKeysEverything) {
  // Capture a record's tag under the old mask.
  const auto [req, pending] =
      KeywordStore::prepare(Oracle::fast(), 3, "keyword-5", client_rng_);
  const auto before = store_->lookup(req);
  const auto eval_before = ec::RistrettoPoint::decode(before.evaluated);
  const auto tag_before = (*eval_before * pending.blinding.invert()).encode();

  std::vector<std::pair<std::string, Bytes>> records = {
      {"keyword-5", to_bytes("new-value")}};
  store_->build(records);
  EXPECT_EQ(store_->size(), 1u);

  // Fresh lookups work against the new mask...
  const auto value = store_->client_lookup("keyword-5", client_rng_);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(to_string(*value), "new-value");

  // ...and the rebuild genuinely re-keyed: the keyword's tag changed, so
  // keys hoarded from the old epoch open nothing in the new bucket.
  const auto after = store_->lookup(req);
  const auto eval_after = ec::RistrettoPoint::decode(after.evaluated);
  const auto tag_after = (*eval_after * pending.blinding.invert()).encode();
  EXPECT_NE(tag_before, tag_after);
  for (const auto& record : after.bucket) {
    EXPECT_FALSE(OprfServer::open_metadata(
        OprfServer::metadata_key(tag_before), record.ciphertext));
  }
}

TEST_F(KeywordStoreTest, BinaryValuesSurvive) {
  auto rng = ChaChaRng::from_string_seed("kws-binary");
  std::vector<std::pair<std::string, Bytes>> records = {
      {"blob", rng.bytes(1'000)}};
  KeywordStore store(Oracle::fast(), 2, server_rng_);
  store.build(records);
  const auto value = store.client_lookup("blob", client_rng_);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, records[0].second);
}

}  // namespace
}  // namespace cbl::oprf
