// Tests for commitments, the Fiat-Shamir transcript, and all NIZK
// protocols: completeness, statement binding (proofs do not transfer to
// other statements), and forgery rejection.
#include <gtest/gtest.h>

#include "commit/crs.h"
#include "commit/pedersen.h"
#include "common/rng.h"
#include "nizk/proof_a.h"
#include "nizk/proof_b.h"
#include "nizk/sigma.h"
#include "nizk/transcript.h"
#include "nizk/vote_or.h"

namespace cbl::nizk {
namespace {

using cbl::ChaChaRng;
using commit::Commitment;
using commit::Crs;
using commit::Opening;
using ec::RistrettoPoint;
using ec::Scalar;

class NizkTest : public ::testing::Test {
 protected:
  const Crs& crs_ = Crs::default_crs();
  ChaChaRng rng_ = ChaChaRng::from_string_seed("nizk-tests");
};

// ------------------------------------------------------------------- CRS

TEST_F(NizkTest, CrsGeneratorsAreDistinctAndNonIdentity) {
  const RistrettoPoint* gens[] = {&crs_.g, &crs_.h,     &crs_.h1,
                                  &crs_.h2, &crs_.g_hat, &crs_.h_hat};
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_FALSE(gens[i]->is_identity()) << i;
    for (std::size_t j = i + 1; j < 6; ++j) {
      EXPECT_FALSE(*gens[i] == *gens[j]) << i << "," << j;
    }
  }
}

TEST_F(NizkTest, CrsDistributedSetupDependsOnEveryContribution) {
  const auto crs1 = Crs::from_contributions({to_bytes("alice"), to_bytes("bob")});
  const auto crs2 = Crs::from_contributions({to_bytes("alice"), to_bytes("eve")});
  const auto crs3 = Crs::from_contributions({to_bytes("alice"), to_bytes("bob")});
  EXPECT_FALSE(crs1.h == crs2.h);
  EXPECT_TRUE(crs1.h == crs3.h);
  EXPECT_EQ(crs1.to_bytes(), crs3.to_bytes());
  EXPECT_EQ(crs1.to_bytes().size(), 6u * 32u);
}

// ------------------------------------------------------------ Commitments

TEST_F(NizkTest, PedersenCommitVerify) {
  const auto [c, opening] =
      Commitment::commit_random(crs_.g, crs_.h, Scalar::from_u64(42), rng_);
  EXPECT_TRUE(c.verify(crs_.g, crs_.h, opening));
  Opening wrong = opening;
  wrong.value = cbl::Secret(Scalar::from_u64(43));
  EXPECT_FALSE(c.verify(crs_.g, crs_.h, wrong));
}

TEST_F(NizkTest, PedersenIsHomomorphic) {
  const auto [c1, o1] =
      Commitment::commit_random(crs_.g, crs_.h, Scalar::from_u64(10), rng_);
  const auto [c2, o2] =
      Commitment::commit_random(crs_.g, crs_.h, Scalar::from_u64(32), rng_);
  const Commitment sum = c1 * c2;
  EXPECT_TRUE(sum.verify(crs_.g, crs_.h,
                         {o1.value + o2.value, o1.randomness + o2.randomness}));
  const Commitment diff = c2 / c1;
  EXPECT_TRUE(diff.verify(crs_.g, crs_.h,
                          {o2.value - o1.value, o2.randomness - o1.randomness}));
  const Commitment scaled = c1.pow(Scalar::from_u64(3));
  EXPECT_TRUE(scaled.verify(
      crs_.g, crs_.h,
      {o1.value * Scalar::from_u64(3), o1.randomness * Scalar::from_u64(3)}));
}

TEST_F(NizkTest, PedersenHiding) {
  // Same value, different randomness -> different commitments.
  const auto [c1, o1] =
      Commitment::commit_random(crs_.g, crs_.h, Scalar::from_u64(7), rng_);
  const auto [c2, o2] =
      Commitment::commit_random(crs_.g, crs_.h, Scalar::from_u64(7), rng_);
  EXPECT_FALSE(c1 == c2);
}

// -------------------------------------------------------------- Transcript

TEST_F(NizkTest, TranscriptIsDeterministic) {
  Transcript t1("proto"), t2("proto");
  t1.absorb("x", to_bytes("data"));
  t2.absorb("x", to_bytes("data"));
  EXPECT_EQ(t1.challenge("c"), t2.challenge("c"));
}

TEST_F(NizkTest, TranscriptSeparatesLabelsAndFraming) {
  Transcript t1("proto"), t2("proto"), t3("proto");
  t1.absorb("ab", to_bytes("c"));
  t2.absorb("a", to_bytes("bc"));
  t3.absorb("ab", to_bytes("c"));
  const auto c1 = t1.challenge("c");
  EXPECT_FALSE(c1 == t2.challenge("c"));
  EXPECT_TRUE(c1 == t3.challenge("c"));
}

TEST_F(NizkTest, TranscriptChallengesEvolve) {
  Transcript t("proto");
  const auto c1 = t.challenge("c");
  const auto c2 = t.challenge("c");
  EXPECT_FALSE(c1 == c2);
}

TEST_F(NizkTest, TranscriptProtocolSeparation) {
  Transcript t1("proto-a"), t2("proto-b");
  EXPECT_FALSE(t1.challenge("c") == t2.challenge("c"));
}

// ------------------------------------------------------------------ Schnorr

TEST_F(NizkTest, SchnorrCompleteness) {
  const Scalar x = Scalar::random(rng_);
  const RistrettoPoint y = crs_.h * x;
  const auto proof = SchnorrProof::prove(crs_.h, y, x, "test", rng_);
  EXPECT_TRUE(proof.verify(crs_.h, y, "test"));
  EXPECT_EQ(proof.to_bytes().size(), SchnorrProof::kWireSize);
}

TEST_F(NizkTest, SchnorrRejectsWrongStatement) {
  const Scalar x = Scalar::random(rng_);
  const RistrettoPoint y = crs_.h * x;
  const auto proof = SchnorrProof::prove(crs_.h, y, x, "test", rng_);
  EXPECT_FALSE(proof.verify(crs_.h, y + crs_.g, "test"));
  EXPECT_FALSE(proof.verify(crs_.g, y, "test"));
  EXPECT_FALSE(proof.verify(crs_.h, y, "other-domain"));
}

TEST_F(NizkTest, SchnorrRejectsTamperedProof) {
  const Scalar x = Scalar::random(rng_);
  const RistrettoPoint y = crs_.h * x;
  auto proof = SchnorrProof::prove(crs_.h, y, x, "test", rng_);
  proof.response = proof.response + Scalar::one();
  EXPECT_FALSE(proof.verify(crs_.h, y, "test"));
}

// -------------------------------------------------------------------- DLEQ

TEST_F(NizkTest, DleqCompleteness) {
  const Scalar x = Scalar::random(rng_);
  const RistrettoPoint y1 = crs_.g * x;
  const RistrettoPoint y2 = crs_.h * x;
  const auto proof = DleqProof::prove(crs_.g, y1, crs_.h, y2, x, "test", rng_);
  EXPECT_TRUE(proof.verify(crs_.g, y1, crs_.h, y2, "test"));
  EXPECT_EQ(proof.to_bytes().size(), DleqProof::kWireSize);
}

TEST_F(NizkTest, DleqRejectsUnequalLogs) {
  const Scalar x = Scalar::random(rng_);
  const RistrettoPoint y1 = crs_.g * x;
  const RistrettoPoint y2 = crs_.h * (x + Scalar::one());
  const auto proof = DleqProof::prove(crs_.g, y1, crs_.h, y2, x, "test", rng_);
  EXPECT_FALSE(proof.verify(crs_.g, y1, crs_.h, y2, "test"));
}

// ----------------------------------------------------------------- Proof A

TEST_F(NizkTest, ProofACompleteness) {
  const Scalar x = Scalar::random(rng_);
  const StatementA st{crs_.g * x, crs_.h1 * x, crs_.h2 * x};
  const auto proof = ProofA::prove(crs_, st, x, rng_);
  EXPECT_TRUE(proof.verify(crs_, st));
  EXPECT_EQ(proof.to_bytes().size(), ProofA::kWireSize);
}

TEST_F(NizkTest, ProofARejectsInconsistentExponents) {
  // c2 derived from a different secret: the "same x" claim is false.
  const Scalar x = Scalar::random(rng_);
  const Scalar x2 = Scalar::random(rng_);
  const StatementA st{crs_.g * x, crs_.h1 * x, crs_.h2 * x2};
  const auto proof = ProofA::prove(crs_, st, x, rng_);
  EXPECT_FALSE(proof.verify(crs_, st));
}

TEST_F(NizkTest, ProofADoesNotTransferBetweenStatements) {
  const Scalar x = Scalar::random(rng_);
  const StatementA st{crs_.g * x, crs_.h1 * x, crs_.h2 * x};
  const auto proof = ProofA::prove(crs_, st, x, rng_);
  const Scalar x2 = Scalar::random(rng_);
  const StatementA other{crs_.g * x2, crs_.h1 * x2, crs_.h2 * x2};
  EXPECT_FALSE(proof.verify(crs_, other));
}

TEST_F(NizkTest, ProofATamperedFieldsRejected) {
  const Scalar x = Scalar::random(rng_);
  const StatementA st{crs_.g * x, crs_.h1 * x, crs_.h2 * x};
  auto proof = ProofA::prove(crs_, st, x, rng_);

  auto tampered = proof;
  tampered.omega = proof.omega + Scalar::one();
  EXPECT_FALSE(tampered.verify(crs_, st));

  tampered = proof;
  tampered.a = proof.a + Scalar::one();
  EXPECT_FALSE(tampered.verify(crs_, st));

  tampered = proof;
  tampered.b = proof.b + Scalar::one();
  EXPECT_FALSE(tampered.verify(crs_, st));

  tampered = proof;
  tampered.sigma0 = proof.sigma0 + crs_.g;
  EXPECT_FALSE(tampered.verify(crs_, st));

  tampered = proof;
  tampered.gamma1 = proof.gamma1 + crs_.h;
  EXPECT_FALSE(tampered.verify(crs_, st));
}

TEST_F(NizkTest, ProofAFreshRandomnessPerProof) {
  const Scalar x = Scalar::random(rng_);
  const StatementA st{crs_.g * x, crs_.h1 * x, crs_.h2 * x};
  const auto p1 = ProofA::prove(crs_, st, x, rng_);
  const auto p2 = ProofA::prove(crs_, st, x, rng_);
  EXPECT_NE(p1.to_bytes(), p2.to_bytes());
  EXPECT_TRUE(p1.verify(crs_, st));
  EXPECT_TRUE(p2.verify(crs_, st));
}

// ----------------------------------------------------------------- Proof B

struct Round2Fixture {
  Scalar x, v;
  StatementB st;
};

Round2Fixture make_round2(const Crs& crs, unsigned vote, Rng& rng) {
  Round2Fixture f;
  f.x = Scalar::random(rng);
  f.v = Scalar::from_u64(vote);
  // Y is an arbitrary aggregate of other members' c0 values.
  const RistrettoPoint y = crs.g * Scalar::random(rng);
  f.st.c0 = crs.g * f.x;
  f.st.big_c = crs.g * f.v + crs.h * f.x;
  f.st.psi = crs.g * f.v + y * f.x;
  f.st.y = y;
  return f;
}

TEST_F(NizkTest, ProofBCompletenessBothVotes) {
  for (unsigned vote : {0u, 1u}) {
    const auto f = make_round2(crs_, vote, rng_);
    const auto proof = ProofB::prove(crs_, f.st, f.x, f.v, rng_);
    EXPECT_TRUE(proof.verify(crs_, f.st)) << "vote=" << vote;
    EXPECT_EQ(proof.to_bytes().size(), ProofB::kWireSize);
  }
}

TEST_F(NizkTest, ProofBRejectsMismatchedPsi) {
  // psi computed with a different vote than C commits to.
  auto f = make_round2(crs_, 1, rng_);
  f.st.psi = f.st.y * f.x;  // psi for v = 0
  const auto proof = ProofB::prove(crs_, f.st, f.x, f.v, rng_);
  EXPECT_FALSE(proof.verify(crs_, f.st));
}

TEST_F(NizkTest, ProofBRejectsWrongY) {
  const auto f = make_round2(crs_, 1, rng_);
  const auto proof = ProofB::prove(crs_, f.st, f.x, f.v, rng_);
  StatementB other = f.st;
  other.y = f.st.y + crs_.g;
  EXPECT_FALSE(proof.verify(crs_, other));
}

TEST_F(NizkTest, ProofBRejectsTampering) {
  const auto f = make_round2(crs_, 0, rng_);
  auto proof = ProofB::prove(crs_, f.st, f.x, f.v, rng_);
  proof.omega_v = proof.omega_v + Scalar::one();
  EXPECT_FALSE(proof.verify(crs_, f.st));
}

// -------------------------------------------------------------- Binary vote

TEST_F(NizkTest, BinaryVoteCompleteness) {
  for (unsigned v : {0u, 1u}) {
    const Scalar x = Scalar::random(rng_);
    const RistrettoPoint c = crs_.g * Scalar::from_u64(v) + crs_.h * x;
    const auto proof = BinaryVoteProof::prove(crs_, c, v, x, rng_);
    EXPECT_TRUE(proof.verify(crs_, c)) << "v=" << v;
    EXPECT_EQ(proof.to_bytes().size(), BinaryVoteProof::kWireSize);
  }
}

TEST_F(NizkTest, BinaryVoteProverRefusesNonBinary) {
  const Scalar x = Scalar::random(rng_);
  const RistrettoPoint c = crs_.g * Scalar::from_u64(5) + crs_.h * x;
  EXPECT_THROW(BinaryVoteProof::prove(crs_, c, 5, x, rng_),
               std::invalid_argument);
  // And a claimed-binary opening that does not match C:
  EXPECT_THROW(BinaryVoteProof::prove(crs_, c, 1, x, rng_),
               std::invalid_argument);
}

TEST_F(NizkTest, BinaryVoteProofDoesNotTransfer) {
  const Scalar x = Scalar::random(rng_);
  const RistrettoPoint c = crs_.g + crs_.h * x;  // v = 1
  const auto proof = BinaryVoteProof::prove(crs_, c, 1, x, rng_);
  const RistrettoPoint other = crs_.g + crs_.h * Scalar::random(rng_);
  EXPECT_FALSE(proof.verify(crs_, other));
}

TEST_F(NizkTest, BinaryVoteRejectsTamperedChallengeSplit) {
  const Scalar x = Scalar::random(rng_);
  const RistrettoPoint c = crs_.h * x;  // v = 0
  auto proof = BinaryVoteProof::prove(crs_, c, 0, x, rng_);
  proof.c0 = proof.c0 + Scalar::one();
  EXPECT_FALSE(proof.verify(crs_, c));
  proof.c0 = proof.c0 - Scalar::one();
  proof.z1 = proof.z1 + Scalar::one();
  EXPECT_FALSE(proof.verify(crs_, c));
}

}  // namespace
}  // namespace cbl::nizk
