// Tests for the Ristretto ECVRF: determinism of output, proof
// verification, uniqueness, and the sortition-facing helpers.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "vrf/vrf.h"

namespace cbl::vrf {
namespace {

using cbl::ChaChaRng;

class VrfTest : public ::testing::Test {
 protected:
  ChaChaRng rng_ = ChaChaRng::from_string_seed("vrf-tests");
};

TEST_F(VrfTest, ProveVerifyRoundTrip) {
  const auto keys = KeyPair::generate(rng_);
  const Bytes input = to_bytes("challenge-nu-42");
  const auto proof = prove(keys, input, rng_);
  EXPECT_TRUE(verify(keys.pk, input, proof));
}

TEST_F(VrfTest, OutputIsDeterministicAcrossProofRandomness) {
  // The DLEQ proof uses fresh randomness, but gamma — and therefore the
  // VRF output — is a deterministic function of (sk, input).
  const auto keys = KeyPair::generate(rng_);
  const Bytes input = to_bytes("nu");
  const auto p1 = prove(keys, input, rng_);
  const auto p2 = prove(keys, input, rng_);
  EXPECT_NE(p1.dleq.to_bytes(), p2.dleq.to_bytes());
  EXPECT_EQ(output(p1), output(p2));
}

TEST_F(VrfTest, DifferentInputsDifferentOutputs) {
  const auto keys = KeyPair::generate(rng_);
  const auto o1 = output(prove(keys, to_bytes("nu-1"), rng_));
  const auto o2 = output(prove(keys, to_bytes("nu-2"), rng_));
  EXPECT_NE(o1, o2);
}

TEST_F(VrfTest, DifferentKeysDifferentOutputs) {
  const auto k1 = KeyPair::generate(rng_);
  const auto k2 = KeyPair::generate(rng_);
  const Bytes input = to_bytes("nu");
  EXPECT_NE(output(prove(k1, input, rng_)), output(prove(k2, input, rng_)));
}

TEST_F(VrfTest, VerifyRejectsWrongKey) {
  const auto k1 = KeyPair::generate(rng_);
  const auto k2 = KeyPair::generate(rng_);
  const Bytes input = to_bytes("nu");
  const auto proof = prove(k1, input, rng_);
  EXPECT_FALSE(verify(k2.pk, input, proof));
}

TEST_F(VrfTest, VerifyRejectsWrongInput) {
  const auto keys = KeyPair::generate(rng_);
  const auto proof = prove(keys, to_bytes("nu"), rng_);
  EXPECT_FALSE(verify(keys.pk, to_bytes("mu"), proof));
}

TEST_F(VrfTest, VerifyRejectsForgedGamma) {
  // An adversary who wants a nicer output cannot swap gamma: the DLEQ
  // proof binds gamma to sk.
  const auto keys = KeyPair::generate(rng_);
  const Bytes input = to_bytes("nu");
  auto proof = prove(keys, input, rng_);
  proof.gamma = proof.gamma + ec::RistrettoPoint::base();
  EXPECT_FALSE(verify(keys.pk, input, proof));
}

TEST_F(VrfTest, UnitIntervalMapping) {
  Output zero{};
  EXPECT_DOUBLE_EQ(output_to_unit_interval(zero), 0.0);
  Output ones;
  ones.fill(0xff);
  EXPECT_LT(output_to_unit_interval(ones), 1.0);
  EXPECT_GT(output_to_unit_interval(ones), 0.999);
}

TEST_F(VrfTest, OutputsLookUniform) {
  // Crude uniformity check over 200 keys: mean of unit-interval outputs
  // should be near 0.5.
  const Bytes input = to_bytes("shared-challenge");
  double sum = 0;
  for (int i = 0; i < 200; ++i) {
    const auto keys = KeyPair::generate(rng_);
    sum += output_to_unit_interval(output(prove(keys, input, rng_)));
  }
  EXPECT_NEAR(sum / 200.0, 0.5, 0.08);
}

TEST_F(VrfTest, WireSizeMatchesConstant) {
  const auto keys = KeyPair::generate(rng_);
  const auto proof = prove(keys, to_bytes("nu"), rng_);
  EXPECT_EQ(proof.to_bytes().size(), Proof::kWireSize);
}

}  // namespace
}  // namespace cbl::vrf
