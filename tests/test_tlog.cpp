// Tests for the transparency-log subsystem (src/tlog) and its serving
// integration: signed checkpoints and deltas, delta folding vs full
// download equivalence (the acceptance criterion: a client syncing
// epoch e -> e+1 via signed deltas lands on a bit-identical bucket
// state), equivocation and tamper rejection with cbl_tlog_* metric
// accounting, and the resilient client's permanent-distrust latch.
#include <gtest/gtest.h>

#include "blocklist/generator.h"
#include "common/rng.h"
#include "net/resilient_client.h"
#include "net/service_node.h"
#include "obs/metrics.h"
#include "tlog/tlog.h"

namespace cbl::tlog {
namespace {

using cbl::ChaChaRng;
using net::BlocklistServiceNode;
using net::RemoteBlocklistClient;

class TlogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    corpus_ = blocklist::generate_corpus(120, corpus_rng_).addresses();
    server_.emplace(oprf::Oracle::fast(), 6, server_rng_);
    server_->setup(std::span<const std::string>(corpus_).first(80));
    key_ = nizk::SigningKey::generate(key_rng_);
    publisher_.emplace(key_, publisher_rng_);
  }

  /// Fresh-entry batches for add_entries (addresses 80.. are unused).
  std::span<const std::string> fresh(std::size_t offset, std::size_t n) {
    return std::span<const std::string>(corpus_).subspan(80 + offset, n);
  }

  double counter(const char* name, obs::Labels labels) {
    return obs::MetricsRegistry::global().counter(name, std::move(labels))
        .value();
  }

  ChaChaRng corpus_rng_ = ChaChaRng::from_string_seed("tlog-corpus");
  ChaChaRng server_rng_ = ChaChaRng::from_string_seed("tlog-server");
  ChaChaRng key_rng_ = ChaChaRng::from_string_seed("tlog-key");
  ChaChaRng publisher_rng_ = ChaChaRng::from_string_seed("tlog-pub");
  ChaChaRng client_rng_ = ChaChaRng::from_string_seed("tlog-client");
  std::vector<std::string> corpus_;
  std::optional<oprf::OprfServer> server_;
  nizk::SigningKey key_;
  std::optional<EpochPublisher> publisher_;
};

// --------------------------------------------------------- publisher core

TEST_F(TlogTest, PublishIsIdempotentPerEpoch) {
  const auto cp1 = publisher_->publish_epoch(*server_);
  EXPECT_EQ(cp1.tree_size, 1u);
  EXPECT_EQ(cp1.epoch, server_->epoch());
  EXPECT_TRUE(verify_checkpoint(key_.pk, cp1));
  // Same epoch again: no new log record, identical checkpoint bytes.
  const auto cp2 = publisher_->publish_epoch(*server_);
  EXPECT_EQ(cp2.to_bytes(), cp1.to_bytes());
  EXPECT_EQ(publisher_->log().size(), 1u);

  server_->add_entries(fresh(0, 5));
  const auto cp3 = publisher_->publish_epoch(*server_);
  EXPECT_EQ(cp3.tree_size, 2u);
  EXPECT_GT(cp3.epoch, cp1.epoch);
  EXPECT_TRUE(verify_checkpoint(key_.pk, cp3));
}

TEST_F(TlogTest, PublishedSnapshotMatchesServer) {
  publisher_->publish_epoch(*server_);
  EXPECT_EQ(publisher_->current_buckets(), server_->bucket_snapshot());
  // The first record's delta digest is the all-zero sentinel.
  EXPECT_EQ(publisher_->log().record(0).delta_digest, Digest{});
  EXPECT_EQ(publisher_->log().record(0).bucket_root,
            BucketTree(publisher_->current_buckets()).root());
}

TEST_F(TlogTest, DeltaBridgesEpochsExactly) {
  publisher_->publish_epoch(*server_);
  const auto base = publisher_->current_buckets();
  const std::uint64_t base_epoch = server_->epoch();

  server_->add_entries(fresh(0, 8));
  server_->remove_entries(std::span<const std::string>(corpus_).first(4));
  publisher_->publish_epoch(*server_);

  const auto delta = publisher_->delta_from(base_epoch);
  ASSERT_TRUE(delta.has_value());
  EXPECT_EQ(delta->from_epoch, base_epoch);
  EXPECT_EQ(delta->to_epoch, server_->epoch());
  EXPECT_TRUE(verify_delta(key_.pk, *delta));
  EXPECT_EQ(delta->base_bucket_root, BucketTree(base).root());

  // Folding the signed delta into the base snapshot reproduces the new
  // snapshot bit for bit — the acceptance criterion at the data layer.
  BucketMap folded = base;
  ASSERT_TRUE(fold_delta(folded, *delta));
  EXPECT_EQ(folded, publisher_->current_buckets());
  EXPECT_EQ(BucketTree(folded).root(), delta->post_bucket_root);
  // And the log's second record pins exactly this delta.
  EXPECT_EQ(publisher_->log().record(1).delta_digest, delta->digest());

  // An unknown hop is refused.
  EXPECT_FALSE(publisher_->delta_from(server_->epoch()).has_value());
}

TEST_F(TlogTest, DiffAndFoldAreInverse) {
  publisher_->publish_epoch(*server_);
  const auto base = publisher_->current_buckets();
  server_->add_entries(fresh(0, 10));
  const auto post = server_->bucket_snapshot();

  auto delta = diff_buckets(base, post);
  BucketMap folded = base;
  ASSERT_TRUE(fold_delta(folded, delta));
  EXPECT_EQ(folded, post);

  // A no-op diff is empty and folds to the identity.
  EXPECT_TRUE(diff_buckets(post, post).prefixes.empty());
  // A removal that is not present refuses the whole fold, untouched.
  ASSERT_FALSE(delta.prefixes.empty());
  ASSERT_FALSE(delta.prefixes[0].added.empty());
  EpochDelta bogus = delta;
  bogus.prefixes[0].removed.push_back(bogus.prefixes[0].added[0]);
  bogus.prefixes[0].added.clear();
  BucketMap untouched = base;
  EXPECT_FALSE(fold_delta(untouched, bogus));
  EXPECT_EQ(untouched, base);
}

// ----------------------------------------------------------- auditor core

TEST_F(TlogTest, AuditorAcceptsHonestDeltaSync) {
  Auditor auditor(key_.pk, "unit");
  const auto applied_before =
      counter("cbl_tlog_deltas_applied_total", {{"endpoint", "unit"}});

  publisher_->publish_epoch(*server_);
  ASSERT_EQ(auditor.observe_checkpoint(publisher_->latest_checkpoint(),
                                       nullptr),
            Auditor::Status::kOk);
  ASSERT_EQ(auditor.adopt_snapshot(publisher_->current_buckets()),
            Auditor::Status::kOk);
  const std::uint64_t base_epoch = auditor.mirror_epoch();

  server_->add_entries(fresh(0, 6));
  publisher_->publish_epoch(*server_);
  const auto consistency = publisher_->consistency(1);
  ASSERT_EQ(auditor.observe_checkpoint(publisher_->latest_checkpoint(),
                                       &consistency),
            Auditor::Status::kOk);
  const auto delta = publisher_->delta_from(base_epoch);
  ASSERT_TRUE(delta.has_value());
  ASSERT_EQ(auditor.apply_delta(*delta), Auditor::Status::kOk);

  // Bit-identical to the full download, root pinned, epoch advanced.
  EXPECT_EQ(auditor.buckets(), server_->bucket_snapshot());
  EXPECT_EQ(auditor.mirror_root(), BucketTree(auditor.buckets()).root());
  EXPECT_EQ(auditor.mirror_epoch(), server_->epoch());
  EXPECT_TRUE(auditor.trusted());
  EXPECT_EQ(counter("cbl_tlog_deltas_applied_total", {{"endpoint", "unit"}}),
            applied_before + 1);

  // The audit path for any mirrored prefix binds mirror to checkpoint.
  const auto prefix = auditor.buckets().begin()->first;
  const auto path = publisher_->audit_path(prefix);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(auditor.verify_audit_path(prefix, *path), Auditor::Status::kOk);
}

TEST_F(TlogTest, TamperedDeltaIsRejectedAndCounted) {
  Auditor auditor(key_.pk, "tamper");
  publisher_->publish_epoch(*server_);
  (void)auditor.observe_checkpoint(publisher_->latest_checkpoint(), nullptr);
  (void)auditor.adopt_snapshot(publisher_->current_buckets());
  const std::uint64_t base_epoch = auditor.mirror_epoch();
  const auto base = auditor.buckets();

  server_->add_entries(fresh(0, 6));
  publisher_->publish_epoch(*server_);
  const auto consistency = publisher_->consistency(1);
  (void)auditor.observe_checkpoint(publisher_->latest_checkpoint(),
                                   &consistency);
  auto delta = *publisher_->delta_from(base_epoch);

  const auto rejected_before =
      counter("cbl_tlog_deltas_rejected_total", {{"endpoint", "tamper"}});
  // Dropping one addition breaks the signature; nothing is applied.
  auto tampered = delta;
  ASSERT_FALSE(tampered.prefixes.empty());
  tampered.prefixes.pop_back();
  EXPECT_EQ(auditor.apply_delta(tampered), Auditor::Status::kBadSignature);
  EXPECT_EQ(auditor.buckets(), base);
  EXPECT_FALSE(auditor.trusted());
  EXPECT_EQ(counter("cbl_tlog_deltas_rejected_total", {{"endpoint", "tamper"}}),
            rejected_before + 1);
}

TEST_F(TlogTest, ValidlySignedDeltaWithWrongPostRootIsRejected) {
  // A malicious provider CAN sign whatever it wants — the fold-and-check
  // makes the signed post root the binding commitment. Sign a delta that
  // claims the wrong post state and watch it bounce.
  Auditor auditor(key_.pk, "wrongroot");
  publisher_->publish_epoch(*server_);
  (void)auditor.observe_checkpoint(publisher_->latest_checkpoint(), nullptr);
  (void)auditor.adopt_snapshot(publisher_->current_buckets());
  const auto base = auditor.buckets();
  const std::uint64_t base_epoch = auditor.mirror_epoch();

  server_->add_entries(fresh(0, 6));
  publisher_->publish_epoch(*server_);
  const auto consistency = publisher_->consistency(1);
  (void)auditor.observe_checkpoint(publisher_->latest_checkpoint(),
                                   &consistency);

  auto forged = *publisher_->delta_from(base_epoch);
  forged.post_bucket_root[0] ^= 1;
  forged = sign_delta(key_, std::move(forged), publisher_rng_);
  EXPECT_EQ(auditor.apply_delta(forged), Auditor::Status::kRootMismatch);
  EXPECT_EQ(auditor.buckets(), base);
  EXPECT_FALSE(auditor.trusted());

  // Sticky: even the honest delta is refused after distrust latched.
  EXPECT_EQ(auditor.apply_delta(*publisher_->delta_from(base_epoch)),
            Auditor::Status::kDistrusted);
}

TEST_F(TlogTest, EquivocationIsProofNotSuspicion) {
  Auditor auditor(key_.pk, "equiv");
  const auto equiv_before = counter("cbl_tlog_equivocations_total",
                                    {{"endpoint", "equiv"}});
  publisher_->publish_epoch(*server_);
  const auto honest = publisher_->latest_checkpoint();
  ASSERT_EQ(auditor.observe_checkpoint(honest, nullptr),
            Auditor::Status::kOk);

  // Same size, different root, VALID signature: a split view.
  auto other_root = honest.root;
  other_root[7] ^= 0x40;
  const auto forged = sign_checkpoint(key_, honest.tree_size, other_root,
                                      honest.epoch, publisher_rng_);
  ASSERT_TRUE(verify_checkpoint(key_.pk, forged));
  EXPECT_EQ(auditor.observe_checkpoint(forged, nullptr),
            Auditor::Status::kEquivocation);
  EXPECT_FALSE(auditor.trusted());
  EXPECT_EQ(counter("cbl_tlog_equivocations_total", {{"endpoint", "equiv"}}),
            equiv_before + 1);

  // A bad signature, by contrast, never reaches the equivocation check.
  Auditor fresh_auditor(key_.pk, "equiv2");
  auto unsigned_forgery = honest;
  unsigned_forgery.root[3] ^= 2;
  EXPECT_EQ(fresh_auditor.observe_checkpoint(unsigned_forgery, nullptr),
            Auditor::Status::kBadSignature);
}

TEST_F(TlogTest, ShrinkingOrForkedLogIsInconsistent) {
  Auditor auditor(key_.pk, "consist");
  publisher_->publish_epoch(*server_);
  server_->add_entries(fresh(0, 4));
  publisher_->publish_epoch(*server_);
  const auto cp2 = publisher_->latest_checkpoint();
  const auto consistency = publisher_->consistency(1);
  server_->add_entries(fresh(4, 4));
  publisher_->publish_epoch(*server_);
  const auto cp3 = publisher_->latest_checkpoint();

  ASSERT_EQ(auditor.observe_checkpoint(cp2, nullptr), Auditor::Status::kOk);
  // A checkpoint whose tree SHRANK is rejected outright.
  const auto shrunk = sign_checkpoint(key_, 1, publisher_->log().root(),
                                      cp2.epoch, publisher_rng_);
  EXPECT_EQ(auditor.observe_checkpoint(shrunk, nullptr),
            Auditor::Status::kInconsistent);
  EXPECT_FALSE(auditor.trusted());

  // Growth without a consistency proof (or with a wrong one) fails too.
  Auditor strict(key_.pk, "consist2");
  ASSERT_EQ(strict.observe_checkpoint(cp2, nullptr), Auditor::Status::kOk);
  EXPECT_EQ(strict.observe_checkpoint(cp3, nullptr),
            Auditor::Status::kInconsistent);
  Auditor strict2(key_.pk, "consist3");
  ASSERT_EQ(strict2.observe_checkpoint(cp2, nullptr), Auditor::Status::kOk);
  auto wrong = publisher_->consistency(2);
  ASSERT_FALSE(wrong.nodes.empty());
  wrong.nodes[0][0] ^= 1;
  EXPECT_EQ(strict2.observe_checkpoint(cp3, &wrong),
            Auditor::Status::kInconsistent);
  // The honest proof, for contrast, passes a fresh auditor.
  Auditor honest(key_.pk, "consist4");
  ASSERT_EQ(honest.observe_checkpoint(cp2, nullptr), Auditor::Status::kOk);
  const auto good = publisher_->consistency(2);
  EXPECT_EQ(honest.observe_checkpoint(cp3, &good), Auditor::Status::kOk);
}

TEST_F(TlogTest, AuditPathCatchesForeignSnapshot) {
  // adopt_snapshot takes any bucket map; the audit path is what binds it
  // to the signed checkpoint. A snapshot with one extra entry smuggled
  // in yields a different bucket root and must fail the path check.
  Auditor auditor(key_.pk, "snapshot");
  publisher_->publish_epoch(*server_);
  (void)auditor.observe_checkpoint(publisher_->latest_checkpoint(), nullptr);
  auto doctored = publisher_->current_buckets();
  ASSERT_FALSE(doctored.empty());
  auto smuggled = doctored.begin()->second.front();
  smuggled[0] ^= 0x11;
  doctored.begin()->second.push_back(smuggled);
  ASSERT_EQ(auditor.adopt_snapshot(doctored), Auditor::Status::kOk);

  const auto prefix = doctored.begin()->first;
  const auto path = publisher_->audit_path(prefix);
  ASSERT_TRUE(path.has_value());
  EXPECT_NE(auditor.verify_audit_path(prefix, *path), Auditor::Status::kOk);
  EXPECT_FALSE(auditor.trusted());
}

// ------------------------------------------------- wire-level verified sync

class TlogWireTest : public TlogTest {
 protected:
  net::Transport make_transport() {
    net::TransportConfig cfg;
    cfg.latency_ms_min = 1;
    cfg.latency_ms_max = 5;
    return net::Transport(cfg, transport_rng_);
  }

  ChaChaRng transport_rng_ = ChaChaRng::from_string_seed("tlog-transport");
};

TEST_F(TlogWireTest, VerifiedSyncDeltaStateIsBitIdenticalToFullDownload) {
  auto transport = make_transport();
  BlocklistServiceNode node(transport, "scamdb", *server_,
                            oprf::Oracle::fast(), net::NodeLimits(), nullptr,
                            &*publisher_);
  RemoteBlocklistClient client(transport, "scamdb", client_rng_);
  Auditor auditor(key_.pk, "scamdb");
  const auto ok_before = counter("cbl_tlog_sync_total",
                                 {{"endpoint", "scamdb"}, {"result", "ok"}});

  // First contact: full verified download.
  auto report = client.verified_sync(auditor);
  ASSERT_TRUE(report.ok);
  EXPECT_EQ(report.deltas_applied, 0u);
  EXPECT_GT(report.full_bytes, 0u);
  EXPECT_EQ(auditor.buckets(), server_->bucket_snapshot());

  // Epoch e -> e+1: the sync rides one signed delta, no full download,
  // and the mirror is bit-identical to what a full download would give.
  server_->add_entries(fresh(0, 6));
  server_->remove_entries(std::span<const std::string>(corpus_).first(3));
  report = client.verified_sync(auditor);
  ASSERT_TRUE(report.ok);
  EXPECT_EQ(report.deltas_applied, 1u);
  EXPECT_GT(report.delta_bytes, 0u);
  EXPECT_EQ(report.full_bytes, 0u);
  EXPECT_EQ(report.epoch, server_->epoch());
  EXPECT_EQ(auditor.buckets(), server_->bucket_snapshot());
  EXPECT_TRUE(auditor.trusted());

  // Multi-epoch gap: one hop per missed epoch.
  server_->add_entries(fresh(6, 5));
  publisher_->publish_epoch(*server_);
  server_->add_entries(fresh(11, 5));
  report = client.verified_sync(auditor);
  ASSERT_TRUE(report.ok);
  EXPECT_EQ(report.deltas_applied, 2u);
  EXPECT_EQ(auditor.buckets(), server_->bucket_snapshot());

  // An unchanged epoch syncs trivially (no deltas, no downloads).
  report = client.verified_sync(auditor);
  ASSERT_TRUE(report.ok);
  EXPECT_EQ(report.deltas_applied, 0u);
  EXPECT_EQ(report.delta_bytes + report.full_bytes, 0u);
  EXPECT_EQ(counter("cbl_tlog_sync_total",
                    {{"endpoint", "scamdb"}, {"result", "ok"}}),
            ok_before + 4);
}

TEST_F(TlogWireTest, UnreachableTlogEndpointsAreTransportNotAudit) {
  auto transport = make_transport();
  // A node WITHOUT a publisher answers kTlog* with kBadRequest: the
  // service is not publishing, which is a liveness problem, not
  // dishonesty — the auditor must stay trusted.
  BlocklistServiceNode node(transport, "scamdb", *server_,
                            oprf::Oracle::fast());
  RemoteBlocklistClient client(transport, "scamdb", client_rng_);
  Auditor auditor(key_.pk, "scamdb");
  const auto transport_before =
      counter("cbl_tlog_sync_total",
              {{"endpoint", "scamdb"}, {"result", "transport"}});
  const auto report = client.verified_sync(auditor);
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.failure,
            RemoteBlocklistClient::SyncReport::Failure::kTransport);
  EXPECT_TRUE(auditor.trusted());
  EXPECT_EQ(counter("cbl_tlog_sync_total",
                    {{"endpoint", "scamdb"}, {"result", "transport"}}),
            transport_before + 1);
}

TEST_F(TlogWireTest, EquivocatingEndpointIsAuditFailureOverTheWire) {
  auto transport = make_transport();
  auto node = std::make_optional<BlocklistServiceNode>(
      transport, "scamdb", *server_, oprf::Oracle::fast(),
      net::NodeLimits(), nullptr, &*publisher_);
  RemoteBlocklistClient client(transport, "scamdb", client_rng_);
  Auditor auditor(key_.pk, "scamdb");
  ASSERT_TRUE(client.verified_sync(auditor).ok);

  // Swap the honest node for one that serves a second signed checkpoint
  // at the same tree size with a different root.
  node.reset();
  const auto honest = publisher_->latest_checkpoint();
  auto other_root = honest.root;
  other_root[0] ^= 0x04;
  const auto forged = sign_checkpoint(key_, honest.tree_size, other_root,
                                      honest.epoch, publisher_rng_);
  transport.register_endpoint(
      "scamdb", [&forged](ByteView frame) -> std::optional<Bytes> {
        const auto request = net::parse_request_frame(frame);
        if (request && request->method == net::Method::kTlogCheckpoint) {
          return net::encode_response_frame(net::Status::kOk,
                                            forged.to_bytes());
        }
        return net::encode_response_frame(net::Status::kBadRequest);
      });

  const auto audit_before = counter(
      "cbl_tlog_sync_total", {{"endpoint", "scamdb"}, {"result", "audit"}});
  const auto report = client.verified_sync(auditor);
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.failure,
            RemoteBlocklistClient::SyncReport::Failure::kAudit);
  EXPECT_FALSE(auditor.trusted());
  EXPECT_EQ(counter("cbl_tlog_sync_total",
                    {{"endpoint", "scamdb"}, {"result", "audit"}}),
            audit_before + 1);
  // Distrust is sticky: later syncs fail without touching the wire.
  const auto calls_before = transport.stats().calls;
  EXPECT_FALSE(client.verified_sync(auditor).ok);
  EXPECT_EQ(transport.stats().calls, calls_before);
}

TEST_F(TlogWireTest, ChecksumValidGarbageBodyIsAudit) {
  auto transport = make_transport();
  transport.register_endpoint(
      "evil", [this](ByteView frame) -> std::optional<Bytes> {
        const auto request = net::parse_request_frame(frame);
        if (request && request->method == net::Method::kInfo) {
          net::ServiceInfo info;
          info.lambda = server_->lambda();
          info.entry_count = server_->entry_count();
          return net::encode_response_frame(net::Status::kOk,
                                            net::encode_info(info));
        }
        // Properly sealed garbage: passes the checksum gate, dies in the
        // Checkpoint decoder — that is provider dishonesty, not noise.
        return net::encode_response_frame(net::Status::kOk,
                                          Bytes{0xde, 0xad, 0xbe, 0xef});
      });
  RemoteBlocklistClient client(transport, "evil", client_rng_);
  Auditor auditor(key_.pk, "evil");
  const auto report = client.verified_sync(auditor);
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.failure,
            RemoteBlocklistClient::SyncReport::Failure::kAudit);
}

TEST_F(TlogWireTest, ResilientClientDistrustsEquivocatorPermanently) {
  auto transport = make_transport();
  auto node = std::make_optional<BlocklistServiceNode>(
      transport, "scamdb", *server_, oprf::Oracle::fast(),
      net::NodeLimits(), nullptr, &*publisher_);

  net::ResilienceConfig config;
  config.hedge_after_ms = 0.0;
  obs::ManualClock clock;
  net::ResilientClient client(transport, {"scamdb"}, client_rng_, config,
                              &clock);
  client.pin_tlog_key("scamdb", key_.pk);
  ASSERT_EQ(client.sync(), 1u);
  ASSERT_NE(client.tlog_auditor("scamdb"), nullptr);
  EXPECT_TRUE(client.tlog_auditor("scamdb")->trusted());
  EXPECT_FALSE(client.distrusted("scamdb"));
  const auto fresh_answer = client.query(corpus_[0]);
  EXPECT_EQ(fresh_answer.freshness, net::Freshness::kFresh);
  EXPECT_EQ(fresh_answer.verdict,
            net::ResilientClient::Outcome::Verdict::kListed);

  // The provider turns equivocator.
  node.reset();
  const auto honest = publisher_->latest_checkpoint();
  auto other_root = honest.root;
  other_root[11] ^= 0x80;
  const auto forged = sign_checkpoint(key_, honest.tree_size, other_root,
                                      honest.epoch, publisher_rng_);
  transport.register_endpoint(
      "scamdb", [this, &forged](ByteView frame) -> std::optional<Bytes> {
        const auto request = net::parse_request_frame(frame);
        if (!request) {
          return net::encode_response_frame(net::Status::kBadRequest);
        }
        if (request->method == net::Method::kInfo) {
          net::ServiceInfo info;
          info.lambda = server_->lambda();
          info.entry_count = server_->entry_count();
          return net::encode_response_frame(net::Status::kOk,
                                            net::encode_info(info));
        }
        if (request->method == net::Method::kTlogCheckpoint) {
          return net::encode_response_frame(net::Status::kOk,
                                            forged.to_bytes());
        }
        return net::encode_response_frame(net::Status::kBadRequest);
      });

  const auto distrusted_before =
      counter("cbl_tlog_providers_distrusted_total", {});
  (void)client.sync();
  EXPECT_TRUE(client.distrusted("scamdb"));
  EXPECT_EQ(counter("cbl_tlog_providers_distrusted_total", {}),
            distrusted_before + 1);

  // A condemned provider gets no query traffic: the answer degrades
  // (stale cache here) and is never kFresh again, even though the
  // endpoint is up and would answer.
  const auto degraded = client.query(corpus_[0]);
  EXPECT_NE(degraded.freshness, net::Freshness::kFresh);
  EXPECT_EQ(degraded.verdict,
            net::ResilientClient::Outcome::Verdict::kListed);
  // And sync() refuses to talk to it at all.
  const auto calls_before = transport.stats().calls;
  EXPECT_EQ(client.sync(), 0u);
  EXPECT_EQ(transport.stats().calls, calls_before);
}

}  // namespace
}  // namespace cbl::tlog
