// The curated-registry lifecycle on chain: two providers apply with
// stakes, decentralized evaluations decide who gets listed, a watchdog's
// challenge delists a degraded provider (slashing its stake), and expiry
// forces periodic re-evaluation — the paper's trustless alternative to
// "just trust Google Safe Browsing".
//
//   ./examples/registry_lifecycle
#include <cstdio>

#include "chain/blockchain.h"
#include "common/rng.h"
#include "voting/ceremony.h"
#include "voting/registry.h"

namespace {

using namespace cbl;

// One decentralized evaluation whose committee splits `yes`/`no`.
voting::EvaluationContract& run_evaluation(
    chain::Blockchain& chain, unsigned yes, unsigned no, ChaChaRng& rng,
    std::vector<std::unique_ptr<voting::Ceremony>>& keep_alive) {
  voting::EvaluationConfig cfg;
  cfg.thresh = cfg.committee_size = yes + no;
  cfg.deposit = 10;
  cfg.provider_deposit = 2 * (yes + no);
  std::vector<unsigned> votes;
  for (unsigned i = 0; i < yes; ++i) votes.push_back(1);
  for (unsigned i = 0; i < no; ++i) votes.push_back(0);
  keep_alive.push_back(
      std::make_unique<voting::Ceremony>(chain, cfg, votes, rng));
  keep_alive.back()->run();
  return keep_alive.back()->contract();
}

const char* status_name(voting::RegistryContract::ListingStatus s) {
  using S = voting::RegistryContract::ListingStatus;
  switch (s) {
    case S::kPendingEvaluation: return "pending-evaluation";
    case S::kListed: return "LISTED";
    case S::kChallenged: return "challenged";
    case S::kDelisted: return "DELISTED";
  }
  return "?";
}

}  // namespace

int main() {
  auto rng = ChaChaRng::from_string_seed("registry-lifecycle");
  chain::Blockchain chain;
  std::vector<std::unique_ptr<voting::Ceremony>> ceremonies;

  voting::RegistryConfig cfg;
  cfg.min_stake = 100;
  cfg.listing_period = 50;
  cfg.winner_share_percent = 50;
  voting::RegistryContract registry(chain, cfg);

  const auto acme = chain.ledger().create_account("acme-blocklists");
  const auto shady = chain.ledger().create_account("shady-lists-inc");
  const auto watchdog = chain.ledger().create_account("watchdog");
  chain.ledger().mint(acme, 500);
  chain.ledger().mint(shady, 500);
  chain.ledger().mint(watchdog, 500);

  std::printf("=== applications ===\n");
  registry.apply(acme, "acme", 100);
  registry.apply(shady, "shady", 100);
  std::printf("acme and shady applied with 100-token stakes\n");

  std::printf("\n=== initial evaluations ===\n");
  registry.record_evaluation("acme", run_evaluation(chain, 5, 0, rng,
                                                    ceremonies));
  registry.record_evaluation("shady", run_evaluation(chain, 1, 4, rng,
                                                     ceremonies));
  std::printf("acme:  %s\n",
              status_name(registry.lookup("acme")->status));
  std::printf("shady: %s (stake refunded: balance %lld)\n",
              registry.lookup("shady") ? "still pending?!" : "dismissed",
              static_cast<long long>(chain.ledger().balance(shady)));

  std::printf("\n=== acme degrades; the watchdog challenges ===\n");
  registry.open_challenge(watchdog, "acme", 100);
  std::printf("challenge open (watchdog staked 100; acme still serves "
              "users meanwhile: %s)\n",
              registry.is_listed("acme") ? "listed" : "not listed");
  registry.resolve_challenge("acme",
                             run_evaluation(chain, 1, 4, rng, ceremonies));
  std::printf("re-evaluation rejected acme -> %s\n",
              status_name(registry.lookup("acme")->status));
  std::printf("balances: acme %lld (lost stake), watchdog %lld "
              "(stake back + 50%% of the slash), treasury %lld\n",
              static_cast<long long>(chain.ledger().balance(acme)),
              static_cast<long long>(chain.ledger().balance(watchdog)),
              static_cast<long long>(
                  chain.ledger().balance(chain.ledger().treasury())));

  std::printf("\n=== periodic re-evaluation (expiry) ===\n");
  const auto fresh = chain.ledger().create_account("fresh-provider");
  chain.ledger().mint(fresh, 500);
  registry.apply(fresh, "fresh", 120);
  registry.record_evaluation("fresh",
                             run_evaluation(chain, 4, 1, rng, ceremonies));
  std::printf("fresh listed until block %llu\n",
              static_cast<unsigned long long>(
                  registry.lookup("fresh")->expires_at_block));
  for (int i = 0; i < 50; ++i) chain.seal_block();
  registry.flag_expired("fresh");
  std::printf("after %d blocks anyone may flag it: %s -> must re-evaluate\n",
              50, status_name(registry.lookup("fresh")->status));
  registry.record_evaluation("fresh",
                             run_evaluation(chain, 5, 0, rng, ceremonies));
  std::printf("re-approved: %s\n",
              status_name(registry.lookup("fresh")->status));

  std::printf("\ntotal registry + evaluation gas burned: %llu (%0.2f USD)\n",
              static_cast<unsigned long long>(chain.total_gas()),
              chain.schedule().gas_to_usd(chain.total_gas()));
  return 0;
}
