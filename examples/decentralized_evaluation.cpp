// The full Fig. 3 / Fig. 4 workflow on the simulated blockchain:
// candidates shield stakes and register with NIZK-verified commitments,
// the VRF sortition picks a committee, the committee votes in the
// self-tallying second round, the chain solves the small DLP, and
// payoffs flow through the shielded pool to fresh anonymous accounts.
// An adversarial shareholder trying to forge proofs is rejected on chain.
//
//   ./examples/decentralized_evaluation
#include <cstdio>

#include "chain/blockchain.h"
#include "voting/ceremony.h"

int main() {
  using namespace cbl;

  auto rng = ChaChaRng::from_string_seed("decentralized-evaluation");
  chain::Blockchain chain;

  voting::EvaluationConfig config;
  config.thresh = 9;          // candidate pool (dilution against coercion)
  config.committee_size = 5;  // N
  config.deposit = 100;
  config.reward = 1;
  config.penalty = 1;
  config.provider_deposit = 10;

  // 6 of 9 candidates think the proposed blocklist service is good.
  const std::vector<unsigned> votes = {1, 1, 0, 1, 1, 0, 1, 0, 1};
  voting::Ceremony ceremony(chain, config, votes, rng);

  std::printf("=== registration ===\n");
  ceremony.fund_and_shield();

  // --- adversarial attempt: register with a forged pi_A -----------------
  {
    voting::Shareholder mallory(chain.crs(), rng, 1, config.deposit);
    const auto acct = chain.ledger().create_account("mallory");
    chain.ledger().mint(acct, config.deposit);
    chain.shielded_pool().shield(acct, config.deposit, mallory.deposit_note(),
                                 mallory.make_shield_proof(rng));
    auto forged = mallory.build_round1(rng);
    forged.proof_a.omega = forged.proof_a.omega + ec::Scalar::one();
    try {
      ceremony.contract().register_shareholder(acct, forged);
      std::printf("BUG: forged registration accepted!\n");
    } catch (const ChainError& e) {
      std::printf("forged registration rejected on chain: %s\n", e.what());
    }
  }

  ceremony.register_all();
  std::printf("%zu candidates registered; challenge nu = %s...\n",
              ceremony.contract().registered_count(),
              to_hex(ceremony.contract().challenge()).substr(0, 16).c_str());

  std::printf("\n=== VRF sortition ===\n");
  ceremony.reveal_all();
  ceremony.finalize_committee();
  std::printf("committee (by VRF ranking): ");
  for (const auto& p : ceremony.participants()) {
    if (ceremony.contract().is_selected(p.index)) {
      std::printf("#%zu(vote=%u) ", p.index, p.shareholder->vote());
    }
  }
  std::printf("\n");

  std::printf("\n=== auto-tally ===\n");
  ceremony.vote_all();
  const auto& outcome = ceremony.contract().outcome();
  std::printf("solveDLP(g, V) = %llu of %zu -> service %s\n",
              static_cast<unsigned long long>(outcome.tally),
              config.committee_size,
              outcome.approved ? "APPROVED" : "REJECTED");

  std::printf("\n=== payoff through the shielded pool ===\n");
  ceremony.payoff_and_withdraw();
  for (const auto& p : ceremony.participants()) {
    if (!ceremony.contract().is_selected(p.index)) continue;
    std::printf("committee member #%zu withdrew %lld tokens to a fresh "
                "anonymous account\n",
                p.index,
                static_cast<long long>(
                    chain.ledger().balance(p.payout_account)));
  }

  std::printf("\n=== on-chain cost accounting ===\n");
  std::printf("proof bytes stored on chain: %zu\n",
              ceremony.contract().stored_proof_bytes());
  std::printf("total gas across the ceremony: %llu (%.2f USD at %.1f gwei)\n",
              static_cast<unsigned long long>(chain.total_gas()),
              chain.schedule().gas_to_usd(chain.total_gas()),
              chain.schedule().gwei_per_gas);
  std::printf("chain emitted %zu public events; every acceptance decision "
              "above was proof-checked, never trusted.\n",
              chain.events().size());
  return 0;
}
