// Operational scenario: a provider ingests daily scam feeds (with the
// duplicate-heavy shape of real abuse databases), expires stale entries,
// rotates its OPRF key, and is periodically re-evaluated by the
// decentralized registry; a skeptical third party later forces a
// challenge re-evaluation after the provider silently degrades.
//
//   ./examples/scam_feed
#include <cstdio>

#include "blocklist/generator.h"
#include "core/service.h"

int main() {
  using namespace cbl;

  auto rng = ChaChaRng::from_string_seed("scam-feed");

  core::ProviderConfig pcfg;
  pcfg.lambda = 8;
  core::BlocklistProvider provider("cryptoscamdb.example", pcfg, rng);

  // --- a week of feeds ---------------------------------------------------
  std::printf("=== ingesting 7 daily feeds ===\n");
  std::uint64_t day_epoch = 1'650'000'000;
  for (int day = 0; day < 7; ++day) {
    blocklist::FeedConfig fcfg;
    fcfg.count = 400;
    fcfg.duplicate_rate = 0.25;  // abuse reports repeat heavily
    fcfg.epoch_start = day_epoch;
    fcfg.epoch_end = day_epoch + 86'400;
    const auto feed = blocklist::generate_feed(fcfg, rng);
    const auto added = provider.ingest(feed);
    std::printf("day %d: %zu reports, %zu new unique addresses (total %zu)\n",
                day, feed.size(), added, provider.store().size());
    day_epoch += 86'400;
  }

  std::printf("\ncategory breakdown:\n");
  for (const auto& b : provider.store().breakdown()) {
    std::printf("  %-16s %zu\n", blocklist::category_name(b.category).c_str(),
                b.count);
  }

  // --- user traffic with caching -----------------------------------------
  core::BlocklistUser user(provider, rng);
  const auto addresses = provider.published_entries();
  int hits = 0;
  for (int i = 0; i < 40; ++i) {
    if (user.query(addresses[static_cast<std::size_t>(i) * 7]).listed) ++hits;
  }
  std::printf("\nspot queries: %d/40 listed (expected 40)\n", hits);

  // --- maintenance: expiry + key rotation ---------------------------------
  const auto removed = provider.expire_entries(1'650'000'000 + 2 * 86'400);
  provider.rotate_key();
  user.sync_prefix_list();
  std::printf("expired %zu stale entries, rotated OPRF key; service now at "
              "%zu entries\n",
              removed, provider.store().size());

  // --- decentralized registry --------------------------------------------
  chain::Blockchain chain;
  voting::EvaluationConfig vcfg;
  vcfg.thresh = 5;
  vcfg.committee_size = 3;
  vcfg.deposit = 50;
  vcfg.provider_deposit = 20;
  core::EvaluationCoordinator coordinator(chain, vcfg,
                                          /*period_blocks=*/10, rng);

  auto entry = coordinator.evaluate(provider, 15);
  std::printf("\n=== decentralized evaluation ===\n");
  std::printf("registry['%s']: %s (tally %llu/%zu), next review at block "
              "%llu\n",
              entry.provider_name.c_str(),
              entry.approved ? "APPROVED" : "REJECTED",
              static_cast<unsigned long long>(entry.last_outcome.tally),
              vcfg.committee_size,
              static_cast<unsigned long long>(entry.next_evaluation_block));

  // --- the provider degrades; a challenger forces re-evaluation ----------
  std::printf("\n=== provider silently serves only half its list ===\n");
  const auto published = provider.published_entries();
  std::vector<std::string> half(published.begin(),
                                published.begin() +
                                    static_cast<long>(published.size() / 2));
  provider.server().setup(half);

  const auto challenger = chain.ledger().create_account("watchdog");
  chain.ledger().mint(challenger, vcfg.provider_deposit + 10);
  entry = coordinator.challenge(provider, challenger, vcfg.provider_deposit,
                                25);
  std::printf("challenge verdict: %s (tally %llu/%zu) — the registry now "
              "warns users away.\n",
              entry.approved ? "APPROVED" : "REJECTED",
              static_cast<unsigned long long>(entry.last_outcome.tally),
              vcfg.committee_size);
  return 0;
}
