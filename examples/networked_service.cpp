// A "deployment-shaped" walkthrough: a blocklist provider runs as a
// service node behind a lossy wide-area transport, users discover its
// parameters over the wire, sync the prefix list, and issue private
// queries with retries — every message crossing the boundary in the
// canonical binary wire format.
//
//   ./examples/networked_service
#include <cstdio>

#include "blocklist/generator.h"
#include "common/rng.h"
#include "net/service_node.h"

int main() {
  using namespace cbl;

  auto rng = ChaChaRng::from_string_seed("networked");

  // --- provider process ---------------------------------------------------
  auto corpus_rng = ChaChaRng::from_string_seed("networked-corpus");
  const auto corpus =
      blocklist::generate_corpus(5'000, corpus_rng).addresses();
  oprf::OprfServer server(oprf::Oracle::fast(), 12, rng);
  server.setup(corpus);

  // --- wide-area network ----------------------------------------------------
  net::TransportConfig net_cfg;
  net_cfg.latency_ms_min = 20;
  net_cfg.latency_ms_max = 80;
  net_cfg.drop_rate = 0.05;  // 5% loss
  net::Transport transport(net_cfg, rng);
  net::BlocklistServiceNode node(transport, "blocklist.example:443", server,
                                 oprf::Oracle::fast());

  // --- user process -----------------------------------------------------------
  net::RemoteClientConfig client_cfg;
  client_cfg.max_retries = 4;
  net::RemoteBlocklistClient client(transport, "blocklist.example:443", rng,
                                    client_cfg);
  std::printf("discovered service: lambda=%u, oracle=%s, %llu entries, "
              "epoch %llu\n",
              client.info().lambda,
              client.info().oracle_kind ? "argon2id" : "fast",
              static_cast<unsigned long long>(client.info().entry_count),
              static_cast<unsigned long long>(client.info().epoch));

  if (client.sync_prefix_list()) {
    std::printf("prefix list synced (%zu non-empty prefixes)\n",
                server.prefix_list().size());
  }

  // A wallet checking outgoing payments: mostly clean addresses, a few
  // known scams.
  auto wallet_rng = ChaChaRng::from_string_seed("wallet");
  int local = 0, online = 0, listed = 0;
  double total_rtt = 0;
  for (int i = 0; i < 60; ++i) {
    const bool check_scam = i % 10 == 0;
    const std::string address =
        check_scam ? corpus[static_cast<std::size_t>(i) * 7]
                   : blocklist::random_address(blocklist::Chain::kBitcoin,
                                               wallet_rng);
    const auto outcome = client.query(address);
    if (outcome.kind != net::RemoteBlocklistClient::QueryOutcome::Kind::kOk) {
      std::printf("query failed (%d attempts) — network trouble\n",
                  outcome.attempts);
      continue;
    }
    if (outcome.resolved_locally) {
      ++local;
    } else {
      ++online;
      total_rtt += outcome.rtt_ms;
    }
    if (outcome.listed) {
      ++listed;
      std::printf("BLOCKED payment to %s (known scam)\n", address.c_str());
    }
  }

  std::printf("\n60 payment checks: %d resolved locally, %d online "
              "(avg RTT %.0f ms), %d blocked\n",
              local, online, online ? total_rtt / online : 0.0, listed);
  const auto& stats = transport.stats();
  std::printf("network: %llu calls, %llu drops ridden out by retries, "
              "%llu B up / %llu B down\n",
              static_cast<unsigned long long>(stats.calls),
              static_cast<unsigned long long>(stats.drops),
              static_cast<unsigned long long>(stats.bytes_sent),
              static_cast<unsigned long long>(stats.bytes_received));
  std::printf("\nThe provider never saw a plaintext address: only %u-bit "
              "prefixes and blinded points crossed the wire.\n",
              client.info().lambda);
  return 0;
}
