// End-to-end observability walkthrough: runs a provider behind the
// simulated wide-area transport, drives user traffic (prefix fast path,
// bucket cache, retries), runs one full evaluation ceremony, then
// "scrapes" the process — first a human-readable digest (counters, RTT
// percentiles, ceremony phase timings), then the raw Prometheus text
// exposition a monitoring stack would ingest, and the JSON snapshot.
//
//   ./examples/observability_demo [--json]
#include <cstdio>
#include <cstring>
#include <string>

#include "blocklist/generator.h"
#include "common/rng.h"
#include "net/service_node.h"
#include "obs/obs.h"
#include "voting/ceremony.h"

namespace {

double histogram_quantile(const std::vector<cbl::obs::MetricSnapshot>& samples,
                          const std::string& name, double q,
                          const cbl::obs::Labels& labels = {}) {
  for (const auto& s : samples) {
    if (s.name == name && s.labels == labels) {
      return cbl::obs::quantile_from_buckets(s.bounds, s.bucket_counts, q);
    }
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cbl;
  const bool want_json = argc > 1 && std::strcmp(argv[1], "--json") == 0;

  auto& registry = obs::MetricsRegistry::global();
  obs::TraceLog trace(256);
  obs::set_trace_log(&trace);

  auto rng = ChaChaRng::from_string_seed("obs-demo");

  // --- provider + service node over a lossy WAN ---------------------------
  auto corpus_rng = ChaChaRng::from_string_seed("obs-demo-corpus");
  const auto corpus =
      blocklist::generate_corpus(4'000, corpus_rng).addresses();
  oprf::OprfServer server(oprf::Oracle::fast(), 10, rng);
  server.setup(corpus);

  net::TransportConfig net_cfg;
  net_cfg.latency_ms_min = 15;
  net_cfg.latency_ms_max = 90;
  net_cfg.drop_rate = 0.03;
  net::Transport transport(net_cfg, rng);
  net::BlocklistServiceNode node(transport, "blocklist.example:443", server,
                                 oprf::Oracle::fast());

  net::RemoteBlocklistClient client(transport, "blocklist.example:443", rng);
  client.sync_prefix_list();

  auto wallet_rng = ChaChaRng::from_string_seed("obs-demo-wallet");
  int blocked = 0;
  for (int i = 0; i < 120; ++i) {
    const std::string address =
        i % 12 == 0 ? corpus[static_cast<std::size_t>(i) * 5]
                    : blocklist::random_address(blocklist::Chain::kBitcoin,
                                                wallet_rng);
    const auto outcome = client.query(address);
    if (outcome.kind == net::RemoteBlocklistClient::QueryOutcome::Kind::kOk &&
        outcome.listed) {
      ++blocked;
    }
  }

  // --- one decentralized evaluation ceremony -------------------------------
  chain::Blockchain chain;
  voting::EvaluationConfig cfg;
  cfg.thresh = 12;
  cfg.committee_size = 7;
  std::vector<unsigned> votes(cfg.thresh, 1);
  votes[3] = 0;
  voting::Ceremony ceremony(chain, cfg, votes, rng);
  const auto result = ceremony.run();

  // --- scrape ---------------------------------------------------------------
  const auto samples = registry.snapshot();

  std::printf("=== digest ===\n");
  std::printf("wallet run: %d payments blocked; ceremony %s "
              "(%zu committee members, %zu proof bytes on chain)\n\n",
              blocked, result.outcome.approved ? "APPROVED" : "REJECTED",
              result.committee_indices.size(), result.stored_proof_bytes);
  for (const auto& s : samples) {
    if (s.kind != obs::MetricSnapshot::Kind::kCounter || s.value == 0) {
      continue;
    }
    std::string labels;
    for (const auto& [k, v] : s.labels) labels += " " + k + "=" + v;
    std::printf("  %-36s%-24s %.0f\n", s.name.c_str(), labels.c_str(),
                s.value);
  }
  std::printf("\nRTT percentiles (ms): p50=%.1f p90=%.1f p99=%.1f\n",
              histogram_quantile(samples, "cbl_net_rtt_ms", 0.50),
              histogram_quantile(samples, "cbl_net_rtt_ms", 0.90),
              histogram_quantile(samples, "cbl_net_rtt_ms", 0.99));
  std::printf("OPRF eval (ms):       p50=%.3f p99=%.3f\n",
              histogram_quantile(samples, "cbl_oprf_eval_ms", 0.50),
              histogram_quantile(samples, "cbl_oprf_eval_ms", 0.99));

  std::printf("\nceremony phase timings (p50 ms):\n");
  for (const char* phase :
       {"ceremony.fund_and_shield", "ceremony.commit", "ceremony.vrf_reveal",
        "ceremony.sortition", "ceremony.vote", "ceremony.tally_and_payoff",
        "voting.nizk_verify"}) {
    const double p50 = histogram_quantile(
        samples, obs::kSpanHistogramName, 0.50, {{"span", phase}});
    std::printf("  %-28s %8.3f\n", phase, p50);
  }

  std::printf("\n=== Prometheus exposition ===\n%s",
              obs::to_prometheus(samples).c_str());

  if (want_json) {
    std::printf("\n=== JSON snapshot ===\n%s\n",
                obs::to_json(samples).c_str());
    std::printf("\n=== trace ring buffer (last %zu spans) ===\n%s\n",
                trace.snapshot().size(),
                obs::trace_to_json(trace.snapshot()).c_str());
  }

  obs::set_trace_log(nullptr);
  return 0;
}
