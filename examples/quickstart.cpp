// Quickstart: a provider publishes a cryptocurrency blocklist, a user
// privately checks two payment addresses against it — one scam, one
// clean — without the provider ever learning what was asked.
//
//   ./examples/quickstart
#include <cstdio>

#include "blocklist/generator.h"
#include "core/service.h"

int main() {
  using namespace cbl;

  auto rng = ChaChaRng::from_string_seed("quickstart");

  // --- Provider side: ingest a scam feed and publish the service --------
  core::ProviderConfig config;
  config.lambda = 8;  // 256 buckets; k ~ |S| / 256 entries of anonymity
  core::BlocklistProvider provider("scamdb.example", config, rng);

  blocklist::FeedConfig feed_config;
  feed_config.count = 2'000;
  const auto feed = blocklist::generate_feed(feed_config, rng);
  provider.ingest(feed);
  std::printf("provider '%s' serving %zu unique scam addresses (lambda=%u)\n",
              provider.name().c_str(), provider.store().size(),
              provider.lambda());

  const auto stats = provider.server().stats();
  std::printf("buckets: %zu non-empty, k-anonymity >= %zu, avg response %zu B\n",
              stats.buckets_nonempty, stats.k_anonymity,
              stats.avg_response_bytes);

  // --- User side: private membership queries -----------------------------
  core::BlocklistUser user(provider, rng);

  const std::string scam_address = feed.front().address;
  auto result = user.query(scam_address);
  std::printf("\nquery %-45s -> %s%s\n", scam_address.c_str(),
              result.listed ? "LISTED" : "clean",
              result.metadata
                  ? (" [" + to_string(*result.metadata) + "]").c_str()
                  : "");

  const std::string clean_address =
      blocklist::random_address(blocklist::Chain::kEthereum, rng);
  result = user.query(clean_address);
  std::printf("query %-45s -> %s (interaction needed: %s)\n",
              clean_address.c_str(), result.listed ? "LISTED" : "clean",
              result.required_interaction ? "yes" : "no — prefix list");

  // What the provider saw: a lambda-bit prefix and a blinded group
  // element. Nothing else.
  std::printf("\nThe provider observed only %u-bit prefixes and blinded "
              "points; the queried addresses never left this process in "
              "the clear.\n",
              provider.lambda());
  return 0;
}
