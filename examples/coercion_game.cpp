// The Section V-E analysis, numerically: utility tables for society M
// versus coercers A, the two undominated coercer strategies, how VRF
// pool dilution inflates k*, and the Stackelberg equilibrium over a
// ladder of protection methods.
//
//   ./examples/coercion_game
#include <cstdio>

#include "game/game.h"
#include "game/sortition_math.h"

int main() {
  using namespace cbl::game;

  GameParams params;
  params.society_value_fair = 100;
  params.society_loss_if_biased = 60;
  params.coercer_value_favoured = 40;
  params.coercer_loss_otherwise = 40;
  params.max_coercible = 40;

  const std::uint64_t committee = 5;
  const std::uint64_t majority = committee / 2 + 1;

  // --- pool dilution: the VRF defence ------------------------------------
  std::printf("=== VRF pool dilution (N = %llu committee seats) ===\n",
              static_cast<unsigned long long>(committee));
  std::printf("%-8s %-22s %-12s\n", "pool", "k* (90%% capture)",
              "vs no dilution");
  for (std::uint64_t pool : {5ull, 10ull, 20ull, 40ull, 80ull}) {
    const auto k = effective_k_star(pool, committee, 0.90);
    std::printf("%-8llu %-22llu %.1fx\n",
                static_cast<unsigned long long>(pool),
                static_cast<unsigned long long>(k),
                static_cast<double>(k) / static_cast<double>(majority));
  }

  // --- protection ladder ---------------------------------------------------
  // psi_0: plaintext votes, known identities. psi_1: anonymized identities
  // (coercion per head costs more). psi_2: anonymity + VRF dilution over a
  // 40-candidate pool. psi_3: heavyweight mixnet infrastructure.
  const std::vector<ProtectionMethod> ladder = {
      {"psi0: none", 0.0, 2.0, majority},
      {"psi1: anonymized ids", 1.5, 8.0, majority},
      {"psi2: anon + VRF pool 40", 2.5, 8.0,
       effective_k_star(40, committee, 0.90)},
      {"psi3: heavy mixnets", 25.0, 20.0,
       effective_k_star(80, committee, 0.90)},
  };

  std::printf("\n=== coercer best responses ===\n");
  std::printf("%-28s %-6s %-10s %-10s %-10s\n", "protection", "k*", "A plays",
              "U_A", "U_M");
  for (const auto& psi : ladder) {
    const auto n = coercer_best_response(params, psi);
    std::printf("%-28s %-6llu %-10llu %-10.1f %-10.1f %s\n", psi.name.c_str(),
                static_cast<unsigned long long>(psi.k_star),
                static_cast<unsigned long long>(n),
                coercer_utility(params, psi, n),
                society_utility(params, psi, n),
                coercion_deterred(params, psi) ? "(deterred)" : "(coerces!)");
  }

  const auto solution = solve_stackelberg(params, ladder);
  std::printf("\n=== Stackelberg equilibrium ===\n");
  std::printf("society commits to: %s\n",
              ladder[solution.method_index].name.c_str());
  std::printf("coercer best response: n = %llu\n",
              static_cast<unsigned long long>(solution.coercer_response));
  std::printf("U_M = %.1f, U_A = %.1f\n", solution.society_utility,
              solution.coercer_utility);
  std::printf("\nReading: anonymization raises per-head coercion cost; VRF "
              "dilution multiplies how many heads must be bought. Their "
              "combination deters rational coercion at a small fraction of "
              "the cost of heavyweight infrastructure — the paper's core "
              "cryptoeconomic claim.\n");
  return 0;
}
