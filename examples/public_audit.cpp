// Public auditability, end to end: a third party that trusts NOTHING —
// not the chain's execution, not the committee — downloads a proposal's
// public record, batch re-verifies every proof, re-runs the sortition,
// re-derives the tally, and checks a transaction receipt against the
// sealed block's Merkle root. Then it tries the same on a doctored
// record and watches it fail.
//
//   ./examples/public_audit
#include <cstdio>

#include "chain/blockchain.h"
#include "common/rng.h"
#include "voting/ceremony.h"
#include "voting/replay.h"

int main() {
  using namespace cbl;

  auto rng = ChaChaRng::from_string_seed("public-audit");
  chain::Blockchain chain;

  // --- a real proposal runs on chain --------------------------------------
  voting::EvaluationConfig cfg;
  cfg.thresh = 8;
  cfg.committee_size = 5;
  cfg.deposit = 100;
  cfg.provider_deposit = 10;
  const std::vector<unsigned> votes = {1, 1, 0, 1, 1, 0, 1, 0};
  voting::Ceremony ceremony(chain, cfg, votes, rng);
  ceremony.fund_and_shield();
  ceremony.register_all();
  ceremony.reveal_all();
  ceremony.finalize_committee();
  ceremony.vote_all();
  chain.seal_block();

  const auto& outcome = ceremony.contract().outcome();
  std::printf("chain announced: tally %llu/%llu -> %s\n",
              static_cast<unsigned long long>(outcome.tally),
              static_cast<unsigned long long>(outcome.total_weight),
              outcome.approved ? "APPROVED" : "REJECTED");

  // --- the auditor replays the public record ------------------------------
  const auto exported = ceremony.contract().export_record();
  voting::ProposalRecord record;
  record.config = cfg;
  record.challenge = exported.challenge;
  record.round1 = exported.round1;
  record.vrf_reveals = exported.vrf_reveals;
  record.committee = exported.committee;
  record.round2 = exported.round2;
  record.claimed_outcome = exported.outcome;

  auto audit_rng = ChaChaRng::from_string_seed("auditor");
  const auto report = voting::replay_proposal(chain.crs(), record, audit_rng);
  std::printf("\nindependent replay: %s (%zu proofs re-verified, batched)\n",
              report.valid ? "EVERYTHING CHECKS OUT" : "VIOLATIONS FOUND",
              report.proofs_checked);

  // --- light-client check of a single transaction -------------------------
  for (std::size_t i = 0; i < chain.receipts().size(); ++i) {
    if (chain.receipts()[i].method == "Vote") {
      const auto proof = chain.receipt_inclusion_proof(0, i);
      const bool ok = chain::Blockchain::verify_receipt_inclusion(
          chain.headers()[0], chain.receipts()[i], proof);
      std::printf("light client: 'Vote' receipt #%zu included under block-0 "
                  "Merkle root -> %s (%zu-step proof)\n",
                  i, ok ? "verified" : "FAILED", proof.size());
      break;
    }
  }

  // --- now a doctored record -----------------------------------------------
  std::printf("\n--- an indexer serves a doctored record ---\n");
  auto doctored = record;
  doctored.claimed_outcome.approved = !doctored.claimed_outcome.approved;
  auto report2 = voting::replay_proposal(chain.crs(), doctored, audit_rng);
  std::printf("flipped outcome bit  -> %s: %s\n",
              report2.valid ? "missed!" : "caught",
              report2.violations.empty() ? ""
                                         : report2.violations.front().c_str());

  doctored = record;
  doctored.round2[1][50] ^= 0x20;  // one bit, deep inside a pi_B
  report2 = voting::replay_proposal(chain.crs(), doctored, audit_rng);
  std::printf("one flipped proof bit -> %s: %s\n",
              report2.valid ? "missed!" : "caught",
              report2.violations.empty() ? ""
                                         : report2.violations.front().c_str());

  std::printf("\nNo secrets, no trust in the executor: the paper's "
              "\"publicly verifiable\" claim, exercised.\n");
  return 0;
}
