// Degraded-mode walkthrough: a wallet's ResilientClient rides out a
// provider blackout without ever inventing a membership verdict.
//
// A FaultInjector black-holes the only provider for a window of virtual
// time. The demo drives queries across the outage and prints a timeline
// showing the degradation ladder in action — fresh answers before the
// blackout, stale-cache / prefix-only answers while the circuit breaker
// is open, a half-open probe when the cool-off elapses, and fresh
// answers again once the probe heals the breaker. It ends with the
// resilience slice of the Prometheus exposition a monitoring stack
// would scrape.
//
//   ./examples/degraded_mode_demo
#include <cstdio>
#include <string>
#include <unordered_set>
#include <vector>

#include "blocklist/generator.h"
#include "chaos/chaos.h"
#include "common/rng.h"
#include "net/resilient_client.h"
#include "net/service_node.h"
#include "obs/obs.h"

namespace {

const char* breaker_name(cbl::net::CircuitBreaker::State state) {
  using State = cbl::net::CircuitBreaker::State;
  switch (state) {
    case State::kClosed: return "closed";
    case State::kOpen: return "open";
    case State::kHalfOpen: return "half-open";
  }
  return "?";
}

}  // namespace

int main() {
  using namespace cbl;

  auto& registry = obs::MetricsRegistry::global();
  obs::ManualClock clock;
  registry.set_clock(&clock);

  // --- one provider, sparse prefix space ----------------------------------
  auto rng = ChaChaRng::from_string_seed("degraded-demo");
  auto corpus_rng = ChaChaRng::from_string_seed("degraded-demo-corpus");
  const auto listed = blocklist::generate_corpus(200, corpus_rng).addresses();
  const std::unordered_set<std::string> listed_set(listed.begin(),
                                                   listed.end());

  oprf::OprfServer server(oprf::Oracle::fast(), 16, rng);
  server.setup(listed);

  net::TransportConfig net_cfg;
  net_cfg.latency_ms_min = 8;
  net_cfg.latency_ms_max = 25;
  net::Transport transport(net_cfg, rng);
  net::BlocklistServiceNode node(transport, "blocklist.example:443", server,
                                 oprf::Oracle::fast());

  // --- the outage: both legs black-holed for [1000ms, 3200ms) -------------
  chaos::FaultPlan plan;
  plan.name = "demo-blackout";
  plan.seed = 42;
  plan.per_endpoint["blocklist.example:443"].blackouts = {{1000.0, 3200.0}};
  chaos::FaultInjector injector(transport, plan, &clock);
  std::printf("chaos: %s\n\n", plan.describe().c_str());

  net::ResilienceConfig cfg;
  cfg.breaker.failure_threshold = 3;
  cfg.breaker.open_ms = 800.0;
  auto client_rng = ChaChaRng::from_string_seed("degraded-demo-client");
  net::ResilientClient client(injector, {"blocklist.example:443"}, client_rng,
                              cfg, &clock);

  // --- traffic across the outage ------------------------------------------
  // Alternate a known-bad address (exercises the OPRF round trip and,
  // during the outage, the stale cache) with wallet-generated clean ones
  // (prefix fast path; during the outage, prefix-only negatives).
  auto wallet_rng = ChaChaRng::from_string_seed("degraded-demo-wallet");
  std::printf("%8s  %-9s  %-10s  %-11s  %s\n", "t(ms)", "address", "verdict",
              "freshness", "breaker");
  for (int i = 0; i < 46; ++i) {
    std::string address;
    if (i % 2 == 0) {
      // Cycle a small working set so outage-time queries repeat addresses
      // answered before the blackout — that is what the stale cache serves.
      address = listed[static_cast<std::size_t>(i) % 10];
    } else {
      do {
        address =
            blocklist::random_address(blocklist::Chain::kBitcoin, wallet_rng);
      } while (listed_set.count(address) != 0);
    }
    const double t = client.now_ms();
    const auto out = client.query(address);
    const char* verdict =
        out.verdict == net::ResilientClient::Outcome::Verdict::kListed
            ? "LISTED"
            : (out.verdict == net::ResilientClient::Outcome::Verdict::kNotListed
                   ? "not-listed"
                   : "unknown");
    std::printf("%8.0f  %-9s  %-10s  %-11s  %s\n", t,
                i % 2 == 0 ? "listed" : "clean", verdict,
                net::to_string(out.freshness),
                breaker_name(client.breaker_state("blocklist.example:443")));
    clock.advance_ms(100);
  }

  // --- what a scrape would see --------------------------------------------
  std::printf("\n=== resilience metrics (Prometheus exposition) ===\n");
  std::vector<obs::MetricSnapshot> resilience;
  for (auto& s : registry.snapshot()) {
    if (s.name.rfind("cbl_net_breaker", 0) == 0 ||
        s.name.rfind("cbl_net_resilient", 0) == 0 ||
        s.name.rfind("cbl_chaos", 0) == 0) {
      resilience.push_back(std::move(s));
    }
  }
  std::printf("%s", obs::to_prometheus(resilience).c_str());

  registry.set_clock(&obs::SteadyClock::instance());
  return 0;
}
