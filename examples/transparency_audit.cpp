// The transparency-log lifecycle end to end: a provider publishes
// signed checkpoints and deltas over its epoch rotations, a client
// mirrors the bucket set by folding verified deltas (never
// re-downloading full buckets), and a forged split-view checkpoint is
// caught as cryptographic proof of equivocation — after which the
// resilient client refuses the provider for good and serves what it can
// from the degradation ladder. Ends with the cbl_tlog_* metric slice.
//
//   ./examples/transparency_audit
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "blocklist/generator.h"
#include "common/rng.h"
#include "net/resilient_client.h"
#include "net/service_node.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "tlog/tlog.h"

using cbl::Bytes;
using cbl::ByteView;
using cbl::ChaChaRng;
namespace blocklist = cbl::blocklist;
namespace net = cbl::net;
namespace obs = cbl::obs;
namespace oprf = cbl::oprf;
namespace tlog = cbl::tlog;

int main() {
  ChaChaRng corpus_rng = ChaChaRng::from_string_seed("audit-demo-corpus");
  ChaChaRng server_rng = ChaChaRng::from_string_seed("audit-demo-server");
  ChaChaRng key_rng = ChaChaRng::from_string_seed("audit-demo-key");
  ChaChaRng pub_rng = ChaChaRng::from_string_seed("audit-demo-pub");
  ChaChaRng client_rng = ChaChaRng::from_string_seed("audit-demo-client");
  ChaChaRng transport_rng = ChaChaRng::from_string_seed("audit-demo-trans");

  // --- provider: blocklist service + transparency publisher --------------
  const auto corpus = blocklist::generate_corpus(64, corpus_rng).addresses();
  oprf::OprfServer server(oprf::Oracle::fast(), 6u, server_rng);
  server.setup(std::span<const std::string>(corpus).first(40));
  const auto key = cbl::nizk::SigningKey::generate(key_rng);
  tlog::EpochPublisher publisher(key, pub_rng);

  net::Transport transport(net::TransportConfig{}, transport_rng);
  auto node = std::make_optional<net::BlocklistServiceNode>(
      transport, "scamdb", server, oprf::Oracle::fast(), net::NodeLimits(),
      nullptr, &publisher);

  std::printf("=== epoch rotations with verified delta sync ===\n");
  net::RemoteBlocklistClient client(transport, "scamdb", client_rng);
  tlog::Auditor auditor(key.pk, "scamdb");

  const auto show = [&](const char* what,
                        const net::RemoteBlocklistClient::SyncReport& r) {
    std::printf("%-26s ok=%d epoch=%llu deltas=%u delta_bytes=%zu "
                "full_bytes=%zu\n",
                what, r.ok ? 1 : 0, static_cast<unsigned long long>(r.epoch),
                r.deltas_applied, r.delta_bytes, r.full_bytes);
  };

  // First contact bootstraps from a full verified download; every epoch
  // rotation after that rides one signed delta.
  show("first sync (full)", client.verified_sync(auditor));
  std::size_t next = 40;
  for (int rotation = 0; rotation < 3; ++rotation) {
    server.add_entries(std::span<const std::string>(corpus).subspan(next, 4));
    next += 4;
    server.remove_entries(
        std::span<const std::string>(corpus).subspan(rotation * 2, 2));
    show("rotation sync (delta)", client.verified_sync(auditor));
  }
  std::printf("mirror: epoch=%llu buckets=%zu trusted=%d "
              "(bit-identical to the server's snapshot: %s)\n",
              static_cast<unsigned long long>(auditor.mirror_epoch()),
              auditor.buckets().size(), auditor.trusted() ? 1 : 0,
              auditor.buckets() == server.bucket_snapshot() ? "yes" : "NO");

  // A resilient client pins the provider's signing key now, while the
  // provider is still honest — equivocation is only provable against a
  // previously accepted view, so the mirror must exist first.
  net::ResilientClient resilient(transport, {"scamdb"}, client_rng);
  resilient.pin_tlog_key("scamdb", key.pk);
  (void)resilient.sync();
  const auto honest_answer = resilient.query(corpus[0]);
  std::printf("resilient query while honest: freshness=%s\n",
              net::to_string(honest_answer.freshness));

  // --- the provider equivocates -------------------------------------------
  // A second validly signed checkpoint for the SAME tree size with a
  // different root is a split view: whatever this provider shows one
  // client, it can no longer show everyone the same log.
  std::printf("\n=== split view: forged checkpoint at the same size ===\n");
  const auto honest = publisher.latest_checkpoint();
  auto forged_root = honest.root;
  forged_root[3] ^= 0x40;
  const auto forged = tlog::sign_checkpoint(key, honest.tree_size,
                                            forged_root, honest.epoch,
                                            pub_rng);
  node.reset();
  transport.register_endpoint(
      "scamdb", [&](ByteView frame) -> std::optional<Bytes> {
        const auto request = net::parse_request_frame(frame);
        if (request && request->method == net::Method::kInfo) {
          net::ServiceInfo info;
          info.lambda = server.lambda();
          info.entry_count = server.entry_count();
          return net::encode_response_frame(net::Status::kOk,
                                            net::encode_info(info));
        }
        if (request && request->method == net::Method::kTlogCheckpoint) {
          return net::encode_response_frame(net::Status::kOk,
                                            forged.to_bytes());
        }
        return net::encode_response_frame(net::Status::kBadRequest);
      });

  const auto caught = client.verified_sync(auditor);
  std::printf("sync vs equivocator: ok=%d failure=%s auditor_trusted=%d\n",
              caught.ok ? 1 : 0,
              caught.failure ==
                      net::RemoteBlocklistClient::SyncReport::Failure::kAudit
                  ? "audit"
                  : "transport",
              auditor.trusted() ? 1 : 0);

  // --- the resilience layer reacts ----------------------------------------
  // The pinned resilient client sees the same split view against the
  // mirror it already accepted and latches permanent distrust: the
  // endpoint gets no further traffic and answers fall down the
  // degradation ladder instead of trusting either fork.
  std::printf("\n=== resilient client: permanent distrust ===\n");
  (void)resilient.sync();
  std::printf("after sync(): distrusted=%d\n",
              resilient.distrusted("scamdb") ? 1 : 0);
  const auto out = resilient.query(corpus[0]);
  std::printf("query(%s): freshness=%s (degraded, never fresh again)\n",
              corpus[0].substr(0, 12).c_str(),
              net::to_string(out.freshness));

  // --- the audit trail in metrics -----------------------------------------
  std::printf("\n=== cbl_tlog_* metric slice ===\n");
  const auto samples = obs::MetricsRegistry::global().snapshot();
  std::string slice;
  for (const auto& line : {obs::to_prometheus(samples)}) {
    std::size_t pos = 0;
    while (pos < line.size()) {
      const std::size_t end = line.find('\n', pos);
      const std::string row = line.substr(pos, end - pos);
      if (row.find("cbl_tlog_") != std::string::npos) slice += row + "\n";
      if (end == std::string::npos) break;
      pos = end + 1;
    }
  }
  std::printf("%s", slice.c_str());
  return 0;
}
