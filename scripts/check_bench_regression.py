#!/usr/bin/env python3
"""Gate BENCH_macro.json against a committed baseline.

Compares the *model* section of a fresh macro-load run (bit-reproducible
virtual-time numbers — see src/load/macro.h) against the baseline
committed at the repo root, and fails when the trajectory drifted:

  * candidate p99 latency      >  baseline * (1 + --max-drift)
  * candidate sustained QPS    <  baseline * (1 - --max-drift)

Before comparing, both files must pass schema + self-consistency
validation (all canonical fields present, p50 <= p99 <= p999, shed rate
in [0, 1], zero wrong verdicts, per-level counts that add up), and the
candidate must have been produced by the same (seed, config) as the
baseline — otherwise the comparison is meaningless and the script fails
loudly rather than green-lighting apples vs oranges.

The "cpu" section (real machine time) is intentionally ignored.

Usage:
  check_bench_regression.py --baseline BENCH_macro.json --candidate fresh.json
  check_bench_regression.py --self-test

Exit codes: 0 = OK, 1 = regression/validation failure, 2 = usage error.
"""

from __future__ import annotations

import argparse
import copy
import json
import sys

DEFAULT_MAX_DRIFT = 0.15

_CONFIG_KEYS = (
    "simulated_clients", "unique_addresses", "listed_addresses", "zipf_s",
    "cache_hit_ratio", "prefix_local_ratio", "offered_qps",
    "queries_per_level", "service_ms", "max_inflight",
    "transport_latency_ms", "lambda", "use_pipeline", "chaos",
    "burst_threads", "burst_queries", "slo",
)
_MODEL_KEYS = (
    "sustained_qps_at_slo", "p50_ms", "p99_ms", "p999_ms", "shed_rate",
    "wrong_verdicts", "freshness", "levels",
)
_FRESHNESS_KEYS = (
    "cache_hit", "prefix_local", "fresh", "stale_cache", "prefix_only",
    "unavailable",
)
_LEVEL_KEYS = (
    "offered_qps", "achieved_qps", "p50_ms", "p99_ms", "p999_ms",
    "shed_rate", "queries", "wire_queries", "wire_attempts", "cache_hits",
    "prefix_local", "shed", "fresh", "stale_cache", "prefix_only",
    "unavailable", "wrong", "slo_ok",
)


class BenchError(Exception):
    """A validation or regression failure, with a human-readable reason."""


def _require(cond: bool, what: str, detail: str) -> None:
    if not cond:
        raise BenchError(f"{what}: {detail}")


def validate(report: dict, what: str) -> None:
    """Schema + self-consistency checks for one BENCH_macro.json."""
    _require(report.get("bench") == "macro", what, "not a macro bench report")
    _require(report.get("schema") == 1, what,
             f"unknown schema {report.get('schema')!r}")
    _require(isinstance(report.get("seed"), int), what, "missing seed")
    for section in ("config", "model", "cpu"):
        _require(isinstance(report.get(section), dict), what,
                 f"missing section {section!r}")
    for key in _CONFIG_KEYS:
        _require(key in report["config"], what, f"config missing {key!r}")
    model = report["model"]
    for key in _MODEL_KEYS:
        _require(key in model, what, f"model missing {key!r}")
    for key in _FRESHNESS_KEYS:
        _require(key in model["freshness"], what,
                 f"model.freshness missing {key!r}")

    _require(model["wrong_verdicts"] == 0, what,
             f"{model['wrong_verdicts']} wrong verdicts — correctness "
             "regression, not a perf number")
    _require(0.0 <= model["shed_rate"] <= 1.0, what,
             f"shed_rate {model['shed_rate']} outside [0, 1]")
    _require(model["p50_ms"] <= model["p99_ms"] <= model["p999_ms"], what,
             "quantiles not monotone: "
             f"p50={model['p50_ms']} p99={model['p99_ms']} "
             f"p999={model['p999_ms']}")
    _require(model["sustained_qps_at_slo"] >= 0.0, what,
             "negative sustained QPS")

    levels = model["levels"]
    _require(isinstance(levels, list) and levels, what, "no levels")
    _require(len(levels) == len(report["config"]["offered_qps"]), what,
             "levels do not match config.offered_qps")
    for i, level in enumerate(levels):
        lwhat = f"{what} level[{i}]"
        for key in _LEVEL_KEYS:
            _require(key in level, lwhat, f"missing {key!r}")
        _require(level["cache_hits"] + level["prefix_local"] +
                 level["wire_queries"] == level["queries"], lwhat,
                 "resolution counts do not sum to queries")
        _require(level["fresh"] + level["stale_cache"] +
                 level["prefix_only"] + level["unavailable"] ==
                 level["wire_queries"], lwhat,
                 "freshness counts do not sum to wire_queries")
        _require(level["wire_attempts"] >= level["wire_queries"], lwhat,
                 "fewer attempts than wire queries")
        _require(0.0 <= level["shed_rate"] <= 1.0, lwhat,
                 f"shed_rate {level['shed_rate']} outside [0, 1]")
        _require(level["p50_ms"] <= level["p99_ms"] <= level["p999_ms"],
                 lwhat, "quantiles not monotone")
        _require(level["wrong"] == 0, lwhat,
                 f"{level['wrong']} wrong verdicts")


def compare(baseline: dict, candidate: dict, max_drift: float) -> list[str]:
    """Returns a list of human-readable regression findings (empty = OK)."""
    _require(baseline["seed"] == candidate["seed"], "compare",
             f"seed mismatch: baseline {baseline['seed']} vs candidate "
             f"{candidate['seed']} — rerun with the baseline seed")
    _require(baseline["config"] == candidate["config"], "compare",
             "config mismatch: baseline and candidate measured different "
             "setups; regenerate the baseline if the config change is "
             "intentional")

    base, cand = baseline["model"], candidate["model"]
    findings = []
    p99_limit = base["p99_ms"] * (1.0 + max_drift)
    if cand["p99_ms"] > p99_limit:
        findings.append(
            f"p99 regression: {cand['p99_ms']:.3f} ms > "
            f"{p99_limit:.3f} ms (baseline {base['p99_ms']:.3f} ms "
            f"+{max_drift:.0%})")
    qps_floor = base["sustained_qps_at_slo"] * (1.0 - max_drift)
    if cand["sustained_qps_at_slo"] < qps_floor:
        findings.append(
            f"sustained-QPS regression: {cand['sustained_qps_at_slo']:.1f} "
            f"< {qps_floor:.1f} (baseline "
            f"{base['sustained_qps_at_slo']:.1f} -{max_drift:.0%})")
    return findings


def check_files(baseline_path: str, candidate_path: str,
                max_drift: float) -> int:
    try:
        with open(baseline_path) as f:
            baseline = json.load(f)
        with open(candidate_path) as f:
            candidate = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"FAIL: cannot load reports: {e}", file=sys.stderr)
        return 1
    try:
        validate(baseline, f"baseline {baseline_path}")
        validate(candidate, f"candidate {candidate_path}")
        findings = compare(baseline, candidate, max_drift)
    except BenchError as e:
        print(f"FAIL: {e}", file=sys.stderr)
        return 1
    if findings:
        for finding in findings:
            print(f"FAIL: {finding}", file=sys.stderr)
        return 1
    base, cand = baseline["model"], candidate["model"]
    print(f"OK: sustained {cand['sustained_qps_at_slo']:.0f} qps "
          f"(baseline {base['sustained_qps_at_slo']:.0f}), "
          f"p99 {cand['p99_ms']:.2f} ms (baseline {base['p99_ms']:.2f}), "
          f"drift tolerance {max_drift:.0%}")
    return 0


# --- self-test -------------------------------------------------------------


def _synthetic_report() -> dict:
    level = {
        "offered_qps": 100.0, "achieved_qps": 98.0, "p50_ms": 1.0,
        "p99_ms": 40.0, "p999_ms": 55.0, "shed_rate": 0.0, "queries": 600,
        "wire_queries": 400, "wire_attempts": 410, "cache_hits": 150,
        "prefix_local": 50, "shed": 0, "fresh": 400, "stale_cache": 0,
        "prefix_only": 0, "unavailable": 0, "wrong": 0, "slo_ok": True,
    }
    return {
        "bench": "macro", "schema": 1, "seed": 1,
        "config": {key: 0 for key in _CONFIG_KEYS} | {"offered_qps": [100.0]},
        "model": {
            "sustained_qps_at_slo": 100.0, "p50_ms": 1.0, "p99_ms": 40.0,
            "p999_ms": 55.0, "shed_rate": 0.0, "wrong_verdicts": 0,
            "freshness": {key: 0 for key in _FRESHNESS_KEYS},
            "levels": [level],
        },
        "cpu": {"per_stage_ns": {}, "burst_qps": 0.0},
    }


def self_test() -> int:
    base = _synthetic_report()
    validate(base, "self-test base")

    ok = copy.deepcopy(base)
    ok["model"]["p99_ms"] = 44.0  # +10% < 15% drift
    assert not compare(base, ok, DEFAULT_MAX_DRIFT), "in-tolerance drift"

    inflated = copy.deepcopy(base)
    inflated["model"]["p99_ms"] = 80.0
    inflated["model"]["p999_ms"] = 90.0
    findings = compare(base, inflated, DEFAULT_MAX_DRIFT)
    assert any("p99 regression" in f for f in findings), "p99 gate dead"

    slower = copy.deepcopy(base)
    slower["model"]["sustained_qps_at_slo"] = 50.0
    findings = compare(base, slower, DEFAULT_MAX_DRIFT)
    assert any("sustained-QPS regression" in f for f in findings), \
        "QPS gate dead"

    for mutate, reason in (
        (lambda r: r["model"].pop("p99_ms"), "missing field"),
        (lambda r: r["model"].__setitem__("wrong_verdicts", 3),
         "wrong verdicts"),
        (lambda r: r["model"].__setitem__("shed_rate", 1.5),
         "shed rate out of range"),
        (lambda r: r["model"].__setitem__("p50_ms", 100.0),
         "non-monotone quantiles"),
        (lambda r: r["model"]["levels"][0].__setitem__("cache_hits", 999),
         "counts that do not sum"),
    ):
        broken = copy.deepcopy(base)
        mutate(broken)
        try:
            validate(broken, "self-test broken")
        except BenchError:
            pass
        else:
            raise AssertionError(f"validation missed: {reason}")

    other_seed = copy.deepcopy(base)
    other_seed["seed"] = 2
    try:
        compare(base, other_seed, DEFAULT_MAX_DRIFT)
    except BenchError:
        pass
    else:
        raise AssertionError("seed mismatch not rejected")

    other_config = copy.deepcopy(base)
    other_config["config"]["offered_qps"] = [100.0, 200.0]
    try:
        compare(base, other_config, DEFAULT_MAX_DRIFT)
    except BenchError:
        pass
    else:
        raise AssertionError("config mismatch not rejected")

    print("check_bench_regression self-test OK")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", help="committed BENCH_macro.json")
    parser.add_argument("--candidate", help="freshly generated report")
    parser.add_argument("--max-drift", type=float, default=DEFAULT_MAX_DRIFT,
                        help="allowed relative drift (default 0.15)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in self-test and exit")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    if not args.baseline or not args.candidate:
        parser.error("--baseline and --candidate are required "
                     "(or use --self-test)")
    if not 0.0 < args.max_drift < 1.0:
        parser.error("--max-drift must be in (0, 1)")
    return check_files(args.baseline, args.candidate, args.max_drift)


if __name__ == "__main__":
    sys.exit(main())
