#!/usr/bin/env python3
"""Whole-program secret-flow lint: the analysis half of the Secret<T>
taint layer (src/common/secret.h).

The type system already stops a `Secret<T>` converting back to T without
an explicit `expose_secret()` (taint-preserving borrow) or
`reveal_for("reason")` (audited declassification). What the compiler
cannot see is a secret flowing onward — through an assignment, a call, a
return value — into code that is variable-time or externally visible.
This lint closes that gap.

Taint sources
  * values of type `Secret<...>`;
  * identifiers declared on a `// ct:secret` line (same annotation
    ct_lint.py keys on).
Taint propagates through assignments and (one level of call-graph)
name-matched function parameters. It does NOT cross the DL boundary:
a group element computed from a secret scalar (RistrettoPoint,
Commitment, encodings of either) is treated as public — recovering the
scalar from g^x is the discrete-log problem, and the constant-time
story of the ladder itself is audited dynamically by the ctcheck
harness. `expose_secret()` preserves taint; `reveal_for(...)` clears it.

Rules
  S1  a tainted value reaches a CBL_VARTIME callee (vartime is only
      legal on public inputs — the gate the Straus/Pippenger
      verification path must pass through);
  S2  a tainted value reaches a sink — WireWriter methods, obs metric /
      trace label strings, printf/format/log calls — without an
      adjacent `ct:declassify(reason)` annotation;
  S3  a `.reveal_for(...)` or `ct::declassify(...)` without a reason (a
      non-empty string literal argument, or for the raw ct:: form an
      adjacent `// ct:declassify(reason)` comment);
  S4  a CBL_VARTIME function without a `// vartime: public-inputs-only`
      justification comment;
  S5  declassification reasons and the DESIGN.md registry drifting: a
      reason used in code but missing from the table between the
      `<!-- declassify-registry:begin/end -->` markers, or a table row
      no code site uses.

Suppression: `// sf:ok(reason)` on the flagged line.

Front-ends: when the clang python bindings and a compile_commands.json
are available the analyzer walks real ASTs (CBL_VARTIME is a clang
`annotate` attribute); otherwise it falls back to a regex analysis of
the same rules and says so. Exit 0 clean / 1 findings / 2 usage error.

Usage:
  scripts/secret_flow_lint.py [--root DIR] [--self-test] [--force-fallback]
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from lintlib import (Finding, SOURCE_GLOBS, SelfTestTree, check_self_test,
                     module_of, strip_strings_and_comments,
                     suppression_pattern)

SUPPRESS = suppression_pattern("sf")

SECRET_ANNOT = re.compile(r"//.*\bct:secret\b")
SECRET_DECL = re.compile(r"\bSecret\s*<[^;=({]*>\s*(?:&\s*)?"
                         r"([A-Za-z_][A-Za-z0-9_]*)\s*[;={(,)]")
DECL_NAME = re.compile(
    r"\b([A-Za-z_][A-Za-z0-9_]*)\s*(?:\[[^\]]*\])?\s*(?:[;={]|=)")
VARTIME_DEF = re.compile(r"\bCBL_VARTIME\b")
VARTIME_JUSTIFY = re.compile(r"//\s*vartime:\s*public-inputs-only\b")
FUNC_NAME_AFTER_VARTIME = re.compile(
    r"\bCBL_VARTIME\b[^;{(]*?([A-Za-z_][A-Za-z0-9_]*)\s*\(")

REVEAL_CALL = re.compile(r"\.\s*reveal_for\s*\(\s*([^)]*)\)")
DECLASSIFY_CALL = re.compile(r"\bct::declassify\s*\(")
DECLASSIFY_ANNOT = re.compile(r"//\s*ct:declassify\(([^)]+)\)")
STRING_REASON = re.compile(r'^\s*"([^"]+)"')

# Types on the public side of the DL boundary: assignments into these
# never propagate taint (the scalar is computationally unrecoverable).
PUBLIC_TYPES = re.compile(
    r"\b(?:RistrettoPoint|Commitment|Encoding|Proof|DleqProof|"
    r"SchnorrProof|bool|void)\b")
SCALARISH_DECL = re.compile(
    r"\b(?:(?:ec::)?Scalar|Secret\s*<[^>]*>|auto|Bytes|"
    r"std::array\s*<\s*(?:std::)?uint8_t[^>]*>)\s+(?:const\s+)?&?\s*"
    r"([A-Za-z_][A-Za-z0-9_]*)\s*[=;{]")
ASSIGN = re.compile(
    r"(?:^|[;{(]\s*)(?:const\s+)?(?:[\w:<>,&*\s]+?\s)?"
    r"([A-Za-z_][A-Za-z0-9_]*)\s*=\s*([^;]+);")
ENCODE_BOUNDARY = re.compile(r"\.encode\s*\(|\bhash_to_group\b|"
                             r"\bbase\s*\(\)|\breveal_for\s*\(")

# Sinks (S2): wire serialization, observability label/values, logging.
WIREWRITER_DECL = re.compile(r"\bWireWriter\s*&?\s+([A-Za-z_][A-Za-z0-9_]*)")
SINK_CALLS = (
    re.compile(r"\b(?:std::)?(?:printf|fprintf|snprintf|format)\s*\("),
    re.compile(r"\.(?:counter|gauge|histogram)\s*\("),
    re.compile(r"\btrace_to_json\s*\("),
    re.compile(r"\blog(?:_line)?\s*\("),
)

REGISTRY_BEGIN = "<!-- declassify-registry:begin -->"
REGISTRY_END = "<!-- declassify-registry:end -->"


# --------------------------------------------------------------------------
# Shared collection (both front-ends)

def iter_files(src_root: Path) -> list[Path]:
    out: list[Path] = []
    for glob in SOURCE_GLOBS:
        out.extend(sorted(src_root.rglob(glob)))
    return out


def load_registry(design_md: Path,
                  findings: list[Finding]) -> set[str] | None:
    """Reasons listed in DESIGN.md's declassification registry table.
    Returns None (and no finding) when the file or markers are absent —
    the self-test trees don't carry a DESIGN.md."""
    if not design_md.is_file():
        return None
    text = design_md.read_text(encoding="utf-8")
    begin = text.find(REGISTRY_BEGIN)
    end = text.find(REGISTRY_END)
    if begin < 0 or end < 0:
        return None
    reasons: set[str] = set()
    for line in text[begin:end].splitlines():
        m = re.match(r"\s*\|\s*`([^`]+)`", line)
        if m:
            reasons.add(m.group(1))
    return reasons


def collect_vartime(files: list[Path], findings: list[Finding]
                    ) -> set[str]:
    """All CBL_VARTIME function names; flags S4 when the annotation has
    no `// vartime: public-inputs-only` justification within the three
    preceding lines (or on the line itself)."""
    names: set[str] = set()
    for path in files:
        lines = path.read_text(encoding="utf-8").splitlines()
        for i, raw in enumerate(lines):
            if raw.lstrip().startswith("#"):
                continue  # the macro's own #define / #if lines
            if not VARTIME_DEF.search(strip_strings_and_comments(raw)):
                continue
            decl = " ".join(lines[i:i + 3])
            m = FUNC_NAME_AFTER_VARTIME.search(decl)
            if m:
                names.add(m.group(1))
            window = lines[max(0, i - 3):i + 1]
            if not any(VARTIME_JUSTIFY.search(w) for w in window):
                if SUPPRESS.search(raw):
                    continue
                findings.append(Finding(
                    path, i + 1, "S4",
                    "CBL_VARTIME function lacks a '// vartime: "
                    "public-inputs-only' justification comment"))
    # The macro's own definition is not a function.
    names.discard("annotate")
    return names


def check_declassify_sites(files: list[Path], registry: set[str] | None,
                           findings: list[Finding]) -> set[str]:
    """S3 (missing reasons) and the code half of S5. Returns the set of
    reasons used in code."""
    used: set[str] = set()
    for path in files:
        lines = path.read_text(encoding="utf-8").splitlines()
        for i, raw in enumerate(lines):
            code = strip_strings_and_comments(raw)
            for m in REVEAL_CALL.finditer(raw):
                arg = m.group(1).strip()
                sm = STRING_REASON.match(arg)
                if not sm:
                    if SUPPRESS.search(raw):
                        continue
                    findings.append(Finding(
                        path, i + 1, "S3",
                        "reveal_for(...) without a non-empty string-"
                        "literal reason"))
                    continue
                reason = sm.group(1)
                used.add(reason)
                if registry is not None and reason not in registry:
                    findings.append(Finding(
                        path, i + 1, "S5",
                        f"declassification reason '{reason}' is not in "
                        f"the DESIGN.md declassify-registry table"))
            if DECLASSIFY_CALL.search(code):
                window = lines[max(0, i - 2):i + 1]
                annots = [a for w in window
                          for a in DECLASSIFY_ANNOT.findall(w)]
                if not annots:
                    if any(SUPPRESS.search(w) for w in window):
                        continue
                    findings.append(Finding(
                        path, i + 1, "S3",
                        "ct::declassify(...) without an adjacent "
                        "'// ct:declassify(reason)' annotation"))
                    continue
                for reason in annots:
                    reason = reason.strip()
                    used.add(reason)
                    if registry is not None and reason not in registry:
                        findings.append(Finding(
                            path, i + 1, "S5",
                            f"declassification reason '{reason}' is not "
                            f"in the DESIGN.md declassify-registry table"))
    return used


def check_registry_drift(design_md: Path, registry: set[str] | None,
                         used: set[str], findings: list[Finding]) -> None:
    if registry is None:
        return
    for stale in sorted(registry - used):
        findings.append(Finding(
            design_md, 1, "S5",
            f"registry row '{stale}' has no matching ct:declassify / "
            f"reveal_for site in the tree"))


# --------------------------------------------------------------------------
# Regex fallback front-end

def collect_declared_types(files: list[Path]) -> dict[str, str]:
    """Tree-wide `identifier -> declared type` map ('public' for
    DL-boundary types, 'scalarish' for taint-capable ones). Conflicting
    redeclarations collapse to 'mixed', which the propagation treats as
    not taintable (conservative toward zero false positives)."""
    kinds: dict[str, str] = {}

    def note(name: str, kind: str) -> None:
        if kinds.get(name, kind) != kind:
            kinds[name] = "mixed"
        else:
            kinds[name] = kind

    decl = re.compile(r"\b([\w:]+(?:\s*<[^;={]*>)?)\s+(?:const\s+)?&?\s*"
                      r"([A-Za-z_][A-Za-z0-9_]*)\s*(?:\[[^\]]*\])?\s*[;={]")
    for path in files:
        for raw in path.read_text(encoding="utf-8").splitlines():
            code = strip_strings_and_comments(raw)
            for m in decl.finditer(code):
                type_str, name = m.group(1), m.group(2)
                if type_str in ("return", "delete", "new", "case"):
                    continue
                if PUBLIC_TYPES.search(type_str):
                    note(name, "public")
                elif re.search(r"\bScalar\b|\bSecret\b|\bBytes\b|uint8_t",
                               type_str):
                    note(name, "scalarish")
    return kinds


def collect_taint_seeds(files: list[Path], src_root: Path
                        ) -> dict[str, set[str]]:
    """Per-module tainted identifiers: Secret<...> declarations plus
    `// ct:secret` names (ct_lint's convention)."""
    seeds: dict[str, set[str]] = {}
    for path in files:
        module = module_of(path, src_root)
        names = seeds.setdefault(module, set())
        for raw in path.read_text(encoding="utf-8").splitlines():
            code = strip_strings_and_comments(raw)
            for m in SECRET_DECL.finditer(code):
                names.add(m.group(1))
            if SECRET_ANNOT.search(raw):
                m = DECL_NAME.search(raw.split("//", 1)[0])
                if m:
                    names.add(m.group(1))
    return {k: v for k, v in seeds.items() if v}


def propagate_file_taint(lines: list[str], tainted: set[str],
                         types: dict[str, str]) -> set[str]:
    """Fixpoint over assignments in one file: `x = <expr mentioning a
    tainted name>` taints x unless the expression crosses the DL
    boundary (.encode()/hash_to_group/base()/reveal_for) or x has a
    public declared type."""
    local = set(tainted)
    for _ in range(4):
        grew = False
        for raw in lines:
            code = strip_strings_and_comments(raw)
            for m in ASSIGN.finditer(code):
                lhs, rhs = m.group(1), m.group(2)
                if lhs in local:
                    continue
                if types.get(lhs) in ("public", "mixed"):
                    continue
                if ENCODE_BOUNDARY.search(rhs):
                    continue
                if any(re.search(rf"\b{re.escape(t)}\b", rhs)
                       for t in local):
                    local.add(lhs)
                    grew = True
        if not grew:
            break
    return local


def taint_hits(args: str, tainted: set[str]) -> list[str]:
    cleared = re.sub(r"\.\s*reveal_for\s*\([^)]*\)", "", args)
    return [t for t in sorted(tainted)
            if re.search(rf"\b{re.escape(t)}\b", cleared)]


def scan_file_fallback(path: Path, tainted: set[str], vartime: set[str],
                       types: dict[str, str],
                       findings: list[Finding]) -> None:
    lines = path.read_text(encoding="utf-8").splitlines()
    local = propagate_file_taint(lines, tainted, types)
    writers: set[str] = set()
    vt_pat = (re.compile(
        r"\b(" + "|".join(re.escape(v) for v in sorted(vartime)) +
        r")\s*\(([^;]*)\)") if vartime else None)
    for i, raw in enumerate(lines):
        code = strip_strings_and_comments(raw)
        if SUPPRESS.search(raw):
            continue
        for m in WIREWRITER_DECL.finditer(code):
            writers.add(m.group(1))
        # S1: tainted argument to a vartime callee.
        if vt_pat:
            for m in vt_pat.finditer(code):
                if VARTIME_DEF.search(code):
                    continue  # the definition itself, not a call
                hits = taint_hits(m.group(2), local)
                if hits:
                    findings.append(Finding(
                        path, i + 1, "S1",
                        f"tainted value(s) {', '.join(hits)} passed to "
                        f"variable-time function '{m.group(1)}'"))
        # S2: tainted argument reaching a sink without declassification.
        sink_here = any(p.search(code) for p in SINK_CALLS)
        if not sink_here and writers:
            sink_here = any(re.search(rf"\b{re.escape(w)}\s*\.", code)
                            for w in writers)
        if sink_here:
            window = lines[max(0, i - 2):i + 1]
            if any(DECLASSIFY_ANNOT.search(w) for w in window):
                continue
            hits = taint_hits(code, local)
            if hits:
                findings.append(Finding(
                    path, i + 1, "S2",
                    f"tainted value(s) {', '.join(hits)} reach a sink "
                    f"without a ct:declassify(reason) annotation"))


def interprocedural_pass(files: list[Path], seeds_by_module: dict[str, set[str]],
                         src_root: Path, vartime: set[str],
                         types: dict[str, str],
                         findings: list[Finding]) -> None:
    """One worklist round over the name-matched call graph: find calls
    that pass a tainted value into a named function, then re-scan that
    function's definitions with the receiving parameters tainted."""
    from lintlib import function_bodies

    texts = {p: p.read_text(encoding="utf-8") for p in files}
    call = re.compile(r"\b([A-Za-z_][A-Za-z0-9_]*)\s*\(([^;{]*)\)")
    tainted_params: dict[str, set[int]] = {}
    skip = {"Secret", "if", "while", "for", "switch", "return", "sizeof",
            "expose_secret", "reveal_for", "wipe", "declassify"}
    for path in files:
        module = module_of(path, src_root)
        tainted = seeds_by_module.get(module, set())
        if not tainted:
            continue
        local = propagate_file_taint(texts[path].splitlines(), tainted,
                                     types)
        for m in call.finditer(texts[path]):
            fname, args = m.group(1), m.group(2)
            if fname in skip or fname in vartime:
                continue
            for idx, arg in enumerate(args.split(",")):
                if taint_hits(arg, local):
                    tainted_params.setdefault(fname, set()).add(idx)
    if not tainted_params:
        return
    param_decl = re.compile(r"([A-Za-z_][A-Za-z0-9_]*)\s*(?:=[^,]*)?$")
    for path in files:
        text = texts[path]
        for fname, indices in tainted_params.items():
            if not re.search(rf"\b{re.escape(fname)}\s*\(", text):
                continue
            for lineno, body in function_bodies(text, fname):
                # Parameter names from the definition line.
                header = text.splitlines()[lineno - 1]
                pm = re.search(rf"{re.escape(fname)}\s*\(([^)]*)", header)
                if not pm:
                    continue
                params = pm.group(1).split(",")
                names = set()
                for idx in indices:
                    if idx < len(params):
                        nm = param_decl.search(params[idx].strip())
                        if nm:
                            names.add(nm.group(1))
                if not names:
                    continue
                body_lines = body.splitlines()
                sub = propagate_file_taint(body_lines, names, types)
                vt_pat = (re.compile(
                    r"\b(" + "|".join(re.escape(v)
                                      for v in sorted(vartime)) +
                    r")\s*\(([^;]*)\)") if vartime else None)
                if not vt_pat:
                    continue
                for off, raw in enumerate(body_lines):
                    code = strip_strings_and_comments(raw)
                    if SUPPRESS.search(raw):
                        continue
                    for m in vt_pat.finditer(code):
                        hits = taint_hits(m.group(2), sub)
                        if hits:
                            findings.append(Finding(
                                path, lineno + off, "S1",
                                f"tainted parameter value(s) "
                                f"{', '.join(hits)} passed to variable-"
                                f"time function '{m.group(1)}' (via "
                                f"call-graph taint of '{fname}')"))


def run_fallback(root: Path) -> tuple[list[Finding], int]:
    src_root = root / "src"
    files = iter_files(src_root)
    findings: list[Finding] = []
    registry = load_registry(root / "DESIGN.md", findings)
    vartime = collect_vartime(files, findings)
    used = check_declassify_sites(files, registry, findings)
    check_registry_drift(root / "DESIGN.md", registry, used, findings)
    types = collect_declared_types(files)
    seeds = collect_taint_seeds(files, src_root)
    for path in files:
        module = module_of(path, src_root)
        tainted = seeds.get(module, set())
        if tainted:
            scan_file_fallback(path, tainted, vartime, types, findings)
    interprocedural_pass(files, seeds, src_root, vartime, types, findings)
    # Stable order, no duplicates (interprocedural + local can agree).
    seen: set[str] = set()
    unique = []
    for f in sorted(findings, key=lambda f: (str(f.path), f.lineno, f.rule)):
        if str(f) not in seen:
            seen.add(str(f))
            unique.append(f)
    return unique, len(files)


# --------------------------------------------------------------------------
# libclang front-end

def try_libclang():
    try:
        import clang.cindex as cindex  # type: ignore
        idx = cindex.Index.create()
        return cindex, idx
    except Exception:
        return None, None


def run_libclang(root: Path, cindex, index) -> tuple[list[Finding], int] | None:
    """AST-level analysis over compile_commands.json. Returns None when
    no compilation database is usable (caller falls back)."""
    db_dirs = [root / "build", root / "build-ci" / "release"]
    db = None
    for d in db_dirs:
        if (d / "compile_commands.json").is_file():
            try:
                db = cindex.CompilationDatabase.fromDirectory(str(d))
                break
            except Exception:
                continue
    if db is None:
        return None

    findings: list[Finding] = []
    src_root = root / "src"
    files = iter_files(src_root)
    registry = load_registry(root / "DESIGN.md", findings)
    vartime = collect_vartime(files, findings)
    used = check_declassify_sites(files, registry, findings)
    check_registry_drift(root / "DESIGN.md", registry, used, findings)

    ck = cindex.CursorKind

    def is_vartime(decl) -> bool:
        return any(c.kind == ck.ANNOTATE_ATTR and
                   c.spelling == "cbl::vartime"
                   for c in decl.get_children())

    def is_secret_type(t) -> bool:
        return "Secret<" in t.spelling

    def expr_tainted(node) -> bool:
        """A reference to a Secret-typed value (or a member annotated
        ct:secret) anywhere under this expression, unless it passes
        through reveal_for."""
        if node.kind == ck.CALL_EXPR and node.spelling == "reveal_for":
            return False
        if node.kind in (ck.DECL_REF_EXPR, ck.MEMBER_REF_EXPR):
            if node.type is not None and is_secret_type(node.type):
                return True
            ref = node.referenced
            if ref is not None and ref.type is not None and \
                    is_secret_type(ref.type):
                return True
        return any(expr_tainted(c) for c in node.get_children())

    scanned = 0
    suppressed_lines: dict[str, set[int]] = {}

    def line_suppressed(fname: str, line: int) -> bool:
        if fname not in suppressed_lines:
            marks: set[int] = set()
            try:
                for i, raw in enumerate(
                        Path(fname).read_text(encoding="utf-8")
                        .splitlines(), start=1):
                    if SUPPRESS.search(raw):
                        marks.add(i)
            except OSError:
                pass
            suppressed_lines[fname] = marks
        return line in suppressed_lines[fname]

    for path in sorted({Path(c.filename)
                        for c in db.getAllCompileCommands()}):
        if src_root not in path.parents and path.parent != src_root:
            continue
        cmds = db.getCompileCommands(str(path))
        if not cmds:
            continue
        args = [a for a in list(cmds[0].arguments)[1:-1]
                if a not in ("-c", "-o", str(path))]
        try:
            tu = index.parse(str(path), args=args)
        except Exception:
            continue
        scanned += 1
        for node in tu.cursor.walk_preorder():
            if node.location.file is None or \
                    Path(node.location.file.name) != path:
                continue
            if node.kind != ck.CALL_EXPR:
                continue
            callee = node.referenced
            if callee is None or not is_vartime(callee):
                continue
            for arg in node.get_arguments():
                if expr_tainted(arg):
                    loc = node.location
                    if line_suppressed(loc.file.name, loc.line):
                        continue
                    findings.append(Finding(
                        Path(loc.file.name), loc.line, "S1",
                        f"tainted value passed to variable-time "
                        f"function '{callee.spelling}'"))
    if scanned == 0:
        return None
    return findings, scanned


# --------------------------------------------------------------------------

SELFTEST_BAD = """\
#pragma once
#include "common/secret.h"
// vartime: public-inputs-only — verification combines wire data.
CBL_VARTIME int vartime_combine(int s);

struct Spacer {};

CBL_VARTIME int vartime_unjustified(int s);

struct Holder {
  Secret<ec::Scalar> sk;
  ec::Scalar legacy_mask;  // ct:secret
};

inline void leak(Holder& h, WireWriter& w) {
  ec::Scalar copy = h.legacy_mask;
  vartime_combine(copy);
  w.scalar(h.legacy_mask);
  const auto nr = h.sk.reveal_for("");
  ct::declassify(&copy, sizeof copy);
  const auto ok = h.sk.reveal_for("unregistered-reason");
}
"""

SELFTEST_GOOD = """\
#pragma once
#include "common/secret.h"
// vartime: public-inputs-only — verification combines wire data.
CBL_VARTIME int vartime_combine(int s);

struct CleanHolder {
  Secret<ec::Scalar> sk;
};

inline void fine(CleanHolder& h, WireWriter& w, int public_input) {
  vartime_combine(public_input);
  const auto r = h.sk.reveal_for("registered-reason");
  // ct:declassify(registered-reason) — epoch export is public by design.
  ct::declassify(&r, sizeof r);
  w.scalar(r);
}
"""

SELFTEST_DESIGN = f"""\
# Design

{REGISTRY_BEGIN}
| Reason | Why it is sound |
|---|---|
| `registered-reason` | demo row |
| `stale-reason` | no code site uses this |
{REGISTRY_END}
"""


def self_test() -> int:
    with SelfTestTree("secret_flow_lint") as tree:
        tree.write("src/demo/bad.h", SELFTEST_BAD)
        tree.write("src/demo/good.h", SELFTEST_GOOD)
        tree.write("DESIGN.md", SELFTEST_DESIGN)
        findings, _ = run_fallback(tree.root)
        return check_self_test(
            "secret_flow_lint", findings,
            expected_rules={"S1", "S2", "S3", "S4", "S5"},
            bad_names={"bad.h", "DESIGN.md"},
            clean_names={"good.h"})


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=None,
                    help="repository root (default: the script's parent)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the seeded-violation self-test")
    ap.add_argument("--force-fallback", action="store_true",
                    help="skip the libclang front-end even if available")
    args = ap.parse_args()
    if args.self_test:
        return self_test()
    root = Path(args.root) if args.root \
        else Path(__file__).resolve().parent.parent
    if not (root / "src").is_dir():
        print(f"secret_flow_lint: no src/ under {root}", file=sys.stderr)
        return 2

    frontend = "fallback"
    result = None
    if not args.force_fallback:
        cindex, index = try_libclang()
        if cindex is not None:
            result = run_libclang(root, cindex, index)
            if result is not None:
                frontend = "libclang"
    if result is None:
        if not args.force_fallback:
            print("secret_flow_lint: libclang (python clang bindings + "
                  "compile_commands.json) unavailable — using the regex "
                  "fallback front-end")
        result = run_fallback(root)

    findings, scanned = result
    for f in findings:
        print(f)
    status = "FAIL" if findings else "OK"
    print(f"secret_flow_lint: {status} — {len(findings)} finding(s) over "
          f"{scanned} file(s) [{frontend} front-end]")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
