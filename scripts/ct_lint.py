#!/usr/bin/env python3
"""Constant-time discipline lint for the cbl tree.

Annotation-driven static checks (the static leg of the src/ct analysis
layer; the dynamic leg is the ctcheck harness):

  // ct:secret      on a declaration marks that variable as secret within
                    its module directory (src/ec, src/oprf, ...).
  // ct:key-holder  on a struct/class requires a destructor that wipes.
  // ct:public      documents an audited secret->public decision point;
                    suppresses findings on that line.
  // ct:ok          suppresses findings on that line (deliberate pattern,
                    e.g. the self-test's intentionally leaky compare).

Rules enforced:

  R1  memcmp / std::memcmp anywhere in a crypto module (src/ec, src/oprf,
      src/hash, src/commit, src/vrf, src/nizk, src/common) — byte compares
      there must go through ct_equal.
  R2  == or != with a ct:secret operand — must use ct_equal.
  R3  if / while / ternary / % / division on a ct:secret operand —
      secret-dependent control flow or variable-latency arithmetic.
  R4  a ct:secret name inside an index expression [...] —
      secret-dependent memory addressing.
  R5  a ct:key-holder type must declare a destructor, and an inline
      destructor body must call wipe()/secure_wipe (an out-of-line
      destructor is accepted as declared; the compiler checks it exists).

Usage:  scripts/ct_lint.py [--root DIR] [--list-secrets]
Exit code 0 when clean, 1 when findings, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from lintlib import (Finding, SOURCE_GLOBS, module_of,
                     strip_strings_and_comments)

CRYPTO_MODULES = {"ec", "oprf", "hash", "commit", "vrf", "nizk", "common"}

SECRET_ANNOT = re.compile(r"//.*\bct:secret\b")
KEYHOLDER_ANNOT = re.compile(r"//\s*ct:key-holder\b")
SUPPRESS = re.compile(r"//\s*ct:(ok|public)\b")
LINE_COMMENT = re.compile(r"^\s*(//|\*|/\*)")

# Identifier declared on a `// ct:secret` line: last identifier before
# `;`, `=`, `{`, or `[` (covers `ec::Scalar mask_;`, `uint8_t buffer_[64];`,
# `Scalar blinding = ...;`).
DECL_NAME = re.compile(
    r"\b([A-Za-z_][A-Za-z0-9_]*)\s*(?:\[[^\]]*\])?\s*(?:[;={]|=)"
)

MEMCMP = re.compile(r"\b(?:std::)?memcmp\s*\(")
STRUCT_DECL = re.compile(r"\b(?:struct|class)\s+([A-Za-z_][A-Za-z0-9_]*)")


def collect_secret_names(files_by_module: dict[str, list[Path]]) -> dict[str, set[str]]:
    """First pass: gather ct:secret identifiers per module directory."""
    secrets: dict[str, set[str]] = {}
    for module, files in files_by_module.items():
        names: set[str] = set()
        for path in files:
            for line in path.read_text(encoding="utf-8").splitlines():
                if not SECRET_ANNOT.search(line):
                    continue
                code = line.split("//", 1)[0]
                m = DECL_NAME.search(code)
                if m:
                    names.add(m.group(1))
        if names:
            secrets[module] = names
    return secrets


def secret_pattern(names: set[str]) -> re.Pattern[str] | None:
    if not names:
        return None
    alt = "|".join(re.escape(n) for n in sorted(names))
    return re.compile(rf"\b(?:{alt})\b")


def check_file(
    path: Path, module: str, names: set[str], findings: list[Finding]
) -> None:
    text = path.read_text(encoding="utf-8")
    lines = text.splitlines()
    pat = secret_pattern(names)

    for lineno, raw in enumerate(lines, start=1):
        if SUPPRESS.search(raw) or SECRET_ANNOT.search(raw):
            continue
        if LINE_COMMENT.match(raw):
            continue
        code = strip_strings_and_comments(raw)

        # R1: raw memcmp inside a crypto module.
        if module in CRYPTO_MODULES and MEMCMP.search(code):
            findings.append(
                Finding(path, lineno, "R1",
                        "memcmp in a crypto module — use cbl::ct_equal "
                        "(or annotate // ct:ok with a reason)")
            )

        if pat is None or not pat.search(code):
            continue

        # R2: ==/!= touching a secret name.
        for m in re.finditer(r"[=!]=", code):
            # Slice a window around the comparison; a secret on either
            # side of the operator is a finding.
            lhs = code[: m.start()]
            rhs = code[m.end():]
            lhs_tail = lhs.rsplit("(", 1)[-1].rsplit(",", 1)[-1]
            rhs_head = re.split(r"[),;&|]", rhs, 1)[0]
            if pat.search(lhs_tail) or pat.search(rhs_head):
                findings.append(
                    Finding(path, lineno, "R2",
                            "==/!= on a ct:secret value — use cbl::ct_equal")
                )
                break

        # R3: secret-dependent control flow / variable-latency arithmetic.
        ctrl = re.search(r"\b(?:if|while|for|switch)\s*\(", code)
        if ctrl:
            tail = code[ctrl.end() - 1:]
            if pat.search(tail):
                findings.append(
                    Finding(path, lineno, "R3",
                            "secret-dependent branch — use ct_select/ct_swap "
                            "or masked arithmetic")
                )
        if "?" in code and pat.search(code.split("?", 1)[0]):
            findings.append(
                Finding(path, lineno, "R3",
                        "ternary on a ct:secret value — use ct_select")
            )
        for m in re.finditer(r"[%/](?!=)", code):
            around = code[max(0, m.start() - 40): m.start() + 40]
            if pat.search(around):
                findings.append(
                    Finding(path, lineno, "R3",
                            "division/modulo on a ct:secret value — "
                            "variable-latency on many cores")
                )
                break

        # R4: secret used inside an index expression.
        for m in re.finditer(r"\[([^\]]*)\]", code):
            if pat.search(m.group(1)):
                findings.append(
                    Finding(path, lineno, "R4",
                            "ct:secret value used as/inside an array index — "
                            "secret-dependent addressing")
                )
                break


def check_key_holders(path: Path, findings: list[Finding]) -> None:
    lines = path.read_text(encoding="utf-8").splitlines()
    text = "\n".join(lines)
    for lineno, raw in enumerate(lines, start=1):
        if not KEYHOLDER_ANNOT.search(raw):
            continue
        # The annotated type is on this line or the next few.
        decl = None
        for look in lines[lineno - 1: lineno + 3]:
            m = STRUCT_DECL.search(look)
            if m:
                decl = m.group(1)
                break
        if decl is None:
            findings.append(
                Finding(path, lineno, "R5",
                        "ct:key-holder annotation with no struct/class "
                        "declaration nearby")
            )
            continue
        dtor = re.search(rf"~{re.escape(decl)}\s*\(\s*\)\s*(.*)", text)
        if dtor is None:
            findings.append(
                Finding(path, lineno, "R5",
                        f"ct:key-holder type {decl} declares no destructor — "
                        "key material must be wiped")
            )
            continue
        tail = dtor.group(1)
        if tail.lstrip().startswith(";"):
            continue  # out-of-line destructor: existence is enough here
        # Inline body: require a wipe call within the destructor's extent
        # (approximated by the following couple of lines).
        start = text[: dtor.start()].count("\n")
        body = "\n".join(lines[start: start + 6])
        if "wipe" not in body:
            findings.append(
                Finding(path, lineno, "R5",
                        f"~{decl}() does not call wipe()/secure_wipe — "
                        "key material must be zeroized on destruction")
            )


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=None,
                    help="repository root (default: the script's parent)")
    ap.add_argument("--list-secrets", action="store_true",
                    help="print the collected ct:secret names and exit")
    args = ap.parse_args()

    root = Path(args.root) if args.root else Path(__file__).resolve().parent.parent
    src_root = root / "src"
    if not src_root.is_dir():
        print(f"ct_lint: no src/ under {root}", file=sys.stderr)
        return 2

    files_by_module: dict[str, list[Path]] = {}
    for glob in SOURCE_GLOBS:
        for path in sorted(src_root.rglob(glob)):
            files_by_module.setdefault(module_of(path, src_root), []).append(path)

    secrets = collect_secret_names(files_by_module)
    if args.list_secrets:
        for module in sorted(secrets):
            print(f"{module}: {', '.join(sorted(secrets[module]))}")
        return 0

    findings: list[Finding] = []
    for module, files in sorted(files_by_module.items()):
        names = secrets.get(module, set())
        for path in files:
            check_file(path, module, names, findings)
            check_key_holders(path, findings)

    for f in findings:
        print(f)
    total_files = sum(len(v) for v in files_by_module.values())
    status = "FAIL" if findings else "OK"
    print(f"ct_lint: {status} — {len(findings)} finding(s) over "
          f"{total_files} files, "
          f"{sum(len(v) for v in secrets.values())} tracked secret name(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
