#!/usr/bin/env python3
"""Shared plumbing for the repo's lint family (ct_lint, parser_lint,
lock_lint, secret_flow_lint).

Each lint keeps its own rules; what lives here is the machinery they were
duplicating:

  * Finding            — the uniform `file:line: RULE: message` record;
  * strip_strings_and_comments — blanks string/char literals and trailing
                         // comments so pattern rules do not fire in them;
  * iter_sources / module_of — tree walking over src/ *.h / *.cpp;
  * suppression_pattern — builds the `// tag:ok`-style suppression regex;
  * function_bodies / declaration_after — brace-matched C++ extraction
                         helpers for body-level rules;
  * SelfTestTree       — scratch-tree scaffolding for the seeded
                         violation self-tests, plus check_self_test()
                         which enforces "every rule fires on the bad
                         file(s), the good file stays clean".

Run `scripts/lintlib.py --self-test` to exercise the helpers themselves.
"""

from __future__ import annotations

import re
import sys
import tempfile
from pathlib import Path

SOURCE_GLOBS = ("*.h", "*.cpp")


class Finding:
    """One lint hit, printed in the uniform `file:line: RULE: message`
    format every lint in scripts/ emits (and CI greps for)."""

    def __init__(self, path: Path, lineno: int, rule: str, message: str):
        self.path = path
        self.lineno = lineno
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.lineno}: {self.rule}: {self.message}"


def strip_strings_and_comments(line: str) -> str:
    """Blanks out string/char literals and trailing // comments so the
    pattern rules do not fire inside them."""
    out = []
    i, n = 0, len(line)
    in_str = None
    while i < n:
        c = line[i]
        if in_str:
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            out.append(" ")
            if c == in_str:
                in_str = None
            i += 1
            continue
        if c in ('"', "'"):
            in_str = c
            out.append(" ")
            i += 1
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        out.append(c)
        i += 1
    return "".join(out)


def module_of(path: Path, src_root: Path) -> str:
    """src/ec/scalar.h -> "ec"; files directly under src/ map to ""."""
    rel = path.relative_to(src_root)
    return rel.parts[0] if len(rel.parts) > 1 else ""


def iter_sources(src_root: Path, globs: tuple[str, ...] = SOURCE_GLOBS):
    """All source files under src_root, sorted for stable output."""
    for glob in globs:
        yield from sorted(src_root.rglob(glob))


def sources_by_module(src_root: Path) -> dict[str, list[Path]]:
    by_module: dict[str, list[Path]] = {}
    for path in iter_sources(src_root):
        by_module.setdefault(module_of(path, src_root), []).append(path)
    return by_module


def suppression_pattern(tag: str, variants: str = "ok") -> re.Pattern[str]:
    """`// ct:ok`, `// sf:ok(reason)`, ... — a comment on the flagged
    line that marks the pattern as deliberate."""
    return re.compile(rf"//\s*{re.escape(tag)}:(?:{variants})\b")


def declaration_after(lines: list[str], start: int) -> tuple[str, int]:
    """Joins lines from `start` (0-based) until the statement ends at a
    `;` or an opening `{` — enough of the declaration to see the return
    type, attributes, and the function name."""
    joined: list[str] = []
    for offset in range(6):
        if start + offset >= len(lines):
            break
        code = strip_strings_and_comments(lines[start + offset])
        joined.append(code)
        if ";" in code or "{" in code:
            break
    return " ".join(joined), start + 1


def function_bodies(text: str, name: str) -> list[tuple[int, str]]:
    """Finds definitions of `name` in `text` and returns (lineno, body)
    pairs, matching braces from the parameter list's `{`. Good enough for
    the repo's clang-format-shaped sources; not a C++ parser."""
    bodies: list[tuple[int, str]] = []
    for m in re.finditer(rf"\b{re.escape(name)}\s*\(", text):
        # Match the parameter list.
        depth = 0
        i = m.end() - 1
        while i < len(text):
            if text[i] == "(":
                depth += 1
            elif text[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        else:
            continue
        # Skip qualifiers between the parameter list and the body.
        j = i + 1
        while j < len(text) and (text[j].isspace() or
                                 text[j:j + 8].startswith(("const", "noexcept",
                                                           "override", "final"))):
            if text[j].isspace():
                j += 1
            else:
                j = re.match(r"\w+", text[j:]).end() + j
        if j >= len(text) or text[j] != "{":
            continue  # a declaration or a call, not a definition
        depth = 0
        k = j
        while k < len(text):
            if text[k] == "{":
                depth += 1
            elif text[k] == "}":
                depth -= 1
                if depth == 0:
                    break
            k += 1
        lineno = text[: m.start()].count("\n") + 1
        bodies.append((lineno, text[j:k + 1]))
    return bodies


class SelfTestTree:
    """Scratch repo tree for seeded-violation self-tests:

        with SelfTestTree("my_lint") as tree:
            tree.write("src/demo/bad.h", BAD)
            tree.write("src/demo/good.h", GOOD)
            findings, _ = run(tree.root)
            return check_self_test("my_lint", findings,
                                   expected_rules={"X1", "X2"},
                                   bad_names={"bad.h"},
                                   clean_names={"good.h"})
    """

    def __init__(self, name: str):
        self._tmp = tempfile.TemporaryDirectory(prefix=f"{name}_selftest_")
        self.root = Path(self._tmp.name)

    def write(self, rel: str, content: str) -> Path:
        path = self.root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content)
        return path

    def __enter__(self) -> "SelfTestTree":
        return self

    def __exit__(self, *exc) -> None:
        self._tmp.cleanup()


def check_self_test(name: str, findings: list[Finding],
                    expected_rules: set[str], bad_names: set[str],
                    clean_names: set[str]) -> int:
    """Uniform self-test verdict: every expected rule must fire on a bad
    file, and no finding may land on a clean file. Returns an exit code
    (0 pass / 1 fail) and prints the verdict."""
    by_rule: dict[str, list[Finding]] = {}
    for f in findings:
        by_rule.setdefault(f.rule, []).append(f)
    failures = []
    for rule in sorted(expected_rules):
        hits = [f for f in by_rule.get(rule, []) if f.path.name in bad_names]
        if not hits:
            failures.append(f"seeded {rule} violation not flagged")
    dirty = [f for f in findings if f.path.name in clean_names]
    if dirty:
        failures.append(
            "clean file flagged: " + "; ".join(str(f) for f in dirty))
    if failures:
        for f in findings:
            print(f"  (self-test) {f}")
        for msg in failures:
            print(f"{name} self-test: {msg}")
        print(f"{name} self-test: FAIL")
        return 1
    print(f"{name} self-test: OK — every rule fired on the seeded "
          f"file(s), clean file(s) pass ({len(findings)} seeded "
          f"finding(s))")
    return 0


def _self_test() -> int:
    """Checks the helpers themselves."""
    failures = []
    s = strip_strings_and_comments('x = "a // b"; // memcmp(')
    if "memcmp" in s or "a // b" in s:
        failures.append(f"strip_strings_and_comments leaked: {s!r}")
    f = Finding(Path("src/ec/scalar.h"), 12, "R9", "demo")
    if str(f) != "src/ec/scalar.h:12: R9: demo":
        failures.append(f"Finding format drifted: {f}")
    bodies = function_bodies(
        "int f(int a) const noexcept {\n  return g(a);\n}\nvoid f();\n", "f")
    if len(bodies) != 1 or "g(a)" not in bodies[0][1]:
        failures.append(f"function_bodies missed the definition: {bodies}")
    decl, _ = declaration_after(["int long_decl(", "    int a);"], 0)
    if "int a);" not in decl:
        failures.append(f"declaration_after truncated: {decl!r}")
    with SelfTestTree("lintlib") as tree:
        tree.write("src/m/a.h", "int x;\n")
        files = list(iter_sources(tree.root / "src"))
        if len(files) != 1 or module_of(files[0], tree.root / "src") != "m":
            failures.append("iter_sources/module_of mismatch")
    if failures:
        for msg in failures:
            print(f"lintlib self-test: {msg}")
        print("lintlib self-test: FAIL")
        return 1
    print("lintlib self-test: OK")
    return 0


if __name__ == "__main__":
    sys.exit(_self_test() if "--self-test" in sys.argv[1:] else 0)
