#!/usr/bin/env python3
"""Locking discipline lint for the cbl tree.

The static sibling of the clang `-Wthread-safety` CI stage: the compiler
proves that annotated code is used correctly, this lint proves that the
code is annotated at all (clang happily analyses a class whose members
carry no annotations — by checking nothing). Annotation grammar:

  // lock: <what>             on a cbl::Mutex / cbl::SharedMutex member:
                              one line naming the state the lock covers.
  CBL_GUARDED_BY(mu)          on every mutable member that shares a class
  CBL_PT_GUARDED_BY(mu)       with a mutex member.
  // lock:unguarded(<reason>) on a mutable member that is deliberately
                              outside any lock (atomics, ctor-only init,
                              externally synchronized) — the reason is
                              mandatory and shows up in review.

Rules enforced:

  L1  every cbl::Mutex / cbl::SharedMutex member carries a same-line
      `// lock:` comment naming what it protects.
  L2  in a class holding a mutex member, every other mutable data member
      is CBL_GUARDED_BY / CBL_PT_GUARDED_BY-annotated, const, itself a
      synchronization primitive (mutex / condition_variable), or carries
      an explicit `// lock:unguarded(<reason>)`.
  L3  CBL_NO_THREAD_SAFETY_ANALYSIS carries an adjacent justification
      comment — an unexplained analysis escape is a finding.
  L4  every nested lock acquisition (a second guard constructed while one
      is held, in one function body) appears, in that order, in the
      DESIGN.md lock-ordering table between the
      `<!-- lock-order-table:begin -->` / `end` markers; the reverse
      order of a documented pair is an inversion finding.
  L5  no raw std::mutex / std::shared_mutex (or timed/recursive
      variants) outside src/common/thread_safety.h — concurrent state
      goes through cbl::Mutex so the capability analysis can see it.

Usage:  scripts/lock_lint.py [--root DIR] [--self-test]
Exit code 0 when clean, 1 when findings, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import re
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from lintlib import (Finding, SOURCE_GLOBS, check_self_test,
                     strip_strings_and_comments)

THREAD_SAFETY_HEADER = Path("common") / "thread_safety.h"

MUTEX_MEMBER = re.compile(
    r"\b(?:mutable\s+)?cbl::(?:Mutex|SharedMutex)\s+([A-Za-z_]\w*)\s*;"
)
LOCK_COMMENT = re.compile(r"//\s*lock:\s*\S")
# A reason is required; comment blocks are joined before matching so the
# reason may wrap across lines.
UNGUARDED = re.compile(r"\block:unguarded\(\s*\S")
GUARDED_MACRO = re.compile(r"\bCBL_(?:PT_)?GUARDED_BY\s*\(")
NO_ANALYSIS = re.compile(r"\bCBL_NO_THREAD_SAFETY_ANALYSIS\b")
RAW_MUTEX = re.compile(
    r"\bstd::(?:mutex|shared_mutex|timed_mutex|recursive_mutex|"
    r"shared_timed_mutex|recursive_timed_mutex)\b"
)
SYNC_TYPE = re.compile(
    r"\b(?:cbl::)?(?:Mutex|SharedMutex)\b|\bcondition_variable\b"
)
CLASS_DECL = re.compile(r"\b(class|struct)\s+([A-Za-z_]\w*)[^;]*$")
# A guard being constructed over a mutex expression; group(2) is the
# guard variable, group(3) the mutex argument.
GUARD_CTOR = re.compile(
    r"\b(?:cbl::)?(MutexLock|WriterMutexLock|ReaderMutexLock)\s+"
    r"([A-Za-z_]\w*)\s*[({]\s*([A-Za-z_][\w.>*-]*)"
)
MARKER_BEGIN = "<!-- lock-order-table:begin -->"
MARKER_END = "<!-- lock-order-table:end -->"
# Skip-list for statement classification inside class bodies.
NON_MEMBER = re.compile(
    r"^\s*(?:public|private|protected)\s*:|"
    r"^\s*(?:using|typedef|friend|static_assert|template|enum|namespace)\b|"
    r"^\s*#"
)


def is_comment_line(raw: str) -> bool:
    return bool(re.match(r"^\s*(//|\*|/\*)", raw))


def has_adjacent_justification(lines: list[str], lineno: int) -> bool:
    """A trailing comment on the line itself, or a comment block directly
    above, counts as justification."""
    raw = lines[lineno - 1]
    if "//" in raw and LOCK_COMMENT.search(raw):
        return True
    if re.search(r"//\s*\S", raw.split("CBL_NO_THREAD_SAFETY_ANALYSIS")[-1]):
        return True
    i = lineno - 2
    while i >= 0 and is_comment_line(lines[i]):
        if re.search(r"\S\s+\S", lines[i]):  # more than a bare marker
            return True
        i -= 1
    return False


def preceding_unguarded_reason(lines: list[str], lineno: int) -> bool:
    """lock:unguarded(<reason>) in the comment block immediately above
    the member; the block is joined first so the reason may wrap."""
    block: list[str] = []
    i = lineno - 2
    while i >= 0 and is_comment_line(lines[i]):
        block.append(lines[i].strip().lstrip("/").lstrip("*").strip())
        i -= 1
    block.reverse()
    return bool(UNGUARDED.search(" ".join(block))) if block else False


class ClassScope:
    def __init__(self, name: str, body_depth: int):
        self.name = name
        self.body_depth = body_depth
        self.mutexes: list[tuple[str, int]] = []  # (member name, lineno)
        self.members: list[tuple[int, str, str]] = []  # (lineno, stmt, raw)


def scan_file(path: Path, rel: Path, findings: list[Finding],
              nested_pairs: list[tuple[str, str, Path, int]]) -> None:
    lines = path.read_text(encoding="utf-8").splitlines()
    depth = 0
    class_stack: list[ClassScope] = []
    pending_class: str | None = None
    stmt_buf: list[tuple[int, str, str]] = []  # (lineno, code, raw)
    # Held-guard stack for L4: (mutex expr, guard var, depth at acquire).
    guards: list[tuple[str, str, int]] = []

    is_ts_header = rel == THREAD_SAFETY_HEADER

    for lineno, raw in enumerate(lines, start=1):
        code = strip_strings_and_comments(raw)

        # ---- L3: unexplained analysis escapes (skip the macro's own
        # definition site).
        if (not is_ts_header and NO_ANALYSIS.search(code)
                and not has_adjacent_justification(lines, lineno)):
            findings.append(Finding(
                path, lineno, "L3",
                "CBL_NO_THREAD_SAFETY_ANALYSIS without a justification "
                "comment — say why the analysis cannot see this one"))

        # ---- L5: raw standard mutexes outside the wrapper header.
        if not is_ts_header and RAW_MUTEX.search(code):
            findings.append(Finding(
                path, lineno, "L5",
                "raw std mutex — use cbl::Mutex / cbl::SharedMutex so the "
                "capability analysis and this lint can track it"))

        # ---- L4: nested guard constructions within one function body.
        for m in GUARD_CTOR.finditer(code):
            mutex_expr = m.group(3).split(".")[-1].split("->")[-1]
            if guards:
                held = guards[-1][0]
                if held != mutex_expr:
                    nested_pairs.append((held, mutex_expr, path, lineno))
            guards.append((mutex_expr, m.group(2), lineno))
        for m in re.finditer(r"\b([A-Za-z_]\w*)\.unlock\s*\(", code):
            guards = [g for g in guards if g[1] != m.group(1)]
        # (guard.lock() re-acquisition keeps its original stack slot:
        # the pair was already recorded at construction.)

        # ---- Class tracking and member statement collection.
        if pending_class is None:
            cm = CLASS_DECL.search(code.split("{")[0])
            if cm and not code.lstrip().startswith("enum"):
                pending_class = cm.group(2)

        for ch in code:
            if ch == "{":
                depth += 1
                if pending_class is not None:
                    class_stack.append(ClassScope(pending_class, depth))
                    pending_class = None
                    stmt_buf = []
            elif ch == "}":
                depth -= 1
                guards = [g for g in guards if g[2] <= depth]
                if class_stack and depth < class_stack[-1].body_depth:
                    finish_class(path, lines, class_stack.pop(), findings)
                    stmt_buf = []
        if pending_class is not None and ";" in code:
            pending_class = None  # forward declaration

        if not class_stack:
            continue
        scope = class_stack[-1]
        if depth != scope.body_depth:
            stmt_buf = []  # inside a nested function/body: not a member
            continue
        if NON_MEMBER.search(code) or not code.strip():
            stmt_buf = []
            continue
        stmt_buf.append((lineno, code, raw))
        if ";" in code:
            first_line = stmt_buf[0][0]
            stmt = " ".join(c for _, c, _ in stmt_buf)
            raw_joined = "\n".join(r for _, _, r in stmt_buf)
            scope.members.append((first_line, stmt, raw_joined))
            stmt_buf = []


def finish_class(path: Path, lines: list[str], scope: ClassScope,
                 findings: list[Finding]) -> None:
    # First pass over collected statements: find the mutex members.
    mutexes = []
    for lineno, stmt, raw in scope.members:
        m = MUTEX_MEMBER.search(stmt)
        if m:
            mutexes.append((m.group(1), lineno, raw))
    for name, lineno, raw in mutexes:
        if not LOCK_COMMENT.search(raw):
            findings.append(Finding(
                path, lineno, "L1",
                f"mutex member {name} has no `// lock:` comment — name the "
                "state it protects"))
    if not mutexes:
        return

    # L2: every sibling mutable member is guarded or excused.
    for lineno, stmt, raw in scope.members:
        if MUTEX_MEMBER.search(stmt) or SYNC_TYPE.search(stmt):
            continue
        if GUARDED_MACRO.search(stmt):
            continue
        member = classify_member(stmt)
        if member is None:
            continue  # function / using / nested-type line
        if re.search(r"\b(?:const|constexpr|static)\b", stmt):
            continue
        if UNGUARDED.search(raw) or preceding_unguarded_reason(lines, lineno):
            continue
        findings.append(Finding(
            path, lineno, "L2",
            f"member {member} shares {scope.name} with mutex "
            f"{mutexes[0][0]} but is neither CBL_GUARDED_BY-annotated, "
            "const, nor excused with // lock:unguarded(<reason>)"))


def classify_member(stmt: str) -> str | None:
    """The declared name when `stmt` is a data-member declaration, else
    None. Heuristic: strip annotation macros and initializers; what is
    left must end `Type name;` with no parameter list."""
    s = re.sub(r"\bCBL_[A-Z_]+\s*\([^()]*\)", " ", stmt)
    s = re.sub(r"\{[^{}]*\}", " ", s)  # brace initializer
    s = s.split("=")[0].rstrip("; \t")
    if "(" in s or ")" in s:
        return None  # method declaration (or paren-init member: rare)
    m = re.search(r"([A-Za-z_]\w*)\s*(?:\[[^\]]*\])?\s*$", s)
    if m is None or m.group(1) in ("struct", "class", "enum"):
        return None
    # Need at least a type token before the name.
    head = s[: m.start(1)].strip()
    return m.group(1) if head else None


def load_lock_order(design_md: Path,
                    findings: list[Finding]) -> set[tuple[str, str]]:
    if not design_md.is_file():
        findings.append(Finding(design_md, 1, "L4",
                                "DESIGN.md missing — no lock-ordering table"))
        return set()
    text = design_md.read_text(encoding="utf-8")
    if MARKER_BEGIN not in text or MARKER_END not in text:
        findings.append(Finding(
            design_md, 1, "L4",
            f"no `{MARKER_BEGIN}` .. `{MARKER_END}` table in DESIGN.md"))
        return set()
    table = text.split(MARKER_BEGIN, 1)[1].split(MARKER_END, 1)[0]
    pairs: set[tuple[str, str]] = set()
    for row in table.splitlines():
        cells = [c.strip().strip("`") for c in row.strip().strip("|").split("|")]
        if len(cells) >= 3 and re.match(r"^[A-Za-z_]\w*$", cells[1] or "") \
                and re.match(r"^[A-Za-z_]\w*$", cells[2] or ""):
            pairs.add((cells[1], cells[2]))
    return pairs


def check_lock_order(pairs: list[tuple[str, str, Path, int]],
                     documented: set[tuple[str, str]],
                     findings: list[Finding]) -> None:
    for first, second, path, lineno in pairs:
        if (first, second) in documented:
            continue
        if (second, first) in documented:
            findings.append(Finding(
                path, lineno, "L4",
                f"lock order inversion: {first} -> {second} nests against "
                f"the documented order {second} -> {first}"))
        else:
            findings.append(Finding(
                path, lineno, "L4",
                f"undocumented nested acquisition {first} -> {second} — add "
                "the pair to DESIGN.md's lock-ordering table"))


def run(root: Path) -> tuple[list[Finding], int]:
    src_root = root / "src"
    if not src_root.is_dir():
        print(f"lock_lint: no src/ under {root}", file=sys.stderr)
        raise SystemExit(2)
    findings: list[Finding] = []
    nested: list[tuple[str, str, Path, int]] = []
    total = 0
    for glob in SOURCE_GLOBS:
        for path in sorted(src_root.rglob(glob)):
            total += 1
            scan_file(path, path.relative_to(src_root), findings, nested)
    documented = load_lock_order(root / "DESIGN.md", findings)
    check_lock_order(nested, documented, findings)
    return findings, total


# ---------------------------------------------------------------------------
# Self-test: seed one violation per rule plus a clean file into a temp
# tree and require exactly the expected findings.
# ---------------------------------------------------------------------------

SELFTEST_BAD = """\
#include "common/thread_safety.h"
namespace cbl::demo {
class Bad {
 public:
  void touch();
 private:
  cbl::Mutex mu_;
  int counter_ = 0;
  void helper() CBL_NO_THREAD_SAFETY_ANALYSIS;
  std::mutex raw_;
};
inline void nest(cbl::Mutex& a, cbl::Mutex& b) {
  MutexLock la(a_mu);
  MutexLock lb(b_mu);
}
}  // namespace cbl::demo
"""

SELFTEST_GOOD = """\
#include "common/thread_safety.h"
namespace cbl::demo {
class Good {
 public:
  void touch() CBL_EXCLUDES(mu_);
 private:
  cbl::Mutex mu_;  // lock: the counter below
  int counter_ CBL_GUARDED_BY(mu_) = 0;
  const int limit_ = 8;
  // Reads are monotonic hints only; the flag is an atomic.
  // lock:unguarded(set once at startup, then read-only)
  bool hint_ = false;
  /// The analysis cannot see through the test double's virtual
  /// dispatch here; callers hold mu_ by contract.
  void helper() CBL_NO_THREAD_SAFETY_ANALYSIS;
};
inline void ordered(cbl::Mutex& outer_mu, cbl::Mutex& inner_mu) {
  MutexLock lo(outer_mu);
  MutexLock li(inner_mu);
}
inline void sequential(cbl::Mutex& first_mu, cbl::Mutex& second_mu) {
  MutexLock lf(first_mu);
  lf.unlock();
  MutexLock ls(second_mu);
}
}  // namespace cbl::demo
"""

SELFTEST_DESIGN = f"""\
# Design

{MARKER_BEGIN}
| Where | First | Then | Why |
|---|---|---|---|
| demo::ordered | `outer_mu` | `inner_mu` | self-test pair |
{MARKER_END}
"""


def self_test() -> int:
    with tempfile.TemporaryDirectory(prefix="lock_lint_selftest_") as td:
        root = Path(td)
        (root / "src" / "demo").mkdir(parents=True)
        (root / "src" / "demo" / "bad.h").write_text(SELFTEST_BAD)
        (root / "src" / "demo" / "good.h").write_text(SELFTEST_GOOD)
        (root / "DESIGN.md").write_text(SELFTEST_DESIGN)
        findings, _ = run(root)
        return check_self_test("lock_lint", findings,
                               expected_rules={"L1", "L2", "L3", "L4", "L5"},
                               bad_names={"bad.h", "DESIGN.md"},
                               clean_names={"good.h"})


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=None,
                    help="repository root (default: the script's parent)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the built-in seeded-violation self-test")
    args = ap.parse_args()
    if args.self_test:
        return self_test()
    root = Path(args.root) if args.root \
        else Path(__file__).resolve().parent.parent
    findings, total = run(root)
    for f in findings:
        print(f)
    status = "FAIL" if findings else "OK"
    print(f"lock_lint: {status} — {len(findings)} finding(s) over "
          f"{total} files")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
