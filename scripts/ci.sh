#!/usr/bin/env bash
# CI entry point — the full analysis matrix:
#
#   1. lint        scripts/ct_lint.py (constant-time discipline, annotation
#                  driven — see DESIGN.md "Constant-time policy"),
#                  scripts/parser_lint.py, and scripts/lock_lint.py
#                  (locking discipline — see DESIGN.md "Concurrency &
#                  locking policy"), each self-tested where applicable
#   2. clang-tidy  .clang-tidy profile over src/ (skipped with a notice
#                  when clang-tidy is not installed)
#   3. thread-safety  clang capability analysis: a negative/positive
#                  self-test pair (tests/static/) proving the analysis is
#                  armed — the seeded off-lock mutation MUST fail to
#                  compile — then a full clang build of the tree with
#                  -DCBL_THREAD_SAFETY=ON, i.e. -Wthread-safety
#                  -Wthread-safety-beta -Werror=thread-safety-analysis
#                  (skipped with a notice when clang++ is not installed)
#   4. release     optimized build + full test suite
#   5. asan-ubsan  Debug + AddressSanitizer + UBSan, full test suite
#   6. tsan        Debug + ThreadSanitizer, full test suite (query-service
#                  and voting paths are concurrent; see src/oprf locking)
#   7. ctcheck     Debug + -DCBL_CTCHECK=ON: crypto libraries instrumented
#                  with -fsanitize-coverage=trace-pc, then the differential
#                  trace harness runs its self-test and the secret audit
#   8. fuzz-smoke  Debug + ASan/UBSan + -DCBL_FUZZ=ON: every harness
#                  replays its committed corpus, then mutation-fuzzes for
#                  CBL_FUZZ_SMOKE_SECONDS (default 30) — any trap, sanitizer
#                  report, or harness invariant violation aborts
#   9. chaos-smoke Debug + ASan/UBSan: the seeded chaos harness
#                  (tests/test_chaos) sweeps randomized fault schedules —
#                  drops, corruption, blackouts, crash-restart, overload —
#                  over thousands of queries. CBL_CHAOS_SEED (default
#                  pinned) and CBL_CHAOS_QUERIES (per plan) are printed so
#                  any failure replays bit-exactly
#  10. perf-smoke  Release build of bench_throughput and bench_tlog, run
#                  with --json --quick; the emitted BENCH_*.json must
#                  parse, the batched-encode kernel must not regress
#                  below the scalar path (speedup >= 1 at batch >= 64),
#                  and a signed epoch delta must cost fewer wire bytes
#                  than the full bucket download it replaces at >= 2
#                  changed entries per 1k
#
# Usage:
#   scripts/ci.sh [build-root]          # default build root: build-ci/
#   CBL_CI_STAGES="lint release" scripts/ci.sh    # run a subset
#
# Any failure (lint finding, configure, compile, or test) aborts.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_root="${1:-${repo_root}/build-ci}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
stages="${CBL_CI_STAGES:-lint clang-tidy thread-safety release asan-ubsan tsan ctcheck fuzz-smoke chaos-smoke perf-smoke}"

generator_args=()
if command -v ninja >/dev/null 2>&1; then
  generator_args=(-G Ninja)
fi

want() { [[ " ${stages} " == *" $1 "* ]]; }

run_config() {
  local name="$1"
  shift
  local dir="${build_root}/${name}"
  echo "=== [${name}] configure ==="
  cmake -S "${repo_root}" -B "${dir}" "${generator_args[@]}" "$@"
  echo "=== [${name}] build ==="
  cmake --build "${dir}" -j "${jobs}"
  echo "=== [${name}] test ==="
  ctest --test-dir "${dir}" --output-on-failure -j "${jobs}"
}

if want lint; then
  echo "=== [lint] scripts/ct_lint.py ==="
  python3 "${repo_root}/scripts/ct_lint.py" --root "${repo_root}"
  echo "=== [lint] scripts/parser_lint.py self-test ==="
  python3 "${repo_root}/scripts/parser_lint.py" --self-test
  echo "=== [lint] scripts/parser_lint.py ==="
  python3 "${repo_root}/scripts/parser_lint.py" --root "${repo_root}"
  echo "=== [lint] scripts/lock_lint.py self-test ==="
  python3 "${repo_root}/scripts/lock_lint.py" --self-test
  echo "=== [lint] scripts/lock_lint.py ==="
  python3 "${repo_root}/scripts/lock_lint.py" --root "${repo_root}"
fi

if want clang-tidy; then
  if command -v clang-tidy >/dev/null 2>&1; then
    echo "=== [clang-tidy] configure (compile database) ==="
    tidy_dir="${build_root}/clang-tidy"
    cmake -S "${repo_root}" -B "${tidy_dir}" "${generator_args[@]}" \
      -DCMAKE_BUILD_TYPE=Debug -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
    echo "=== [clang-tidy] analyze src/ ==="
    find "${repo_root}/src" -name '*.cpp' -print0 |
      xargs -0 -P "${jobs}" -n 8 clang-tidy -p "${tidy_dir}" --quiet
  else
    echo "=== [clang-tidy] SKIPPED: clang-tidy not installed ==="
  fi
fi

if want thread-safety; then
  if command -v clang++ >/dev/null 2>&1; then
    mkdir -p "${build_root}"
    ts_flags=(-std=c++20 -fsyntax-only -I "${repo_root}/src"
              -Wthread-safety -Wthread-safety-beta
              -Werror=thread-safety-analysis)
    echo "=== [thread-safety] negative self-test (seeded off-lock access MUST fail) ==="
    if clang++ "${ts_flags[@]}" \
        "${repo_root}/tests/static/thread_safety_negative.cpp" \
        2>"${build_root}/thread_safety_negative.log"; then
      echo "thread-safety stage is NOT armed: the seeded off-lock" \
        "mutation in tests/static/thread_safety_negative.cpp compiled" \
        "cleanly" >&2
      exit 1
    fi
    grep -q "thread-safety" "${build_root}/thread_safety_negative.log" || {
      echo "negative self-test failed for the wrong reason:" >&2
      cat "${build_root}/thread_safety_negative.log" >&2
      exit 1
    }
    echo "=== [thread-safety] positive self-test (fixed twin must pass) ==="
    clang++ "${ts_flags[@]}" \
      "${repo_root}/tests/static/thread_safety_positive.cpp"
    echo "=== [thread-safety] scripts/lock_lint.py ==="
    python3 "${repo_root}/scripts/lock_lint.py" --self-test
    python3 "${repo_root}/scripts/lock_lint.py" --root "${repo_root}"
    ts_dir="${build_root}/thread-safety"
    echo "=== [thread-safety] configure (clang + -Werror=thread-safety-analysis) ==="
    cmake -S "${repo_root}" -B "${ts_dir}" "${generator_args[@]}" \
      -DCMAKE_BUILD_TYPE=Debug \
      -DCMAKE_CXX_COMPILER=clang++ \
      -DCBL_THREAD_SAFETY=ON
    echo "=== [thread-safety] build (any off-lock access is a compile error) ==="
    cmake --build "${ts_dir}" -j "${jobs}"
  else
    echo "=== [thread-safety] SKIPPED: clang++ not installed ==="
  fi
fi

if want release; then
  run_config release -DCMAKE_BUILD_TYPE=Release
fi

if want asan-ubsan; then
  run_config asan-ubsan \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCBL_SANITIZE="address;undefined"
fi

if want tsan; then
  run_config tsan \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCBL_SANITIZE="thread"
fi

if want ctcheck; then
  ct_dir="${build_root}/ctcheck"
  echo "=== [ctcheck] configure ==="
  cmake -S "${repo_root}" -B "${ct_dir}" "${generator_args[@]}" \
    -DCMAKE_BUILD_TYPE=Debug -DCBL_CTCHECK=ON
  echo "=== [ctcheck] build ==="
  cmake --build "${ct_dir}" -j "${jobs}" --target ctcheck
  echo "=== [ctcheck] self-test (harness must flag the injected leak) ==="
  "${ct_dir}/src/ct/ctcheck" --self-test
  echo "=== [ctcheck] secret audit over the crypto kernels ==="
  "${ct_dir}/src/ct/ctcheck"
  if command -v valgrind >/dev/null 2>&1; then
    echo "=== [ctcheck] valgrind backend (ctgrind-style) ==="
    valgrind --error-exitcode=1 --quiet "${ct_dir}/src/ct/ctcheck"
  else
    echo "=== [ctcheck] valgrind not installed; trace backend only ==="
  fi
fi

if want fuzz-smoke; then
  fuzz_dir="${build_root}/fuzz-smoke"
  fuzz_seconds="${CBL_FUZZ_SMOKE_SECONDS:-30}"
  echo "=== [fuzz-smoke] configure (ASan/UBSan + harness binaries) ==="
  cmake -S "${repo_root}" -B "${fuzz_dir}" "${generator_args[@]}" \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCBL_SANITIZE="address;undefined" \
    -DCBL_FUZZ=ON
  echo "=== [fuzz-smoke] build ==="
  cmake --build "${fuzz_dir}" -j "${jobs}"
  driver="$(cat "${fuzz_dir}/fuzz_driver.txt")"
  echo "=== [fuzz-smoke] driver: ${driver}, ${fuzz_seconds}s per harness ==="
  for harness in "${fuzz_dir}"/fuzz/fuzz_*; do
    [[ -x "${harness}" ]] || continue
    name="$(basename "${harness}")"
    corpus="${repo_root}/fuzz/corpora/${name}"
    echo "=== [fuzz-smoke] ${name} ==="
    if [[ "${driver}" == "libfuzzer" ]]; then
      "${harness}" -max_total_time="${fuzz_seconds}" -max_len=8192 "${corpus}"
    else
      "${harness}" -seconds="${fuzz_seconds}" "${corpus}"
    fi
  done
fi

if want chaos-smoke; then
  chaos_dir="${build_root}/chaos-smoke"
  chaos_seed="${CBL_CHAOS_SEED:-20260806}"
  chaos_queries="${CBL_CHAOS_QUERIES:-1000}"
  echo "=== [chaos-smoke] configure (ASan/UBSan) ==="
  cmake -S "${repo_root}" -B "${chaos_dir}" "${generator_args[@]}" \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCBL_SANITIZE="address;undefined"
  echo "=== [chaos-smoke] build ==="
  cmake --build "${chaos_dir}" -j "${jobs}" --target test_chaos
  echo "=== [chaos-smoke] seed=${chaos_seed} queries=${chaos_queries}/plan ==="
  echo "=== [chaos-smoke] replay any failure with:" \
    "CBL_CHAOS_SEED=${chaos_seed} CBL_CHAOS_QUERIES=${chaos_queries}" \
    "${chaos_dir}/tests/test_chaos ==="
  CBL_CHAOS_SEED="${chaos_seed}" CBL_CHAOS_QUERIES="${chaos_queries}" \
    "${chaos_dir}/tests/test_chaos"
fi

if want perf-smoke; then
  perf_dir="${build_root}/perf-smoke"
  perf_json="${perf_dir}/BENCH_throughput.json"
  echo "=== [perf-smoke] configure (Release) ==="
  cmake -S "${repo_root}" -B "${perf_dir}" "${generator_args[@]}" \
    -DCMAKE_BUILD_TYPE=Release
  echo "=== [perf-smoke] build bench_throughput ==="
  cmake --build "${perf_dir}" -j "${jobs}" --target bench_throughput
  echo "=== [perf-smoke] run (--quick) ==="
  "${perf_dir}/bench/bench_throughput" --quick --json "${perf_json}"
  echo "=== [perf-smoke] sanity-check ${perf_json} ==="
  python3 - "${perf_json}" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    data = json.load(f)
results = data["results"]
assert results, "empty results"

# The batched encode kernel must never be slower than the scalar path at
# real batch sizes (>= 64); the full >=2x target is asserted by the
# acceptance benches, CI only guards against a regression to < 1x.
encode = {r["params"]: r["value"] for r in results
          if r["name"] == "kernel/batch_encode"}
assert encode, "no kernel/batch_encode records"
for batch in (64, 256):
    speedup = encode.get(f"batch={batch}")
    assert speedup is not None, f"missing batch={batch} record"
    assert speedup >= 1.0, f"batch_encode regressed: {speedup:.2f}x at batch={batch}"

qps = [r for r in results if r["name"] == "pipeline/qps"]
assert qps, "no pipeline/qps records"
assert all(r["value"] > 0 for r in qps), "pipeline served zero queries"

print(f"perf-smoke OK: batch_encode {encode['batch=64']:.2f}x @64, "
      f"{encode['batch=256']:.2f}x @256, {len(qps)} QPS points")
EOF
  tlog_json="${perf_dir}/BENCH_tlog.json"
  echo "=== [perf-smoke] build bench_tlog ==="
  cmake --build "${perf_dir}" -j "${jobs}" --target bench_tlog
  echo "=== [perf-smoke] run bench_tlog (--quick) ==="
  "${perf_dir}/bench/bench_tlog" --quick --json "${tlog_json}"
  echo "=== [perf-smoke] sanity-check ${tlog_json} ==="
  python3 - "${tlog_json}" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    data = json.load(f)
results = data["results"]
assert results, "empty results"

# The whole point of the delta path: a signed one-step delta must be
# cheaper on the wire than the full bucket download it replaces, already
# at the lowest churn level (2 changed entries per 1k).
deltas = {r["params"]: r for r in results if r["name"] == "sync/delta_bytes"}
assert deltas, "no sync/delta_bytes records"
low = [r for p, r in deltas.items() if "churn=2per1k" in p]
assert low, "missing churn=2per1k record"
for r in low:
    assert r["value"] > 1.0, (
        f"delta sync regressed: delta={r['bytes_per_query']:.0f}B is not "
        f"smaller than the full download ({r['params']})")

full = [r for r in results if r["name"] == "sync/full_bytes"]
assert full and all(r["bytes_per_query"] > 0 for r in full), \
    "no/empty sync/full_bytes record"
verify = [r for r in results if r["name"].startswith("verify/")]
assert verify and all(r["ns_per_op"] > 0 for r in verify), \
    "missing verify timings"

ratios = ", ".join(f"{r['params'].split(',')[1]}={r['value']:.1f}x"
                   for r in deltas.values())
print(f"perf-smoke OK: tlog delta vs full download: {ratios}")
EOF
fi

echo "=== CI OK: stages [${stages}] all green ==="
