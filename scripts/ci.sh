#!/usr/bin/env bash
# CI entry point: builds the tree twice — an optimized Release build and a
# Debug build instrumented with AddressSanitizer + UBSan — and runs the
# full test suite on both. Usage:
#
#   scripts/ci.sh [build-root]        # default build root: build-ci/
#
# Any failure (configure, compile, or test) aborts the script.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_root="${1:-${repo_root}/build-ci}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

generator_args=()
if command -v ninja >/dev/null 2>&1; then
  generator_args=(-G Ninja)
fi

run_config() {
  local name="$1"
  shift
  local dir="${build_root}/${name}"
  echo "=== [${name}] configure ==="
  cmake -S "${repo_root}" -B "${dir}" "${generator_args[@]}" "$@"
  echo "=== [${name}] build ==="
  cmake --build "${dir}" -j "${jobs}"
  echo "=== [${name}] test ==="
  ctest --test-dir "${dir}" --output-on-failure -j "${jobs}"
}

run_config release -DCMAKE_BUILD_TYPE=Release
run_config asan-ubsan \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCBL_SANITIZE="address;undefined"

echo "=== CI OK: Release and ASan/UBSan suites both green ==="
