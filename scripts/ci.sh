#!/usr/bin/env bash
# CI entry point — the full analysis matrix:
#
#   1. lint        scripts/ct_lint.py (constant-time discipline, annotation
#                  driven — see DESIGN.md "Constant-time policy"),
#                  scripts/parser_lint.py, scripts/lock_lint.py (locking
#                  discipline — see DESIGN.md "Concurrency & locking
#                  policy"), and scripts/secret_flow_lint.py (secret-flow
#                  policy), self-tested where applicable and run
#                  concurrently
#   2. clang-tidy  .clang-tidy profile over src/ (skipped with a notice
#                  when clang-tidy is not installed)
#   3. thread-safety  clang capability analysis: a negative/positive
#                  self-test pair (tests/static/) proving the analysis is
#                  armed — the seeded off-lock mutation MUST fail to
#                  compile — then a full clang build of the tree with
#                  -DCBL_THREAD_SAFETY=ON, i.e. -Wthread-safety
#                  -Wthread-safety-beta -Werror=thread-safety-analysis
#                  (skipped with a notice when clang++ is not installed)
#   4. secret-flow whole-program secret-flow analysis
#                  (scripts/secret_flow_lint.py over the Secret<T> taint
#                  layer of src/common/secret.h): self-test, then a
#                  negative/positive TU pair (tests/static/) proving the
#                  analyzer is armed — the seeded secret-into-vartime call
#                  MUST be flagged S1, its declassified twin must pass —
#                  then the full-tree run. Uses libclang +
#                  compile_commands.json when the python bindings exist,
#                  the regex fallback (with a notice) otherwise
#   5. release     optimized build + full test suite
#   6. asan-ubsan  Debug + AddressSanitizer + UBSan, full test suite
#   7. tsan        Debug + ThreadSanitizer, full test suite (query-service
#                  and voting paths are concurrent; see src/oprf locking)
#   8. ctcheck     Debug + -DCBL_CTCHECK=ON: crypto libraries instrumented
#                  with -fsanitize-coverage=trace-pc, then the differential
#                  trace harness runs its self-test and the secret audit
#   9. fuzz-smoke  Debug + ASan/UBSan + -DCBL_FUZZ=ON: every harness
#                  replays its committed corpus, then mutation-fuzzes for
#                  CBL_FUZZ_SMOKE_SECONDS (default 30) — any trap, sanitizer
#                  report, or harness invariant violation aborts
#  10. chaos-smoke Debug + ASan/UBSan: the seeded chaos harness
#                  (tests/test_chaos) sweeps randomized fault schedules —
#                  drops, corruption, blackouts, crash-restart, overload —
#                  over thousands of queries. CBL_CHAOS_SEED (default
#                  pinned) and CBL_CHAOS_QUERIES (per plan) are printed so
#                  any failure replays bit-exactly
#  11. crash-smoke Debug + ASan/UBSan: the durable-state suite
#                  (tests/test_store — journal/snapshot parsers, fault
#                  injection, restart recovery) plus the crash-at-every-
#                  fs-op-boundary sweep and store-gremlin rounds from
#                  tests/test_chaos, under a pinned CBL_CHAOS_SEED so any
#                  failure replays bit-exactly (the replay command is
#                  printed before the run)
#  12. perf-smoke  Release build of bench_throughput, bench_tlog and
#                  bench_store, run with --json --quick; the emitted
#                  BENCH_*.json must parse, the batched-encode kernel
#                  must not regress below the scalar path (speedup >= 1
#                  at batch >= 64), a signed epoch delta must cost fewer
#                  wire bytes than the full bucket download it replaces
#                  at >= 2 changed entries per 1k, and store recovery
#                  must replay every appended journal record
#  13. macro-smoke Release build of bench_macro (the open-loop macro-load
#                  harness, src/load): scripts/check_bench_regression.py
#                  self-tests, a fresh --quick run under the pinned
#                  CBL_MACRO_SEED is gated against the committed
#                  BENCH_macro.json baseline (>15% p99 or sustained-QPS
#                  drift fails), and the doctored fixture
#                  tests/fixtures/BENCH_macro_inflated_p99.json MUST fail
#                  the gate — proving the gate is armed. The replay
#                  command is printed before the run
#
# Usage:
#   scripts/ci.sh [build-root]          # default build root: build-ci/
#   scripts/ci.sh --list                # enumerate stages, one per line
#   CBL_CI_STAGES="lint release" scripts/ci.sh    # run a subset
#
# Every run ends with a per-stage wall-clock timing summary. Any failure
# (lint finding, configure, compile, or test) aborts.
set -euo pipefail

all_stages=(lint clang-tidy thread-safety secret-flow release asan-ubsan
            tsan ctcheck fuzz-smoke chaos-smoke crash-smoke perf-smoke
            macro-smoke)

if [[ "${1:-}" == "--list" ]]; then
  printf '%s\n' "${all_stages[@]}"
  exit 0
fi

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_root="${1:-${repo_root}/build-ci}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
stages="${CBL_CI_STAGES:-${all_stages[*]}}"

generator_args=()
if command -v ninja >/dev/null 2>&1; then
  generator_args=(-G Ninja)
fi

want() { [[ " ${stages} " == *" $1 "* ]]; }

run_config() {
  local name="$1"
  shift
  local dir="${build_root}/${name}"
  echo "=== [${name}] configure ==="
  cmake -S "${repo_root}" -B "${dir}" "${generator_args[@]}" "$@"
  echo "=== [${name}] build ==="
  cmake --build "${dir}" -j "${jobs}"
  echo "=== [${name}] test ==="
  ctest --test-dir "${dir}" --output-on-failure -j "${jobs}"
}

stage_lint() {
  # The four lints are independent read-only analyses — run them
  # concurrently and serialize their logs afterwards.
  mkdir -p "${build_root}"
  local names=(ct_lint parser_lint lock_lint secret_flow_lint)
  local pids=() logs=()
  echo "=== [lint] ${names[*]} (concurrent) ==="
  local name log
  for name in "${names[@]}"; do
    log="${build_root}/lint_${name}.log"
    logs+=("${log}")
    (
      if [[ "${name}" != "ct_lint" ]]; then
        echo "--- ${name} --self-test ---"
        python3 "${repo_root}/scripts/${name}.py" --self-test
      fi
      echo "--- ${name} ---"
      python3 "${repo_root}/scripts/${name}.py" --root "${repo_root}"
    ) >"${log}" 2>&1 &
    pids+=($!)
  done
  local failed=0 i
  for i in "${!names[@]}"; do
    if ! wait "${pids[$i]}"; then
      failed=1
      echo "=== [lint] ${names[$i]} FAILED ===" >&2
    fi
    cat "${logs[$i]}"
  done
  return "${failed}"
}

stage_clang_tidy() {
  if command -v clang-tidy >/dev/null 2>&1; then
    echo "=== [clang-tidy] configure (compile database) ==="
    local tidy_dir="${build_root}/clang-tidy"
    cmake -S "${repo_root}" -B "${tidy_dir}" "${generator_args[@]}" \
      -DCMAKE_BUILD_TYPE=Debug -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
    echo "=== [clang-tidy] analyze src/ ==="
    find "${repo_root}/src" -name '*.cpp' -print0 |
      xargs -0 -P "${jobs}" -n 8 clang-tidy -p "${tidy_dir}" --quiet
  else
    echo "=== [clang-tidy] SKIPPED: clang-tidy not installed ==="
  fi
}

stage_thread_safety() {
  if command -v clang++ >/dev/null 2>&1; then
    mkdir -p "${build_root}"
    local ts_flags=(-std=c++20 -fsyntax-only -I "${repo_root}/src"
                    -Wthread-safety -Wthread-safety-beta
                    -Werror=thread-safety-analysis)
    echo "=== [thread-safety] negative self-test (seeded off-lock access MUST fail) ==="
    if clang++ "${ts_flags[@]}" \
        "${repo_root}/tests/static/thread_safety_negative.cpp" \
        2>"${build_root}/thread_safety_negative.log"; then
      echo "thread-safety stage is NOT armed: the seeded off-lock" \
        "mutation in tests/static/thread_safety_negative.cpp compiled" \
        "cleanly" >&2
      exit 1
    fi
    grep -q "thread-safety" "${build_root}/thread_safety_negative.log" || {
      echo "negative self-test failed for the wrong reason:" >&2
      cat "${build_root}/thread_safety_negative.log" >&2
      exit 1
    }
    echo "=== [thread-safety] positive self-test (fixed twin must pass) ==="
    clang++ "${ts_flags[@]}" \
      "${repo_root}/tests/static/thread_safety_positive.cpp"
    echo "=== [thread-safety] scripts/lock_lint.py ==="
    python3 "${repo_root}/scripts/lock_lint.py" --self-test
    python3 "${repo_root}/scripts/lock_lint.py" --root "${repo_root}"
    local ts_dir="${build_root}/thread-safety"
    echo "=== [thread-safety] configure (clang + -Werror=thread-safety-analysis) ==="
    cmake -S "${repo_root}" -B "${ts_dir}" "${generator_args[@]}" \
      -DCMAKE_BUILD_TYPE=Debug \
      -DCMAKE_CXX_COMPILER=clang++ \
      -DCBL_THREAD_SAFETY=ON
    echo "=== [thread-safety] build (any off-lock access is a compile error) ==="
    cmake --build "${ts_dir}" -j "${jobs}"
  else
    echo "=== [thread-safety] SKIPPED: clang++ not installed ==="
  fi
}

stage_secret_flow() {
  mkdir -p "${build_root}"
  local cxx="${CXX:-c++}"
  command -v "${cxx}" >/dev/null 2>&1 || cxx=g++
  if python3 -c "import clang.cindex" >/dev/null 2>&1; then
    echo "=== [secret-flow] libclang python bindings found: AST front-end available ==="
  else
    echo "=== [secret-flow] libclang python bindings not installed:" \
      "the analyzer will use its regex fallback front-end (same rules," \
      "reduced precision) ==="
  fi
  echo "=== [secret-flow] lintlib + secret_flow_lint self-tests ==="
  python3 "${repo_root}/scripts/lintlib.py" --self-test
  python3 "${repo_root}/scripts/secret_flow_lint.py" --self-test
  echo "=== [secret-flow] static pair is valid C++ (${cxx} -fsyntax-only) ==="
  "${cxx}" -std=c++20 -fsyntax-only -I "${repo_root}/src" \
    "${repo_root}/tests/static/secret_flow_negative.cpp" \
    "${repo_root}/tests/static/secret_flow_positive.cpp"
  local armed="${build_root}/secret-flow-armed"
  local neg_log="${build_root}/secret_flow_negative.log"
  echo "=== [secret-flow] negative self-test (seeded secret-into-vartime MUST be flagged S1) ==="
  rm -rf "${armed}"
  mkdir -p "${armed}/src/demo"
  cp "${repo_root}/tests/static/secret_flow_negative.cpp" "${armed}/src/demo/"
  if python3 "${repo_root}/scripts/secret_flow_lint.py" --root "${armed}" \
      >"${neg_log}" 2>&1; then
    echo "secret-flow stage is NOT armed: the seeded secret-into-vartime" \
      "call in tests/static/secret_flow_negative.cpp passed the lint" >&2
    cat "${neg_log}" >&2
    exit 1
  fi
  grep -q ": S1: " "${neg_log}" || {
    echo "negative self-test failed for the wrong reason (no S1 finding):" >&2
    cat "${neg_log}" >&2
    exit 1
  }
  echo "=== [secret-flow] positive self-test (declassified twin must pass) ==="
  rm -f "${armed}/src/demo/secret_flow_negative.cpp"
  cp "${repo_root}/tests/static/secret_flow_positive.cpp" "${armed}/src/demo/"
  python3 "${repo_root}/scripts/secret_flow_lint.py" --root "${armed}"
  echo "=== [secret-flow] full-tree analysis ==="
  python3 "${repo_root}/scripts/secret_flow_lint.py" --root "${repo_root}"
}

stage_release() {
  run_config release -DCMAKE_BUILD_TYPE=Release
}

stage_asan_ubsan() {
  run_config asan-ubsan \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCBL_SANITIZE="address;undefined"
}

stage_tsan() {
  run_config tsan \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCBL_SANITIZE="thread"
}

stage_ctcheck() {
  local ct_dir="${build_root}/ctcheck"
  echo "=== [ctcheck] configure ==="
  cmake -S "${repo_root}" -B "${ct_dir}" "${generator_args[@]}" \
    -DCMAKE_BUILD_TYPE=Debug -DCBL_CTCHECK=ON
  echo "=== [ctcheck] build ==="
  cmake --build "${ct_dir}" -j "${jobs}" --target ctcheck
  echo "=== [ctcheck] self-test (harness must flag the injected leak) ==="
  "${ct_dir}/src/ct/ctcheck" --self-test
  echo "=== [ctcheck] secret audit over the crypto kernels ==="
  "${ct_dir}/src/ct/ctcheck"
  if command -v valgrind >/dev/null 2>&1; then
    echo "=== [ctcheck] valgrind backend (ctgrind-style) ==="
    valgrind --error-exitcode=1 --quiet "${ct_dir}/src/ct/ctcheck"
  else
    echo "=== [ctcheck] valgrind not installed; trace backend only ==="
  fi
}

stage_fuzz_smoke() {
  local fuzz_dir="${build_root}/fuzz-smoke"
  local fuzz_seconds="${CBL_FUZZ_SMOKE_SECONDS:-30}"
  echo "=== [fuzz-smoke] configure (ASan/UBSan + harness binaries) ==="
  cmake -S "${repo_root}" -B "${fuzz_dir}" "${generator_args[@]}" \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCBL_SANITIZE="address;undefined" \
    -DCBL_FUZZ=ON
  echo "=== [fuzz-smoke] build ==="
  cmake --build "${fuzz_dir}" -j "${jobs}"
  local driver
  driver="$(cat "${fuzz_dir}/fuzz_driver.txt")"
  echo "=== [fuzz-smoke] driver: ${driver}, ${fuzz_seconds}s per harness ==="
  local harness name corpus
  for harness in "${fuzz_dir}"/fuzz/fuzz_*; do
    [[ -x "${harness}" ]] || continue
    name="$(basename "${harness}")"
    corpus="${repo_root}/fuzz/corpora/${name}"
    echo "=== [fuzz-smoke] ${name} ==="
    if [[ "${driver}" == "libfuzzer" ]]; then
      "${harness}" -max_total_time="${fuzz_seconds}" -max_len=8192 "${corpus}"
    else
      "${harness}" -seconds="${fuzz_seconds}" "${corpus}"
    fi
  done
}

stage_chaos_smoke() {
  local chaos_dir="${build_root}/chaos-smoke"
  local chaos_seed="${CBL_CHAOS_SEED:-20260806}"
  local chaos_queries="${CBL_CHAOS_QUERIES:-1000}"
  echo "=== [chaos-smoke] configure (ASan/UBSan) ==="
  cmake -S "${repo_root}" -B "${chaos_dir}" "${generator_args[@]}" \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCBL_SANITIZE="address;undefined"
  echo "=== [chaos-smoke] build ==="
  cmake --build "${chaos_dir}" -j "${jobs}" --target test_chaos
  echo "=== [chaos-smoke] seed=${chaos_seed} queries=${chaos_queries}/plan ==="
  echo "=== [chaos-smoke] replay any failure with:" \
    "CBL_CHAOS_SEED=${chaos_seed} CBL_CHAOS_QUERIES=${chaos_queries}" \
    "${chaos_dir}/tests/test_chaos ==="
  CBL_CHAOS_SEED="${chaos_seed}" CBL_CHAOS_QUERIES="${chaos_queries}" \
    "${chaos_dir}/tests/test_chaos"
}

stage_crash_smoke() {
  local crash_dir="${build_root}/crash-smoke"
  local crash_seed="${CBL_CHAOS_SEED:-20260806}"
  echo "=== [crash-smoke] configure (ASan/UBSan) ==="
  cmake -S "${repo_root}" -B "${crash_dir}" "${generator_args[@]}" \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCBL_SANITIZE="address;undefined"
  echo "=== [crash-smoke] build ==="
  cmake --build "${crash_dir}" -j "${jobs}" --target test_store test_chaos
  echo "=== [crash-smoke] durable-state suite (journal, snapshots, fault injection, recovery) ==="
  "${crash_dir}/tests/test_store"
  echo "=== [crash-smoke] seed=${crash_seed} ==="
  echo "=== [crash-smoke] replay any failure with:" \
    "CBL_CHAOS_SEED=${crash_seed} ${crash_dir}/tests/test_chaos" \
    "--gtest_filter='*CrashSweepAtEveryFsOpBoundary*:*StoreGremlins*' ==="
  CBL_CHAOS_SEED="${crash_seed}" "${crash_dir}/tests/test_chaos" \
    --gtest_filter='*CrashSweepAtEveryFsOpBoundary*:*StoreGremlins*'
}

stage_perf_smoke() {
  local perf_dir="${build_root}/perf-smoke"
  local perf_json="${perf_dir}/BENCH_throughput.json"
  echo "=== [perf-smoke] configure (Release) ==="
  cmake -S "${repo_root}" -B "${perf_dir}" "${generator_args[@]}" \
    -DCMAKE_BUILD_TYPE=Release
  echo "=== [perf-smoke] build bench_throughput ==="
  cmake --build "${perf_dir}" -j "${jobs}" --target bench_throughput
  echo "=== [perf-smoke] run (--quick) ==="
  "${perf_dir}/bench/bench_throughput" --quick --json "${perf_json}"
  echo "=== [perf-smoke] sanity-check ${perf_json} ==="
  python3 - "${perf_json}" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    data = json.load(f)
results = data["results"]
assert results, "empty results"

# The batched encode kernel must never be slower than the scalar path at
# real batch sizes (>= 64); the full >=2x target is asserted by the
# acceptance benches, CI only guards against a regression to < 1x.
encode = {r["params"]: r["value"] for r in results
          if r["name"] == "kernel/batch_encode"}
assert encode, "no kernel/batch_encode records"
for batch in (64, 256):
    speedup = encode.get(f"batch={batch}")
    assert speedup is not None, f"missing batch={batch} record"
    assert speedup >= 1.0, f"batch_encode regressed: {speedup:.2f}x at batch={batch}"

qps = [r for r in results if r["name"] == "pipeline/qps"]
assert qps, "no pipeline/qps records"
assert all(r["value"] > 0 for r in qps), "pipeline served zero queries"

print(f"perf-smoke OK: batch_encode {encode['batch=64']:.2f}x @64, "
      f"{encode['batch=256']:.2f}x @256, {len(qps)} QPS points")
EOF
  local tlog_json="${perf_dir}/BENCH_tlog.json"
  echo "=== [perf-smoke] build bench_tlog ==="
  cmake --build "${perf_dir}" -j "${jobs}" --target bench_tlog
  echo "=== [perf-smoke] run bench_tlog (--quick) ==="
  "${perf_dir}/bench/bench_tlog" --quick --json "${tlog_json}"
  echo "=== [perf-smoke] sanity-check ${tlog_json} ==="
  python3 - "${tlog_json}" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    data = json.load(f)
results = data["results"]
assert results, "empty results"

# The whole point of the delta path: a signed one-step delta must be
# cheaper on the wire than the full bucket download it replaces, already
# at the lowest churn level (2 changed entries per 1k).
deltas = {r["params"]: r for r in results if r["name"] == "sync/delta_bytes"}
assert deltas, "no sync/delta_bytes records"
low = [r for p, r in deltas.items() if "churn=2per1k" in p]
assert low, "missing churn=2per1k record"
for r in low:
    assert r["value"] > 1.0, (
        f"delta sync regressed: delta={r['bytes_per_query']:.0f}B is not "
        f"smaller than the full download ({r['params']})")

full = [r for r in results if r["name"] == "sync/full_bytes"]
assert full and all(r["bytes_per_query"] > 0 for r in full), \
    "no/empty sync/full_bytes record"
verify = [r for r in results if r["name"].startswith("verify/")]
assert verify and all(r["ns_per_op"] > 0 for r in verify), \
    "missing verify timings"

ratios = ", ".join(f"{r['params'].split(',')[1]}={r['value']:.1f}x"
                   for r in deltas.values())
print(f"perf-smoke OK: tlog delta vs full download: {ratios}")
EOF
  local store_json="${perf_dir}/BENCH_store.json"
  echo "=== [perf-smoke] build bench_store ==="
  cmake --build "${perf_dir}" -j "${jobs}" --target bench_store
  echo "=== [perf-smoke] run bench_store (--quick) ==="
  (cd "${perf_dir}" && "${perf_dir}/bench/bench_store" --quick \
    --json "${store_json}")
  echo "=== [perf-smoke] sanity-check ${store_json} ==="
  python3 - "${store_json}" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    data = json.load(f)
results = data["results"]
assert results, "empty results"

def records_in(params):
    return int(params.split("records=")[1].split(",")[0])

appends = [r for r in results if r["name"] == "journal/append"]
assert appends and all(r["ns_per_op"] > 0 for r in appends), \
    "missing/zero journal append timings"
snaps = [r for r in results if r["name"] == "snapshot/commit"]
assert snaps and all(r["ns_per_op"] > 0 for r in snaps), \
    "missing/zero snapshot commit timings"

# The durability contract CI actually guards: recovery must hand back
# every record a synced append promised (no silent truncation, no
# checksum rejects on our own writes).
for name in ("journal/recover", "store/load"):
    recs = [r for r in results if r["name"] == name]
    assert recs, f"no {name} records"
    for r in recs:
        want = records_in(r["params"])
        assert r["value"] == want, (
            f"{name} lost records: replayed {r['value']:.0f} of {want}")

mem_append = next(r["ns_per_op"] for r in appends
                  if "fs=mem" in r["params"])
print(f"perf-smoke OK: store append {mem_append:.0f}ns (mem), "
      "recovery replayed every record")
EOF
}

stage_macro_smoke() {
  local macro_dir="${build_root}/macro-smoke"
  local macro_seed="${CBL_MACRO_SEED:-20260808}"
  local fresh_json="${macro_dir}/BENCH_macro.fresh.json"
  echo "=== [macro-smoke] configure (Release) ==="
  cmake -S "${repo_root}" -B "${macro_dir}" "${generator_args[@]}" \
    -DCMAKE_BUILD_TYPE=Release
  echo "=== [macro-smoke] build bench_macro ==="
  cmake --build "${macro_dir}" -j "${jobs}" --target bench_macro
  echo "=== [macro-smoke] checker self-test ==="
  python3 "${repo_root}/scripts/check_bench_regression.py" --self-test
  echo "=== [macro-smoke] seed=${macro_seed} ==="
  echo "=== [macro-smoke] replay with:" \
    "${macro_dir}/bench/bench_macro --quick --seed ${macro_seed} ==="
  "${macro_dir}/bench/bench_macro" --quick --seed "${macro_seed}" \
    --json "${fresh_json}" >/dev/null
  echo "=== [macro-smoke] gate fresh run vs committed BENCH_macro.json ==="
  python3 "${repo_root}/scripts/check_bench_regression.py" \
    --baseline "${repo_root}/BENCH_macro.json" \
    --candidate "${fresh_json}"
  echo "=== [macro-smoke] doctored fixture MUST fail (gate is armed) ==="
  if python3 "${repo_root}/scripts/check_bench_regression.py" \
      --baseline "${repo_root}/BENCH_macro.json" \
      --candidate "${repo_root}/tests/fixtures/BENCH_macro_inflated_p99.json" \
      2>"${macro_dir}/doctored.log"; then
    echo "macro-smoke gate is NOT armed: the doctored fixture with an" \
      "inflated p99 passed the regression check" >&2
    exit 1
  fi
  grep -q "p99 regression" "${macro_dir}/doctored.log" || {
    echo "doctored fixture failed for the wrong reason:" >&2
    cat "${macro_dir}/doctored.log" >&2
    exit 1
  }
  echo "=== [macro-smoke] OK: gate armed, trajectory within drift ==="
}

timing_summary=()
for stage in "${all_stages[@]}"; do
  want "${stage}" || continue
  stage_t0="$(date +%s)"
  "stage_${stage//-/_}"
  timing_summary+=("$(printf '%-14s %5ds' "${stage}" \
    "$(( $(date +%s) - stage_t0 ))")")
done

echo "=== CI timing summary (wall clock) ==="
printf '  %s\n' "${timing_summary[@]}"
echo "=== CI OK: stages [${stages}] all green ==="
