#!/usr/bin/env python3
"""Parser-hygiene lint for the cbl tree.

Annotation-driven static checks for the untrusted-input policy (see
DESIGN.md, "Untrusted-input policy"; the dynamic leg is the fuzz/
harness suite):

  // wire:untrusted fuzz=<target>
                    on a decode entry point marks it as consuming
                    attacker-controlled bytes and names the fuzz harness
                    that covers it (fuzz/<target>.cpp).
  // wire:parser    near the top of a file marks the whole translation
                    unit as parser code, enabling the W3 pattern rules.
  // wire:ok        suppresses findings on that line (audited pattern,
                    with the reason stated in the comment).

Rules enforced:

  W1  an annotated decode entry must be total: it returns
      std::optional/std::expected and is declared [[nodiscard]]
      (malformed input becomes a value, and the caller cannot drop it).
  W2  no throw / try / catch inside the body of an annotated decode
      entry — parse failures are values, not exceptions, so no hostile
      input can drive the unwinder.
  W3  in wire:parser files: no raw pointer arithmetic on .data(), no
      memcpy/memmove with a non-constant length, no reinterpret_cast.
      Bounds-checked access goes through cbl::ByteReader.
  W4  every wire:untrusted annotation names a fuzz target; the harness
      file fuzz/<target>.cpp must exist and reference the function.
  W5  inventory completeness: optional-returning parse_*/from_bytes/
      *decode* declarations in the wire-facing modules (voting, oprf,
      net, nizk, vrf, blocklist) must carry a wire:untrusted annotation,
      so new decode surfaces cannot appear unregistered.

Usage:  scripts/parser_lint.py [--root DIR] [--list-surfaces] [--self-test]
Exit code 0 when clean, 1 when findings, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import re
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from lintlib import (Finding, SOURCE_GLOBS, declaration_after,
                     function_bodies, module_of, strip_strings_and_comments)

WIRE_MODULES = {"voting", "oprf", "net", "nizk", "vrf", "blocklist", "tlog",
                "store"}

UNTRUSTED_ANNOT = re.compile(r"//\s*wire:untrusted\b(?:\s+fuzz=(\S+))?")
PARSER_ANNOT = re.compile(r"//\s*wire:parser\b")
SUPPRESS = re.compile(r"//\s*wire:ok\b")
LINE_COMMENT = re.compile(r"^\s*(//|\*|/\*)")

FUNC_NAME = re.compile(r"\b([A-Za-z_][A-Za-z0-9_]*)\s*\(")
DECODE_DECL = re.compile(
    r"\b(parse_[a-z0-9_]+|from_bytes|from_hex|[a-z0-9_]*decode[a-z0-9_]*)\s*\("
)
THROWISH = re.compile(r"\b(throw|try|catch)\b")
PTR_ARITH = re.compile(r"\.data\(\)\s*\+|\+\s*[A-Za-z_][A-Za-z0-9_.\->]*\.data\(\)")
MEMCPY = re.compile(r"\b(?:std::)?(memcpy|memmove)\s*\(")
REINTERPRET = re.compile(r"\breinterpret_cast\b")
CONST_LEN = re.compile(r"(?:sizeof\b|\b\d+\s*\)?\s*$)")


class Surface:
    """One wire:untrusted annotation: the decode entry it covers."""

    def __init__(self, path: Path, lineno: int, name: str, decl: str,
                 fuzz_target: str | None):
        self.path = path
        self.lineno = lineno
        self.name = name
        self.decl = decl
        self.fuzz_target = fuzz_target


def collect_surfaces(path: Path, findings: list[Finding]) -> list[Surface]:
    lines = path.read_text(encoding="utf-8").splitlines()
    surfaces: list[Surface] = []
    for lineno, raw in enumerate(lines, start=1):
        m = UNTRUSTED_ANNOT.search(raw)
        if not m:
            continue
        # The declaration is the code on this line (trailing annotation)
        # or starts on the next line (standalone annotation line).
        own_code = strip_strings_and_comments(raw).strip()
        if own_code:
            decl, _ = declaration_after(lines, lineno - 1)
        else:
            decl, _ = declaration_after(lines, lineno)
        names = [n for n in FUNC_NAME.findall(decl)
                 if n not in ("optional", "pair", "vector", "expected")]
        if not names:
            findings.append(
                Finding(path, lineno, "W1",
                        "wire:untrusted annotation with no function "
                        "declaration following it"))
            continue
        surfaces.append(Surface(path, lineno, names[0], decl, m.group(1)))
    return surfaces


def check_w1(surface: Surface, findings: list[Finding]) -> None:
    total = ("std::optional" in surface.decl or "optional<" in surface.decl
             or "std::expected" in surface.decl or "expected<" in surface.decl)
    if not total:
        findings.append(
            Finding(surface.path, surface.lineno, "W1",
                    f"{surface.name} is wire:untrusted but does not return "
                    "std::optional/std::expected — parse must be total"))
    if "[[nodiscard]]" not in surface.decl:
        findings.append(
            Finding(surface.path, surface.lineno, "W1",
                    f"{surface.name} is wire:untrusted but not [[nodiscard]] "
                    "— a dropped parse result hides malformed input"))


def check_w2(surfaces: list[Surface], all_files: list[Path],
             findings: list[Finding]) -> None:
    names = {s.name: s for s in surfaces}
    for path in all_files:
        text = path.read_text(encoding="utf-8")
        for name, surface in names.items():
            if name not in text:
                continue
            for lineno, body in function_bodies(text, name):
                for off, line in enumerate(body.splitlines()):
                    if SUPPRESS.search(line):
                        continue
                    code = strip_strings_and_comments(line)
                    if THROWISH.search(code):
                        findings.append(
                            Finding(path, lineno + off, "W2",
                                    f"throw/try/catch inside wire:untrusted "
                                    f"{name}() — hostile bytes must not reach "
                                    "the unwinder; return nullopt"))


def check_w3(path: Path, findings: list[Finding]) -> None:
    lines = path.read_text(encoding="utf-8").splitlines()
    if not any(PARSER_ANNOT.search(line) for line in lines[:20]):
        return
    for lineno, raw in enumerate(lines, start=1):
        if SUPPRESS.search(raw) or LINE_COMMENT.match(raw):
            continue
        code = strip_strings_and_comments(raw)
        if PTR_ARITH.search(code):
            findings.append(
                Finding(path, lineno, "W3",
                        "raw pointer arithmetic on .data() in a parser file "
                        "— use cbl::ByteReader (or annotate // wire:ok)"))
        m = MEMCPY.search(code)
        if m and not CONST_LEN.search(code):
            findings.append(
                Finding(path, lineno, "W3",
                        f"{m.group(1)} with a non-constant length in a "
                        "parser file — lengths must be validated through "
                        "cbl::ByteReader (or annotate // wire:ok)"))
        if REINTERPRET.search(code):
            findings.append(
                Finding(path, lineno, "W3",
                        "reinterpret_cast in a parser file — parse through "
                        "cbl::ByteReader views (or annotate // wire:ok)"))


def check_w4(surface: Surface, fuzz_root: Path,
             findings: list[Finding]) -> None:
    if not surface.fuzz_target:
        findings.append(
            Finding(surface.path, surface.lineno, "W4",
                    f"{surface.name} is wire:untrusted but names no fuzz "
                    "target (use // wire:untrusted fuzz=<target>)"))
        return
    harness = fuzz_root / f"{surface.fuzz_target}.cpp"
    if not harness.is_file():
        findings.append(
            Finding(surface.path, surface.lineno, "W4",
                    f"fuzz target {surface.fuzz_target} for {surface.name} "
                    f"has no harness at {harness}"))
        return
    if surface.name not in harness.read_text(encoding="utf-8"):
        findings.append(
            Finding(surface.path, surface.lineno, "W4",
                    f"harness {harness.name} never references "
                    f"{surface.name} — the surface is annotated but not "
                    "actually fuzzed"))


def check_w5(path: Path, surfaces: list[Surface],
             findings: list[Finding]) -> None:
    annotated = {s.name for s in surfaces}
    lines = path.read_text(encoding="utf-8").splitlines()
    for lineno, raw in enumerate(lines, start=1):
        if SUPPRESS.search(raw) or LINE_COMMENT.match(raw):
            continue
        code = strip_strings_and_comments(raw)
        m = DECODE_DECL.search(code)
        if not m:
            continue
        # Only declarations that return optional/expected are decode
        # entries; helpers and call sites are skipped.
        decl, _ = declaration_after(lines, lineno - 1)
        head = decl.split(m.group(1))[0]
        if not ("optional" in head or "expected" in head):
            continue
        if ";" not in decl.split(m.group(1), 1)[1].split("{", 1)[0]:
            continue  # a definition in a .cpp, not the declared surface
        if m.group(1) in annotated:
            continue
        window = lines[max(0, lineno - 2): lineno]
        if any(UNTRUSTED_ANNOT.search(w) for w in window):
            continue
        findings.append(
            Finding(path, lineno, "W5",
                    f"{m.group(1)} returns optional in a wire-facing module "
                    "but carries no // wire:untrusted fuzz=<target> "
                    "annotation — unregistered decode surface"))


def run_lint(root: Path, list_surfaces: bool = False) -> tuple[list[Finding], int]:
    src_root = root / "src"
    fuzz_root = root / "fuzz"
    if not src_root.is_dir():
        print(f"parser_lint: no src/ under {root}", file=sys.stderr)
        return [], 2

    all_files: list[Path] = []
    for glob in SOURCE_GLOBS:
        all_files.extend(sorted(src_root.rglob(glob)))

    findings: list[Finding] = []
    surfaces: list[Surface] = []
    for path in all_files:
        surfaces.extend(collect_surfaces(path, findings))

    if list_surfaces:
        for s in sorted(surfaces, key=lambda s: (str(s.path), s.lineno)):
            target = s.fuzz_target or "<none>"
            print(f"{s.path}:{s.lineno}: {s.name} -> {target}")
        return [], 0

    for surface in surfaces:
        check_w1(surface, findings)
        check_w4(surface, fuzz_root, findings)
    check_w2(surfaces, all_files, findings)
    for path in all_files:
        check_w3(path, findings)
        if path.suffix == ".h" and module_of(path, src_root) in WIRE_MODULES:
            check_w5(path, surfaces, findings)

    return findings, len(surfaces)


def self_test() -> int:
    """Seeds one violation per rule into a scratch tree and requires the
    lint to find each of them — so a refactor of this script cannot
    silently stop detecting a class of bug."""
    with tempfile.TemporaryDirectory(prefix="parser_lint_selftest") as tmp:
        root = Path(tmp)
        (root / "fuzz").mkdir()
        (root / "fuzz" / "fuzz_widget.cpp").write_text(
            "// harness that forgot to call the surface\n")
        voting = root / "src" / "voting"
        voting.mkdir(parents=True)
        (voting / "bad.h").write_text(
            "#pragma once\n"
            "// wire:untrusted fuzz=fuzz_widget\n"
            "bool parse_widget(ByteView data);\n"  # W1 (and W4: not referenced)
            "// wire:untrusted\n"
            "[[nodiscard]] std::optional<int> parse_gadget(ByteView data);\n"  # W4: no target
            "[[nodiscard]] std::optional<int> parse_rogue(ByteView data);\n"  # W5
        )
        (voting / "bad.cpp").write_text(
            "// wire:parser\n"
            "#include \"voting/bad.h\"\n"
            "bool parse_widget(ByteView data) {\n"
            "  if (data.empty()) throw std::runtime_error(\"boom\");\n"  # W2
            "  const uint8_t* p = data.data() + 4;\n"  # W3 pointer arithmetic
            "  std::memcpy(out, p, data.size());\n"  # W3 unvalidated length
            "  auto* w = reinterpret_cast<const uint32_t*>(p);\n"  # W3
            "  return *w != 0;\n"
            "}\n")
        findings, _ = run_lint(root)
        hit = {f.rule for f in findings}
        expected = {"W1", "W2", "W3", "W4", "W5"}
        missing = expected - hit
        for f in findings:
            print(f"  (self-test) {f}")
        if missing:
            print(f"parser_lint: SELF-TEST FAIL — rules not detected: "
                  f"{', '.join(sorted(missing))}")
            return 1
        print("parser_lint: SELF-TEST OK — every rule detected its "
              "seeded violation")
        return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=None,
                    help="repository root (default: the script's parent)")
    ap.add_argument("--list-surfaces", action="store_true",
                    help="print the registered decode surfaces and exit")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the lint detects seeded violations")
    args = ap.parse_args()

    if args.self_test:
        return self_test()

    root = Path(args.root) if args.root else Path(__file__).resolve().parent.parent
    findings, surface_count = run_lint(root, list_surfaces=args.list_surfaces)
    if args.list_surfaces:
        return 0

    for f in findings:
        print(f)
    status = "FAIL" if findings else "OK"
    print(f"parser_lint: {status} — {len(findings)} finding(s), "
          f"{surface_count} registered decode surface(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
