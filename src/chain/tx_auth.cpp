#include "chain/tx_auth.h"

#include "ec/codec.h"
#include "hash/sha256.h"

namespace cbl::chain {

void AuthorizedGateway::bind_key(AccountId account,
                                 const ec::RistrettoPoint& pk) {
  keys_[account] = pk;
  nonces_.try_emplace(account, 0);
}

std::uint64_t AuthorizedGateway::next_nonce(AccountId account) const {
  const auto it = nonces_.find(account);
  return it == nonces_.end() ? 0 : it->second;
}

Bytes AuthorizedGateway::auth_message(AccountId account,
                                      std::string_view method,
                                      ByteView payload, std::uint64_t nonce) {
  // Hash the payload so the signed message stays small regardless of
  // submission size.
  const auto payload_digest = hash::Sha256::digest(payload);
  ec::WireWriter w;
  w.u64(account);
  w.var_bytes(to_bytes(method));
  w.raw(ByteView(payload_digest.data(), payload_digest.size()));
  w.u64(nonce);
  return w.take();
}

nizk::Signature AuthorizedGateway::sign_submission(
    const nizk::SigningKey& key, AccountId account, std::string_view method,
    ByteView payload, std::uint64_t nonce, Rng& rng) {
  return nizk::sign(key, auth_message(account, method, payload, nonce),
                    kAuthDomain, rng);
}

TxReceipt AuthorizedGateway::submit(AccountId account, std::string method,
                                    ByteView payload, std::uint64_t nonce,
                                    const nizk::Signature& signature,
                                    const std::function<void()>& fn) {
  const auto key = keys_.find(account);
  if (key == keys_.end()) {
    throw ChainError("AuthorizedGateway: no key bound for account");
  }
  if (nonce != nonces_[account]) {
    throw ChainError("AuthorizedGateway: nonce mismatch (replay?)");
  }
  const Bytes message = auth_message(account, method, payload, nonce);
  if (!nizk::verify_signature(key->second, message, kAuthDomain, signature)) {
    throw ChainError("AuthorizedGateway: invalid transaction signature");
  }
  // Execute first: a reverting tx must not burn the nonce (the sender
  // may retry the same signed submission after fixing state).
  auto receipt = chain_.execute(account, std::move(method),
                                payload.size() + nizk::Signature::kWireSize,
                                fn);
  ++nonces_[account];
  return receipt;
}

}  // namespace cbl::chain
