// The simulated blockchain of the threat model (Section III-B): trusted
// for integrity and availability, not confidentiality — every payload and
// event is public. Contract methods execute as metered transactions:
// gas = intrinsic + storage(payload bytes) + compute(measured CPU time at
// the eWASM 1 gas = 0.1 us rate), the exact estimation pipeline the
// paper's Fig. 9 / Table II costs come from.
#pragma once

#include <chrono>
#include <functional>
#include <string>
#include <vector>

#include "chain/gas.h"
#include "chain/ledger.h"
#include "chain/merkle.h"
#include "chain/shielded.h"
#include "commit/crs.h"
#include "common/bytes.h"
#include "hash/sha256.h"

namespace cbl::chain {

struct TxReceipt {
  std::uint64_t block = 0;
  std::string method;
  AccountId payer = 0;
  std::size_t payload_bytes = 0;
  std::uint64_t storage_gas = 0;
  std::uint64_t compute_gas = 0;
  std::uint64_t gas_used = 0;  // intrinsic + storage + compute
  double cpu_micros = 0.0;
  double usd_cost = 0.0;
};

struct Event {
  std::uint64_t block;
  std::string topic;
  std::string data;
};

/// Sealed-block commitment: chains to the previous header and commits to
/// the Merkle root of the block's transaction receipts.
struct BlockHeader {
  std::uint64_t height = 0;
  hash::Sha256::Digest prev_hash{};
  MerkleTree::Digest receipt_root{};
  std::size_t tx_count = 0;

  hash::Sha256::Digest hash() const;
};

class Blockchain {
 public:
  explicit Blockchain(GasSchedule schedule = {},
                      const commit::Crs& crs = commit::Crs::default_crs());

  Ledger& ledger() { return ledger_; }
  const Ledger& ledger() const { return ledger_; }
  ShieldedPool& shielded_pool() { return pool_; }
  const GasSchedule& schedule() const { return schedule_; }
  const commit::Crs& crs() const { return crs_; }

  /// Executes `fn` as a transaction paid by `payer` whose on-chain
  /// payload occupies `payload_bytes`. CPU time of `fn` is measured and
  /// converted to gas. If `fn` throws, no receipt is recorded (revert);
  /// contracts validate before mutating, so partial state is not an
  /// issue by construction.
  TxReceipt execute(AccountId payer, std::string method,
                    std::size_t payload_bytes,
                    const std::function<void()>& fn);

  /// "broadcast" in Fig. 4: appends a public event.
  void emit_event(std::string topic, std::string data = {});
  const std::vector<Event>& events() const { return events_; }

  /// Seals the open block: commits its receipts under a Merkle root,
  /// chains the header, and starts a new block.
  void seal_block();
  std::uint64_t height() const { return height_; }
  const std::vector<BlockHeader>& headers() const { return headers_; }

  /// Canonical leaf bytes a receipt contributes to its block's tree.
  static Bytes receipt_leaf(const TxReceipt& receipt);

  /// Inclusion proof for the i-th receipt of a SEALED block; throws on
  /// out-of-range or unsealed blocks.
  MerkleTree::Proof receipt_inclusion_proof(std::uint64_t block,
                                            std::size_t index_in_block) const;

  /// Light-client check: does `receipt` sit at `index_in_block` of the
  /// sealed block committed by `header`?
  static bool verify_receipt_inclusion(const BlockHeader& header,
                                       const TxReceipt& receipt,
                                       const MerkleTree::Proof& proof);

  const std::vector<TxReceipt>& receipts() const { return receipts_; }
  std::uint64_t total_gas() const;
  std::uint64_t gas_paid_by(AccountId payer) const;
  double usd_paid_by(AccountId payer) const;
  std::size_t bytes_stored_by(AccountId payer) const;

  /// Public randomness beacon for the VRF challenge nu: a hash over the
  /// chain state so far. Every observer derives the same value; no single
  /// party chooses it.
  Bytes randomness_beacon() const;

 private:
  GasSchedule schedule_;
  const commit::Crs& crs_;
  Ledger ledger_;
  ShieldedPool pool_;
  std::vector<Bytes> open_block_leaves(std::uint64_t block) const;

  std::uint64_t height_ = 0;
  std::vector<TxReceipt> receipts_;
  std::vector<Event> events_;
  std::vector<BlockHeader> headers_;
};

}  // namespace cbl::chain
