#include "chain/blockchain.h"

#include "ec/codec.h"
#include "obs/metrics.h"

namespace cbl::chain {

Blockchain::Blockchain(GasSchedule schedule, const commit::Crs& crs)
    : schedule_(schedule), crs_(crs), ledger_(), pool_(ledger_, crs_) {}

TxReceipt Blockchain::execute(AccountId payer, std::string method,
                              std::size_t payload_bytes,
                              const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();  // ChainError propagates: the transaction reverts, no receipt
  const auto end = std::chrono::steady_clock::now();

  TxReceipt receipt;
  receipt.block = height_;
  receipt.method = std::move(method);
  receipt.payer = payer;
  receipt.payload_bytes = payload_bytes;
  receipt.cpu_micros =
      std::chrono::duration<double, std::micro>(end - start).count();
  receipt.storage_gas = schedule_.storage_gas(payload_bytes);
  receipt.compute_gas = schedule_.compute_gas(receipt.cpu_micros);
  receipt.gas_used =
      schedule_.base_tx_gas + receipt.storage_gas + receipt.compute_gas;
  receipt.usd_cost = schedule_.gas_to_usd(receipt.gas_used);
  receipts_.push_back(receipt);

  auto& registry = obs::MetricsRegistry::global();
  if (registry.enabled()) {
    const obs::Labels labels = {{"method", receipt.method}};
    registry
        .counter("cbl_chain_tx_total", labels,
                 "Executed contract transactions by method")
        .inc();
    registry
        .histogram("cbl_chain_gas_per_tx",
                   obs::Histogram::log_buckets(1e3, 1e9, 3), labels,
                   "Gas consumed per contract call")
        .observe(static_cast<double>(receipt.gas_used));
  }
  return receipt;
}

hash::Sha256::Digest BlockHeader::hash() const {
  hash::Sha256 h;
  h.update("cbl/chain/header");
  std::uint8_t buf[8];
  store_le64(buf, height);
  h.update(ByteView(buf, 8));
  h.update(ByteView(prev_hash.data(), prev_hash.size()));
  h.update(ByteView(receipt_root.data(), receipt_root.size()));
  store_le64(buf, tx_count);
  h.update(ByteView(buf, 8));
  return h.finalize();
}

Bytes Blockchain::receipt_leaf(const TxReceipt& receipt) {
  ec::WireWriter w;
  w.u64(receipt.block);
  w.var_bytes(to_bytes(receipt.method));
  w.u64(receipt.payer);
  w.u64(receipt.payload_bytes);
  w.u64(receipt.gas_used);
  return w.take();
}

std::vector<Bytes> Blockchain::open_block_leaves(std::uint64_t block) const {
  std::vector<Bytes> leaves;
  for (const auto& r : receipts_) {
    if (r.block == block) leaves.push_back(receipt_leaf(r));
  }
  return leaves;
}

void Blockchain::seal_block() {
  BlockHeader header;
  header.height = height_;
  if (!headers_.empty()) header.prev_hash = headers_.back().hash();
  const auto leaves = open_block_leaves(height_);
  header.tx_count = leaves.size();
  header.receipt_root = MerkleTree(leaves).root();
  headers_.push_back(header);
  ++height_;
}

MerkleTree::Proof Blockchain::receipt_inclusion_proof(
    std::uint64_t block, std::size_t index_in_block) const {
  if (block >= headers_.size()) {
    throw ChainError("Blockchain: block not sealed");
  }
  return MerkleTree(open_block_leaves(block)).prove(index_in_block);
}

bool Blockchain::verify_receipt_inclusion(const BlockHeader& header,
                                          const TxReceipt& receipt,
                                          const MerkleTree::Proof& proof) {
  if (receipt.block != header.height) return false;
  return MerkleTree::verify(header.receipt_root, receipt_leaf(receipt),
                            proof);
}

void Blockchain::emit_event(std::string topic, std::string data) {
  events_.push_back(Event{height_, std::move(topic), std::move(data)});
}

std::uint64_t Blockchain::total_gas() const {
  std::uint64_t total = 0;
  for (const auto& r : receipts_) total += r.gas_used;
  return total;
}

std::uint64_t Blockchain::gas_paid_by(AccountId payer) const {
  std::uint64_t total = 0;
  for (const auto& r : receipts_) {
    if (r.payer == payer) total += r.gas_used;
  }
  return total;
}

double Blockchain::usd_paid_by(AccountId payer) const {
  double total = 0;
  for (const auto& r : receipts_) {
    if (r.payer == payer) total += r.usd_cost;
  }
  return total;
}

std::size_t Blockchain::bytes_stored_by(AccountId payer) const {
  std::size_t total = 0;
  for (const auto& r : receipts_) {
    if (r.payer == payer) total += r.payload_bytes;
  }
  return total;
}

Bytes Blockchain::randomness_beacon() const {
  hash::Sha256 h;
  h.update("cbl/chain/beacon");
  std::uint8_t counters[24];
  store_le64(counters, height_);
  store_le64(counters + 8, receipts_.size());
  store_le64(counters + 16, events_.size());
  h.update(ByteView(counters, sizeof counters));
  for (const auto& e : events_) {
    h.update(e.topic).update(e.data);
  }
  const auto digest = h.finalize();
  return Bytes(digest.begin(), digest.end());
}

}  // namespace cbl::chain
