// Transaction authorization at the chain boundary: accounts bind a
// Schnorr public key, and every submission through the gateway must
// carry a signature over (account, method, payload digest, nonce) with a
// strictly increasing per-account nonce — the standard
// authentication + replay-protection discipline of a real chain,
// modelled without disturbing the contract layer.
#pragma once

#include <unordered_map>

#include "chain/blockchain.h"
#include "nizk/signature.h"

namespace cbl::chain {

class AuthorizedGateway {
 public:
  static constexpr std::string_view kAuthDomain = "cbl/chain/tx-auth/v1";

  explicit AuthorizedGateway(Blockchain& chain) : chain_(chain) {}

  /// Binds (or rebinds) the key that must sign the account's txs.
  void bind_key(AccountId account, const ec::RistrettoPoint& pk);
  bool has_key(AccountId account) const { return keys_.contains(account); }
  std::uint64_t next_nonce(AccountId account) const;

  /// The exact bytes the account signs for a submission.
  static Bytes auth_message(AccountId account, std::string_view method,
                            ByteView payload, std::uint64_t nonce);

  /// Client-side helper: signs the submission with the account's key.
  static nizk::Signature sign_submission(const nizk::SigningKey& key,
                                         AccountId account,
                                         std::string_view method,
                                         ByteView payload,
                                         std::uint64_t nonce, Rng& rng);

  /// Verifies signature + nonce, then executes `fn` as a metered
  /// transaction. Throws ChainError (no state change, no nonce burn) on
  /// unknown account key, bad signature, or nonce mismatch.
  TxReceipt submit(AccountId account, std::string method, ByteView payload,
                   std::uint64_t nonce, const nizk::Signature& signature,
                   const std::function<void()>& fn);

 private:
  Blockchain& chain_;
  std::unordered_map<AccountId, ec::RistrettoPoint> keys_;
  std::unordered_map<AccountId, std::uint64_t> nonces_;
};

}  // namespace cbl::chain
