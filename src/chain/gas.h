// The on-chain cost model of Section VI-C. The paper estimates costs by
// (a) counting the bytes of proofs that must be stored on chain, and
// (b) converting measured verification CPU time via the Ethereum
// WebAssembly proposal's assumption that 1 gas = 0.1 us of execution;
// finally (c) pricing gas at 11.8 Gwei (April 2022). This struct encodes
// exactly that estimation pipeline.
#pragma once

#include <cstdint>

namespace cbl::chain {

struct GasSchedule {
  /// Flat transaction overhead (Ethereum intrinsic gas).
  std::uint64_t base_tx_gas = 21'000;

  /// Storage cost per byte persisted on chain. Ethereum's SSTORE is
  /// 20,000 gas per fresh 32-byte word = 625 gas/byte.
  std::uint64_t gas_per_storage_byte = 625;

  /// eWASM metering assumption used by the paper: 1 gas = 0.1 us,
  /// i.e. 10 gas per microsecond of execution.
  double gas_per_microsecond = 10.0;

  /// Gas price used in the paper's Table II (April 2022).
  double gwei_per_gas = 11.8;

  /// ETH/USD conversion. ~3000 USD/ETH around April 2022.
  double usd_per_eth = 3'000.0;

  std::uint64_t storage_gas(std::size_t bytes) const {
    return gas_per_storage_byte * static_cast<std::uint64_t>(bytes);
  }

  std::uint64_t compute_gas(double microseconds) const {
    return static_cast<std::uint64_t>(microseconds * gas_per_microsecond);
  }

  double gas_to_eth(std::uint64_t gas) const {
    return static_cast<double>(gas) * gwei_per_gas * 1e-9;
  }

  double gas_to_usd(std::uint64_t gas) const {
    return gas_to_eth(gas) * usd_per_eth;
  }
};

}  // namespace cbl::chain
