#include "chain/ledger.h"

namespace cbl::chain {

AccountId Ledger::create_account(std::string label) {
  const AccountId id = labels_.size();
  labels_.push_back(std::move(label));
  balances_[id] = 0;
  return id;
}

const std::string& Ledger::label(AccountId id) const {
  if (id >= labels_.size()) throw ChainError("Ledger: unknown account");
  return labels_[id];
}

void Ledger::require_account(AccountId id) const {
  if (!balances_.contains(id)) throw ChainError("Ledger: unknown account");
}

void Ledger::mint(AccountId id, Amount amount) {
  require_account(id);
  if (amount < 0) throw ChainError("Ledger: negative mint");
  balances_[id] += amount;
}

Amount Ledger::balance(AccountId id) const {
  require_account(id);
  return balances_.at(id);
}

void Ledger::transfer(AccountId from, AccountId to, Amount amount) {
  require_account(from);
  require_account(to);
  if (amount < 0) throw ChainError("Ledger: negative transfer");
  if (balances_[from] < amount) throw ChainError("Ledger: insufficient funds");
  balances_[from] -= amount;
  balances_[to] += amount;
}

DepositId Ledger::lock_deposit(AccountId from, Amount amount) {
  require_account(from);
  if (amount <= 0) throw ChainError("Ledger: deposit must be positive");
  if (balances_[from] < amount) throw ChainError("Ledger: insufficient funds");
  balances_[from] -= amount;
  deposits_.push_back({from, amount, true});
  return deposits_.size() - 1;
}

Amount Ledger::deposit_amount(DepositId id) const {
  if (id >= deposits_.size()) throw ChainError("Ledger: unknown deposit");
  return deposits_[id].active ? deposits_[id].amount : 0;
}

void Ledger::release_deposit(DepositId id) {
  if (id >= deposits_.size()) throw ChainError("Ledger: unknown deposit");
  Deposit& d = deposits_[id];
  if (!d.active) throw ChainError("Ledger: deposit already settled");
  balances_[d.owner] += d.amount;
  d.amount = 0;
  d.active = false;
}

void Ledger::slash_deposit(DepositId id, Amount amount) {
  if (id >= deposits_.size()) throw ChainError("Ledger: unknown deposit");
  Deposit& d = deposits_[id];
  if (!d.active) throw ChainError("Ledger: deposit already settled");
  if (amount < 0 || amount > d.amount) {
    throw ChainError("Ledger: slash exceeds deposit");
  }
  d.amount -= amount;
  balances_[kTreasury] += amount;
}

void Ledger::pay_from_treasury(AccountId to, Amount amount) {
  transfer(kTreasury, to, amount);
}

Amount Ledger::total_supply() const {
  Amount total = 0;
  for (const auto& [id, bal] : balances_) total += bal;
  for (const auto& d : deposits_) {
    if (d.active) total += d.amount;
  }
  return total;
}

}  // namespace cbl::chain
