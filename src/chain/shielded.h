// A shielded token pool in the style of the private-payment frameworks
// the paper bridges to (Zerocash/Zether lineage): value lives in Pedersen
// commitments, spends are authorized by zero-knowledge opening proofs,
// and in-pool transfers conserve value homomorphically without revealing
// amounts.
//
// Faithful simplification (documented in DESIGN.md): spent notes are
// tracked by their commitment rather than by a SNARK-bound nullifier, so
// the pool hides amounts and recipient accounts but reveals *which* note
// was consumed. The paper treats private payments as an existing
// building block; this is the minimal substrate with the properties its
// bridging layer actually uses (hidden volumes, hidden shareholder
// identities at payoff).
#pragma once

#include <unordered_map>

#include "chain/ledger.h"
#include "commit/crs.h"
#include "commit/pedersen.h"
#include "nizk/sigma.h"

namespace cbl::chain {

class ShieldedPool {
 public:
  ShieldedPool(Ledger& ledger, const commit::Crs& crs);

  /// Transparent -> shielded: locks `amount` tokens from `from` behind a
  /// commitment the caller constructed as Com(amount; r). The chain checks
  /// the commitment matches the deposited amount (this edge reveals the
  /// amount, as in Zcash t->z).
  /// The proof must show note / g^amount = h^r for a known r (single-base
  /// Schnorr) — a full representation proof would let a cheater commit to
  /// a different amount than deposited.
  void shield(AccountId from, Amount amount, const commit::Commitment& note,
              const nizk::SchnorrProof& opening_proof);

  /// Shielded -> shielded 1-to-2 split. Value conservation is the
  /// homomorphic identity input = out1 * out2; the spender proves
  /// knowledge of the input opening. Amounts never appear.
  void split(const commit::Commitment& input,
             const nizk::RepresentationProof& spend_auth,
             const commit::Commitment& out1, const commit::Commitment& out2);

  /// Shielded -> transparent: reveals the amount of one note and pays it
  /// to `to` after verifying the opening proof for Com(claimed; r).
  void unshield(const commit::Commitment& note, Amount claimed,
                const nizk::SchnorrProof& opening_proof, AccountId to);

  // --- Bridging interface (Section V-C "Bridging secure payoff") --------
  // These entry points are reserved for on-chain contracts, which the
  // threat model trusts for integrity: the evaluation contract replaces a
  // deposit note with its homomorphically updated version and settles the
  // value difference against a transparent account. In a production
  // deployment the same transition would be authorized by the ZKP bridge
  // the paper sketches; the value flows are identical.

  /// Replaces `old_note` (consuming it, even if locked) with `new_note`.
  void replace_note(const commit::Commitment& old_note,
                    const commit::Commitment& new_note);

  /// Locks/unlocks a note: locked notes cannot be split, unshielded, or
  /// re-registered — the contract's hold on a shareholder's stake.
  void lock_note(const commit::Commitment& note);
  void unlock_note(const commit::Commitment& note);
  bool note_locked(const commit::Commitment& note) const;

  /// Moves transparent tokens into the pool escrow (funding rewards).
  void fund_escrow(AccountId from, Amount amount);

  /// Moves transparent tokens out of the pool escrow (absorbing slashes).
  void drain_escrow(AccountId to, Amount amount);

  bool note_exists(const commit::Commitment& note) const;
  bool note_spent(const commit::Commitment& note) const;
  std::size_t live_notes() const;

  /// Tokens held by the pool's escrow (total shielded value; an invariant
  /// checked by tests: equals sum of unspent note amounts).
  Amount escrow_balance() const;

  static constexpr std::string_view kSpendDomain = "cbl/shielded/spend";

 private:
  struct NoteState {
    bool spent = false;
    bool locked = false;
  };

  std::string key_of(const commit::Commitment& note) const;

  Ledger& ledger_;
  const commit::Crs& crs_;
  AccountId escrow_;
  std::unordered_map<std::string, NoteState> notes_;
};

}  // namespace cbl::chain
