// Binary Merkle tree over SHA-256 with domain-separated leaf/node
// hashing (second-preimage hardened) and RFC-6962 tree shape: an
// unbalanced tree splits at the largest power of two below the leaf
// count, so every prefix of the leaf sequence is a subtree and
// append-only growth is provable with succinct consistency proofs.
//
// Two consumers ride on this one structure:
//   * the blockchain commits each sealed block to the Merkle root of its
//     transaction receipts, so a light client can verify that a given
//     transaction executed without replaying the chain;
//   * the transparency log (src/tlog) commits each epoch's bucket set,
//     so a blocklist client can verify inclusion of its prefix buckets
//     and append-only consistency between epochs.
#pragma once

#include <cstdint>
#include <vector>

#include "hash/sha256.h"

namespace cbl::chain {

class MerkleTree {
 public:
  using Digest = hash::Sha256::Digest;

  struct ProofStep {
    Digest sibling;
    bool sibling_on_right;
  };
  using Proof = std::vector<ProofStep>;
  /// RFC-6962 consistency proof: bare subtree hashes, leaf-to-root order.
  using ConsistencyProof = std::vector<Digest>;

  /// Builds the tree over the given leaf payloads (hashed internally).
  /// An empty leaf set has the all-zero root.
  explicit MerkleTree(const std::vector<Bytes>& leaves);

  const Digest& root() const { return root_; }
  std::size_t leaf_count() const { return leaf_hashes_.size(); }

  /// Inclusion proof for leaf `index`; throws std::out_of_range.
  Proof prove(std::size_t index) const;

  /// Verifies that `leaf_payload` is a leaf under `root` along the path
  /// described by the proof's direction flags. Cannot pin WHICH leaf
  /// slot the payload occupies — use the index-bound overload when the
  /// position matters (e.g. the transparency log).
  static bool verify(const Digest& root, ByteView leaf_payload,
                     const Proof& proof);

  /// Index-bound verification: the fold directions are derived from
  /// (index, leaf_count), not trusted from the proof, so a proof for
  /// leaf i can never be replayed to place the payload at a same-path
  /// index j, and proofs of the wrong length are rejected.
  static bool verify(const Digest& root, std::size_t index,
                     std::size_t leaf_count, ByteView leaf_payload,
                     const Proof& proof);

  /// RFC-6962 consistency proof that this tree is an append-only
  /// extension of its own first `old_size` leaves; throws
  /// std::out_of_range when old_size exceeds the leaf count.
  ConsistencyProof prove_consistency(std::size_t old_size) const;

  /// Verifies that the tree of `new_size` leaves under `new_root` is an
  /// append-only extension of the tree of `old_size` leaves under
  /// `old_root`. The empty tree (old_size 0) is consistent with
  /// anything; equal sizes require equal roots and an empty proof.
  static bool verify_consistency(const Digest& old_root,
                                 std::size_t old_size,
                                 const Digest& new_root,
                                 std::size_t new_size,
                                 const ConsistencyProof& proof);

  static Digest hash_leaf(ByteView payload);
  static Digest hash_node(const Digest& left, const Digest& right);

 private:
  Digest subtree_root(std::size_t lo, std::size_t hi) const;
  void subtree_prove(std::size_t index, std::size_t lo, std::size_t hi,
                     Proof& out) const;
  void subtree_consistency(std::size_t m, std::size_t lo, std::size_t hi,
                           bool complete, ConsistencyProof& out) const;

  std::vector<Digest> leaf_hashes_;
  Digest root_{};
};

}  // namespace cbl::chain
