// Binary Merkle tree over SHA-256 with domain-separated leaf/node
// hashing (second-preimage hardened). The blockchain commits each sealed
// block to the Merkle root of its transaction receipts, so a light
// client can verify that a given transaction executed without replaying
// the chain — the "publicly verifiable" integrity anchor of the threat
// model.
#pragma once

#include <cstdint>
#include <vector>

#include "hash/sha256.h"

namespace cbl::chain {

class MerkleTree {
 public:
  using Digest = hash::Sha256::Digest;

  struct ProofStep {
    Digest sibling;
    bool sibling_on_right;
  };
  using Proof = std::vector<ProofStep>;

  /// Builds the tree over the given leaf payloads (hashed internally).
  /// An empty leaf set has the all-zero root.
  explicit MerkleTree(const std::vector<Bytes>& leaves);

  const Digest& root() const { return root_; }
  std::size_t leaf_count() const { return leaf_count_; }

  /// Inclusion proof for leaf `index`; throws std::out_of_range.
  Proof prove(std::size_t index) const;

  /// Verifies that `leaf_payload` is the index-th leaf under `root`.
  static bool verify(const Digest& root, ByteView leaf_payload,
                     const Proof& proof);

  static Digest hash_leaf(ByteView payload);
  static Digest hash_node(const Digest& left, const Digest& right);

 private:
  std::vector<std::vector<Digest>> levels_;  // levels_[0] = leaf hashes
  Digest root_{};
  std::size_t leaf_count_ = 0;
};

}  // namespace cbl::chain
