// Token ledger: transparent accounts, locked deposits (the stake a
// shareholder or provider puts up), and slashing. The blockchain owns
// one; contracts manipulate it through their ChainContext.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/errors.h"

namespace cbl::chain {

using AccountId = std::uint64_t;
using DepositId = std::uint64_t;
using Amount = std::int64_t;  // token units; signed to catch underflow bugs

class Ledger {
 public:
  AccountId create_account(std::string label);
  const std::string& label(AccountId id) const;

  void mint(AccountId id, Amount amount);
  Amount balance(AccountId id) const;

  /// Throws ChainError on insufficient funds or unknown accounts.
  void transfer(AccountId from, AccountId to, Amount amount);

  /// Moves `amount` from the account into an escrow slot.
  DepositId lock_deposit(AccountId from, Amount amount);
  Amount deposit_amount(DepositId id) const;

  /// Returns the remaining escrowed amount to its owner.
  void release_deposit(DepositId id);

  /// Confiscates `amount` from the escrow into the treasury account (the
  /// redistribution pool). Remaining escrow stays locked.
  void slash_deposit(DepositId id, Amount amount);

  /// Pays `amount` out of the treasury to an account (reward path).
  void pay_from_treasury(AccountId to, Amount amount);

  AccountId treasury() const { return kTreasury; }
  Amount total_supply() const;

 private:
  static constexpr AccountId kTreasury = 0;

  struct Deposit {
    AccountId owner;
    Amount amount;
    bool active;
  };

  void require_account(AccountId id) const;

  std::vector<std::string> labels_ = {"treasury"};
  std::unordered_map<AccountId, Amount> balances_ = {{kTreasury, 0}};
  std::vector<Deposit> deposits_;
};

}  // namespace cbl::chain
