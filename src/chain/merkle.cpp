#include "chain/merkle.h"

#include <stdexcept>

namespace cbl::chain {

namespace {

/// Largest power of two strictly below n (RFC 6962's split point);
/// requires n >= 2.
std::size_t split_point(std::size_t n) {
  std::size_t k = 1;
  while (k * 2 < n) k *= 2;
  return k;
}

}  // namespace

MerkleTree::Digest MerkleTree::hash_leaf(ByteView payload) {
  hash::Sha256 h;
  h.update("cbl/merkle/leaf").update(payload);
  return h.finalize();
}

MerkleTree::Digest MerkleTree::hash_node(const Digest& left,
                                         const Digest& right) {
  hash::Sha256 h;
  h.update("cbl/merkle/node")
      .update(ByteView(left.data(), left.size()))
      .update(ByteView(right.data(), right.size()));
  return h.finalize();
}

MerkleTree::MerkleTree(const std::vector<Bytes>& leaves) {
  leaf_hashes_.reserve(leaves.size());
  for (const auto& leaf : leaves) leaf_hashes_.push_back(hash_leaf(leaf));
  if (!leaf_hashes_.empty()) root_ = subtree_root(0, leaf_hashes_.size());
}

MerkleTree::Digest MerkleTree::subtree_root(std::size_t lo,
                                            std::size_t hi) const {
  if (hi - lo == 1) return leaf_hashes_[lo];
  const std::size_t k = split_point(hi - lo);
  return hash_node(subtree_root(lo, lo + k), subtree_root(lo + k, hi));
}

MerkleTree::Proof MerkleTree::prove(std::size_t index) const {
  if (index >= leaf_count()) {
    throw std::out_of_range("MerkleTree::prove: index out of range");
  }
  Proof proof;
  subtree_prove(index, 0, leaf_count(), proof);
  return proof;
}

void MerkleTree::subtree_prove(std::size_t index, std::size_t lo,
                               std::size_t hi, Proof& out) const {
  if (hi - lo == 1) return;
  const std::size_t k = split_point(hi - lo);
  if (index < lo + k) {
    subtree_prove(index, lo, lo + k, out);
    out.push_back(ProofStep{subtree_root(lo + k, hi), true});
  } else {
    subtree_prove(index, lo + k, hi, out);
    out.push_back(ProofStep{subtree_root(lo, lo + k), false});
  }
}

bool MerkleTree::verify(const Digest& root, ByteView leaf_payload,
                        const Proof& proof) {
  Digest acc = hash_leaf(leaf_payload);
  for (const auto& step : proof) {
    acc = step.sibling_on_right ? hash_node(acc, step.sibling)
                                : hash_node(step.sibling, acc);
  }
  return acc == root;
}

bool MerkleTree::verify(const Digest& root, std::size_t index,
                        std::size_t leaf_count, ByteView leaf_payload,
                        const Proof& proof) {
  if (leaf_count == 0 || index >= leaf_count) return false;
  // RFC 6962-bis inclusion check: walk the index/size pair up the tree,
  // deriving at each level whether the path node is a left or right
  // child. The proof's own flags must agree — a disagreement means the
  // proof was generated for a different slot.
  std::size_t fn = index;
  std::size_t sn = leaf_count - 1;
  Digest acc = hash_leaf(leaf_payload);
  for (const auto& step : proof) {
    if (sn == 0) return false;  // proof longer than the actual path
    const bool sibling_left = (fn & 1) != 0 || fn == sn;
    if (step.sibling_on_right == sibling_left) return false;
    if (sibling_left) {
      acc = hash_node(step.sibling, acc);
      if ((fn & 1) == 0) {
        // Right edge of the tree: the path skips the levels where this
        // node has no sibling.
        while (fn != 0 && (fn & 1) == 0) {
          fn >>= 1;
          sn >>= 1;
        }
      }
    } else {
      acc = hash_node(acc, step.sibling);
    }
    fn >>= 1;
    sn >>= 1;
  }
  return sn == 0 && acc == root;
}

MerkleTree::ConsistencyProof MerkleTree::prove_consistency(
    std::size_t old_size) const {
  if (old_size > leaf_count()) {
    throw std::out_of_range(
        "MerkleTree::prove_consistency: old_size exceeds leaf count");
  }
  ConsistencyProof proof;
  if (old_size == 0 || old_size == leaf_count()) return proof;  // trivial
  subtree_consistency(old_size, 0, leaf_count(), true, proof);
  return proof;
}

void MerkleTree::subtree_consistency(std::size_t m, std::size_t lo,
                                     std::size_t hi, bool complete,
                                     ConsistencyProof& out) const {
  const std::size_t n = hi - lo;
  if (m == n) {
    // The old tree is exactly this subtree; its root is implied when the
    // verifier already holds it (complete), a proof node otherwise.
    if (!complete) out.push_back(subtree_root(lo, hi));
    return;
  }
  const std::size_t k = split_point(n);
  if (m <= k) {
    subtree_consistency(m, lo, lo + k, complete, out);
    out.push_back(subtree_root(lo + k, hi));
  } else {
    subtree_consistency(m - k, lo + k, hi, false, out);
    out.push_back(subtree_root(lo, lo + k));
  }
}

bool MerkleTree::verify_consistency(const Digest& old_root,
                                    std::size_t old_size,
                                    const Digest& new_root,
                                    std::size_t new_size,
                                    const ConsistencyProof& proof) {
  if (old_size > new_size) return false;
  if (old_size == new_size) return proof.empty() && old_root == new_root;
  if (old_size == 0) return proof.empty();  // empty tree extends to anything
  // RFC 6962 consistency check: reconstruct both the old root (fr) and
  // the new root (sr) from the proof nodes in one walk.
  std::size_t fn = old_size - 1;
  std::size_t sn = new_size - 1;
  while ((fn & 1) != 0) {
    fn >>= 1;
    sn >>= 1;
  }
  std::size_t next = 0;
  Digest fr;
  Digest sr;
  if (fn != 0) {
    if (proof.empty()) return false;
    fr = sr = proof[0];
    next = 1;
  } else {
    // old_size is a power of two: the old root is itself a node of the
    // new tree, so it seeds the fold directly.
    fr = sr = old_root;
  }
  for (; next < proof.size(); ++next) {
    const Digest& node = proof[next];
    if (sn == 0) return false;
    if ((fn & 1) != 0 || fn == sn) {
      fr = hash_node(node, fr);
      sr = hash_node(node, sr);
      if ((fn & 1) == 0) {
        while (fn != 0 && (fn & 1) == 0) {
          fn >>= 1;
          sn >>= 1;
        }
      }
    } else {
      sr = hash_node(sr, node);
    }
    fn >>= 1;
    sn >>= 1;
  }
  return sn == 0 && fr == old_root && sr == new_root;
}

}  // namespace cbl::chain
