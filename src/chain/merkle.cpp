#include "chain/merkle.h"

#include <stdexcept>

namespace cbl::chain {

MerkleTree::Digest MerkleTree::hash_leaf(ByteView payload) {
  hash::Sha256 h;
  h.update("cbl/merkle/leaf").update(payload);
  return h.finalize();
}

MerkleTree::Digest MerkleTree::hash_node(const Digest& left,
                                         const Digest& right) {
  hash::Sha256 h;
  h.update("cbl/merkle/node")
      .update(ByteView(left.data(), left.size()))
      .update(ByteView(right.data(), right.size()));
  return h.finalize();
}

MerkleTree::MerkleTree(const std::vector<Bytes>& leaves)
    : leaf_count_(leaves.size()) {
  if (leaves.empty()) return;

  std::vector<Digest> level;
  level.reserve(leaves.size());
  for (const auto& leaf : leaves) level.push_back(hash_leaf(leaf));
  levels_.push_back(level);

  while (levels_.back().size() > 1) {
    const auto& prev = levels_.back();
    std::vector<Digest> next;
    next.reserve((prev.size() + 1) / 2);
    for (std::size_t i = 0; i < prev.size(); i += 2) {
      // Odd tail is paired with itself (Bitcoin-style duplication is a
      // known pitfall; with domain separation and fixed indices it is
      // safe for inclusion proofs).
      const Digest& right = i + 1 < prev.size() ? prev[i + 1] : prev[i];
      next.push_back(hash_node(prev[i], right));
    }
    levels_.push_back(std::move(next));
  }
  root_ = levels_.back()[0];
}

MerkleTree::Proof MerkleTree::prove(std::size_t index) const {
  if (index >= leaf_count_) {
    throw std::out_of_range("MerkleTree::prove: index out of range");
  }
  Proof proof;
  std::size_t i = index;
  for (std::size_t depth = 0; depth + 1 < levels_.size(); ++depth) {
    const auto& level = levels_[depth];
    const std::size_t sibling = i ^ 1;
    ProofStep step;
    step.sibling = sibling < level.size() ? level[sibling] : level[i];
    step.sibling_on_right = (i & 1) == 0;
    proof.push_back(step);
    i >>= 1;
  }
  return proof;
}

bool MerkleTree::verify(const Digest& root, ByteView leaf_payload,
                        const Proof& proof) {
  Digest acc = hash_leaf(leaf_payload);
  for (const auto& step : proof) {
    acc = step.sibling_on_right ? hash_node(acc, step.sibling)
                                : hash_node(step.sibling, acc);
  }
  return acc == root;
}

}  // namespace cbl::chain
