#include "chain/shielded.h"

namespace cbl::chain {

ShieldedPool::ShieldedPool(Ledger& ledger, const commit::Crs& crs)
    : ledger_(ledger), crs_(crs) {
  escrow_ = ledger_.create_account("shielded-pool-escrow");
}

std::string ShieldedPool::key_of(const commit::Commitment& note) const {
  const auto enc = note.encode();
  return std::string(enc.begin(), enc.end());
}

void ShieldedPool::shield(AccountId from, Amount amount,
                          const commit::Commitment& note,
                          const nizk::SchnorrProof& opening_proof) {
  if (amount <= 0) throw ChainError("ShieldedPool: amount must be positive");
  if (notes_.contains(key_of(note))) {
    throw ChainError("ShieldedPool: duplicate note");
  }
  // The committed value must equal the transparent amount being shielded:
  // note / g^amount must be h^r for a known r.
  const ec::RistrettoPoint residue =
      note.point() - crs_.g * ec::Scalar::from_u64(static_cast<std::uint64_t>(amount));
  if (!opening_proof.verify(crs_.h, residue, kSpendDomain)) {
    throw ChainError("ShieldedPool: shield opening proof invalid");
  }
  ledger_.transfer(from, escrow_, amount);
  notes_[key_of(note)] = NoteState{};
}

void ShieldedPool::split(const commit::Commitment& input,
                         const nizk::RepresentationProof& spend_auth,
                         const commit::Commitment& out1,
                         const commit::Commitment& out2) {
  auto it = notes_.find(key_of(input));
  if (it == notes_.end()) throw ChainError("ShieldedPool: unknown note");
  if (it->second.spent) throw ChainError("ShieldedPool: note already spent");
  if (it->second.locked) throw ChainError("ShieldedPool: note is locked");
  if (!spend_auth.verify(crs_.g, crs_.h, input.point(), kSpendDomain)) {
    throw ChainError("ShieldedPool: spend authorization invalid");
  }
  // Homomorphic value conservation.
  if (!(input == out1 * out2)) {
    throw ChainError("ShieldedPool: outputs do not conserve value");
  }
  if (notes_.contains(key_of(out1)) || notes_.contains(key_of(out2))) {
    throw ChainError("ShieldedPool: output note already exists");
  }
  it->second.spent = true;
  notes_[key_of(out1)] = NoteState{};
  notes_[key_of(out2)] = NoteState{};
}

void ShieldedPool::unshield(const commit::Commitment& note, Amount claimed,
                            const nizk::SchnorrProof& opening_proof,
                            AccountId to) {
  auto it = notes_.find(key_of(note));
  if (it == notes_.end()) throw ChainError("ShieldedPool: unknown note");
  if (it->second.spent) throw ChainError("ShieldedPool: note already spent");
  if (it->second.locked) throw ChainError("ShieldedPool: note is locked");
  if (claimed <= 0) throw ChainError("ShieldedPool: claim must be positive");
  const ec::RistrettoPoint residue =
      note.point() -
      crs_.g * ec::Scalar::from_u64(static_cast<std::uint64_t>(claimed));
  if (!opening_proof.verify(crs_.h, residue, kSpendDomain)) {
    throw ChainError("ShieldedPool: unshield opening proof invalid");
  }
  it->second.spent = true;
  ledger_.transfer(escrow_, to, claimed);
}

void ShieldedPool::replace_note(const commit::Commitment& old_note,
                                const commit::Commitment& new_note) {
  auto it = notes_.find(key_of(old_note));
  if (it == notes_.end()) throw ChainError("ShieldedPool: unknown note");
  if (it->second.spent) throw ChainError("ShieldedPool: note already spent");
  if (notes_.contains(key_of(new_note))) {
    throw ChainError("ShieldedPool: replacement note already exists");
  }
  it->second.spent = true;
  notes_[key_of(new_note)] = NoteState{};
}

void ShieldedPool::lock_note(const commit::Commitment& note) {
  auto it = notes_.find(key_of(note));
  if (it == notes_.end()) throw ChainError("ShieldedPool: unknown note");
  if (it->second.spent) throw ChainError("ShieldedPool: note already spent");
  if (it->second.locked) throw ChainError("ShieldedPool: note already locked");
  it->second.locked = true;
}

void ShieldedPool::unlock_note(const commit::Commitment& note) {
  auto it = notes_.find(key_of(note));
  if (it == notes_.end()) throw ChainError("ShieldedPool: unknown note");
  it->second.locked = false;
}

bool ShieldedPool::note_locked(const commit::Commitment& note) const {
  const auto it = notes_.find(key_of(note));
  return it != notes_.end() && it->second.locked;
}

void ShieldedPool::fund_escrow(AccountId from, Amount amount) {
  ledger_.transfer(from, escrow_, amount);
}

void ShieldedPool::drain_escrow(AccountId to, Amount amount) {
  ledger_.transfer(escrow_, to, amount);
}

bool ShieldedPool::note_exists(const commit::Commitment& note) const {
  return notes_.contains(key_of(note));
}

bool ShieldedPool::note_spent(const commit::Commitment& note) const {
  const auto it = notes_.find(key_of(note));
  return it != notes_.end() && it->second.spent;
}

std::size_t ShieldedPool::live_notes() const {
  std::size_t n = 0;
  for (const auto& [key, state] : notes_) {
    if (!state.spent) ++n;
  }
  return n;
}

Amount ShieldedPool::escrow_balance() const { return ledger_.balance(escrow_); }

}  // namespace cbl::chain
