#include "ec/scalar.h"

#include "common/ct.h"

namespace cbl::ec {

namespace {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

// l = 2^252 + 27742317777372353535851937790883648493.
constexpr std::array<u64, 4> kL = {0x5812631a5cf5d3edULL, 0x14def9dea2f79cd6ULL,
                                   0x0000000000000000ULL, 0x1000000000000000ULL};

// -l^{-1} mod 2^64, derived by Newton iteration at startup.
u64 mont_inv_factor() noexcept {
  u64 x = 1;
  for (int i = 0; i < 6; ++i) x *= 2 - kL[0] * x;  // x = l0^{-1} mod 2^64
  return ~x + 1;                                   // -x
}

// a + b with carry out; a - b with borrow out.
inline u64 adc(u64 a, u64 b, u64& carry) noexcept {
  const u128 t = static_cast<u128>(a) + b + carry;
  carry = static_cast<u64>(t >> 64);
  return static_cast<u64>(t);
}

inline u64 sbb(u64 a, u64 b, u64& borrow) noexcept {
  const u128 t = static_cast<u128>(a) - b - borrow;
  borrow = static_cast<u64>(t >> 64) & 1;
  return static_cast<u64>(t);
}

// All-ones iff a >= l, computed without a branch: subtract l and look at
// the final borrow. Scalars are routinely secret (blinding factors, the
// OPRF mask, commitment randomness), so every reduction below is masked
// rather than conditional.
u64 geq_l_mask(const std::array<u64, 4>& a) noexcept {
  u64 borrow = 0;
  for (int i = 0; i < 4; ++i) {
    (void)sbb(a[static_cast<std::size_t>(i)], kL[static_cast<std::size_t>(i)],
              borrow);
  }
  return borrow - 1;  // borrow == 0 (a >= l) -> all-ones
}

// a -= l where mask is all-ones; no-op (same instruction trace) otherwise.
void csub_l(std::array<u64, 4>& a, u64 mask) noexcept {
  u64 borrow = 0;
  for (int i = 0; i < 4; ++i) {
    a[static_cast<std::size_t>(i)] =
        sbb(a[static_cast<std::size_t>(i)],
            kL[static_cast<std::size_t>(i)] & mask, borrow);
  }
}

// Montgomery product: a * b * 2^{-256} mod l (CIOS), inputs < l.
std::array<u64, 4> mont_mul(const std::array<u64, 4>& a,
                            const std::array<u64, 4>& b) noexcept {
  static const u64 kInv = mont_inv_factor();
  u64 t[6] = {0, 0, 0, 0, 0, 0};

  for (int i = 0; i < 4; ++i) {
    u64 carry = 0;
    for (int j = 0; j < 4; ++j) {
      const u128 prod = static_cast<u128>(a[static_cast<std::size_t>(i)]) *
                            b[static_cast<std::size_t>(j)] +
                        t[j] + carry;
      t[j] = static_cast<u64>(prod);
      carry = static_cast<u64>(prod >> 64);
    }
    u64 c2 = 0;
    t[4] = adc(t[4], carry, c2);
    t[5] = c2;

    const u64 m = t[0] * kInv;
    carry = 0;
    {
      const u128 prod = static_cast<u128>(m) * kL[0] + t[0];
      carry = static_cast<u64>(prod >> 64);
    }
    for (int j = 1; j < 4; ++j) {
      const u128 prod =
          static_cast<u128>(m) * kL[static_cast<std::size_t>(j)] + t[j] + carry;
      t[j - 1] = static_cast<u64>(prod);
      carry = static_cast<u64>(prod >> 64);
    }
    c2 = 0;
    t[3] = adc(t[4], carry, c2);
    t[4] = t[5] + c2;
    t[5] = 0;
  }

  std::array<u64, 4> r = {t[0], t[1], t[2], t[3]};
  // CIOS leaves the result < 2l, so one masked subtraction finishes it.
  csub_l(r, ct_mask_u64(t[4] != 0) | geq_l_mask(r));
  return r;
}

// 2^256 mod l and 2^512 mod l, bootstrapped by repeated modular doubling.
std::array<u64, 4> pow2_mod_l(int exponent) noexcept {
  std::array<u64, 4> r = {1, 0, 0, 0};
  for (int i = 0; i < exponent; ++i) {
    u64 carry = 0;
    for (int j = 0; j < 4; ++j) r[static_cast<std::size_t>(j)] =
        adc(r[static_cast<std::size_t>(j)], r[static_cast<std::size_t>(j)], carry);
    csub_l(r, ct_mask_u64(carry != 0) | geq_l_mask(r));
  }
  return r;
}

const std::array<u64, 4>& r2_mod_l() noexcept {
  static const std::array<u64, 4> v = pow2_mod_l(512);
  return v;
}

}  // namespace

Scalar Scalar::from_u64(u64 v) noexcept {
  Scalar s;
  s.limbs_ = {v, 0, 0, 0};
  return s;
}

const Scalar& Scalar::zero() noexcept {
  static const Scalar s;
  return s;
}

const Scalar& Scalar::one() noexcept {
  static const Scalar s = from_u64(1);
  return s;
}

std::optional<Scalar> Scalar::from_canonical_bytes(
    const std::array<std::uint8_t, 32>& bytes) noexcept {
  Scalar s;
  for (int i = 0; i < 4; ++i) {
    s.limbs_[static_cast<std::size_t>(i)] = load_le64(bytes.data() + 8 * i);
  }
  // ct:public — the canonicity verdict is part of the wire protocol.
  if (geq_l_mask(s.limbs_) != 0) return std::nullopt;
  return s;
}

Scalar Scalar::from_bytes_mod_order(
    const std::array<std::uint8_t, 32>& bytes) noexcept {
  std::array<std::uint8_t, 64> wide{};
  std::copy(bytes.begin(), bytes.end(), wide.begin());
  return from_bytes_wide(wide);
}

Scalar Scalar::from_bytes_wide(
    const std::array<std::uint8_t, 64>& bytes) noexcept {
  // Binary reduction: r = sum bits, msb first, r = 2r + bit (mod l).
  // ~1k word additions; simple and obviously correct. The input is often
  // secret (blinding-factor sampling), so the per-bit add is masked rather
  // than branched on.
  std::array<u64, 4> r = {0, 0, 0, 0};
  for (int byte = 63; byte >= 0; --byte) {
    for (int bit = 7; bit >= 0; --bit) {
      u64 carry = 0;
      for (int j = 0; j < 4; ++j) r[static_cast<std::size_t>(j)] =
          adc(r[static_cast<std::size_t>(j)], r[static_cast<std::size_t>(j)], carry);
      csub_l(r, ct_mask_u64(carry != 0) | geq_l_mask(r));
      const u64 b = (bytes[static_cast<std::size_t>(byte)] >> bit) & 1;
      u64 c = 0;
      r[0] = adc(r[0], b, c);
      r[1] = adc(r[1], 0, c);
      r[2] = adc(r[2], 0, c);
      r[3] = adc(r[3], 0, c);
      csub_l(r, geq_l_mask(r));
    }
  }
  Scalar s;
  s.limbs_ = r;
  return s;
}

Scalar Scalar::random(Rng& rng) {
  std::array<std::uint8_t, 64> wide;
  rng.fill(wide.data(), wide.size());
  return from_bytes_wide(wide);
}

std::array<std::uint8_t, 32> Scalar::to_bytes() const noexcept {
  std::array<std::uint8_t, 32> out;
  for (int i = 0; i < 4; ++i) {
    store_le64(out.data() + 8 * i, limbs_[static_cast<std::size_t>(i)]);
  }
  return out;
}

Scalar Scalar::operator+(const Scalar& o) const noexcept {
  Scalar r;
  u64 carry = 0;
  for (int i = 0; i < 4; ++i) {
    r.limbs_[static_cast<std::size_t>(i)] =
        adc(limbs_[static_cast<std::size_t>(i)],
            o.limbs_[static_cast<std::size_t>(i)], carry);
  }
  csub_l(r.limbs_, ct_mask_u64(carry != 0) | geq_l_mask(r.limbs_));
  return r;
}

Scalar Scalar::operator-(const Scalar& o) const noexcept {
  Scalar r;
  u64 borrow = 0;
  for (int i = 0; i < 4; ++i) {
    r.limbs_[static_cast<std::size_t>(i)] =
        sbb(limbs_[static_cast<std::size_t>(i)],
            o.limbs_[static_cast<std::size_t>(i)], borrow);
  }
  // Masked add-back of l when the subtraction borrowed.
  const u64 mask = ct_mask_u64(borrow != 0);
  u64 carry = 0;
  for (int i = 0; i < 4; ++i) {
    r.limbs_[static_cast<std::size_t>(i)] =
        adc(r.limbs_[static_cast<std::size_t>(i)],
            kL[static_cast<std::size_t>(i)] & mask, carry);
  }
  return r;
}

Scalar Scalar::operator-() const noexcept { return zero() - *this; }

Scalar Scalar::operator*(const Scalar& o) const noexcept {
  // ab = REDC(REDC(a*b) * R^2): two Montgomery products keep the external
  // representation plain.
  Scalar r;
  r.limbs_ = mont_mul(mont_mul(limbs_, o.limbs_), r2_mod_l());
  return r;
}

void Scalar::wipe() noexcept {
  secure_wipe(limbs_.data(), limbs_.size() * sizeof(u64));
}

Scalar Scalar::invert() const noexcept {
  // Fermat: x^(l-2). Exponent bits taken from l with 2 subtracted — the
  // exponent is a public constant, so the per-bit branch below leaks
  // nothing about the base. ct:public
  std::array<u64, 4> e = kL;
  e[0] -= 2;  // l is odd with low limb ...ed, no borrow
  Scalar result = one();
  for (int bit = 255; bit >= 0; --bit) {
    result = result * result;
    if ((e[static_cast<std::size_t>(bit / 64)] >> (bit % 64)) & 1) {
      result = result * *this;
    }
  }
  return result;
}

}  // namespace cbl::ec
