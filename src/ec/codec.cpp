#include "ec/codec.h"

namespace cbl::ec {

ByteWriter& ByteWriter::u8(std::uint8_t v) {
  out_.push_back(v);
  return *this;
}

ByteWriter& ByteWriter::u32(std::uint32_t v) {
  std::uint8_t buf[4];
  store_le32(buf, v);
  append(out_, ByteView(buf, 4));
  return *this;
}

ByteWriter& ByteWriter::u64(std::uint64_t v) {
  std::uint8_t buf[8];
  store_le64(buf, v);
  append(out_, ByteView(buf, 8));
  return *this;
}

ByteWriter& ByteWriter::raw(ByteView data) {
  append(out_, data);
  return *this;
}

ByteWriter& ByteWriter::var_bytes(ByteView data) {
  u32(static_cast<std::uint32_t>(data.size()));
  return raw(data);
}

ByteWriter& ByteWriter::point(const RistrettoPoint& p) {
  return raw(p.encode());
}

ByteWriter& ByteWriter::scalar(const Scalar& s) {
  return raw(s.to_bytes());
}

const std::uint8_t* ByteReader::take(std::size_t len) {
  if (len > data_.size() - pos_) {
    throw ProtocolError("ByteReader: truncated input");
  }
  const std::uint8_t* p = data_.data() + pos_;
  pos_ += len;
  return p;
}

std::uint8_t ByteReader::u8() { return *take(1); }

std::uint32_t ByteReader::u32() { return load_le32(take(4)); }

std::uint64_t ByteReader::u64() { return load_le64(take(8)); }

Bytes ByteReader::raw(std::size_t len) {
  const std::uint8_t* p = take(len);
  return Bytes(p, p + len);
}

Bytes ByteReader::var_bytes(std::size_t max_len) {
  const std::uint32_t len = u32();
  if (len > max_len) {
    throw ProtocolError("ByteReader: length prefix exceeds limit");
  }
  return raw(len);
}

RistrettoPoint ByteReader::point() {
  const std::uint8_t* p = take(32);
  RistrettoPoint::Encoding enc;
  std::copy(p, p + 32, enc.begin());
  const auto decoded = RistrettoPoint::decode(enc);
  if (!decoded) throw ProtocolError("ByteReader: invalid point encoding");
  return *decoded;
}

Scalar ByteReader::scalar() {
  const std::uint8_t* p = take(32);
  std::array<std::uint8_t, 32> enc;
  std::copy(p, p + 32, enc.begin());
  const auto s = Scalar::from_canonical_bytes(enc);
  if (!s) throw ProtocolError("ByteReader: non-canonical scalar");
  return *s;
}

void ByteReader::expect_done() const {
  if (!done()) throw ProtocolError("ByteReader: trailing bytes");
}

}  // namespace cbl::ec
