// wire:parser
#include "ec/codec.h"

namespace cbl::ec {

RistrettoPoint WireReader::point() noexcept {
  RistrettoPoint::Encoding enc{};
  fill(enc);
  if (!ok()) return RistrettoPoint::identity();
  const auto decoded = RistrettoPoint::decode(enc);
  if (!decoded) {
    fail();
    return RistrettoPoint::identity();
  }
  return *decoded;
}

Scalar WireReader::scalar() noexcept {
  std::array<std::uint8_t, 32> enc{};
  fill(enc);
  if (!ok()) return Scalar();
  const auto s = Scalar::from_canonical_bytes(enc);
  if (!s) {
    fail();
    return Scalar();
  }
  return *s;
}

}  // namespace cbl::ec
