// The Ristretto255 prime-order group (draft-irtf-cfrg-ristretto255) built
// on twisted Edwards25519 extended coordinates. This is "the group G" of
// the paper: the OPRF runs over it, Pedersen commitments / NIZKs / VRF
// all use its elements, and its 32-byte canonical encodings are the wire
// format everywhere.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/bytes.h"
#include "common/secret.h"
#include "ec/fe25519.h"
#include "ec/scalar.h"

namespace cbl::ec {

class RistrettoPoint {
 public:
  using Encoding = std::array<std::uint8_t, 32>;

  /// The identity element.
  RistrettoPoint() noexcept;

  /// The canonical base point (the ed25519 base point's coset).
  static const RistrettoPoint& base() noexcept;

  static const RistrettoPoint& identity() noexcept;

  /// Decodes a canonical 32-byte encoding; nullopt for invalid encodings
  /// (non-canonical field element, negative s, non-square, y = 0).
  // wire:untrusted fuzz=fuzz_ristretto_diff
  [[nodiscard]] static std::optional<RistrettoPoint> decode(
      const Encoding& bytes) noexcept;

  /// Canonical 32-byte encoding.
  Encoding encode() const noexcept;

  /// Encodes 2*P for every P in `halves`, paying ONE field inversion for
  /// the whole batch (Fe25519::batch_invert) instead of one inverse
  /// square root per point. Square roots do not Montgomery-batch, but for
  /// a doubled point the invsqrt target collapses to a rational square
  /// (see DESIGN.md "Throughput architecture"), so callers fold the 2
  /// into the exponent: to obtain encodings of P_i * s, compute
  /// Q_i = P_i * (s/2 mod l) and batch-encode the doubles of Q_i. Output
  /// is bit-identical to (half * Scalar(2)).encode() per element,
  /// including identity-coset inputs (all-zero encoding). Constant-time
  /// discipline matches encode(): only the batch size is public.
  static std::vector<Encoding> double_and_encode_batch(
      std::span<const RistrettoPoint> halves);

  /// Batched H(domain_sep || input_i). Elligator's sqrt_ratio_m1 must
  /// accept non-square inputs, so unlike encoding there is no shared
  /// inversion to amortize; this is the uniform batch surface (and the
  /// seam bench/throughput tooling drives), computed per element exactly
  /// as hash_to_group.
  static std::vector<RistrettoPoint> batch_hash_to_group(
      std::span<const Bytes> inputs, std::string_view domain_sep);

  /// Maps 64 uniformly random bytes to a group element (two Elligator2
  /// invocations, summed) — the "hash to group" used to build the random
  /// oracle H: {0,1}* -> G of Fig. 2.
  static RistrettoPoint from_uniform_bytes(
      const std::array<std::uint8_t, 64>& bytes) noexcept;

  /// H(domain_sep || data): SHA-512 then from_uniform_bytes.
  static RistrettoPoint hash_to_group(ByteView data,
                                      std::string_view domain_sep) noexcept;

  RistrettoPoint operator+(const RistrettoPoint& o) const noexcept;
  RistrettoPoint operator-(const RistrettoPoint& o) const noexcept;
  RistrettoPoint operator-() const noexcept;

  /// Scalar multiplication (4-bit fixed window). Constant-time: the
  /// window digits select table entries via a full-scan cmov
  /// (table_select), and the add/double schedule is fixed, so neither
  /// branches nor data-dependent loads reveal the scalar.
  RistrettoPoint operator*(const Scalar& s) const noexcept;

  /// Constant-time conditional move: *this = o when mask is all-ones
  /// (from cbl::ct_mask_u64), unchanged when mask is zero.
  void cmov(const RistrettoPoint& o, std::uint64_t mask) noexcept;

  /// Constant-time lookup of table[index] for index in [0, 16): scans all
  /// 16 entries with cmov so the secret index never forms an address.
  static RistrettoPoint table_select(const RistrettoPoint table[16],
                                     std::uint8_t index) noexcept;

  /// Group equality (encoding-independent, per the ristretto spec).
  bool operator==(const RistrettoPoint& o) const noexcept;

  bool is_identity() const noexcept { return *this == identity(); }

  /// sum(scalars[i] * points[i]); sizes must match. Variable-time by
  /// design — verification-only path, never call with secret scalars.
  // vartime: public-inputs-only — DLEQ/Schnorr verification combines
  // proof scalars and public points; every input arrived on the wire.
  CBL_VARTIME static RistrettoPoint multiscalar_mul(
      const std::vector<Scalar>& scalars,
      const std::vector<RistrettoPoint>& points);

 private:
  RistrettoPoint(const Fe25519& x, const Fe25519& y, const Fe25519& z,
                 const Fe25519& t) noexcept
      : x_(x), y_(y), z_(z), t_(t) {}

  static RistrettoPoint elligator_map(const Fe25519& t) noexcept;
  RistrettoPoint dbl() const noexcept;

  /// The tail of encode() once 1/sqrt(u1*u2^2) is known. encode() feeds it
  /// the sqrt_ratio_m1 root; double_and_encode_batch feeds it the
  /// batch-inverted closed form. The output is invariant under
  /// inv_root -> -inv_root, so the two agree bit-for-bit.
  Encoding encode_with_invsqrt(const Fe25519& inv_root) const noexcept;

  // Extended twisted Edwards coordinates (X : Y : Z : T), x = X/Z,
  // y = Y/Z, T = XY/Z.
  Fe25519 x_, y_, z_, t_;
};

inline RistrettoPoint operator*(const Scalar& s, const RistrettoPoint& p) noexcept {
  return p * s;
}

// Secret-scalar multiplications. The point result deliberately exits the
// Secret<> taint: recovering the scalar from P and s*P is the discrete-log
// problem, and the underlying operator* is the constant-time fixed-window
// ladder (ctcheck's differential traces audit that claim dynamically).
// What stays forbidden is the scalar itself escaping — that still needs
// expose_secret()/reveal_for().
inline RistrettoPoint operator*(const RistrettoPoint& p,
                                const Secret<Scalar>& s) noexcept {
  return p * s.expose_secret();
}
inline RistrettoPoint operator*(const Secret<Scalar>& s,
                                const RistrettoPoint& p) noexcept {
  return p * s.expose_secret();
}

}  // namespace cbl::ec
