#include "ec/ristretto.h"

#include <cassert>
#include <stdexcept>

#include "common/ct.h"
#include "hash/sha512.h"

namespace cbl::ec {

namespace {

// Derived curve constants, computed once at startup and cross-checked by
// the ristretto255 specification test vectors in the test suite.
const Fe25519& one_minus_d_sq() noexcept {
  static const Fe25519 v =
      Fe25519::one() - Fe25519::edwards_d().square();
  return v;
}

const Fe25519& d_minus_one_sq() noexcept {
  static const Fe25519 v =
      (Fe25519::edwards_d() - Fe25519::one()).square();
  return v;
}

const Fe25519& sqrt_ad_minus_one() noexcept {
  // sqrt(a*d - 1) with a = -1, i.e. sqrt(-d - 1). The ristretto255
  // specification fixes the NEGATIVE (odd) root for this constant; the
  // hash-to-group test vectors pin the choice down.
  static const Fe25519 v = [] {
    const auto r =
        sqrt_ratio_m1(-Fe25519::edwards_d() - Fe25519::one(), Fe25519::one());
    assert(r.was_square);
    return -r.root;
  }();
  return v;
}

const Fe25519& invsqrt_a_minus_d() noexcept {
  // 1/sqrt(a - d) = 1/sqrt(-1 - d); the non-negative root.
  static const Fe25519 v = [] {
    const auto r =
        sqrt_ratio_m1(Fe25519::one(), -Fe25519::one() - Fe25519::edwards_d());
    assert(r.was_square);
    return r.root;
  }();
  return v;
}

}  // namespace

RistrettoPoint::RistrettoPoint() noexcept
    : x_(Fe25519::zero()),
      y_(Fe25519::one()),
      z_(Fe25519::one()),
      t_(Fe25519::zero()) {}

const RistrettoPoint& RistrettoPoint::identity() noexcept {
  static const RistrettoPoint p;
  return p;
}

const RistrettoPoint& RistrettoPoint::base() noexcept {
  static const RistrettoPoint p = [] {
    // The ed25519 base point: y = 4/5, x the even root of
    // (y^2 - 1) / (d*y^2 + 1).
    const Fe25519 y = Fe25519::from_u64(4) * Fe25519::from_u64(5).invert();
    const Fe25519 y_sq = y.square();
    const auto r = sqrt_ratio_m1(y_sq - Fe25519::one(),
                                 Fe25519::edwards_d() * y_sq + Fe25519::one());
    assert(r.was_square);
    const Fe25519 x = r.root;  // non-negative == even lsb, matching ed25519 B
    return RistrettoPoint(x, y, Fe25519::one(), x * y);
  }();
  return p;
}

std::optional<RistrettoPoint> RistrettoPoint::decode(
    const Encoding& bytes) noexcept {
  const Fe25519 s = Fe25519::from_bytes(bytes);
  // Validity flags accumulate with `&`/`|` (no short-circuit) and gate a
  // single exit at the end: the verdict itself is public protocol state,
  // but WHICH check failed — or any value along the way — must not shape
  // the instruction trace. The canonicity compare is ct_equal, not the
  // early-exit array operator==.
  const bool canonical = ct_equal(s.to_bytes(), bytes);
  const bool nonneg = !s.is_negative();

  const Fe25519 ss = s.square();
  const Fe25519 u1 = Fe25519::one() - ss;
  const Fe25519 u2 = Fe25519::one() + ss;
  const Fe25519 u2_sqr = u2.square();
  const Fe25519 v = -(Fe25519::edwards_d() * u1.square()) - u2_sqr;

  const auto inv = sqrt_ratio_m1(Fe25519::one(), v * u2_sqr);
  const Fe25519 den_x = inv.root * u2;
  const Fe25519 den_y = inv.root * den_x * v;

  const Fe25519 x = ((s + s) * den_x).abs();
  const Fe25519 y = u1 * den_y;
  const Fe25519 t = x * y;

  const bool valid = canonical & nonneg & inv.was_square &
                     !t.is_negative() & !y.is_zero();
  if (!valid) return std::nullopt;  // ct:public — verdict is protocol state
  return RistrettoPoint(x, y, Fe25519::one(), t);
}

RistrettoPoint::Encoding RistrettoPoint::encode_with_invsqrt(
    const Fe25519& inv_root) const noexcept {
  const Fe25519 u1 = (z_ + y_) * (z_ - y_);
  const Fe25519 u2 = x_ * y_;
  const Fe25519 den1 = inv_root * u1;
  const Fe25519 den2 = inv_root * u2;
  const Fe25519 z_inv = den1 * den2 * t_;

  const Fe25519 ix = x_ * Fe25519::sqrt_m1();
  const Fe25519 iy = y_ * Fe25519::sqrt_m1();
  const Fe25519 enchanted_den = den1 * invsqrt_a_minus_d();

  const bool rotate = (t_ * z_inv).is_negative();
  const Fe25519 x = Fe25519::select(rotate, iy, x_);
  Fe25519 y = Fe25519::select(rotate, ix, y_);
  const Fe25519 den_inv = Fe25519::select(rotate, enchanted_den, den2);

  // cmov, not a branch: the coordinates may derive from secret scalars.
  y = Fe25519::select((x * z_inv).is_negative(), -y, y);
  return (den_inv * (z_ - y)).abs().to_bytes();
}

RistrettoPoint::Encoding RistrettoPoint::encode() const noexcept {
  const Fe25519 u1 = (z_ + y_) * (z_ - y_);
  const Fe25519 u2 = x_ * y_;
  const auto inv = sqrt_ratio_m1(Fe25519::one(), u1 * u2.square());
  return encode_with_invsqrt(inv.root);
}

std::vector<RistrettoPoint::Encoding> RistrettoPoint::double_and_encode_batch(
    std::span<const RistrettoPoint> halves) {
  const std::size_t n = halves.size();
  std::vector<Encoding> out(n);
  if (n == 0) return out;

  // For P = (X:Y:Z:T), write e = 2XY, f = Z^2 + dT^2, g = Y^2 + X^2,
  // h = Z^2 - dT^2. The curve identity Y^2 - X^2 = Z^2 + dT^2 turns the
  // extended doubling formula into 2P = (eh : gf : fh : eg), and makes
  // the encode target of 2P a rational square:
  //   u1 * u2^2 = -(1+d) * (e^2 f^2 g h)^2,
  // so 1/sqrt(u1*u2^2) = invsqrt_a_minus_d() / (e^2 f^2 g h) up to sign
  // (encode_with_invsqrt is sign-invariant). One batch_invert over the
  // W_i = e^2 f^2 g h replaces n per-point pow_p58 exponentiations.
  // W_i = 0 exactly when 2P_i is in the identity coset; batch_invert's
  // 0 -> 0 then yields the all-zero encoding, matching encode().
  std::vector<RistrettoPoint> doubled(n);
  std::vector<Fe25519> w(n);
  for (std::size_t i = 0; i < n; ++i) {
    const RistrettoPoint& p = halves[i];
    const Fe25519 xx = p.x_.square();
    const Fe25519 yy = p.y_.square();
    const Fe25519 zz = p.z_.square();
    const Fe25519 dtt = Fe25519::edwards_d() * p.t_.square();
    const Fe25519 e = (p.x_ + p.y_).square() - xx - yy;
    const Fe25519 f = zz + dtt;
    const Fe25519 g = yy + xx;
    const Fe25519 h = zz - dtt;
    doubled[i] = RistrettoPoint(e * h, g * f, f * h, e * g);
    w[i] = e.square() * f.square() * g * h;
  }

  Fe25519::batch_invert(w);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = doubled[i].encode_with_invsqrt(invsqrt_a_minus_d() * w[i]);
  }

  // Intermediates are entangled with the (possibly secret-derived) inputs.
  for (auto& v : w) v.wipe();
  return out;
}

std::vector<RistrettoPoint> RistrettoPoint::batch_hash_to_group(
    std::span<const Bytes> inputs, std::string_view domain_sep) {
  std::vector<RistrettoPoint> out(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    out[i] = hash_to_group(inputs[i], domain_sep);
  }
  return out;
}

RistrettoPoint RistrettoPoint::elligator_map(const Fe25519& t) noexcept {
  const Fe25519& d = Fe25519::edwards_d();
  const Fe25519 r = Fe25519::sqrt_m1() * t.square();
  const Fe25519 u = (r + Fe25519::one()) * one_minus_d_sq();
  const Fe25519 v = (-Fe25519::one() - r * d) * (r + d);

  // Elligator runs over hashed-but-secret data (the queried entry), so
  // both fixups are selects rather than branches.
  const auto sq = sqrt_ratio_m1(u, v);
  const Fe25519 s_prime = -(sq.root * t).abs();
  const Fe25519 s = Fe25519::select(sq.was_square, sq.root, s_prime);
  const Fe25519 c = Fe25519::select(sq.was_square, -Fe25519::one(), r);

  const Fe25519 n = c * (r - Fe25519::one()) * d_minus_one_sq() - v;
  const Fe25519 s_sq = s.square();

  const Fe25519 w0 = (s + s) * v;
  const Fe25519 w1 = n * sqrt_ad_minus_one();
  const Fe25519 w2 = Fe25519::one() - s_sq;
  const Fe25519 w3 = Fe25519::one() + s_sq;

  return RistrettoPoint(w0 * w3, w2 * w1, w1 * w3, w0 * w2);
}

RistrettoPoint RistrettoPoint::from_uniform_bytes(
    const std::array<std::uint8_t, 64>& bytes) noexcept {
  std::array<std::uint8_t, 32> half;
  std::copy(bytes.begin(), bytes.begin() + 32, half.begin());
  const RistrettoPoint p1 = elligator_map(Fe25519::from_bytes(half));
  std::copy(bytes.begin() + 32, bytes.end(), half.begin());
  const RistrettoPoint p2 = elligator_map(Fe25519::from_bytes(half));
  return p1 + p2;
}

RistrettoPoint RistrettoPoint::hash_to_group(
    ByteView data, std::string_view domain_sep) noexcept {
  hash::Sha512 h;
  h.update(domain_sep).update(data);
  return from_uniform_bytes(h.finalize());
}

RistrettoPoint RistrettoPoint::operator+(const RistrettoPoint& o) const noexcept {
  // Unified addition in extended coordinates (add-2008-hwcd-3, a = -1).
  static const Fe25519 two_d = Fe25519::edwards_d() + Fe25519::edwards_d();

  const Fe25519 a = (y_ - x_) * (o.y_ - o.x_);
  const Fe25519 b = (y_ + x_) * (o.y_ + o.x_);
  const Fe25519 c = t_ * two_d * o.t_;
  const Fe25519 d = (z_ + z_) * o.z_;
  const Fe25519 e = b - a;
  const Fe25519 f = d - c;
  const Fe25519 g = d + c;
  const Fe25519 h = b + a;
  return RistrettoPoint(e * f, g * h, f * g, e * h);
}

RistrettoPoint RistrettoPoint::dbl() const noexcept {
  // dbl-2008-hwcd, a = -1.
  const Fe25519 a = x_.square();
  const Fe25519 b = y_.square();
  const Fe25519 c = z_.square() + z_.square();
  const Fe25519 d = -a;
  const Fe25519 e = (x_ + y_).square() - a - b;
  const Fe25519 g = d + b;
  const Fe25519 f = g - c;
  const Fe25519 h = d - b;
  return RistrettoPoint(e * f, g * h, f * g, e * h);
}

RistrettoPoint RistrettoPoint::operator-() const noexcept {
  return RistrettoPoint(-x_, y_, z_, -t_);
}

RistrettoPoint RistrettoPoint::operator-(const RistrettoPoint& o) const noexcept {
  return *this + (-o);
}

void RistrettoPoint::cmov(const RistrettoPoint& o,
                          std::uint64_t mask) noexcept {
  x_.cmov(o.x_, mask);
  y_.cmov(o.y_, mask);
  z_.cmov(o.z_, mask);
  t_.cmov(o.t_, mask);
}

RistrettoPoint RistrettoPoint::table_select(const RistrettoPoint table[16],
                                            std::uint8_t index) noexcept {
  // Full-table scan with cmov: every entry is touched on every call, so
  // neither the branch pattern nor the data-cache footprint depends on the
  // (secret) index.
  RistrettoPoint r = table[0];
  for (unsigned i = 1; i < 16; ++i) {
    r.cmov(table[i], cbl::ct_mask_u64(i == index));
  }
  return r;
}

RistrettoPoint RistrettoPoint::operator*(const Scalar& s) const noexcept {
  // 4-bit fixed-window left-to-right: table[i] = i * P. The scalar is
  // routinely secret (OPRF mask, blinding factor, VRF key), so window
  // digits index the table via the constant-time scan, never directly.
  RistrettoPoint table[16];
  table[0] = identity();
  table[1] = *this;
  for (int i = 2; i < 16; ++i) table[i] = table[i - 1] + *this;

  const auto bytes = s.to_bytes();
  RistrettoPoint acc = identity();
  for (int i = 31; i >= 0; --i) {
    const std::uint8_t byte = bytes[static_cast<std::size_t>(i)];
    acc = acc.dbl().dbl().dbl().dbl();
    acc = acc + table_select(table, byte >> 4);
    acc = acc.dbl().dbl().dbl().dbl();
    acc = acc + table_select(table, byte & 0x0f);
  }
  return acc;
}

bool RistrettoPoint::operator==(const RistrettoPoint& o) const noexcept {
  // Ristretto equality: x1*y2 == y1*x2 or y1*y2 == x1*x2. Both products
  // are always computed and the verdicts combine with `|` — point
  // equality runs on commitment openings and OPRF outputs.
  const bool xy = x_ * o.y_ == y_ * o.x_;
  const bool yx = y_ * o.y_ == x_ * o.x_;
  return xy | yx;
}

RistrettoPoint RistrettoPoint::multiscalar_mul(
    const std::vector<Scalar>& scalars,
    const std::vector<RistrettoPoint>& points) {
  if (scalars.size() != points.size()) {
    throw std::invalid_argument("multiscalar_mul: size mismatch");
  }
  // Shared-doubling (interleaved) evaluation: one doubling chain for all
  // terms instead of one per term. Variable-time BY DESIGN: this path
  // only runs on public data (NIZK/DLEQ verification, tally checks);
  // secret scalars must use operator*. ct:public
  std::vector<std::array<RistrettoPoint, 16>> tables(points.size());
  for (std::size_t k = 0; k < points.size(); ++k) {
    tables[k][0] = identity();
    tables[k][1] = points[k];
    for (int i = 2; i < 16; ++i) tables[k][i] = tables[k][i - 1] + points[k];
  }
  std::vector<std::array<std::uint8_t, 32>> bytes(scalars.size());
  for (std::size_t k = 0; k < scalars.size(); ++k) bytes[k] = scalars[k].to_bytes();

  RistrettoPoint acc = identity();
  for (int i = 31; i >= 0; --i) {
    for (int half = 1; half >= 0; --half) {  // high nibble first
      acc = acc.dbl().dbl().dbl().dbl();
      for (std::size_t k = 0; k < scalars.size(); ++k) {
        const std::uint8_t byte = bytes[k][static_cast<std::size_t>(i)];
        const std::uint8_t nibble = half ? byte >> 4 : byte & 0x0f;
        if (nibble != 0) acc = acc + tables[k][nibble];
      }
    }
  }
  return acc;
}

}  // namespace cbl::ec
