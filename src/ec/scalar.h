// Arithmetic modulo the Ristretto255 group order
// l = 2^252 + 27742317777372353535851937790883648493 ("the finite field F"
// of the paper's protocols: blinding factors, commitment randomness, NIZK
// responses, votes). Built from scratch on 4 x 64-bit limbs with
// Montgomery multiplication.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "common/bytes.h"
#include "common/ct.h"
#include "common/rng.h"

namespace cbl::ec {

class Scalar {
 public:
  /// Zero.
  constexpr Scalar() noexcept : limbs_{0, 0, 0, 0} {}

  static Scalar from_u64(std::uint64_t v) noexcept;

  static const Scalar& zero() noexcept;
  static const Scalar& one() noexcept;

  /// Canonical deserialization: rejects encodings >= l.
  // wire:untrusted fuzz=fuzz_ristretto_diff
  [[nodiscard]] static std::optional<Scalar> from_canonical_bytes(
      const std::array<std::uint8_t, 32>& bytes) noexcept;

  /// Interprets 32 little-endian bytes and reduces mod l.
  static Scalar from_bytes_mod_order(
      const std::array<std::uint8_t, 32>& bytes) noexcept;

  /// Interprets 64 little-endian bytes and reduces mod l (the standard way
  /// to derive an unbiased scalar from a hash).
  static Scalar from_bytes_wide(
      const std::array<std::uint8_t, 64>& bytes) noexcept;

  /// Uniformly random scalar.
  static Scalar random(Rng& rng);

  std::array<std::uint8_t, 32> to_bytes() const noexcept;

  Scalar operator+(const Scalar& o) const noexcept;
  Scalar operator-(const Scalar& o) const noexcept;
  Scalar operator*(const Scalar& o) const noexcept;
  Scalar operator-() const noexcept;

  /// Multiplicative inverse via Fermat; inverse of zero is zero.
  Scalar invert() const noexcept;

  /// Zeroizes the limbs through a compiler barrier. Key-holding types
  /// (OPRF masks, blinding factors, VRF keys) call this from their
  /// destructors per the DESIGN.md constant-time policy.
  void wipe() noexcept;

  /// Constant-time: a defaulted == would short-circuit limb by limb, and
  /// scalars are routinely secret (blinding factors, masks, keys).
  bool operator==(const Scalar& o) const noexcept {
    return ct_equal(reinterpret_cast<const std::uint8_t*>(limbs_.data()),
                    reinterpret_cast<const std::uint8_t*>(o.limbs_.data()),
                    sizeof(limbs_));
  }

  bool is_zero() const noexcept {
    return (limbs_[0] | limbs_[1] | limbs_[2] | limbs_[3]) == 0;
  }

  /// Access to the i-th bit of the canonical representation (for scalar
  /// multiplication ladders).
  bool bit(std::size_t i) const noexcept {
    return (limbs_[i / 64] >> (i % 64)) & 1;
  }

 private:
  friend struct ScalarMontgomeryOps;

  std::array<std::uint64_t, 4> limbs_;  // little-endian, always < l
};

}  // namespace cbl::ec
