#include "ec/fe25519.h"

#include <cstring>
#include <vector>

#include "common/ct.h"

namespace cbl::ec {

namespace {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

constexpr u64 kMask51 = (u64{1} << 51) - 1;

// 16 * p, limbwise: adding this before a subtraction keeps limbs
// non-negative for any weakly reduced operand.
constexpr u64 k16P[5] = {
    (kMask51 - 18) << 4,  // 16 * (2^51 - 19)
    kMask51 << 4, kMask51 << 4, kMask51 << 4, kMask51 << 4};

}  // namespace

Fe25519 Fe25519::from_u64(u64 v) noexcept {
  Fe25519 r;
  r.limbs_[0] = v & kMask51;
  r.limbs_[1] = v >> 51;
  return r;
}

const Fe25519& Fe25519::zero() noexcept {
  static const Fe25519 z;
  return z;
}

const Fe25519& Fe25519::one() noexcept {
  static const Fe25519 o = from_u64(1);
  return o;
}

void Fe25519::weak_reduce() noexcept {
  u64 c;
  c = limbs_[0] >> 51; limbs_[0] &= kMask51; limbs_[1] += c;
  c = limbs_[1] >> 51; limbs_[1] &= kMask51; limbs_[2] += c;
  c = limbs_[2] >> 51; limbs_[2] &= kMask51; limbs_[3] += c;
  c = limbs_[3] >> 51; limbs_[3] &= kMask51; limbs_[4] += c;
  c = limbs_[4] >> 51; limbs_[4] &= kMask51; limbs_[0] += 19 * c;
  c = limbs_[0] >> 51; limbs_[0] &= kMask51; limbs_[1] += c;
}

Fe25519 Fe25519::from_bytes(const std::array<std::uint8_t, 32>& s) noexcept {
  Fe25519 r;
  r.limbs_[0] = cbl::load_le64(s.data()) & kMask51;
  r.limbs_[1] = (cbl::load_le64(s.data() + 6) >> 3) & kMask51;
  r.limbs_[2] = (cbl::load_le64(s.data() + 12) >> 6) & kMask51;
  r.limbs_[3] = (cbl::load_le64(s.data() + 19) >> 1) & kMask51;
  r.limbs_[4] = (cbl::load_le64(s.data() + 24) >> 12) & kMask51;
  return r;
}

std::array<std::uint8_t, 32> Fe25519::to_bytes() const noexcept {
  Fe25519 t = *this;
  t.weak_reduce();

  // Compute the carry that a +19 would ripple to the top: q = 1 iff
  // t >= p, then add 19*q and drop bit 255 to reduce canonically.
  u64 q = (t.limbs_[0] + 19) >> 51;
  q = (t.limbs_[1] + q) >> 51;
  q = (t.limbs_[2] + q) >> 51;
  q = (t.limbs_[3] + q) >> 51;
  q = (t.limbs_[4] + q) >> 51;

  t.limbs_[0] += 19 * q;
  u64 c;
  c = t.limbs_[0] >> 51; t.limbs_[0] &= kMask51; t.limbs_[1] += c;
  c = t.limbs_[1] >> 51; t.limbs_[1] &= kMask51; t.limbs_[2] += c;
  c = t.limbs_[2] >> 51; t.limbs_[2] &= kMask51; t.limbs_[3] += c;
  c = t.limbs_[3] >> 51; t.limbs_[3] &= kMask51; t.limbs_[4] += c;
  t.limbs_[4] &= kMask51;

  std::array<std::uint8_t, 32> out{};
  u64 words[4];
  words[0] = t.limbs_[0] | t.limbs_[1] << 51;
  words[1] = t.limbs_[1] >> 13 | t.limbs_[2] << 38;
  words[2] = t.limbs_[2] >> 26 | t.limbs_[3] << 25;
  words[3] = t.limbs_[3] >> 39 | t.limbs_[4] << 12;
  for (int i = 0; i < 4; ++i) cbl::store_le64(out.data() + 8 * i, words[i]);
  return out;
}

Fe25519 Fe25519::operator+(const Fe25519& o) const noexcept {
  Fe25519 r;
  for (int i = 0; i < 5; ++i) r.limbs_[i] = limbs_[i] + o.limbs_[i];
  r.weak_reduce();
  return r;
}

Fe25519 Fe25519::operator-(const Fe25519& o) const noexcept {
  Fe25519 r;
  for (int i = 0; i < 5; ++i) {
    r.limbs_[i] = limbs_[i] + k16P[i] - o.limbs_[i];
  }
  r.weak_reduce();
  return r;
}

Fe25519 Fe25519::operator-() const noexcept {
  return zero() - *this;
}

Fe25519 Fe25519::operator*(const Fe25519& o) const noexcept {
  const u64 a0 = limbs_[0], a1 = limbs_[1], a2 = limbs_[2], a3 = limbs_[3],
            a4 = limbs_[4];
  const u64 b0 = o.limbs_[0], b1 = o.limbs_[1], b2 = o.limbs_[2],
            b3 = o.limbs_[3], b4 = o.limbs_[4];

  auto m = [](u64 x, u64 y) { return static_cast<u128>(x) * y; };

  u128 r0 = m(a0, b0) + 19 * (m(a1, b4) + m(a2, b3) + m(a3, b2) + m(a4, b1));
  u128 r1 = m(a0, b1) + m(a1, b0) + 19 * (m(a2, b4) + m(a3, b3) + m(a4, b2));
  u128 r2 = m(a0, b2) + m(a1, b1) + m(a2, b0) + 19 * (m(a3, b4) + m(a4, b3));
  u128 r3 = m(a0, b3) + m(a1, b2) + m(a2, b1) + m(a3, b0) + 19 * m(a4, b4);
  u128 r4 = m(a0, b4) + m(a1, b3) + m(a2, b2) + m(a3, b1) + m(a4, b0);

  Fe25519 out;
  u64 c;
  c = static_cast<u64>(r0 >> 51); out.limbs_[0] = static_cast<u64>(r0) & kMask51;
  r1 += c;
  c = static_cast<u64>(r1 >> 51); out.limbs_[1] = static_cast<u64>(r1) & kMask51;
  r2 += c;
  c = static_cast<u64>(r2 >> 51); out.limbs_[2] = static_cast<u64>(r2) & kMask51;
  r3 += c;
  c = static_cast<u64>(r3 >> 51); out.limbs_[3] = static_cast<u64>(r3) & kMask51;
  r4 += c;
  c = static_cast<u64>(r4 >> 51); out.limbs_[4] = static_cast<u64>(r4) & kMask51;
  out.limbs_[0] += 19 * c;
  c = out.limbs_[0] >> 51; out.limbs_[0] &= kMask51; out.limbs_[1] += c;
  return out;
}

Fe25519 Fe25519::square() const noexcept { return *this * *this; }

Fe25519 Fe25519::pow(const std::array<std::uint8_t, 32>& e) const noexcept {
  Fe25519 result = one();
  // Left-to-right binary exponentiation over the 255 meaningful bits. All
  // callers pass fixed public exponents (p-2, (p-5)/8, (p-1)/4), so the
  // per-bit branch is on public data. ct:public
  for (int bit = 254; bit >= 0; --bit) {
    result = result.square();
    if ((e[static_cast<std::size_t>(bit / 8)] >> (bit % 8)) & 1) {
      result = result * *this;
    }
  }
  return result;
}

Fe25519 Fe25519::invert() const noexcept {
  // p - 2 = 2^255 - 21, little endian: eb ff .. ff 7f.
  std::array<std::uint8_t, 32> e;
  e.fill(0xff);
  e[0] = 0xeb;
  e[31] = 0x7f;
  return pow(e);
}

void Fe25519::batch_invert(std::span<Fe25519> elems) noexcept {
  const std::size_t n = elems.size();
  if (n == 0) return;  // ct:public — batch size is protocol-visible
  if (n == 1) {
    elems[0] = elems[0].invert();
    return;
  }

  // Montgomery's trick. prefix[i] holds the product of the first i+1
  // inputs with every zero replaced by 1 (cmov, not a branch), so a
  // single zero cannot poison the whole chain. The backward pass peels
  // one factor per step:  elems[i] <- suffix_inv * prefix[i-1], then
  // suffix_inv *= term[i].
  std::vector<Fe25519> prefix(n);
  std::vector<std::uint64_t> zmask(n);
  Fe25519 acc = one();
  for (std::size_t i = 0; i < n; ++i) {
    zmask[i] = ct_mask_u64(elems[i].is_zero());
    elems[i].cmov(one(), zmask[i]);
    acc = acc * elems[i];
    prefix[i] = acc;
  }

  Fe25519 suffix_inv = acc.invert();
  for (std::size_t i = n - 1; i > 0; --i) {
    const Fe25519 term = elems[i];
    elems[i] = suffix_inv * prefix[i - 1];
    elems[i].cmov(zero(), zmask[i]);
    suffix_inv = suffix_inv * term;
  }
  elems[0] = suffix_inv;  // = term[0]^-1 after all other factors peeled
  elems[0].cmov(zero(), zmask[0]);

  // The prefix products are entangled with every input; if any input was
  // secret, so are they.
  for (auto& p : prefix) p.wipe();
  suffix_inv.wipe();
  acc.wipe();
}

Fe25519 Fe25519::pow_p58() const noexcept {
  // (p - 5) / 8 = 2^252 - 3, little endian: fd ff .. ff 0f.
  std::array<std::uint8_t, 32> e;
  e.fill(0xff);
  e[0] = 0xfd;
  e[31] = 0x0f;
  return pow(e);
}

bool Fe25519::is_negative() const noexcept {
  return (to_bytes()[0] & 1) != 0;
}

bool Fe25519::is_zero() const noexcept {
  const auto b = to_bytes();
  std::uint8_t acc = 0;
  for (auto v : b) acc |= v;
  return acc == 0;
}

bool Fe25519::operator==(const Fe25519& o) const noexcept {
  // Byte-level constant-time compare of the canonical encodings (the raw
  // std::array operator== lowers to an early-exit memcmp).
  return ct_equal(to_bytes(), o.to_bytes());
}

Fe25519 Fe25519::abs() const noexcept {
  // Branch-free |x|: always compute the negation, then select on the sign.
  return select(is_negative(), -*this, *this);
}

Fe25519 Fe25519::select(bool flag, const Fe25519& a, const Fe25519& b) noexcept {
  Fe25519 r;
  ct_select_u64(ct_mask_u64(flag), r.limbs_, a.limbs_, b.limbs_, 5);
  return r;
}

void Fe25519::cmov(const Fe25519& other, std::uint64_t mask) noexcept {
  ct_select_u64(mask, limbs_, other.limbs_, limbs_, 5);
}

void Fe25519::wipe() noexcept {
  secure_wipe(limbs_, sizeof limbs_);
}

const Fe25519& Fe25519::sqrt_m1() noexcept {
  // sqrt(-1) = 2^((p-1)/4); normalize to the non-negative root, matching
  // the ristretto255 specification constant.
  static const Fe25519 v = [] {
    std::array<std::uint8_t, 32> e;  // (p-1)/4 = 2^253 - 5: fb ff .. ff 1f
    e.fill(0xff);
    e[0] = 0xfb;
    e[31] = 0x1f;
    return from_u64(2).pow(e).abs();
  }();
  return v;
}

const Fe25519& Fe25519::edwards_d() noexcept {
  static const Fe25519 v = -(from_u64(121665) * from_u64(121666).invert());
  return v;
}

SqrtRatioResult sqrt_ratio_m1(const Fe25519& u, const Fe25519& v) noexcept {
  const Fe25519 v3 = v.square() * v;
  const Fe25519 v7 = v3.square() * v;
  Fe25519 r = (u * v3) * (u * v7).pow_p58();
  const Fe25519 check = v * r.square();

  const Fe25519 neg_u = -u;
  const bool correct_sign = check == u;
  const bool flipped_sign = check == neg_u;
  const bool flipped_sign_i = check == neg_u * Fe25519::sqrt_m1();

  // The inputs may derive from secrets (Elligator over a hashed entry,
  // decode of a masked encoding), so the sign fix is a cmov — the product
  // is always computed — and the flags combine with `|`, never the
  // short-circuiting `||`.
  const bool flipped = flipped_sign | flipped_sign_i;
  r = Fe25519::select(flipped, r * Fe25519::sqrt_m1(), r);
  const bool was_square = correct_sign | flipped_sign;
  return SqrtRatioResult{was_square, r.abs()};
}

}  // namespace cbl::ec
