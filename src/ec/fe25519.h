// Arithmetic in GF(2^255 - 19), the base field of Curve25519, implemented
// from scratch with 5 x 51-bit unsigned limbs and 128-bit intermediate
// products. This is the foundation of the Ristretto255 group used by the
// paper's OPRF, commitments, NIZKs, and VRF.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "common/bytes.h"

namespace cbl::ec {

/// A field element of GF(p), p = 2^255 - 19. Limbs are kept below 2^52
/// between operations (the "weakly reduced" form); canonical form is only
/// produced by to_bytes().
class Fe25519 {
 public:
  /// Zero element.
  constexpr Fe25519() noexcept : limbs_{0, 0, 0, 0, 0} {}

  /// Small constant.
  static Fe25519 from_u64(std::uint64_t v) noexcept;

  static const Fe25519& zero() noexcept;
  static const Fe25519& one() noexcept;

  /// Interprets 32 little-endian bytes; the top bit (bit 255) is ignored,
  /// matching the ed25519/ristretto conventions. The result may be
  /// non-canonical (>= p); callers needing canonicity must compare
  /// to_bytes() with the input.
  static Fe25519 from_bytes(const std::array<std::uint8_t, 32>& s) noexcept;

  /// Canonical (fully reduced) 32-byte little-endian encoding.
  std::array<std::uint8_t, 32> to_bytes() const noexcept;

  Fe25519 operator+(const Fe25519& o) const noexcept;
  Fe25519 operator-(const Fe25519& o) const noexcept;
  Fe25519 operator*(const Fe25519& o) const noexcept;
  Fe25519 operator-() const noexcept;

  Fe25519 square() const noexcept;

  /// Multiplicative inverse via Fermat (x^(p-2)); inverse of zero is zero.
  Fe25519 invert() const noexcept;

  /// Inverts every element in place with Montgomery's trick: one Fermat
  /// inversion plus 3(n-1) multiplications for the whole batch, instead of
  /// n inversions. Matches invert() exactly, including 0 -> 0: zero inputs
  /// are swapped for 1 in the running product and restored to 0 at the end,
  /// both via cmov, so the instruction trace depends only on the batch
  /// size (public), never on which elements are zero (possibly secret).
  static void batch_invert(std::span<Fe25519> elems) noexcept;

  /// x^((p-5)/8), the core exponentiation of the square-root algorithm.
  Fe25519 pow_p58() const noexcept;

  /// True iff the canonical encoding's least significant bit is 1
  /// (the ristretto "negative" convention).
  bool is_negative() const noexcept;

  bool is_zero() const noexcept;

  bool operator==(const Fe25519& o) const noexcept;

  /// |x|: x if non-negative else -x.
  Fe25519 abs() const noexcept;

  /// Constant-time select: returns a if flag else b (mask-based limbwise
  /// cmov; no branch on `flag`).
  static Fe25519 select(bool flag, const Fe25519& a, const Fe25519& b) noexcept;

  /// Constant-time conditional move: *this = other when mask is all-ones
  /// (from cbl::ct_mask_u64), unchanged when mask is zero.
  void cmov(const Fe25519& other, std::uint64_t mask) noexcept;

  /// Zeroizes the limbs through a compiler barrier.
  void wipe() noexcept;

  /// sqrt(-1) mod p (the non-negative root), computed once at startup.
  static const Fe25519& sqrt_m1() noexcept;

  /// The Edwards curve constant d = -121665/121666.
  static const Fe25519& edwards_d() noexcept;

 private:
  explicit constexpr Fe25519(std::uint64_t l0, std::uint64_t l1,
                             std::uint64_t l2, std::uint64_t l3,
                             std::uint64_t l4) noexcept
      : limbs_{l0, l1, l2, l3, l4} {}

  Fe25519 pow(const std::array<std::uint8_t, 32>& exponent_le) const noexcept;
  void weak_reduce() noexcept;

  std::uint64_t limbs_[5];
};

/// Computes sqrt(u/v) when it exists. Returns {was_square, r} where r is
/// the non-negative root of u/v if u/v is square, or of (sqrt(-1) * u/v)
/// otherwise; r = 0 when u = 0. This is SQRT_RATIO_M1 from the
/// ristretto255 specification.
struct SqrtRatioResult {
  bool was_square;
  Fe25519 root;
};
SqrtRatioResult sqrt_ratio_m1(const Fe25519& u, const Fe25519& v) noexcept;

}  // namespace cbl::ec
