// Group-aware wire codec: cbl::ByteReader/ByteWriter (the shared
// bounds-checked cursor in common/codec.h) extended with Ristretto
// point and scalar fields. WireReader inherits the reader's totality
// contract — an invalid group encoding or non-canonical scalar latches
// the sticky failure flag and decoding continues with identity/zero, so
// message parsers stay straight-line and exception-free; the single
// [[nodiscard]] finish() reports success.
#pragma once

#include <cstdint>

#include "common/codec.h"
#include "ec/ristretto.h"
#include "ec/scalar.h"

namespace cbl::ec {

class WireWriter {
 public:
  WireWriter& u8(std::uint8_t v) { w_.u8(v); return *this; }
  WireWriter& u32(std::uint32_t v) { w_.u32(v); return *this; }
  WireWriter& u64(std::uint64_t v) { w_.u64(v); return *this; }
  WireWriter& raw(ByteView data) { w_.raw(data); return *this; }
  /// u32 length prefix + payload.
  WireWriter& var_bytes(ByteView data) { w_.var_bytes(data); return *this; }
  WireWriter& point(const RistrettoPoint& p) { return raw(p.encode()); }
  WireWriter& scalar(const Scalar& s) { return raw(s.to_bytes()); }

  Bytes take() { return w_.take(); }
  std::size_t size() const { return w_.size(); }

 private:
  ByteWriter w_;
};

class WireReader {
 public:
  explicit WireReader(ByteView data) noexcept : r_(data) {}

  std::uint8_t u8() noexcept { return r_.u8(); }
  std::uint32_t u32() noexcept { return r_.u32(); }
  std::uint64_t u64() noexcept { return r_.u64(); }
  Bytes raw(std::size_t len) { return r_.raw(len); }
  ByteView view(std::size_t len) noexcept { return r_.view(len); }
  void fill(std::span<std::uint8_t> out) noexcept { r_.fill(out); }
  Bytes var_bytes(std::size_t max_len) { return r_.var_bytes(max_len); }

  /// Canonical Ristretto encoding; identity + latched failure otherwise.
  RistrettoPoint point() noexcept;
  /// Canonical scalar; zero + latched failure otherwise.
  Scalar scalar() noexcept;
  /// A nested fixed-size message decoded by `parse` (an optional-returning
  /// from_bytes); default-constructed + latched failure when it rejects.
  template <typename T, typename Parse>
  T nested(std::size_t wire_size, Parse&& parse) {
    const auto decoded = parse(view(wire_size));
    if (!decoded) {
      fail();
      return T();
    }
    return *decoded;
  }

  std::size_t remaining() const noexcept { return r_.remaining(); }
  bool done() const noexcept { return r_.done(); }
  bool ok() const noexcept { return r_.ok(); }
  void fail() noexcept { r_.fail(); }
  [[nodiscard]] bool finish() const noexcept { return r_.finish(); }

 private:
  ByteReader r_;
};

}  // namespace cbl::ec
