// Bounds-checked binary codec for protocol messages. Writers build the
// canonical wire form; readers parse UNTRUSTED bytes, throwing
// ProtocolError on truncation, trailing garbage, non-canonical field
// elements, or invalid group encodings. Message-level parsers wrap this
// into optional-returning from_bytes() functions.
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "common/errors.h"
#include "ec/ristretto.h"
#include "ec/scalar.h"

namespace cbl::ec {

class ByteWriter {
 public:
  ByteWriter& u8(std::uint8_t v);
  ByteWriter& u32(std::uint32_t v);
  ByteWriter& u64(std::uint64_t v);
  ByteWriter& raw(ByteView data);
  /// u32 length prefix + payload.
  ByteWriter& var_bytes(ByteView data);
  ByteWriter& point(const RistrettoPoint& p);
  ByteWriter& scalar(const Scalar& s);

  Bytes take() { return std::move(out_); }
  std::size_t size() const { return out_.size(); }

 private:
  Bytes out_;
};

class ByteReader {
 public:
  explicit ByteReader(ByteView data) : data_(data) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  Bytes raw(std::size_t len);
  /// Reads a u32 length prefix then the payload; rejects lengths beyond
  /// `max_len` (pre-allocation bound against hostile inputs).
  Bytes var_bytes(std::size_t max_len);
  /// Throws on invalid (non-canonical) encodings.
  RistrettoPoint point();
  /// Canonical scalars only.
  Scalar scalar();

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }
  /// Throws unless the whole input was consumed (no trailing garbage).
  void expect_done() const;

 private:
  const std::uint8_t* take(std::size_t len);

  ByteView data_;
  std::size_t pos_ = 0;
};

}  // namespace cbl::ec
