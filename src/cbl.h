// Umbrella header: the library's public API in one include.
//
//   #include "cbl.h"
//
// pulls in the provider/user/coordinator facade, the multi-provider
// aggregator, the evaluation protocol (contract, ceremony, registry,
// state channel, replay auditor), the private-query stack (OPRF server/
// client, keyword store, wire formats), the chain substrate, and the
// analysis modules (capacity, game theory, anonymity). Individual module
// headers remain usable for finer-grained dependencies.
#pragma once

#include "blocklist/address.h"
#include "blocklist/generator.h"
#include "blocklist/io.h"
#include "blocklist/store.h"
#include "chain/blockchain.h"
#include "core/multi_provider.h"
#include "core/service.h"
#include "game/dos_economics.h"
#include "game/game.h"
#include "game/sortition_math.h"
#include "net/service_node.h"
#include "netsim/capacity.h"
#include "netsim/desim.h"
#include "oprf/anonymity.h"
#include "oprf/client.h"
#include "oprf/keyword_store.h"
#include "oprf/server.h"
#include "oprf/wire.h"
#include "voting/ceremony.h"
#include "voting/coercion_sim.h"
#include "voting/contract.h"
#include "voting/registry.h"
#include "voting/replay.h"
#include "voting/state_channel.h"
#include "voting/wire.h"
