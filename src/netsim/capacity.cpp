#include "netsim/capacity.h"

#include <algorithm>
#include <limits>

namespace cbl::netsim {

CapacityEstimate estimate_capacity(const ServerProfile& server,
                                   const WorkloadProfile& workload) {
  CapacityEstimate est;
  const double online_rate_per_client =
      workload.queries_per_client_per_sec * workload.online_fraction;

  if (online_rate_per_client <= 0) {
    est.cpu_bound_clients = est.bandwidth_bound_clients =
        est.max_concurrent_clients = std::numeric_limits<double>::infinity();
    return est;
  }

  const double cpu_sec_per_online =
      workload.cpu_us_per_online_query * 1e-6;
  est.cpu_bound_clients =
      static_cast<double>(server.cpu_cores) /
      (online_rate_per_client * cpu_sec_per_online);

  const double bits_per_online =
      (workload.response_bytes + workload.request_bytes) * 8.0;
  est.bandwidth_bound_clients =
      server.bandwidth_bits_per_sec / (online_rate_per_client * bits_per_online);

  est.max_concurrent_clients =
      std::min(est.cpu_bound_clients, est.bandwidth_bound_clients);
  est.cpu_limited = est.cpu_bound_clients <= est.bandwidth_bound_clients;
  return est;
}

}  // namespace cbl::netsim
