// Service-capacity model behind Fig. 6 ("max concurrent requests allowed
// under various percentages"). With the prefix list distributed, only a
// fraction f of queries need online interaction; each online query costs
// the server one OPRF evaluation (CPU) and one bucket transfer
// (bandwidth). The sustainable concurrency is whichever resource
// saturates first — CPU for small buckets, bandwidth for large ones,
// which is exactly the paper's left/right panel contrast.
#pragma once

#include <cstdint>

namespace cbl::netsim {

struct ServerProfile {
  unsigned cpu_cores = 8;                    // the paper's E-2174G setup
  double bandwidth_bits_per_sec = 1e9;       // 1 Gbps uplink
};

struct WorkloadProfile {
  double online_fraction = 0.01;       // f: queries needing interaction
  double queries_per_client_per_sec = 1.0;
  double cpu_us_per_online_query = 80;  // measured from the real library
  double response_bytes = 128;          // k * 32 B bucket payload
  double request_bytes = 64;            // prefix + masked point
};

struct CapacityEstimate {
  double cpu_bound_clients = 0;
  double bandwidth_bound_clients = 0;
  double max_concurrent_clients = 0;  // min of the two
  bool cpu_limited = false;           // which resource binds
};

/// Closed-form capacity: clients such that
///   C * q * f * t_cpu <= cores           (CPU)
///   C * q * f * (resp + req) * 8 <= W    (bandwidth)
CapacityEstimate estimate_capacity(const ServerProfile& server,
                                   const WorkloadProfile& workload);

}  // namespace cbl::netsim
