#include "netsim/desim.h"

#include <algorithm>
#include <cmath>

namespace cbl::netsim {

SimResult simulate(const ServerProfile& server, const WorkloadProfile& workload,
                   std::uint64_t clients, const SimConfig& config, Rng& rng) {
  SimResult result;
  const double cpu_capacity_per_tick =
      static_cast<double>(server.cpu_cores) * config.tick_sec;  // core-sec
  const double bw_capacity_per_tick =
      server.bandwidth_bits_per_sec * config.tick_sec;  // bits

  // Work backlogs in resource units.
  double cpu_backlog = 0;  // core-seconds
  double bw_backlog = 0;   // bits
  double cpu_busy = 0, bw_busy = 0;

  const double p_query = workload.queries_per_client_per_sec * config.tick_sec;
  const double p_online = p_query * workload.online_fraction;
  const std::uint64_t ticks =
      static_cast<std::uint64_t>(config.duration_sec / config.tick_sec);

  // Per-tick arrivals: binomial(clients, p_online), approximated by a
  // normal draw for large populations (clients can reach millions) and
  // exact Bernoulli summation for small ones.
  auto draw_online = [&]() -> double {
    const double mean = static_cast<double>(clients) * p_online;
    if (clients < 64) {
      std::uint64_t n = 0;
      for (std::uint64_t c = 0; c < clients; ++c) {
        if (static_cast<double>(rng.uniform(1'000'000'000)) / 1e9 < p_online) {
          ++n;
        }
      }
      return static_cast<double>(n);
    }
    const double stddev = std::sqrt(mean * (1.0 - std::min(1.0, p_online)));
    // Box-Muller.
    const double u1 =
        (static_cast<double>(rng.uniform(1'000'000'000)) + 1.0) / 1e9;
    const double u2 = static_cast<double>(rng.uniform(1'000'000'000)) / 1e9;
    const double z =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
    return std::max(0.0, mean + stddev * z);
  };

  for (std::uint64_t t = 0; t < ticks; ++t) {
    const double online = draw_online();
    result.online_queries += static_cast<std::uint64_t>(online);
    const double total =
        static_cast<double>(clients) * p_query;
    result.local_queries += static_cast<std::uint64_t>(
        std::max(0.0, total - online));

    cpu_backlog += online * workload.cpu_us_per_online_query * 1e-6;
    bw_backlog +=
        online * (workload.response_bytes + workload.request_bytes) * 8.0;

    const double cpu_served = std::min(cpu_backlog, cpu_capacity_per_tick);
    cpu_busy += cpu_served;
    cpu_backlog -= cpu_served;

    const double bw_served = std::min(bw_backlog, bw_capacity_per_tick);
    bw_busy += bw_served;
    bw_backlog -= bw_served;

    result.peak_cpu_backlog_sec =
        std::max(result.peak_cpu_backlog_sec,
                 cpu_backlog / static_cast<double>(server.cpu_cores));
    result.peak_bw_backlog_sec = std::max(
        result.peak_bw_backlog_sec, bw_backlog / server.bandwidth_bits_per_sec);
  }

  result.cpu_utilization =
      cpu_busy / (cpu_capacity_per_tick * static_cast<double>(ticks));
  result.bw_utilization =
      bw_busy / (bw_capacity_per_tick * static_cast<double>(ticks));
  result.stable = result.peak_cpu_backlog_sec < config.max_backlog_sec &&
                  result.peak_bw_backlog_sec < config.max_backlog_sec;
  return result;
}

std::uint64_t find_max_stable_clients(const ServerProfile& server,
                                      const WorkloadProfile& workload,
                                      const SimConfig& config, Rng& rng,
                                      std::uint64_t hi_hint) {
  std::uint64_t hi = hi_hint;
  if (hi == 0) {
    const auto est = estimate_capacity(server, workload);
    hi = static_cast<std::uint64_t>(est.max_concurrent_clients * 4) + 16;
  }
  std::uint64_t lo = 0;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo + 1) / 2;
    if (simulate(server, workload, mid, config, rng).stable) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

}  // namespace cbl::netsim
