// Discrete-event validation of the closed-form capacity model: simulates
// a client population issuing queries against a server with finite CPU
// cores and uplink bandwidth, and reports whether the system is stable
// (bounded queues) at a given concurrency. find_max_stable_clients()
// binary-searches the knee — the simulated counterpart of the JMeter
// experiment behind Fig. 6.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "netsim/capacity.h"

namespace cbl::netsim {

struct SimConfig {
  double duration_sec = 30.0;
  double tick_sec = 0.01;
  /// A run counts as stable if the worst backlog stays under this many
  /// seconds of work.
  double max_backlog_sec = 2.0;
};

struct SimResult {
  bool stable = false;
  double peak_cpu_backlog_sec = 0;
  double peak_bw_backlog_sec = 0;
  double cpu_utilization = 0;   // busy fraction over the run
  double bw_utilization = 0;
  std::uint64_t online_queries = 0;
  std::uint64_t local_queries = 0;
};

/// Simulates `clients` concurrent clients for config.duration_sec.
/// Arrivals are Bernoulli per client per tick; online/local split follows
/// workload.online_fraction.
SimResult simulate(const ServerProfile& server, const WorkloadProfile& workload,
                   std::uint64_t clients, const SimConfig& config, Rng& rng);

/// Largest client count that simulates stable (binary search).
std::uint64_t find_max_stable_clients(const ServerProfile& server,
                                      const WorkloadProfile& workload,
                                      const SimConfig& config, Rng& rng,
                                      std::uint64_t hi_hint = 0);

}  // namespace cbl::netsim
