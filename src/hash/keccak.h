// Keccak-256 (the pre-NIST-padding variant used by Ethereum), from
// scratch. Needed to produce/validate EIP-55 checksummed Ethereum
// addresses in the synthetic blocklist corpus.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace cbl::hash {

class Keccak256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Keccak256() noexcept = default;

  Keccak256& update(ByteView data) noexcept;
  Keccak256& update(std::string_view data) noexcept {
    return update(ByteView(reinterpret_cast<const std::uint8_t*>(data.data()),
                           data.size()));
  }

  Digest finalize() noexcept;

  static Digest digest(ByteView data) noexcept {
    Keccak256 h;
    h.update(data);
    return h.finalize();
  }
  static Digest digest(std::string_view data) noexcept {
    Keccak256 h;
    h.update(data);
    return h.finalize();
  }

 private:
  static constexpr std::size_t kRate = 136;  // 1600 - 2*256 bits

  void absorb_block() noexcept;

  std::uint64_t state_[25] = {};
  std::uint8_t buffer_[kRate];
  std::size_t buffer_len_ = 0;
};

}  // namespace cbl::hash
