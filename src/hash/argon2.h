// Argon2id (RFC 9106, version 0x13), from scratch on top of BLAKE2b.
// The paper instantiates its "inefficient oracle" H with Argon2id
// (memory = 4 MiB, time cost = 3) to rate-limit bogus blocklist queries;
// this module provides that oracle.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace cbl::hash {

struct Argon2Params {
  std::uint32_t time_cost = 3;       // passes over memory (t)
  std::uint32_t memory_kib = 4096;   // memory in KiB (m); >= 8 * parallelism
  std::uint32_t parallelism = 1;     // lanes (p)
  std::uint32_t tag_length = 32;     // output bytes (T)
};

/// Computes the Argon2id tag. `secret` and `associated_data` are the
/// optional K and X inputs of the RFC; pass empty views when unused.
/// Throws std::invalid_argument for out-of-range parameters.
Bytes argon2id(ByteView password, ByteView salt, const Argon2Params& params,
               ByteView secret = {}, ByteView associated_data = {});

/// The variable-length hash H' from RFC 9106 §3.3 (exposed for tests).
Bytes argon2_hprime(ByteView input, std::uint32_t tag_length);

}  // namespace cbl::hash
