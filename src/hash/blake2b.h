// BLAKE2b (RFC 7693), from scratch. Supports variable digest length
// (1..64) and keyed hashing. Argon2id builds its H^x hash and its block
// compression on this primitive.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace cbl::hash {

class Blake2b {
 public:
  static constexpr std::size_t kMaxDigestSize = 64;

  /// `digest_len` in [1, 64]; `key` may be empty (unkeyed) or up to 64 bytes.
  explicit Blake2b(std::size_t digest_len = 64, ByteView key = {});

  Blake2b& update(ByteView data) noexcept;
  Blake2b& update(std::string_view data) noexcept {
    return update(ByteView(reinterpret_cast<const std::uint8_t*>(data.data()),
                           data.size()));
  }

  /// Writes `digest_len` bytes into `out`.
  Bytes finalize();

  static Bytes digest(ByteView data, std::size_t digest_len = 64,
                      ByteView key = {});

 private:
  void process_block(const std::uint8_t* block, bool is_last) noexcept;

  std::uint64_t h_[8];
  std::uint64_t t_[2] = {0, 0};
  std::uint8_t buffer_[128];
  std::size_t buffer_len_ = 0;
  std::size_t digest_len_;
};

}  // namespace cbl::hash
