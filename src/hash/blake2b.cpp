#include "hash/blake2b.h"

#include <bit>
#include <cstring>
#include <stdexcept>

namespace cbl::hash {

namespace {

constexpr std::uint64_t kIV[8] = {
    0x6a09e667f3bcc908ULL, 0xbb67ae8584caa73bULL, 0x3c6ef372fe94f82bULL,
    0xa54ff53a5f1d36f1ULL, 0x510e527fade682d1ULL, 0x9b05688c2b3e6c1fULL,
    0x1f83d9abfb41bd6bULL, 0x5be0cd19137e2179ULL};

constexpr std::uint8_t kSigma[12][16] = {
    {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15},
    {14, 10, 4, 8, 9, 15, 13, 6, 1, 12, 0, 2, 11, 7, 5, 3},
    {11, 8, 12, 0, 5, 2, 15, 13, 10, 14, 3, 6, 7, 1, 9, 4},
    {7, 9, 3, 1, 13, 12, 11, 14, 2, 6, 5, 10, 4, 0, 15, 8},
    {9, 0, 5, 7, 2, 4, 10, 15, 14, 1, 11, 12, 6, 8, 3, 13},
    {2, 12, 6, 10, 0, 11, 8, 3, 4, 13, 7, 5, 15, 14, 1, 9},
    {12, 5, 1, 15, 14, 13, 4, 10, 0, 7, 6, 3, 9, 2, 8, 11},
    {13, 11, 7, 14, 12, 1, 3, 9, 5, 0, 15, 4, 8, 6, 2, 10},
    {6, 15, 14, 9, 11, 3, 0, 8, 12, 2, 13, 7, 1, 4, 10, 5},
    {10, 2, 8, 4, 7, 6, 1, 5, 15, 11, 9, 14, 3, 12, 13, 0},
    {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15},
    {14, 10, 4, 8, 9, 15, 13, 6, 1, 12, 0, 2, 11, 7, 5, 3}};

inline void g(std::uint64_t& a, std::uint64_t& b, std::uint64_t& c,
              std::uint64_t& d, std::uint64_t x, std::uint64_t y) noexcept {
  a = a + b + x;
  d = std::rotr(d ^ a, 32);
  c = c + d;
  b = std::rotr(b ^ c, 24);
  a = a + b + y;
  d = std::rotr(d ^ a, 16);
  c = c + d;
  b = std::rotr(b ^ c, 63);
}

}  // namespace

Blake2b::Blake2b(std::size_t digest_len, ByteView key)
    : digest_len_(digest_len) {
  if (digest_len == 0 || digest_len > kMaxDigestSize) {
    throw std::invalid_argument("Blake2b: digest length must be in [1,64]");
  }
  if (key.size() > 64) {
    throw std::invalid_argument("Blake2b: key too long");
  }
  for (int i = 0; i < 8; ++i) h_[i] = kIV[i];
  h_[0] ^= 0x01010000ULL ^ (static_cast<std::uint64_t>(key.size()) << 8) ^
           static_cast<std::uint64_t>(digest_len);
  if (!key.empty()) {
    std::uint8_t block[128] = {};
    std::memcpy(block, key.data(), key.size());
    update(ByteView(block, 128));
  }
}

void Blake2b::process_block(const std::uint8_t* block, bool is_last) noexcept {
  std::uint64_t m[16];
  for (int i = 0; i < 16; ++i) m[i] = load_le64(block + 8 * i);

  std::uint64_t v[16];
  for (int i = 0; i < 8; ++i) v[i] = h_[i];
  for (int i = 0; i < 8; ++i) v[8 + i] = kIV[i];
  v[12] ^= t_[0];
  v[13] ^= t_[1];
  if (is_last) v[14] = ~v[14];

  for (int round = 0; round < 12; ++round) {
    const std::uint8_t* s = kSigma[round];
    g(v[0], v[4], v[8], v[12], m[s[0]], m[s[1]]);
    g(v[1], v[5], v[9], v[13], m[s[2]], m[s[3]]);
    g(v[2], v[6], v[10], v[14], m[s[4]], m[s[5]]);
    g(v[3], v[7], v[11], v[15], m[s[6]], m[s[7]]);
    g(v[0], v[5], v[10], v[15], m[s[8]], m[s[9]]);
    g(v[1], v[6], v[11], v[12], m[s[10]], m[s[11]]);
    g(v[2], v[7], v[8], v[13], m[s[12]], m[s[13]]);
    g(v[3], v[4], v[9], v[14], m[s[14]], m[s[15]]);
  }

  for (int i = 0; i < 8; ++i) h_[i] ^= v[i] ^ v[8 + i];
}

Blake2b& Blake2b::update(ByteView data) noexcept {
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  while (n > 0) {
    // A full buffer is only compressed once we know more input follows:
    // the final block must be flagged in finalize().
    if (buffer_len_ == 128) {
      t_[0] += 128;
      if (t_[0] < 128) ++t_[1];
      process_block(buffer_, /*is_last=*/false);
      buffer_len_ = 0;
    }
    const std::size_t take = std::min(n, 128 - buffer_len_);
    std::memcpy(buffer_ + buffer_len_, p, take);
    buffer_len_ += take;
    p += take;
    n -= take;
  }
  return *this;
}

Bytes Blake2b::finalize() {
  t_[0] += buffer_len_;
  if (t_[0] < buffer_len_) ++t_[1];
  std::memset(buffer_ + buffer_len_, 0, 128 - buffer_len_);
  process_block(buffer_, /*is_last=*/true);

  Bytes out(digest_len_);
  std::uint8_t full[64];
  for (int i = 0; i < 8; ++i) store_le64(full + 8 * i, h_[i]);
  std::memcpy(out.data(), full, digest_len_);
  return out;
}

Bytes Blake2b::digest(ByteView data, std::size_t digest_len, ByteView key) {
  Blake2b h(digest_len, key);
  h.update(data);
  return h.finalize();
}

}  // namespace cbl::hash
