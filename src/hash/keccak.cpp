#include "hash/keccak.h"

#include <bit>
#include <cstring>

namespace cbl::hash {

namespace {

constexpr std::uint64_t kRC[24] = {
    0x0000000000000001ULL, 0x0000000000008082ULL, 0x800000000000808aULL,
    0x8000000080008000ULL, 0x000000000000808bULL, 0x0000000080000001ULL,
    0x8000000080008081ULL, 0x8000000000008009ULL, 0x000000000000008aULL,
    0x0000000000000088ULL, 0x0000000080008009ULL, 0x000000008000000aULL,
    0x000000008000808bULL, 0x800000000000008bULL, 0x8000000000008089ULL,
    0x8000000000008003ULL, 0x8000000000008002ULL, 0x8000000000000080ULL,
    0x000000000000800aULL, 0x800000008000000aULL, 0x8000000080008081ULL,
    0x8000000000008080ULL, 0x0000000080000001ULL, 0x8000000080008008ULL};

constexpr int kRot[24] = {1,  3,  6,  10, 15, 21, 28, 36, 45, 55, 2,  14,
                          27, 41, 56, 8,  25, 43, 62, 18, 39, 61, 20, 44};
constexpr int kPi[24] = {10, 7,  11, 17, 18, 3, 5,  16, 8,  21, 24, 4,
                         15, 23, 19, 13, 12, 2, 20, 14, 22, 9,  6,  1};

void keccak_f1600(std::uint64_t st[25]) noexcept {
  for (int round = 0; round < 24; ++round) {
    // Theta.
    std::uint64_t bc[5];
    for (int i = 0; i < 5; ++i) {
      bc[i] = st[i] ^ st[i + 5] ^ st[i + 10] ^ st[i + 15] ^ st[i + 20];
    }
    for (int i = 0; i < 5; ++i) {
      const std::uint64_t t = bc[(i + 4) % 5] ^ std::rotl(bc[(i + 1) % 5], 1);
      for (int j = 0; j < 25; j += 5) st[j + i] ^= t;
    }
    // Rho and pi.
    std::uint64_t t = st[1];
    for (int i = 0; i < 24; ++i) {
      const int j = kPi[i];
      const std::uint64_t tmp = st[j];
      st[j] = std::rotl(t, kRot[i]);
      t = tmp;
    }
    // Chi.
    for (int j = 0; j < 25; j += 5) {
      for (int i = 0; i < 5; ++i) bc[i] = st[j + i];
      for (int i = 0; i < 5; ++i) {
        st[j + i] ^= ~bc[(i + 1) % 5] & bc[(i + 2) % 5];
      }
    }
    // Iota.
    st[0] ^= kRC[round];
  }
}

}  // namespace

void Keccak256::absorb_block() noexcept {
  for (std::size_t i = 0; i < kRate / 8; ++i) {
    state_[i] ^= load_le64(buffer_ + 8 * i);
  }
  keccak_f1600(state_);
  buffer_len_ = 0;
}

Keccak256& Keccak256::update(ByteView data) noexcept {
  for (std::uint8_t b : data) {
    buffer_[buffer_len_++] = b;
    if (buffer_len_ == kRate) absorb_block();
  }
  return *this;
}

Keccak256::Digest Keccak256::finalize() noexcept {
  // Original Keccak padding: 0x01 ... 0x80 within the rate.
  std::memset(buffer_ + buffer_len_, 0, kRate - buffer_len_);
  buffer_[buffer_len_] = 0x01;
  buffer_[kRate - 1] |= 0x80;
  buffer_len_ = kRate;
  absorb_block();

  Digest out;
  for (int i = 0; i < 4; ++i) store_le64(out.data() + 8 * i, state_[i]);
  return out;
}

}  // namespace cbl::hash
