#include "hash/argon2.h"

#include <bit>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "common/ct.h"
#include "hash/blake2b.h"

namespace cbl::hash {

namespace {

constexpr std::uint32_t kVersion = 0x13;
constexpr std::uint32_t kTypeId = 2;  // Argon2id
constexpr std::uint32_t kSyncPoints = 4;
constexpr std::size_t kBlockWords = 128;  // 1024 bytes

struct Block {
  std::uint64_t w[kBlockWords];

  void operator^=(const Block& other) noexcept {
    for (std::size_t i = 0; i < kBlockWords; ++i) w[i] ^= other.w[i];
  }
};

void le32(Bytes& out, std::uint32_t v) {
  std::uint8_t b[4];
  store_le32(b, v);
  append(out, ByteView(b, 4));
}

// BlaMka mixing function: BLAKE2b's G with the extra 32x32->64
// multiplication that gives Argon2 its compute hardness.
inline void gb(std::uint64_t& a, std::uint64_t& b, std::uint64_t& c,
               std::uint64_t& d) noexcept {
  auto mul = [](std::uint64_t x, std::uint64_t y) noexcept {
    return 2 * (x & 0xffffffffULL) * (y & 0xffffffffULL);
  };
  a = a + b + mul(a, b);
  d = std::rotr(d ^ a, 32);
  c = c + d + mul(c, d);
  b = std::rotr(b ^ c, 24);
  a = a + b + mul(a, b);
  d = std::rotr(d ^ a, 16);
  c = c + d + mul(c, d);
  b = std::rotr(b ^ c, 63);
}

// The permutation P over 16 64-bit words.
inline void permute(std::uint64_t& v0, std::uint64_t& v1, std::uint64_t& v2,
                    std::uint64_t& v3, std::uint64_t& v4, std::uint64_t& v5,
                    std::uint64_t& v6, std::uint64_t& v7, std::uint64_t& v8,
                    std::uint64_t& v9, std::uint64_t& v10, std::uint64_t& v11,
                    std::uint64_t& v12, std::uint64_t& v13, std::uint64_t& v14,
                    std::uint64_t& v15) noexcept {
  gb(v0, v4, v8, v12);
  gb(v1, v5, v9, v13);
  gb(v2, v6, v10, v14);
  gb(v3, v7, v11, v15);
  gb(v0, v5, v10, v15);
  gb(v1, v6, v11, v12);
  gb(v2, v7, v8, v13);
  gb(v3, v4, v9, v14);
}

// Compression function G(X, Y) from RFC 9106 §3.5.
void compress(const Block& x, const Block& y, Block& out) noexcept {
  Block r;
  for (std::size_t i = 0; i < kBlockWords; ++i) r.w[i] = x.w[i] ^ y.w[i];
  Block z = r;

  // Rowwise: 8 rows of 16 words.
  for (int row = 0; row < 8; ++row) {
    std::uint64_t* v = z.w + 16 * row;
    permute(v[0], v[1], v[2], v[3], v[4], v[5], v[6], v[7], v[8], v[9], v[10],
            v[11], v[12], v[13], v[14], v[15]);
  }
  // Columnwise: 8 columns of 16 words taken as u64 pairs.
  for (int col = 0; col < 8; ++col) {
    std::uint64_t* v = z.w;
    const int b = 2 * col;
    permute(v[b], v[b + 1], v[b + 16], v[b + 17], v[b + 32], v[b + 33],
            v[b + 48], v[b + 49], v[b + 64], v[b + 65], v[b + 80], v[b + 81],
            v[b + 96], v[b + 97], v[b + 112], v[b + 113]);
  }

  for (std::size_t i = 0; i < kBlockWords; ++i) out.w[i] = z.w[i] ^ r.w[i];
}

void block_from_bytes(const Bytes& bytes, Block& b) noexcept {
  for (std::size_t i = 0; i < kBlockWords; ++i) {
    b.w[i] = load_le64(bytes.data() + 8 * i);
  }
}

struct Position {
  std::uint32_t pass, lane, slice;
};

}  // namespace

Bytes argon2_hprime(ByteView input, std::uint32_t tag_length) {
  Bytes prefixed;
  prefixed.reserve(4 + input.size());
  le32(prefixed, tag_length);
  append(prefixed, input);

  if (tag_length <= 64) {
    return Blake2b::digest(ByteView(prefixed.data(), prefixed.size()),
                           tag_length);
  }
  const std::uint32_t r = (tag_length + 31) / 32 - 2;
  Bytes out;
  out.reserve(tag_length);
  Bytes v = Blake2b::digest(ByteView(prefixed.data(), prefixed.size()), 64);
  out.insert(out.end(), v.begin(), v.begin() + 32);
  for (std::uint32_t i = 1; i < r; ++i) {
    v = Blake2b::digest(ByteView(v.data(), v.size()), 64);
    out.insert(out.end(), v.begin(), v.begin() + 32);
  }
  v = Blake2b::digest(ByteView(v.data(), v.size()), tag_length - 32 * r);
  out.insert(out.end(), v.begin(), v.end());
  return out;
}

Bytes argon2id(ByteView password, ByteView salt, const Argon2Params& params,
               ByteView secret, ByteView associated_data) {
  const std::uint32_t p = params.parallelism;
  if (p == 0) throw std::invalid_argument("argon2id: parallelism must be > 0");
  if (params.memory_kib < 8 * p) {
    throw std::invalid_argument("argon2id: memory must be >= 8 * parallelism");
  }
  if (params.time_cost == 0) {
    throw std::invalid_argument("argon2id: time cost must be > 0");
  }
  if (params.tag_length < 4) {
    throw std::invalid_argument("argon2id: tag length must be >= 4");
  }

  // H0: the 64-byte seed hash over all parameters and inputs.
  Bytes h0_input;
  le32(h0_input, p);
  le32(h0_input, params.tag_length);
  le32(h0_input, params.memory_kib);
  le32(h0_input, params.time_cost);
  le32(h0_input, kVersion);
  le32(h0_input, kTypeId);
  le32(h0_input, static_cast<std::uint32_t>(password.size()));
  append(h0_input, password);
  le32(h0_input, static_cast<std::uint32_t>(salt.size()));
  append(h0_input, salt);
  le32(h0_input, static_cast<std::uint32_t>(secret.size()));
  append(h0_input, secret);
  le32(h0_input, static_cast<std::uint32_t>(associated_data.size()));
  append(h0_input, associated_data);
  Bytes h0 = Blake2b::digest(ByteView(h0_input.data(), h0_input.size()), 64);
  secure_wipe(h0_input.data(), h0_input.size());  // held the password + pepper

  // Memory layout: p lanes x q columns, m' = 4p * floor(m / 4p) blocks.
  const std::uint32_t m_prime = 4 * p * (params.memory_kib / (4 * p));
  const std::uint32_t q = m_prime / p;           // lane length
  const std::uint32_t seg_len = q / kSyncPoints;  // segment length

  std::vector<Block> memory(m_prime);
  auto at = [&](std::uint32_t lane, std::uint32_t col) -> Block& {
    return memory[static_cast<std::size_t>(lane) * q + col];
  };

  // First two columns of every lane from H'.
  for (std::uint32_t lane = 0; lane < p; ++lane) {
    for (std::uint32_t col = 0; col < 2; ++col) {
      Bytes seed(h0.begin(), h0.end());
      le32(seed, col);
      le32(seed, lane);
      block_from_bytes(argon2_hprime(ByteView(seed.data(), seed.size()), 1024),
                       at(lane, col));
    }
  }

  // Data-independent (Argon2i-style) J1||J2 generator for the first half of
  // the first pass of Argon2id.
  struct AddressGenerator {
    Block input{}, address{};
    std::uint32_t next_index = 128;

    AddressGenerator(const Position& pos, std::uint32_t m_prime,
                     std::uint32_t passes) {
      input.w[0] = pos.pass;
      input.w[1] = pos.lane;
      input.w[2] = pos.slice;
      input.w[3] = m_prime;
      input.w[4] = passes;
      input.w[5] = kTypeId;
      input.w[6] = 0;  // counter, incremented before each refill
    }

    std::uint64_t next() noexcept {
      if (next_index == 128) {
        ++input.w[6];
        Block zero{}, tmp{};
        compress(zero, input, tmp);
        compress(zero, tmp, address);
        next_index = 0;
      }
      return address.w[next_index++];
    }
  };

  for (std::uint32_t pass = 0; pass < params.time_cost; ++pass) {
    for (std::uint32_t slice = 0; slice < kSyncPoints; ++slice) {
      for (std::uint32_t lane = 0; lane < p; ++lane) {
        const Position pos{pass, lane, slice};
        const bool data_independent = pass == 0 && slice < kSyncPoints / 2;
        AddressGenerator gen(pos, m_prime, params.time_cost);

        std::uint32_t start = 0;
        if (pass == 0 && slice == 0) {
          start = 2;  // columns 0 and 1 are seeded
          if (data_independent) {
            // Keep the J sequence aligned with block indices.
            for (std::uint32_t i = 0; i < start; ++i) (void)gen.next();
          }
        }

        for (std::uint32_t idx = start; idx < seg_len; ++idx) {
          const std::uint32_t col = slice * seg_len + idx;
          const std::uint32_t prev_col = col == 0 ? q - 1 : col - 1;

          std::uint64_t j;
          if (data_independent) {
            j = gen.next();
          } else {
            j = at(lane, prev_col).w[0];
          }
          const std::uint32_t j1 = static_cast<std::uint32_t>(j);
          const std::uint32_t j2 = static_cast<std::uint32_t>(j >> 32);

          std::uint32_t ref_lane = j2 % p;
          if (pass == 0 && slice == 0) ref_lane = lane;

          // Reference area size per RFC 9106 §3.4.1.3.
          std::uint32_t area;
          if (pass == 0) {
            if (slice == 0) {
              area = idx - 1;
            } else if (ref_lane == lane) {
              area = slice * seg_len + idx - 1;
            } else {
              area = slice * seg_len - (idx == 0 ? 1 : 0);
            }
          } else {
            if (ref_lane == lane) {
              area = q - seg_len + idx - 1;
            } else {
              area = q - seg_len - (idx == 0 ? 1 : 0);
            }
          }

          // Non-uniform mapping favouring recent blocks.
          const std::uint64_t x = (static_cast<std::uint64_t>(j1) * j1) >> 32;
          const std::uint64_t y = (static_cast<std::uint64_t>(area) * x) >> 32;
          const std::uint32_t z = area - 1 - static_cast<std::uint32_t>(y);

          std::uint32_t start_col = 0;
          if (pass != 0) {
            start_col = slice == kSyncPoints - 1 ? 0 : (slice + 1) * seg_len;
          }
          const std::uint32_t ref_col = (start_col + z) % q;

          Block result;
          compress(at(lane, prev_col), at(ref_lane, ref_col), result);
          if (pass == 0) {
            at(lane, col) = result;
          } else {
            at(lane, col) ^= result;  // version 0x13 XORs over old contents
          }
        }
      }
    }
  }

  // Final block: XOR of the last column across lanes, hashed to tag length.
  Block final_block = at(0, q - 1);
  for (std::uint32_t lane = 1; lane < p; ++lane) {
    final_block ^= at(lane, q - 1);
  }
  Bytes final_bytes(1024);
  for (std::size_t i = 0; i < kBlockWords; ++i) {
    store_le64(final_bytes.data() + 8 * i, final_block.w[i]);
  }
  Bytes tag = argon2_hprime(ByteView(final_bytes.data(), final_bytes.size()),
                            params.tag_length);

  // Everything below the tag is password-derived state.
  secure_wipe(h0.data(), h0.size());
  secure_wipe(memory.data(), memory.size() * sizeof(Block));
  secure_wipe(&final_block, sizeof(final_block));
  secure_wipe(final_bytes.data(), final_bytes.size());
  return tag;
}

}  // namespace cbl::hash
