// SHA-256 (FIPS 180-4), implemented from scratch. Streaming and one-shot
// interfaces. Used for bucket prefixes, transcript hashing, and address
// checksums (Base58Check double-SHA256).
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace cbl::hash {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha256() noexcept;

  Sha256& update(ByteView data) noexcept;
  Sha256& update(std::string_view data) noexcept {
    return update(ByteView(reinterpret_cast<const std::uint8_t*>(data.data()),
                           data.size()));
  }

  /// Finalizes and returns the digest. The object must not be reused after
  /// finalization without calling reset().
  Digest finalize() noexcept;

  void reset() noexcept;

  static Digest digest(ByteView data) noexcept {
    Sha256 h;
    h.update(data);
    return h.finalize();
  }
  static Digest digest(std::string_view data) noexcept {
    Sha256 h;
    h.update(data);
    return h.finalize();
  }

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::uint32_t state_[8];
  std::uint64_t total_len_ = 0;
  std::uint8_t buffer_[64];
  std::size_t buffer_len_ = 0;
};

/// HMAC-SHA256 (RFC 2104).
Sha256::Digest hmac_sha256(ByteView key, ByteView message) noexcept;

/// HKDF-SHA256 expand+extract (RFC 5869). `out_len` <= 255*32.
Bytes hkdf_sha256(ByteView ikm, ByteView salt, ByteView info,
                  std::size_t out_len);

}  // namespace cbl::hash
