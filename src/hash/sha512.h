// SHA-512 (FIPS 180-4). The 64-byte digest feeds hash-to-group
// (ristretto255 one-way map wants 64 uniform bytes) and wide scalar
// reduction.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace cbl::hash {

class Sha512 {
 public:
  static constexpr std::size_t kDigestSize = 64;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha512() noexcept;

  Sha512& update(ByteView data) noexcept;
  Sha512& update(std::string_view data) noexcept {
    return update(ByteView(reinterpret_cast<const std::uint8_t*>(data.data()),
                           data.size()));
  }

  Digest finalize() noexcept;
  void reset() noexcept;

  static Digest digest(ByteView data) noexcept {
    Sha512 h;
    h.update(data);
    return h.finalize();
  }
  static Digest digest(std::string_view data) noexcept {
    Sha512 h;
    h.update(data);
    return h.finalize();
  }

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::uint64_t state_[8];
  std::uint64_t total_len_ = 0;  // bytes; 2^64-byte inputs are out of scope
  std::uint8_t buffer_[128];
  std::size_t buffer_len_ = 0;
};

}  // namespace cbl::hash
