#include "exec/worker_pool.h"

#include <algorithm>

namespace cbl::exec {

WorkerPool::WorkerPool(Options options) : options_(std::move(options)) {
  auto& reg = obs::MetricsRegistry::global();
  depth_gauge_ = &reg.gauge("cbl_exec_queue_depth", {{"pool", options_.name}},
                            "Tasks queued but not yet running");
  tasks_total_ = &reg.counter("cbl_exec_tasks_total", {{"pool", options_.name}},
                              "Tasks accepted (queued or run inline)");
  rejected_total_ =
      &reg.counter("cbl_exec_rejected_total", {{"pool", options_.name}},
                   "try_submit refusals on a full or stopped pool");
  workers_.reserve(options_.threads);
  for (unsigned i = 0; i < options_.threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::WorkerPool() : WorkerPool(Options{}) {}

WorkerPool::~WorkerPool() { shutdown(); }

unsigned WorkerPool::hardware_threads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

bool WorkerPool::enqueue_locked(std::unique_lock<std::mutex>& lock,
                                Task& task) {
  queue_.push_back(std::move(task));
  depth_gauge_->set(static_cast<double>(queue_.size()));
  tasks_total_->inc();
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

bool WorkerPool::submit(Task task) {
  if (workers_.empty()) {
    // Inline mode: the pool is a pass-through executor. No lock is held
    // while the task runs, so tasks may themselves submit.
    {
      std::unique_lock lock(mutex_);
      if (stopping_) return false;
    }
    tasks_total_->inc();
    task();
    return true;
  }
  std::unique_lock lock(mutex_);
  not_full_.wait(lock, [this] {
    return stopping_ || queue_.size() < options_.queue_capacity;
  });
  if (stopping_) return false;
  return enqueue_locked(lock, task);
}

bool WorkerPool::try_submit(Task task) {
  if (workers_.empty()) return submit(std::move(task));
  std::unique_lock lock(mutex_);
  if (stopping_ || queue_.size() >= options_.queue_capacity) {
    lock.unlock();
    rejected_total_->inc();
    return false;
  }
  return enqueue_locked(lock, task);
}

std::size_t WorkerPool::queue_depth() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

void WorkerPool::drain() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void WorkerPool::shutdown() {
  {
    std::unique_lock lock(mutex_);
    if (stopping_) {
      lock.unlock();
    } else {
      stopping_ = true;
      lock.unlock();
      not_empty_.notify_all();
      not_full_.notify_all();
    }
  }
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void WorkerPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock lock(mutex_);
      not_empty_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      depth_gauge_->set(static_cast<double>(queue_.size()));
      ++active_;
    }
    not_full_.notify_one();
    task();
    {
      std::unique_lock lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) {
        lock.unlock();
        idle_.notify_all();
      }
    }
  }
}

void parallel_for_chunks(
    WorkerPool* pool, std::size_t n, unsigned chunks,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (chunks <= 1 || n < 2 * static_cast<std::size_t>(chunks)) {
    fn(0, n);
    return;
  }
  const std::size_t chunk = (n + chunks - 1) / chunks;
  struct Slice {
    std::size_t begin, end;
  };
  std::vector<Slice> slices;
  for (unsigned t = 0; t < chunks; ++t) {
    const std::size_t begin = static_cast<std::size_t>(t) * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    slices.push_back({begin, end});
  }

  if (pool != nullptr && pool->threads() > 0) {
    std::mutex m;
    std::condition_variable done;
    std::size_t remaining = slices.size();
    for (const Slice s : slices) {
      const bool accepted = pool->submit([&, s] {
        fn(s.begin, s.end);
        // Notify under the lock: the waiter owns `m` and `done` on its
        // stack, so signalling after unlock would race their destruction
        // once the waiter observes remaining == 0 and returns.
        std::lock_guard lock(m);
        if (--remaining == 0) done.notify_one();
      });
      if (!accepted) {
        // Pool shut down underneath us: run the slice on the caller so
        // the result is still complete.
        fn(s.begin, s.end);
        std::unique_lock lock(m);
        --remaining;
      }
    }
    std::unique_lock lock(m);
    done.wait(lock, [&] { return remaining == 0; });
    return;
  }

  std::vector<std::thread> threads;
  threads.reserve(slices.size());
  for (const Slice s : slices) {
    threads.emplace_back([&, s] { fn(s.begin, s.end); });
  }
  for (auto& th : threads) th.join();
}

}  // namespace cbl::exec
