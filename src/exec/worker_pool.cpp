#include "exec/worker_pool.h"

#include <algorithm>

namespace cbl::exec {

WorkerPool::WorkerPool(Options options) : options_(std::move(options)) {
  auto& reg = obs::MetricsRegistry::global();
  depth_gauge_ = &reg.gauge("cbl_exec_queue_depth", {{"pool", options_.name}},
                            "Tasks queued but not yet running");
  tasks_total_ = &reg.counter("cbl_exec_tasks_total", {{"pool", options_.name}},
                              "Tasks accepted (queued or run inline)");
  rejected_total_ =
      &reg.counter("cbl_exec_rejected_total", {{"pool", options_.name}},
                   "try_submit refusals on a full or stopped pool");
  workers_.reserve(options_.threads);
  for (unsigned i = 0; i < options_.threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::WorkerPool() : WorkerPool(Options{}) {}

WorkerPool::~WorkerPool() { shutdown(); }

unsigned WorkerPool::hardware_threads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void WorkerPool::enqueue_locked(Task& task) {
  queue_.push_back(std::move(task));
  depth_gauge_->set(static_cast<double>(queue_.size()));
  tasks_total_->inc();
}

bool WorkerPool::submit(Task task) {
  if (workers_.empty()) {
    // Inline mode: the pool is a pass-through executor. No lock is held
    // while the task runs, so tasks may themselves submit.
    {
      MutexLock lock(mutex_);
      if (stopping_) return false;
    }
    tasks_total_->inc();
    task();
    return true;
  }
  MutexLock lock(mutex_);
  while (!stopping_ && queue_.size() >= options_.queue_capacity) {
    not_full_.wait(lock.native());
  }
  if (stopping_) return false;
  enqueue_locked(task);
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

bool WorkerPool::try_submit(Task task) {
  if (workers_.empty()) return submit(std::move(task));
  MutexLock lock(mutex_);
  if (stopping_ || queue_.size() >= options_.queue_capacity) {
    lock.unlock();
    rejected_total_->inc();
    return false;
  }
  enqueue_locked(task);
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

std::size_t WorkerPool::queue_depth() const {
  MutexLock lock(mutex_);
  return queue_.size();
}

void WorkerPool::drain() {
  MutexLock lock(mutex_);
  while (!queue_.empty() || active_ != 0) idle_.wait(lock.native());
}

void WorkerPool::shutdown() {
  {
    MutexLock lock(mutex_);
    const bool already_stopping = stopping_;
    stopping_ = true;
    lock.unlock();
    if (!already_stopping) {
      not_empty_.notify_all();
      not_full_.notify_all();
    }
  }
  // Joins are serialized so concurrent shutdown() calls (including the
  // destructor racing an explicit shutdown) never double-join a worker.
  MutexLock join_lock(join_mutex_);
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void WorkerPool::worker_loop() {
  for (;;) {
    Task task;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) not_empty_.wait(lock.native());
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      depth_gauge_->set(static_cast<double>(queue_.size()));
      ++active_;
    }
    not_full_.notify_one();
    task();
    {
      MutexLock lock(mutex_);
      --active_;
      const bool drained = queue_.empty() && active_ == 0;
      lock.unlock();
      if (drained) idle_.notify_all();
    }
  }
}

void parallel_for_chunks(
    WorkerPool* pool, std::size_t n, unsigned chunks,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (chunks <= 1 || n < 2 * static_cast<std::size_t>(chunks)) {
    fn(0, n);
    return;
  }
  const std::size_t chunk = (n + chunks - 1) / chunks;
  struct Slice {
    std::size_t begin, end;
  };
  std::vector<Slice> slices;
  for (unsigned t = 0; t < chunks; ++t) {
    const std::size_t begin = static_cast<std::size_t>(t) * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    slices.push_back({begin, end});
  }

  if (pool != nullptr && pool->threads() > 0) {
    cbl::Mutex m;
    std::condition_variable done;
    std::size_t remaining = slices.size();
    for (const Slice s : slices) {
      const bool accepted = pool->submit([&, s] {
        fn(s.begin, s.end);
        // Notify under the lock: the waiter owns `m` and `done` on its
        // stack, so signalling after unlock would race their destruction
        // once the waiter observes remaining == 0 and returns.
        MutexLock lock(m);
        if (--remaining == 0) done.notify_one();
      });
      if (!accepted) {
        // Pool shut down underneath us: run the slice on the caller so
        // the result is still complete.
        fn(s.begin, s.end);
        MutexLock lock(m);
        --remaining;
      }
    }
    MutexLock lock(m);
    while (remaining != 0) done.wait(lock.native());
    return;
  }

  std::vector<std::thread> threads;
  threads.reserve(slices.size());
  for (const Slice s : slices) {
    threads.emplace_back([&, s] { fn(s.begin, s.end); });
  }
  for (auto& th : threads) th.join();
}

}  // namespace cbl::exec
