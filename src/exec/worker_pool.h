// Execution primitives for the throughput layer: a fixed set of worker
// threads draining a bounded MPMC task queue, plus a deterministic
// chunked parallel-for used by the OPRF rebuild path. cbl_exec sits
// beside cbl_obs near the bottom of the dependency order (it links only
// cbl_obs), so any layer above can share a pool — the query pipeline in
// src/net injects one, tests inject inline (0-thread) pools for
// single-threaded determinism.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_safety.h"
#include "obs/metrics.h"

namespace cbl::exec {

// Thread safety: submit / try_submit / drain / queue_depth may be called
// concurrently from any thread. shutdown() may race with submitters
// (late submits return false); the destructor runs shutdown().
class WorkerPool {
 public:
  struct Options {
    /// 0 = no workers: submit() runs the task inline on the caller. This
    /// is the injectable test mode — same code path, no scheduling.
    unsigned threads = 0;
    /// Bound on queued (not yet running) tasks. submit() blocks on a full
    /// queue (backpressure); try_submit() refuses (load shedding).
    std::size_t queue_capacity = 1024;
    /// Labels the cbl_exec_* metric families.
    std::string name = "default";
  };

  explicit WorkerPool(Options options);
  WorkerPool();  // inline pass-through pool (Options defaults)
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  using Task = std::function<void()>;

  /// Enqueues (or runs inline when threads == 0). Blocks while the queue
  /// is full; returns false only after shutdown().
  bool submit(Task task) CBL_EXCLUDES(mutex_);

  /// Non-blocking variant: returns false when the queue is full or the
  /// pool is shut down — the caller sheds the work.
  bool try_submit(Task task) CBL_EXCLUDES(mutex_);

  /// Waits until the queue is empty and every worker is idle.
  void drain() CBL_EXCLUDES(mutex_);

  /// Stops accepting work, lets the workers finish the queue, joins them.
  /// Idempotent, and safe to race from several threads: the flag flip is
  /// guarded by mutex_, the joins are serialized by join_mutex_.
  void shutdown() CBL_EXCLUDES(mutex_, join_mutex_);

  unsigned threads() const { return static_cast<unsigned>(workers_.size()); }
  std::size_t queue_depth() const CBL_EXCLUDES(mutex_);

  /// std::thread::hardware_concurrency(), floored at 1.
  static unsigned hardware_threads();

 private:
  void worker_loop() CBL_EXCLUDES(mutex_);
  /// Pushes the task and updates the depth metrics. The caller notifies
  /// not_empty_ after dropping the lock — the notify deliberately stays
  /// outside so no waiter wakes into a still-held mutex.
  void enqueue_locked(Task& task) CBL_REQUIRES(mutex_);

  const Options options_;
  mutable cbl::Mutex mutex_;  // lock: queue, lifecycle flags, idle tracking
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::condition_variable idle_;
  std::deque<Task> queue_ CBL_GUARDED_BY(mutex_);
  /// Tasks currently running on workers.
  std::size_t active_ CBL_GUARDED_BY(mutex_) = 0;
  bool stopping_ CBL_GUARDED_BY(mutex_) = false;
  /// Serializes the join section of shutdown(): two threads racing
  /// shutdown() must not both call join() on the same std::thread.
  /// Never held together with mutex_ (acquired after mutex_ is released).
  cbl::Mutex join_mutex_;  // lock: the join loop over workers_
  /// lock:unguarded(sized once in the constructor; elements are only
  /// mutated by the join loop, which join_mutex_ serializes)
  std::vector<std::thread> workers_;

  // Metric handles resolved once in the constructor, stable thereafter.
  obs::Gauge* depth_gauge_;       // lock:unguarded(set in ctor, then read-only)
  obs::Counter* tasks_total_;     // lock:unguarded(set in ctor, then read-only)
  obs::Counter* rejected_total_;  // lock:unguarded(set in ctor, then read-only)
};

/// Runs fn(begin, end) over contiguous slices of [0, n). The slice
/// boundaries depend only on (n, chunks) — never on scheduling — so any
/// output addressed by index is bit-identical for every thread count;
/// this is what makes OprfServer::rebuild deterministic under its thread
/// sweep. Degenerate cases (chunks <= 1, or n < 2 * chunks) run a single
/// fn(0, n) on the caller. With `pool` null (or inline), slices run on
/// ephemeral threads; otherwise they are submitted to the pool and the
/// call blocks until all slices complete.
void parallel_for_chunks(
    WorkerPool* pool, std::size_t n, unsigned chunks,
    const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace cbl::exec
