// Umbrella header for the observability subsystem.
#pragma once

#include "obs/clock.h"    // IWYU pragma: export
#include "obs/export.h"   // IWYU pragma: export
#include "obs/metrics.h"  // IWYU pragma: export
#include "obs/trace.h"    // IWYU pragma: export
