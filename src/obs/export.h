// Exposition: renders a MetricsRegistry snapshot as Prometheus text
// format (scrape endpoint payload) or as a JSON document (dashboards,
// bench trajectory files). Both renderings are deterministic — metrics
// sorted by (name, labels) — so golden tests can compare verbatim.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace cbl::obs {

/// Prometheus text exposition format 0.0.4: # HELP / # TYPE headers,
/// histogram rendered as cumulative _bucket{le=...} plus _sum/_count.
std::string to_prometheus(const std::vector<MetricSnapshot>& samples);
std::string to_prometheus(const MetricsRegistry& registry);

/// JSON snapshot: {"counters": [...], "gauges": [...], "histograms":
/// [...]} with p50/p90/p99 precomputed per histogram.
std::string to_json(const std::vector<MetricSnapshot>& samples);
std::string to_json(const MetricsRegistry& registry);

/// JSON rendering of a trace-log snapshot (array of span events).
std::string trace_to_json(const std::vector<TraceEvent>& events);

/// Formats a double the way both exporters do: %.17g shortened — integral
/// values print without a trailing ".0" mantissa. Exposed for tests.
std::string format_double(double v);

/// Finds the sample for (name, labels) in a snapshot; nullptr if absent.
/// Bench reporters use this to pull one series out of a full snapshot
/// without re-implementing the (name, labels) match.
const MetricSnapshot* find_metric(const std::vector<MetricSnapshot>& samples,
                                  const std::string& name,
                                  const Labels& labels = {});

/// Quantile of a histogram sample via the shared fixed-bucket estimator
/// (identical to Histogram::quantile on the live object). Returns 0 for
/// non-histogram samples and empty data.
double snapshot_quantile(const MetricSnapshot& sample, double q);

}  // namespace cbl::obs
