#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cbl::obs {

std::vector<double> Histogram::log_buckets(double min, double max,
                                           unsigned per_decade) {
  if (!(min > 0.0) || !(max > min) || per_decade == 0) {
    throw std::invalid_argument("Histogram::log_buckets: bad range");
  }
  // Each bound is computed independently as min * 10^(i/per_decade)
  // (one rounding per bound) instead of by repeated multiplication,
  // which accumulated ~1 ulp of drift per step: the bound meant to be
  // exactly 10.0 came out as 10.00000000000002, so "le" semantics at
  // decade boundaries — and every quantile interpolated against them —
  // were off by the drift. With the default scales the decade bounds
  // are now exactly representable and exactly placed.
  std::vector<double> bounds;
  for (unsigned i = 0;; ++i) {
    const double b =
        min * std::pow(10.0, static_cast<double>(i) / per_decade);
    if (!(b < max * (1.0 + 1e-12))) break;
    bounds.push_back(b);
  }
  return bounds;
}

const std::vector<double>& Histogram::default_latency_ms_buckets() {
  static const std::vector<double> bounds = log_buckets(1e-3, 1e5, 5);
  return bounds;
}

const std::vector<double>& Histogram::default_bytes_buckets() {
  static const std::vector<double> bounds = log_buckets(1.0, 1e8, 3);
  return bounds;
}

Histogram::Histogram(const std::atomic<bool>* enabled,
                     std::vector<double> bounds)
    : bounds_(std::move(bounds)), enabled_(enabled) {
  if (bounds_.empty() || !std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("Histogram: bounds must be ascending");
  }
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i] = 0;
}

void Histogram::observe(double v) {
  if (!enabled_->load(std::memory_order_relaxed)) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

double quantile_from_buckets(const std::vector<double>& bounds,
                             const std::vector<std::uint64_t>& counts,
                             double q) {
  q = std::clamp(q, 0.0, 1.0);
  std::uint64_t total = 0;
  for (const auto c : counts) total += c;
  if (total == 0 || bounds.empty()) return 0.0;
  // Target rank, 1-based; quantile(1.0) maps to the last observation.
  const double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::uint64_t in_bucket = counts[i];
    if (in_bucket == 0) continue;
    const std::uint64_t next = cumulative + in_bucket;
    if (static_cast<double>(next) >= rank) {
      if (i >= bounds.size()) return bounds.back();  // overflow bucket
      const double lower = i == 0 ? 0.0 : bounds[i - 1];
      const double upper = bounds[i];
      const double position =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      return lower + (upper - lower) * std::clamp(position, 0.0, 1.0);
    }
    cumulative = next;
  }
  return bounds.back();
}

double Histogram::quantile(double q) const {
  return quantile_from_buckets(bounds_, bucket_counts(), q);
}

void Histogram::merge_from(const Histogram& other) {
  if (bounds_ != other.bounds_) {
    throw std::invalid_argument("Histogram::merge_from: bounds mismatch");
  }
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].fetch_add(other.counts_[i].load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  const double delta = other.sum();
  while (!sum_.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const Labels& labels,
                                  const std::string& help) {
  MutexLock lock(mutex_);
  auto& entry = counters_[Key{name, labels}];
  if (!entry.metric) {
    entry.metric.reset(new Counter(&enabled_));
    entry.help = help;
  }
  return *entry.metric;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels,
                              const std::string& help) {
  MutexLock lock(mutex_);
  auto& entry = gauges_[Key{name, labels}];
  if (!entry.metric) {
    entry.metric.reset(new Gauge(&enabled_));
    entry.help = help;
  }
  return *entry.metric;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds,
                                      const Labels& labels,
                                      const std::string& help) {
  MutexLock lock(mutex_);
  auto& entry = histograms_[Key{name, labels}];
  if (!entry.metric) {
    entry.metric.reset(new Histogram(&enabled_, std::move(bounds)));
    entry.help = help;
  }
  return *entry.metric;
}

void MetricsRegistry::reset() {
  MutexLock lock(mutex_);
  for (auto& [key, entry] : counters_) {
    entry.metric->value_.store(0, std::memory_order_relaxed);
  }
  for (auto& [key, entry] : gauges_) {
    entry.metric->value_.store(0.0, std::memory_order_relaxed);
  }
  for (auto& [key, entry] : histograms_) {
    auto& h = *entry.metric;
    for (std::size_t i = 0; i <= h.bounds_.size(); ++i) {
      h.counts_[i].store(0, std::memory_order_relaxed);
    }
    h.count_.store(0, std::memory_order_relaxed);
    h.sum_.store(0.0, std::memory_order_relaxed);
  }
}

std::vector<MetricSnapshot> MetricsRegistry::snapshot() const {
  MutexLock lock(mutex_);
  std::vector<MetricSnapshot> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [key, entry] : counters_) {
    MetricSnapshot s;
    s.kind = MetricSnapshot::Kind::kCounter;
    s.name = key.name;
    s.labels = key.labels;
    s.help = entry.help;
    s.value = static_cast<double>(entry.metric->value());
    out.push_back(std::move(s));
  }
  for (const auto& [key, entry] : gauges_) {
    MetricSnapshot s;
    s.kind = MetricSnapshot::Kind::kGauge;
    s.name = key.name;
    s.labels = key.labels;
    s.help = entry.help;
    s.value = entry.metric->value();
    out.push_back(std::move(s));
  }
  for (const auto& [key, entry] : histograms_) {
    MetricSnapshot s;
    s.kind = MetricSnapshot::Kind::kHistogram;
    s.name = key.name;
    s.labels = key.labels;
    s.help = entry.help;
    s.bounds = entry.metric->bounds();
    s.bucket_counts = entry.metric->bucket_counts();
    s.count = entry.metric->count();
    s.sum = entry.metric->sum();
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.labels < b.labels;
            });
  return out;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  // Copy the other registry's state under its lock, then fold it in under
  // ours (never both at once, so cross-merges cannot deadlock).
  const auto samples = other.snapshot();
  for (const auto& s : samples) {
    switch (s.kind) {
      case MetricSnapshot::Kind::kCounter:
        counter(s.name, s.labels, s.help)
            .value_.fetch_add(static_cast<std::uint64_t>(s.value),
                              std::memory_order_relaxed);
        break;
      case MetricSnapshot::Kind::kGauge:
        // Gauges are point-in-time values; the merged view keeps the
        // incoming sample (last writer wins across shards).
        gauge(s.name, s.labels, s.help)
            .value_.store(s.value, std::memory_order_relaxed);
        break;
      case MetricSnapshot::Kind::kHistogram: {
        auto& h = histogram(s.name, s.bounds, s.labels, s.help);
        if (h.bounds() != s.bounds) {
          throw std::invalid_argument(
              "MetricsRegistry::merge_from: histogram bounds mismatch");
        }
        for (std::size_t i = 0; i < s.bucket_counts.size(); ++i) {
          h.counts_[i].fetch_add(s.bucket_counts[i],
                                 std::memory_order_relaxed);
        }
        h.count_.fetch_add(s.count, std::memory_order_relaxed);
        double cur = h.sum_.load(std::memory_order_relaxed);
        while (!h.sum_.compare_exchange_weak(cur, cur + s.sum,
                                             std::memory_order_relaxed)) {
        }
        break;
      }
    }
  }
}

}  // namespace cbl::obs
