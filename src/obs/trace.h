// Scoped tracing: CBL_SPAN("oprf.evaluate") times the enclosing scope
// against the registry clock, records the duration into the
// cbl_span_duration_ms{span="..."} histogram, and (when a TraceLog is
// attached) appends a begin/duration event to a bounded ring buffer for
// post-mortem inspection. Spans on a disabled registry cost one relaxed
// atomic load and touch neither the clock nor the histogram map.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_safety.h"
#include "obs/metrics.h"

namespace cbl::obs {

struct TraceEvent {
  std::string span;
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
};

/// Fixed-capacity ring buffer of completed spans. Thread-safe; the
/// oldest events are overwritten once full.
class TraceLog {
 public:
  explicit TraceLog(std::size_t capacity = 1024);

  void record(TraceEvent event);
  /// Events in arrival order (oldest first).
  std::vector<TraceEvent> snapshot() const;
  std::size_t capacity() const { return capacity_; }
  /// Total events ever recorded (>= snapshot().size()).
  std::uint64_t recorded() const;
  void clear();

 private:
  const std::size_t capacity_;
  mutable cbl::Mutex mutex_;  // lock: the ring and its write cursor
  std::vector<TraceEvent> ring_ CBL_GUARDED_BY(mutex_);
  std::size_t next_ CBL_GUARDED_BY(mutex_) = 0;
  std::uint64_t recorded_ CBL_GUARDED_BY(mutex_) = 0;
};

/// Attaches/detaches the ring buffer spans feed (null detaches). The log
/// must outlive every span that might observe it.
void set_trace_log(TraceLog* log);
TraceLog* trace_log();

inline constexpr const char* kSpanHistogramName = "cbl_span_duration_ms";

/// RAII span. Prefer the CBL_SPAN macro; construct directly to target a
/// non-global registry.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name,
                      MetricsRegistry& registry = MetricsRegistry::global());
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Finishes the span early (records once; the destructor then no-ops).
  void finish();

 private:
  const char* name_;
  MetricsRegistry* registry_;
  Histogram* histogram_ = nullptr;  // null when the registry is disabled
  std::uint64_t start_ns_ = 0;
};

#define CBL_OBS_CONCAT_INNER(a, b) a##b
#define CBL_OBS_CONCAT(a, b) CBL_OBS_CONCAT_INNER(a, b)
/// Times the current scope: CBL_SPAN("ceremony.vote");
#define CBL_SPAN(name) \
  ::cbl::obs::ScopedSpan CBL_OBS_CONCAT(cbl_span_, __LINE__)(name)

}  // namespace cbl::obs
