#include "obs/trace.h"

#include <atomic>

namespace cbl::obs {

TraceLog::TraceLog(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

void TraceLog::record(TraceEvent event) {
  MutexLock lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    ring_[next_] = std::move(event);
  }
  next_ = (next_ + 1) % capacity_;
  ++recorded_;
}

std::vector<TraceEvent> TraceLog::snapshot() const {
  MutexLock lock(mutex_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(next_ + i) % capacity_]);
    }
  }
  return out;
}

std::uint64_t TraceLog::recorded() const {
  MutexLock lock(mutex_);
  return recorded_;
}

void TraceLog::clear() {
  MutexLock lock(mutex_);
  ring_.clear();
  next_ = 0;
  recorded_ = 0;
}

namespace {
std::atomic<TraceLog*> g_trace_log{nullptr};
}  // namespace

void set_trace_log(TraceLog* log) {
  g_trace_log.store(log, std::memory_order_release);
}

TraceLog* trace_log() { return g_trace_log.load(std::memory_order_acquire); }

ScopedSpan::ScopedSpan(const char* name, MetricsRegistry& registry)
    : name_(name), registry_(&registry) {
  if (!registry_->enabled()) return;
  histogram_ = &registry_->histogram(
      kSpanHistogramName, Histogram::default_latency_ms_buckets(),
      {{"span", name_}}, "Scoped span durations in milliseconds");
  start_ns_ = registry_->clock().now_ns();
}

void ScopedSpan::finish() {
  if (!histogram_) return;
  const std::uint64_t end_ns = registry_->clock().now_ns();
  const std::uint64_t elapsed = end_ns >= start_ns_ ? end_ns - start_ns_ : 0;
  histogram_->observe(static_cast<double>(elapsed) / 1e6);
  if (TraceLog* log = trace_log()) {
    log->record(TraceEvent{name_, start_ns_, elapsed});
  }
  histogram_ = nullptr;
}

ScopedSpan::~ScopedSpan() { finish(); }

}  // namespace cbl::obs
