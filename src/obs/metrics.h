// Process-wide metrics for the blocklist service: named, labelled
// counters, gauges, and fixed-bucket latency histograms behind a
// registry that snapshots for exposition (Prometheus text / JSON) and
// merges across shards. Metric naming convention: cbl_<module>_<name>
// with unit suffixes (_total, _ms, _bytes).
//
// Hot-path cost model: instrumented classes resolve their handles once
// (registry lookup takes a mutex) and then increment lock-free atomics.
// A disabled registry turns every increment into one relaxed atomic load
// and a predictable branch, so observability is opt-out at run time
// without recompiling.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_safety.h"
#include "obs/clock.h"

namespace cbl::obs {

/// Sorted key/value label set, e.g. {{"method", "query"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

class MetricsRegistry;

/// Quantile estimate over fixed buckets: `counts` holds per-bucket
/// (non-cumulative) counts aligned with ascending upper `bounds`, plus a
/// final +Inf overflow slot. Linear interpolation inside the bucket that
/// crosses the target rank; 0 for empty data; the overflow bucket clamps
/// to the largest finite bound. Shared by Histogram::quantile and the
/// exporters so snapshots reproduce live quantiles exactly.
double quantile_from_buckets(const std::vector<double>& bounds,
                             const std::vector<std::uint64_t>& counts,
                             double q);

class Counter {
 public:
  void inc(std::uint64_t delta = 1) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  std::atomic<std::uint64_t> value_{0};
  const std::atomic<bool>* enabled_;
};

class Gauge {
 public:
  void set(double v) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void add(double delta) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  std::atomic<double> value_{0.0};
  const std::atomic<bool>* enabled_;
};

/// Fixed-bucket histogram with cumulative-"le" semantics (Prometheus
/// style): counts_[i] counts observations <= bounds_[i]... actually
/// counts_[i] holds the non-cumulative count of the i-th bucket and the
/// final slot is the +Inf overflow bucket; exposition accumulates.
class Histogram {
 public:
  /// Log-spaced upper bounds covering [min, max] with `per_decade`
  /// buckets per factor of 10 — the right shape for latencies spanning
  /// microseconds to seconds.
  static std::vector<double> log_buckets(double min, double max,
                                         unsigned per_decade = 5);

  /// Default latency scale: 1 us .. 100 s, in milliseconds.
  static const std::vector<double>& default_latency_ms_buckets();
  /// Default size scale: 1 B .. 100 MiB.
  static const std::vector<double>& default_bytes_buckets();

  void observe(double v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Quantile estimate in [0,1] by linear interpolation inside the
  /// bucket that crosses the target rank (the textbook fixed-bucket
  /// estimator; exact when observations sit on bucket bounds). Returns
  /// 0 for an empty histogram; the overflow bucket reports its lower
  /// bound (the largest finite bound).
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p90() const { return quantile(0.90); }
  double p99() const { return quantile(0.99); }
  double p999() const { return quantile(0.999); }

  /// Adds another histogram's counts into this one. Merging is
  /// commutative and associative, so shard-local registries can be
  /// folded in any order. Throws std::invalid_argument on mismatched
  /// bucket bounds.
  void merge_from(const Histogram& other);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; last element is +Inf overflow.
  std::vector<std::uint64_t> bucket_counts() const;

 private:
  friend class MetricsRegistry;
  Histogram(const std::atomic<bool>* enabled, std::vector<double> bounds);

  std::vector<double> bounds_;  // ascending upper bounds
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  // bounds_.size()+1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  const std::atomic<bool>* enabled_;
};

/// One exported sample family, ready for exposition.
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };
  Kind kind = Kind::kCounter;
  std::string name;
  Labels labels;
  std::string help;
  // Counter / gauge:
  double value = 0.0;
  // Histogram:
  std::vector<double> bounds;
  std::vector<std::uint64_t> bucket_counts;  // aligned with bounds, +Inf last
  std::uint64_t count = 0;
  double sum = 0.0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry all built-in instrumentation records to.
  static MetricsRegistry& global();

  /// Returns the counter for (name, labels), creating it on first use.
  /// The reference stays valid for the registry's lifetime — cache it.
  Counter& counter(const std::string& name, const Labels& labels = {},
                   const std::string& help = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {},
               const std::string& help = {});
  /// `bounds` must be non-empty ascending upper bounds; only the first
  /// call for a (name, labels) pair sets them.
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       const Labels& labels = {},
                       const std::string& help = {});

  /// Kill switch: a disabled registry keeps every handle valid but makes
  /// increments no-ops (one relaxed load each).
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// The clock spans and timers read. Never null; defaults to steady.
  void set_clock(const Clock* clock) {
    clock_.store(clock ? clock : &SteadyClock::instance(),
                 std::memory_order_release);
  }
  const Clock& clock() const {
    return *clock_.load(std::memory_order_acquire);
  }

  /// Zeroes every metric in place (handles stay valid) — test isolation.
  void reset();

  /// Consistent-enough point-in-time copy of every metric, sorted by
  /// (name, labels) for stable exposition.
  std::vector<MetricSnapshot> snapshot() const;

  /// Folds every metric of `other` into this registry (creating missing
  /// families), the multi-shard aggregation path: each shard owns a
  /// private registry and the exporter merges them.
  void merge_from(const MetricsRegistry& other);

 private:
  struct Key {
    std::string name;
    Labels labels;
    bool operator<(const Key& o) const {
      if (name != o.name) return name < o.name;
      return labels < o.labels;
    }
  };
  template <typename T>
  struct Entry {
    std::unique_ptr<T> metric;
    std::string help;
  };

  // lock:unguarded(lock-free atomics; handles read them on the hot path)
  std::atomic<bool> enabled_{true};
  // lock:unguarded(atomic pointer swap with acquire/release ordering)
  std::atomic<const Clock*> clock_{&SteadyClock::instance()};
  mutable cbl::Mutex mutex_;  // lock: the metric family maps below
  std::map<Key, Entry<Counter>> counters_ CBL_GUARDED_BY(mutex_);
  std::map<Key, Entry<Gauge>> gauges_ CBL_GUARDED_BY(mutex_);
  std::map<Key, Entry<Histogram>> histograms_ CBL_GUARDED_BY(mutex_);
};

}  // namespace cbl::obs
