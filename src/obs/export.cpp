#include "obs/export.h"

#include <cmath>
#include <cstdio>

namespace cbl::obs {

namespace {

std::string escape(const std::string& in, bool json) {
  std::string out;
  out.reserve(in.size());
  for (const char c : in) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  (void)json;  // same escape set suffices for both formats here
  return out;
}

std::string label_block(const Labels& labels) {
  if (labels.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"" + escape(v, false) + "\"";
  }
  out += "}";
  return out;
}

std::string label_block_with(const Labels& labels, const std::string& extra_key,
                             const std::string& extra_value) {
  Labels extended = labels;
  extended.emplace_back(extra_key, extra_value);
  return label_block(extended);
}

const char* kind_name(MetricSnapshot::Kind kind) {
  switch (kind) {
    case MetricSnapshot::Kind::kCounter:
      return "counter";
    case MetricSnapshot::Kind::kGauge:
      return "gauge";
    case MetricSnapshot::Kind::kHistogram:
      return "histogram";
  }
  return "untyped";
}

std::string json_labels(const Labels& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += "\"" + escape(k, true) + "\":\"" + escape(v, true) + "\"";
  }
  out += "}";
  return out;
}

}  // namespace

std::string format_double(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

std::string to_prometheus(const std::vector<MetricSnapshot>& samples) {
  std::string out;
  const std::string* last_name = nullptr;
  for (const auto& s : samples) {
    if (!last_name || *last_name != s.name) {
      if (!s.help.empty()) {
        out += "# HELP " + s.name + " " + s.help + "\n";
      }
      out += "# TYPE " + s.name + " " + kind_name(s.kind) + "\n";
      last_name = &s.name;
    }
    switch (s.kind) {
      case MetricSnapshot::Kind::kCounter:
      case MetricSnapshot::Kind::kGauge:
        out += s.name + label_block(s.labels) + " " + format_double(s.value) +
               "\n";
        break;
      case MetricSnapshot::Kind::kHistogram: {
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < s.bounds.size(); ++i) {
          cumulative += s.bucket_counts[i];
          out += s.name + "_bucket" +
                 label_block_with(s.labels, "le", format_double(s.bounds[i])) +
                 " " + std::to_string(cumulative) + "\n";
        }
        out += s.name + "_bucket" + label_block_with(s.labels, "le", "+Inf") +
               " " + std::to_string(s.count) + "\n";
        out += s.name + "_sum" + label_block(s.labels) + " " +
               format_double(s.sum) + "\n";
        out += s.name + "_count" + label_block(s.labels) + " " +
               std::to_string(s.count) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string to_prometheus(const MetricsRegistry& registry) {
  return to_prometheus(registry.snapshot());
}

std::string to_json(const std::vector<MetricSnapshot>& samples) {
  std::string counters, gauges, histograms;
  for (const auto& s : samples) {
    switch (s.kind) {
      case MetricSnapshot::Kind::kCounter:
      case MetricSnapshot::Kind::kGauge: {
        std::string& dst =
            s.kind == MetricSnapshot::Kind::kCounter ? counters : gauges;
        if (!dst.empty()) dst += ",";
        dst += "{\"name\":\"" + escape(s.name, true) +
               "\",\"labels\":" + json_labels(s.labels) +
               ",\"value\":" + format_double(s.value) + "}";
        break;
      }
      case MetricSnapshot::Kind::kHistogram: {
        if (!histograms.empty()) histograms += ",";
        histograms +=
            "{\"name\":\"" + escape(s.name, true) +
            "\",\"labels\":" + json_labels(s.labels) +
            ",\"count\":" + std::to_string(s.count) +
            ",\"sum\":" + format_double(s.sum) + ",\"p50\":" +
            format_double(quantile_from_buckets(s.bounds, s.bucket_counts,
                                                0.50)) +
            ",\"p90\":" +
            format_double(quantile_from_buckets(s.bounds, s.bucket_counts,
                                                0.90)) +
            ",\"p99\":" +
            format_double(quantile_from_buckets(s.bounds, s.bucket_counts,
                                                0.99)) +
            ",\"buckets\":[";
        for (std::size_t i = 0; i < s.bounds.size(); ++i) {
          if (i) histograms += ",";
          histograms += "{\"le\":" + format_double(s.bounds[i]) +
                        ",\"count\":" + std::to_string(s.bucket_counts[i]) +
                        "}";
        }
        histograms += "]}";
        break;
      }
    }
  }
  return "{\"counters\":[" + counters + "],\"gauges\":[" + gauges +
         "],\"histograms\":[" + histograms + "]}";
}

std::string to_json(const MetricsRegistry& registry) {
  return to_json(registry.snapshot());
}

const MetricSnapshot* find_metric(const std::vector<MetricSnapshot>& samples,
                                  const std::string& name,
                                  const Labels& labels) {
  for (const auto& s : samples) {
    if (s.name == name && s.labels == labels) return &s;
  }
  return nullptr;
}

double snapshot_quantile(const MetricSnapshot& sample, double q) {
  if (sample.kind != MetricSnapshot::Kind::kHistogram) return 0.0;
  return quantile_from_buckets(sample.bounds, sample.bucket_counts, q);
}

std::string trace_to_json(const std::vector<TraceEvent>& events) {
  std::string out = "[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i) out += ",";
    out += "{\"span\":\"" + escape(events[i].span, true) +
           "\",\"start_ns\":" + std::to_string(events[i].start_ns) +
           ",\"duration_ns\":" + std::to_string(events[i].duration_ns) + "}";
  }
  return out + "]";
}

}  // namespace cbl::obs
