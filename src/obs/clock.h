// Injectable time source for the observability layer. Latency histograms
// and spans read whatever Clock the registry carries, so production code
// gets std::chrono::steady_clock while tests (and netsim-style simulated
// runs) swap in a ManualClock and get bit-exact deterministic timings.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace cbl::obs {

class Clock {
 public:
  virtual ~Clock() = default;
  /// Monotonic nanoseconds since an arbitrary epoch.
  virtual std::uint64_t now_ns() const = 0;
};

/// Wall-time monotonic clock (the default).
class SteadyClock final : public Clock {
 public:
  std::uint64_t now_ns() const override {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  static const SteadyClock& instance() {
    static const SteadyClock clock;
    return clock;
  }
};

/// Test clock: time moves only when told to. Thread-safe (atomic), so
/// concurrent spans observe a consistent, monotone view.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(std::uint64_t start_ns = 0) : now_ns_(start_ns) {}

  std::uint64_t now_ns() const override {
    return now_ns_.load(std::memory_order_relaxed);
  }

  void advance_ns(std::uint64_t delta) {
    now_ns_.fetch_add(delta, std::memory_order_relaxed);
  }
  void advance_us(std::uint64_t delta) { advance_ns(delta * 1'000); }
  void advance_ms(std::uint64_t delta) { advance_ns(delta * 1'000'000); }
  void set_ns(std::uint64_t t) { now_ns_.store(t, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> now_ns_;
};

}  // namespace cbl::obs
