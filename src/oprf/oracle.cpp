#include "oprf/oracle.h"

#include <stdexcept>

#include "hash/sha256.h"
#include "hash/sha512.h"

namespace cbl::oprf {

namespace {
constexpr std::string_view kFastDomain = "cbl/oprf/oracle/fast/v1";
constexpr std::string_view kSlowSalt = "cbl/oprf/oracle/argon2/v1";
}  // namespace

Oracle Oracle::fast() { return Oracle(Kind::kFast, {}); }

Oracle Oracle::slow(const hash::Argon2Params& params) {
  hash::Argon2Params p = params;
  p.tag_length = 64;  // the one-way map consumes 64 uniform bytes
  return Oracle(Kind::kSlow, p);
}

Oracle Oracle::slow_paper_defaults() {
  hash::Argon2Params p;
  p.memory_kib = 4096;  // 4 MiB
  p.time_cost = 3;
  p.parallelism = 1;  // "sequential Argon2id"
  return slow(p);
}

ec::RistrettoPoint Oracle::map_to_group(ByteView entry) const {
  if (kind_ == Kind::kFast) {
    return ec::RistrettoPoint::hash_to_group(entry, kFastDomain);
  }
  const Bytes tag = hash::argon2id(
      entry, to_bytes(kSlowSalt), params_);
  std::array<std::uint8_t, 64> uniform;
  std::copy(tag.begin(), tag.end(), uniform.begin());
  return ec::RistrettoPoint::from_uniform_bytes(uniform);
}

std::vector<ec::RistrettoPoint> Oracle::map_to_group_batch(
    std::span<const Bytes> entries) const {
  if (kind_ == Kind::kFast) {
    return ec::RistrettoPoint::batch_hash_to_group(entries, kFastDomain);
  }
  std::vector<ec::RistrettoPoint> out(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    out[i] = map_to_group(entries[i]);
  }
  return out;
}

std::uint32_t Oracle::prefix(ByteView entry, unsigned lambda) {
  if (lambda == 0 || lambda > 32) {
    throw std::invalid_argument("Oracle::prefix: lambda must be in [1,32]");
  }
  const auto digest = hash::Sha256::digest(entry);
  const std::uint32_t word = load_be32(digest.data());
  return word >> (32 - lambda);
}

}  // namespace cbl::oprf
