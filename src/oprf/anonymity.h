// Quantifies the k-anonymity the bucketization actually provides.
// When a curious server sees a lambda-bit prefix, its posterior over
// WHICH listed entry was queried (assuming the query targets the list)
// is uniform within the bucket, so the privacy level is a property of
// the bucket-size distribution:
//   - min-entropy (worst case):  log2(min bucket size)
//   - Shannon entropy (average): sum_b (|b|/S) * log2 |b|
//   - expected anonymity set:    sum_b |b|^2 / S  (size-biased mean —
//     a random LISTED query lands in big buckets more often)
// The formal framework the paper leans on [34] phrases its bounds in
// exactly these distributional terms.
#pragma once

#include <cstdint>
#include <vector>

namespace cbl::oprf {

struct AnonymityReport {
  std::size_t k_min = 0;               // min non-empty bucket size
  std::size_t k_max = 0;
  double expected_anonymity_set = 0;   // size-biased mean bucket size
  double shannon_entropy_bits = 0;     // H(entry | prefix), listed queries
  double min_entropy_bits = 0;         // -log2 of the best-case guess
  std::size_t total_entries = 0;
  std::size_t nonempty_buckets = 0;
};

/// Analyzes a bucket-size distribution (zero entries are skipped).
AnonymityReport analyze_buckets(const std::vector<std::size_t>& bucket_sizes);

}  // namespace cbl::oprf
