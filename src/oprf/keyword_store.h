// Private Keyword Search (the paper's Section IV-B metadata extension,
// citing Chang-Mitzenmacher [35]), as a standalone reusable primitive:
// a server-held keyword -> value map that the client can query without
// the server learning the keyword, and without learning values for
// keywords it does not hold.
//
// Construction: the server tags each record with the OPRF output
// T = H(keyword)^R and encrypts the value under a key derived from T.
// A querying client OPRF-evaluates its keyword (blinded, so the server
// learns nothing), derives the same tag and key, and picks its record
// out of the k-anonymity bucket it shares with other records.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/errors.h"
#include "common/rng.h"
#include "ec/ristretto.h"
#include "oprf/oracle.h"
#include "oprf/server.h"

namespace cbl::oprf {

// ct:key-holder — the mask R is the store's long-lived secret.
class KeywordStore {
 public:
  KeywordStore(Oracle oracle, unsigned lambda, Rng& rng);
  ~KeywordStore() { mask_.wipe(); }

  /// (Re)builds the store from keyword -> value pairs under a fresh mask.
  void build(const std::vector<std::pair<std::string, Bytes>>& records);

  struct LookupRequest {
    std::uint32_t prefix = 0;
    ec::RistrettoPoint::Encoding blinded_keyword{};
  };

  struct TaggedRecord {
    ec::RistrettoPoint::Encoding tag;  // H(kw)^R
    Bytes ciphertext;                  // sealed under KDF(tag)
  };

  struct LookupResponse {
    ec::RistrettoPoint::Encoding evaluated{};  // blinded^R
    std::vector<TaggedRecord> bucket;          // all records in the prefix
  };

  /// Server side: evaluates the blinded keyword and returns the bucket.
  LookupResponse lookup(const LookupRequest& request) const;

  std::size_t size() const { return record_count_; }
  unsigned lambda() const { return lambda_; }

  /// Client-side driver (stateless): runs the full round trip against a
  /// store. Returns the value when the keyword is held, nullopt when it
  /// is not. Throws ProtocolError on a misbehaving server.
  std::optional<Bytes> client_lookup(std::string_view keyword, Rng& rng) const;

  // Client primitives (exposed so the round trip can cross a transport).
  // ct:key-holder
  struct Pending {
    Secret<ec::Scalar> blinding;  // ct:secret
    std::uint32_t prefix = 0;

    Pending() = default;
    Pending(const Pending&) = default;
    Pending(Pending&&) = default;
    Pending& operator=(const Pending&) = default;
    Pending& operator=(Pending&&) = default;
    ~Pending() { blinding.wipe(); }
  };
  static std::pair<LookupRequest, Pending> prepare(const Oracle& oracle,
                                                   unsigned lambda,
                                                   std::string_view keyword,
                                                   Rng& rng);
  static std::optional<Bytes> finish(const Pending& pending,
                                     const LookupResponse& response);

 private:
  Oracle oracle_;
  unsigned lambda_;
  Rng& rng_;
  Secret<ec::Scalar> mask_;  // R  ct:secret
  std::map<std::uint32_t, std::vector<TaggedRecord>> buckets_;
  std::size_t record_count_ = 0;
};

}  // namespace cbl::oprf
