#include "oprf/client.h"

#include <algorithm>

namespace cbl::oprf {

OprfClient::OprfClient(Oracle oracle, unsigned lambda, Rng& rng)
    : oracle_(oracle), lambda_(lambda), rng_(rng) {
  if (lambda == 0 || lambda > 32) {
    throw std::invalid_argument("OprfClient: lambda must be in [1,32]");
  }
  auto& reg = obs::MetricsRegistry::global();
  const auto fastpath = [&](const char* result) {
    return &reg.counter("cbl_oprf_client_fastpath_total",
                        {{"result", result}},
                        "Prefix-list checks by whether they resolved "
                        "offline or required an online query");
  };
  metrics_.fastpath_local = fastpath("local");
  metrics_.fastpath_online = fastpath("online");
  const auto cache = [&](const char* result) {
    return &reg.counter("cbl_oprf_client_cache_total", {{"result", result}},
                        "Bucket-cache outcomes of finished online queries");
  };
  metrics_.cache_hits = cache("hit");
  metrics_.cache_misses = cache("miss");
}

OprfClient::Prepared OprfClient::prepare(std::string_view entry) const {
  const Bytes raw = to_bytes(entry);
  Prepared p;
  p.pending.blinding = Secret(ec::Scalar::random(rng_));
  p.pending.hashed = oracle_.map_to_group(raw);
  p.pending.prefix = Oracle::prefix(raw, lambda_);

  p.request.prefix = p.pending.prefix;
  p.request.masked_query = (p.pending.hashed * p.pending.blinding).encode();
  p.request.api_key = api_key_;
  p.request.want_evaluation_proof = pinned_commitment_.has_value();
  const auto it = cache_.find(p.pending.prefix);
  if (it != cache_.end()) {
    p.request.cached_epoch = it->second.epoch;
    p.pending.used_cache_hint = true;
  }
  return p;
}

std::vector<OprfClient::Prepared> OprfClient::blind_batch(
    std::span<const std::string> entries) const {
  // 2^-1 mod l: blind by r/2 and let the batched encode double it away,
  // so m = H(u)^r costs no per-entry inverse square root.
  static const ec::Scalar inv_two = ec::Scalar::from_u64(2).invert();
  std::vector<Prepared> out(entries.size());
  std::vector<ec::RistrettoPoint> halves(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Bytes raw = to_bytes(entries[i]);
    Prepared& p = out[i];
    p.pending.blinding = Secret(ec::Scalar::random(rng_));
    p.pending.hashed = oracle_.map_to_group(raw);
    p.pending.prefix = Oracle::prefix(raw, lambda_);
    const Secret half_blinding = p.pending.blinding * inv_two;  // ct:secret
    halves[i] = p.pending.hashed * half_blinding;
  }
  const auto encodings = ec::RistrettoPoint::double_and_encode_batch(halves);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    Prepared& p = out[i];
    p.request.prefix = p.pending.prefix;
    p.request.masked_query = encodings[i];
    p.request.api_key = api_key_;
    p.request.want_evaluation_proof = pinned_commitment_.has_value();
    const auto it = cache_.find(p.pending.prefix);
    if (it != cache_.end()) {
      p.request.cached_epoch = it->second.epoch;
      p.pending.used_cache_hint = true;
    }
  }
  return out;
}

OprfClient::Result OprfClient::finish(const PendingQuery& pending,
                                      const QueryResponse& response) {
  const auto evaluated = ec::RistrettoPoint::decode(response.evaluated);
  if (!evaluated) {
    throw ProtocolError("OprfClient: malformed evaluated point");
  }
  if (pinned_commitment_) {
    // Verifiable OPRF: the evaluation must carry a valid DLEQ against
    // the pinned key commitment. The masked point is recomputable from
    // the pending state.
    const ec::RistrettoPoint masked = pending.hashed * pending.blinding;
    if (!response.evaluation_proof ||
        !response.evaluation_proof->verify(
            ec::RistrettoPoint::base(), *pinned_commitment_, masked,
            *evaluated, OprfServer::kEvalProofDomain)) {
      throw ProtocolError("OprfClient: evaluation proof missing or invalid");
    }
  }
  // verdict <- psi^(1/r) in s_p.
  const ec::RistrettoPoint::Encoding unblinded =
      (*evaluated * pending.blinding.invert()).encode();

  const std::vector<ec::RistrettoPoint::Encoding>* bucket = nullptr;
  const std::vector<Bytes>* metadata = nullptr;
  if (response.bucket_omitted) {
    const auto it = cache_.find(pending.prefix);
    if (it == cache_.end() || it->second.epoch != response.epoch) {
      throw ProtocolError(
          "OprfClient: server omitted bucket but no matching cache entry");
    }
    metrics_.cache_hits->inc();
    bucket = &it->second.bucket;
    metadata = &it->second.metadata;
  } else {
    metrics_.cache_misses->inc();
    auto& slot = cache_[pending.prefix];
    slot.epoch = response.epoch;
    slot.bucket = response.bucket;
    slot.metadata = response.metadata;
    if (!std::is_sorted(slot.bucket.begin(), slot.bucket.end())) {
      throw ProtocolError("OprfClient: bucket not in canonical order");
    }
    bucket = &slot.bucket;
    metadata = &slot.metadata;
  }

  Result result;
  const auto it = std::lower_bound(bucket->begin(), bucket->end(), unblinded);
  result.listed = it != bucket->end() && *it == unblinded;
  if (result.listed && !metadata->empty()) {
    const std::size_t index =
        static_cast<std::size_t>(std::distance(bucket->begin(), it));
    if (index < metadata->size()) {
      result.metadata = OprfServer::open_metadata(
          OprfServer::metadata_key(unblinded), (*metadata)[index]);
    }
  }
  return result;
}

void OprfClient::set_prefix_list(std::vector<std::uint32_t> prefixes) {
  prefix_list_.emplace(prefixes.begin(), prefixes.end());
}

bool OprfClient::may_be_listed(std::string_view entry) const {
  if (!prefix_list_) return true;
  const bool collides =
      prefix_list_->contains(Oracle::prefix(to_bytes(entry), lambda_));
  (collides ? metrics_.fastpath_online : metrics_.fastpath_local)->inc();
  return collides;
}

}  // namespace cbl::oprf
