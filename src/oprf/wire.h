// Canonical wire format for the query protocol messages — what actually
// travels between a user and a blocklist provider. Parsers treat input
// as untrusted and return nullopt on any malformation.
#pragma once

#include <optional>

#include "oprf/protocol.h"

namespace cbl::oprf {

Bytes serialize(const QueryRequest& request);
// wire:untrusted fuzz=fuzz_oprf_wire
[[nodiscard]] std::optional<QueryRequest> parse_query_request(ByteView data);

Bytes serialize(const QueryResponse& response);
// wire:untrusted fuzz=fuzz_oprf_wire
[[nodiscard]] std::optional<QueryResponse> parse_query_response(ByteView data);

/// Serialized prefix list (sorted u32 prefixes), as distributed to
/// clients for the local fast path.
Bytes serialize_prefix_list(const std::vector<std::uint32_t>& prefixes);
// wire:untrusted fuzz=fuzz_oprf_wire
[[nodiscard]] std::optional<std::vector<std::uint32_t>> parse_prefix_list(
    ByteView data);

}  // namespace cbl::oprf
