// wire:parser
#include "oprf/wire.h"

#include <algorithm>

#include "ec/codec.h"

namespace cbl::oprf {

namespace {
// Hard caps against hostile length prefixes.
constexpr std::size_t kMaxBucket = 1u << 22;        // 4M entries
constexpr std::size_t kMaxMetadataBytes = 1u << 16;  // per entry
constexpr std::size_t kMaxApiKey = 256;
constexpr std::size_t kMaxPrefixes = 1u << 24;
}  // namespace

Bytes serialize(const QueryRequest& request) {
  ec::WireWriter w;
  w.u32(request.prefix);
  w.raw(ByteView(request.masked_query.data(), request.masked_query.size()));
  w.u64(request.cached_epoch);
  w.var_bytes(to_bytes(request.api_key));
  w.u8(request.want_evaluation_proof ? 1 : 0);
  return w.take();
}

std::optional<QueryRequest> parse_query_request(ByteView data) {
  ec::WireReader r(data);
  QueryRequest request;
  request.prefix = r.u32();
  r.fill(request.masked_query);
  request.cached_epoch = r.u64();
  request.api_key = to_string(r.var_bytes(kMaxApiKey));
  const std::uint8_t want = r.u8();
  if (want > 1) r.fail();
  request.want_evaluation_proof = want == 1;
  if (!r.finish()) return std::nullopt;
  return request;
}

Bytes serialize(const QueryResponse& response) {
  ec::WireWriter w;
  w.raw(ByteView(response.evaluated.data(), response.evaluated.size()));
  w.u64(response.epoch);
  w.u8(response.bucket_omitted ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(response.bucket.size()));
  for (const auto& entry : response.bucket) {
    w.raw(ByteView(entry.data(), entry.size()));
  }
  w.u32(static_cast<std::uint32_t>(response.metadata.size()));
  for (const auto& m : response.metadata) w.var_bytes(m);
  w.u8(response.evaluation_proof ? 1 : 0);
  if (response.evaluation_proof) {
    w.raw(response.evaluation_proof->to_bytes());
  }
  return w.take();
}

std::optional<QueryResponse> parse_query_response(ByteView data) {
  ec::WireReader r(data);
  QueryResponse response;
  r.fill(response.evaluated);
  response.epoch = r.u64();
  const std::uint8_t omitted = r.u8();
  if (omitted > 1) r.fail();
  response.bucket_omitted = omitted == 1;

  const std::uint32_t bucket_size = r.u32();
  // A claimed count larger than the bytes left cannot be honest; check
  // before reserve so a hostile prefix cannot force a huge allocation.
  if (bucket_size > kMaxBucket || bucket_size * std::size_t{32} > r.remaining()) {
    return std::nullopt;
  }
  response.bucket.reserve(bucket_size);
  for (std::uint32_t i = 0; i < bucket_size && r.ok(); ++i) {
    ec::RistrettoPoint::Encoding enc{};
    r.fill(enc);
    response.bucket.push_back(enc);
  }
  const std::uint32_t metadata_count = r.u32();
  // Each metadata entry costs at least its 2-byte length prefix.
  if (metadata_count > kMaxBucket || metadata_count * std::size_t{2} > r.remaining()) {
    return std::nullopt;
  }
  response.metadata.reserve(metadata_count);
  for (std::uint32_t i = 0; i < metadata_count && r.ok(); ++i) {
    response.metadata.push_back(r.var_bytes(kMaxMetadataBytes));
  }
  const std::uint8_t has_proof = r.u8();
  if (has_proof > 1) r.fail();
  if (has_proof == 1) {
    response.evaluation_proof = r.nested<nizk::DleqProof>(
        nizk::DleqProof::kWireSize, nizk::DleqProof::from_bytes);
  }
  if (!r.finish()) return std::nullopt;
  return response;
}

Bytes serialize_prefix_list(const std::vector<std::uint32_t>& prefixes) {
  ec::WireWriter w;
  w.u32(static_cast<std::uint32_t>(prefixes.size()));
  for (const auto p : prefixes) w.u32(p);
  return w.take();
}

std::optional<std::vector<std::uint32_t>> parse_prefix_list(ByteView data) {
  ec::WireReader r(data);
  const std::uint32_t count = r.u32();
  if (count > kMaxPrefixes || count * std::size_t{4} > r.remaining()) {
    return std::nullopt;
  }
  std::vector<std::uint32_t> prefixes;
  prefixes.reserve(count);
  for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
    prefixes.push_back(r.u32());
  }
  if (!r.finish()) return std::nullopt;
  if (!std::is_sorted(prefixes.begin(), prefixes.end())) {
    return std::nullopt;  // canonical form is sorted
  }
  return prefixes;
}

}  // namespace cbl::oprf
