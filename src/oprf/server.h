// The blocklist service provider S of Fig. 2: preprocesses the raw
// blocklist under a secret mask R into 2^lambda prefix buckets, answers
// blinded queries, and optionally publishes the prefix list so clients
// can resolve most negatives locally. Includes the authorized-key rate
// limiter the paper recommends against service-exhaustion attacks.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/errors.h"
#include "common/thread_safety.h"
#include "common/rng.h"
#include "ec/ristretto.h"
#include "ec/scalar.h"
#include "obs/metrics.h"
#include "oprf/oracle.h"
#include "nizk/sigma.h"
#include "oprf/protocol.h"

namespace cbl::oprf {

/// Optional metadata source: maps a raw entry to plaintext metadata that
/// the server stores encrypted under a key only derivable by a client who
/// actually holds the listed entry (private-keyword-search-style
/// extension, Section IV-B "Support for metadata query").
using MetadataProvider = std::function<Bytes(const std::string& entry)>;

// Thread safety: handle() and the read accessors may run concurrently
// from many threads (the "considerable amount of users simultaneously"
// goal); maintenance operations (setup / rotate_key / add_entries /
// remove_entries / set_metadata_provider) take the write lock and may
// run concurrently with queries but not with each other.

// ct:key-holder — the mask R is the service's long-lived secret.
class OprfServer {
 public:
  OprfServer(Oracle oracle, unsigned lambda, Rng& rng);
  ~OprfServer();

  /// Data preprocessing (stage 1 of Fig. 2): samples a fresh mask R,
  /// blinds every entry and partitions into buckets. `num_threads` > 1
  /// parallelizes the exponentiations as in the paper's 8-core setup.
  void setup(std::span<const std::string> entries, unsigned num_threads = 1)
      CBL_EXCLUDES(data_mutex_);

  /// Key rotation: new R, same data ("S can run this protocol in rotation
  /// whenever there is a demand for adjusting R"). Bumps the epoch, which
  /// invalidates client caches.
  void rotate_key(unsigned num_threads = 1) CBL_EXCLUDES(data_mutex_);

  /// Incremental maintenance under the CURRENT mask R: blinds only the
  /// new entries (one exponentiation each) instead of re-running setup.
  /// Bumps the epoch once per call (bucket contents changed, so client
  /// caches must refresh). Returns how many entries were actually
  /// added/removed (duplicates and absentees are skipped).
  std::size_t add_entries(std::span<const std::string> entries)
      CBL_EXCLUDES(data_mutex_);
  std::size_t remove_entries(std::span<const std::string> entries)
      CBL_EXCLUDES(data_mutex_);
  bool serves(const std::string& entry) const CBL_EXCLUDES(data_mutex_) {
    cbl::ReaderMutexLock lock(data_mutex_);
    return entry_index_.contains(entry);
  }

  /// Online evaluation (stage 3 of Fig. 2). Throws ProtocolError on
  /// malformed queries or rate-limit violations.
  QueryResponse handle(const QueryRequest& request)
      CBL_EXCLUDES(data_mutex_, limiter_mutex_, rng_mutex_);

  /// Per-request outcome of evaluate_batch: handle()'s ProtocolError
  /// exits mapped to statuses so one bad request cannot abort a batch.
  struct BatchOutcome {
    enum class Status : std::uint8_t { kOk, kBadRequest, kRateLimited };
    Status status = Status::kBadRequest;
    /// The what() of the ProtocolError handle() would have thrown; empty
    /// on kOk.
    std::string error;
    QueryResponse response;  // populated only when status == kOk
  };

  /// Batched online evaluation, semantically identical to calling
  /// handle() per element — same responses byte-for-byte, same rate-limit
  /// accounting and validation outcomes — but all evaluations share one
  /// batched encode (RistrettoPoint::double_and_encode_batch over
  /// masked_i * (R/2)), paying a single field inversion for the whole
  /// batch instead of one inverse square root per query.
  std::vector<BatchOutcome> evaluate_batch(
      std::span<const QueryRequest> requests)
      CBL_EXCLUDES(data_mutex_, limiter_mutex_, rng_mutex_);

  /// The published key commitment g^R for the current epoch (the
  /// verifiable-OPRF anchor clients verify evaluation proofs against).
  /// Returned by value: a reference could be read mid-rotation while
  /// rebuild() swaps in the next epoch's commitment.
  ec::RistrettoPoint key_commitment() const CBL_EXCLUDES(data_mutex_) {
    cbl::ReaderMutexLock lock(data_mutex_);
    return key_commitment_;
  }

  static constexpr std::string_view kEvalProofDomain =
      "cbl/oprf/evaluation-proof/v1";

  /// Sorted list of non-empty prefixes, for distribution to clients.
  std::vector<std::uint32_t> prefix_list() const CBL_EXCLUDES(data_mutex_);

  /// Snapshot of every non-empty bucket's blinded entries (sorted within
  /// each bucket), keyed by prefix. This is what the transparency-log
  /// publisher commits to per epoch; the encodings are public data — the
  /// same bytes any querying client receives in bucket responses.
  std::map<std::uint32_t, std::vector<ec::RistrettoPoint::Encoding>>
  bucket_snapshot() const CBL_EXCLUDES(data_mutex_);

  std::uint64_t epoch() const CBL_EXCLUDES(data_mutex_) {
    cbl::ReaderMutexLock lock(data_mutex_);
    return epoch_;
  }

  /// Crash-recovery support: raises the epoch to at least `floor`. A
  /// rebuilt server restarts epoch numbering from zero, so without this
  /// a recovered service could re-serve an epoch number that clients
  /// already cached buckets for — under a DIFFERENT mask R, turning the
  /// stale cache into silently wrong membership answers. Recovery code
  /// must call this with (last served epoch) before going live; the next
  /// setup/rotation then advances past every epoch ever served.
  void restore_epoch(std::uint64_t floor) CBL_EXCLUDES(data_mutex_);

  /// Installs a hook invoked (under the data write lock) with the new
  /// epoch number at every epoch change — rebuilds, add/remove batches,
  /// and restore_epoch. Recovery code points this at a durable
  /// store::EpochLog so the "never recycle a served epoch" floor
  /// survives a crash; the hook must not call back into the server.
  /// Installing also fires the hook with the current epoch when it is
  /// non-zero, so the floor covers epochs served before installation.
  void set_epoch_listener(std::function<void(std::uint64_t)> listener)
      CBL_EXCLUDES(data_mutex_);
  unsigned lambda() const { return lambda_; }
  std::size_t entry_count() const CBL_EXCLUDES(data_mutex_) {
    cbl::ReaderMutexLock lock(data_mutex_);
    return entries_.size();
  }

  struct BucketStats {
    std::size_t buckets_total = 0;      // 2^lambda
    std::size_t buckets_nonempty = 0;
    std::size_t min_size = 0;           // over non-empty buckets
    std::size_t max_size = 0;
    double avg_size = 0.0;              // over all 2^lambda buckets
    /// The k of k-anonymity: a query is hidden among the entries of its
    /// bucket, so the guarantee is the minimum non-empty bucket size.
    std::size_t k_anonymity = 0;
    std::size_t avg_response_bytes = 0;
  };
  BucketStats stats() const CBL_EXCLUDES(data_mutex_);

  /// Sizes of all non-empty buckets (input to anonymity analysis).
  std::vector<std::size_t> bucket_sizes() const CBL_EXCLUDES(data_mutex_);

  // --- Rate limiting (authorized keys) -----------------------------------
  // All limiter maintenance locks limiter_mutex_ so it is safe against a
  // concurrent handle()/evaluate_batch limiter pass.
  void enable_rate_limiting(std::uint32_t max_queries_per_window)
      CBL_EXCLUDES(limiter_mutex_);
  void authorize_key(const std::string& key) CBL_EXCLUDES(limiter_mutex_);
  void revoke_key(const std::string& key) CBL_EXCLUDES(limiter_mutex_);
  /// Starts a new accounting window (driven by the host's clock).
  void advance_window() CBL_EXCLUDES(limiter_mutex_);

  // --- Metadata extension -------------------------------------------------
  void set_metadata_provider(MetadataProvider provider)
      CBL_EXCLUDES(data_mutex_);

  /// Derives the symmetric key protecting entry metadata from the OPRF
  /// output F(R, entry) = H(entry)^R. Exposed so the client can derive
  /// the same key after unblinding.
  static std::array<std::uint8_t, 32> metadata_key(
      const ec::RistrettoPoint::Encoding& oprf_output);

  /// Encrypts/decrypts metadata under a key (ChaCha20 stream + HMAC tag).
  static Bytes seal_metadata(const std::array<std::uint8_t, 32>& key,
                             ByteView plaintext);
  static std::optional<Bytes> open_metadata(
      const std::array<std::uint8_t, 32>& key, ByteView ciphertext);

 private:
  struct Bucket {
    std::vector<ec::RistrettoPoint::Encoding> blinded;  // sorted
    std::vector<Bytes> metadata;                        // aligned with blinded
  };

  /// Full preprocessing pass under a fresh mask. Takes rng_mutex_ for
  /// the mask sampling (nested inside the already-held exclusive data
  /// lock — see the DESIGN.md lock-ordering table).
  void rebuild(unsigned num_threads) CBL_REQUIRES(data_mutex_)
      CBL_EXCLUDES(rng_mutex_);
  void insert_into_bucket(const std::string& entry)
      CBL_REQUIRES(data_mutex_);
  /// Fires the epoch listener (if any) with the current epoch.
  void note_epoch_locked() CBL_REQUIRES(data_mutex_);

  const Oracle oracle_;  // stateless hash-to-group; safe to share
  const unsigned lambda_;

  mutable cbl::SharedMutex data_mutex_;  // lock: buckets / mask / epoch
  // ct:secret — the mask R. half_mask_ is R * 2^-1 mod l, refreshed with
  // mask_: the batched encode kernel produces encodings of 2*P, so hot
  // paths exponentiate by R/2 and let double_and_encode_batch supply the
  // doubling. ct:secret
  Secret<ec::Scalar> mask_ CBL_GUARDED_BY(data_mutex_);
  Secret<ec::Scalar> half_mask_ CBL_GUARDED_BY(data_mutex_);
  ec::RistrettoPoint key_commitment_ CBL_GUARDED_BY(data_mutex_);  // g^R
  std::uint64_t epoch_ CBL_GUARDED_BY(data_mutex_) = 0;
  /// Durability hook: told about every epoch change while the write
  /// lock is held, so the durable floor can never lag a served epoch.
  std::function<void(std::uint64_t)> epoch_listener_
      CBL_GUARDED_BY(data_mutex_);
  std::vector<std::string> entries_ CBL_GUARDED_BY(data_mutex_);
  std::unordered_map<std::string, std::uint32_t> entry_index_
      CBL_GUARDED_BY(data_mutex_);  // -> prefix
  std::map<std::uint32_t, Bucket> buckets_ CBL_GUARDED_BY(data_mutex_);
  MetadataProvider metadata_provider_ CBL_GUARDED_BY(data_mutex_);

  mutable cbl::Mutex limiter_mutex_;  // lock: rate-limiter config/counters
  // lock:unguarded(atomic on/off switch; the guarded limiter state below
  // is published before the release store that flips it on)
  std::atomic<bool> rate_limiting_{false};
  std::uint32_t max_per_window_ CBL_GUARDED_BY(limiter_mutex_) = 0;
  std::unordered_map<std::string, std::uint32_t> window_counts_
      CBL_GUARDED_BY(limiter_mutex_);
  std::unordered_map<std::string, bool> authorized_
      CBL_GUARDED_BY(limiter_mutex_);

  mutable cbl::Mutex rng_mutex_;  // lock: rng_ (evaluation-proof randomness)
  Rng& rng_ CBL_GUARDED_BY(rng_mutex_);

  // Observability handles (process-global cbl_oprf_* families, resolved
  // once in the constructor; see DESIGN.md "Observability").
  struct Metrics {
    obs::Counter* queries_ok;
    obs::Counter* queries_rate_limited;
    obs::Counter* queries_bad_request;
    obs::Counter* buckets_served;
    obs::Counter* buckets_omitted;  // client cache hits server-side
    obs::Counter* rebuilds;
    obs::Histogram* eval_ms;
    obs::Histogram* rebuild_ms;
    obs::Histogram* bucket_size;
    obs::Gauge* entries;
    obs::Gauge* epoch;
    obs::Gauge* buckets_nonempty;
    obs::Gauge* k_anonymity;
  };
  // lock:unguarded(handles resolved once in the constructor; increments
  // are lock-free atomics)
  Metrics metrics_;
  void refresh_data_gauges() CBL_REQUIRES(data_mutex_);
};

}  // namespace cbl::oprf
