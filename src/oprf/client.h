// The querying user C of Fig. 2: blinds queries, recovers verdicts, and
// implements the two latency/bandwidth optimizations of the paper —
// local prefix-list filtering (most negatives never touch the network)
// and per-prefix bucket caching within a key epoch.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/errors.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "oprf/oracle.h"
#include "oprf/protocol.h"
#include "oprf/server.h"

namespace cbl::oprf {

class OprfClient {
 public:
  OprfClient(Oracle oracle, unsigned lambda, Rng& rng);

  struct Prepared {
    QueryRequest request;
    PendingQuery pending;
  };

  /// Secure query (stage 2 of Fig. 2): m = H(u)^r plus the plaintext
  /// prefix. Expensive under the slow oracle — by design.
  Prepared prepare(std::string_view entry) const;

  /// Batched prepare(): one blinding factor per entry, drawn from the rng
  /// in entry order (a twin-seeded rng reproduces the sequential
  /// prepare() stream exactly), with every masked-query encoding produced
  /// by one shared double_and_encode_batch — the whole batch pays a
  /// single field inversion. Requests and pending state are byte- and
  /// value-identical to per-entry prepare() calls.
  std::vector<Prepared> blind_batch(std::span<const std::string> entries) const;

  struct Result {
    bool listed = false;
    /// Decrypted metadata when the entry is listed and the server attached
    /// any; nullopt otherwise.
    std::optional<Bytes> metadata;
  };

  /// Response recovery (stage 4): psi^(1/r), membership test against s_p.
  /// Updates the bucket cache. Throws ProtocolError if the server omitted
  /// the bucket without a matching cache entry.
  Result finish(const PendingQuery& pending, const QueryResponse& response);

  // --- Prefix list fast path ----------------------------------------------
  /// Installs the server-distributed prefix list.
  void set_prefix_list(std::vector<std::uint32_t> prefixes);
  bool has_prefix_list() const { return prefix_list_.has_value(); }

  /// False means "definitely not listed" — no interaction needed. True
  /// means the prefix collides with some blocklist entry, so an online
  /// query is required to decide.
  bool may_be_listed(std::string_view entry) const;

  // --- Verifiable OPRF ------------------------------------------------------
  /// Pin the server's published key commitment g^R; subsequent prepare()
  /// calls request an evaluation proof and finish() rejects responses
  /// whose DLEQ does not verify against the pinned commitment.
  void pin_key_commitment(const ec::RistrettoPoint& commitment) {
    pinned_commitment_ = commitment;
  }
  void clear_key_commitment() { pinned_commitment_.reset(); }

  // --- Cache ---------------------------------------------------------------
  void set_api_key(std::string key) { api_key_ = std::move(key); }
  std::size_t cached_buckets() const { return cache_.size(); }
  void clear_cache() { cache_.clear(); }

  unsigned lambda() const { return lambda_; }

 private:
  struct CachedBucket {
    std::uint64_t epoch;
    std::vector<ec::RistrettoPoint::Encoding> bucket;
    std::vector<Bytes> metadata;
  };

  Oracle oracle_;
  unsigned lambda_;
  Rng& rng_;
  std::string api_key_;
  std::optional<std::unordered_set<std::uint32_t>> prefix_list_;
  std::optional<ec::RistrettoPoint> pinned_commitment_;
  std::unordered_map<std::uint32_t, CachedBucket> cache_;

  // Observability handles (cbl_oprf_client_* families).
  struct Metrics {
    obs::Counter* fastpath_local;   // prefix list resolved it offline
    obs::Counter* fastpath_online;  // prefix collision, online query needed
    obs::Counter* cache_hits;       // server omitted the bucket
    obs::Counter* cache_misses;     // fresh bucket transferred
  };
  Metrics metrics_;
};

}  // namespace cbl::oprf
