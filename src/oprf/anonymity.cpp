#include "oprf/anonymity.h"

#include <algorithm>
#include <cmath>

namespace cbl::oprf {

AnonymityReport analyze_buckets(const std::vector<std::size_t>& bucket_sizes) {
  AnonymityReport report;
  for (const std::size_t size : bucket_sizes) {
    if (size == 0) continue;
    ++report.nonempty_buckets;
    report.total_entries += size;
    report.k_min = report.k_min == 0 ? size : std::min(report.k_min, size);
    report.k_max = std::max(report.k_max, size);
  }
  if (report.total_entries == 0) return report;

  const double total = static_cast<double>(report.total_entries);
  double expected = 0, shannon = 0;
  for (const std::size_t size : bucket_sizes) {
    if (size == 0) continue;
    const double s = static_cast<double>(size);
    expected += s * s / total;
    shannon += (s / total) * std::log2(s);
  }
  report.expected_anonymity_set = expected;
  report.shannon_entropy_bits = shannon;
  report.min_entropy_bits = std::log2(static_cast<double>(report.k_min));
  return report;
}

}  // namespace cbl::oprf
