// The random oracle H : {0,1}* -> G of Fig. 2, in two flavours:
//  - fast:  SHA-512 + ristretto255 one-way map;
//  - slow:  Argon2id (memory-hard) + one-way map, the paper's
//           "inefficient oracle" that makes bogus queries costly (DoS
//           defence) while server responses stay cheap.
// The bucket prefix comes from SHA-256 of the raw entry so that entries
// distribute uniformly regardless of which oracle evaluates them.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bytes.h"
#include "ec/ristretto.h"
#include "hash/argon2.h"

namespace cbl::oprf {

class Oracle {
 public:
  enum class Kind { kFast, kSlow };

  /// SHA-512-based oracle (Table I row "Sha256"-class setting).
  static Oracle fast();

  /// Argon2id-based slow oracle. The paper's evaluation uses
  /// memory = 4 MiB, time cost = 3, sequential (parallelism 1).
  static Oracle slow(const hash::Argon2Params& params);

  /// Paper defaults for the slow oracle.
  static Oracle slow_paper_defaults();

  /// H(entry): maps an address string to a group element.
  ec::RistrettoPoint map_to_group(ByteView entry) const;

  /// Batched H: element i equals map_to_group(entries[i]) exactly. The
  /// fast oracle routes through RistrettoPoint::batch_hash_to_group; the
  /// slow oracle is memory-hard by design, so it stays a per-entry loop.
  std::vector<ec::RistrettoPoint> map_to_group_batch(
      std::span<const Bytes> entries) const;

  /// The lambda-bit bucket prefix of an entry (lambda in [1, 32]).
  static std::uint32_t prefix(ByteView entry, unsigned lambda);

  Kind kind() const { return kind_; }
  const hash::Argon2Params& argon2_params() const { return params_; }

 private:
  explicit Oracle(Kind kind, const hash::Argon2Params& params)
      : kind_(kind), params_(params) {}

  Kind kind_;
  hash::Argon2Params params_;
};

}  // namespace cbl::oprf
