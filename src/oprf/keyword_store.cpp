#include "oprf/keyword_store.h"

#include <algorithm>

namespace cbl::oprf {

KeywordStore::KeywordStore(Oracle oracle, unsigned lambda, Rng& rng)
    : oracle_(oracle), lambda_(lambda), rng_(rng) {
  if (lambda == 0 || lambda > 32) {
    throw std::invalid_argument("KeywordStore: lambda must be in [1,32]");
  }
}

void KeywordStore::build(
    const std::vector<std::pair<std::string, Bytes>>& records) {
  mask_ = Secret(ec::Scalar::random(rng_));
  buckets_.clear();
  record_count_ = 0;

  for (const auto& [keyword, value] : records) {
    const Bytes raw = to_bytes(keyword);
    TaggedRecord record;
    record.tag = (oracle_.map_to_group(raw) * mask_).encode();
    record.ciphertext =
        OprfServer::seal_metadata(OprfServer::metadata_key(record.tag), value);
    buckets_[Oracle::prefix(raw, lambda_)].push_back(std::move(record));
    ++record_count_;
  }
  for (auto& [prefix, bucket] : buckets_) {
    std::sort(bucket.begin(), bucket.end(),
              [](const TaggedRecord& a, const TaggedRecord& b) {
                return a.tag < b.tag;
              });
  }
}

KeywordStore::LookupResponse KeywordStore::lookup(
    const LookupRequest& request) const {
  if (request.prefix >> lambda_ != 0) {
    throw ProtocolError("KeywordStore: prefix out of range");
  }
  const auto blinded = ec::RistrettoPoint::decode(request.blinded_keyword);
  if (!blinded) {
    throw ProtocolError("KeywordStore: malformed blinded keyword");
  }
  LookupResponse response;
  response.evaluated = (*blinded * mask_).encode();
  const auto it = buckets_.find(request.prefix);
  if (it != buckets_.end()) response.bucket = it->second;
  return response;
}

std::pair<KeywordStore::LookupRequest, KeywordStore::Pending>
KeywordStore::prepare(const Oracle& oracle, unsigned lambda,
                      std::string_view keyword, Rng& rng) {
  const Bytes raw = to_bytes(keyword);
  Pending pending;
  pending.blinding = Secret(ec::Scalar::random(rng));
  pending.prefix = Oracle::prefix(raw, lambda);

  LookupRequest request;
  request.prefix = pending.prefix;
  request.blinded_keyword =
      (oracle.map_to_group(raw) * pending.blinding).encode();
  return {request, pending};
}

std::optional<Bytes> KeywordStore::finish(const Pending& pending,
                                          const LookupResponse& response) {
  const auto evaluated = ec::RistrettoPoint::decode(response.evaluated);
  if (!evaluated) {
    throw ProtocolError("KeywordStore: malformed evaluation");
  }
  const auto tag = (*evaluated * pending.blinding.invert()).encode();
  const auto it = std::lower_bound(
      response.bucket.begin(), response.bucket.end(), tag,
      [](const TaggedRecord& r, const ec::RistrettoPoint::Encoding& t) {
        return r.tag < t;
      });
  if (it == response.bucket.end() || !(it->tag == tag)) return std::nullopt;
  return OprfServer::open_metadata(OprfServer::metadata_key(tag),
                                   it->ciphertext);
}

std::optional<Bytes> KeywordStore::client_lookup(std::string_view keyword,
                                                 Rng& rng) const {
  const auto [request, pending] = prepare(oracle_, lambda_, keyword, rng);
  return finish(pending, lookup(request));
}

}  // namespace cbl::oprf
