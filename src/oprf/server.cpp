#include "oprf/server.h"

#include <algorithm>
#include <thread>

#include "exec/worker_pool.h"
#include "hash/sha256.h"

namespace cbl::oprf {

namespace {

// 2^-1 mod l: hot paths exponentiate by R/2 and let the batched encode
// kernel supply the doubling (see RistrettoPoint::double_and_encode_batch).
const ec::Scalar& inv_two() {
  static const ec::Scalar v = ec::Scalar::from_u64(2).invert();
  return v;
}

}  // namespace

OprfServer::OprfServer(Oracle oracle, unsigned lambda, Rng& rng)
    : oracle_(oracle), lambda_(lambda), rng_(rng) {
  if (lambda == 0 || lambda > 32) {
    throw std::invalid_argument("OprfServer: lambda must be in [1,32]");
  }
  auto& reg = obs::MetricsRegistry::global();
  const auto query_counter = [&](const char* result) {
    return &reg.counter("cbl_oprf_queries_total", {{"result", result}},
                        "Online OPRF evaluations by outcome");
  };
  metrics_.queries_ok = query_counter("ok");
  metrics_.queries_rate_limited = query_counter("rate_limited");
  metrics_.queries_bad_request = query_counter("bad_request");
  metrics_.buckets_served =
      &reg.counter("cbl_oprf_buckets_served_total", {},
                   "Query responses that carried the full bucket");
  metrics_.buckets_omitted =
      &reg.counter("cbl_oprf_buckets_omitted_total", {},
                   "Query responses elided thanks to the client cache hint");
  metrics_.rebuilds = &reg.counter(
      "cbl_oprf_rebuilds_total", {},
      "Full preprocessing passes (setup and key rotations)");
  metrics_.eval_ms = &reg.histogram(
      "cbl_oprf_eval_ms", obs::Histogram::default_latency_ms_buckets(), {},
      "Server-side oblivious evaluation time per query");
  metrics_.rebuild_ms = &reg.histogram(
      "cbl_oprf_rebuild_ms", obs::Histogram::default_latency_ms_buckets(), {},
      "Blind-everything preprocessing duration");
  metrics_.bucket_size = &reg.histogram(
      "cbl_oprf_bucket_size", obs::Histogram::log_buckets(1.0, 1e6, 3), {},
      "Non-empty bucket sizes at each rebuild (the k of k-anonymity)");
  metrics_.entries =
      &reg.gauge("cbl_oprf_entries", {}, "Blocklist entries currently served");
  metrics_.epoch = &reg.gauge("cbl_oprf_epoch", {}, "Current key epoch");
  metrics_.buckets_nonempty =
      &reg.gauge("cbl_oprf_buckets_nonempty", {}, "Non-empty prefix buckets");
  metrics_.k_anonymity = &reg.gauge(
      "cbl_oprf_k_anonymity", {}, "Minimum non-empty bucket size");
}

OprfServer::~OprfServer() {
  mask_.wipe();
  half_mask_.wipe();
}

void OprfServer::refresh_data_gauges() {
  metrics_.entries->set(static_cast<double>(entries_.size()));
  metrics_.epoch->set(static_cast<double>(epoch_));
  metrics_.buckets_nonempty->set(static_cast<double>(buckets_.size()));
  std::size_t min_size = 0;
  for (const auto& [prefix, bucket] : buckets_) {
    const std::size_t n = bucket.blinded.size();
    min_size = min_size == 0 ? n : std::min(min_size, n);
  }
  metrics_.k_anonymity->set(static_cast<double>(min_size));
}

void OprfServer::setup(std::span<const std::string> entries,
                       unsigned num_threads) {
  WriterMutexLock lock(data_mutex_);
  entries_.assign(entries.begin(), entries.end());
  rebuild(num_threads);
}

void OprfServer::rotate_key(unsigned num_threads) {
  WriterMutexLock lock(data_mutex_);
  rebuild(num_threads);
}

void OprfServer::restore_epoch(std::uint64_t floor) {
  WriterMutexLock lock(data_mutex_);
  if (epoch_ < floor) {
    epoch_ = floor;
    note_epoch_locked();
    refresh_data_gauges();
  }
}

void OprfServer::set_epoch_listener(
    std::function<void(std::uint64_t)> listener) {
  WriterMutexLock lock(data_mutex_);
  epoch_listener_ = std::move(listener);
  // Cover epochs served before the hook existed.
  if (epoch_ > 0) note_epoch_locked();
}

void OprfServer::note_epoch_locked() {
  if (epoch_listener_) epoch_listener_(epoch_);
}

void OprfServer::rebuild(unsigned num_threads) {
  const auto& clock = obs::MetricsRegistry::global().clock();
  const std::uint64_t t0 = clock.now_ns();
  {
    // rng_mutex_ nested inside the held data_mutex_ (documented order:
    // data_mutex_ -> rng_mutex_) so the sampling cannot interleave with a
    // concurrent evaluation-proof draw.
    MutexLock rng_lock(rng_mutex_);
    mask_ = Secret(ec::Scalar::random(rng_));
  }
  half_mask_ = mask_ * inv_two();
  key_commitment_ = ec::RistrettoPoint::base() * mask_;
  ++epoch_;
  note_epoch_locked();
  buckets_.clear();

  // Blind all entries: b = H(q)^R, computed as H(q)^(R/2) batch-doubled so
  // each chunk pays one field inversion instead of one per entry. The
  // exponentiations dominate, so chunks are sharded over worker threads
  // (exec::parallel_for_chunks slices by index only — the per-entry bytes
  // are identical for every thread count); bucket insertion stays
  // sequential.
  std::vector<ec::RistrettoPoint::Encoding> blinded(entries_.size());
  std::vector<std::uint32_t> prefixes(entries_.size());

  // The worker lambda runs on threads that do not themselves hold
  // data_mutex_ — the exclusive lock held by THIS caller for the whole
  // parallel region is what makes the shared reads safe. The analysis
  // cannot see across that hand-off, so the guarded state the workers
  // need is bound to locals here, under the lock.
  const std::vector<std::string>& entries = entries_;
  const Secret<ec::Scalar> half_mask = half_mask_;
  auto work = [&](std::size_t begin, std::size_t end) {
    std::vector<Bytes> raw(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      raw[i - begin] = to_bytes(entries[i]);
    }
    const auto hashed = oracle_.map_to_group_batch(raw);
    std::vector<ec::RistrettoPoint> halves(hashed.size());
    for (std::size_t j = 0; j < hashed.size(); ++j) {
      halves[j] = hashed[j] * half_mask;
    }
    const auto encodings =
        ec::RistrettoPoint::double_and_encode_batch(halves);
    for (std::size_t j = 0; j < encodings.size(); ++j) {
      blinded[begin + j] = encodings[j];
      prefixes[begin + j] = Oracle::prefix(raw[j], lambda_);
    }
  };
  exec::parallel_for_chunks(nullptr, entries_.size(), num_threads, work);

  entry_index_.clear();
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    entry_index_[entries_[i]] = prefixes[i];
    Bucket& bucket = buckets_[prefixes[i]];
    bucket.blinded.push_back(blinded[i]);
    if (metadata_provider_) {
      bucket.metadata.push_back(
          seal_metadata(metadata_key(blinded[i]),
                        metadata_provider_(entries_[i])));
    }
  }
  // Sort each bucket (with metadata riding along) for binary search and
  // for a canonical wire representation.
  for (auto& [prefix, bucket] : buckets_) {
    std::vector<std::size_t> order(bucket.blinded.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return bucket.blinded[a] < bucket.blinded[b];
    });
    Bucket sorted;
    sorted.blinded.reserve(order.size());
    for (const std::size_t i : order) {
      sorted.blinded.push_back(bucket.blinded[i]);
      if (!bucket.metadata.empty()) sorted.metadata.push_back(bucket.metadata[i]);
    }
    bucket = std::move(sorted);
  }

  metrics_.rebuilds->inc();
  metrics_.rebuild_ms->observe(
      static_cast<double>(clock.now_ns() - t0) / 1e6);
  for (const auto& [prefix, bucket] : buckets_) {
    metrics_.bucket_size->observe(
        static_cast<double>(bucket.blinded.size()));
  }
  refresh_data_gauges();
}

QueryResponse OprfServer::handle(const QueryRequest& request) {
  auto& registry = obs::MetricsRegistry::global();
  const bool observing = registry.enabled();
  if (rate_limiting_.load(std::memory_order_acquire)) {
    MutexLock limiter_lock(limiter_mutex_);
    const auto it = authorized_.find(request.api_key);
    if (it == authorized_.end() || !it->second) {
      metrics_.queries_rate_limited->inc();
      throw ProtocolError("OprfServer: unauthorized api key");
    }
    if (++window_counts_[request.api_key] > max_per_window_) {
      metrics_.queries_rate_limited->inc();
      throw ProtocolError("OprfServer: rate limit exceeded");
    }
  }
  ReaderMutexLock lock(data_mutex_);
  if (request.prefix >> lambda_ != 0) {
    metrics_.queries_bad_request->inc();
    throw ProtocolError("OprfServer: prefix out of range for lambda");
  }
  const auto masked = ec::RistrettoPoint::decode(request.masked_query);
  if (!masked) {
    metrics_.queries_bad_request->inc();
    throw ProtocolError("OprfServer: malformed masked query");
  }

  const std::uint64_t t0 = observing ? registry.clock().now_ns() : 0;
  QueryResponse response;
  const ec::RistrettoPoint evaluated = *masked * mask_;
  response.evaluated = evaluated.encode();
  response.epoch = epoch_;
  if (request.want_evaluation_proof) {
    MutexLock rng_lock(rng_mutex_);
    response.evaluation_proof = nizk::DleqProof::prove(
        ec::RistrettoPoint::base(), key_commitment_, *masked, evaluated,
        mask_.expose_secret(), kEvalProofDomain, rng_);
  }
  if (observing) {
    metrics_.eval_ms->observe(
        static_cast<double>(registry.clock().now_ns() - t0) / 1e6);
  }
  metrics_.queries_ok->inc();

  if (request.cached_epoch == epoch_) {
    response.bucket_omitted = true;
    metrics_.buckets_omitted->inc();
    return response;
  }
  metrics_.buckets_served->inc();
  const auto it = buckets_.find(request.prefix);
  if (it != buckets_.end()) {
    response.bucket = it->second.blinded;
    response.metadata = it->second.metadata;
  }
  return response;
}

std::vector<OprfServer::BatchOutcome> OprfServer::evaluate_batch(
    std::span<const QueryRequest> requests) {
  auto& registry = obs::MetricsRegistry::global();
  const bool observing = registry.enabled();
  std::vector<BatchOutcome> out(requests.size());

  const auto fail = [&](std::size_t i, BatchOutcome::Status status,
                        const char* what) {
    out[i].status = status;
    out[i].error = what;
    (status == BatchOutcome::Status::kRateLimited
         ? metrics_.queries_rate_limited
         : metrics_.queries_bad_request)
        ->inc();
  };

  if (rate_limiting_.load(std::memory_order_acquire)) {
    // One limiter pass for the whole batch, with the same per-request
    // accounting handle() performs.
    MutexLock limiter_lock(limiter_mutex_);
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const auto it = authorized_.find(requests[i].api_key);
      if (it == authorized_.end() || !it->second) {
        fail(i, BatchOutcome::Status::kRateLimited,
             "OprfServer: unauthorized api key");
      } else if (++window_counts_[requests[i].api_key] > max_per_window_) {
        fail(i, BatchOutcome::Status::kRateLimited,
             "OprfServer: rate limit exceeded");
      } else {
        out[i].status = BatchOutcome::Status::kOk;  // provisional
      }
    }
  } else {
    for (auto& o : out) o.status = BatchOutcome::Status::kOk;
  }

  ReaderMutexLock lock(data_mutex_);
  std::vector<std::size_t> live;
  std::vector<ec::RistrettoPoint> masked_points;
  live.reserve(requests.size());
  masked_points.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (out[i].status != BatchOutcome::Status::kOk) continue;
    if (requests[i].prefix >> lambda_ != 0) {
      fail(i, BatchOutcome::Status::kBadRequest,
           "OprfServer: prefix out of range for lambda");
      continue;
    }
    const auto masked = ec::RistrettoPoint::decode(requests[i].masked_query);
    if (!masked) {
      fail(i, BatchOutcome::Status::kBadRequest,
           "OprfServer: malformed masked query");
      continue;
    }
    live.push_back(i);
    masked_points.push_back(*masked);
  }

  // The crypto core: all exponentiations use R/2, the shared batched
  // encode doubles them back to psi_i = masked_i^R.
  const std::uint64_t t0 = observing ? registry.clock().now_ns() : 0;
  std::vector<ec::RistrettoPoint> halves;
  halves.reserve(live.size());
  for (const auto& m : masked_points) halves.push_back(m * half_mask_);
  const auto encodings = ec::RistrettoPoint::double_and_encode_batch(halves);
  if (observing && !live.empty()) {
    const double per_query_ms =
        static_cast<double>(registry.clock().now_ns() - t0) / 1e6 /
        static_cast<double>(live.size());
    for (std::size_t k = 0; k < live.size(); ++k) {
      metrics_.eval_ms->observe(per_query_ms);
    }
  }

  for (std::size_t k = 0; k < live.size(); ++k) {
    const std::size_t i = live[k];
    const QueryRequest& request = requests[i];
    QueryResponse& response = out[i].response;
    response.evaluated = encodings[k];
    response.epoch = epoch_;
    if (request.want_evaluation_proof) {
      const ec::RistrettoPoint evaluated = halves[k] + halves[k];
      MutexLock rng_lock(rng_mutex_);
      response.evaluation_proof = nizk::DleqProof::prove(
          ec::RistrettoPoint::base(), key_commitment_, masked_points[k],
          evaluated, mask_.expose_secret(), kEvalProofDomain, rng_);
    }
    metrics_.queries_ok->inc();
    if (request.cached_epoch == epoch_) {
      response.bucket_omitted = true;
      metrics_.buckets_omitted->inc();
      continue;
    }
    metrics_.buckets_served->inc();
    const auto it = buckets_.find(request.prefix);
    if (it != buckets_.end()) {
      response.bucket = it->second.blinded;
      response.metadata = it->second.metadata;
    }
  }
  return out;
}

void OprfServer::insert_into_bucket(const std::string& entry) {
  const Bytes raw = to_bytes(entry);
  const auto blinded = (oracle_.map_to_group(raw) * mask_).encode();
  const std::uint32_t prefix = Oracle::prefix(raw, lambda_);
  Bucket& bucket = buckets_[prefix];
  const auto it =
      std::lower_bound(bucket.blinded.begin(), bucket.blinded.end(), blinded);
  const auto offset = it - bucket.blinded.begin();
  bucket.blinded.insert(it, blinded);
  if (metadata_provider_) {
    bucket.metadata.insert(bucket.metadata.begin() + offset,
                           seal_metadata(metadata_key(blinded),
                                         metadata_provider_(entry)));
  }
  entry_index_[entry] = prefix;
}

std::size_t OprfServer::add_entries(std::span<const std::string> entries) {
  WriterMutexLock lock(data_mutex_);
  std::size_t added = 0;
  for (const auto& entry : entries) {
    if (entry_index_.contains(entry)) continue;
    insert_into_bucket(entry);
    entries_.push_back(entry);
    ++added;
  }
  if (added > 0) {
    ++epoch_;
    note_epoch_locked();
    refresh_data_gauges();
  }
  return added;
}

std::size_t OprfServer::remove_entries(std::span<const std::string> entries) {
  WriterMutexLock lock(data_mutex_);
  std::size_t removed = 0;
  for (const auto& entry : entries) {
    const auto idx = entry_index_.find(entry);
    if (idx == entry_index_.end()) continue;
    // Recompute the blinded value to locate it inside the sorted bucket.
    const auto blinded =
        (oracle_.map_to_group(to_bytes(entry)) * mask_).encode();
    Bucket& bucket = buckets_[idx->second];
    const auto it = std::lower_bound(bucket.blinded.begin(),
                                     bucket.blinded.end(), blinded);
    if (it != bucket.blinded.end() && *it == blinded) {
      const auto offset = it - bucket.blinded.begin();
      bucket.blinded.erase(it);
      if (!bucket.metadata.empty()) {
        bucket.metadata.erase(bucket.metadata.begin() + offset);
      }
      if (bucket.blinded.empty()) buckets_.erase(idx->second);
      ++removed;
    }
    entry_index_.erase(idx);
    std::erase(entries_, entry);
  }
  if (removed > 0) {
    ++epoch_;
    note_epoch_locked();
    refresh_data_gauges();
  }
  return removed;
}

std::vector<std::uint32_t> OprfServer::prefix_list() const {
  ReaderMutexLock lock(data_mutex_);
  std::vector<std::uint32_t> out;
  out.reserve(buckets_.size());
  for (const auto& [prefix, bucket] : buckets_) out.push_back(prefix);
  return out;  // std::map iteration order is already sorted
}

std::map<std::uint32_t, std::vector<ec::RistrettoPoint::Encoding>>
OprfServer::bucket_snapshot() const {
  ReaderMutexLock lock(data_mutex_);
  std::map<std::uint32_t, std::vector<ec::RistrettoPoint::Encoding>> out;
  for (const auto& [prefix, bucket] : buckets_) {
    out.emplace(prefix, bucket.blinded);
  }
  return out;
}

OprfServer::BucketStats OprfServer::stats() const {
  ReaderMutexLock lock(data_mutex_);
  BucketStats s;
  s.buckets_total = std::size_t{1} << lambda_;
  s.buckets_nonempty = buckets_.size();
  std::size_t total = 0;
  for (const auto& [prefix, bucket] : buckets_) {
    const std::size_t n = bucket.blinded.size();
    total += n;
    s.min_size = s.min_size == 0 ? n : std::min(s.min_size, n);
    s.max_size = std::max(s.max_size, n);
  }
  s.avg_size = s.buckets_total == 0
                   ? 0.0
                   : static_cast<double>(total) /
                         static_cast<double>(s.buckets_total);
  s.k_anonymity = s.min_size;
  QueryResponse probe;
  s.avg_response_bytes =
      probe.wire_size() +
      static_cast<std::size_t>(s.avg_size * sizeof(ec::RistrettoPoint::Encoding));
  return s;
}

std::vector<std::size_t> OprfServer::bucket_sizes() const {
  ReaderMutexLock lock(data_mutex_);
  std::vector<std::size_t> sizes;
  sizes.reserve(buckets_.size());
  for (const auto& [prefix, bucket] : buckets_) {
    sizes.push_back(bucket.blinded.size());
  }
  return sizes;
}

void OprfServer::enable_rate_limiting(std::uint32_t max_queries_per_window) {
  MutexLock limiter_lock(limiter_mutex_);
  max_per_window_ = max_queries_per_window;
  // Release store pairs with the acquire load in handle()/evaluate_batch:
  // the window bound above is visible before any limiter pass runs.
  rate_limiting_.store(true, std::memory_order_release);
}

void OprfServer::authorize_key(const std::string& key) {
  MutexLock limiter_lock(limiter_mutex_);
  authorized_[key] = true;
}

void OprfServer::revoke_key(const std::string& key) {
  MutexLock limiter_lock(limiter_mutex_);
  authorized_[key] = false;
}

void OprfServer::advance_window() {
  MutexLock limiter_lock(limiter_mutex_);
  window_counts_.clear();
}

void OprfServer::set_metadata_provider(MetadataProvider provider) {
  WriterMutexLock lock(data_mutex_);
  metadata_provider_ = std::move(provider);
}

std::array<std::uint8_t, 32> OprfServer::metadata_key(
    const ec::RistrettoPoint::Encoding& oprf_output) {
  const Bytes okm = hash::hkdf_sha256(
      ByteView(oprf_output.data(), oprf_output.size()),
      to_bytes("cbl/oprf/metadata/salt"), to_bytes("metadata-key"), 32);
  std::array<std::uint8_t, 32> key;
  std::copy(okm.begin(), okm.end(), key.begin());
  return key;
}

Bytes OprfServer::seal_metadata(const std::array<std::uint8_t, 32>& key,
                                ByteView plaintext) {
  // Stream-cipher encryption with a zero nonce is safe here because each
  // key is unique per (entry, epoch) pair; integrity from HMAC-SHA256/16.
  ChaChaRng stream(key);
  Bytes ciphertext(plaintext.begin(), plaintext.end());
  const Bytes pad = stream.bytes(ciphertext.size());
  for (std::size_t i = 0; i < ciphertext.size(); ++i) ciphertext[i] ^= pad[i];
  const auto tag = hash::hmac_sha256(key, ciphertext);
  Bytes out(tag.begin(), tag.begin() + 16);
  append(out, ciphertext);
  return out;
}

std::optional<Bytes> OprfServer::open_metadata(
    const std::array<std::uint8_t, 32>& key, ByteView ciphertext) {
  if (ciphertext.size() < 16) return std::nullopt;
  const ByteView tag(ciphertext.data(), 16);
  const ByteView body(ciphertext.data() + 16, ciphertext.size() - 16);
  const auto expected = hash::hmac_sha256(key, body);
  if (!constant_time_eq(tag, ByteView(expected.data(), 16))) {
    return std::nullopt;
  }
  ChaChaRng stream(key);
  Bytes plaintext(body.begin(), body.end());
  const Bytes pad = stream.bytes(plaintext.size());
  for (std::size_t i = 0; i < plaintext.size(); ++i) plaintext[i] ^= pad[i];
  return plaintext;
}

}  // namespace cbl::oprf
