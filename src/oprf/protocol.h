// Wire messages of the privacy-preserving membership query protocol
// (Fig. 2), plus size accounting used by the Table I / Fig. 6 benches.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/secret.h"
#include "ec/ristretto.h"
#include "nizk/sigma.h"

namespace cbl::oprf {

inline constexpr std::uint64_t kNoEpoch = ~std::uint64_t{0};

/// C -> S: the lambda-bit plaintext prefix plus the blinded query
/// m = H(u)^r. `cached_epoch` lets a client that already holds the bucket
/// for this prefix (same key epoch) skip the bucket in the response.
struct QueryRequest {
  std::uint32_t prefix = 0;
  ec::RistrettoPoint::Encoding masked_query{};
  std::uint64_t cached_epoch = kNoEpoch;
  std::string api_key;  // empty when rate limiting is disabled
  /// Verifiable-OPRF upgrade: ask the server to prove psi = m^R against
  /// its published key commitment g^R (DLEQ). Turns the honest-but-
  /// curious evaluation assumption into a checked property.
  bool want_evaluation_proof = false;

  /// Serialized size in bytes (prefix packed into ceil(lambda/8) bytes).
  std::size_t wire_size(unsigned lambda) const {
    return (lambda + 7) / 8 + masked_query.size() + api_key.size();
  }
};

/// S -> C: the evaluated query psi = m^R and the bucket s_p of all
/// blinded blocklist entries sharing the prefix. Optional per-entry
/// encrypted metadata rides along, index-aligned with the bucket.
struct QueryResponse {
  ec::RistrettoPoint::Encoding evaluated{};
  std::uint64_t epoch = 0;
  bool bucket_omitted = false;
  std::vector<ec::RistrettoPoint::Encoding> bucket;
  std::vector<Bytes> metadata;  // empty, or one ciphertext per bucket entry
  /// Present when the request set want_evaluation_proof: DLEQ showing
  /// log_g(key_commitment) == log_m(evaluated).
  std::optional<nizk::DleqProof> evaluation_proof;

  std::size_t wire_size() const {
    std::size_t n = evaluated.size() + sizeof(epoch) + 1;
    n += bucket.size() * ec::RistrettoPoint::Encoding{}.size();
    for (const auto& m : metadata) n += m.size() + 2;
    if (evaluation_proof) n += nizk::DleqProof::kWireSize;
    return n;
  }
};

/// Client-side state kept between prepare() and finish().
// ct:key-holder — the blinding factor is what keeps the query private.
struct PendingQuery {
  Secret<ec::Scalar> blinding;  // r  ct:secret
  ec::RistrettoPoint hashed;    // H(u)
  std::uint32_t prefix = 0;
  bool used_cache_hint = false;

  PendingQuery() = default;
  PendingQuery(const PendingQuery&) = default;
  PendingQuery(PendingQuery&&) = default;
  PendingQuery& operator=(const PendingQuery&) = default;
  PendingQuery& operator=(PendingQuery&&) = default;
  ~PendingQuery() { blinding.wipe(); }
};

}  // namespace cbl::oprf
