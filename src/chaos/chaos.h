// cbl::chaos — scripted fault injection for the simulated network.
//
// A FaultInjector wraps a net::Transport behind the same net::Channel
// call surface the clients use, and perturbs traffic according to a
// seeded FaultPlan: per-leg drops, latency spikes and heavy tails,
// response corruption and truncation, duplicate delivery, per-endpoint
// blackout windows, and endpoint crash-restart. Everything is driven by
// one ChaCha stream seeded from the plan, and all scheduling reads the
// injected (virtual) clock — so a failing chaos run replays bit-exactly
// from its printed seed.
//
// The injector is a *channel* fault model, not an adversary: it damages
// frames in flight the way a lossy WAN would, which the response-frame
// checksum must turn into kMalformed (never into a wrong membership
// verdict). Lying servers are out of scope here — that is the
// verifiable-OPRF layer's problem.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "net/transport.h"
#include "obs/clock.h"

namespace cbl::chaos {

/// Half-open interval of virtual time during which an endpoint is
/// unreachable (both legs black-holed).
struct Window {
  double start_ms = 0.0;
  double end_ms = 0.0;
  bool contains(double t_ms) const { return t_ms >= start_ms && t_ms < end_ms; }
};

/// Extra latency on top of the transport's base distribution.
struct LatencyFault {
  double spike_prob = 0.0;  // chance of a fixed spike per call
  double spike_ms = 0.0;
  double tail_prob = 0.0;       // chance of a Pareto heavy-tail draw
  double tail_scale_ms = 0.0;   // Pareto scale
  double tail_alpha = 1.5;      // Pareto shape (smaller = heavier tail)
  double tail_cap_ms = 5000.0;  // sanity cap on a single tail draw
};

/// Fault mix for one endpoint (or the default for all of them).
/// Probabilities are per call and independent.
struct EndpointFaults {
  double drop_request = 0.0;   // lost before the server sees it
  double drop_response = 0.0;  // lost after the server answered
  LatencyFault latency;
  double corrupt_prob = 0.0;    // flip one random response bit
  double truncate_prob = 0.0;   // cut the response short
  double duplicate_prob = 0.0;  // deliver the request twice
  std::vector<Window> blackouts;
  /// Virtual time at which the endpoint crashes (handler torn down);
  /// negative = never.
  double crash_at_ms = -1.0;
  /// Virtual time at which the endpoint may come back; the registered
  /// restart hook runs lazily on the first call after this instant.
  /// Negative = stays down.
  double restart_at_ms = -1.0;
};

/// A complete, replayable chaos schedule.
struct FaultPlan {
  std::string name;
  std::uint64_t seed = 0;
  EndpointFaults all;  // default faults for every endpoint
  std::map<std::string, EndpointFaults> per_endpoint;  // overrides
  /// One-line human summary (name, seed, active fault classes) for
  /// failure reports: paste the seed back to replay the run.
  std::string describe() const;
};

/// What the injector actually did — asserted against obs counters.
struct ChaosStats {
  std::uint64_t calls = 0;
  std::uint64_t blackout_drops = 0;
  std::uint64_t dropped_requests = 0;
  std::uint64_t dropped_responses = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t truncated = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t delayed = 0;
  std::uint64_t crashes = 0;
  std::uint64_t restarts = 0;
};

/// The chaos channel. Wraps a concrete Transport (it needs sample_rtt()
/// and endpoint teardown, not just the call surface) and applies the
/// plan to every call flowing through.
class FaultInjector final : public net::Channel {
 public:
  /// `clock` is the virtual time source for blackout/crash scheduling;
  /// nullptr falls back to the global obs registry clock.
  FaultInjector(net::Transport& inner, FaultPlan plan,
                const obs::Clock* clock = nullptr);

  /// Installs the crash-recovery procedure for an endpoint: tear-down is
  /// the injector's job (unregister at crash_at_ms); the hook's job is to
  /// bring a FRESH service back — rebuild state, restore_epoch past every
  /// epoch already served, re-register the handler.
  void set_restart_hook(const std::string& endpoint,
                        std::function<void()> hook);

  net::CallResult call(const std::string& endpoint,
                       ByteView request) override;

  const ChaosStats& stats() const { return stats_; }
  const FaultPlan& plan() const { return plan_; }
  double now_ms() const;

 private:
  struct EndpointState {
    bool crashed = false;
    bool restarted = false;
  };

  const EndpointFaults& faults_for(const std::string& endpoint) const;
  void maybe_crash_restart(const std::string& endpoint,
                           const EndpointFaults& faults);
  bool roll(double probability);
  double tail_delay_ms(const LatencyFault& latency);

  net::Transport& inner_;
  FaultPlan plan_;
  const obs::Clock* clock_;
  ChaChaRng rng_;
  std::map<std::string, EndpointState> endpoint_state_;
  std::map<std::string, std::function<void()>> restart_hooks_;
  ChaosStats stats_;

  // cbl_chaos_faults_total{kind}, resolved once.
  obs::Counter* fault_blackout_;
  obs::Counter* fault_drop_request_;
  obs::Counter* fault_drop_response_;
  obs::Counter* fault_corrupt_;
  obs::Counter* fault_truncate_;
  obs::Counter* fault_duplicate_;
  obs::Counter* fault_delay_;
  obs::Counter* fault_crash_;
  obs::Counter* fault_restart_;
};

}  // namespace cbl::chaos
