#include "chaos/chaos.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace cbl::chaos {

namespace {

std::array<std::uint8_t, 32> seed_key(std::uint64_t seed) {
  std::array<std::uint8_t, 32> key{};
  for (std::size_t i = 0; i < 8; ++i) {
    key[i] = static_cast<std::uint8_t>(seed >> (8 * i));
  }
  return key;
}

void describe_faults(std::ostringstream& out, const EndpointFaults& f) {
  if (f.drop_request > 0) out << " drop_req=" << f.drop_request;
  if (f.drop_response > 0) out << " drop_resp=" << f.drop_response;
  if (f.latency.spike_prob > 0) {
    out << " spike=" << f.latency.spike_prob << "@" << f.latency.spike_ms
        << "ms";
  }
  if (f.latency.tail_prob > 0) out << " tail=" << f.latency.tail_prob;
  if (f.corrupt_prob > 0) out << " corrupt=" << f.corrupt_prob;
  if (f.truncate_prob > 0) out << " truncate=" << f.truncate_prob;
  if (f.duplicate_prob > 0) out << " dup=" << f.duplicate_prob;
  for (const auto& w : f.blackouts) {
    out << " blackout=[" << w.start_ms << "," << w.end_ms << ")";
  }
  if (f.crash_at_ms >= 0) {
    out << " crash@" << f.crash_at_ms;
    if (f.restart_at_ms >= 0) out << " restart@" << f.restart_at_ms;
  }
}

}  // namespace

std::string FaultPlan::describe() const {
  std::ostringstream out;
  out << "plan=" << name << " seed=" << seed;
  describe_faults(out, all);
  for (const auto& [endpoint, faults] : per_endpoint) {
    out << " [" << endpoint << ":";
    std::ostringstream ep;
    describe_faults(ep, faults);
    out << (ep.str().empty() ? " none" : ep.str()) << "]";
  }
  return out.str();
}

FaultInjector::FaultInjector(net::Transport& inner, FaultPlan plan,
                             const obs::Clock* clock)
    : inner_(inner),
      plan_(std::move(plan)),
      clock_(clock),
      rng_(seed_key(plan_.seed)) {
  auto& registry = obs::MetricsRegistry::global();
  const auto fault_counter = [&](const char* kind) {
    return &registry.counter("cbl_chaos_faults_total", {{"kind", kind}},
                             "Faults injected into the transport, by kind");
  };
  fault_blackout_ = fault_counter("blackout");
  fault_drop_request_ = fault_counter("drop_request");
  fault_drop_response_ = fault_counter("drop_response");
  fault_corrupt_ = fault_counter("corrupt");
  fault_truncate_ = fault_counter("truncate");
  fault_duplicate_ = fault_counter("duplicate");
  fault_delay_ = fault_counter("delay");
  fault_crash_ = fault_counter("crash");
  fault_restart_ = fault_counter("restart");
}

double FaultInjector::now_ms() const {
  const obs::Clock& clock =
      clock_ ? *clock_ : obs::MetricsRegistry::global().clock();
  return static_cast<double>(clock.now_ns()) / 1e6;
}

void FaultInjector::set_restart_hook(const std::string& endpoint,
                                     std::function<void()> hook) {
  restart_hooks_[endpoint] = std::move(hook);
}

const EndpointFaults& FaultInjector::faults_for(
    const std::string& endpoint) const {
  const auto it = plan_.per_endpoint.find(endpoint);
  return it == plan_.per_endpoint.end() ? plan_.all : it->second;
}

bool FaultInjector::roll(double probability) {
  if (probability <= 0.0) return false;
  if (probability >= 1.0) return true;
  return static_cast<double>(rng_.uniform(1'000'000)) / 1e6 < probability;
}

double FaultInjector::tail_delay_ms(const LatencyFault& latency) {
  // Pareto draw: scale * (u^(-1/alpha) - 1), u in (0, 1].
  const double u =
      (static_cast<double>(rng_.uniform(1'000'000)) + 1.0) / 1e6;
  const double draw =
      latency.tail_scale_ms * (std::pow(u, -1.0 / latency.tail_alpha) - 1.0);
  return std::min(draw, latency.tail_cap_ms);
}

void FaultInjector::maybe_crash_restart(const std::string& endpoint,
                                        const EndpointFaults& faults) {
  if (faults.crash_at_ms < 0) return;
  EndpointState& state = endpoint_state_[endpoint];
  const double now = now_ms();
  if (!state.crashed && now >= faults.crash_at_ms) {
    // The process is gone: its handler (and any in-memory server state)
    // with it. Later calls are unknown-endpoint drops.
    inner_.unregister_endpoint(endpoint);
    state.crashed = true;
    ++stats_.crashes;
    fault_crash_->inc();
  }
  if (state.crashed && !state.restarted && faults.restart_at_ms >= 0 &&
      now >= faults.restart_at_ms) {
    const auto hook = restart_hooks_.find(endpoint);
    if (hook != restart_hooks_.end()) {
      hook->second();  // rebuild fresh state + restore_epoch + re-register
      state.restarted = true;
      ++stats_.restarts;
      fault_restart_->inc();
    }
  }
}

net::CallResult FaultInjector::call(const std::string& endpoint,
                                    ByteView request) {
  ++stats_.calls;
  const EndpointFaults& faults = faults_for(endpoint);
  maybe_crash_restart(endpoint, faults);

  const double now = now_ms();
  for (const auto& window : faults.blackouts) {
    if (window.contains(now)) {
      // Black hole: the caller still waits out a full (priced) RTT.
      net::CallResult result;
      result.rtt_ms = inner_.sample_rtt();
      ++stats_.blackout_drops;
      fault_blackout_->inc();
      return result;
    }
  }

  if (roll(faults.drop_request)) {
    net::CallResult result;
    result.rtt_ms = inner_.sample_rtt();
    ++stats_.dropped_requests;
    fault_drop_request_->inc();
    return result;
  }

  net::CallResult result = inner_.call(endpoint, request);

  if (roll(faults.duplicate_prob)) {
    // The network delivered the same frame twice; the second response is
    // discarded on the client side but the server did the work (and its
    // admission budget was charged) twice.
    inner_.call(endpoint, request);
    ++stats_.duplicated;
    fault_duplicate_->inc();
  }

  double extra_ms = 0.0;
  if (roll(faults.latency.spike_prob)) extra_ms += faults.latency.spike_ms;
  if (roll(faults.latency.tail_prob)) extra_ms += tail_delay_ms(faults.latency);
  if (extra_ms > 0.0) {
    result.rtt_ms += extra_ms;
    ++stats_.delayed;
    fault_delay_->inc();
  }

  if (result.delivered && roll(faults.drop_response)) {
    result.delivered = false;
    result.rejected = false;
    result.response.clear();
    ++stats_.dropped_responses;
    fault_drop_response_->inc();
    return result;
  }

  if (result.delivered && !result.response.empty() &&
      roll(faults.corrupt_prob)) {
    const std::size_t byte = rng_.uniform(result.response.size());
    const auto bit = static_cast<std::uint8_t>(1u << rng_.uniform(8));
    result.response[byte] ^= bit;
    ++stats_.corrupted;
    fault_corrupt_->inc();
  }

  if (result.delivered && !result.response.empty() &&
      roll(faults.truncate_prob)) {
    result.response.resize(rng_.uniform(result.response.size()));
    ++stats_.truncated;
    fault_truncate_->inc();
  }

  return result;
}

}  // namespace cbl::chaos
