#include "chaos/fault_fs.h"

#include <sstream>
#include <utility>

namespace cbl::chaos {

namespace {

std::array<std::uint8_t, 32> seed_key(std::uint64_t seed) {
  std::array<std::uint8_t, 32> key{};
  for (std::size_t i = 0; i < 8; ++i) {
    key[i] = static_cast<std::uint8_t>(seed >> (8 * i));
  }
  // Domain-separate from FaultInjector streams built from the same seed.
  key[31] = 0xF5;
  return key;
}

}  // namespace

std::string FsFaultPlan::describe() const {
  std::ostringstream out;
  out << "fsplan=" << name << " seed=" << seed;
  if (short_write_prob > 0) out << " short=" << short_write_prob;
  if (torn_write_prob > 0) out << " torn=" << torn_write_prob;
  if (bit_flip_prob > 0) out << " flip=" << bit_flip_prob;
  if (fsync_lie_prob > 0) out << " fsync_lie=" << fsync_lie_prob;
  if (rename_fail_prob > 0) out << " rename_fail=" << rename_fail_prob;
  if (crash_at_op >= 0) out << " crash@op" << crash_at_op;
  return out.str();
}

FaultFs::FaultFs(store::Fs& inner, FsFaultPlan plan)
    : inner_(inner), plan_(std::move(plan)), rng_(seed_key(plan_.seed)) {
  auto& registry = obs::MetricsRegistry::global();
  const auto fault_counter = [&](const char* kind) {
    return &registry.counter("cbl_chaos_fs_faults_total", {{"kind", kind}},
                             "Faults injected into the store fs, by kind");
  };
  metrics_.short_write = fault_counter("short_write");
  metrics_.torn_write = fault_counter("torn_write");
  metrics_.bit_flip = fault_counter("bit_flip");
  metrics_.fsync_lie = fault_counter("fsync_lie");
  metrics_.rename_fail = fault_counter("rename_fail");
  metrics_.crash = fault_counter("crash");
}

bool FaultFs::roll(double probability) {
  if (probability <= 0.0) return false;
  if (probability >= 1.0) return true;
  return static_cast<double>(rng_.uniform(1'000'000)) / 1e6 < probability;
}

bool FaultFs::begin_op() {
  ++stats_.ops;
  if (crashed_) {
    ++stats_.post_crash_fails;
    return false;
  }
  return true;
}

bool FaultFs::is_crash_now() const {
  return plan_.crash_at_op >= 0 &&
         static_cast<std::int64_t>(stats_.ops) - 1 == plan_.crash_at_op;
}

void FaultFs::enter_crash() {
  crashed_ = true;
  ++stats_.crashes;
  metrics_.crash->inc();
}

std::optional<Bytes> FaultFs::read(const std::string& path) {
  return inner_.read(path);
}

bool FaultFs::apply_mutation(const std::string& path, ByteView data,
                             bool is_append) {
  std::size_t cut = data.size();
  bool report_ok = true;
  Bytes flipped;
  {
    MutexLock lock(mutex_);
    if (!begin_op()) return false;
    if (is_crash_now()) {
      // Power cut mid-write: an arbitrary prefix (possibly all, possibly
      // none) lands; the caller never sees the return value.
      cut = data.empty() ? 0 : rng_.uniform(data.size() + 1);
      report_ok = false;
      enter_crash();
    } else if (!data.empty() && roll(plan_.short_write_prob)) {
      // Honest partial failure: strict prefix applied, call says so.
      cut = rng_.uniform(data.size());
      report_ok = false;
      ++stats_.short_writes;
      metrics_.short_write->inc();
    } else if (!data.empty() && roll(plan_.torn_write_prob)) {
      // Lying disk cache: strict prefix applied, call reports success.
      cut = rng_.uniform(data.size());
      ++stats_.torn_writes;
      metrics_.torn_write->inc();
    } else if (!data.empty() && roll(plan_.bit_flip_prob)) {
      // At-rest rot on the way in: everything lands, one bit wrong.
      flipped.assign(data.begin(), data.end());
      const std::size_t byte = rng_.uniform(flipped.size());
      flipped[byte] ^= static_cast<std::uint8_t>(1u << rng_.uniform(8));
      ++stats_.bit_flips;
      metrics_.bit_flip->inc();
    }
  }
  const ByteView out = flipped.empty() ? data.first(cut) : ByteView(flipped);
  const bool inner_ok =
      is_append ? inner_.append(path, out) : inner_.write(path, out);
  return inner_ok && report_ok;
}

bool FaultFs::write(const std::string& path, ByteView data) {
  return apply_mutation(path, data, /*is_append=*/false);
}

bool FaultFs::append(const std::string& path, ByteView data) {
  return apply_mutation(path, data, /*is_append=*/true);
}

bool FaultFs::sync(const std::string& path) {
  {
    MutexLock lock(mutex_);
    if (!begin_op()) return false;
    if (is_crash_now()) {
      enter_crash();  // power cut before the flush: nothing durable
      return false;
    }
    if (roll(plan_.fsync_lie_prob)) {
      // Write-cache betrayal: success reported, nothing made durable.
      ++stats_.fsync_lies;
      metrics_.fsync_lie->inc();
      return true;
    }
  }
  return inner_.sync(path);
}

bool FaultFs::rename(const std::string& from, const std::string& to) {
  {
    MutexLock lock(mutex_);
    if (!begin_op()) return false;
    if (is_crash_now()) {
      enter_crash();  // power cut before the rename hit the namespace
      return false;
    }
    if (roll(plan_.rename_fail_prob)) {
      ++stats_.rename_fails;
      metrics_.rename_fail->inc();
      return false;
    }
  }
  return inner_.rename(from, to);
}

bool FaultFs::remove(const std::string& path) {
  {
    MutexLock lock(mutex_);
    if (!begin_op()) return false;
    if (is_crash_now()) {
      enter_crash();
      return false;
    }
  }
  return inner_.remove(path);
}

bool FaultFs::exists(const std::string& path) {
  return inner_.exists(path);
}

bool FaultFs::sync_dir() {
  {
    MutexLock lock(mutex_);
    if (!begin_op()) return false;
    if (is_crash_now()) {
      enter_crash();
      return false;
    }
    if (roll(plan_.fsync_lie_prob)) {
      ++stats_.fsync_lies;
      metrics_.fsync_lie->inc();
      return true;
    }
  }
  return inner_.sync_dir();
}

bool FaultFs::crashed() const {
  MutexLock lock(mutex_);
  return crashed_;
}

FsFaultStats FaultFs::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

}  // namespace cbl::chaos
