// chaos::FaultFs — seeded fault injection for the durability layer,
// mirroring the FaultInjector design one layer down: where the
// injector damages frames in flight, FaultFs damages bytes on their
// way to (and at rest on) the disk.
//
// Fault classes, each an independent per-operation probability from one
// ChaCha stream seeded by the plan (so a failing sweep replays
// bit-exactly from its printed seed):
//
//   * short write  — a prefix of the data lands, the call returns
//     FALSE (the honest partial-failure POSIX allows).
//   * torn write   — a prefix lands at an arbitrary cut offset but the
//     call returns TRUE (the lying kernel/disk-cache case a checksum
//     must catch).
//   * bit flip     — the written bytes land with one random bit
//     flipped (at-rest rot on the way in).
//   * fsync lie    — sync() reports success without making anything
//     durable (the classic write-cache betrayal).
//   * rename fail  — rename() refuses; the commit sequence must leave
//     the old snapshot intact.
//   * crash point  — at operation index `crash_at_op` the fs applies
//     the prefix of that mutation, then this and every later mutating
//     operation fails; the harness then calls MemFs::crash() and
//     recovers. Sweeping crash_at_op over every index proves the
//     recovery invariant at every operation boundary.
//
// FaultFs wraps any store::Fs; reads pass through untouched (at-rest
// damage is injected on the write side so it is durable and visible
// after crash(), exactly like real bit rot).
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "common/thread_safety.h"
#include "obs/metrics.h"
#include "store/fs.h"

namespace cbl::chaos {

/// A complete, replayable filesystem fault schedule.
struct FsFaultPlan {
  std::string name;
  std::uint64_t seed = 0;
  double short_write_prob = 0.0;  // prefix applied, call returns false
  double torn_write_prob = 0.0;   // prefix applied, call LIES (true)
  double bit_flip_prob = 0.0;     // one bit flipped in written data
  double fsync_lie_prob = 0.0;    // sync skipped, call lies (true)
  double rename_fail_prob = 0.0;  // rename refused
  /// Mutating-operation index at which the fs "crashes" (prefix of that
  /// op applied, everything after fails); negative = never.
  std::int64_t crash_at_op = -1;
  /// One-line human summary for failure reports: paste the seed (and
  /// crash_at_op) back to replay the run.
  std::string describe() const;
};

/// What the fault fs actually did — asserted against obs counters.
struct FsFaultStats {
  std::uint64_t ops = 0;  // mutating operations seen
  std::uint64_t short_writes = 0;
  std::uint64_t torn_writes = 0;
  std::uint64_t bit_flips = 0;
  std::uint64_t fsync_lies = 0;
  std::uint64_t rename_fails = 0;
  std::uint64_t crashes = 0;          // crash point reached (0 or 1)
  std::uint64_t post_crash_fails = 0;  // ops refused after the crash
};

class FaultFs final : public store::Fs {
 public:
  FaultFs(store::Fs& inner, FsFaultPlan plan);

  std::optional<Bytes> read(const std::string& path) override
      CBL_EXCLUDES(mutex_);
  bool write(const std::string& path, ByteView data) override
      CBL_EXCLUDES(mutex_);
  bool append(const std::string& path, ByteView data) override
      CBL_EXCLUDES(mutex_);
  bool sync(const std::string& path) override CBL_EXCLUDES(mutex_);
  bool rename(const std::string& from, const std::string& to) override
      CBL_EXCLUDES(mutex_);
  bool remove(const std::string& path) override CBL_EXCLUDES(mutex_);
  bool exists(const std::string& path) override CBL_EXCLUDES(mutex_);
  bool sync_dir() override CBL_EXCLUDES(mutex_);

  /// True once the crash point has been reached; the harness should
  /// then power-cycle the inner fs (MemFs::crash()) and recover.
  bool crashed() const CBL_EXCLUDES(mutex_);

  FsFaultStats stats() const CBL_EXCLUDES(mutex_);
  const FsFaultPlan& plan() const { return plan_; }

 private:
  bool roll(double probability) CBL_REQUIRES(mutex_);
  /// Counts one mutating op; returns false (op refused) once crashed.
  bool begin_op() CBL_REQUIRES(mutex_);
  /// True when this op's index is the plan's crash point.
  bool is_crash_now() const CBL_REQUIRES(mutex_);
  void enter_crash() CBL_REQUIRES(mutex_);
  /// Shared write/append path: applies the (possibly cut or bit-flipped)
  /// data through the inner fs and reports what the plan dictates.
  bool apply_mutation(const std::string& path, ByteView data, bool is_append)
      CBL_EXCLUDES(mutex_);

  // lock:unguarded(reference bound in the ctor and never reseated)
  store::Fs& inner_;
  const FsFaultPlan plan_;

  mutable cbl::Mutex mutex_;  // lock: rng, stats and crash latch
  ChaChaRng rng_ CBL_GUARDED_BY(mutex_);
  FsFaultStats stats_ CBL_GUARDED_BY(mutex_);
  bool crashed_ CBL_GUARDED_BY(mutex_) = false;

  // cbl_chaos_fs_faults_total{kind}, resolved once.
  struct Metrics {
    obs::Counter* short_write;
    obs::Counter* torn_write;
    obs::Counter* bit_flip;
    obs::Counter* fsync_lie;
    obs::Counter* rename_fail;
    obs::Counter* crash;
  };
  // lock:unguarded(handles resolved once in the constructor; increments
  // are lock-free atomics)
  Metrics metrics_;
};

}  // namespace cbl::chaos
