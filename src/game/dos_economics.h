// Economics of the slow-oracle DoS defence (Section IV-B remarks):
// a bogus query costs the ATTACKER one Argon2id evaluation, while the
// SERVER answers with one cheap scalar multiplication — "server
// responses should not require a significant amount of computation
// compared to requests made by clients". These helpers turn measured
// per-operation costs into the asymmetry ratio and the flood rates each
// side can sustain, the quantities that decide whether the defence
// holds.
#pragma once

#include <cstdint>

namespace cbl::game {

struct DosParams {
  /// Attacker-side cost to mint one valid-looking query (the slow oracle
  /// H plus blinding), in CPU-microseconds per query.
  double attacker_us_per_query = 6'000;
  /// Server-side cost to answer one query (one exponentiation + bucket
  /// lookup), in CPU-microseconds.
  double server_us_per_query = 100;
  /// Cores each side can bring to bear.
  unsigned attacker_cores = 1'000;  // a botnet
  unsigned server_cores = 8;
};

struct DosReport {
  /// attacker_us / server_us: how much more the flood costs its sender
  /// than its victim, per query.
  double cost_asymmetry = 0;
  /// Queries/sec the attacker can mint with its cores.
  double attacker_flood_rate = 0;
  /// Queries/sec the server can absorb with its cores.
  double server_capacity = 0;
  /// attacker cores required to saturate this server.
  double cores_to_saturate = 0;
  /// True if the attacker's entire fleet cannot saturate the server.
  bool defence_holds = false;
};

DosReport analyze_dos(const DosParams& params);

/// The oracle slowdown factor (slow/fast cost ratio) needed so that an
/// attacker with `attacker_cores` cannot saturate a server with
/// `server_cores`, given the fast-oracle costs of both sides.
double required_slowdown(double attacker_fast_us, double server_us,
                         unsigned attacker_cores, unsigned server_cores);

}  // namespace cbl::game
