#include "game/dos_economics.h"

namespace cbl::game {

DosReport analyze_dos(const DosParams& params) {
  DosReport report;
  report.cost_asymmetry =
      params.attacker_us_per_query / params.server_us_per_query;
  report.attacker_flood_rate = static_cast<double>(params.attacker_cores) *
                               1e6 / params.attacker_us_per_query;
  report.server_capacity = static_cast<double>(params.server_cores) * 1e6 /
                           params.server_us_per_query;
  // Each attacker core mints 1e6/attacker_us q/s; each server core absorbs
  // 1e6/server_us q/s; saturation needs the ratio of the two.
  report.cores_to_saturate = static_cast<double>(params.server_cores) *
                             params.attacker_us_per_query /
                             params.server_us_per_query;
  report.defence_holds = report.attacker_flood_rate < report.server_capacity;
  return report;
}

double required_slowdown(double attacker_fast_us, double server_us,
                         unsigned attacker_cores, unsigned server_cores) {
  // Need attacker_cores * 1e6 / (fast_us * slowdown) < server_cores * 1e6
  // / server_us, i.e. slowdown > (attacker_cores * server_us) /
  // (server_cores * fast_us).
  return static_cast<double>(attacker_cores) * server_us /
         (static_cast<double>(server_cores) * attacker_fast_us);
}

}  // namespace cbl::game
