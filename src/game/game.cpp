#include "game/game.h"

#include <stdexcept>

namespace cbl::game {

bool oracle_fair(const ProtectionMethod& psi, std::uint64_t n) {
  return n < psi.k_star;
}

double society_utility(const GameParams& params, const ProtectionMethod& psi,
                       std::uint64_t n) {
  const double value = oracle_fair(psi, n)
                           ? params.society_value_fair
                           : params.society_value_fair -
                                 params.society_loss_if_biased;
  return value - psi.cost_to_society;
}

double coercer_utility(const GameParams& params, const ProtectionMethod& psi,
                       std::uint64_t n) {
  const double value = oracle_fair(psi, n)
                           ? params.coercer_value_favoured -
                                 params.coercer_loss_otherwise
                           : params.coercer_value_favoured;
  return value - static_cast<double>(n) * psi.coercion_cost_per_shareholder;
}

std::uint64_t coercer_best_response(const GameParams& params,
                                    const ProtectionMethod& psi) {
  std::uint64_t best_n = 0;
  double best_u = coercer_utility(params, psi, 0);
  for (std::uint64_t n = 1; n <= params.max_coercible; ++n) {
    const double u = coercer_utility(params, psi, n);
    if (u > best_u) {
      best_u = u;
      best_n = n;
    }
  }
  return best_n;
}

bool coercion_deterred(const GameParams& params, const ProtectionMethod& psi) {
  // c_A - C_A(psi) * k* <= c_A - eps_A  <=>  C_A(psi) * k* >= eps_A.
  return psi.coercion_cost_per_shareholder *
             static_cast<double>(psi.k_star) >=
         params.coercer_loss_otherwise;
}

StackelbergSolution solve_stackelberg(
    const GameParams& params, const std::vector<ProtectionMethod>& methods) {
  if (methods.empty()) {
    throw std::invalid_argument("solve_stackelberg: no methods");
  }
  StackelbergSolution best;
  bool first = true;
  for (std::size_t j = 0; j < methods.size(); ++j) {
    const std::uint64_t n = coercer_best_response(params, methods[j]);
    const double u_m = society_utility(params, methods[j], n);
    if (first || u_m > best.society_utility) {
      first = false;
      best.method_index = j;
      best.coercer_response = n;
      best.society_utility = u_m;
      best.coercer_utility = coercer_utility(params, methods[j], n);
    }
  }
  return best;
}

}  // namespace cbl::game
