// Quantifies the pool-dilution defence: with VRF sortition picking N
// committee seats uniformly from a pool of P registered candidates, a
// coercer controlling c candidates captures a Hypergeometric(P, c, N)
// number of seats. These helpers compute how many candidates A must
// control for a majority capture — the k*-inflation that feeds the
// Section V-E game.
#pragma once

#include <cstdint>

namespace cbl::game {

/// P(X = k) for X ~ Hypergeometric(pool, controlled, seats).
double hypergeometric_pmf(std::uint64_t pool, std::uint64_t controlled,
                          std::uint64_t seats, std::uint64_t k);

/// P(X >= k).
double hypergeometric_tail(std::uint64_t pool, std::uint64_t controlled,
                           std::uint64_t seats, std::uint64_t k);

/// Probability that a coercer controlling `controlled` of `pool`
/// candidates captures a strict majority of an N-seat committee.
double majority_capture_probability(std::uint64_t pool,
                                    std::uint64_t controlled,
                                    std::uint64_t seats);

/// Minimum number of candidates A must control so that the majority-
/// capture probability reaches `target` (returns pool+1 if unreachable).
std::uint64_t min_controlled_for_capture(std::uint64_t pool,
                                         std::uint64_t seats, double target);

/// Effective k* under sortition: without dilution A coerces
/// ceil((seats+1)/2) seated voters; with dilution it must control
/// min_controlled_for_capture(pool, seats, target) pool members.
std::uint64_t effective_k_star(std::uint64_t pool, std::uint64_t seats,
                               double target);

}  // namespace cbl::game
