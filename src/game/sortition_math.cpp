#include "game/sortition_math.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace cbl::game {

namespace {

// log(n choose k) via lgamma, stable for large arguments.
double log_choose(std::uint64_t n, std::uint64_t k) {
  if (k > n) return -std::numeric_limits<double>::infinity();
  return std::lgamma(static_cast<double>(n) + 1) -
         std::lgamma(static_cast<double>(k) + 1) -
         std::lgamma(static_cast<double>(n - k) + 1);
}

}  // namespace

double hypergeometric_pmf(std::uint64_t pool, std::uint64_t controlled,
                          std::uint64_t seats, std::uint64_t k) {
  if (controlled > pool || seats > pool) return 0.0;
  if (k > controlled || k > seats) return 0.0;
  if (seats - k > pool - controlled) return 0.0;
  const double log_p = log_choose(controlled, k) +
                       log_choose(pool - controlled, seats - k) -
                       log_choose(pool, seats);
  return std::exp(log_p);
}

double hypergeometric_tail(std::uint64_t pool, std::uint64_t controlled,
                           std::uint64_t seats, std::uint64_t k) {
  double tail = 0.0;
  const std::uint64_t upper = std::min(controlled, seats);
  for (std::uint64_t i = k; i <= upper; ++i) {
    tail += hypergeometric_pmf(pool, controlled, seats, i);
  }
  return std::min(1.0, tail);
}

double majority_capture_probability(std::uint64_t pool,
                                    std::uint64_t controlled,
                                    std::uint64_t seats) {
  const std::uint64_t majority = seats / 2 + 1;
  return hypergeometric_tail(pool, controlled, seats, majority);
}

std::uint64_t min_controlled_for_capture(std::uint64_t pool,
                                         std::uint64_t seats, double target) {
  for (std::uint64_t c = 0; c <= pool; ++c) {
    if (majority_capture_probability(pool, c, seats) >= target) return c;
  }
  return pool + 1;
}

std::uint64_t effective_k_star(std::uint64_t pool, std::uint64_t seats,
                               double target) {
  return min_controlled_for_capture(pool, seats, target);
}

}  // namespace cbl::game
