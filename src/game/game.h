// The strategic game of Section V-E: society M (choosing a protection
// method psi_j) versus coercers A (choosing how many shareholders n to
// coerce). Utilities follow the paper:
//   U_M(psi, n) = V_M(Oracle(psi, n)) - C_M(psi)
//   U_A(psi, n) = V_A(Oracle(psi, n)) - n * C_A(psi)
// where Oracle outputs a fairly-derived result unless A coerces at least
// k* shareholders (k* itself depends on psi through pool dilution).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cbl::game {

/// A protection method psi_j available to the society.
struct ProtectionMethod {
  std::string name;
  /// Implementation cost C_M(psi_j) to the society.
  double cost_to_society = 0.0;
  /// Per-shareholder coercion cost C_A(psi_j) this method imposes on A.
  double coercion_cost_per_shareholder = 1.0;
  /// Minimum number of shareholders A must coerce under this method to
  /// flip the outcome (k*, inflated by anonymity / pool dilution).
  std::uint64_t k_star = 1;
};

struct GameParams {
  double society_value_fair = 100.0;       // c_M
  double society_loss_if_biased = 60.0;    // eps_M
  double coercer_value_favoured = 40.0;    // c_A
  double coercer_loss_otherwise = 40.0;    // eps_A
  std::uint64_t max_coercible = 15;        // upper bound of Sigma_A
};

/// Oracle(psi, n): true iff the evaluation outcome is fairly derived.
bool oracle_fair(const ProtectionMethod& psi, std::uint64_t n);

double society_utility(const GameParams& params, const ProtectionMethod& psi,
                       std::uint64_t n);
double coercer_utility(const GameParams& params, const ProtectionMethod& psi,
                       std::uint64_t n);

/// A's best response to psi. Per the paper's analysis only n = 0 and
/// n = k* are undominated; this computes the argmax over the full range
/// as a check of that claim (ties break toward not coercing).
std::uint64_t coercer_best_response(const GameParams& params,
                                    const ProtectionMethod& psi);

/// True iff rational A is deterred: U_A(psi, k*) <= U_A(psi, 0), i.e.
/// c_A - C_A(psi) * k* <= c_A - eps_A.
bool coercion_deterred(const GameParams& params, const ProtectionMethod& psi);

struct StackelbergSolution {
  std::size_t method_index = 0;
  std::uint64_t coercer_response = 0;
  double society_utility = 0;
  double coercer_utility = 0;
};

/// The leader M commits to the psi maximizing U_M given that A
/// best-responds (the Stackelberg equilibrium of the paper's
/// Implications paragraph).
StackelbergSolution solve_stackelberg(const GameParams& params,
                                      const std::vector<ProtectionMethod>& methods);

}  // namespace cbl::game
