#include "ct/ct.h"

#include <atomic>
#include <map>

#include "common/ct.h"
#include "common/thread_safety.h"

// ---------------------------------------------------------------------------
// Valgrind client requests, inlined (ctgrind style).
//
// The sequences below are the architecture's canonical "special instruction
// preamble" that valgrind's JIT recognizes; outside valgrind they execute as
// a handful of value-preserving rotates, i.e. a no-op. Inlining them keeps
// the backend available without any valgrind development headers installed.
// Request codes match valgrind/valgrind.h and valgrind/memcheck.h.
// ---------------------------------------------------------------------------

#if defined(__linux__) && (defined(__x86_64__) || defined(__aarch64__))
#define CBL_CT_HAVE_VALGRIND 1
#else
#define CBL_CT_HAVE_VALGRIND 0
#endif

#if CBL_CT_HAVE_VALGRIND

namespace {

constexpr std::uintptr_t kVgRunningOnValgrind = 0x1001;
// Memcheck tool requests: base = ('M' << 24) | ('C' << 16).
constexpr std::uintptr_t kVgMakeMemUndefined = 0x4d430001;
constexpr std::uintptr_t kVgMakeMemDefined = 0x4d430002;

std::uintptr_t vg_client_request(std::uintptr_t dflt, std::uintptr_t request,
                                 std::uintptr_t a1, std::uintptr_t a2) noexcept {
  volatile std::uintptr_t args[6] = {request, a1, a2, 0, 0, 0};
  std::uintptr_t result = dflt;
#if defined(__x86_64__)
  __asm__ volatile(
      "rolq $3, %%rdi; rolq $13, %%rdi\n\t"
      "rolq $61, %%rdi; rolq $51, %%rdi\n\t"
      "xchgq %%rbx, %%rbx"
      : "=d"(result)
      : "a"(&args[0]), "0"(dflt)
      : "cc", "memory");
#elif defined(__aarch64__)
  __asm__ volatile(
      "mov x3, %1\n\t"
      "mov x4, %2\n\t"
      "ror x12, x12, #3  ;  ror x12, x12, #13 \n\t"
      "ror x12, x12, #51 ;  ror x12, x12, #61 \n\t"
      "orr x10, x10, x10\n\t"
      "mov %0, x3"
      : "=r"(result)
      : "r"(dflt), "r"(&args[0])
      : "cc", "memory", "x3", "x4");
#endif
  return result;
}

}  // namespace

#endif  // CBL_CT_HAVE_VALGRIND

// ---------------------------------------------------------------------------
// MemorySanitizer backend (clang -fsanitize=memory builds only).
// ---------------------------------------------------------------------------

#if defined(__has_feature)
#if __has_feature(memory_sanitizer)
#include <sanitizer/msan_interface.h>
#define CBL_CT_HAVE_MSAN 1
#endif
#endif
#ifndef CBL_CT_HAVE_MSAN
#define CBL_CT_HAVE_MSAN 0
#endif

namespace cbl::ct {

namespace {

// Software registry: currently-poisoned ranges keyed by start address.
// The harness and tests are the only callers, so this is nowhere near
// any hot path.
struct Registry {
  cbl::Mutex mu;  // lock: the poisoned-range map
  std::map<std::uintptr_t, std::size_t> ranges CBL_GUARDED_BY(mu);
};

Registry& registry() {
  static Registry r;
  return r;
}

std::atomic<std::uint64_t> g_declassified{0};

void registry_poison(std::uintptr_t start, std::size_t len) {
  auto& reg = registry();
  MutexLock lock(reg.mu);
  reg.ranges[start] = std::max(reg.ranges[start], len);
}

// Removes [start, start+len) from the registry, trimming partial overlaps.
void registry_unpoison(std::uintptr_t start, std::size_t len) {
  auto& reg = registry();
  MutexLock lock(reg.mu);
  const std::uintptr_t end = start + len;
  auto it = reg.ranges.begin();
  while (it != reg.ranges.end()) {
    const std::uintptr_t rs = it->first;
    const std::uintptr_t re = rs + it->second;
    if (re <= start || rs >= end) {
      ++it;
      continue;
    }
    it = reg.ranges.erase(it);
    if (rs < start) reg.ranges[rs] = start - rs;  // left remainder
    if (re > end) reg.ranges[end] = re - end;     // right remainder
  }
}

}  // namespace

void poison(const void* p, std::size_t len) noexcept {
  if (p == nullptr || len == 0) return;
  registry_poison(reinterpret_cast<std::uintptr_t>(p), len);
#if CBL_CT_HAVE_VALGRIND
  vg_client_request(0, kVgMakeMemUndefined,
                    reinterpret_cast<std::uintptr_t>(p), len);
#endif
#if CBL_CT_HAVE_MSAN
  __msan_allocated_memory(p, len);
#endif
}

void unpoison(const void* p, std::size_t len) noexcept {
  if (p == nullptr || len == 0) return;
  registry_unpoison(reinterpret_cast<std::uintptr_t>(p), len);
#if CBL_CT_HAVE_VALGRIND
  vg_client_request(0, kVgMakeMemDefined,
                    reinterpret_cast<std::uintptr_t>(p), len);
#endif
#if CBL_CT_HAVE_MSAN
  __msan_unpoison(const_cast<void*>(p), len);
#endif
}

void declassify(const void* p, std::size_t len) noexcept {
  g_declassified.fetch_add(1, std::memory_order_relaxed);
  unpoison(p, len);
}

bool is_poisoned(const void* p, std::size_t len) noexcept {
  if (p == nullptr || len == 0) return false;
  const std::uintptr_t start = reinterpret_cast<std::uintptr_t>(p);
  const std::uintptr_t end = start + len;
  auto& reg = registry();
  MutexLock lock(reg.mu);
  for (const auto& [rs, rlen] : reg.ranges) {
    if (rs < end && rs + rlen > start) return true;
  }
  return false;
}

std::size_t poisoned_bytes() noexcept {
  auto& reg = registry();
  MutexLock lock(reg.mu);
  std::size_t total = 0;
  for (const auto& [rs, rlen] : reg.ranges) total += rlen;
  return total;
}

std::uint64_t declassified_events() noexcept {
  return g_declassified.load(std::memory_order_relaxed);
}

void reset_for_testing() noexcept {
  auto& reg = registry();
  MutexLock lock(reg.mu);
  reg.ranges.clear();
  g_declassified.store(0, std::memory_order_relaxed);
}

const char* backend_name() noexcept {
#if CBL_CT_HAVE_MSAN
  return "msan";
#elif CBL_CT_HAVE_VALGRIND
  return "valgrind";
#else
  return "software";
#endif
}

bool running_on_valgrind() noexcept {
#if CBL_CT_HAVE_VALGRIND
  return vg_client_request(0, kVgRunningOnValgrind, 0, 0) != 0;
#else
  return false;
#endif
}

SecretScope::SecretScope(void* p, std::size_t len, OnExit on_exit) noexcept
    : p_(p), len_(len), on_exit_(on_exit) {
  poison(p_, len_);
}

SecretScope::~SecretScope() {
  unpoison(p_, len_);
  if (on_exit_ == OnExit::kUnpoisonAndWipe) secure_wipe(p_, len_);
}

}  // namespace cbl::ct
