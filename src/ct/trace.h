// Control-flow trace recorder — the leak *detector* behind ctcheck on
// toolchains without valgrind or MemorySanitizer.
//
// When the tree is configured with -DCBL_CTCHECK=ON, the crypto libraries
// are compiled with -fsanitize-coverage=trace-pc (supported by both gcc
// and clang): the compiler inserts a call to __sanitizer_cov_trace_pc()
// at every basic-block edge. This file provides that callback. While a
// recording is active the callback folds each return address into an
// order-sensitive hash, so two executions take the same trace hash iff
// they executed the same instrumented edges in the same order.
//
// ctcheck exploits this as a differential tester (in the spirit of trace-
// diffing tools like Microwalk/DATA): run an operation twice with
// different SECRET inputs while holding every public input fixed — if the
// trace hashes differ, some branch depended on the secret. Data-dependent
// *addresses* without branches (secret-indexed table loads) are not
// visible to PC tracing; those are covered statically by
// scripts/ct_lint.py and dynamically by the valgrind/MSan backends.
#pragma once

#include <cstdint>

namespace cbl::ct {

struct TraceStats {
  std::uint64_t hash = 0;   // order-sensitive FNV-style fold of edge PCs
  std::uint64_t edges = 0;  // number of instrumented edges observed

  bool operator==(const TraceStats& o) const noexcept {
    return hash == o.hash && edges == o.edges;
  }
};

/// Starts recording on the calling thread (resets the running hash).
void trace_begin() noexcept;

/// Stops recording on the calling thread and returns the stats.
TraceStats trace_end() noexcept;

/// True iff at least one instrumented edge has ever been observed in this
/// process — i.e. the build actually carries -fsanitize-coverage=trace-pc.
/// ctcheck refuses to certify anything when this is false.
bool trace_instrumented() noexcept;

}  // namespace cbl::ct
