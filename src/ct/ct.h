// cbl::ct — the secret-taint side of the constant-time analysis layer.
//
// The API lets crypto code (and the ctcheck harness) mark byte ranges as
// SECRET (`poison`), mark them public again (`unpoison`), and record the
// deliberate, audited points where a secret-derived value becomes public
// (`declassify` — e.g. a Ristretto encoding that is about to go on the
// wire). Three backends consume the marks:
//
//  * Valgrind (ctgrind-style): poisoned ranges are marked "undefined" via
//    the client-request mechanism, so running any binary under
//    `valgrind --error-exitcode=1` turns every secret-dependent branch or
//    address into a memcheck error. The client requests are inlined here
//    (the canonical rotate-preamble sequence) so no valgrind headers are
//    needed; outside valgrind they cost a few no-op instructions.
//  * MemorySanitizer: poisoned ranges are marked uninitialized via
//    __msan_allocated_memory when the tree is built with
//    -DCBL_SANITIZE=memory (clang only; compile-gated).
//  * Software registry (always on): an interval set of currently-poisoned
//    ranges plus counters, used by the unit tests and by SecretScope to
//    verify the bookkeeping. This backend does not detect leaks by itself;
//    leak *detection* without valgrind/MSan comes from the PC-trace
//    recorder in ct/trace.h (see ctcheck).
#pragma once

#include <cstddef>
#include <cstdint>

namespace cbl::ct {

/// Marks [p, p+len) as secret in every active backend.
void poison(const void* p, std::size_t len) noexcept;

/// Marks [p, p+len) as public again (no declassification implied — use
/// for scratch buffers that are wiped rather than published).
void unpoison(const void* p, std::size_t len) noexcept;

/// Audited secret->public transition: unpoisons and counts the event.
/// Every call site is a line in the DESIGN.md declassification table.
void declassify(const void* p, std::size_t len) noexcept;

/// True iff [p, p+len) overlaps a range currently poisoned via poison().
/// (Software registry view; valgrind/MSan keep their own shadow state.)
bool is_poisoned(const void* p, std::size_t len) noexcept;

/// Total bytes currently poisoned according to the software registry.
std::size_t poisoned_bytes() noexcept;

/// Number of declassify() calls since process start (or last reset).
std::uint64_t declassified_events() noexcept;

/// Test hook: forgets all software-registry state and zeroes counters.
void reset_for_testing() noexcept;

/// Which heavyweight backend this build can drive, for diagnostics.
/// "valgrind" means the client requests are compiled in (they only bite
/// when the process actually runs under valgrind).
const char* backend_name() noexcept;

/// True when running under valgrind right now (via the RUNNING_ON_VALGRIND
/// client request); false when the mechanism is compiled out.
bool running_on_valgrind() noexcept;

/// RAII guard: poisons a buffer on entry, unpoisons (and optionally wipes)
/// on exit. The canonical way for a function to say "everything in this
/// buffer is secret for the duration of this computation".
class SecretScope {
 public:
  enum class OnExit { kUnpoison, kUnpoisonAndWipe };

  SecretScope(void* p, std::size_t len,
              OnExit on_exit = OnExit::kUnpoison) noexcept;
  ~SecretScope();

  SecretScope(const SecretScope&) = delete;
  SecretScope& operator=(const SecretScope&) = delete;

 private:
  void* p_;
  std::size_t len_;
  OnExit on_exit_;
};

}  // namespace cbl::ct
