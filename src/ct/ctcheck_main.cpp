// ctcheck — dynamic constant-time verification of the crypto kernels.
//
// For every audited operation the runner holds all PUBLIC inputs fixed,
// draws a fresh SECRET input per iteration (poisoned through the cbl::ct
// taint API so the valgrind/MSan backends see it too), and records the
// control-flow trace of each run via ct/trace.h. A secret-dependent branch
// makes the traces diverge across iterations, which fails the run.
//
// Build:  cmake -DCBL_CTCHECK=ON  (instruments the crypto libraries with
//         -fsanitize-coverage=trace-pc and builds this binary).
// Run:    ctcheck              all checks
//         ctcheck --self-test  proves the harness fires on a deliberately
//                              leaky compare (and stays quiet on ct_equal)
//         ctcheck --list       lists check names
//
// Secret-indexed loads without branches are invisible to PC tracing; they
// are covered by scripts/ct_lint.py and, when available, by running this
// same binary under `valgrind --error-exitcode=1` (the poison marks map to
// memcheck "undefined" ranges, ctgrind style).

#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "commit/pedersen.h"
#include "common/ct.h"
#include "common/rng.h"
#include "ct/ct.h"
#include "ct/trace.h"
#include "ec/fe25519.h"
#include "ec/ristretto.h"
#include "ec/scalar.h"
#include "hash/argon2.h"
#include "oprf/oracle.h"
#include "oprf/server.h"

namespace {

using namespace cbl;

// Result sink: keeps operation outputs "used" even if the harness is ever
// built with optimization.
volatile std::uint8_t g_sink = 0;

void sink(const std::uint8_t* p, std::size_t n) {
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) acc ^= p[i];
  g_sink = g_sink ^ acc;
}

struct Check {
  std::string name;
  // Runs the operation once with a fresh secret drawn from rng.
  std::function<void(Rng&)> run;
};

constexpr int kWarmupRuns = 2;
constexpr int kRecordedRuns = 6;

// Drives one check: warmups (populate lazy statics), then recorded runs
// whose trace stats must all agree. Every run gets a FRESH deterministic
// rng (different seed, identical draw pattern): the secrets differ across
// runs while the rng's own buffer-refill branches stay aligned, so any
// trace divergence is attributable to secret-dependent control flow.
bool drive(const Check& check, bool expect_divergence) {
  for (int i = 0; i < kWarmupRuns; ++i) {
    ChaChaRng rng =
        ChaChaRng::from_string_seed("ctcheck/" + check.name + "/warm" +
                                    std::to_string(i));
    check.run(rng);
  }

  ct::TraceStats first{};
  bool diverged = false;
  for (int i = 0; i < kRecordedRuns; ++i) {
    ChaChaRng rng = ChaChaRng::from_string_seed("ctcheck/" + check.name +
                                                "/" + std::to_string(i));
    ct::trace_begin();
    check.run(rng);
    const ct::TraceStats stats = ct::trace_end();
    if (i == 0) {
      first = stats;
    } else if (!(stats == first)) {
      diverged = true;
    }
  }

  const bool ok = diverged == expect_divergence;
  std::printf("  [%s] %-24s edges=%-8llu hash=%016llx%s\n", ok ? "ok" : "FAIL",
              check.name.c_str(),
              static_cast<unsigned long long>(first.edges),
              static_cast<unsigned long long>(first.hash),
              diverged ? " (trace diverged)" : "");
  return ok;
}

// --- Audited operations ----------------------------------------------------

std::vector<Check> audited_checks() {
  std::vector<Check> checks;

  checks.push_back({"scalar_mult", [](Rng& rng) {
    ec::Scalar s = ec::Scalar::random(rng);
    auto bytes = s.to_bytes();
    ct::SecretScope scope(bytes.data(), bytes.size());
    const auto enc = (ec::RistrettoPoint::base() * s).encode();
    // ct:declassify(group-element-encoding) — OPRF outputs go on the wire
    ct::declassify(enc.data(), enc.size());
    sink(enc.data(), enc.size());
  }});

  checks.push_back({"fe25519_invert", [](Rng& rng) {
    std::array<std::uint8_t, 32> raw{};
    rng.fill(raw.data(), raw.size());
    raw[31] &= 0x7f;
    ct::SecretScope scope(raw.data(), raw.size());
    const ec::Fe25519 x = ec::Fe25519::from_bytes(raw);
    const auto out = x.invert().to_bytes();
    sink(out.data(), out.size());
  }});

  checks.push_back({"scalar_from_wide", [](Rng& rng) {
    std::array<std::uint8_t, 64> wide{};
    rng.fill(wide.data(), wide.size());
    ct::SecretScope scope(wide.data(), wide.size());
    const ec::Scalar s = ec::Scalar::from_bytes_wide(wide);
    const auto out = s.to_bytes();
    sink(out.data(), out.size());
  }});

  checks.push_back({"ristretto_decode", [](Rng& rng) {
    // A fresh valid encoding per run; validity (the public verdict) is
    // identical across runs, so the trace must be too.
    const auto enc = (ec::RistrettoPoint::base() * ec::Scalar::random(rng))
                         .encode();
    ct::SecretScope scope(const_cast<std::uint8_t*>(enc.data()), enc.size());
    const auto point = ec::RistrettoPoint::decode(enc);
    if (!point) std::abort();
    const auto out = point->encode();
    sink(out.data(), out.size());
  }});

  checks.push_back({"hash_to_group", [](Rng& rng) {
    // The queried entry is the client's secret (fixed length, varying
    // content): SHA-512 + double Elligator must not branch on it.
    Bytes entry = rng.bytes(20);
    ct::SecretScope scope(entry.data(), entry.size());
    const auto out =
        ec::RistrettoPoint::hash_to_group(entry, "ctcheck/entry").encode();
    sink(out.data(), out.size());
  }});

  checks.push_back({"oprf_blind", [](Rng& rng) {
    static const ec::RistrettoPoint hashed =
        ec::RistrettoPoint::hash_to_group(to_bytes("fixed-entry"), "ctcheck");
    ec::Scalar r = ec::Scalar::random(rng);
    auto rb = r.to_bytes();
    ct::SecretScope scope(rb.data(), rb.size());
    const auto enc = (hashed * r).encode();
    // ct:declassify(blinded-query) — m = H(u)^r is sent to S
    ct::declassify(enc.data(), enc.size());
    sink(enc.data(), enc.size());
  }});

  checks.push_back({"oprf_eval", [](Rng& rng) {
    // Server side: the blinded query m is public wire data, the mask R is
    // the long-lived secret.
    static const ec::RistrettoPoint blinded =
        ec::RistrettoPoint::hash_to_group(to_bytes("wire-query"), "ctcheck");
    ec::Scalar mask = ec::Scalar::random(rng);
    auto mb = mask.to_bytes();
    ct::SecretScope scope(mb.data(), mb.size());
    const auto enc = (blinded * mask).encode();
    // ct:declassify(evaluated-query) — psi = m^R is sent back to C
    ct::declassify(enc.data(), enc.size());
    sink(enc.data(), enc.size());
  }});

  checks.push_back({"oprf_finalize", [](Rng& rng) {
    static const ec::RistrettoPoint evaluated =
        ec::RistrettoPoint::hash_to_group(to_bytes("psi"), "ctcheck");
    ec::Scalar r = ec::Scalar::random(rng);
    auto rb = r.to_bytes();
    ct::SecretScope scope(rb.data(), rb.size());
    const auto enc = (evaluated * r.invert()).encode();
    sink(enc.data(), enc.size());
  }});

  checks.push_back({"argon2id", [](Rng& rng) {
    Bytes password = rng.bytes(32);
    ct::SecretScope scope(password.data(), password.size(),
                          ct::SecretScope::OnExit::kUnpoisonAndWipe);
    hash::Argon2Params params;
    params.memory_kib = 8;
    params.time_cost = 1;
    params.parallelism = 1;
    params.tag_length = 64;
    const Bytes tag =
        hash::argon2id(password, to_bytes("ctcheck-salt"), params);
    sink(tag.data(), tag.size());
  }});

  checks.push_back({"pedersen_open", [](Rng& rng) {
    static const ec::RistrettoPoint g = ec::RistrettoPoint::base();
    static const ec::RistrettoPoint h =
        ec::RistrettoPoint::hash_to_group(to_bytes("h"), "ctcheck/crs");
    commit::Opening opening(ec::Scalar::random(rng), ec::Scalar::random(rng));
    auto vb = opening.value.expose_secret().to_bytes();
    auto rb = opening.randomness.expose_secret().to_bytes();
    ct::SecretScope sv(vb.data(), vb.size());
    ct::SecretScope sr(rb.data(), rb.size());
    const commit::Commitment c = commit::Commitment::commit(g, h, opening);
    if (!c.verify(g, h, opening)) std::abort();
    const auto enc = c.encode();
    sink(enc.data(), enc.size());
  }});

  checks.push_back({"metadata_seal_open", [](Rng& rng) {
    std::array<std::uint8_t, 32> key{};
    rng.fill(key.data(), key.size());
    ct::SecretScope scope(key.data(), key.size());
    const Bytes boxed =
        oprf::OprfServer::seal_metadata(key, to_bytes("sixteen byte msg"));
    const auto opened = oprf::OprfServer::open_metadata(key, boxed);
    if (!opened) std::abort();
    sink(opened->data(), opened->size());
  }});

  checks.push_back({"ct_equal", [](Rng& rng) {
    Bytes a = rng.bytes(64);
    Bytes b = rng.bytes(64);
    ct::SecretScope sa(a.data(), a.size());
    ct::SecretScope sb(b.data(), b.size());
    g_sink = g_sink ^ static_cast<std::uint8_t>(ct_equal(a, b));
  }});

  return checks;
}

// --- Self-test: deliberately leaky code the harness MUST flag --------------

// Early-exit comparison (the classic memcmp timing leak). noinline so the
// branch structure survives; this TU is compiled with trace-pc under
// CBL_CTCHECK, so the loop's exit edge is instrumented.
__attribute__((noinline)) bool leaky_compare(const std::uint8_t* a,
                                             const std::uint8_t* b,
                                             std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return false;  // ct:ok — deliberate leak (self-test)
  }
  return true;
}

std::vector<Check> self_test_checks() {
  std::vector<Check> checks;
  checks.push_back({"leaky_compare", [](Rng& rng) {
    std::uint8_t secret[32];
    rng.fill(secret, sizeof secret);
    ct::SecretScope scope(secret, sizeof secret);
    // The mismatch position — and so the loop's early-exit edge count —
    // is determined by the secret itself, which is exactly the signal
    // the harness must detect.
    std::uint8_t probe[32];
    std::memcpy(probe, secret, sizeof probe);
    probe[secret[0] % 32] ^= 1;
    g_sink = g_sink ^
             static_cast<std::uint8_t>(leaky_compare(secret, probe, 32));
  }});
  return checks;
}

int usage() {
  std::printf("usage: ctcheck [--self-test | --list]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool self_test = false;
  bool list_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--self-test") == 0) {
      self_test = true;
    } else if (std::strcmp(argv[i], "--list") == 0) {
      list_only = true;
    } else {
      return usage();
    }
  }

  const auto checks = self_test ? self_test_checks() : audited_checks();
  if (list_only) {
    for (const auto& c : checks) std::printf("%s\n", c.name.c_str());
    return 0;
  }

  std::printf("ctcheck: taint backend=%s, valgrind=%s\n", ct::backend_name(),
              ct::running_on_valgrind() ? "yes" : "no");

  // Probe instrumentation: run something instrumented and see if edges
  // arrive. Without trace-pc the differ is blind and certifies nothing.
  {
    ct::trace_begin();
    ChaChaRng probe = ChaChaRng::from_string_seed("probe");
    (void)ec::Scalar::random(probe);
    (void)ct::trace_end();
  }
  if (!ct::trace_instrumented()) {
    std::printf(
        "ctcheck: FAIL — build is not instrumented with "
        "-fsanitize-coverage=trace-pc (configure with -DCBL_CTCHECK=ON)\n");
    return 2;
  }

  if (self_test) {
    std::printf("ctcheck: self-test — expecting trace divergence\n");
  } else {
    std::printf("ctcheck: %zu checks, %d recorded runs each\n", checks.size(),
                kRecordedRuns);
  }

  bool all_ok = true;
  for (const auto& check : checks) {
    all_ok &= drive(check, /*expect_divergence=*/self_test);
  }

  if (self_test && all_ok) {
    // Negative control: the hardened compare must NOT diverge.
    all_ok &= drive({"ct_equal_control", [](Rng& rng) {
                      Bytes a = rng.bytes(32);
                      Bytes b = rng.bytes(32);
                      g_sink = g_sink ^
                               static_cast<std::uint8_t>(ct_equal(a, b));
                    }},
                    /*expect_divergence=*/false);
  }

  if (!all_ok) {
    std::printf("ctcheck: FAIL — %s\n",
                self_test ? "harness did not behave as expected"
                          : "secret-dependent control flow detected");
    return 1;
  }
  std::printf("ctcheck: OK (%s)\n",
              self_test ? "harness detects injected leaks"
                        : "no secret-dependent control flow observed");
  return 0;
}
