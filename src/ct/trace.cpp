#include "ct/trace.h"

// This translation unit must NEVER be compiled with
// -fsanitize-coverage=trace-pc itself (the callback would recurse); the
// build system compiles cbl_ct without instrumentation. For the same
// reason the callback must not call ANY inline/template function: their
// COMDAT definitions may be kept from an *instrumented* object file, and
// calling one from inside the callback recurses until the stack dies.
// Hence raw __atomic builtins instead of std::atomic here.

namespace cbl::ct {

namespace {

thread_local bool t_recording = false;
thread_local std::uint64_t t_hash = 0;
thread_local std::uint64_t t_edges = 0;

bool g_any_edge = false;

}  // namespace

void trace_begin() noexcept {
  t_hash = 14695981039346656037ULL;  // FNV-1a offset basis
  t_edges = 0;
  t_recording = true;
}

TraceStats trace_end() noexcept {
  t_recording = false;
  return TraceStats{t_hash, t_edges};
}

bool trace_instrumented() noexcept {
  return __atomic_load_n(&g_any_edge, __ATOMIC_RELAXED);
}

}  // namespace cbl::ct

extern "C" void __sanitizer_cov_trace_pc() {
  using namespace cbl::ct;
  if (!__atomic_load_n(&g_any_edge, __ATOMIC_RELAXED)) {
    __atomic_store_n(&g_any_edge, true, __ATOMIC_RELAXED);
  }
  if (!t_recording) return;
  const auto pc =
      reinterpret_cast<std::uint64_t>(__builtin_return_address(0));
  t_hash = (t_hash ^ pc) * 1099511628211ULL;  // FNV-1a prime, order-sensitive
  ++t_edges;
}
