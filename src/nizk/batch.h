// Batch verification via random linear combination: every verification
// equation of every proof is multiplied by an independent random
// 128-bit coefficient and the whole system collapses into a single
// multiscalar multiplication checked against the identity. A cheating
// proof survives with probability ~2^-128. This is how an off-chain
// auditor (or a light client replaying history — "it is publicly
// verifiable that all shareholder voters faithfully follow the
// computation procedures") re-verifies a whole proposal's proofs at a
// fraction of the sequential cost.
#pragma once

#include <span>
#include <vector>

#include "commit/crs.h"
#include "common/rng.h"
#include "nizk/proof_a.h"
#include "nizk/proof_b.h"
#include "nizk/signature.h"

namespace cbl::nizk {

/// Batch-verifies pi_A proofs. Equivalent to verifying each proof
/// individually (up to the 2^-128 soundness slack); returns false if ANY
/// proof in the batch is invalid. Empty batches verify trivially.
bool batch_verify_proof_a(const commit::Crs& crs,
                          std::span<const StatementA> statements,
                          std::span<const ProofA> proofs, Rng& rng);

/// Batch-verifies pi_B proofs (each statement carries its own Y).
bool batch_verify_proof_b(const commit::Crs& crs,
                          std::span<const StatementB> statements,
                          std::span<const ProofB> proofs, Rng& rng);

/// Batch-verifies Schnorr signatures over (pk, message) pairs under one
/// domain.
struct SignedMessage {
  ec::RistrettoPoint pk;
  Bytes message;
  Signature signature;
};
bool batch_verify_signatures(std::span<const SignedMessage> items,
                             std::string_view domain, Rng& rng);

}  // namespace cbl::nizk
