// Basic sigma protocols compiled with Fiat-Shamir: Schnorr proof of
// knowledge of a discrete log, and Chaum-Pedersen proof of discrete-log
// equality. They back the deposit-opening proof (registration), the
// shielded-pool spend authorization, and the VRF.
#pragma once

#include <optional>

#include "common/rng.h"
#include "ec/ristretto.h"
#include "nizk/transcript.h"

namespace cbl::nizk {

/// Proves knowledge of x with y = base^x.
struct SchnorrProof {
  ec::RistrettoPoint commitment;  // base^k
  ec::Scalar response;            // k + c*x

  static SchnorrProof prove(const ec::RistrettoPoint& base,
                            const ec::RistrettoPoint& y, const ec::Scalar& x,
                            std::string_view domain, Rng& rng);
  bool verify(const ec::RistrettoPoint& base, const ec::RistrettoPoint& y,
              std::string_view domain) const;

  Bytes to_bytes() const;
  // wire:untrusted fuzz=fuzz_nizk
  [[nodiscard]] static std::optional<SchnorrProof> from_bytes(ByteView data);
  static constexpr std::size_t kWireSize = 64;
};

/// Okamoto representation proof: knowledge of (m, r) with
/// p = base_g^m * base_h^r — i.e. knowledge of a Pedersen opening without
/// revealing it. Authorizes shielded-pool spends and deposit withdrawals.
struct RepresentationProof {
  ec::RistrettoPoint commitment;  // base_g^k1 * base_h^k2
  ec::Scalar z1, z2;              // k1 + c*m, k2 + c*r

  static RepresentationProof prove(const ec::RistrettoPoint& base_g,
                                   const ec::RistrettoPoint& base_h,
                                   const ec::RistrettoPoint& p,
                                   const ec::Scalar& m, const ec::Scalar& r,
                                   std::string_view domain, Rng& rng);
  bool verify(const ec::RistrettoPoint& base_g,
              const ec::RistrettoPoint& base_h, const ec::RistrettoPoint& p,
              std::string_view domain) const;

  Bytes to_bytes() const;
  // wire:untrusted fuzz=fuzz_nizk
  [[nodiscard]] static std::optional<RepresentationProof> from_bytes(ByteView data);
  static constexpr std::size_t kWireSize = 96;
};

/// Proves log_{base1}(y1) = log_{base2}(y2) (same exponent x).
struct DleqProof {
  ec::RistrettoPoint commitment1;  // base1^k
  ec::RistrettoPoint commitment2;  // base2^k
  ec::Scalar response;             // k + c*x

  static DleqProof prove(const ec::RistrettoPoint& base1,
                         const ec::RistrettoPoint& y1,
                         const ec::RistrettoPoint& base2,
                         const ec::RistrettoPoint& y2, const ec::Scalar& x,
                         std::string_view domain, Rng& rng);
  bool verify(const ec::RistrettoPoint& base1, const ec::RistrettoPoint& y1,
              const ec::RistrettoPoint& base2, const ec::RistrettoPoint& y2,
              std::string_view domain) const;

  Bytes to_bytes() const;
  // wire:untrusted fuzz=fuzz_nizk
  [[nodiscard]] static std::optional<DleqProof> from_bytes(ByteView data);
  static constexpr std::size_t kWireSize = 96;
};

}  // namespace cbl::nizk
