#include "nizk/transcript.h"

namespace cbl::nizk {

Transcript::Transcript(std::string_view protocol_label) {
  frame("protocol", to_bytes(protocol_label));
}

void Transcript::frame(std::string_view label, ByteView data) {
  std::uint8_t len[8];
  store_le64(len, label.size());
  state_.update(ByteView(len, 8)).update(label);
  store_le64(len, data.size());
  state_.update(ByteView(len, 8)).update(data);
}

Transcript& Transcript::absorb(std::string_view label, ByteView data) {
  frame(label, data);
  return *this;
}

Transcript& Transcript::absorb_point(std::string_view label,
                                     const ec::RistrettoPoint& p) {
  const auto enc = p.encode();
  frame(label, ByteView(enc.data(), enc.size()));
  return *this;
}

Transcript& Transcript::absorb_scalar(std::string_view label,
                                      const ec::Scalar& s) {
  const auto enc = s.to_bytes();
  frame(label, ByteView(enc.data(), enc.size()));
  return *this;
}

Transcript& Transcript::absorb_u64(std::string_view label, std::uint64_t v) {
  std::uint8_t enc[8];
  store_le64(enc, v);
  frame(label, ByteView(enc, 8));
  return *this;
}

ec::Scalar Transcript::challenge(std::string_view label) {
  // Fork the state to produce output, then absorb the fact that a
  // challenge was drawn so later challenges differ.
  hash::Sha512 fork = state_;
  fork.update("challenge/").update(label);
  const auto digest = fork.finalize();
  frame("challenge-drawn", to_bytes(label));
  return ec::Scalar::from_bytes_wide(digest);
}

}  // namespace cbl::nizk
