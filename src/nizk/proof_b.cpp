#include "nizk/proof_b.h"

#include "ec/codec.h"
#include "nizk/transcript.h"

namespace cbl::nizk {

namespace {

ec::Scalar challenge_mu(const StatementB& st, const ProofB& p) {
  Transcript t("cbl/nizk/proof-b");
  t.absorb_point("c0", st.c0)
      .absorb_point("C", st.big_c)
      .absorb_point("psi", st.psi)
      .absorb_point("Y", st.y);
  t.absorb_point("sigma0", p.sigma0)
      .absorb_point("sigma1", p.sigma1)
      .absorb_point("sigma2", p.sigma2);
  t.absorb_point("gamma0", p.gamma0).absorb_point("gamma1", p.gamma1);
  return t.challenge("mu");
}

}  // namespace

ProofB ProofB::prove(const commit::Crs& crs, const StatementB& st,
                     const ec::Scalar& x, const ec::Scalar& v, Rng& rng) {
  const ec::Scalar alpha = ec::Scalar::random(rng);
  const ec::Scalar delta = ec::Scalar::random(rng);
  const ec::Scalar beta0 = ec::Scalar::random(rng);
  const ec::Scalar beta1 = ec::Scalar::random(rng);

  ProofB proof;
  proof.sigma0 = crs.g * alpha;
  proof.sigma1 = crs.g * delta + crs.h * alpha;
  proof.sigma2 = crs.g * delta + st.y * alpha;
  proof.gamma0 = crs.g_hat * beta0 + crs.g * beta1;
  proof.gamma1 = crs.h_hat * beta0 + crs.h * beta1;

  const ec::Scalar mu = challenge_mu(st, proof);
  proof.a = -beta0;
  proof.b = beta1;
  const ec::Scalar e = mu + proof.a;
  proof.omega_x = alpha + e * x;
  proof.omega_v = delta + e * v;
  return proof;
}

bool ProofB::verify(const commit::Crs& crs, const StatementB& st) const {
  const ec::Scalar mu = challenge_mu(st, *this);
  const ec::Scalar e = mu + a;

  const bool b0 = sigma0 + st.c0 * e == crs.g * omega_x;
  const bool b1 = sigma1 + st.big_c * e == crs.g * omega_v + crs.h * omega_x;
  const bool b2 = sigma2 + st.psi * e == crs.g * omega_v + st.y * omega_x;
  const bool b3 = gamma0 + crs.g_hat * a == crs.g * b;
  const bool b4 = gamma1 + crs.h_hat * a == crs.h * b;
  return b0 && b1 && b2 && b3 && b4;
}

Bytes ProofB::to_bytes() const {
  Bytes out;
  for (const auto* p : {&sigma0, &sigma1, &sigma2, &gamma0, &gamma1}) {
    append(out, p->encode());
  }
  for (const auto* s : {&a, &b, &omega_x, &omega_v}) append(out, s->to_bytes());
  return out;
}

ec::Scalar ProofB::compute_challenge(const StatementB& statement) const {
  return challenge_mu(statement, *this);
}

std::optional<ProofB> ProofB::from_bytes(ByteView data) {
  ec::WireReader r(data);
  ProofB proof;
  proof.sigma0 = r.point();
  proof.sigma1 = r.point();
  proof.sigma2 = r.point();
  proof.gamma0 = r.point();
  proof.gamma1 = r.point();
  proof.a = r.scalar();
  proof.b = r.scalar();
  proof.omega_x = r.scalar();
  proof.omega_v = r.scalar();
  if (!r.finish()) return std::nullopt;
  return proof;
}

}  // namespace cbl::nizk
