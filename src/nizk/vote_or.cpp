#include "nizk/vote_or.h"

#include <stdexcept>

#include "ec/codec.h"
#include "nizk/transcript.h"

namespace cbl::nizk {

namespace {

ec::Scalar challenge_mu(const ec::RistrettoPoint& commitment,
                        const ec::RistrettoPoint& a0,
                        const ec::RistrettoPoint& a1, std::uint64_t weight) {
  Transcript t("cbl/nizk/binary-vote");
  t.absorb_point("C", commitment);
  t.absorb_point("a0", a0).absorb_point("a1", a1);
  t.absorb_u64("weight", weight);
  return t.challenge("mu");
}

}  // namespace

BinaryVoteProof BinaryVoteProof::prove(const commit::Crs& crs,
                                       const ec::RistrettoPoint& commitment,
                                       unsigned v, const ec::Scalar& x,
                                       Rng& rng, std::uint64_t weight) {
  if (v > 1) throw std::invalid_argument("BinaryVoteProof: v must be 0 or 1");
  if (weight == 0) throw std::invalid_argument("BinaryVoteProof: zero weight");
  const ec::RistrettoPoint g_tau = crs.g * ec::Scalar::from_u64(weight);
  if (!(g_tau * ec::Scalar::from_u64(v) + crs.h * x == commitment)) {
    throw std::invalid_argument("BinaryVoteProof: (v, x) does not open C");
  }

  // Branch statements: D0 = C (v=0 -> C = h^x), D1 = C - g^tau (v=1).
  const ec::RistrettoPoint d[2] = {commitment, commitment - g_tau};
  const unsigned real = v, fake = 1 - v;

  // Simulate the fake branch: pick its challenge and response first.
  ec::Scalar c_branch[2], z_branch[2];
  ec::RistrettoPoint a_branch[2];
  c_branch[fake] = ec::Scalar::random(rng);
  z_branch[fake] = ec::Scalar::random(rng);
  a_branch[fake] = crs.h * z_branch[fake] - d[fake] * c_branch[fake];

  // Honest commitment for the real branch.
  const ec::Scalar w = ec::Scalar::random(rng);
  a_branch[real] = crs.h * w;

  const ec::Scalar mu =
      challenge_mu(commitment, a_branch[0], a_branch[1], weight);
  c_branch[real] = mu - c_branch[fake];
  z_branch[real] = w + c_branch[real] * x;

  BinaryVoteProof proof;
  proof.a0 = a_branch[0];
  proof.a1 = a_branch[1];
  proof.c0 = c_branch[0];
  proof.c1 = c_branch[1];
  proof.z0 = z_branch[0];
  proof.z1 = z_branch[1];
  return proof;
}

bool BinaryVoteProof::verify(const commit::Crs& crs,
                             const ec::RistrettoPoint& commitment,
                             std::uint64_t weight) const {
  if (weight == 0) return false;
  const ec::Scalar mu = challenge_mu(commitment, a0, a1, weight);
  if (!(c0 + c1 == mu)) return false;
  const ec::RistrettoPoint d0 = commitment;
  const ec::RistrettoPoint d1 =
      commitment - crs.g * ec::Scalar::from_u64(weight);
  return crs.h * z0 == a0 + d0 * c0 && crs.h * z1 == a1 + d1 * c1;
}

Bytes BinaryVoteProof::to_bytes() const {
  Bytes out;
  append(out, a0.encode());
  append(out, a1.encode());
  for (const auto* s : {&c0, &c1, &z0, &z1}) append(out, s->to_bytes());
  return out;
}

std::optional<BinaryVoteProof> BinaryVoteProof::from_bytes(ByteView data) {
  ec::WireReader r(data);
  BinaryVoteProof proof;
  proof.a0 = r.point();
  proof.a1 = r.point();
  proof.c0 = r.scalar();
  proof.c1 = r.scalar();
  proof.z0 = r.scalar();
  proof.z1 = r.scalar();
  if (!r.finish()) return std::nullopt;
  return proof;
}

}  // namespace cbl::nizk
