// Pi_A: the round-1 NIZK of Fig. 5, implemented operation-for-operation.
// It proves the relation
//   phi_A((c0,c1,c2), x):  c0 = g^x  AND  c1 = h1^x  AND  c2 = h2^x,
// i.e. the registration commitments are well-formed under a common secret
// x — composed (via the gamma/a/b terms) with the OR-branch "the CRS
// contains a DDH tuple", which is what makes the proof simulatable in the
// non-programmable ROM (Section V-D).
#pragma once

#include <optional>

#include "commit/crs.h"
#include "common/rng.h"
#include "ec/ristretto.h"

namespace cbl::nizk {

/// The public statement of phi_A.
struct StatementA {
  ec::RistrettoPoint c0, c1, c2;
};

struct ProofA {
  ec::RistrettoPoint sigma0, sigma1, sigma2;  // g^a, h1^a, h2^a (alpha)
  ec::RistrettoPoint gamma0, gamma1;          // OR-branch commitments
  ec::Scalar a, b, omega;

  /// M's computation in Fig. 5 (steps 1-7 use the caller's x and v; this
  /// function takes the already-computed statement plus witness x).
  static ProofA prove(const commit::Crs& crs, const StatementA& statement,
                      const ec::Scalar& x, Rng& rng);

  /// B's verification in Fig. 5: recompute mu, check b0..b4.
  bool verify(const commit::Crs& crs, const StatementA& statement) const;

  Bytes to_bytes() const;
  // wire:untrusted fuzz=fuzz_nizk
  [[nodiscard]] static std::optional<ProofA> from_bytes(ByteView data);

  /// The Fiat-Shamir challenge mu for this (statement, proof) pair —
  /// exposed for batch verification.
  ec::Scalar compute_challenge(const StatementA& statement) const;
  /// 5 points + 3 scalars.
  static constexpr std::size_t kWireSize = 5 * 32 + 3 * 32;
};

}  // namespace cbl::nizk
