#include "nizk/batch.h"

#include <stdexcept>

namespace cbl::nizk {

namespace {

// Accumulates (scalar, point) terms and finally checks that the combined
// multiscalar multiplication is the identity.
class Accumulator {
 public:
  void add(const ec::Scalar& scalar, const ec::RistrettoPoint& point) {
    scalars_.push_back(scalar);
    points_.push_back(point);
  }

  bool is_identity() const {
    if (scalars_.empty()) return true;
    return ec::RistrettoPoint::multiscalar_mul(scalars_, points_)
        .is_identity();
  }

 private:
  std::vector<ec::Scalar> scalars_;
  std::vector<ec::RistrettoPoint> points_;
};

// 128-bit random coefficient: plenty for soundness, half-width for speed.
ec::Scalar random_coefficient(Rng& rng) {
  std::array<std::uint8_t, 32> bytes{};
  rng.fill(bytes.data(), 16);
  return ec::Scalar::from_bytes_mod_order(bytes);
}

}  // namespace

bool batch_verify_proof_a(const commit::Crs& crs,
                          std::span<const StatementA> statements,
                          std::span<const ProofA> proofs, Rng& rng) {
  if (statements.size() != proofs.size()) {
    throw std::invalid_argument("batch_verify_proof_a: size mismatch");
  }
  Accumulator acc;
  // Generator coefficients are accumulated instead of adding one term per
  // equation.
  ec::Scalar g_coeff, h_coeff, h1_coeff, h2_coeff, ghat_coeff, hhat_coeff;

  for (std::size_t i = 0; i < proofs.size(); ++i) {
    const auto& st = statements[i];
    const auto& p = proofs[i];
    const ec::Scalar e = p.compute_challenge(st) + p.a;

    // Five verification equations, each with a fresh random weight rho:
    //  (1) sigma0 + e*c0 - omega*g        = 0
    //  (2) sigma1 + e*c1 - omega*h1       = 0
    //  (3) sigma2 + e*c2 - omega*h2       = 0
    //  (4) gamma0 + a*g_hat - b*g         = 0
    //  (5) gamma1 + a*h_hat - b*h         = 0
    const ec::Scalar r1 = random_coefficient(rng);
    const ec::Scalar r2 = random_coefficient(rng);
    const ec::Scalar r3 = random_coefficient(rng);
    const ec::Scalar r4 = random_coefficient(rng);
    const ec::Scalar r5 = random_coefficient(rng);

    acc.add(r1, p.sigma0);
    acc.add(r1 * e, st.c0);
    acc.add(r2, p.sigma1);
    acc.add(r2 * e, st.c1);
    acc.add(r3, p.sigma2);
    acc.add(r3 * e, st.c2);
    acc.add(r4, p.gamma0);
    acc.add(r5, p.gamma1);

    g_coeff = g_coeff - r1 * p.omega - r4 * p.b;
    h1_coeff = h1_coeff - r2 * p.omega;
    h2_coeff = h2_coeff - r3 * p.omega;
    ghat_coeff = ghat_coeff + r4 * p.a;
    hhat_coeff = hhat_coeff + r5 * p.a;
    h_coeff = h_coeff - r5 * p.b;
  }
  acc.add(g_coeff, crs.g);
  acc.add(h_coeff, crs.h);
  acc.add(h1_coeff, crs.h1);
  acc.add(h2_coeff, crs.h2);
  acc.add(ghat_coeff, crs.g_hat);
  acc.add(hhat_coeff, crs.h_hat);
  return acc.is_identity();
}

bool batch_verify_proof_b(const commit::Crs& crs,
                          std::span<const StatementB> statements,
                          std::span<const ProofB> proofs, Rng& rng) {
  if (statements.size() != proofs.size()) {
    throw std::invalid_argument("batch_verify_proof_b: size mismatch");
  }
  Accumulator acc;
  ec::Scalar g_coeff, h_coeff, ghat_coeff, hhat_coeff;

  for (std::size_t i = 0; i < proofs.size(); ++i) {
    const auto& st = statements[i];
    const auto& p = proofs[i];
    const ec::Scalar e = p.compute_challenge(st) + p.a;

    // Equations:
    //  (1) sigma0 + e*c0  - omega_x*g                 = 0
    //  (2) sigma1 + e*C   - omega_v*g - omega_x*h     = 0
    //  (3) sigma2 + e*psi - omega_v*g - omega_x*Y     = 0
    //  (4) gamma0 + a*g_hat - b*g                     = 0
    //  (5) gamma1 + a*h_hat - b*h                     = 0
    const ec::Scalar r1 = random_coefficient(rng);
    const ec::Scalar r2 = random_coefficient(rng);
    const ec::Scalar r3 = random_coefficient(rng);
    const ec::Scalar r4 = random_coefficient(rng);
    const ec::Scalar r5 = random_coefficient(rng);

    acc.add(r1, p.sigma0);
    acc.add(r1 * e, st.c0);
    acc.add(r2, p.sigma1);
    acc.add(r2 * e, st.big_c);
    acc.add(r3, p.sigma2);
    acc.add(r3 * e, st.psi);
    acc.add(-(r3 * p.omega_x), st.y);  // Y differs per statement
    acc.add(r4, p.gamma0);
    acc.add(r5, p.gamma1);

    g_coeff = g_coeff - r1 * p.omega_x - (r2 + r3) * p.omega_v - r4 * p.b;
    h_coeff = h_coeff - r2 * p.omega_x - r5 * p.b;
    ghat_coeff = ghat_coeff + r4 * p.a;
    hhat_coeff = hhat_coeff + r5 * p.a;
  }
  acc.add(g_coeff, crs.g);
  acc.add(h_coeff, crs.h);
  acc.add(ghat_coeff, crs.g_hat);
  acc.add(hhat_coeff, crs.h_hat);
  return acc.is_identity();
}

bool batch_verify_signatures(std::span<const SignedMessage> items,
                             std::string_view domain, Rng& rng) {
  Accumulator acc;
  ec::Scalar g_coeff;
  for (const auto& item : items) {
    // R + c*pk - s*g = 0.
    const ec::Scalar c = signature_challenge_for(item.pk, item.signature,
                                                 item.message, domain);
    const ec::Scalar rho = random_coefficient(rng);
    acc.add(rho, item.signature.nonce_commitment);
    acc.add(rho * c, item.pk);
    g_coeff = g_coeff - rho * item.signature.response;
  }
  acc.add(g_coeff, ec::RistrettoPoint::base());
  return acc.is_identity();
}

}  // namespace cbl::nizk
