// The Fiat-Shamir transcript: a concrete instantiation of the random
// oracle R : {0,1}* -> F of Fig. 5. Every absorbed item is length- and
// label-framed so distinct transcripts can never collide, and challenges
// are derived by wide reduction of SHA-512 output (unbiased mod l).
#pragma once

#include <string_view>

#include "common/bytes.h"
#include "ec/ristretto.h"
#include "hash/sha512.h"

namespace cbl::nizk {

class Transcript {
 public:
  explicit Transcript(std::string_view protocol_label);

  Transcript& absorb(std::string_view label, ByteView data);
  Transcript& absorb_point(std::string_view label, const ec::RistrettoPoint& p);
  Transcript& absorb_scalar(std::string_view label, const ec::Scalar& s);
  Transcript& absorb_u64(std::string_view label, std::uint64_t v);

  /// Derives a challenge scalar; the transcript evolves, so successive
  /// challenges are independent.
  ec::Scalar challenge(std::string_view label);

 private:
  void frame(std::string_view label, ByteView data);

  hash::Sha512 state_;
};

}  // namespace cbl::nizk
