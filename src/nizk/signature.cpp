#include "nizk/signature.h"

#include "ec/codec.h"
#include "nizk/transcript.h"

namespace cbl::nizk {

namespace {

ec::Scalar signature_challenge(std::string_view domain,
                               const ec::RistrettoPoint& pk,
                               const ec::RistrettoPoint& nonce_commitment,
                               ByteView message) {
  Transcript t("cbl/nizk/schnorr-signature");
  t.absorb("domain", to_bytes(domain));
  t.absorb_point("pk", pk);  // key-prefixing
  t.absorb_point("R", nonce_commitment);
  t.absorb("message", message);
  return t.challenge("c");
}

}  // namespace

SigningKey SigningKey::generate(Rng& rng) {
  SigningKey key;
  key.sk = ec::Scalar::random(rng);
  key.pk = ec::RistrettoPoint::base() * key.sk;
  return key;
}

Signature sign(const SigningKey& key, ByteView message,
               std::string_view domain, Rng& rng) {
  const ec::Scalar k = ec::Scalar::random(rng);
  Signature sig;
  sig.nonce_commitment = ec::RistrettoPoint::base() * k;
  const ec::Scalar c =
      signature_challenge(domain, key.pk, sig.nonce_commitment, message);
  sig.response = k + c * key.sk;
  return sig;
}

bool verify_signature(const ec::RistrettoPoint& pk, ByteView message,
                      std::string_view domain, const Signature& sig) {
  const ec::Scalar c =
      signature_challenge(domain, pk, sig.nonce_commitment, message);
  return ec::RistrettoPoint::base() * sig.response ==
         sig.nonce_commitment + pk * c;
}

ec::Scalar signature_challenge_for(const ec::RistrettoPoint& pk,
                                   const Signature& sig, ByteView message,
                                   std::string_view domain) {
  return signature_challenge(domain, pk, sig.nonce_commitment, message);
}

Bytes Signature::to_bytes() const {
  Bytes out;
  append(out, nonce_commitment.encode());
  append(out, response.to_bytes());
  return out;
}

std::optional<Signature> Signature::from_bytes(ByteView data) {
  ec::WireReader r(data);
  Signature sig;
  sig.nonce_commitment = r.point();
  sig.response = r.scalar();
  if (!r.finish()) return std::nullopt;
  return sig;
}

}  // namespace cbl::nizk
